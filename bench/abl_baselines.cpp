// Ablation: multilevel vs the pre-multilevel baselines (geometric RCB
// and spectral recursive bisection) — quantifying the background's
// opening claim: "Multilevel techniques show great improvements in the
// quality of partitions and partitioning speed as compared to other
// techniques [4, 5]".
#include <benchmark/benchmark.h>

#include "baselines/rcb.hpp"
#include "baselines/spectral.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"

namespace {

using namespace gp;

struct Fixture {
  std::vector<Point2D> coords;
  CsrGraph g;
  Fixture() { g = delaunay_graph(50000, 21, &coords); }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_MultilevelMetis(benchmark::State& state) {
  auto& f = fixture();
  PartitionOptions opts;
  opts.k = 64;
  wgt_t cut = 0;
  for (auto _ : state) {
    const auto r = make_serial_partitioner()->run(f.g, opts);
    cut = r.cut;
    benchmark::DoNotOptimize(cut);
  }
  state.counters["cut"] = benchmark::Counter(static_cast<double>(cut));
}
BENCHMARK(BM_MultilevelMetis)->Unit(benchmark::kMillisecond);

void BM_GeometricRcb(benchmark::State& state) {
  auto& f = fixture();
  wgt_t cut = 0;
  for (auto _ : state) {
    const auto p = rcb_partition(f.g, f.coords, 64);
    cut = edge_cut(f.g, p);
    benchmark::DoNotOptimize(cut);
  }
  state.counters["cut"] = benchmark::Counter(static_cast<double>(cut));
}
BENCHMARK(BM_GeometricRcb)->Unit(benchmark::kMillisecond);

void BM_SpectralRecursive(benchmark::State& state) {
  auto& f = fixture();
  wgt_t cut = 0;
  for (auto _ : state) {
    const auto p = spectral_partition(f.g, 64, {120, 1});
    cut = edge_cut(f.g, p);
    benchmark::DoNotOptimize(cut);
  }
  state.counters["cut"] = benchmark::Counter(static_cast<double>(cut));
}
BENCHMARK(BM_SpectralRecursive)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
