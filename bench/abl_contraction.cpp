// Ablation: the two GPU contraction merge strategies the paper compares —
// quicksort+remove versus the clustered hash table ("the hash table
// approach is faster than the sorting").  Wall time here reflects the
// same asymptotic difference (sort is O(d log d) per coarse vertex, hash
// is O(d)); the counter reports the modeled-GPU work units.
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "hybrid/gpu_contract.hpp"
#include "hybrid/gpu_matching.hpp"

namespace {

struct Fixture {
  gp::Device dev;
  gp::CsrGraph g = gp::fem_slab_graph(24, 36, 8);  // high degree: merge-heavy
  gp::GpuGraph gg = gp::GpuGraph::upload(dev, g, "bench");
  gp::GpuMatchResult m = gp::gpu_match(dev, gg, 0, 1, 4096);
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void run_contract(benchmark::State& state, bool use_hash) {
  auto& f = fixture();
  gp::CostLedger ledger;
  f.dev.set_ledger(&ledger);
  for (auto _ : state) {
    gp::GpuContractStats st;
    auto coarse = gp::gpu_contract(f.dev, f.gg, f.m.match, f.m.cmap,
                                   f.m.n_coarse, 0, 4096, use_hash,
                                   gp::GpuScanMode::kBlocked, &st);
    benchmark::DoNotOptimize(coarse.m);
  }
  f.dev.set_ledger(nullptr);
  state.counters["modeled_merge_work"] = benchmark::Counter(
      static_cast<double>(ledger.seconds_with_prefix("kernel/coarsen/contract/merge")) /
          static_cast<double>(state.iterations()),
      benchmark::Counter::kDefaults);
}

void BM_ContractHashTable(benchmark::State& state) {
  run_contract(state, true);
}
void BM_ContractSortMerge(benchmark::State& state) {
  run_contract(state, false);
}
BENCHMARK(BM_ContractHashTable)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ContractSortMerge)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
