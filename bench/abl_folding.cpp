// Ablation: PT-Scotch-style folding in the distributed partitioner
// (Background II-B: "a folding technique is used ... the two groups can
// continue the matching phase independently").  Compares the ParMetis
// pipeline with and without the folding stage: folding pays an earlier,
// larger broadcast to delete all remaining ghost/match message rounds.
#include <benchmark/benchmark.h>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"

namespace {

const gp::CsrGraph& test_graph() {
  static const gp::CsrGraph g = gp::road_network_graph(150000, 13);
  return g;
}

void run(benchmark::State& state, gp::vid_t fold_threshold) {
  const auto& g = test_graph();
  double modeled = 0, comm_s = 0;
  gp::wgt_t cut = 0;
  for (auto _ : state) {
    gp::PartitionOptions opts;
    opts.k = 64;
    opts.ranks = 8;
    opts.par_fold_threshold = fold_threshold;
    const auto r = gp::make_par_partitioner()->run(g, opts);
    benchmark::DoNotOptimize(r.cut);
    modeled = r.modeled_seconds;
    comm_s = r.ledger.seconds_with_prefix("comm/");
    cut = r.cut;
  }
  state.counters["modeled_seconds"] = benchmark::Counter(modeled);
  state.counters["comm_seconds"] = benchmark::Counter(comm_s);
  state.counters["cut"] = benchmark::Counter(static_cast<double>(cut));
}

void BM_ParMetisNoFolding(benchmark::State& state) { run(state, 0); }
void BM_ParMetisFoldAt16k(benchmark::State& state) { run(state, 16384); }
void BM_ParMetisFoldAt64k(benchmark::State& state) { run(state, 65536); }

BENCHMARK(BM_ParMetisNoFolding)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParMetisFoldAt16k)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParMetisFoldAt64k)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
