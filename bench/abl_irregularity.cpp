// Ablation: input irregularity vs GPU kernel load balance — the paper's
// stated performance limiter: "The irregularity of the input graph
// greatly affects the performance of GP-metis, since it increases the
// workload imbalance between the GPU threads on some of the GPU kernels."
//
// Runs GP-metis on a regular mesh, a Delaunay mesh, and a power-law RMAT
// graph of comparable size, and reports the measured warp-level
// imbalance of the coarsening kernels (straight from the cost ledger)
// plus the resulting modeled speedup over serial Metis.
#include <benchmark/benchmark.h>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"

namespace {

using namespace gp;

CsrGraph make_input(const std::string& which) {
  if (which == "grid") return grid2d_graph(316, 316);        // ~100k, regular
  if (which == "delaunay") return delaunay_graph(100000, 7); // mild
  return rmat_graph(17, 300000, 7);                          // power law
}

void run(benchmark::State& state, const std::string& which) {
  const CsrGraph g = make_input(which);
  double avg_imb = 1.0, max_imb = 1.0, speedup = 0.0;
  for (auto _ : state) {
    PartitionOptions opts;
    opts.k = 64;
    opts.gpu_cpu_threshold = 4096;
    const auto serial = make_serial_partitioner()->run(g, opts);
    const auto r = make_hybrid_partitioner()->run(g, opts);
    benchmark::DoNotOptimize(r.cut);
    double sum = 0;
    int cnt = 0;
    max_imb = 1.0;
    for (const auto& e : r.ledger.entries()) {
      if (e.label.rfind("kernel/coarsen/", 0) != 0) continue;
      sum += e.imbalance;
      max_imb = std::max(max_imb, e.imbalance);
      ++cnt;
    }
    avg_imb = cnt ? sum / cnt : 1.0;
    speedup = serial.modeled_seconds / r.modeled_seconds;
  }
  state.counters["avg_warp_imbalance"] = benchmark::Counter(avg_imb);
  state.counters["max_warp_imbalance"] = benchmark::Counter(max_imb);
  state.counters["speedup_vs_metis"] = benchmark::Counter(speedup);
}

void BM_RegularGrid(benchmark::State& state) { run(state, "grid"); }
void BM_DelaunayMesh(benchmark::State& state) { run(state, "delaunay"); }
void BM_PowerLawRmat(benchmark::State& state) { run(state, "rmat"); }

BENCHMARK(BM_RegularGrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DelaunayMesh)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PowerLawRmat)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
