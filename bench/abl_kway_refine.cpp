// Ablation: scan-order vs priority-queue (gain-order) greedy k-way
// refinement — the refinement-ordering design choice in the serial
// baseline (real Metis processes boundary vertices in gain order).
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "serial/kway_refine.hpp"
#include "serial/rb_partition.hpp"

namespace {

using namespace gp;

struct Fixture {
  CsrGraph g = delaunay_graph(40000, 11);
  Partition base;
  Fixture() {
    Rng rng(3);
    base = recursive_bisection(g, 32, 0.05, rng);
    for (vid_t v = 0; v < g.num_vertices(); v += 23) {
      base.where[static_cast<std::size_t>(v)] = static_cast<part_t>(
          (base.where[static_cast<std::size_t>(v)] + 1) % 32);
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_ScanOrderRefine(benchmark::State& state) {
  auto& f = fixture();
  wgt_t cut = 0;
  for (auto _ : state) {
    Partition p = f.base;
    cut = kway_refine_serial(f.g, p, 0.05, 8).cut_after;
    benchmark::DoNotOptimize(p.where.data());
  }
  state.counters["cut_after"] = benchmark::Counter(static_cast<double>(cut));
}
BENCHMARK(BM_ScanOrderRefine)->Unit(benchmark::kMillisecond);

void BM_GainOrderPqRefine(benchmark::State& state) {
  auto& f = fixture();
  wgt_t cut = 0;
  for (auto _ : state) {
    Partition p = f.base;
    cut = kway_refine_pq(f.g, p, 0.05, 8).cut_after;
    benchmark::DoNotOptimize(p.where.data());
  }
  state.counters["cut_after"] = benchmark::Counter(static_cast<double>(cut));
}
BENCHMARK(BM_GainOrderPqRefine)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
