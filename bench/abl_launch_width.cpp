// Ablation: variable-width kernel launches (paper Section III-D).
// GP-metis is NOT persistent-threaded like mt-metis: "the kernels are
// launched with a variable number of threads ... to balance the load
// among the threads as much as possible and to maximize the
// performance".  Compares shrinking the launch width level by level
// against keeping the initial width, on a deep coarsening hierarchy.
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "hybrid/gp_partitioner.hpp"

namespace {

const gp::CsrGraph& test_graph() {
  static const gp::CsrGraph g = gp::delaunay_graph(150000, 19);
  return g;
}

void run(benchmark::State& state, bool shrink) {
  const auto& g = test_graph();
  double modeled = 0;
  int levels = 0;
  for (auto _ : state) {
    gp::PartitionOptions opts;
    opts.k = 64;
    opts.gpu_cpu_threshold = 2048;
    opts.gpu_shrink_launch = shrink;
    gp::GpPhaseLog log;
    const auto r = gp::gp_metis_run(g, opts, &log);
    benchmark::DoNotOptimize(r.cut);
    modeled = r.modeled_seconds;
    levels = log.gpu_coarsen_levels;
  }
  state.counters["modeled_seconds"] = benchmark::Counter(modeled);
  state.counters["gpu_levels"] = benchmark::Counter(static_cast<double>(levels));
}

void BM_ShrinkingLaunchWidth(benchmark::State& state) { run(state, true); }
void BM_FixedLaunchWidth(benchmark::State& state) { run(state, false); }

BENCHMARK(BM_ShrinkingLaunchWidth)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FixedLaunchWidth)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
