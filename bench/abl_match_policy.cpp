// Ablation: matching policy (HEM vs RM vs LEM), the comparison the
// paper's background section summarizes with "heavy edge matching
// exhibits the best results".  Measures multilevel coarsening quality:
// coarsen 5 levels under each policy, partition the coarse graph the
// same way, project without refinement, and compare the resulting cuts
// (refinement off isolates the matching policy's contribution).
#include <benchmark/benchmark.h>

#include "core/matching.hpp"
#include "gen/generators.hpp"
#include "serial/hem_matching.hpp"
#include "serial/rb_partition.hpp"

namespace {

using namespace gp;

const CsrGraph& test_graph() {
  // Weighted coarse levels are where the policies diverge; start from a
  // Delaunay mesh so level-1+ edge weights vary.
  static const CsrGraph g = delaunay_graph(40000, 17);
  return g;
}

wgt_t coarsen_and_cut(MatchPolicy policy, std::uint64_t seed) {
  Rng rng(seed);
  CsrGraph cur = test_graph();
  std::vector<std::vector<vid_t>> cmaps;
  for (int lvl = 0; lvl < 6 && cur.num_vertices() > 500; ++lvl) {
    auto m = match_serial_policy(cur, policy, rng);
    CsrGraph coarse = contract_serial(cur, m.match, m.cmap, m.n_coarse);
    cmaps.push_back(std::move(m.cmap));
    cur = std::move(coarse);
  }
  Partition p = recursive_bisection(cur, 16, 0.03, rng);
  for (std::size_t i = cmaps.size(); i-- > 0;) {
    p.where = project_partition(cmaps[i], p.where);
  }
  return edge_cut(test_graph(), p);
}

void run_policy(benchmark::State& state, MatchPolicy policy) {
  wgt_t cut = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cut = coarsen_and_cut(policy, seed++);
    benchmark::DoNotOptimize(cut);
  }
  state.counters["projected_cut"] =
      benchmark::Counter(static_cast<double>(cut));
}

void BM_HeavyEdgeMatching(benchmark::State& state) {
  run_policy(state, MatchPolicy::kHeavyEdge);
}
void BM_RandomMatching(benchmark::State& state) {
  run_policy(state, MatchPolicy::kRandom);
}
void BM_LightEdgeMatching(benchmark::State& state) {
  run_policy(state, MatchPolicy::kLightEdge);
}
BENCHMARK(BM_HeavyEdgeMatching)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RandomMatching)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LightEdgeMatching)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
