// Ablation: the lock-free matching scheme (Fig. 3's mechanism).
//
//   * two-round GPU matching at different logical-thread counts with the
//     measured conflict rate as a counter, vs serial HEM as reference.
//
// Reading the sweep: on the simulated device, 8 host workers execute the
// logical threads in blocked chunks, so FEW logical threads mean each
// worker's vertices interleave finely with its neighbours' (the regime a
// real GPU's warp-strided ownership is always in -> highest conflict
// rate), while MANY logical threads give each worker a spatially compact
// slice (the mt-metis blocked-ownership regime -> fewest conflicts).
// The paper's Table III explanation — finer-grained ownership raises the
// conflict rate — is the left-to-right *decrease* in this sweep.
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "hybrid/gpu_matching.hpp"
#include "serial/hem_matching.hpp"

namespace {

const gp::CsrGraph& test_graph() {
  static const gp::CsrGraph g = gp::delaunay_graph(100000, 42);
  return g;
}

void BM_SerialHem(benchmark::State& state) {
  const auto& g = test_graph();
  for (auto _ : state) {
    gp::Rng rng(1);
    auto m = gp::hem_match_serial(g, rng);
    benchmark::DoNotOptimize(m.n_coarse);
  }
  state.counters["conflict_rate"] = 0;
}
BENCHMARK(BM_SerialHem)->Unit(benchmark::kMillisecond);

void BM_GpuLockFreeMatch(benchmark::State& state) {
  const auto& g = test_graph();
  gp::Device dev;
  auto gg = gp::GpuGraph::upload(dev, g, "bench");
  const auto threads = state.range(0);
  std::uint64_t conflicts = 0, runs = 0;
  for (auto _ : state) {
    auto m = gp::gpu_match(dev, gg, 0, 1 + runs, threads);
    benchmark::DoNotOptimize(m.n_coarse);
    conflicts += m.conflicts;
    ++runs;
  }
  state.counters["conflicts_per_vertex"] = benchmark::Counter(
      static_cast<double>(conflicts) /
      (static_cast<double>(runs) * static_cast<double>(g.num_vertices())));
  state.counters["logical_threads"] =
      benchmark::Counter(static_cast<double>(threads));
}
BENCHMARK(BM_GpuLockFreeMatch)
    ->Arg(32)
    ->Arg(256)
    ->Arg(2048)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
