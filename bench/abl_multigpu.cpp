// Ablation: the multi-GPU extension (the paper's future work).  Sweeps
// the device count and reports modeled time, per-device peak memory, and
// halo-exchange traffic — the scaling trade the extension buys.
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "hybrid/multi_gpu_partitioner.hpp"

namespace {

const gp::CsrGraph& test_graph() {
  static const gp::CsrGraph g = gp::bubble_mesh_graph(250000, 16, 3);
  return g;
}

void BM_MultiGpuSweep(benchmark::State& state) {
  const auto& g = test_graph();
  gp::MultiGpuLog log;
  double modeled = 0;
  for (auto _ : state) {
    gp::PartitionOptions opts;
    opts.k = 64;
    opts.gpu_devices = static_cast<int>(state.range(0));
    opts.gpu_cpu_threshold = 4096;
    const auto r = gp::multi_gpu_run(g, opts, &log);
    benchmark::DoNotOptimize(r.cut);
    modeled = r.modeled_seconds;
  }
  state.counters["modeled_seconds"] = benchmark::Counter(modeled);
  state.counters["peak_device_MB"] = benchmark::Counter(
      static_cast<double>(log.peak_device_bytes) / 1.0e6);
  state.counters["halo_MB"] = benchmark::Counter(
      static_cast<double>(log.halo_exchange_bytes) / 1.0e6);
}
BENCHMARK(BM_MultiGpuSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
