// Ablation: refinement strategies.  Compares
//   * the GPU lock-free buffered refinement (per-partition request
//     buffers + atomic counters + explore kernel),
//   * the mt buffered refinement, and
//   * serial greedy k-way refinement,
// on the same perturbed partition, reporting cut improvement as counters.
#include <benchmark/benchmark.h>

#include "core/gain_cache.hpp"
#include "gen/generators.hpp"
#include "hybrid/gpu_refine.hpp"
#include "mt/mt_refine.hpp"
#include "serial/kway_refine.hpp"
#include "serial/rb_partition.hpp"

namespace {

struct Fixture {
  gp::CsrGraph g = gp::delaunay_graph(60000, 4);
  gp::Partition base;

  Fixture() {
    gp::Rng rng(2);
    base = gp::recursive_bisection(g, 64, 0.03, rng);
    // Perturb to give every refiner real work.
    for (gp::vid_t v = 0; v < g.num_vertices(); v += 37) {
      base.where[static_cast<std::size_t>(v)] =
          static_cast<gp::part_t>((base.where[static_cast<std::size_t>(v)] + 1) %
                                  64);
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_SerialKwayRefine(benchmark::State& state) {
  auto& f = fixture();
  gp::wgt_t cut_after = 0;
  for (auto _ : state) {
    gp::Partition p = f.base;
    auto st = gp::kway_refine_serial(f.g, p, 0.05, 8);
    cut_after = st.cut_after;
    benchmark::DoNotOptimize(p.where.data());
  }
  state.counters["cut_after"] =
      benchmark::Counter(static_cast<double>(cut_after));
}
BENCHMARK(BM_SerialKwayRefine)->Unit(benchmark::kMillisecond);

void BM_MtBufferedRefine(benchmark::State& state) {
  auto& f = fixture();
  gp::ThreadPool pool(8);
  gp::MtContext ctx{&pool, nullptr, 1};
  gp::wgt_t cut_after = 0;
  for (auto _ : state) {
    gp::Partition p = f.base;
    auto st = gp::mt_refine(f.g, p, 0.05, 8, ctx, 0);
    cut_after = st.cut_after;
    benchmark::DoNotOptimize(p.where.data());
  }
  state.counters["cut_after"] =
      benchmark::Counter(static_cast<double>(cut_after));
}
BENCHMARK(BM_MtBufferedRefine)->Unit(benchmark::kMillisecond);

void BM_GpuBufferedRefine(benchmark::State& state) {
  auto& f = fixture();
  gp::Device dev;
  auto gg = gp::GpuGraph::upload(dev, f.g, "bench");
  gp::wgt_t cut_after = 0;
  for (auto _ : state) {
    gp::DeviceBuffer<gp::part_t> dw(dev, f.base.where.size(), "w");
    dw.h2d(f.base.where);
    (void)gp::gpu_refine(dev, gg, dw, 64, 0.05, 8, 0, 1 << 14);
    gp::Partition p{64, dw.d2h_vector()};
    cut_after = gp::edge_cut(f.g, p);
    benchmark::DoNotOptimize(p.where.data());
  }
  state.counters["cut_after"] =
      benchmark::Counter(static_cast<double>(cut_after));
}
BENCHMARK(BM_GpuBufferedRefine)->Unit(benchmark::kMillisecond);

// gain_eval ablation: cost of evaluating one proposed move.  The
// historical code path scans the vertex's whole adjacency to accumulate
// per-part connectivity; the incremental cache (DESIGN.md §3.6) answers
// from the per-vertex sparse table.  The `gain_eval` counter is the
// per-proposal cost (kInvert: printed in ns per proposed move).
void BM_GainEvalFullScan(benchmark::State& state) {
  auto& f = fixture();
  const gp::vid_t n = f.g.num_vertices();
  std::vector<gp::wgt_t> conn(64, 0);
  std::vector<gp::part_t> parts;
  for (auto _ : state) {
    gp::wgt_t acc = 0;
    for (gp::vid_t v = 0; v < n; ++v) {
      const gp::wgt_t internal =
          gp::vertex_connectivity(f.g, f.base.where, v, conn, parts);
      gp::wgt_t best = internal;
      gp::part_t best_q = gp::kInvalidPart;
      for (const gp::part_t q : parts) {
        const gp::wgt_t c = conn[static_cast<std::size_t>(q)];
        if (c > best) {
          best = c;
          best_q = q;
        }
        conn[static_cast<std::size_t>(q)] = 0;
      }
      acc += best + best_q;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["gain_eval"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate |
                                  benchmark::Counter::kInvert);
}
BENCHMARK(BM_GainEvalFullScan)->Unit(benchmark::kMillisecond);

void BM_GainEvalCached(benchmark::State& state) {
  auto& f = fixture();
  const gp::vid_t n = f.g.num_vertices();
  gp::GainCache cache;
  cache.build(f.g, f.base.where, 64);
  const auto allowed = [](gp::part_t) { return true; };
  for (auto _ : state) {
    gp::wgt_t acc = 0;
    for (gp::vid_t v = 0; v < n; ++v) {
      if (!cache.boundary(v)) continue;  // interior: rejected in O(1)
      const auto best = cache.best_destination(
          f.g, f.base.where, v,
          f.base.where[static_cast<std::size_t>(v)], cache.internal(v),
          allowed);
      acc += best.conn + best.part;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["gain_eval"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate |
                                  benchmark::Counter::kInvert);
}
BENCHMARK(BM_GainEvalCached)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
