// Ablation: the device-wide prefix sum behind the 4-kernel cmap pipeline
// (Fig. 4).  Compares the 3-launch blocked device scan against the serial
// and pool-parallel host scans at several sizes.
#include <benchmark/benchmark.h>

#include "gpu/scan.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::int64_t> make_input(std::int64_t n) {
  gp::Rng rng(7);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next_below(16));
  return v;
}

void BM_SerialScan(benchmark::State& state) {
  const auto input = make_input(state.range(0));
  for (auto _ : state) {
    auto v = input;
    gp::inclusive_scan_serial(v);
    benchmark::DoNotOptimize(v.back());
  }
}
BENCHMARK(BM_SerialScan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_HostParallelScan(benchmark::State& state) {
  const auto input = make_input(state.range(0));
  gp::ThreadPool pool(8);
  for (auto _ : state) {
    auto v = input;
    gp::inclusive_scan_parallel(pool, v);
    benchmark::DoNotOptimize(v.back());
  }
}
BENCHMARK(BM_HostParallelScan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_DeviceScan(benchmark::State& state) {
  const auto input = make_input(state.range(0));
  gp::Device dev;
  for (auto _ : state) {
    auto buf = gp::to_device(dev, input, "scan");
    const auto total = gp::device_inclusive_scan(dev, buf);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_DeviceScan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

}  // namespace

BENCHMARK_MAIN();
