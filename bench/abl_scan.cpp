// Ablation: device-wide prefix-sum / dispatch strategy (DESIGN.md §3.9).
//
// Compares the historical 3-launch blocked device scan against the
// single-dispatch decoupled-lookback scan across 2^10..2^24 elements,
// with the serial and pool-parallel host scans as CPU reference points.
// Each device benchmark reports two extra counters:
//
//   launches          kernel dispatches per scan (blocked: 3 past one
//                     block, 1 degenerate; lookback: always 1)
//   modeled_ns_per_elem  cost-model nanoseconds per element — where the
//                     saved launch overheads actually show up, since the
//                     wall time of the simulated device also pays host
//                     scheduling noise the model deliberately excludes
#include <benchmark/benchmark.h>

#include "gpu/scan.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"

namespace {

std::vector<std::int64_t> make_input(std::int64_t n) {
  gp::Rng rng(7);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next_below(16));
  return v;
}

void BM_SerialScan(benchmark::State& state) {
  const auto input = make_input(state.range(0));
  for (auto _ : state) {
    auto v = input;
    gp::inclusive_scan_serial(v);
    benchmark::DoNotOptimize(v.back());
  }
}
BENCHMARK(BM_SerialScan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_HostParallelScan(benchmark::State& state) {
  const auto input = make_input(state.range(0));
  gp::ThreadPool pool(8);
  for (auto _ : state) {
    auto v = input;
    gp::inclusive_scan_parallel(pool, v);
    benchmark::DoNotOptimize(v.back());
  }
}
BENCHMARK(BM_HostParallelScan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

/// Shared body for the two device modes: per-iteration upload + scan on
/// a ledger-attached device, reporting launches and modeled ns/element.
void run_device_scan(benchmark::State& state, gp::GpuScanMode mode) {
  const std::int64_t n = state.range(0);
  const auto input = make_input(n);
  gp::Device dev;
  for (auto _ : state) {
    auto buf = gp::to_device(dev, input, "scan");
    gp::CostLedger ledger;
    dev.set_ledger(&ledger);
    const std::uint64_t before = dev.kernels_launched();
    const auto total = gp::device_inclusive_scan(dev, buf, "scan", mode);
    benchmark::DoNotOptimize(total);
    dev.set_ledger(nullptr);
    state.counters["launches"] = static_cast<double>(
        dev.kernels_launched() - before);
    state.counters["modeled_ns_per_elem"] =
        ledger.total_seconds() * 1e9 / static_cast<double>(n);
  }
}

void BM_DeviceScanBlocked(benchmark::State& state) {
  run_device_scan(state, gp::GpuScanMode::kBlocked);
}
BENCHMARK(BM_DeviceScanBlocked)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 24);

void BM_DeviceScanLookback(benchmark::State& state) {
  run_device_scan(state, gp::GpuScanMode::kLookback);
}
BENCHMARK(BM_DeviceScanLookback)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 24);

}  // namespace

BENCHMARK_MAIN();
