// Ablation: speculative (Galois/Gmetis-style) matching vs the lock-free
// two-round scheme (mt-metis/GP-metis) — the central synchronization
// design choice the paper argues for: "using atomics or locks for
// synchronization imposes high overheads".  Reports abort/conflict rates
// and the resulting coarse sizes.
#include <benchmark/benchmark.h>

#include "galois/gmetis_partitioner.hpp"
#include "gen/generators.hpp"
#include "mt/mt_matching.hpp"

namespace {

const gp::CsrGraph& test_graph() {
  static const gp::CsrGraph g = gp::delaunay_graph(100000, 42);
  return g;
}

void BM_SpeculativeMatch(benchmark::State& state) {
  const auto& g = test_graph();
  gp::ThreadPool pool(8);
  gp::GmetisMatchStats st;
  std::uint64_t seed = 1;
  gp::vid_t nc = 0;
  for (auto _ : state) {
    const auto m = gp::gmetis_match(g, pool, seed++, &st);
    nc = m.n_coarse;
    benchmark::DoNotOptimize(nc);
  }
  state.counters["abort_rate"] = benchmark::Counter(st.spec.abort_rate());
  state.counters["lock_acquisitions"] =
      benchmark::Counter(static_cast<double>(st.spec.lock_acquisitions));
  state.counters["coarse_vertices"] = benchmark::Counter(static_cast<double>(nc));
}
BENCHMARK(BM_SpeculativeMatch)->Unit(benchmark::kMillisecond);

void BM_LockFreeTwoRoundMatch(benchmark::State& state) {
  const auto& g = test_graph();
  gp::ThreadPool pool(8);
  gp::MtContext ctx{&pool, nullptr, 1};
  gp::MtMatchStats st;
  gp::vid_t nc = 0;
  for (auto _ : state) {
    ctx.seed++;
    const auto m = gp::mt_match(g, ctx, 0, &st);
    nc = m.n_coarse;
    benchmark::DoNotOptimize(nc);
  }
  state.counters["conflicts"] =
      benchmark::Counter(static_cast<double>(st.conflicts));
  state.counters["lock_acquisitions"] = benchmark::Counter(0);
  state.counters["coarse_vertices"] = benchmark::Counter(static_cast<double>(nc));
}
BENCHMARK(BM_LockFreeTwoRoundMatch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
