// Ablation: the GPU->CPU handoff threshold (the paper's "threshold level"
// beyond which coarsening is faster on the CPU than the GPU due to the
// lack of sufficient parallel tasks).  Sweeps the threshold and reports
// the modeled total time — the U-shape justifies the design choice.
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "hybrid/gp_partitioner.hpp"

namespace {

const gp::CsrGraph& test_graph() {
  static const gp::CsrGraph g = gp::delaunay_graph(120000, 9);
  return g;
}

void BM_ThresholdSweep(benchmark::State& state) {
  const auto& g = test_graph();
  double modeled = 0;
  int gpu_levels = 0;
  for (auto _ : state) {
    gp::PartitionOptions opts;
    opts.k = 64;
    opts.gpu_cpu_threshold = static_cast<gp::vid_t>(state.range(0));
    gp::GpPhaseLog log;
    const auto r = gp::gp_metis_run(g, opts, &log);
    benchmark::DoNotOptimize(r.cut);
    modeled = r.modeled_seconds;
    gpu_levels = log.gpu_coarsen_levels;
  }
  state.counters["modeled_seconds"] = benchmark::Counter(modeled);
  state.counters["gpu_levels"] =
      benchmark::Counter(static_cast<double>(gpu_levels));
}
// Threshold from "hand off almost immediately" to "never hand off".
BENCHMARK(BM_ThresholdSweep)
    ->Arg(2048)
    ->Arg(8192)
    ->Arg(16384)
    ->Arg(32768)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
