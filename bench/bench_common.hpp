// Shared experiment runner for the table/figure benches.
//
// Every reproduction binary runs the same matrix the paper's evaluation
// uses — {Metis, ParMetis, mt-metis, GP-metis} x {ldoor, delaunay,
// hugebubble, usa-roads}, k = 64, 3% imbalance, best of `reps` runs — and
// prints its own view (speedup figure, runtime table, edge-cut table).
//
// CLI flags (all optional):
//   --scale <f>   graph size as a fraction of the paper's (default 1/64)
//   --k <int>     number of parts (default 64, as in the paper)
//   --reps <int>  repetitions; the minimum time is reported (paper: 3)
//   --seed <int>  base RNG seed
//   --graphs a,b  comma-separated subset of the four graph names
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"

namespace gp::bench {

struct BenchConfig {
  double scale = 1.0 / 64.0;
  part_t k = 64;
  int reps = 2;
  std::uint64_t seed = 1;
  /// GPU->CPU handoff size.  The paper's full-size graphs (1M-24M
  /// vertices) all dwarf the hardware threshold; the scaled-down bench
  /// instances must scale the handoff down with them or the smaller
  /// graphs would never exercise the GPU phases at all.
  vid_t gpu_threshold = 4096;
  /// Device scan/dispatch strategy for the GPU phases (DESIGN.md §3.9).
  GpuScanMode gpu_scan = GpuScanMode::kLookback;
  std::vector<std::string> graphs = {"ldoor", "delaunay", "hugebubble",
                                     "usa-roads"};
};

/// Flag-parse failure: prints the message and exits(2).  Malformed or
/// out-of-range numeric flags must not silently run a degenerate matrix
/// (e.g. `--reps 0` would "succeed" in 0 seconds with no rows).
[[noreturn]] inline void usage_error(const std::string& msg) {
  std::fprintf(stderr, "bench: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: bench [--scale <f>] [--k <int>] [--reps <int>] "
               "[--seed <int>] [--gpu-threshold <int>] "
               "[--gpu-scan blocked|lookback] [--graphs a,b,...]\n");
  std::exit(2);
}

inline double parse_numeric_flag(const char* flag, const char* value,
                                 double lo, double hi) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (value[0] == '\0' || end == nullptr || *end != '\0') {
    usage_error(std::string(flag) + ": expected a number, got \"" + value +
                "\"");
  }
  if (!(v >= lo && v <= hi)) {
    usage_error(std::string(flag) + " " + value + " out of range [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

inline BenchConfig parse_args(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    auto num = [&](double lo, double hi) {
      const char* flag = argv[i];
      return parse_numeric_flag(flag, next(), lo, hi);
    };
    auto integer = [&](double lo, double hi) {
      const char* flag = argv[i];
      const double v = parse_numeric_flag(flag, next(), lo, hi);
      if (v != static_cast<double>(static_cast<long long>(v))) {
        usage_error(std::string(flag) + ": expected an integer");
      }
      return static_cast<long long>(v);
    };
    if (!std::strcmp(argv[i], "--scale")) cfg.scale = num(1e-9, 16.0);
    else if (!std::strcmp(argv[i], "--k")) cfg.k = static_cast<part_t>(integer(1, 1 << 20));
    else if (!std::strcmp(argv[i], "--reps")) cfg.reps = static_cast<int>(integer(1, 1000));
    else if (!std::strcmp(argv[i], "--seed")) cfg.seed = static_cast<std::uint64_t>(integer(0, 9.2e18));
    else if (!std::strcmp(argv[i], "--gpu-threshold")) cfg.gpu_threshold = static_cast<vid_t>(integer(0, 2e9));
    else if (!std::strcmp(argv[i], "--gpu-scan")) {
      const std::string m = next();
      if (m == "blocked") cfg.gpu_scan = GpuScanMode::kBlocked;
      else if (m == "lookback") cfg.gpu_scan = GpuScanMode::kLookback;
      else usage_error("--gpu-scan: expected blocked|lookback, got \"" + m + "\"");
    }
    else if (!std::strcmp(argv[i], "--graphs")) {
      cfg.graphs.clear();
      std::string s = next();
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const auto comma = s.find(',', pos);
        const auto name = s.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (name.empty()) usage_error("--graphs: empty graph name");
        cfg.graphs.push_back(name);
        pos = (comma == std::string::npos) ? comma : comma + 1;
      }
      if (cfg.graphs.empty()) usage_error("--graphs: no graph names given");
    }
  }
  return cfg;
}

struct RunRow {
  std::string graph;
  std::string partitioner;
  double modeled_s = 0;  ///< min over reps (the paper reports min of 3)
  double wall_s = 0;
  wgt_t cut = 0;         ///< cut of the min-time run
  double balance = 0;
  PhaseSeconds phases;
};

/// Runs the full matrix.  Row order: graph-major, partitioner order
/// {metis, parmetis, mt-metis, gp-metis}.
inline std::vector<RunRow> run_matrix(const BenchConfig& cfg, bool verbose) {
  std::vector<std::unique_ptr<Partitioner>> systems;
  systems.push_back(make_serial_partitioner());
  systems.push_back(make_par_partitioner());
  systems.push_back(make_mt_partitioner());
  systems.push_back(make_hybrid_partitioner());

  std::vector<RunRow> rows;
  for (const auto& gname : cfg.graphs) {
    if (verbose) std::fprintf(stderr, "# generating %s (scale %.5f)...\n", gname.c_str(), cfg.scale);
    const CsrGraph g = make_paper_graph(gname, cfg.scale, cfg.seed);
    if (verbose) {
      std::fprintf(stderr, "#   %d vertices, %lld edges\n", g.num_vertices(),
                   static_cast<long long>(g.num_edges()));
    }
    for (const auto& sys : systems) {
      RunRow row;
      row.graph = gname;
      row.partitioner = sys->name();
      row.modeled_s = 1e300;
      for (int rep = 0; rep < cfg.reps; ++rep) {
        PartitionOptions opts;
        opts.k = cfg.k;
        opts.eps = 0.03;
        opts.gpu_cpu_threshold = cfg.gpu_threshold;
        opts.gpu_scan = cfg.gpu_scan;
        opts.seed = cfg.seed + static_cast<std::uint64_t>(rep);
        const auto r = sys->run(g, opts);
        if (r.modeled_seconds < row.modeled_s) {
          row.modeled_s = r.modeled_seconds;
          row.wall_s = r.wall_seconds;
          row.cut = r.cut;
          row.balance = r.balance;
          row.phases = r.phases;
        }
      }
      if (verbose) {
        std::fprintf(stderr, "#   %-9s modeled %8.3f s  cut %lld\n",
                     row.partitioner.c_str(), row.modeled_s,
                     static_cast<long long>(row.cut));
      }
      rows.push_back(row);
    }
  }
  return rows;
}

/// row lookup helper
inline const RunRow& find(const std::vector<RunRow>& rows,
                          const std::string& graph,
                          const std::string& partitioner) {
  for (const auto& r : rows) {
    if (r.graph == graph && r.partitioner == partitioner) return r;
  }
  std::fprintf(stderr, "missing row %s/%s\n", graph.c_str(),
               partitioner.c_str());
  std::abort();
}

}  // namespace gp::bench
