// End-to-end performance bench — the BENCH_*.json perf trajectory anchor.
//
// Runs the paper matrix ({metis, parmetis, mt-metis, gp-metis} x the four
// paper graphs) and emits machine-readable JSON with, per row:
//
//   * wall_s        best-of-reps wall-clock seconds in this container —
//                   the number perf PRs are judged on,
//   * modeled_s     best-of-reps modeled seconds (paper-testbed time),
//   * phases        modeled per-phase breakdown (coarsen / initpart /
//                   uncoarsen / transfer),
//   * cut/balance   quality of the best-time run,
//   * exec          engine counters (kernels launched, buffer-pool
//                   hits/misses) when the partitioner reports them,
//   * partition_fnv FNV-1a hash of the partition vector of the best run,
//   * audit_wall_s / audit_overhead
//                   best-of-reps wall with --audit phase armed, and its
//                   ratio to the audit-off wall — the price of the
//                   silent-corruption defenses (DESIGN.md §3.5).
//
// A separate "determinism" section re-runs every partitioner
// single-threaded (threads=1, one device worker) on a small fixed graph
// and records the partition hash — byte-comparing partition vectors
// across binaries.  `--baseline old.json` embeds per-row speedups and
// determinism-hash comparisons against a previous run, so
// `bench_e2e --baseline BENCH_e2e_pre.json` is the before/after check.
//
// Extra flags on top of bench_common's:
//   --out <path>       output path (default BENCH_e2e.json)
//   --baseline <path>  previous BENCH_e2e.json to compare against
//
// Exit status: non-zero when any partitioner errored (CI smoke gate).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "util/timer.hpp"

namespace {

using namespace gp;
using namespace gp::bench;

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_partition(const Partition& p) {
  return p.where.empty()
             ? 0
             : fnv1a(p.where.data(), p.where.size() * sizeof(part_t));
}

struct E2eRow {
  std::string graph;
  std::string partitioner;
  bool ok = false;
  std::string error;
  double wall_s = 0;
  double modeled_s = 0;
  PhaseSeconds phases;
  wgt_t cut = 0;
  double balance = 0;
  std::uint64_t partition_fnv = 0;
  std::uint64_t kernels = 0;
  std::uint64_t kernels_coarsen = 0;    ///< dispatches under kernel/coarsen/
  std::uint64_t kernels_uncoarsen = 0;  ///< dispatches under kernel/uncoarsen/
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  double audit_wall_s = 0;
  double audit_overhead = 0;
};

struct DetRow {
  std::string partitioner;
  bool ok = false;
  std::uint64_t partition_fnv = 0;
  wgt_t cut = 0;
};

/// Minimal extraction of `"key": <number>` / `"key": "<string>"` pairs from
/// a previous BENCH_e2e.json — enough to match rows without a JSON library.
struct BaselineRow {
  std::string graph, partitioner;
  double wall_s = 0;
  std::uint64_t det_fnv = 0;
  bool has_det = false;
};

std::vector<BaselineRow> load_baseline(const std::string& path) {
  std::vector<BaselineRow> rows;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_e2e: cannot open baseline %s\n", path.c_str());
    return rows;
  }
  std::string line;
  BaselineRow cur;
  bool in_det = false;
  auto field = [&](const char* key) -> std::string {
    const auto pos = line.find(std::string("\"") + key + "\":");
    if (pos == std::string::npos) return {};
    auto v = line.substr(pos + std::strlen(key) + 3);
    while (!v.empty() && (v.front() == ' ')) v.erase(v.begin());
    if (!v.empty() && v.front() == '"') {
      const auto end = v.find('"', 1);
      return v.substr(1, end == std::string::npos ? end : end - 1);
    }
    return v.substr(0, v.find_first_of(",}\n"));
  };
  while (std::getline(in, line)) {
    if (line.find("\"determinism\"") != std::string::npos) in_det = true;
    const auto g = field("graph");
    const auto p = field("partitioner");
    if (!p.empty()) {
      cur = BaselineRow{};
      cur.graph = g;
      cur.partitioner = p;
    }
    const auto w = field("wall_s");
    if (!w.empty()) cur.wall_s = std::atof(w.c_str());
    const auto f = field("partition_fnv");
    if (!f.empty()) {
      cur.det_fnv = std::strtoull(f.c_str(), nullptr, 10);
      cur.has_det = in_det;
      rows.push_back(cur);
    }
  }
  return rows;
}

const BaselineRow* find_baseline(const std::vector<BaselineRow>& rows,
                                 const std::string& graph,
                                 const std::string& partitioner, bool det) {
  for (const auto& r : rows) {
    if (r.partitioner == partitioner && r.has_det == det &&
        (det || r.graph == graph)) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_e2e.json";
  std::string baseline_path;
  // Pre-extract bench_e2e's own flags; bench_common ignores unknowns.
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }
  const BenchConfig cfg = parse_args(argc, argv);
  const auto baseline =
      baseline_path.empty() ? std::vector<BaselineRow>{}
                            : load_baseline(baseline_path);

  std::vector<std::unique_ptr<Partitioner>> systems;
  systems.push_back(make_serial_partitioner());
  systems.push_back(make_par_partitioner());
  systems.push_back(make_mt_partitioner());
  systems.push_back(make_hybrid_partitioner());

  bool any_error = false;
  std::vector<E2eRow> rows;
  for (const auto& gname : cfg.graphs) {
    std::fprintf(stderr, "# generating %s (scale %.6f)...\n", gname.c_str(),
                 cfg.scale);
    const CsrGraph g = make_paper_graph(gname, cfg.scale, cfg.seed);
    std::fprintf(stderr, "#   %d vertices, %lld edges\n", g.num_vertices(),
                 static_cast<long long>(g.num_edges()));
    for (const auto& sys : systems) {
      E2eRow row;
      row.graph = gname;
      row.partitioner = sys->name();
      row.wall_s = 1e300;
      row.modeled_s = 1e300;
      try {
        for (int rep = 0; rep < cfg.reps; ++rep) {
          PartitionOptions opts;
          opts.k = cfg.k;
          opts.eps = 0.03;
          opts.gpu_cpu_threshold = cfg.gpu_threshold;
          opts.seed = cfg.seed + static_cast<std::uint64_t>(rep);
          WallTimer t;
          const auto r = sys->run(g, opts);
          const double wall = t.seconds();
          if (wall < row.wall_s) {
            row.wall_s = wall;
            row.modeled_s = r.modeled_seconds;
            row.phases = r.phases;
            row.cut = r.cut;
            row.balance = r.balance;
            row.partition_fnv = hash_partition(r.partition);
            row.kernels = r.exec.kernels_launched;
            row.kernels_coarsen =
                r.ledger.launches_with_prefix("kernel/coarsen/");
            row.kernels_uncoarsen =
                r.ledger.launches_with_prefix("kernel/uncoarsen/");
            row.pool_hits = r.exec.pool_hits;
            row.pool_misses = r.exec.pool_misses;
          }
        }
        // Audit-overhead column: same matrix with phase audits armed.
        row.audit_wall_s = 1e300;
        for (int rep = 0; rep < cfg.reps; ++rep) {
          PartitionOptions opts;
          opts.k = cfg.k;
          opts.eps = 0.03;
          opts.gpu_cpu_threshold = cfg.gpu_threshold;
          opts.seed = cfg.seed + static_cast<std::uint64_t>(rep);
          opts.audit_level = AuditLevel::kPhase;
          WallTimer t;
          (void)sys->run(g, opts);
          row.audit_wall_s = std::min(row.audit_wall_s, t.seconds());
        }
        row.audit_overhead =
            row.wall_s > 0 ? row.audit_wall_s / row.wall_s : 0.0;
        row.ok = true;
      } catch (const std::exception& e) {
        row.ok = false;
        row.error = e.what();
        any_error = true;
      }
      std::fprintf(stderr,
                   "#   %-9s %s wall %8.3f s  modeled %8.3f s  "
                   "audit x%.3f\n",
                   row.partitioner.c_str(), row.ok ? "ok " : "ERR",
                   row.ok ? row.wall_s : 0.0, row.ok ? row.modeled_s : 0.0,
                   row.ok ? row.audit_overhead : 0.0);
      rows.push_back(row);
    }
  }

  // --- determinism section: single-threaded fixed-seed partitions ---
  std::vector<DetRow> det_rows;
  {
    const CsrGraph g = make_paper_graph("delaunay", 1.0 / 256.0, 7);
    for (const auto& sys : systems) {
      DetRow d;
      d.partitioner = sys->name();
      try {
        PartitionOptions opts;
        opts.k = 8;
        opts.seed = 7;
        opts.threads = 1;
        opts.ranks = 1;
        opts.gpu_host_workers = 1;
        opts.gpu_cpu_threshold = 1024;
        const auto r = sys->run(g, opts);
        d.partition_fnv = hash_partition(r.partition);
        d.cut = r.cut;
        d.ok = true;
      } catch (const std::exception& e) {
        d.ok = false;
        any_error = true;
        std::fprintf(stderr, "# determinism %s ERR: %s\n",
                     d.partitioner.c_str(), e.what());
      }
      det_rows.push_back(d);
    }
  }

  std::ostringstream os;
  os << "{\n  \"bench\": \"e2e\",\n";
  os << "  \"scale\": " << cfg.scale << ",\n";
  os << "  \"k\": " << cfg.k << ",\n";
  os << "  \"reps\": " << cfg.reps << ",\n";
  os << "  \"seed\": " << cfg.seed << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"graph\": \"%s\", \"partitioner\": \"%s\", \"ok\": %s,\n"
        "     \"wall_s\": %.6f, \"modeled_s\": %.6f,\n"
        "     \"phases\": {\"coarsen\": %.6f, \"initpart\": %.6f, "
        "\"uncoarsen\": %.6f, \"transfer\": %.6f},\n"
        "     \"cut\": %lld, \"balance\": %.6f,\n"
        "     \"kernels\": %llu, \"kernels_coarsen\": %llu, "
        "\"kernels_uncoarsen\": %llu,\n"
        "     \"pool_hits\": %llu, \"pool_misses\": %llu",
        r.graph.c_str(), r.partitioner.c_str(), r.ok ? "true" : "false",
        r.ok ? r.wall_s : 0.0, r.ok ? r.modeled_s : 0.0, r.phases.coarsen,
        r.phases.initpart, r.phases.uncoarsen, r.phases.transfer,
        static_cast<long long>(r.cut), r.balance,
        static_cast<unsigned long long>(r.kernels),
        static_cast<unsigned long long>(r.kernels_coarsen),
        static_cast<unsigned long long>(r.kernels_uncoarsen),
        static_cast<unsigned long long>(r.pool_hits),
        static_cast<unsigned long long>(r.pool_misses));
    os << buf;
    if (!r.error.empty()) os << ",\n     \"error\": \"" << r.error << "\"";
    if (const auto* b =
            find_baseline(baseline, r.graph, r.partitioner, false)) {
      if (r.ok && b->wall_s > 0 && r.wall_s > 0) {
        std::snprintf(buf, sizeof(buf),
                      ",\n     \"baseline_wall_s\": %.6f, "
                      "\"speedup_vs_baseline\": %.3f",
                      b->wall_s, b->wall_s / r.wall_s);
        os << buf;
      }
    }
    if (r.ok) {
      std::snprintf(buf, sizeof(buf),
                    ",\n     \"audit_wall_s\": %.6f, "
                    "\"audit_overhead\": %.3f",
                    r.audit_wall_s, r.audit_overhead);
      os << buf;
    }
    std::snprintf(buf, sizeof(buf), ",\n     \"partition_fnv\": %llu}",
                  static_cast<unsigned long long>(r.partition_fnv));
    os << buf << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"determinism\": [\n";
  for (std::size_t i = 0; i < det_rows.size(); ++i) {
    const auto& d = det_rows[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"partitioner\": \"%s\", \"ok\": %s, \"cut\": %lld, "
                  "\"partition_fnv\": %llu",
                  d.partitioner.c_str(), d.ok ? "true" : "false",
                  static_cast<long long>(d.cut),
                  static_cast<unsigned long long>(d.partition_fnv));
    os << buf;
    if (const auto* b = find_baseline(baseline, "", d.partitioner, true)) {
      os << ", \"matches_baseline\": "
         << ((b->det_fnv == d.partition_fnv) ? "true" : "false");
      if (b->det_fnv != d.partition_fnv) {
        std::fprintf(stderr,
                     "# WARNING: %s determinism hash differs from baseline\n",
                     d.partitioner.c_str());
      }
    }
    os << "}" << (i + 1 < det_rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";

  std::ofstream out(out_path);
  out << os.str();
  out.close();
  std::fprintf(stderr, "# wrote %s%s\n", out_path.c_str(),
               any_error ? " (WITH ERRORS)" : "");
  return any_error ? 1 : 0;
}
