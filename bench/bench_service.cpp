// Service-mode bench — the BENCH_service.json anchor (DESIGN.md §3.8).
//
// Exercises the batched partition-request engine in the two modes the
// design distinguishes and emits machine-readable JSON:
//
//   * open_loop    deterministic 2x-overload tick schedule against the
//                  synchronous engine (workers = 0): every tick submits
//                  two requests and serves one, so admission control MUST
//                  shed — the section records the accept/shed/deadline
//                  counters plus a per-request state trace string that
//                  replays byte-identically for a given seed,
//   * closed_loop  threaded engine at its natural concurrency: submit a
//                  fixed batch, wait for all, report p50/p99 end-to-end
//                  latency and throughput,
//   * retry        fault-injected requests (cmap corruption + phase
//                  audits) through the degradation ladder: retries taken,
//                  final-health split,
//   * deadline     a tight per-request deadline on every request: misses
//                  recorded, zero hangs (the binary completing IS the
//                  no-hang gate — a deadline hang would time the CI job
//                  out).
//
// Flags (on top of nothing — this bench has its own tiny matrix):
//   --out <path>   output path (default BENCH_service.json)
//   --n <int>      vertices per request graph (default 4000)
//   --ticks <int>  open-loop ticks (default 48)
//   --seed <int>   engine + graph seed (default 1)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "gen/generators.hpp"
#include "service/engine.hpp"
#include "util/timer.hpp"

namespace {

using namespace gp;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

char state_char(RequestState s) {
  switch (s) {
    case RequestState::kDone: return 'D';
    case RequestState::kShed: return 'S';
    case RequestState::kCancelled: return 'C';
    case RequestState::kFailed: return 'F';
    default: return '?';
  }
}

void emit_stats(std::ostringstream& os, const ServiceStats& s) {
  os << "\"submitted\": " << s.submitted << ", \"accepted\": " << s.accepted
     << ", \"shed_queue_full\": " << s.shed_queue_full
     << ", \"shed_cost_budget\": " << s.shed_cost_budget
     << ", \"shed_shutdown\": " << s.shed_shutdown
     << ", \"completed\": " << s.completed
     << ", \"completed_degraded\": " << s.completed_degraded
     << ", \"deadline_misses\": " << s.deadline_misses
     << ", \"retries\": " << s.retries << ", \"failed\": " << s.failed;
}

PartitionOptions base_opts(std::uint64_t seed) {
  PartitionOptions opts;
  opts.k = 8;
  opts.threads = 1;           // deterministic per-request work
  opts.gpu_host_workers = 1;
  opts.seed = seed;
  opts.fault_seed = seed;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  vid_t n = 4000;
  int ticks = 48;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (!std::strcmp(argv[i], "--out")) out_path = next();
    else if (!std::strcmp(argv[i], "--n")) n = std::atoi(next());
    else if (!std::strcmp(argv[i], "--ticks")) ticks = std::atoi(next());
    else if (!std::strcmp(argv[i], "--seed")) seed = static_cast<std::uint64_t>(std::atoll(next()));
    else {
      std::fprintf(stderr, "usage: bench_service [--out PATH] [--n N] "
                           "[--ticks N] [--seed N]\n");
      return 2;
    }
  }

  const CsrGraph g = delaunay_graph(n, 3);
  std::ostringstream js;
  js << "{\n  \"schema\": \"bench_service/v1\",\n";
  js << "  \"graph\": {\"name\": \"delaunay\", \"n\": " << g.num_vertices()
     << ", \"m\": " << g.num_edges() << "},\n";
  js << "  \"seed\": " << seed << ",\n";

  // ---------------- open loop: deterministic 2x overload ----------------
  {
    ServiceConfig cfg;
    cfg.workers = 0;  // synchronous: the tick schedule is the only clock
    cfg.queue_depth = 8;
    cfg.seed = seed;
    ServiceEngine engine(cfg);
    std::vector<std::shared_ptr<RequestTicket>> tickets;
    const Priority rot[3] = {Priority::kInteractive, Priority::kNormal,
                             Priority::kBatch};
    WallTimer timer;
    for (int t = 0; t < ticks; ++t) {
      // 2x overload: two arrivals per service slot.
      for (int a = 0; a < 2; ++a) {
        tickets.push_back(engine.submit(g, base_opts(seed),
                                        rot[(2 * t + a) % 3], -1.0,
                                        "mt-metis"));
      }
      engine.run_one();
    }
    engine.shutdown(/*drain=*/true);
    const double wall = timer.seconds();

    std::string trace;
    trace.reserve(tickets.size());
    std::vector<double> run_lat;
    for (auto& t : tickets) {
      const auto out = t->wait();
      trace.push_back(state_char(out.state));
      if (out.state == RequestState::kDone) run_lat.push_back(out.run_seconds);
    }
    const auto s = engine.stats();
    js << "  \"open_loop\": {";
    emit_stats(js, s);
    js << ", \"overload_factor\": 2.0, \"wall_s\": " << wall
       << ", \"run_p50_s\": " << percentile(run_lat, 0.50)
       << ", \"run_p99_s\": " << percentile(run_lat, 0.99)
       << ", \"trace\": \"" << trace << "\"},\n";
    std::printf("open loop (2x overload, %d ticks):\n%s", ticks,
                format_service_stats(s).c_str());
  }

  // ------------------- closed loop: threaded engine ---------------------
  {
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queue_depth = 256;
    cfg.seed = seed;
    ServiceEngine engine(cfg);
    const int requests = 32;
    std::vector<std::shared_ptr<RequestTicket>> tickets;
    WallTimer timer;
    for (int r = 0; r < requests; ++r) {
      tickets.push_back(engine.submit(g, base_opts(seed), Priority::kNormal,
                                      -1.0, "mt-metis"));
    }
    std::vector<double> lat;
    for (auto& t : tickets) lat.push_back(t->wait().total_seconds());
    const double wall = timer.seconds();
    engine.shutdown(/*drain=*/true);
    const auto s = engine.stats();
    js << "  \"closed_loop\": {";
    emit_stats(js, s);
    js << ", \"workers\": 4, \"requests\": " << requests
       << ", \"wall_s\": " << wall
       << ", \"p50_s\": " << percentile(lat, 0.50)
       << ", \"p99_s\": " << percentile(lat, 0.99)
       << ", \"throughput_rps\": "
       << (wall > 0 ? static_cast<double>(requests) / wall : 0.0) << "},\n";
    std::printf("closed loop (4 workers, %d requests): p50 %.4fs p99 %.4fs\n",
                requests, percentile(lat, 0.50), percentile(lat, 0.99));
  }

  // ----------------- retry ladder under injected faults -----------------
  {
    ServiceConfig cfg;
    cfg.workers = 0;
    cfg.queue_depth = 64;
    cfg.seed = seed;
    ServiceEngine engine(cfg);
    PartitionOptions opts = base_opts(seed);
    opts.audit_level = AuditLevel::kPhase;
    opts.fault_spec = "cmap@0";
    const int requests = 8;
    std::vector<std::shared_ptr<RequestTicket>> tickets;
    for (int r = 0; r < requests; ++r) {
      tickets.push_back(engine.submit(g, opts, Priority::kNormal, -1.0,
                                      "mt-metis"));
    }
    while (engine.run_one()) {
    }
    engine.shutdown(/*drain=*/true);
    int healthy = 0;
    double backoff = 0.0;
    for (auto& t : tickets) {
      const auto out = t->wait();
      if (out.state == RequestState::kDone && !out.result.health.degraded) {
        ++healthy;
      }
      backoff += out.backoff_seconds;
    }
    const auto s = engine.stats();
    js << "  \"retry\": {";
    emit_stats(js, s);
    js << ", \"requests\": " << requests
       << ", \"converged_healthy\": " << healthy
       << ", \"modeled_backoff_s\": " << backoff << "},\n";
    std::printf("retry (cmap@0 faults, %d requests): %d healthy after "
                "%llu retries\n",
                requests, healthy,
                static_cast<unsigned long long>(s.retries));
  }

  // --------------------- tight per-request deadline ---------------------
  {
    ServiceConfig cfg;
    cfg.workers = 0;
    cfg.queue_depth = 64;
    cfg.seed = seed;
    ServiceEngine engine(cfg);
    const int requests = 8;
    std::vector<std::shared_ptr<RequestTicket>> tickets;
    for (int r = 0; r < requests; ++r) {
      tickets.push_back(engine.submit(g, base_opts(seed), Priority::kNormal,
                                      /*deadline=*/1e-6, "metis"));
    }
    while (engine.run_one()) {
    }
    engine.shutdown(/*drain=*/true);
    int valid = 0;
    for (auto& t : tickets) {
      const auto out = t->wait();
      if (out.state == RequestState::kDone &&
          validate_partition(g, out.result.partition, out.result.cut,
                             out.result.balance)
              .empty()) {
        ++valid;
      }
    }
    const auto s = engine.stats();
    js << "  \"deadline\": {";
    emit_stats(js, s);
    js << ", \"requests\": " << requests
       << ", \"deadline_s\": 1e-6, \"valid_partitions\": " << valid
       << ", \"hangs\": 0},\n";
    std::printf("deadline (1us): %d/%d valid best-so-far partitions, "
                "%llu misses, 0 hangs\n",
                valid, requests,
                static_cast<unsigned long long>(s.deadline_misses));
    if (valid != requests) {
      std::fprintf(stderr, "bench_service: deadline-expired request "
                           "returned an invalid partition\n");
      return 1;
    }
  }

  js << "  \"notes\": \"open_loop.trace is deterministic per seed; "
        "deadline.hangs is structurally 0 — a hang would hit the CI "
        "timeout\"\n}\n";

  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  f << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
