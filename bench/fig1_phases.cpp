// Reproduces Fig. 1: the proposed heterogeneous partitioning scheme —
// which phases run on the GPU, which on the CPU, and where the transfers
// happen.  Prints the phase placement log of a GP-metis run.
#include <cstdio>

#include "bench_common.hpp"
#include "hybrid/gp_partitioner.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  using namespace gp::bench;
  const BenchConfig cfg = parse_args(argc, argv);

  std::printf("Figure 1. Proposed heterogeneous graph partitioning scheme\n");
  for (const auto& gname : cfg.graphs) {
    const CsrGraph g = make_paper_graph(gname, cfg.scale, cfg.seed);
    PartitionOptions opts;
    opts.k = cfg.k;
    opts.seed = cfg.seed;
    opts.gpu_cpu_threshold = cfg.gpu_threshold;
    GpPhaseLog log;
    const auto r = gp_metis_run(g, opts, &log);

    std::printf("\n=== %s (%d vertices, %lld edges) ===\n", gname.c_str(),
                g.num_vertices(), static_cast<long long>(g.num_edges()));
    std::printf("  [GPU]  coarsening: %d levels (%d -> %d vertices)\n",
                log.gpu_coarsen_levels, g.num_vertices(),
                log.handoff_vertices);
    std::printf("  [->]   transfer coarse graph to CPU\n");
    std::printf("  [CPU]  coarsening: %d more levels (-> %d vertices)\n",
                log.cpu_levels, r.coarsest_vertices);
    std::printf("  [CPU]  initial partitioning (mt-metis, %d threads)\n",
                opts.threads);
    std::printf("  [CPU]  refinement on the CPU levels\n");
    std::printf("  [<-]   transfer partitioned graph to GPU\n");
    std::printf("  [GPU]  un-coarsening: %d projections + lock-free "
                "buffered refinement\n",
                log.gpu_coarsen_levels);
    std::printf("  transfers: %.2f MB H2D, %.2f MB D2H; "
                "modeled transfer time %.4f s of %.3f s total\n",
                static_cast<double>(log.h2d_bytes) / 1.0e6,
                static_cast<double>(log.d2h_bytes) / 1.0e6,
                r.phases.transfer, r.modeled_seconds);
    std::printf("  matching conflicts repaired on GPU: %llu\n",
                static_cast<unsigned long long>(log.match_conflicts));
    std::printf("  cut %lld, balance %.4f\n", static_cast<long long>(r.cut),
                r.balance);
  }
  return 0;
}
