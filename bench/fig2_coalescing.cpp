// Reproduces Fig. 2: memory coalescing.  Replays the two vertex-to-thread
// assignment policies on a real kernel access pattern and counts the
// 128-byte transactions each warp issues:
//
//   blocked assignment — thread t reads vertices [t*n/T, (t+1)*n/T):
//     a warp's threads touch vertices n/T apart -> up to 32 transactions
//   strided assignment — thread t reads vertices t, t+T, t+2T, ...:
//     a warp's threads touch consecutive vertices -> 1 transaction
//     (the paper's Fig. 2 policy, used by all GP-metis kernels)
#include <cstdio>

#include "bench_common.hpp"
#include "gpu/coalescing.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  using namespace gp::bench;
  BenchConfig cfg = parse_args(argc, argv);

  const std::int64_t T = 1 << 14;  // logical threads
  const std::int64_t n = 1 << 20;  // vertices
  const int elem = sizeof(vid_t);

  std::printf("Figure 2. Memory coalescing: 128-byte transactions per warp\n");
  std::printf("(one step of a kernel reading match[v] for each owned "
              "vertex; %lld logical threads, %lld vertices)\n\n",
              static_cast<long long>(T), static_cast<long long>(n));

  // One access per logical thread per step: at step s, thread t reads...
  auto analyze_policy = [&](const char* name, bool strided) {
    std::uint64_t total_tx = 0, total_warps = 0;
    const std::int64_t steps = n / T;
    for (std::int64_t s = 0; s < steps; ++s) {
      std::vector<std::uint64_t> addr(static_cast<std::size_t>(T));
      for (std::int64_t t = 0; t < T; ++t) {
        const std::int64_t v = strided ? (s * T + t) : (t * steps + s);
        addr[static_cast<std::size_t>(t)] =
            static_cast<std::uint64_t>(v) * elem;
      }
      const auto st = analyze_coalescing(addr);
      total_tx += st.transactions;
      total_warps += st.warps;
    }
    std::printf("  %-28s %6.2f transactions/warp\n", name,
                static_cast<double>(total_tx) /
                    static_cast<double>(total_warps));
    return static_cast<double>(total_tx) / static_cast<double>(total_warps);
  };

  const double blocked = analyze_policy("blocked (uncoalesced)", false);
  const double strided = analyze_policy("strided (paper's Fig. 2)", true);
  std::printf("\n  coalescing gain: %.1fx fewer transactions\n",
              blocked / strided);
  std::printf("  shape check (strided ~1, blocked ~32): %s\n",
              (strided < 1.5 && blocked > 16.0) ? "PASS" : "FAIL");
  return (strided < 1.5 && blocked > 16.0) ? 0 : 1;
}
