// Reproduces Fig. 5: speedup of ParMetis, mt-metis, and GP-metis over
// serial Metis on the four graphs (k = 64, 3% imbalance, best of N runs).
//
// Paper's qualitative result (numeric cells are not in the provided
// text): GP-metis outperforms Metis and ParMetis on all inputs and is
// comparable to mt-metis — somewhat better on the larger graphs
// (hugebubble, usa-roads), somewhat worse on the smaller ones (ldoor,
// delaunay).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gp::bench;
  const BenchConfig cfg = parse_args(argc, argv);
  const auto rows = run_matrix(cfg, true);

  std::printf("Figure 5. Speedup over serial Metis (modeled on the paper's "
              "testbed: 8-core Xeon E5540 + GTX Titan)\n\n");
  std::printf("%-12s %10s %10s %10s\n", "Graph", "ParMetis", "mt-metis",
              "GP-metis");
  for (const auto& gname : cfg.graphs) {
    const double metis_s = find(rows, gname, "metis").modeled_s;
    std::printf("%-12s %10.2f %10.2f %10.2f\n", gname.c_str(),
                metis_s / find(rows, gname, "parmetis").modeled_s,
                metis_s / find(rows, gname, "mt-metis").modeled_s,
                metis_s / find(rows, gname, "gp-metis").modeled_s);
  }

  std::printf("\nShape checks against the paper's claims:\n");
  bool all_ok = true;
  for (const auto& gname : cfg.graphs) {
    const double metis_s = find(rows, gname, "metis").modeled_s;
    const double gp = metis_s / find(rows, gname, "gp-metis").modeled_s;
    const double pm = metis_s / find(rows, gname, "parmetis").modeled_s;
    const bool beats_metis = gp > 1.0;
    const bool beats_parmetis = gp > pm;
    std::printf("  %-12s GP-metis > Metis: %-4s  GP-metis > ParMetis: %s\n",
                gname.c_str(), beats_metis ? "yes" : "NO",
                beats_parmetis ? "yes" : "NO");
    all_ok &= beats_metis && beats_parmetis;
  }
  std::printf("  overall: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
