// Reproduces Table I: the input-graph inventory (name, vertices, edges,
// description), for the synthetic stand-ins at the configured scale, with
// the paper's full-size numbers alongside.
#include <cstdio>

#include "bench_common.hpp"
#include "core/graph_ops.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  using namespace gp::bench;
  const BenchConfig cfg = parse_args(argc, argv);

  std::printf("TABLE I. Input graphs used in the graph partitioner evaluation\n");
  std::printf("(synthetic stand-ins at scale %.5f of the paper's sizes)\n\n",
              cfg.scale);
  std::printf("%-12s %12s %14s %10s %14s %14s  %s\n", "Graph", "Vertices",
              "Edges", "AvgDeg", "PaperVertices", "PaperEdges",
              "Description");
  for (const auto& info : paper_graphs()) {
    bool selected = false;
    for (const auto& s : cfg.graphs) selected |= (s == info.name);
    if (!selected) continue;
    const auto g = make_paper_graph(info.name, cfg.scale, cfg.seed);
    const auto ds = degree_stats(g);
    std::printf("%-12s %12d %14lld %10.2f %14d %14lld  %s\n",
                info.name.c_str(), g.num_vertices(),
                static_cast<long long>(g.num_edges()), ds.avg_degree,
                info.paper_vertices,
                static_cast<long long>(info.paper_edges),
                info.description.c_str());
  }
  return 0;
}
