// Reproduces Table II: absolute runtimes (seconds) of the three parallel
// partitioners.  For GP-metis the time includes CPU<->GPU transfers, as
// in the paper; I/O is excluded everywhere.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gp::bench;
  const BenchConfig cfg = parse_args(argc, argv);
  const auto rows = run_matrix(cfg, true);

  std::printf("TABLE II. Runtime (in seconds, modeled on the paper's "
              "testbed; GP-metis includes transfer time)\n\n");
  std::printf("%-12s %10s %10s %10s %12s\n", "Graph", "ParMetis", "mt-metis",
              "GP-metis", "(Metis ref)");
  for (const auto& gname : cfg.graphs) {
    std::printf("%-12s %10.3f %10.3f %10.3f %12.3f\n", gname.c_str(),
                find(rows, gname, "parmetis").modeled_s,
                find(rows, gname, "mt-metis").modeled_s,
                find(rows, gname, "gp-metis").modeled_s,
                find(rows, gname, "metis").modeled_s);
  }

  std::printf("\nGP-metis transfer share (included above):\n");
  for (const auto& gname : cfg.graphs) {
    const auto& r = find(rows, gname, "gp-metis");
    std::printf("  %-12s transfer %.4f s of %.3f s total (%.1f%%)\n",
                gname.c_str(), r.phases.transfer, r.modeled_s,
                100.0 * r.phases.transfer / r.modeled_s);
  }
  return 0;
}
