// Reproduces Table III: edge-cut ratio of each parallel partitioner
// relative to serial Metis.  Unlike the timing tables this needs no cost
// model — the cuts are measured exactly from the produced partitions.
//
// Paper's qualitative result: all three produce partitions of comparable
// quality to Metis (ratios near 1), with some degradation for GP-metis on
// a few graphs due to its much higher concurrency (higher conflict rate).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gp::bench;
  const BenchConfig cfg = parse_args(argc, argv);
  const auto rows = run_matrix(cfg, true);

  std::printf("TABLE III. Edge-cut ratio in comparison to Metis "
              "(measured, not modeled)\n\n");
  std::printf("%-12s %10s %10s %10s %14s\n", "Graph", "ParMetis", "mt-metis",
              "GP-metis", "(Metis cut)");
  bool all_ok = true;
  for (const auto& gname : cfg.graphs) {
    const auto metis_cut =
        static_cast<double>(find(rows, gname, "metis").cut);
    const double pm = static_cast<double>(find(rows, gname, "parmetis").cut) / metis_cut;
    const double mt = static_cast<double>(find(rows, gname, "mt-metis").cut) / metis_cut;
    const double gp = static_cast<double>(find(rows, gname, "gp-metis").cut) / metis_cut;
    std::printf("%-12s %10.3f %10.3f %10.3f %14.0f\n", gname.c_str(), pm, mt,
                gp, metis_cut);
    // Shape check: "comparable quality".  Road-network cuts are tiny
    // (k=64 on an avg-degree-2.4 graph), so their ratios are the noisiest
    // — the paper itself reports "quality degradation for some of the
    // graphs"; accept up to 1.5 on these scaled-down instances.
    all_ok &= pm < 1.5 && mt < 1.5 && gp < 1.5;
  }
  std::printf("\nbalance (constraint <= 1.03):\n");
  for (const auto& gname : cfg.graphs) {
    std::printf("  %-12s metis %.3f  parmetis %.3f  mt-metis %.3f  "
                "gp-metis %.3f\n",
                gname.c_str(), find(rows, gname, "metis").balance,
                find(rows, gname, "parmetis").balance,
                find(rows, gname, "mt-metis").balance,
                find(rows, gname, "gp-metis").balance);
  }
  std::printf("\ncomparable-quality check: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
