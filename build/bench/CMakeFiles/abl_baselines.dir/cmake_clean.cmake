file(REMOVE_RECURSE
  "CMakeFiles/abl_baselines.dir/abl_baselines.cpp.o"
  "CMakeFiles/abl_baselines.dir/abl_baselines.cpp.o.d"
  "abl_baselines"
  "abl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
