# Empty dependencies file for abl_baselines.
# This may be replaced when dependencies are built.
