file(REMOVE_RECURSE
  "CMakeFiles/abl_contraction.dir/abl_contraction.cpp.o"
  "CMakeFiles/abl_contraction.dir/abl_contraction.cpp.o.d"
  "abl_contraction"
  "abl_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
