# Empty dependencies file for abl_contraction.
# This may be replaced when dependencies are built.
