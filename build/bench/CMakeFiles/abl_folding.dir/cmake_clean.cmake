file(REMOVE_RECURSE
  "CMakeFiles/abl_folding.dir/abl_folding.cpp.o"
  "CMakeFiles/abl_folding.dir/abl_folding.cpp.o.d"
  "abl_folding"
  "abl_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
