# Empty dependencies file for abl_folding.
# This may be replaced when dependencies are built.
