file(REMOVE_RECURSE
  "CMakeFiles/abl_irregularity.dir/abl_irregularity.cpp.o"
  "CMakeFiles/abl_irregularity.dir/abl_irregularity.cpp.o.d"
  "abl_irregularity"
  "abl_irregularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_irregularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
