# Empty dependencies file for abl_irregularity.
# This may be replaced when dependencies are built.
