file(REMOVE_RECURSE
  "CMakeFiles/abl_kway_refine.dir/abl_kway_refine.cpp.o"
  "CMakeFiles/abl_kway_refine.dir/abl_kway_refine.cpp.o.d"
  "abl_kway_refine"
  "abl_kway_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_kway_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
