# Empty compiler generated dependencies file for abl_kway_refine.
# This may be replaced when dependencies are built.
