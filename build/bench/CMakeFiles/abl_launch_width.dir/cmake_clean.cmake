file(REMOVE_RECURSE
  "CMakeFiles/abl_launch_width.dir/abl_launch_width.cpp.o"
  "CMakeFiles/abl_launch_width.dir/abl_launch_width.cpp.o.d"
  "abl_launch_width"
  "abl_launch_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_launch_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
