# Empty compiler generated dependencies file for abl_launch_width.
# This may be replaced when dependencies are built.
