file(REMOVE_RECURSE
  "CMakeFiles/abl_match_policy.dir/abl_match_policy.cpp.o"
  "CMakeFiles/abl_match_policy.dir/abl_match_policy.cpp.o.d"
  "abl_match_policy"
  "abl_match_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_match_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
