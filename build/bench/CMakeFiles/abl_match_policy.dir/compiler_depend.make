# Empty compiler generated dependencies file for abl_match_policy.
# This may be replaced when dependencies are built.
