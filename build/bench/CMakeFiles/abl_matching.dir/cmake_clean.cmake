file(REMOVE_RECURSE
  "CMakeFiles/abl_matching.dir/abl_matching.cpp.o"
  "CMakeFiles/abl_matching.dir/abl_matching.cpp.o.d"
  "abl_matching"
  "abl_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
