# Empty compiler generated dependencies file for abl_matching.
# This may be replaced when dependencies are built.
