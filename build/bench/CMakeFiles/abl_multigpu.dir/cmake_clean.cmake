file(REMOVE_RECURSE
  "CMakeFiles/abl_multigpu.dir/abl_multigpu.cpp.o"
  "CMakeFiles/abl_multigpu.dir/abl_multigpu.cpp.o.d"
  "abl_multigpu"
  "abl_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
