# Empty compiler generated dependencies file for abl_multigpu.
# This may be replaced when dependencies are built.
