file(REMOVE_RECURSE
  "CMakeFiles/abl_refinement.dir/abl_refinement.cpp.o"
  "CMakeFiles/abl_refinement.dir/abl_refinement.cpp.o.d"
  "abl_refinement"
  "abl_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
