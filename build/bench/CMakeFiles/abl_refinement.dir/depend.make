# Empty dependencies file for abl_refinement.
# This may be replaced when dependencies are built.
