file(REMOVE_RECURSE
  "CMakeFiles/abl_scan.dir/abl_scan.cpp.o"
  "CMakeFiles/abl_scan.dir/abl_scan.cpp.o.d"
  "abl_scan"
  "abl_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
