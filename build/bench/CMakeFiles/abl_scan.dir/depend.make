# Empty dependencies file for abl_scan.
# This may be replaced when dependencies are built.
