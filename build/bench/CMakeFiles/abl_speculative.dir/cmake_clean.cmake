file(REMOVE_RECURSE
  "CMakeFiles/abl_speculative.dir/abl_speculative.cpp.o"
  "CMakeFiles/abl_speculative.dir/abl_speculative.cpp.o.d"
  "abl_speculative"
  "abl_speculative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
