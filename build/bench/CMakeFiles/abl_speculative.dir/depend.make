# Empty dependencies file for abl_speculative.
# This may be replaced when dependencies are built.
