file(REMOVE_RECURSE
  "CMakeFiles/abl_threshold.dir/abl_threshold.cpp.o"
  "CMakeFiles/abl_threshold.dir/abl_threshold.cpp.o.d"
  "abl_threshold"
  "abl_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
