file(REMOVE_RECURSE
  "CMakeFiles/fig1_phases.dir/fig1_phases.cpp.o"
  "CMakeFiles/fig1_phases.dir/fig1_phases.cpp.o.d"
  "fig1_phases"
  "fig1_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
