# Empty dependencies file for fig1_phases.
# This may be replaced when dependencies are built.
