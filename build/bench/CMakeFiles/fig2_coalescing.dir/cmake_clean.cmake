file(REMOVE_RECURSE
  "CMakeFiles/fig2_coalescing.dir/fig2_coalescing.cpp.o"
  "CMakeFiles/fig2_coalescing.dir/fig2_coalescing.cpp.o.d"
  "fig2_coalescing"
  "fig2_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
