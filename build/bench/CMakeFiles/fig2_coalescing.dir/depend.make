# Empty dependencies file for fig2_coalescing.
# This may be replaced when dependencies are built.
