file(REMOVE_RECURSE
  "CMakeFiles/table3_edgecut.dir/table3_edgecut.cpp.o"
  "CMakeFiles/table3_edgecut.dir/table3_edgecut.cpp.o.d"
  "table3_edgecut"
  "table3_edgecut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_edgecut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
