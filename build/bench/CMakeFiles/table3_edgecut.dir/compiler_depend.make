# Empty compiler generated dependencies file for table3_edgecut.
# This may be replaced when dependencies are built.
