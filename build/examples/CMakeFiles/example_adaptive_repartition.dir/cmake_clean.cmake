file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_repartition.dir/adaptive_repartition.cpp.o"
  "CMakeFiles/example_adaptive_repartition.dir/adaptive_repartition.cpp.o.d"
  "example_adaptive_repartition"
  "example_adaptive_repartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
