# Empty dependencies file for example_adaptive_repartition.
# This may be replaced when dependencies are built.
