file(REMOVE_RECURSE
  "CMakeFiles/example_compare_partitioners.dir/compare_partitioners.cpp.o"
  "CMakeFiles/example_compare_partitioners.dir/compare_partitioners.cpp.o.d"
  "example_compare_partitioners"
  "example_compare_partitioners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
