# Empty compiler generated dependencies file for example_compare_partitioners.
# This may be replaced when dependencies are built.
