file(REMOVE_RECURSE
  "CMakeFiles/example_fem_decomposition.dir/fem_decomposition.cpp.o"
  "CMakeFiles/example_fem_decomposition.dir/fem_decomposition.cpp.o.d"
  "example_fem_decomposition"
  "example_fem_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fem_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
