# Empty compiler generated dependencies file for example_fem_decomposition.
# This may be replaced when dependencies are built.
