file(REMOVE_RECURSE
  "CMakeFiles/example_multi_gpu_scaling.dir/multi_gpu_scaling.cpp.o"
  "CMakeFiles/example_multi_gpu_scaling.dir/multi_gpu_scaling.cpp.o.d"
  "example_multi_gpu_scaling"
  "example_multi_gpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_gpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
