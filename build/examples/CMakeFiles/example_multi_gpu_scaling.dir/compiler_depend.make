# Empty compiler generated dependencies file for example_multi_gpu_scaling.
# This may be replaced when dependencies are built.
