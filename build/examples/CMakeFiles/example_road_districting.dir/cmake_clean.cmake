file(REMOVE_RECURSE
  "CMakeFiles/example_road_districting.dir/road_districting.cpp.o"
  "CMakeFiles/example_road_districting.dir/road_districting.cpp.o.d"
  "example_road_districting"
  "example_road_districting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_road_districting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
