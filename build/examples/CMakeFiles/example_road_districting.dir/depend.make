# Empty dependencies file for example_road_districting.
# This may be replaced when dependencies are built.
