file(REMOVE_RECURSE
  "CMakeFiles/example_sparse_solver_ordering.dir/sparse_solver_ordering.cpp.o"
  "CMakeFiles/example_sparse_solver_ordering.dir/sparse_solver_ordering.cpp.o.d"
  "example_sparse_solver_ordering"
  "example_sparse_solver_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sparse_solver_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
