# Empty dependencies file for example_sparse_solver_ordering.
# This may be replaced when dependencies are built.
