
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/nested_dissection.cpp" "src/CMakeFiles/gpmetis.dir/apps/nested_dissection.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/apps/nested_dissection.cpp.o.d"
  "/root/repo/src/baselines/rcb.cpp" "src/CMakeFiles/gpmetis.dir/baselines/rcb.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/baselines/rcb.cpp.o.d"
  "/root/repo/src/baselines/spectral.cpp" "src/CMakeFiles/gpmetis.dir/baselines/spectral.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/baselines/spectral.cpp.o.d"
  "/root/repo/src/core/csr_graph.cpp" "src/CMakeFiles/gpmetis.dir/core/csr_graph.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/core/csr_graph.cpp.o.d"
  "/root/repo/src/core/graph_ops.cpp" "src/CMakeFiles/gpmetis.dir/core/graph_ops.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/core/graph_ops.cpp.o.d"
  "/root/repo/src/core/matching.cpp" "src/CMakeFiles/gpmetis.dir/core/matching.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/core/matching.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/gpmetis.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/CMakeFiles/gpmetis.dir/core/partitioner.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/core/partitioner.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/gpmetis.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/core/report.cpp.o.d"
  "/root/repo/src/galois/gmetis_partitioner.cpp" "src/CMakeFiles/gpmetis.dir/galois/gmetis_partitioner.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/galois/gmetis_partitioner.cpp.o.d"
  "/root/repo/src/galois/speculative.cpp" "src/CMakeFiles/gpmetis.dir/galois/speculative.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/galois/speculative.cpp.o.d"
  "/root/repo/src/gen/basic_graphs.cpp" "src/CMakeFiles/gpmetis.dir/gen/basic_graphs.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/gen/basic_graphs.cpp.o.d"
  "/root/repo/src/gen/delaunay.cpp" "src/CMakeFiles/gpmetis.dir/gen/delaunay.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/gen/delaunay.cpp.o.d"
  "/root/repo/src/gen/paper_graphs.cpp" "src/CMakeFiles/gpmetis.dir/gen/paper_graphs.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/gen/paper_graphs.cpp.o.d"
  "/root/repo/src/gpu/coalescing.cpp" "src/CMakeFiles/gpmetis.dir/gpu/coalescing.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/gpu/coalescing.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/CMakeFiles/gpmetis.dir/gpu/device.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/gpu/device.cpp.o.d"
  "/root/repo/src/hybrid/gp_partitioner.cpp" "src/CMakeFiles/gpmetis.dir/hybrid/gp_partitioner.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/hybrid/gp_partitioner.cpp.o.d"
  "/root/repo/src/hybrid/gpu_contract.cpp" "src/CMakeFiles/gpmetis.dir/hybrid/gpu_contract.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/hybrid/gpu_contract.cpp.o.d"
  "/root/repo/src/hybrid/gpu_matching.cpp" "src/CMakeFiles/gpmetis.dir/hybrid/gpu_matching.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/hybrid/gpu_matching.cpp.o.d"
  "/root/repo/src/hybrid/gpu_refine.cpp" "src/CMakeFiles/gpmetis.dir/hybrid/gpu_refine.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/hybrid/gpu_refine.cpp.o.d"
  "/root/repo/src/hybrid/multi_gpu_partitioner.cpp" "src/CMakeFiles/gpmetis.dir/hybrid/multi_gpu_partitioner.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/hybrid/multi_gpu_partitioner.cpp.o.d"
  "/root/repo/src/io/binary_io.cpp" "src/CMakeFiles/gpmetis.dir/io/binary_io.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/io/binary_io.cpp.o.d"
  "/root/repo/src/io/dimacs_io.cpp" "src/CMakeFiles/gpmetis.dir/io/dimacs_io.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/io/dimacs_io.cpp.o.d"
  "/root/repo/src/io/metis_io.cpp" "src/CMakeFiles/gpmetis.dir/io/metis_io.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/io/metis_io.cpp.o.d"
  "/root/repo/src/model/machine_model.cpp" "src/CMakeFiles/gpmetis.dir/model/machine_model.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/model/machine_model.cpp.o.d"
  "/root/repo/src/mt/mt_contract.cpp" "src/CMakeFiles/gpmetis.dir/mt/mt_contract.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/mt/mt_contract.cpp.o.d"
  "/root/repo/src/mt/mt_initpart.cpp" "src/CMakeFiles/gpmetis.dir/mt/mt_initpart.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/mt/mt_initpart.cpp.o.d"
  "/root/repo/src/mt/mt_matching.cpp" "src/CMakeFiles/gpmetis.dir/mt/mt_matching.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/mt/mt_matching.cpp.o.d"
  "/root/repo/src/mt/mt_partitioner.cpp" "src/CMakeFiles/gpmetis.dir/mt/mt_partitioner.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/mt/mt_partitioner.cpp.o.d"
  "/root/repo/src/mt/mt_refine.cpp" "src/CMakeFiles/gpmetis.dir/mt/mt_refine.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/mt/mt_refine.cpp.o.d"
  "/root/repo/src/par/comm.cpp" "src/CMakeFiles/gpmetis.dir/par/comm.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/par/comm.cpp.o.d"
  "/root/repo/src/par/parmetis_partitioner.cpp" "src/CMakeFiles/gpmetis.dir/par/parmetis_partitioner.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/par/parmetis_partitioner.cpp.o.d"
  "/root/repo/src/serial/bisection.cpp" "src/CMakeFiles/gpmetis.dir/serial/bisection.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/serial/bisection.cpp.o.d"
  "/root/repo/src/serial/hem_matching.cpp" "src/CMakeFiles/gpmetis.dir/serial/hem_matching.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/serial/hem_matching.cpp.o.d"
  "/root/repo/src/serial/jostle_partitioner.cpp" "src/CMakeFiles/gpmetis.dir/serial/jostle_partitioner.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/serial/jostle_partitioner.cpp.o.d"
  "/root/repo/src/serial/kway_refine.cpp" "src/CMakeFiles/gpmetis.dir/serial/kway_refine.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/serial/kway_refine.cpp.o.d"
  "/root/repo/src/serial/metis_partitioner.cpp" "src/CMakeFiles/gpmetis.dir/serial/metis_partitioner.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/serial/metis_partitioner.cpp.o.d"
  "/root/repo/src/serial/rb_partition.cpp" "src/CMakeFiles/gpmetis.dir/serial/rb_partition.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/serial/rb_partition.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/gpmetis.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/util/log.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/gpmetis.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gpmetis.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
