file(REMOVE_RECURSE
  "libgpmetis.a"
)
