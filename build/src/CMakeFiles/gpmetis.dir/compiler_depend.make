# Empty compiler generated dependencies file for gpmetis.
# This may be replaced when dependencies are built.
