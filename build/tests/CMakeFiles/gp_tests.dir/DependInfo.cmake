
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/gp_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_coalescing_and_edge_cases.cpp" "tests/CMakeFiles/gp_tests.dir/test_coalescing_and_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_coalescing_and_edge_cases.cpp.o.d"
  "/root/repo/tests/test_core_graph.cpp" "tests/CMakeFiles/gp_tests.dir/test_core_graph.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_core_graph.cpp.o.d"
  "/root/repo/tests/test_galois.cpp" "tests/CMakeFiles/gp_tests.dir/test_galois.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_galois.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/gp_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_gpu_device.cpp" "tests/CMakeFiles/gp_tests.dir/test_gpu_device.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_gpu_device.cpp.o.d"
  "/root/repo/tests/test_hybrid_partitioner.cpp" "tests/CMakeFiles/gp_tests.dir/test_hybrid_partitioner.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_hybrid_partitioner.cpp.o.d"
  "/root/repo/tests/test_invariants_extra.cpp" "tests/CMakeFiles/gp_tests.dir/test_invariants_extra.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_invariants_extra.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/gp_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_io_binary_report.cpp" "tests/CMakeFiles/gp_tests.dir/test_io_binary_report.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_io_binary_report.cpp.o.d"
  "/root/repo/tests/test_jostle.cpp" "tests/CMakeFiles/gp_tests.dir/test_jostle.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_jostle.cpp.o.d"
  "/root/repo/tests/test_match_policy.cpp" "tests/CMakeFiles/gp_tests.dir/test_match_policy.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_match_policy.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/gp_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_mt_partitioner.cpp" "tests/CMakeFiles/gp_tests.dir/test_mt_partitioner.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_mt_partitioner.cpp.o.d"
  "/root/repo/tests/test_multi_gpu.cpp" "tests/CMakeFiles/gp_tests.dir/test_multi_gpu.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_multi_gpu.cpp.o.d"
  "/root/repo/tests/test_nested_dissection.cpp" "tests/CMakeFiles/gp_tests.dir/test_nested_dissection.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_nested_dissection.cpp.o.d"
  "/root/repo/tests/test_options_validation.cpp" "tests/CMakeFiles/gp_tests.dir/test_options_validation.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_options_validation.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/gp_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/gp_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_par_partitioner.cpp" "tests/CMakeFiles/gp_tests.dir/test_par_partitioner.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_par_partitioner.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/gp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_serial_partitioner.cpp" "tests/CMakeFiles/gp_tests.dir/test_serial_partitioner.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_serial_partitioner.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/gp_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/gp_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpmetis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
