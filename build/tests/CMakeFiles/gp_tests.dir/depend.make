# Empty dependencies file for gp_tests.
# This may be replaced when dependencies are built.
