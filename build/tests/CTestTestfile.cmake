# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(gp_tests "/root/repo/build/tests/gp_tests")
set_tests_properties(gp_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_fem "/root/repo/build/examples/example_fem_decomposition" "8")
set_tests_properties(example_fem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_roads "/root/repo/build/examples/example_road_districting" "5000" "4")
set_tests_properties(example_roads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_compare "/root/repo/build/examples/example_compare_partitioners" "delaunay" "8" "0.002")
set_tests_properties(example_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_ordering "/root/repo/build/examples/example_sparse_solver_ordering" "16")
set_tests_properties(example_ordering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_repartition "/root/repo/build/examples/example_adaptive_repartition" "8000" "4")
set_tests_properties(example_repartition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(table1_smoke "/root/repo/build/bench/table1_graphs" "--scale" "0.001")
set_tests_properties(table1_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gpmetis_cli_smoke "/root/repo/build/tools/gpmetis" "/root/repo/build/tiny.graph" "2" "--system" "metis" "--report" "--out" "/root/repo/build/tiny.part.2")
set_tests_properties(gpmetis_cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gpmetis_cli_multi_smoke "/root/repo/build/tools/gpmetis" "/root/repo/build/tiny.graph" "2" "--system" "gp-metis-multi" "--devices" "2" "--out" "/root/repo/build/tiny.part.2b")
set_tests_properties(gpmetis_cli_multi_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
