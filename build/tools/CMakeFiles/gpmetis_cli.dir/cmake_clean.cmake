file(REMOVE_RECURSE
  "CMakeFiles/gpmetis_cli.dir/gpmetis_cli.cpp.o"
  "CMakeFiles/gpmetis_cli.dir/gpmetis_cli.cpp.o.d"
  "gpmetis"
  "gpmetis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpmetis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
