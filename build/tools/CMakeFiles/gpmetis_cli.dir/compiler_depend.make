# Empty compiler generated dependencies file for gpmetis_cli.
# This may be replaced when dependencies are built.
