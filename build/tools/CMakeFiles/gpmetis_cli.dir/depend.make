# Empty dependencies file for gpmetis_cli.
# This may be replaced when dependencies are built.
