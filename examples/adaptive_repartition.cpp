// Example: adaptive repartitioning — the dynamic-simulation workload
// behind graphs like hugebubbles ("2D dynamic simulation").  A mesh is
// partitioned; the simulation then refines one region (vertex weights
// grow there), unbalancing the decomposition; we repartition and report
// how much data would migrate between ranks.
#include <cstdio>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  vid_t n = 60000;
  part_t k = 16;
  if (argc > 1) n = std::atoi(argv[1]);
  if (argc > 2) k = std::atoi(argv[2]);

  // Initial mesh and decomposition.
  CsrGraph mesh = bubble_mesh_graph(n, 10, 3);
  PartitionOptions opts;
  opts.k = k;
  const auto sys = make_hybrid_partitioner();
  const auto before = sys->run(mesh, opts);
  std::printf("initial decomposition: cut %lld, balance %.4f\n",
              static_cast<long long>(before.cut), before.balance);

  // "Adaptive refinement": the first ~10%% of vertices become 8x heavier
  // (more elements per coarse cell in the refined region).
  {
    auto& vw = mesh.mutable_vwgt();
    for (std::size_t v = 0; v < vw.size() / 10; ++v) vw[v] = 8;
  }
  const double stale_balance = partition_balance(mesh, before.partition);
  std::printf("after refinement burst: stale balance %.4f "
              "(constraint %.2f violated: %s)\n",
              stale_balance, 1.0 + opts.eps,
              stale_balance > 1.0 + opts.eps ? "yes" : "no");

  // Repartition from scratch and measure migration.
  const auto after = sys->run(mesh, opts);
  vid_t migrated = 0;
  wgt_t migrated_weight = 0;
  for (vid_t v = 0; v < mesh.num_vertices(); ++v) {
    if (before.partition.where[static_cast<std::size_t>(v)] !=
        after.partition.where[static_cast<std::size_t>(v)]) {
      ++migrated;
      migrated_weight += mesh.vertex_weight(v);
    }
  }
  std::printf("repartitioned:        cut %lld, balance %.4f\n",
              static_cast<long long>(after.cut), after.balance);
  std::printf("migration: %d vertices (%.1f%% of the mesh), weight %lld\n",
              migrated,
              100.0 * static_cast<double>(migrated) /
                  static_cast<double>(mesh.num_vertices()),
              static_cast<long long>(migrated_weight));
  std::printf("\n(A production AMR code would use a repartitioner that "
              "trades cut for migration; a from-scratch partitioner is the "
              "quality bound.)\n");
  return 0;
}
