// Example: head-to-head comparison harness over the abstract Partitioner
// interface — how a downstream user would pick a system for their graph.
//
// Usage: example_compare_partitioners [graph] [k] [scale]
//   graph: ldoor | delaunay | hugebubble | usa-roads (default delaunay)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  const std::string graph = argc > 1 ? argv[1] : "delaunay";
  const part_t k = argc > 2 ? std::atoi(argv[2]) : 64;
  const double scale = argc > 3 ? std::atof(argv[3]) : 1.0 / 128.0;

  const CsrGraph g = make_paper_graph(graph, scale, 1);
  std::printf("graph %s @ scale %.5f: %d vertices, %lld edges\n\n",
              graph.c_str(), scale, g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  PartitionOptions opts;
  opts.k = k;
  opts.eps = 0.03;

  std::vector<std::unique_ptr<Partitioner>> systems;
  systems.push_back(make_serial_partitioner());
  systems.push_back(make_par_partitioner());
  systems.push_back(make_mt_partitioner());
  systems.push_back(make_hybrid_partitioner());

  std::printf("%-10s %10s %9s %9s | %9s %9s %9s %9s\n", "system", "cut",
              "balance", "modeled", "coarsen", "initpart", "uncoarse",
              "transfer");
  double metis_s = 0;
  for (const auto& sys : systems) {
    const auto r = sys->run(g, opts);
    if (sys->name() == "metis") metis_s = r.modeled_seconds;
    std::printf("%-10s %10lld %9.4f %8.3fs | %8.3fs %8.3fs %8.3fs %8.4fs\n",
                sys->name().c_str(), static_cast<long long>(r.cut),
                r.balance, r.modeled_seconds, r.phases.coarsen,
                r.phases.initpart, r.phases.uncoarsen, r.phases.transfer);
  }
  std::printf("\nspeedups vs metis:\n");
  for (const auto& sys : systems) {
    if (sys->name() == "metis") continue;
    const auto r = sys->run(g, opts);
    std::printf("  %-10s %.2fx\n", sys->name().c_str(),
                metis_s / r.modeled_seconds);
  }
  return 0;
}
