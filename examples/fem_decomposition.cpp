// Example: domain decomposition of a 3D FEM mesh for parallel simulation —
// the classic workload the paper's introduction motivates (each partition
// becomes one MPI rank's subdomain; the edge cut is the halo-exchange
// traffic per timestep).
//
// Demonstrates:
//   * generating an ldoor-like second-order FEM slab,
//   * partitioning it with all four systems,
//   * translating cut/balance into simulation-level metrics
//     (halo bytes per step, expected load imbalance).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/graph_ops.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  int ranks = 32;                 // target MPI ranks
  vid_t nx = 24, ny = 36, nz = 8; // mesh dimensions
  if (argc > 1) ranks = std::atoi(argv[1]);

  const CsrGraph mesh = fem_slab_graph(nx, ny, nz);
  const auto ds = degree_stats(mesh);
  std::printf("FEM mesh: %d nodes, %lld couplings, avg degree %.1f\n",
              mesh.num_vertices(), static_cast<long long>(mesh.num_edges()),
              ds.avg_degree);
  std::printf("decomposing for %d ranks (3%% load tolerance)\n\n", ranks);

  PartitionOptions opts;
  opts.k = static_cast<part_t>(ranks);
  opts.eps = 0.03;

  std::vector<std::unique_ptr<Partitioner>> systems;
  systems.push_back(make_serial_partitioner());
  systems.push_back(make_par_partitioner());
  systems.push_back(make_mt_partitioner());
  systems.push_back(make_hybrid_partitioner());

  std::printf("%-10s %12s %14s %10s %16s\n", "system", "edge cut",
              "halo MB/step", "balance", "modeled part. s");
  for (const auto& sys : systems) {
    const auto r = sys->run(mesh, opts);
    // Each cut coupling moves one 8-byte value in each direction per step.
    const double halo_mb =
        static_cast<double>(r.cut) * 2.0 * 8.0 / 1.0e6;
    std::printf("%-10s %12lld %14.3f %10.4f %16.4f\n", sys->name().c_str(),
                static_cast<long long>(r.cut), halo_mb, r.balance,
                r.modeled_seconds);
  }

  std::printf("\nPer-rank subdomain sizes (gp-metis):\n");
  const auto r = make_hybrid_partitioner()->run(mesh, opts);
  const auto pw = partition_weights(mesh, r.partition);
  wgt_t mn = pw[0], mx = pw[0];
  for (const auto w : pw) {
    mn = std::min(mn, w);
    mx = std::max(mx, w);
  }
  std::printf("  min %lld, max %lld nodes (ideal %lld)\n",
              static_cast<long long>(mn), static_cast<long long>(mx),
              static_cast<long long>(mesh.total_vertex_weight() / ranks));
  return 0;
}
