// Example: partitioning a graph that does NOT fit on one GPU — the
// motivating scenario of the paper's future work, served by the
// multi-GPU extension.  Sweeps the device count and prints per-device
// peak memory, halo traffic, modeled time, and quality.
#include <cstdio>

#include "gen/generators.hpp"
#include "gpu/device.hpp"
#include "hybrid/multi_gpu_partitioner.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  vid_t n = 200000;
  if (argc > 1) n = std::atoi(argv[1]);

  const CsrGraph g = bubble_mesh_graph(n, 12, 5);
  std::printf("mesh: %d vertices, %lld edges (%.1f MB as CSR)\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              static_cast<double>(g.memory_bytes()) / 1.0e6);

  PartitionOptions opts;
  opts.k = 64;
  opts.gpu_cpu_threshold = 4096;

  std::printf("\n%8s %16s %12s %12s %10s %10s\n", "devices", "peak MB/device",
              "halo MB", "modeled s", "cut", "balance");
  for (const int d : {1, 2, 4, 8}) {
    opts.gpu_devices = d;
    MultiGpuLog log;
    const auto r = multi_gpu_run(g, opts, &log);
    std::printf("%8d %16.2f %12.3f %12.4f %10lld %10.4f\n", d,
                static_cast<double>(log.peak_device_bytes) / 1.0e6,
                static_cast<double>(log.halo_exchange_bytes) / 1.0e6,
                r.modeled_seconds, static_cast<long long>(r.cut), r.balance);
  }

  // The punchline: cap the device at less memory than the graph needs
  // and show the sweep still works with enough devices.
  const std::size_t cap = g.memory_bytes();  // < graph + working arrays
  std::printf("\nwith a %.1f MB per-device cap (graph alone needs more "
              "once working arrays are added):\n",
              static_cast<double>(cap) / 1.0e6);
  opts.gpu_memory_bytes = cap;
  for (const int d : {1, 4}) {
    opts.gpu_devices = d;
    try {
      MultiGpuLog log;
      const auto r = multi_gpu_run(g, opts, &log);
      std::printf("  %d device(s): ok, cut %lld, peak %.2f MB/device\n", d,
                  static_cast<long long>(r.cut),
                  static_cast<double>(log.peak_device_bytes) / 1.0e6);
    } catch (const DeviceOutOfMemory& e) {
      std::printf("  %d device(s): DeviceOutOfMemory (%s)\n", d, e.what());
    }
  }
  return 0;
}
