// Quickstart: build a small mesh, partition it with GP-metis, print quality.
//
// This is the 60-second tour of the public API:
//   1. build (or load) a CsrGraph,
//   2. pick PartitionOptions,
//   3. run a partitioner,
//   4. inspect cut / balance / phase times.
#include <cstdio>

#include "core/csr_graph.hpp"
#include "core/partitioner.hpp"

int main() {
  using namespace gp;

  // 1. A 64x64 grid mesh built through the GraphBuilder.
  const int side = 64;
  GraphBuilder builder(side * side);
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      const vid_t v = y * side + x;
      if (x + 1 < side) builder.add_edge(v, v + 1);
      if (y + 1 < side) builder.add_edge(v, v + side);
    }
  }
  const CsrGraph g = builder.build();
  std::printf("graph: %d vertices, %lld edges\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  // 2. Partition into 8 parts with the paper's 3%% imbalance tolerance.
  PartitionOptions opts;
  opts.k = 8;
  opts.eps = 0.03;
  opts.seed = 1;

  // 3. Run the hybrid CPU-GPU partitioner (the paper's contribution).
  const auto partitioner = make_hybrid_partitioner();
  const PartitionResult result = partitioner->run(g, opts);

  // 4. Quality and modeled runtime.
  std::printf("partitioner: %s\n", partitioner->name().c_str());
  std::printf("edge cut:    %lld\n", static_cast<long long>(result.cut));
  std::printf("balance:     %.4f (constraint: <= %.2f)\n", result.balance,
              1.0 + opts.eps);
  std::printf("levels:      %d\n", result.coarsen_levels);
  std::printf("modeled time on the paper's testbed: %.4f s\n",
              result.modeled_seconds);
  std::printf("  coarsen   %.4f s\n", result.phases.coarsen);
  std::printf("  initpart  %.4f s\n", result.phases.initpart);
  std::printf("  uncoarsen %.4f s\n", result.phases.uncoarsen);
  std::printf("  transfer  %.4f s\n", result.phases.transfer);
  return 0;
}
