// Example: dividing a road network into service districts — the
// irregular-graph workload that stresses partitioners hardest (the paper:
// "the irregularity of the input graph greatly affects the performance").
//
// Demonstrates:
//   * the road-network generator (USA-roads analogue),
//   * writing/reading the graph in DIMACS-9 .gr format,
//   * partitioning into districts and inspecting district connectivity.
#include <cstdio>

#include "core/graph_ops.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "io/dimacs_io.hpp"
#include "io/metis_io.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  vid_t n = 100000;
  part_t districts = 24;
  if (argc > 1) n = std::atoi(argv[1]);
  if (argc > 2) districts = std::atoi(argv[2]);

  CsrGraph roads = road_network_graph(n, 7);
  const auto ds = degree_stats(roads);
  std::printf("road network: %d junctions/segments, %lld roads, "
              "avg degree %.2f\n",
              roads.num_vertices(), static_cast<long long>(roads.num_edges()),
              ds.avg_degree);

  // Round-trip through the DIMACS format the real USA-road data ships in.
  const std::string path = "/tmp/roads_example.gr";
  write_dimacs_gr_file(path, roads);
  roads = read_dimacs_gr_file(path);
  std::printf("round-tripped through %s\n\n", path.c_str());

  PartitionOptions opts;
  opts.k = districts;
  opts.eps = 0.03;
  const auto r = make_hybrid_partitioner()->run(roads, opts);

  std::printf("gp-metis districting: %d districts\n", districts);
  std::printf("  cross-district roads (edge cut): %lld\n",
              static_cast<long long>(r.cut));
  std::printf("  balance: %.4f\n", r.balance);
  std::printf("  boundary junctions: %d\n",
              boundary_size(roads, r.partition));
  std::printf("  communication volume: %lld\n",
              static_cast<long long>(communication_volume(roads, r.partition)));

  // District connectivity: a good district is one connected territory.
  int connected = 0;
  for (part_t d = 0; d < districts; ++d) {
    const auto sub = extract_part(roads, r.partition, d, nullptr);
    if (is_connected(sub)) ++connected;
  }
  std::printf("  internally connected districts: %d / %d\n", connected,
              districts);

  // Persist the assignment in Metis partition-file format.
  write_partition_file("/tmp/roads_example.part", r.partition.where);
  std::printf("  district assignment written to /tmp/roads_example.part\n");
  return 0;
}
