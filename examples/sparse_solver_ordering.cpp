// Example: fill-reducing ordering for a sparse direct solver — the
// nested-dissection application built on the library's bisection engine
// (what `ndmetis` does for Metis).
//
// Orders a 2D FEM grid and a Delaunay mesh, comparing the symbolic
// Cholesky fill-in of the natural ordering against nested dissection.
#include <cstdio>
#include <numeric>

#include "apps/nested_dissection.hpp"
#include "gen/generators.hpp"

int main(int argc, char** argv) {
  using namespace gp;
  vid_t side = 40;
  if (argc > 1) side = std::atoi(argv[1]);

  struct Case {
    const char* name;
    CsrGraph graph;
  };
  const Case cases[] = {
      {"grid2d", grid2d_graph(side, side)},
      {"delaunay", delaunay_graph(side * side, 7)},
  };

  std::printf("%-10s %10s %14s %14s %10s\n", "mesh", "vertices",
              "fill(natural)", "fill(nd)", "reduction");
  for (const auto& c : cases) {
    std::vector<vid_t> natural(
        static_cast<std::size_t>(c.graph.num_vertices()));
    std::iota(natural.begin(), natural.end(), 0);
    const auto nd = nested_dissection_order(c.graph, {32, 1});

    const auto f_nat = symbolic_fill_in(c.graph, natural);
    const auto f_nd = symbolic_fill_in(c.graph, nd);
    std::printf("%-10s %10d %14llu %14llu %9.1f%%\n", c.name,
                c.graph.num_vertices(),
                static_cast<unsigned long long>(f_nat),
                static_cast<unsigned long long>(f_nd),
                100.0 * (1.0 - static_cast<double>(f_nd) /
                                   static_cast<double>(f_nat)));
  }
  std::printf("\nLower fill = fewer flops and less memory in the "
              "factorization.\n");
  return 0;
}
