#include "apps/nested_dissection.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "core/graph_ops.hpp"
#include "serial/bisection.hpp"
#include "util/rng.hpp"

namespace gp {

namespace {

struct NdCtx {
  Rng rng;
  vid_t leaf_size;
  std::vector<vid_t>* perm;  // perm[old] = position
  vid_t next_pos = 0;
};

/// Orders the subgraph `g` (ids[i] = original id of local vertex i).
/// Positions are assigned bottom-up: halves first, separator last.
void nd_rec(const CsrGraph& g, const std::vector<vid_t>& ids, NdCtx& ctx) {
  const vid_t n = g.num_vertices();
  if (n == 0) return;
  if (n <= ctx.leaf_size) {
    for (const vid_t id : ids) {
      (*ctx.perm)[static_cast<std::size_t>(id)] = ctx.next_pos++;
    }
    return;
  }

  // Edge separator via GGGP + FM.
  const wgt_t target0 = g.total_vertex_weight() / 2;
  auto bis = gggp_bisect(g, target0, ctx.rng, 2);
  const wgt_t slack = std::max<wgt_t>(1, target0 / 10);
  fm_refine_bisection(g, bis.side,
                      std::max<wgt_t>(1, target0 - slack),
                      std::min<wgt_t>(g.total_vertex_weight() - 1,
                                      target0 + slack),
                      4, bis.cut);

  // Vertex separator: greedy cover of the cut edges — for each cut edge
  // take the endpoint with more cut neighbours (ties: side-0 vertex).
  std::vector<char> in_sep(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> cut_deg(static_cast<std::size_t>(n), 0);
  for (vid_t v = 0; v < n; ++v) {
    for (const vid_t u : g.neighbors(v)) {
      if (bis.side[static_cast<std::size_t>(u)] !=
          bis.side[static_cast<std::size_t>(v)]) {
        ++cut_deg[static_cast<std::size_t>(v)];
      }
    }
  }
  for (vid_t v = 0; v < n; ++v) {
    if (cut_deg[static_cast<std::size_t>(v)] == 0) continue;
    if (in_sep[static_cast<std::size_t>(v)]) continue;
    for (const vid_t u : g.neighbors(v)) {
      if (bis.side[static_cast<std::size_t>(u)] ==
          bis.side[static_cast<std::size_t>(v)]) {
        continue;
      }
      if (in_sep[static_cast<std::size_t>(u)]) continue;
      // Uncovered cut edge {v,u}: cover with the higher-cut-degree end.
      if (cut_deg[static_cast<std::size_t>(v)] >=
          cut_deg[static_cast<std::size_t>(u)]) {
        in_sep[static_cast<std::size_t>(v)] = 1;
        break;
      }
      in_sep[static_cast<std::size_t>(u)] = 1;
    }
  }

  // Split into the two sides minus the separator.
  std::vector<char> mask0(static_cast<std::size_t>(n)),
      mask1(static_cast<std::size_t>(n));
  std::vector<vid_t> sep_ids;
  for (vid_t v = 0; v < n; ++v) {
    if (in_sep[static_cast<std::size_t>(v)]) {
      sep_ids.push_back(ids[static_cast<std::size_t>(v)]);
      mask0[static_cast<std::size_t>(v)] = 0;
      mask1[static_cast<std::size_t>(v)] = 0;
    } else if (bis.side[static_cast<std::size_t>(v)] == 0) {
      mask0[static_cast<std::size_t>(v)] = 1;
    } else {
      mask1[static_cast<std::size_t>(v)] = 1;
    }
  }
  // Degenerate split (one side swallowed everything): order as a leaf to
  // guarantee termination.
  std::size_t n0 = 0, n1 = 0;
  for (vid_t v = 0; v < n; ++v) {
    n0 += mask0[static_cast<std::size_t>(v)];
    n1 += mask1[static_cast<std::size_t>(v)];
  }
  if (n0 == 0 || n1 == 0) {
    for (const vid_t id : ids) {
      (*ctx.perm)[static_cast<std::size_t>(id)] = ctx.next_pos++;
    }
    return;
  }

  std::vector<vid_t> map0, map1;
  const CsrGraph g0 = induced_subgraph(g, mask0, &map0);
  const CsrGraph g1 = induced_subgraph(g, mask1, &map1);
  std::vector<vid_t> ids0(static_cast<std::size_t>(g0.num_vertices()));
  std::vector<vid_t> ids1(static_cast<std::size_t>(g1.num_vertices()));
  for (vid_t v = 0; v < n; ++v) {
    if (map0[static_cast<std::size_t>(v)] != kInvalidVid) {
      ids0[static_cast<std::size_t>(map0[static_cast<std::size_t>(v)])] =
          ids[static_cast<std::size_t>(v)];
    }
    if (map1[static_cast<std::size_t>(v)] != kInvalidVid) {
      ids1[static_cast<std::size_t>(map1[static_cast<std::size_t>(v)])] =
          ids[static_cast<std::size_t>(v)];
    }
  }
  nd_rec(g0, ids0, ctx);
  nd_rec(g1, ids1, ctx);
  // Separator vertices are eliminated last.
  for (const vid_t id : sep_ids) {
    (*ctx.perm)[static_cast<std::size_t>(id)] = ctx.next_pos++;
  }
}

}  // namespace

std::vector<vid_t> nested_dissection_order(const CsrGraph& g,
                                           const NdOptions& opts) {
  std::vector<vid_t> perm(static_cast<std::size_t>(g.num_vertices()),
                          kInvalidVid);
  NdCtx ctx{Rng(opts.seed), opts.leaf_size, &perm, 0};
  std::vector<vid_t> ids(static_cast<std::size_t>(g.num_vertices()));
  std::iota(ids.begin(), ids.end(), 0);
  nd_rec(g, ids, ctx);
  return perm;
}

std::uint64_t symbolic_fill_in(const CsrGraph& g,
                               const std::vector<vid_t>& perm) {
  // Elimination game: process vertices in order; eliminating v connects
  // all its not-yet-eliminated neighbours into a clique.  Fill = edges
  // added.  Adjacency kept as sorted sets of *positions*.
  const vid_t n = g.num_vertices();
  std::vector<vid_t> inv(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] = v;
  }
  std::vector<std::set<vid_t>> adj(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    const vid_t pv = perm[static_cast<std::size_t>(v)];
    for (const vid_t u : g.neighbors(v)) {
      adj[static_cast<std::size_t>(pv)].insert(
          perm[static_cast<std::size_t>(u)]);
    }
  }
  std::uint64_t fill = 0;
  for (vid_t pos = 0; pos < n; ++pos) {
    auto& nb = adj[static_cast<std::size_t>(pos)];
    // Later neighbours of the eliminated vertex.
    std::vector<vid_t> later(nb.lower_bound(pos + 1), nb.end());
    for (std::size_t i = 0; i < later.size(); ++i) {
      for (std::size_t j = i + 1; j < later.size(); ++j) {
        const vid_t a = later[i], b = later[j];
        if (adj[static_cast<std::size_t>(a)].insert(b).second) {
          adj[static_cast<std::size_t>(b)].insert(a);
          ++fill;
        }
      }
    }
  }
  return fill;
}

}  // namespace gp
