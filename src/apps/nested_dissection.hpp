// Nested-dissection fill-reducing ordering — the classic downstream
// application of a graph partitioner (Metis ships it as `ndmetis`; the
// paper's intro lists "parallel processing" / scientific computation as
// the motivating domain).  Recursively bisects the graph with the
// library's GGGP+FM bisection, derives a vertex separator from the edge
// separator, orders both halves first and the separator last.
#pragma once

#include <cstdint>
#include <vector>

#include "core/csr_graph.hpp"
#include "util/types.hpp"

namespace gp {

struct NdOptions {
  /// Recursion stops below this size; the remainder is ordered as-is.
  vid_t leaf_size = 64;
  std::uint64_t seed = 1;
};

/// Returns perm with perm[v] = new position of vertex v (an elimination
/// order for sparse factorization).
[[nodiscard]] std::vector<vid_t> nested_dissection_order(
    const CsrGraph& g, const NdOptions& opts = NdOptions{});

/// Counts the fill-in (new nonzeros) of a symbolic Cholesky elimination
/// of g under the given order.  O(n * fill-degree) — fine for test-sized
/// graphs; this is the metric nested dissection minimizes.
[[nodiscard]] std::uint64_t symbolic_fill_in(const CsrGraph& g,
                                             const std::vector<vid_t>& perm);

}  // namespace gp
