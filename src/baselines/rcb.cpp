#include "baselines/rcb.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace gp {

namespace {

void rcb_rec(const CsrGraph& g, const std::vector<Point2D>& coords,
             std::vector<vid_t>& ids, part_t k, part_t first_part,
             std::vector<part_t>& where) {
  if (k == 1 || ids.empty()) {
    for (const vid_t v : ids) where[static_cast<std::size_t>(v)] = first_part;
    return;
  }
  // Wider axis of this subset's bounding box.
  double minx = 1e300, maxx = -1e300, miny = 1e300, maxy = -1e300;
  for (const vid_t v : ids) {
    const auto& p = coords[static_cast<std::size_t>(v)];
    minx = std::min(minx, p.x);
    maxx = std::max(maxx, p.x);
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  const bool split_x = (maxx - minx) >= (maxy - miny);

  // Weighted split: sort along the axis and cut where the weight prefix
  // crosses total * k0/k.
  std::sort(ids.begin(), ids.end(), [&](vid_t a, vid_t b) {
    const auto& pa = coords[static_cast<std::size_t>(a)];
    const auto& pb = coords[static_cast<std::size_t>(b)];
    return split_x ? pa.x < pb.x : pa.y < pb.y;
  });
  wgt_t total = 0;
  for (const vid_t v : ids) total += g.vertex_weight(v);
  const part_t k0 = (k + 1) / 2;
  const wgt_t target0 = static_cast<wgt_t>(
      (static_cast<double>(total) * k0) / static_cast<double>(k));

  std::size_t cut = 0;
  wgt_t acc = 0;
  while (cut < ids.size() && acc < target0) {
    acc += g.vertex_weight(ids[cut]);
    ++cut;
  }
  cut = std::min(std::max<std::size_t>(cut, 1), ids.size() - (k - k0 > 0 ? 1 : 0));

  std::vector<vid_t> left(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(cut));
  std::vector<vid_t> right(ids.begin() + static_cast<std::ptrdiff_t>(cut), ids.end());
  rcb_rec(g, coords, left, k0, first_part, where);
  rcb_rec(g, coords, right, k - k0, first_part + k0, where);
}

}  // namespace

Partition rcb_partition(const CsrGraph& g, const std::vector<Point2D>& coords,
                        part_t k) {
  assert(coords.size() == static_cast<std::size_t>(g.num_vertices()));
  Partition p;
  p.k = k;
  p.where.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<vid_t> ids(static_cast<std::size_t>(g.num_vertices()));
  std::iota(ids.begin(), ids.end(), 0);
  rcb_rec(g, coords, ids, k, 0, p.where);
  return p;
}

}  // namespace gp
