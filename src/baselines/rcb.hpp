// Recursive coordinate bisection (RCB) — the geometric partitioning
// family the paper's background contrasts multilevel methods against
// ("a unified geometric approach to graph separators", ref [4]).
// Splits the point set at the weighted median of the wider axis and
// recurses; fast and balanced, but blind to connectivity — the ablation
// bench quantifies the cut penalty vs the multilevel partitioners.
#pragma once

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "gen/generators.hpp"

namespace gp {

/// Partitions by coordinates only (the graph supplies vertex weights).
/// coords.size() must equal g.num_vertices().
[[nodiscard]] Partition rcb_partition(const CsrGraph& g,
                                      const std::vector<Point2D>& coords,
                                      part_t k);

}  // namespace gp
