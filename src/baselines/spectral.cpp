#include "baselines/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/graph_ops.hpp"
#include "util/rng.hpp"

namespace gp {

std::vector<double> fiedler_vector(const CsrGraph& g,
                                   const SpectralOptions& opts) {
  const vid_t n = g.num_vertices();
  std::vector<double> x(static_cast<std::size_t>(n));
  if (n == 0) return x;

  // Shift: B = (2 * max_weighted_degree) I - L is PSD with the Fiedler
  // direction as its dominant eigenvector once the constant vector is
  // deflated.
  double max_wdeg = 0;
  std::vector<double> wdeg(static_cast<std::size_t>(n), 0);
  for (vid_t v = 0; v < n; ++v) {
    double d = 0;
    for (const wgt_t w : g.neighbor_weights(v)) d += static_cast<double>(w);
    wdeg[static_cast<std::size_t>(v)] = d;
    max_wdeg = std::max(max_wdeg, d);
  }
  const double shift = 2.0 * max_wdeg + 1.0;

  Rng rng(opts.seed);
  for (auto& v : x) v = rng.next_double() - 0.5;

  std::vector<double> y(static_cast<std::size_t>(n));
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int it = 0; it < opts.power_iterations; ++it) {
    // Deflate the constant vector.
    double mean = 0;
    for (const double v : x) mean += v;
    mean *= inv_n;
    for (auto& v : x) v -= mean;

    // y = B x = shift*x - (D - A) x.
    for (vid_t v = 0; v < n; ++v) {
      double acc = (shift - wdeg[static_cast<std::size_t>(v)]) *
                   x[static_cast<std::size_t>(v)];
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        acc += static_cast<double>(wts[i]) *
               x[static_cast<std::size_t>(nbrs[i])];
      }
      y[static_cast<std::size_t>(v)] = acc;
    }
    // Normalize.
    double norm = 0;
    for (const double v : y) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-300) break;  // disconnected pathologies
    const double inv = 1.0 / norm;
    for (std::size_t i = 0; i < y.size(); ++i) x[i] = y[i] * inv;
  }
  // Final deflation for cleanliness.
  double mean = 0;
  for (const double v : x) mean += v;
  mean *= inv_n;
  for (auto& v : x) v -= mean;
  return x;
}

Partition spectral_bisection(const CsrGraph& g, const SpectralOptions& opts) {
  const vid_t n = g.num_vertices();
  Partition p;
  p.k = 2;
  p.where.assign(static_cast<std::size_t>(n), 0);
  if (n < 2) return p;

  const auto fiedler = fiedler_vector(g, opts);
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return fiedler[static_cast<std::size_t>(a)] <
           fiedler[static_cast<std::size_t>(b)];
  });
  // Weighted median split.
  const wgt_t total = g.total_vertex_weight();
  wgt_t acc = 0;
  for (const vid_t v : order) {
    if (acc >= total / 2) p.where[static_cast<std::size_t>(v)] = 1;
    acc += g.vertex_weight(v);
  }
  return p;
}

namespace {

void spectral_rec(const CsrGraph& g, const std::vector<vid_t>& ids, part_t k,
                  part_t first_part, const SpectralOptions& opts,
                  std::vector<part_t>& where) {
  if (k == 1 || g.num_vertices() == 0) {
    for (const vid_t id : ids) where[static_cast<std::size_t>(id)] = first_part;
    return;
  }
  SpectralOptions sub = opts;
  sub.seed = opts.seed * 2 + static_cast<std::uint64_t>(first_part);
  const Partition bis = spectral_bisection(g, sub);

  const part_t k0 = (k + 1) / 2;
  std::vector<char> mask0(static_cast<std::size_t>(g.num_vertices()));
  std::vector<char> mask1(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    mask0[static_cast<std::size_t>(v)] =
        (bis.where[static_cast<std::size_t>(v)] == 0);
    mask1[static_cast<std::size_t>(v)] =
        (bis.where[static_cast<std::size_t>(v)] == 1);
  }
  std::vector<vid_t> map0, map1;
  const CsrGraph g0 = induced_subgraph(g, mask0, &map0);
  const CsrGraph g1 = induced_subgraph(g, mask1, &map1);
  std::vector<vid_t> ids0(static_cast<std::size_t>(g0.num_vertices()));
  std::vector<vid_t> ids1(static_cast<std::size_t>(g1.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (map0[static_cast<std::size_t>(v)] != kInvalidVid) {
      ids0[static_cast<std::size_t>(map0[static_cast<std::size_t>(v)])] =
          ids[static_cast<std::size_t>(v)];
    }
    if (map1[static_cast<std::size_t>(v)] != kInvalidVid) {
      ids1[static_cast<std::size_t>(map1[static_cast<std::size_t>(v)])] =
          ids[static_cast<std::size_t>(v)];
    }
  }
  spectral_rec(g0, ids0, k0, first_part, opts, where);
  spectral_rec(g1, ids1, k - k0, first_part + k0, opts, where);
}

}  // namespace

Partition spectral_partition(const CsrGraph& g, part_t k,
                             const SpectralOptions& opts) {
  Partition p;
  p.k = k;
  p.where.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<vid_t> ids(static_cast<std::size_t>(g.num_vertices()));
  std::iota(ids.begin(), ids.end(), 0);
  spectral_rec(g, ids, k, 0, opts, p.where);
  return p;
}

}  // namespace gp
