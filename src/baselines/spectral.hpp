// Spectral bisection — the second pre-multilevel family the paper's
// background contrasts against ("towards a fast implementation of
// spectral nested dissection", ref [5]).  The bisection sign pattern of
// the Laplacian's Fiedler vector (second-smallest eigenvector) splits
// the graph; the vector is computed by deflated power iteration on a
// spectrally shifted Laplacian — no external linear algebra needed.
#pragma once

#include <cstdint>

#include "core/csr_graph.hpp"
#include "core/partition.hpp"

namespace gp {

struct SpectralOptions {
  int power_iterations = 300;
  std::uint64_t seed = 1;
};

/// Approximates the Fiedler vector of g's Laplacian.  Returned vector is
/// normalized and orthogonal to the constant vector.
[[nodiscard]] std::vector<double> fiedler_vector(
    const CsrGraph& g, const SpectralOptions& opts = SpectralOptions{});

/// 2-way spectral partition: split at the weighted median of the Fiedler
/// vector (balanced halves by vertex weight).
[[nodiscard]] Partition spectral_bisection(
    const CsrGraph& g, const SpectralOptions& opts = SpectralOptions{});

/// k-way by recursive spectral bisection.
[[nodiscard]] Partition spectral_partition(
    const CsrGraph& g, part_t k,
    const SpectralOptions& opts = SpectralOptions{});

}  // namespace gp
