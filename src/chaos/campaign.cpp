#include "chaos/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

#include "chaos/shrink.hpp"
#include "core/partition.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "gpu/device.hpp"
#include "par/comm.hpp"
#include "service/engine.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gp {

const char* chaos_verdict_name(ChaosVerdict v) {
  switch (v) {
    case ChaosVerdict::kValid:      return "valid";
    case ChaosVerdict::kDegraded:   return "degraded";
    case ChaosVerdict::kTypedError: return "typed-error";
    case ChaosVerdict::kViolation:  return "VIOLATION";
  }
  return "?";
}

CsrGraph chaos_make_graph(const ChaosConfig& cfg) {
  const vid_t n = std::max<vid_t>(cfg.graph_n, 16);
  if (cfg.graph == "delaunay") return delaunay_graph(n, cfg.graph_seed);
  if (cfg.graph == "road") return road_network_graph(n, cfg.graph_seed);
  if (cfg.graph == "bubble") return bubble_mesh_graph(n, 2, cfg.graph_seed);
  if (cfg.graph == "grid") {
    vid_t side = 4;
    while (side * side < n) ++side;
    return grid2d_graph(side, side);
  }
  throw std::invalid_argument("chaos: unknown graph family '" + cfg.graph +
                              "' (expected delaunay|grid|road|bubble)");
}

namespace {

/// Draws a value in [0, n) from the stream.
std::uint64_t draw(SplitMix64& rng, std::uint64_t n) {
  return rng.next() % n;
}

/// Skewed occurrence index: small indices fire during the hot early
/// V-cycle levels where most device traffic happens; a long tail still
/// probes late occurrences.
std::int64_t draw_occurrence(SplitMix64& rng, std::uint64_t span) {
  const std::uint64_t r = draw(rng, 4);
  if (r < 2) return static_cast<std::int64_t>(draw(rng, 4));
  if (r < 3) return static_cast<std::int64_t>(draw(rng, 16));
  return static_cast<std::int64_t>(draw(rng, span));
}

/// Log-uniform probability in roughly [0.002, 0.5].
double draw_probability(SplitMix64& rng) {
  static constexpr double kTable[] = {0.002, 0.005, 0.01, 0.02,
                                      0.05,  0.1,   0.25, 0.5};
  return kTable[draw(rng, 8)];
}

}  // namespace

std::uint64_t chaos_fault_seed(std::uint64_t seed, int index) {
  SplitMix64 h(seed ^ (static_cast<std::uint64_t>(index) *
                       0xd1b54a32d192ed03ULL));
  return h.next() | 1u;  // never 0: 0 would mean "default seed" in tooling
}

std::string chaos_generate_spec(std::uint64_t seed, int index,
                                int max_clauses) {
  SplitMix64 rng(seed ^ 0x43757262696cULL ^
                 (static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL));
  const int want = 1 + static_cast<int>(draw(rng, static_cast<std::uint64_t>(
                                                 std::max(1, max_clauses))));
  FaultPlan plan;
  // Conflict bookkeeping mirrors the parser's hardening rules: the
  // generator must only emit specs that parse.
  bool p_used[static_cast<int>(FaultSite::kNumSites)] = {};
  std::vector<std::pair<FaultSite, std::int64_t>> at_used;
  bool dev_used[2] = {};
  bool rank_used[8] = {};

  static constexpr FaultSite kHardSites[] = {FaultSite::kAlloc,
                                             FaultSite::kKernel,
                                             FaultSite::kH2D,
                                             FaultSite::kD2H,
                                             FaultSite::kMsg,
                                             FaultSite::kTask};
  static constexpr FaultSite kCorruptSites[] = {FaultSite::kFlip,
                                                FaultSite::kPayload,
                                                FaultSite::kCmap};

  for (int c = 0; c < want; ++c) {
    switch (draw(rng, 10)) {
      case 0:
      case 1:
      case 2: {  // one-shot hard fault
        const FaultSite site = kHardSites[draw(rng, 6)];
        const std::int64_t at = draw_occurrence(rng, 64);
        if (std::find(at_used.begin(), at_used.end(),
                      std::make_pair(site, at)) != at_used.end()) {
          break;
        }
        at_used.emplace_back(site, at);
        plan.rules.push_back({site, at, 0.0});
        break;
      }
      case 3:
      case 4: {  // probabilistic hard fault
        const FaultSite site = kHardSites[draw(rng, 6)];
        const double p = draw_probability(rng);
        if (p_used[static_cast<int>(site)]) break;
        p_used[static_cast<int>(site)] = true;
        plan.rules.push_back({site, -1, p});
        break;
      }
      case 5: {  // one-shot silent corruption
        const FaultSite site = kCorruptSites[draw(rng, 3)];
        const std::int64_t at = draw_occurrence(rng, 16);
        if (std::find(at_used.begin(), at_used.end(),
                      std::make_pair(site, at)) != at_used.end()) {
          break;
        }
        at_used.emplace_back(site, at);
        plan.rules.push_back({site, at, 0.0});
        break;
      }
      case 6: {  // probabilistic silent corruption
        const FaultSite site = kCorruptSites[draw(rng, 3)];
        const double p = draw_probability(rng);
        if (p_used[static_cast<int>(site)]) break;
        p_used[static_cast<int>(site)] = true;
        plan.rules.push_back({site, -1, p});
        break;
      }
      case 7: {  // device loss
        const int dev = static_cast<int>(draw(rng, 2));
        if (dev_used[dev]) break;
        dev_used[dev] = true;
        const std::uint64_t after =
            draw(rng, 2) ? static_cast<std::uint64_t>(draw_occurrence(rng, 64))
                         : 0;
        plan.device_losses.push_back({dev, after});
        break;
      }
      case 8: {  // rank fail-stop
        const int rank = static_cast<int>(draw(rng, 4));
        if (rank_used[rank]) break;
        rank_used[rank] = true;
        const std::uint64_t from =
            draw(rng, 2) ? draw(rng, 8) : 0;
        plan.rank_failures.push_back({rank, from});
        break;
      }
      case 9: {  // device-capacity squeeze
        if (plan.mem_cap_bytes != 0) break;
        // Log-uniform in [64 KiB, 4 MiB]: small enough to bite on the
        // campaign graphs, large enough that level 0 sometimes fits and
        // the OOM lands mid-V-cycle.
        plan.mem_cap_bytes = std::size_t{1} << (16 + draw(rng, 7));
        break;
      }
    }
  }
  if (plan.empty()) {
    // Degenerate draw (every clause collided): fall back to a one-shot
    // allocation fault so every index exercises *something*.
    plan.rules.push_back({FaultSite::kAlloc, 0, 0.0});
  }
  return plan.to_string();
}

namespace {

PartitionOptions chaos_options(const ChaosConfig& cfg,
                               const std::string& spec,
                               std::uint64_t fault_seed) {
  PartitionOptions opts;
  opts.k = cfg.k;
  opts.seed = cfg.partition_seed;
  opts.threads = cfg.threads;
  opts.ranks = cfg.ranks;
  opts.gpu_host_workers = cfg.gpu_host_workers;
  // Small campaign graphs must still run real GPU levels: hand off to the
  // CPU only below 1/4 of the graph instead of the production 16k.
  opts.gpu_cpu_threshold = std::max<vid_t>(64, cfg.graph_n / 4);
  opts.audit_level = cfg.audit;
  opts.time_budget_seconds = cfg.time_budget_seconds;
  opts.fault_spec = spec;
  opts.fault_seed = fault_seed;
  return opts;
}

}  // namespace

ChaosRun chaos_run_spec(const CsrGraph& g, const ChaosConfig& cfg,
                        const std::string& system, const std::string& spec,
                        std::uint64_t fault_seed, int spec_index) {
  ChaosRun run;
  run.spec_index = spec_index;
  run.system = system;
  run.spec = spec;
  run.fault_seed = fault_seed;

  const std::int64_t leaks_before = Device::process_leaked_blocks();
  const PartitionOptions opts = chaos_options(cfg, spec, fault_seed);

  try {
    const std::unique_ptr<Partitioner> p = make_partitioner_by_name(system);
    const PartitionResult r = p->run(g, opts);
    run.cut = r.cut;
    run.faults = r.health.faults_injected;
    run.audits_failed = r.health.audits_failed;
    run.rollbacks = r.health.rollbacks;
    const std::string invalid =
        validate_partition(g, r.partition, r.cut, r.balance);
    if (!invalid.empty()) {
      run.verdict = ChaosVerdict::kViolation;
      run.detail = "invalid result: " + invalid;
    } else if (r.health.degraded && r.health.events.empty()) {
      // A degraded run with no trail is a silent degradation — the typed
      // trail is half of what the oracle accepts.
      run.verdict = ChaosVerdict::kViolation;
      run.detail = "degraded without an event trail";
    } else if (r.health.degraded) {
      run.verdict = ChaosVerdict::kDegraded;
    } else {
      run.verdict = ChaosVerdict::kValid;
    }
  } catch (const DeviceOutOfMemory& e) {
    run.verdict = ChaosVerdict::kTypedError;
    run.detail = std::string("DeviceOutOfMemory: ") + e.what();
  } catch (const DeviceFailure& e) {
    run.verdict = ChaosVerdict::kTypedError;
    run.detail = std::string("DeviceFailure: ") + e.what();
  } catch (const AuditError& e) {
    run.verdict = ChaosVerdict::kTypedError;
    run.detail = std::string("AuditError: ") + e.what();
  } catch (const ThreadPoolTaskError& e) {
    run.verdict = ChaosVerdict::kTypedError;
    run.detail = std::string("ThreadPoolTaskError: ") + e.what();
  } catch (const CommFailure& e) {
    run.verdict = ChaosVerdict::kTypedError;
    run.detail = std::string("CommFailure: ") + e.what();
  } catch (const CancelledError& e) {
    run.verdict = ChaosVerdict::kTypedError;
    run.detail = std::string("CancelledError: ") + e.what();
  } catch (const std::invalid_argument& e) {
    run.verdict = ChaosVerdict::kTypedError;
    run.detail = std::string("invalid_argument: ") + e.what();
  } catch (const std::exception& e) {
    run.verdict = ChaosVerdict::kTypedError;
    run.detail = std::string("std::exception: ") + e.what();
  } catch (...) {
    run.verdict = ChaosVerdict::kViolation;
    run.detail = "non-std exception escaped the driver";
  }

  run.leaked_blocks = Device::process_leaked_blocks() - leaks_before;
  if (run.leaked_blocks != 0 && run.verdict != ChaosVerdict::kViolation) {
    run.verdict = ChaosVerdict::kViolation;
    run.detail = "leaked " + std::to_string(run.leaked_blocks) +
                 " pool block(s)" +
                 (run.detail.empty() ? "" : " after: " + run.detail);
  }
  return run;
}

std::string ChaosRun::ledger_line() const {
  char head[160];
  std::snprintf(head, sizeof(head),
                "#%04d %-14s %-11s faults=%llu audits_failed=%llu "
                "rollbacks=%llu leaked=%lld cut=%lld",
                spec_index, system.c_str(), chaos_verdict_name(verdict),
                static_cast<unsigned long long>(faults),
                static_cast<unsigned long long>(audits_failed),
                static_cast<unsigned long long>(rollbacks),
                static_cast<long long>(leaked_blocks),
                static_cast<long long>(cut));
  std::string line = head;
  line += " spec=\"" + spec + "\"";
  if (!detail.empty()) line += " detail=\"" + detail + "\"";
  return line;
}

std::string ChaosReport::ledger() const {
  std::string out;
  for (const auto& r : runs) {
    out += r.ledger_line();
    out += '\n';
  }
  return out;
}

std::vector<const ChaosRun*> ChaosReport::violating() const {
  std::vector<const ChaosRun*> v;
  for (const auto& r : runs) {
    if (r.verdict == ChaosVerdict::kViolation) v.push_back(&r);
  }
  return v;
}

ChaosReport chaos_campaign(const ChaosConfig& cfg) {
  ChaosReport report;
  const CsrGraph g = chaos_make_graph(cfg);
  for (int i = 0; i < cfg.specs; ++i) {
    const std::string spec =
        chaos_generate_spec(cfg.seed, i, cfg.max_clauses);
    const std::uint64_t fseed = chaos_fault_seed(cfg.seed, i);
    for (const auto& system : cfg.systems) {
      ChaosRun run = chaos_run_spec(g, cfg, system, spec, fseed, i);
      switch (run.verdict) {
        case ChaosVerdict::kValid:      ++report.valid; break;
        case ChaosVerdict::kDegraded:   ++report.degraded; break;
        case ChaosVerdict::kTypedError: ++report.typed_errors; break;
        case ChaosVerdict::kViolation:  ++report.violations; break;
      }
      if (run.verdict == ChaosVerdict::kViolation) {
        // Minimize against "re-running this (system, seed) still
        // violates": the reproducer replays deterministically because
        // everything the run consumes is derived from (spec, fseed).
        const ChaosPredicate still_fails = [&](const FaultPlan& cand) {
          const ChaosRun probe = chaos_run_spec(
              g, cfg, system, cand.to_string(), fseed, i);
          return probe.verdict == ChaosVerdict::kViolation;
        };
        const ShrinkResult shrunk = shrink_fault_plan(
            FaultPlan::parse(run.spec), still_fails, cfg.shrink_probes);
        run.reproducer = shrunk.spec;
      }
      report.runs.push_back(std::move(run));
    }
  }
  return report;
}

}  // namespace gp
