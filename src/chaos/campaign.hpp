// Chaos campaign engine (DESIGN.md §3.10): fault-space fuzzing for the
// degradation ladders.
//
// Every robustness test before this harness exercised a hand-picked fault
// spec; the campaign instead *generates* specs from the full grammar
// (one-shot and probabilistic site rules, corruption sites, device losses,
// rank failures, task throws, and the mem-cap capacity squeeze) and runs
// each against the drivers with phase audits on, checking ONE oracle:
//
//   A run must end in (a) a valid clean partition, (b) a valid partition
//   with a typed degradation trail (RunHealth events + degraded flag), or
//   (c) a typed error — never a crash, a hang (Watchdog-bounded budgets),
//   an invalid silent result, or a leaked device-pool block.
//
// Violations are minimized by the delta-debugging shrinker (shrink.hpp)
// into a ready-to-paste `--fault-spec` reproducer.  Campaigns are pure
// functions of their seed: same seed, same specs, same outcome ledger,
// byte for byte (single-threaded drivers + 1 host worker by default).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/csr_graph.hpp"
#include "util/types.hpp"

namespace gp {

/// Oracle classification of one chaos run.
enum class ChaosVerdict : int {
  kValid = 0,   ///< valid partition, nominal path
  kDegraded,    ///< valid partition, typed degradation trail
  kTypedError,  ///< a named gp:: / std:: exception escaped the driver
  kViolation,   ///< oracle violation: crash/invalid/leak/untracked failure
};

[[nodiscard]] const char* chaos_verdict_name(ChaosVerdict v);

struct ChaosConfig {
  std::uint64_t seed = 1;      ///< campaign seed: specs AND fault seeds
  int specs = 200;             ///< randomized specs per system
  int max_clauses = 3;         ///< clauses per generated spec (>= 1)
  std::vector<std::string> systems = {"metis", "mt-metis", "parmetis",
                                      "gp-metis", "gp-metis-multi"};
  std::string graph = "delaunay";  ///< delaunay | grid | road | bubble
  vid_t graph_n = 600;
  std::uint64_t graph_seed = 7;
  part_t k = 4;
  AuditLevel audit = AuditLevel::kPhase;
  /// Determinism defaults: 1 CPU thread and 1 device host worker make the
  /// outcome ledger byte-identical per seed (threads >= 2 runs are
  /// intentionally racy; see ROADMAP).
  int threads = 1;
  int gpu_host_workers = 1;
  int ranks = 4;
  /// Watchdog bound per run: generous enough to never fire on a healthy
  /// scale-0 run (wall-clock shedding would break ledger determinism),
  /// tight enough to bound a pathological one.
  double time_budget_seconds = 60.0;
  std::uint64_t partition_seed = 7;
  /// Shrink oracle budget per violation (predicate probes = driver runs).
  int shrink_probes = 200;
};

/// Outcome of one (system, spec) run.
struct ChaosRun {
  int spec_index = -1;
  std::string system;
  std::string spec;
  std::uint64_t fault_seed = 0;
  ChaosVerdict verdict = ChaosVerdict::kValid;
  std::string detail;      ///< error type/message or violation reason
  wgt_t cut = 0;           ///< 0 unless a partition was produced
  std::uint64_t faults = 0;
  std::uint64_t audits_failed = 0;
  std::uint64_t rollbacks = 0;
  std::int64_t leaked_blocks = 0;
  /// Minimal reproducer (filled for violations by chaos_campaign).
  std::string reproducer;

  /// One deterministic ledger line; the campaign ledger is their join.
  [[nodiscard]] std::string ledger_line() const;
};

struct ChaosReport {
  std::vector<ChaosRun> runs;
  std::uint64_t valid = 0;
  std::uint64_t degraded = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t violations = 0;

  /// Byte-identical across same-seed campaigns: the determinism gate
  /// diffs two of these.
  [[nodiscard]] std::string ledger() const;
  [[nodiscard]] std::vector<const ChaosRun*> violating() const;
};

/// Builds the campaign graph described by `cfg` (pure function).
[[nodiscard]] CsrGraph chaos_make_graph(const ChaosConfig& cfg);

/// The i-th randomized fault spec of a campaign seed (pure function of
/// (seed, index, max_clauses); always parses cleanly).
[[nodiscard]] std::string chaos_generate_spec(std::uint64_t seed, int index,
                                              int max_clauses);

/// Deterministic per-spec fault seed.
[[nodiscard]] std::uint64_t chaos_fault_seed(std::uint64_t seed, int index);

/// Runs one (system, spec) pair against the oracle.  Never throws for
/// driver failures — those become the verdict.
[[nodiscard]] ChaosRun chaos_run_spec(const CsrGraph& g,
                                      const ChaosConfig& cfg,
                                      const std::string& system,
                                      const std::string& spec,
                                      std::uint64_t fault_seed,
                                      int spec_index = -1);

/// Full campaign: cfg.specs specs, each against every system in
/// cfg.systems.  Violations are shrunk to minimal reproducers.
[[nodiscard]] ChaosReport chaos_campaign(const ChaosConfig& cfg);

}  // namespace gp
