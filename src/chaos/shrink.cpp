#include "chaos/shrink.hpp"

#include <cstdint>
#include <utility>

namespace gp {

namespace {

/// Probability floor for `:p=` shrinking: below this the rule effectively
/// never fires at campaign scale, so halving further only wastes probes.
constexpr double kMinProbability = 0.001;

/// Total clause count across the plan's four clause kinds.
std::size_t clause_count(const FaultPlan& p) {
  return p.rules.size() + p.device_losses.size() + p.rank_failures.size() +
         (p.mem_cap_bytes != 0 ? 1 : 0);
}

/// Copy of `p` with clause index `i` (in rules / device_losses /
/// rank_failures / mem-cap order) removed.
FaultPlan without_clause(const FaultPlan& p, std::size_t i) {
  FaultPlan out = p;
  if (i < out.rules.size()) {
    out.rules.erase(out.rules.begin() + static_cast<std::ptrdiff_t>(i));
    return out;
  }
  i -= out.rules.size();
  if (i < out.device_losses.size()) {
    out.device_losses.erase(out.device_losses.begin() +
                            static_cast<std::ptrdiff_t>(i));
    return out;
  }
  i -= out.device_losses.size();
  if (i < out.rank_failures.size()) {
    out.rank_failures.erase(out.rank_failures.begin() +
                            static_cast<std::ptrdiff_t>(i));
    return out;
  }
  out.mem_cap_bytes = 0;
  return out;
}

class Shrinker {
 public:
  Shrinker(const ChaosPredicate& pred, int max_probes)
      : pred_(pred), budget_(max_probes) {}

  [[nodiscard]] bool fails(const FaultPlan& p) {
    if (budget_ <= 0) return false;  // out of probes: treat as "fixed"
    --budget_;
    ++probes_;
    return pred_(p);
  }

  [[nodiscard]] int probes() const { return probes_; }
  [[nodiscard]] bool exhausted() const { return budget_ <= 0; }

 private:
  const ChaosPredicate& pred_;
  int budget_;
  int probes_ = 0;
};

/// Shrinks one non-negative scalar to its minimum failing value: halve
/// while the predicate still fails, then step down by 1 to the exact
/// boundary.  `apply` writes a candidate value into a plan copy.
template <typename Apply>
std::uint64_t shrink_scalar(Shrinker& sh, const FaultPlan& base,
                            std::uint64_t value, const Apply& apply) {
  while (value > 0) {
    const std::uint64_t half = value / 2;
    FaultPlan cand = base;
    apply(cand, half);
    if (!sh.fails(cand)) break;
    value = half;
  }
  while (value > 0) {
    FaultPlan cand = base;
    apply(cand, value - 1);
    if (!sh.fails(cand)) break;
    --value;
  }
  return value;
}

}  // namespace

ShrinkResult shrink_fault_plan(const FaultPlan& initial,
                               const ChaosPredicate& still_fails,
                               int max_probes) {
  ShrinkResult res;
  res.plan = initial;
  Shrinker sh(still_fails, max_probes);

  if (!sh.fails(initial)) {
    // The reproducer does not reproduce: hand the input back unconverged
    // so the caller can flag flaky (nondeterministic) violations.
    res.spec = initial.to_string();
    res.probes = sh.probes();
    return res;
  }

  // --- phase 1: greedy clause drop to a fixpoint -------------------------
  bool dropped = true;
  while (dropped) {
    dropped = false;
    for (std::size_t i = 0; i < clause_count(res.plan); ++i) {
      FaultPlan cand = without_clause(res.plan, i);
      if (sh.fails(cand)) {
        res.plan = std::move(cand);
        dropped = true;
        break;  // indices shifted: rescan from the front
      }
    }
  }

  // --- phase 2: shrink surviving counts and probabilities ----------------
  for (std::size_t i = 0; i < res.plan.rules.size(); ++i) {
    FaultRule& r = res.plan.rules[i];
    if (r.at > 0) {
      r.at = static_cast<std::int64_t>(shrink_scalar(
          sh, res.plan, static_cast<std::uint64_t>(r.at),
          [i](FaultPlan& p, std::uint64_t v) {
            p.rules[i].at = static_cast<std::int64_t>(v);
          }));
    } else if (r.at < 0 && r.p > kMinProbability) {
      double p_val = r.p;
      while (p_val / 2 >= kMinProbability) {
        FaultPlan cand = res.plan;
        cand.rules[i].p = p_val / 2;
        if (!sh.fails(cand)) break;
        p_val /= 2;
      }
      r.p = p_val;
    }
  }
  for (std::size_t i = 0; i < res.plan.device_losses.size(); ++i) {
    auto& dl = res.plan.device_losses[i];
    dl.after_ops = shrink_scalar(sh, res.plan, dl.after_ops,
                                 [i](FaultPlan& p, std::uint64_t v) {
                                   p.device_losses[i].after_ops = v;
                                 });
  }
  for (std::size_t i = 0; i < res.plan.rank_failures.size(); ++i) {
    auto& rf = res.plan.rank_failures[i];
    rf.from_superstep = shrink_scalar(sh, res.plan, rf.from_superstep,
                                      [i](FaultPlan& p, std::uint64_t v) {
                                        p.rank_failures[i].from_superstep = v;
                                      });
  }

  res.spec = res.plan.to_string();
  res.probes = sh.probes();
  res.converged = !sh.exhausted();
  return res;
}

}  // namespace gp
