// Delta-debugging minimizer for failing fault specs (DESIGN.md §3.10).
//
// When the chaos campaign finds an oracle violation, the offending spec is
// usually a haystack: most of its clauses are irrelevant and the counts /
// probabilities are larger than they need to be.  shrink_fault_plan()
// reduces a plan against an arbitrary "still fails?" predicate:
//
//   1. greedy clause drop — repeatedly remove any single clause (rule,
//      device loss, rank failure, or the mem-cap) whose removal keeps the
//      predicate failing, until a fixpoint;
//   2. scalar shrink — for every surviving `site@N` halve N while the
//      predicate holds, then walk it down by 1 to the exact minimum; for
//      every `:p=` rule halve the probability toward a floor; device-loss
//      and rank-failure trigger points shrink the same way.
//
// The predicate is a plain std::function so tests can drive the shrinker
// with synthetic oracles and the campaign can plug in "re-run the driver
// and re-check the oracle".  Determinism is inherited: a deterministic
// predicate yields a deterministic minimal reproducer.
#pragma once

#include <functional>
#include <string>

#include "util/fault.hpp"

namespace gp {

/// Returns true when the candidate plan still reproduces the failure.
using ChaosPredicate = std::function<bool(const FaultPlan&)>;

struct ShrinkResult {
  FaultPlan plan;        ///< minimized plan (== input when not converged)
  std::string spec;      ///< plan.to_string(), ready to paste
  int probes = 0;        ///< predicate evaluations spent
  bool converged = false;///< false: the input did not fail, or probes ran out
};

/// Minimizes `initial` against `still_fails`.  `max_probes` bounds the
/// total predicate evaluations (each probe may be a full partitioner run).
[[nodiscard]] ShrinkResult shrink_fault_plan(const FaultPlan& initial,
                                             const ChaosPredicate& still_fails,
                                             int max_probes = 400);

}  // namespace gp
