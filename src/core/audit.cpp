#include "core/audit.hpp"

#include <sstream>

namespace gp {

AuditLevel parse_audit_level(const std::string& s) {
  if (s == "off") return AuditLevel::kOff;
  if (s == "phase") return AuditLevel::kPhase;
  if (s == "paranoid") return AuditLevel::kParanoid;
  throw std::invalid_argument("audit level must be 'off', 'phase', or "
                              "'paranoid', got '" + s + "'");
}

const char* audit_level_name(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff:      return "off";
    case AuditLevel::kPhase:    return "phase";
    case AuditLevel::kParanoid: return "paranoid";
  }
  return "?";
}

std::string AuditFailure::to_string() const {
  if (ok()) return "audit ok";
  const char* kind_name = "?";
  switch (kind) {
    case Kind::kNone:        kind_name = "none"; break;
    case Kind::kCsr:         kind_name = "csr"; break;
    case Kind::kMatching:    kind_name = "matching"; break;
    case Kind::kContraction: kind_name = "contraction"; break;
    case Kind::kPartition:   kind_name = "partition"; break;
    case Kind::kGainCache:   kind_name = "gain-cache"; break;
  }
  return std::string("audit failed [") + kind_name + "/" + invariant +
         "]: " + detail;
}

namespace {

AuditFailure fail(AuditFailure::Kind kind, std::string invariant,
                  std::string detail) {
  AuditFailure f;
  f.kind = kind;
  f.invariant = std::move(invariant);
  f.detail = std::move(detail);
  return f;
}

}  // namespace

AuditFailure audit_csr(const CsrGraph& g, AuditLevel level) {
  if (level == AuditLevel::kOff) return {};
  std::string err = g.validate();
  if (!err.empty()) {
    return fail(AuditFailure::Kind::kCsr, "well-formedness", std::move(err));
  }
  return {};
}

AuditFailure audit_matching(const std::vector<vid_t>& match,
                            AuditLevel level) {
  if (level == AuditLevel::kOff) return {};
  std::string err = validate_match(match);
  if (!err.empty()) {
    return fail(AuditFailure::Kind::kMatching, "involution", std::move(err));
  }
  return {};
}

AuditFailure audit_contraction(const CsrGraph& fine, const CsrGraph& coarse,
                               const std::vector<vid_t>& match,
                               const std::vector<vid_t>& cmap,
                               AuditLevel level) {
  if (level == AuditLevel::kOff) return {};
  const vid_t n_coarse = coarse.num_vertices();

  // cmap consistency first: the weight checks below index coarse arrays
  // through it, so a corrupted entry must be caught before it is used.
  std::string err = validate_cmap(match, cmap, n_coarse);
  if (!err.empty()) {
    return fail(AuditFailure::Kind::kContraction, "cmap-consistency",
                std::move(err));
  }

  // Vertex weight is conserved exactly: contraction only merges vertices.
  const wgt_t fine_vw = fine.total_vertex_weight();
  const wgt_t coarse_vw = coarse.total_vertex_weight();
  if (fine_vw != coarse_vw) {
    std::ostringstream os;
    os << "coarse total vertex weight " << coarse_vw
       << " != fine total " << fine_vw;
    return fail(AuditFailure::Kind::kContraction,
                "vertex-weight-conservation", os.str());
  }

  // Arc weight: coarse total = fine total minus arcs internal to matched
  // pairs (those vanish; parallel coarse arcs merge with summed weights).
  wgt_t internal = 0;
  const vid_t n = fine.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    const vid_t u = match[static_cast<std::size_t>(v)];
    if (u == v) continue;
    const auto nbrs = fine.neighbors(v);
    const auto wts = fine.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == u) internal += wts[i];
    }
  }
  const wgt_t expect_aw = fine.total_arc_weight() - internal;
  const wgt_t coarse_aw = coarse.total_arc_weight();
  if (coarse_aw != expect_aw) {
    std::ostringstream os;
    os << "coarse total arc weight " << coarse_aw << " != expected "
       << expect_aw << " (fine " << fine.total_arc_weight()
       << " - pair-internal " << internal << ")";
    return fail(AuditFailure::Kind::kContraction,
                "arc-weight-conservation", os.str());
  }

  // Per-coarse-vertex weight agreement: coarse vwgt must be the sum of
  // its fine members' weights (catches a perturbed cmap entry whose
  // totals still happen to cancel).
  std::vector<wgt_t> acc(static_cast<std::size_t>(n_coarse), 0);
  for (vid_t v = 0; v < n; ++v) {
    acc[static_cast<std::size_t>(cmap[static_cast<std::size_t>(v)])] +=
        fine.vertex_weight(v);
  }
  for (vid_t c = 0; c < n_coarse; ++c) {
    if (acc[static_cast<std::size_t>(c)] != coarse.vertex_weight(c)) {
      std::ostringstream os;
      os << "coarse vertex " << c << " weight " << coarse.vertex_weight(c)
         << " != sum of fine members " << acc[static_cast<std::size_t>(c)];
      return fail(AuditFailure::Kind::kContraction, "coarse-vertex-weight",
                  os.str());
    }
  }

  if (level == AuditLevel::kParanoid) {
    std::string structural = coarse.validate();
    if (!structural.empty()) {
      return fail(AuditFailure::Kind::kCsr, "coarse-well-formedness",
                  std::move(structural));
    }
  }
  return {};
}

AuditFailure audit_partition(const CsrGraph& g, const Partition& p, part_t k,
                             double eps, std::int64_t expected_cut,
                             AuditLevel level) {
  if (level == AuditLevel::kOff) return {};
  // Range/size first: everything below indexes arrays by part id.
  if (p.k != k) {
    std::ostringstream os;
    os << "partition k " << p.k << " != requested k " << k;
    return fail(AuditFailure::Kind::kPartition, "assignment", os.str());
  }
  std::string err = validate_partition(g, p);
  if (!err.empty()) {
    return fail(AuditFailure::Kind::kPartition, "assignment",
                std::move(err));
  }
  if (expected_cut >= 0) {
    const wgt_t actual = edge_cut(g, p);
    if (static_cast<std::int64_t>(actual) != expected_cut) {
      std::ostringstream os;
      os << "stored cut " << expected_cut << " != recomputed cut " << actual;
      return fail(AuditFailure::Kind::kPartition, "cut-recomputation",
                  os.str());
    }
  }
  if (eps > 0.0) {
    // The eps target is best-effort (the refiner does not guarantee it on
    // every graph), so a strict check would flag legitimate results.  The
    // audit only flags corruption-scale imbalance: a part at 1.5x the
    // already-eps-padded cap means assignments were scrambled wholesale,
    // not that refinement fell a few percent short.
    constexpr double kCorruptionSlack = 1.5;
    const wgt_t limit = static_cast<wgt_t>(
        kCorruptionSlack *
        static_cast<double>(max_part_weight(g.total_vertex_weight(), k, eps)));
    const auto weights = partition_weights(g, p);
    for (part_t q = 0; q < k; ++q) {
      if (weights[static_cast<std::size_t>(q)] > limit) {
        std::ostringstream os;
        os << "part " << q << " weight "
           << weights[static_cast<std::size_t>(q)]
           << " exceeds the corruption threshold " << limit << " ("
           << kCorruptionSlack << "x max_part_weight at eps " << eps << ")";
        return fail(AuditFailure::Kind::kPartition, "balance", os.str());
      }
    }
  }
  return {};
}

AuditFailure audit_gain_cache(const CsrGraph& g,
                              const std::vector<part_t>& where,
                              const GainCache& cache, AuditLevel level) {
  if (level < AuditLevel::kParanoid) return {};
  if (!cache.ready() ||
      cache.num_vertices() != g.num_vertices()) {
    return fail(AuditFailure::Kind::kGainCache, "shape",
                "cache not built for this graph (n=" +
                    std::to_string(cache.ready() ? cache.num_vertices() : 0) +
                    " vs " + std::to_string(g.num_vertices()) + ")");
  }
  std::string err = cache.compare_to_rebuild(g, where);
  if (!err.empty()) {
    return fail(AuditFailure::Kind::kGainCache, "recompute", std::move(err));
  }
  return {};
}

}  // namespace gp
