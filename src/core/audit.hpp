// Phase-boundary invariant audits for the silent-corruption defense
// (DESIGN.md §3.5).
//
// PR 1's fault model covers *fail-stop* faults, which announce themselves
// as exceptions.  Silent corruption — a flipped bit in a device buffer, a
// garbled message payload, a stale cmap entry — does not.  The multilevel
// structure (match -> contract -> initpart -> project -> refine) gives
// natural audit points: each phase commits an artifact whose invariants
// are cheap to check relative to producing it.  Every audit here returns
// a structured AuditFailure (what invariant, which phase, detail) rather
// than a bool, so the recovery ladders can log precisely what they are
// rolling back for, and determinism tests can compare trails.
//
// Audit levels:
//   kOff       no checks, zero overhead (the nominal production path)
//   kPhase     O(n + m)-per-phase checks at phase boundaries
//   kParanoid  kPhase plus full structural revalidation of every coarse
//              graph (CsrGraph::validate — hash-based symmetry check)
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/csr_graph.hpp"
#include "core/gain_cache.hpp"
#include "core/matching.hpp"
#include "core/partition.hpp"

namespace gp {

enum class AuditLevel : int {
  kOff = 0,
  kPhase,
  kParanoid,
};

/// Parses "off" / "phase" / "paranoid" (CLI --audit).  Throws
/// std::invalid_argument otherwise.
[[nodiscard]] AuditLevel parse_audit_level(const std::string& s);
[[nodiscard]] const char* audit_level_name(AuditLevel level);

/// Structured outcome of one audit.  ok() == true means every checked
/// invariant held.
struct AuditFailure {
  enum class Kind {
    kNone = 0,
    kCsr,          ///< CSR structure broken
    kMatching,     ///< match array not a valid involution
    kContraction,  ///< cmap/coarse graph inconsistent with the fine graph
    kPartition,    ///< assignment incomplete, cut/balance wrong
    kGainCache,    ///< incremental gain cache disagrees with recompute
  };

  Kind        kind = Kind::kNone;
  std::string invariant;  ///< short name, e.g. "vertex-weight-conservation"
  std::string detail;     ///< first violation, human-readable

  [[nodiscard]] bool ok() const { return kind == Kind::kNone; }
  [[nodiscard]] std::string to_string() const;
};

/// Thrown by partitioner phases when an audit fails; the driver's
/// recovery ladder catches it, rolls back the level, and re-executes.
class AuditError : public std::runtime_error {
 public:
  explicit AuditError(AuditFailure failure)
      : std::runtime_error(failure.to_string()),
        failure_(std::move(failure)) {}

  [[nodiscard]] const AuditFailure& failure() const { return failure_; }

 private:
  AuditFailure failure_;
};

/// CSR well-formedness: delegates to CsrGraph::validate (offsets
/// monotone, adjacency in range, no self-loops/duplicates, symmetric
/// arcs with equal weights, positive weights).
[[nodiscard]] AuditFailure audit_csr(const CsrGraph& g, AuditLevel level);

/// Matching validity: involution (match[match[v]] == v), all in range.
[[nodiscard]] AuditFailure audit_matching(const std::vector<vid_t>& match,
                                          AuditLevel level);

/// Contraction conservation: coarse total vertex weight equals fine total
/// (contraction only merges vertices), coarse total arc weight equals
/// fine total minus the weight of arcs internal to matched pairs, cmap is
/// consistent with the match and surjective onto [0, n_coarse).  At
/// kParanoid the coarse graph is also structurally revalidated.
[[nodiscard]] AuditFailure audit_contraction(const CsrGraph& fine,
                                             const CsrGraph& coarse,
                                             const std::vector<vid_t>& match,
                                             const std::vector<vid_t>& cmap,
                                             AuditLevel level);

/// Partition validity: complete assignment with every label in [0, k);
/// when expected_cut >= 0, the stored cut must equal recomputation; when
/// eps > 0, balance must be within the tolerance the refinement contract
/// guarantees (max part weight <= max_part_weight(total, k, eps)).
/// The range check runs first so a corrupted part id cannot cause
/// out-of-bounds indexing inside the metric recomputations.
[[nodiscard]] AuditFailure audit_partition(const CsrGraph& g,
                                           const Partition& p,
                                           part_t k, double eps,
                                           std::int64_t expected_cut,
                                           AuditLevel level);

/// Gain-cache / recompute cross-check (DESIGN.md §3.6): at kParanoid the
/// incremental id/ed + connectivity-table state every refiner consumed
/// this level is compared entry-for-entry against a fresh build from `g`
/// and `where`, so silent corruption of the cache (or a delta-protocol
/// bug) is caught at the same phase boundary as partition damage.  Below
/// kParanoid the check is skipped (full recompute is exactly the cost the
/// cache exists to avoid).
[[nodiscard]] AuditFailure audit_gain_cache(const CsrGraph& g,
                                            const std::vector<part_t>& where,
                                            const GainCache& cache,
                                            AuditLevel level);

/// Deadline watchdog for the time_budget_seconds option: wall-clock
/// budget checked at phase boundaries.  A zero/negative budget disables
/// it (expired() always false).
class Watchdog {
 public:
  Watchdog() = default;
  explicit Watchdog(double budget_seconds)
      : budget_seconds_(budget_seconds),
        start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] bool enabled() const { return budget_seconds_ > 0.0; }

  [[nodiscard]] double elapsed_seconds() const {
    if (!enabled()) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// True once the budget is spent: the caller should shed optional work
  /// (refinement passes, retries) and finish degraded.
  [[nodiscard]] bool expired() const {
    return enabled() && elapsed_seconds() >= budget_seconds_;
  }

  [[nodiscard]] double budget_seconds() const { return budget_seconds_; }

 private:
  double budget_seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace gp
