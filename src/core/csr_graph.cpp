#include "core/csr_graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_map>

namespace gp {

wgt_t CsrGraph::total_vertex_weight() const {
  return std::accumulate(vwgt_.begin(), vwgt_.end(), wgt_t{0});
}

wgt_t CsrGraph::total_arc_weight() const {
  return std::accumulate(adjwgt_.begin(), adjwgt_.end(), wgt_t{0});
}

std::size_t CsrGraph::memory_bytes() const {
  return adjp_.size() * sizeof(eid_t) + adjncy_.size() * sizeof(vid_t) +
         adjwgt_.size() * sizeof(wgt_t) + vwgt_.size() * sizeof(wgt_t);
}

std::string CsrGraph::validate() const {
  std::ostringstream err;
  const vid_t n = num_vertices();
  if (adjp_.size() != static_cast<std::size_t>(n) + 1) {
    err << "adjp size " << adjp_.size() << " != n+1 = " << n + 1;
    return err.str();
  }
  if (adjncy_.size() != adjwgt_.size()) {
    err << "adjncy/adjwgt size mismatch";
    return err.str();
  }
  if (!adjp_.empty() && adjp_.front() != 0) return "adjp[0] != 0";
  if (!adjp_.empty() &&
      adjp_.back() != static_cast<eid_t>(adjncy_.size())) {
    return "adjp[n] != |arcs|";
  }
  for (vid_t v = 0; v < n; ++v) {
    if (adjp_[static_cast<std::size_t>(v)] >
        adjp_[static_cast<std::size_t>(v) + 1]) {
      err << "adjp not monotone at " << v;
      return err.str();
    }
    if (vwgt_[static_cast<std::size_t>(v)] <= 0) {
      err << "non-positive vertex weight at " << v;
      return err.str();
    }
  }
  // Per-vertex checks + symmetry.  Symmetry check uses a hash of arcs.
  std::unordered_map<std::uint64_t, wgt_t> arcw;
  arcw.reserve(adjncy_.size());
  for (vid_t v = 0; v < n; ++v) {
    const auto nbrs = neighbors(v);
    const auto wts = neighbor_weights(v);
    std::unordered_map<vid_t, int> seen;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      if (u < 0 || u >= n) {
        err << "neighbour out of range at vertex " << v;
        return err.str();
      }
      if (u == v) {
        err << "self loop at vertex " << v;
        return err.str();
      }
      if (wts[i] <= 0) {
        err << "non-positive arc weight at vertex " << v;
        return err.str();
      }
      if (++seen[u] > 1) {
        err << "duplicate neighbour " << u << " at vertex " << v;
        return err.str();
      }
      const std::uint64_t key = (static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(v))
                                 << 32) |
                                static_cast<std::uint32_t>(u);
      arcw[key] = wts[i];
    }
  }
  for (const auto& [key, w] : arcw) {
    const vid_t v = static_cast<vid_t>(key >> 32);
    const vid_t u = static_cast<vid_t>(key & 0xffffffffULL);
    const std::uint64_t rkey =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
        static_cast<std::uint32_t>(v);
    auto it = arcw.find(rkey);
    if (it == arcw.end()) {
      err << "asymmetric arc " << v << "->" << u;
      return err.str();
    }
    if (it->second != w) {
      err << "asymmetric weight on edge {" << v << "," << u << "}";
      return err.str();
    }
  }
  return {};
}

GraphBuilder::GraphBuilder(vid_t num_vertices, wgt_t default_vwgt)
    : adj_(static_cast<std::size_t>(num_vertices)),
      vwgt_(static_cast<std::size_t>(num_vertices), default_vwgt) {}

void GraphBuilder::set_vertex_weight(vid_t v, wgt_t w) {
  assert(v >= 0 && v < num_vertices() && w > 0);
  vwgt_[static_cast<std::size_t>(v)] = w;
}

void GraphBuilder::add_edge(vid_t u, vid_t v, wgt_t w) {
  assert(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices());
  if (u == v) return;
  adj_[static_cast<std::size_t>(u)].push_back({v, w});
  adj_[static_cast<std::size_t>(v)].push_back({u, w});
}

CsrGraph GraphBuilder::build() {
  const vid_t n = num_vertices();
  std::vector<eid_t> adjp(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vid_t> adjncy;
  std::vector<wgt_t> adjwgt;

  // Merge duplicates per vertex by sorting its half-edge list.
  eid_t total = 0;
  for (vid_t v = 0; v < n; ++v) {
    auto& lst = adj_[static_cast<std::size_t>(v)];
    std::sort(lst.begin(), lst.end(),
              [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
    std::size_t out = 0;
    for (std::size_t i = 0; i < lst.size();) {
      vid_t to = lst[i].to;
      wgt_t w = 0;
      while (i < lst.size() && lst[i].to == to) w += lst[i++].w;
      lst[out++] = {to, w};
    }
    lst.resize(out);
    total += static_cast<eid_t>(out);
  }
  adjncy.reserve(static_cast<std::size_t>(total));
  adjwgt.reserve(static_cast<std::size_t>(total));
  for (vid_t v = 0; v < n; ++v) {
    const auto& lst = adj_[static_cast<std::size_t>(v)];
    adjp[static_cast<std::size_t>(v) + 1] =
        adjp[static_cast<std::size_t>(v)] + static_cast<eid_t>(lst.size());
    for (const auto& he : lst) {
      adjncy.push_back(he.to);
      adjwgt.push_back(he.w);
    }
  }
  adj_.clear();
  CsrGraph g(std::move(adjp), std::move(adjncy), std::move(adjwgt),
             std::move(vwgt_));
  vwgt_.clear();
  return g;
}

}  // namespace gp
