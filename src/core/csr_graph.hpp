// Compressed Sparse Row graph — the central data structure of every
// partitioner in this library (the paper stores exactly this layout in GPU
// global memory: adjp / adjncy / adjwgt / vwgt).
//
// Conventions:
//  * Undirected graphs are stored symmetrically: every edge {u,v} appears
//    as two arcs (u->v) and (v->u) with equal weight.
//  * No self-loops, no parallel arcs (the builder and contraction both
//    merge duplicates).
//  * `adjp` has n+1 entries; arcs of v live in [adjp[v], adjp[v+1]).
#pragma once

#include <cassert>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace gp {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of fully-formed CSR arrays.  `validate()` is the
  /// caller's friend after hand-building.
  CsrGraph(std::vector<eid_t> adjp, std::vector<vid_t> adjncy,
           std::vector<wgt_t> adjwgt, std::vector<wgt_t> vwgt)
      : adjp_(std::move(adjp)),
        adjncy_(std::move(adjncy)),
        adjwgt_(std::move(adjwgt)),
        vwgt_(std::move(vwgt)) {}

  [[nodiscard]] vid_t num_vertices() const {
    return static_cast<vid_t>(vwgt_.size());
  }
  /// Number of directed arcs (= 2 * undirected edges).
  [[nodiscard]] eid_t num_arcs() const {
    return static_cast<eid_t>(adjncy_.size());
  }
  /// Number of undirected edges.
  [[nodiscard]] eid_t num_edges() const { return num_arcs() / 2; }

  [[nodiscard]] eid_t degree(vid_t v) const {
    return adjp_[static_cast<std::size_t>(v) + 1] -
           adjp_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::span<const vid_t> neighbors(vid_t v) const {
    return {adjncy_.data() + adjp_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(degree(v))};
  }
  [[nodiscard]] std::span<const wgt_t> neighbor_weights(vid_t v) const {
    return {adjwgt_.data() + adjp_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(degree(v))};
  }

  [[nodiscard]] wgt_t vertex_weight(vid_t v) const {
    return vwgt_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] wgt_t total_vertex_weight() const;
  /// Sum of adjwgt over all arcs (each undirected edge counted twice).
  [[nodiscard]] wgt_t total_arc_weight() const;

  // Raw array access (the GPU kernels and contraction code index these
  // directly, exactly like the paper's CUDA kernels do).
  [[nodiscard]] const std::vector<eid_t>& adjp() const { return adjp_; }
  [[nodiscard]] const std::vector<vid_t>& adjncy() const { return adjncy_; }
  [[nodiscard]] const std::vector<wgt_t>& adjwgt() const { return adjwgt_; }
  [[nodiscard]] const std::vector<wgt_t>& vwgt() const { return vwgt_; }

  std::vector<eid_t>& mutable_adjp() { return adjp_; }
  std::vector<vid_t>& mutable_adjncy() { return adjncy_; }
  std::vector<wgt_t>& mutable_adjwgt() { return adjwgt_; }
  std::vector<wgt_t>& mutable_vwgt() { return vwgt_; }

  /// Structural validation: array lengths, sorted-free but in-range
  /// adjacency, symmetry with matching weights, no self-loops, no
  /// duplicate neighbours, positive weights.  Returns an empty string on
  /// success, otherwise a description of the first violation.
  [[nodiscard]] std::string validate() const;

  /// Approximate resident bytes of the four CSR arrays.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::vector<eid_t> adjp_;    ///< n+1 offsets
  std::vector<vid_t> adjncy_;  ///< 2|E| neighbour ids
  std::vector<wgt_t> adjwgt_;  ///< 2|E| arc weights
  std::vector<wgt_t> vwgt_;    ///< n vertex weights
};

/// Incremental builder: add undirected edges in any order, duplicates are
/// merged (weights summed), self-loops dropped; `build()` emits CSR.
class GraphBuilder {
 public:
  explicit GraphBuilder(vid_t num_vertices, wgt_t default_vwgt = 1);

  void set_vertex_weight(vid_t v, wgt_t w);
  /// Adds undirected edge {u,v} with weight w.  u == v is ignored.
  void add_edge(vid_t u, vid_t v, wgt_t w = 1);

  [[nodiscard]] vid_t num_vertices() const {
    return static_cast<vid_t>(vwgt_.size());
  }

  /// Builds the CSR graph.  The builder is left empty.
  CsrGraph build();

 private:
  struct HalfEdge {
    vid_t to;
    wgt_t w;
  };
  std::vector<std::vector<HalfEdge>> adj_;
  std::vector<wgt_t>                 vwgt_;
};

}  // namespace gp
