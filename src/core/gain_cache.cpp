#include "core/gain_cache.hpp"

#include <algorithm>
#include <string>

namespace gp {

void GainCache::init(const CsrGraph& g, part_t k) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  k_ = k;
  ed_total_ = 0;
  id_.assign(n, 0);
  ed_.assign(n, 0);
  cnt_.assign(n, 0);
  off_.assign(n + 1, 0);
  // Per-vertex capacity: a vertex can touch at most min(degree, k - 1)
  // distinct foreign parts; min(degree, k) is a safe, simple bound.
  for (std::size_t v = 0; v < n; ++v) {
    const eid_t cap = std::min<eid_t>(g.degree(static_cast<vid_t>(v)),
                                      static_cast<eid_t>(k));
    off_[v + 1] = off_[v] + cap;
  }
  part_.assign(static_cast<std::size_t>(off_[n]), kInvalidPart);
  wgt_.assign(static_cast<std::size_t>(off_[n]), 0);
}

std::uint64_t GainCache::build_range(const CsrGraph& g,
                                     const std::vector<part_t>& where,
                                     vid_t vb, vid_t ve, wgt_t* ed_partial) {
  std::uint64_t work = 0;
  wgt_t ed_sum = 0;
  for (vid_t v = vb; v < ve; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    work += nbrs.size() + 1;
    const part_t pv = where[static_cast<std::size_t>(v)];
    const eid_t  base = off_[static_cast<std::size_t>(v)];
    std::int32_t used = 0;
    wgt_t        internal = 0;
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const part_t pu = where[static_cast<std::size_t>(nbrs[j])];
      if (pu == pv) {
        internal += wts[j];
        continue;
      }
      std::int32_t s = 0;
      while (s < used && part_[static_cast<std::size_t>(base + s)] != pu) ++s;
      if (s == used) {
        part_[static_cast<std::size_t>(base + s)] = pu;
        wgt_[static_cast<std::size_t>(base + s)] = 0;
        ++used;
      }
      wgt_[static_cast<std::size_t>(base + s)] += wts[j];
    }
    id_[static_cast<std::size_t>(v)] = internal;
    wgt_t external = 0;
    for (std::int32_t s = 0; s < used; ++s) {
      external += wgt_[static_cast<std::size_t>(base + s)];
    }
    ed_[static_cast<std::size_t>(v)] = external;
    cnt_[static_cast<std::size_t>(v)] = used;
    ed_sum += external;
  }
  *ed_partial += ed_sum;
  return work;
}

void GainCache::build(const CsrGraph& g, const std::vector<part_t>& where,
                      part_t k) {
  init(g, k);
  wgt_t ed_sum = 0;
  build_range(g, where, 0, g.num_vertices(), &ed_sum);
  finish_totals(ed_sum);
}

std::uint64_t GainCache::project_range(const GainCache& coarse,
                                       const CsrGraph& fine,
                                       const std::vector<part_t>& fine_where,
                                       const std::vector<vid_t>& cmap,
                                       vid_t vb, vid_t ve,
                                       wgt_t* ed_partial) {
  std::uint64_t work = 0;
  wgt_t ed_sum = 0;
  for (vid_t v = vb; v < ve; ++v) {
    const vid_t c = cmap[static_cast<std::size_t>(v)];
    if (coarse.boundary(c)) {
      // Boundary parent: the fine vertex may touch foreign parts; full
      // scan for this vertex only.
      work += build_range(fine, fine_where, v, v + 1, &ed_sum);
      continue;
    }
    // Interior parent: every coarse neighbour of c shares its part, and
    // v's neighbours all map into that closed neighbourhood, so v is
    // interior too.  Stream the weighted degree, skip the table.
    const auto wts = fine.neighbor_weights(v);
    work += wts.size() + 1;
    wgt_t internal = 0;
    for (const wgt_t w : wts) internal += w;
    id_[static_cast<std::size_t>(v)] = internal;
    ed_[static_cast<std::size_t>(v)] = 0;
    cnt_[static_cast<std::size_t>(v)] = 0;
  }
  *ed_partial += ed_sum;
  return work;
}

wgt_t GainCache::conn_to(vid_t v, part_t q) const {
  const eid_t        base = off_[static_cast<std::size_t>(v)];
  const std::int32_t cnt = cnt_[static_cast<std::size_t>(v)];
  for (std::int32_t i = 0; i < cnt; ++i) {
    if (part_[static_cast<std::size_t>(base + i)] == q) {
      return wgt_[static_cast<std::size_t>(base + i)];
    }
  }
  return 0;
}

void GainCache::conn_add(vid_t v, part_t q, wgt_t w) {
  const eid_t  base = off_[static_cast<std::size_t>(v)];
  std::int32_t cnt = cnt_[static_cast<std::size_t>(v)];
  for (std::int32_t i = 0; i < cnt; ++i) {
    if (part_[static_cast<std::size_t>(base + i)] == q) {
      wgt_[static_cast<std::size_t>(base + i)] += w;
      return;
    }
  }
  part_[static_cast<std::size_t>(base + cnt)] = q;
  wgt_[static_cast<std::size_t>(base + cnt)] = w;
  cnt_[static_cast<std::size_t>(v)] = cnt + 1;
}

void GainCache::conn_sub(vid_t v, part_t q, wgt_t w) {
  const eid_t        base = off_[static_cast<std::size_t>(v)];
  const std::int32_t cnt = cnt_[static_cast<std::size_t>(v)];
  for (std::int32_t i = 0; i < cnt; ++i) {
    if (part_[static_cast<std::size_t>(base + i)] != q) continue;
    wgt_[static_cast<std::size_t>(base + i)] -= w;
    if (wgt_[static_cast<std::size_t>(base + i)] == 0) {
      // Swap-erase; entry order carries no meaning (tie-breaks re-scan
      // the adjacency list).
      part_[static_cast<std::size_t>(base + i)] =
          part_[static_cast<std::size_t>(base + cnt - 1)];
      wgt_[static_cast<std::size_t>(base + i)] =
          wgt_[static_cast<std::size_t>(base + cnt - 1)];
      cnt_[static_cast<std::size_t>(v)] = cnt - 1;
    }
    return;
  }
}

template <typename PartOf>
std::uint64_t GainCache::apply_move_impl(const CsrGraph& g, vid_t v,
                                         part_t from, part_t to,
                                         PartOf&& part_of) {
  const auto nbrs = g.neighbors(v);
  const auto wts = g.neighbor_weights(v);
  // Self update: connectivity to `to` becomes internal, the old internal
  // weight becomes connectivity to `from`.
  const wgt_t old_internal = id_[static_cast<std::size_t>(v)];
  const wgt_t to_conn = conn_to(v, to);
  conn_sub(v, to, to_conn);
  if (old_internal > 0) conn_add(v, from, old_internal);
  id_[static_cast<std::size_t>(v)] = to_conn;
  ed_[static_cast<std::size_t>(v)] += old_internal - to_conn;
  // Both endpoints of each affected arc change sides symmetrically.
  ed_total_ += 2 * (old_internal - to_conn);

  for (std::size_t j = 0; j < nbrs.size(); ++j) {
    const vid_t  u = nbrs[j];
    const wgt_t  w = wts[j];
    const part_t pu = part_of(u);
    if (pu == from) {
      id_[static_cast<std::size_t>(u)] -= w;
      ed_[static_cast<std::size_t>(u)] += w;
      conn_add(u, to, w);
    } else if (pu == to) {
      conn_sub(u, from, w);
      id_[static_cast<std::size_t>(u)] += w;
      ed_[static_cast<std::size_t>(u)] -= w;
    } else {
      conn_sub(u, from, w);
      conn_add(u, to, w);
    }
  }
  return static_cast<std::uint64_t>(nbrs.size()) + 1;
}

std::uint64_t GainCache::apply_move(const CsrGraph& g,
                                    const std::vector<part_t>& where, vid_t v,
                                    part_t from, part_t to) {
  return apply_move_impl(g, v, from, to, [&](vid_t u) {
    return where[static_cast<std::size_t>(u)];
  });
}

std::uint64_t GainCache::apply_moves(const CsrGraph& g,
                                     const std::vector<part_t>& where_final,
                                     const std::vector<CommittedMove>& moves) {
  if (moves.empty()) return 0;
  if (move_idx_.size() < where_final.size()) {
    move_idx_.assign(where_final.size(), -1);
  }
  std::uint64_t work = moves.size();
  for (std::size_t i = 0; i < moves.size(); ++i) {
    move_idx_[static_cast<std::size_t>(moves[i].v)] =
        static_cast<std::int32_t>(i);
  }
  // Replay in list order.  A neighbour that also moved this batch reads
  // as its `from` part until its own replay step, `to` afterwards — the
  // overlay a sequential commit would have seen.  Each step maps an exact
  // cache of one where-configuration to the exact cache of the next, so
  // the final state equals a fresh build against where_final regardless
  // of the order the concurrent commit actually interleaved in.
  std::size_t next = 0;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const auto& m = moves[i];
    next = i + 1;
    work += apply_move_impl(g, m.v, m.from, m.to, [&](vid_t u) {
      const std::int32_t mi = move_idx_[static_cast<std::size_t>(u)];
      if (mi < 0) return where_final[static_cast<std::size_t>(u)];
      return static_cast<std::size_t>(mi) < next ? moves[mi].to
                                                 : moves[mi].from;
    });
  }
  for (const auto& m : moves) {
    move_idx_[static_cast<std::size_t>(m.v)] = -1;
  }
  return work;
}

std::string GainCache::compare_to_rebuild(
    const CsrGraph& g, const std::vector<part_t>& where) const {
  GainCache fresh;
  fresh.build(g, where, k_);
  if (fresh.ed_total_ != ed_total_) {
    return "ed-total mismatch: cached " + std::to_string(ed_total_) +
           " recomputed " + std::to_string(fresh.ed_total_);
  }
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (id_[sv] != fresh.id_[sv] || ed_[sv] != fresh.ed_[sv]) {
      return "id/ed mismatch at v=" + std::to_string(v) + ": cached (" +
             std::to_string(id_[sv]) + "," + std::to_string(ed_[sv]) +
             ") recomputed (" + std::to_string(fresh.id_[sv]) + "," +
             std::to_string(fresh.ed_[sv]) + ")";
    }
    if (cnt_[sv] != fresh.cnt_[sv]) {
      return "conn-count mismatch at v=" + std::to_string(v) + ": cached " +
             std::to_string(cnt_[sv]) + " recomputed " +
             std::to_string(fresh.cnt_[sv]);
    }
    for (std::int32_t i = 0; i < cnt_[sv]; ++i) {
      const part_t q = conn_part(v, i);
      if (conn_wgt(v, i) != fresh.conn_to(v, q)) {
        return "conn mismatch at v=" + std::to_string(v) + " part " +
               std::to_string(q) + ": cached " +
               std::to_string(conn_wgt(v, i)) + " recomputed " +
               std::to_string(fresh.conn_to(v, q));
      }
    }
  }
  return {};
}

}  // namespace gp
