// Incremental connectivity / gain cache shared by every refiner
// (DESIGN.md §3.6).
//
// Classic Metis keeps per-vertex `id/ed` (internal/external degree) plus a
// sparse per-vertex partition-connectivity table so a refinement pass never
// recomputes gains by scanning a vertex's whole neighbourhood (Karypis &
// Kumar); mt-metis extends the same state with per-thread delta buffers
// (LaSalle & Karypis).  This class is that state:
//
//   id_[v]            weight of v's arcs into its own part
//   ed_[v]            weight of v's arcs into every other part
//   part_/wgt_ slab   the distinct adjacent parts of v with their arc
//                     weights, stored in a flat slab with per-vertex
//                     capacity min(degree, k) at off_[v] (no per-vertex
//                     heap allocation, no duplicates)
//
// The cache is built once per uncoarsening level (or *projected* from the
// coarse level's cache, which skips the table work for every fine vertex
// whose coarse parent was interior), and updated by O(deg) deltas when a
// move commits.  Every query a refiner needs is O(#adjacent parts) instead
// of O(degree) — except exact tie-breaking, see best_destination().
//
// Equivalence contract: all four refiners pick "the first part, in order
// of first occurrence in the adjacency list, among those maximising
// connectivity".  A sparse table cannot maintain first-occurrence order
// under deltas, so best_destination() computes the max from the table and
// falls back to one early-exiting adjacency scan only when several parts
// tie — the scan stops at the first neighbour in any tied part, which by
// definition appears early.  This keeps moves byte-identical to the
// scan-based code while evaluating the common (tie-free) case from the
// table alone.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/csr_graph.hpp"
#include "util/types.hpp"

namespace gp {

/// One committed move, as recorded by a refiner's commit step for batch
/// replay into the cache (mt-metis-style delta buffers).
struct CommittedMove {
  vid_t  v;
  part_t from;
  part_t to;
};

/// Result of a cached best-destination query.  `tie_scan` is the number of
/// adjacency entries the tie-break fallback had to touch (0 in the common
/// strict-max case) so callers can charge the true work.
struct BestDest {
  part_t        part = kInvalidPart;
  wgt_t         conn = 0;
  std::uint64_t tie_scan = 0;
};

class GainCache {
 public:
  /// Sizes the slab for `g` and `k` and zeroes the totals without filling
  /// any entry; pair with build_range()/project_range() for parallel or
  /// per-rank construction.
  void init(const CsrGraph& g, part_t k);

  /// Serial full build: init + one pass over all vertices.
  void build(const CsrGraph& g, const std::vector<part_t>& where, part_t k);

  /// Fills entries for vertices [vb, ve) from a full neighbourhood scan.
  /// Adds the range's external-degree sum to *ed_partial (caller
  /// accumulates into finish_totals) and returns the work units spent.
  std::uint64_t build_range(const CsrGraph& g,
                            const std::vector<part_t>& where, vid_t vb,
                            vid_t ve, wgt_t* ed_partial);

  /// Fills entries for fine vertices [vb, ve) given the coarse level's
  /// cache.  A fine vertex whose coarse parent has ed == 0 is provably
  /// interior (all its neighbours share its part), so only its internal
  /// degree is streamed and the table stays empty; boundary parents get
  /// the full scan.  Projection therefore costs O(boundary) table work
  /// instead of O(n), and produces bit-identical state to build_range.
  std::uint64_t project_range(const GainCache& coarse, const CsrGraph& fine,
                              const std::vector<part_t>& fine_where,
                              const std::vector<vid_t>& cmap, vid_t vb,
                              vid_t ve, wgt_t* ed_partial);

  /// Stores the accumulated external-degree total (cut = total / 2).
  void finish_totals(wgt_t ed_total) { ed_total_ = ed_total; }

  [[nodiscard]] bool  ready() const { return !cnt_.empty(); }
  [[nodiscard]] vid_t num_vertices() const {
    return static_cast<vid_t>(cnt_.size());
  }
  [[nodiscard]] part_t k() const { return k_; }

  [[nodiscard]] wgt_t internal(vid_t v) const {
    return id_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] wgt_t external(vid_t v) const {
    return ed_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool boundary(vid_t v) const {
    return ed_[static_cast<std::size_t>(v)] > 0;
  }
  /// Current edge cut implied by the tracked external degrees.
  [[nodiscard]] wgt_t cut() const { return ed_total_ / 2; }

  [[nodiscard]] std::int32_t conn_count(vid_t v) const {
    return cnt_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] part_t conn_part(vid_t v, std::int32_t i) const {
    return part_[static_cast<std::size_t>(off_[static_cast<std::size_t>(v)] +
                                          i)];
  }
  [[nodiscard]] wgt_t conn_wgt(vid_t v, std::int32_t i) const {
    return wgt_[static_cast<std::size_t>(off_[static_cast<std::size_t>(v)] +
                                         i)];
  }
  /// Connectivity of v to part q (0 when absent).  O(#adjacent parts).
  [[nodiscard]] wgt_t conn_to(vid_t v, part_t q) const;

  /// Best admissible destination for v: the first part, in order of first
  /// occurrence in v's adjacency list, among allowed parts maximising
  /// connectivity, provided that maximum strictly exceeds `threshold`
  /// (pass internal(v) for the strict-gain rule, or wgt_t minimum to rank
  /// every allowed part).  `allowed(q)` filters candidates (balance fit,
  /// direction).  Byte-identical to the historical full-scan selection.
  template <typename Allowed>
  [[nodiscard]] BestDest best_destination(const CsrGraph& g,
                                          const std::vector<part_t>& where,
                                          vid_t v, part_t pv, wgt_t threshold,
                                          Allowed&& allowed) const {
    const eid_t        base = off_[static_cast<std::size_t>(v)];
    const std::int32_t cnt = cnt_[static_cast<std::size_t>(v)];
    thread_local std::vector<part_t> tied;
    tied.clear();
    wgt_t best = threshold;
    for (std::int32_t i = 0; i < cnt; ++i) {
      const part_t q = part_[static_cast<std::size_t>(base + i)];
      if (!allowed(q)) continue;
      const wgt_t c = wgt_[static_cast<std::size_t>(base + i)];
      if (c > best) {
        best = c;
        tied.clear();
        tied.push_back(q);
      } else if (c == best && !tied.empty()) {
        tied.push_back(q);
      }
    }
    if (tied.empty()) return {kInvalidPart, threshold, 0};
    if (tied.size() == 1) return {tied.front(), best, 0};
    // Tie: replicate the scan-order rule.  Every tied part has positive
    // connectivity, so some neighbour carries it; the scan early-exits at
    // the first one, which is the part the historical full scan would
    // have registered (and therefore selected) first.
    const auto  nbrs = g.neighbors(v);
    std::uint64_t scanned = 0;
    for (const vid_t u : nbrs) {
      ++scanned;
      const part_t pu = where[static_cast<std::size_t>(u)];
      if (pu == pv) continue;
      for (const part_t q : tied) {
        if (q == pu) return {pu, best, scanned};
      }
    }
    return {tied.front(), best, scanned};  // unreachable if cache is exact
  }

  /// O(deg) delta update for a committed move v: from -> to.  `where`
  /// must hold every *neighbour's* current part; where[v] itself is not
  /// read (callers may update it before or after).  Returns work units.
  std::uint64_t apply_move(const CsrGraph& g, const std::vector<part_t>& where,
                           vid_t v, part_t from, part_t to);

  /// Replays a batch of moves recorded against `where_final` (the array
  /// AFTER all of them were applied, as at the mt commit barrier).  The
  /// replay reconstructs each neighbour's part mid-sequence from the move
  /// list, so the result is exactly the cache of `where_final` no matter
  /// how the concurrent commit interleaved.  Precondition: each vertex
  /// appears at most once in `moves` (true of any single commit barrier —
  /// a pass moves a vertex at most once); the overlay keeps one
  /// from/to pair per vertex and cannot reconstruct mid-sequence state
  /// for repeats.  Returns work units.
  std::uint64_t apply_moves(const CsrGraph& g,
                            const std::vector<part_t>& where_final,
                            const std::vector<CommittedMove>& moves);

  /// Full recompute comparison used by audit_gain_cache and tests:
  /// returns an empty string when the cache exactly matches a fresh build
  /// against `where`, else a description of the first mismatch.
  [[nodiscard]] std::string compare_to_rebuild(
      const CsrGraph& g, const std::vector<part_t>& where) const;

 private:
  template <typename PartOf>
  std::uint64_t apply_move_impl(const CsrGraph& g, vid_t v, part_t from,
                                part_t to, PartOf&& part_of);

  void conn_add(vid_t v, part_t q, wgt_t w);
  void conn_sub(vid_t v, part_t q, wgt_t w);

  part_t              k_ = 0;
  wgt_t               ed_total_ = 0;
  std::vector<wgt_t>  id_;
  std::vector<wgt_t>  ed_;
  std::vector<eid_t>  off_;   ///< n+1 slab offsets, capacity min(deg, k)
  std::vector<std::int32_t> cnt_;  ///< used slots per vertex
  std::vector<part_t> part_;  ///< slab: part ids
  std::vector<wgt_t>  wgt_;   ///< slab: connectivity weights
  // Scratch for apply_moves (lazily sized, reset via the touched list).
  std::vector<std::int32_t> move_idx_;
};

}  // namespace gp
