#include "core/graph_ops.hpp"

#include <algorithm>
#include <cassert>

namespace gp {

vid_t count_components(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> stack;
  vid_t comps = 0;
  for (vid_t s = 0; s < n; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    ++comps;
    seen[static_cast<std::size_t>(s)] = 1;
    stack.push_back(s);
    while (!stack.empty()) {
      const vid_t v = stack.back();
      stack.pop_back();
      for (const vid_t u : g.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return comps;
}

bool is_connected(const CsrGraph& g) {
  return g.num_vertices() == 0 || count_components(g) == 1;
}

CsrGraph permute(const CsrGraph& g, const std::vector<vid_t>& perm) {
  const vid_t n = g.num_vertices();
  assert(perm.size() == static_cast<std::size_t>(n));
  std::vector<vid_t> inv(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] = v;

  std::vector<eid_t> adjp(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t nv = 0; nv < n; ++nv) {
    adjp[static_cast<std::size_t>(nv) + 1] =
        adjp[static_cast<std::size_t>(nv)] +
        g.degree(inv[static_cast<std::size_t>(nv)]);
  }
  std::vector<vid_t> adjncy(static_cast<std::size_t>(g.num_arcs()));
  std::vector<wgt_t> adjwgt(static_cast<std::size_t>(g.num_arcs()));
  std::vector<wgt_t> vwgt(static_cast<std::size_t>(n));
  for (vid_t nv = 0; nv < n; ++nv) {
    const vid_t ov = inv[static_cast<std::size_t>(nv)];
    vwgt[static_cast<std::size_t>(nv)] = g.vertex_weight(ov);
    const auto nbrs = g.neighbors(ov);
    const auto wts = g.neighbor_weights(ov);
    eid_t out = adjp[static_cast<std::size_t>(nv)];
    // Keep adjacency sorted by new id for determinism.
    std::vector<std::pair<vid_t, wgt_t>> tmp;
    tmp.reserve(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      tmp.emplace_back(perm[static_cast<std::size_t>(nbrs[i])], wts[i]);
    }
    std::sort(tmp.begin(), tmp.end());
    for (const auto& [u, w] : tmp) {
      adjncy[static_cast<std::size_t>(out)] = u;
      adjwgt[static_cast<std::size_t>(out)] = w;
      ++out;
    }
  }
  return CsrGraph(std::move(adjp), std::move(adjncy), std::move(adjwgt),
                  std::move(vwgt));
}

CsrGraph induced_subgraph(const CsrGraph& g, const std::vector<char>& mask,
                          std::vector<vid_t>* old_to_new) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> map(static_cast<std::size_t>(n), kInvalidVid);
  vid_t m = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (mask[static_cast<std::size_t>(v)]) map[static_cast<std::size_t>(v)] = m++;
  }
  std::vector<eid_t> adjp(static_cast<std::size_t>(m) + 1, 0);
  std::vector<vid_t> adjncy;
  std::vector<wgt_t> adjwgt;
  std::vector<wgt_t> vwgt(static_cast<std::size_t>(m));
  for (vid_t v = 0; v < n; ++v) {
    const vid_t nv = map[static_cast<std::size_t>(v)];
    if (nv == kInvalidVid) continue;
    vwgt[static_cast<std::size_t>(nv)] = g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    eid_t deg = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t nu = map[static_cast<std::size_t>(nbrs[i])];
      if (nu == kInvalidVid) continue;
      adjncy.push_back(nu);
      adjwgt.push_back(wts[i]);
      ++deg;
    }
    adjp[static_cast<std::size_t>(nv) + 1] =
        adjp[static_cast<std::size_t>(nv)] + deg;
  }
  if (old_to_new) *old_to_new = std::move(map);
  return CsrGraph(std::move(adjp), std::move(adjncy), std::move(adjwgt),
                  std::move(vwgt));
}

CsrGraph extract_part(const CsrGraph& g, const Partition& p, part_t part,
                      std::vector<vid_t>* old_to_new) {
  std::vector<char> mask(p.where.size());
  for (std::size_t v = 0; v < p.where.size(); ++v) mask[v] = (p.where[v] == part);
  return induced_subgraph(g, mask, old_to_new);
}

DegreeStats degree_stats(const CsrGraph& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;
  s.min_degree = g.degree(0);
  for (vid_t v = 0; v < n; ++v) {
    const eid_t d = g.degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
  }
  s.avg_degree = static_cast<double>(g.num_arcs()) / static_cast<double>(n);
  return s;
}

}  // namespace gp
