// Assorted whole-graph operations: connectivity, permutation, subgraph
// extraction, degree statistics.  Used by generators, tests, and the
// initial-partitioning codes.
#pragma once

#include <vector>

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "util/types.hpp"

namespace gp {

/// Number of connected components.
[[nodiscard]] vid_t count_components(const CsrGraph& g);

/// True iff g is connected (empty graph counts as connected).
[[nodiscard]] bool is_connected(const CsrGraph& g);

/// Renumbers vertices: new id of v is perm[v].  perm must be a bijection.
[[nodiscard]] CsrGraph permute(const CsrGraph& g,
                               const std::vector<vid_t>& perm);

/// Extracts the subgraph induced by the vertices v with mask[v] != 0.
/// `old_to_new` (optional out) receives the id mapping (kInvalidVid for
/// excluded vertices).  Arcs leaving the mask are dropped.
[[nodiscard]] CsrGraph induced_subgraph(const CsrGraph& g,
                                        const std::vector<char>& mask,
                                        std::vector<vid_t>* old_to_new);

/// Extracts the subgraph of one partition part.
[[nodiscard]] CsrGraph extract_part(const CsrGraph& g, const Partition& p,
                                    part_t part,
                                    std::vector<vid_t>* old_to_new);

struct DegreeStats {
  eid_t  min_degree = 0;
  eid_t  max_degree = 0;
  double avg_degree = 0;
};

[[nodiscard]] DegreeStats degree_stats(const CsrGraph& g);

}  // namespace gp
