#include "core/matching.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace gp {

std::string validate_match(const std::vector<vid_t>& match) {
  const auto n = static_cast<vid_t>(match.size());
  std::ostringstream err;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t m = match[static_cast<std::size_t>(v)];
    if (m < 0 || m >= n) {
      err << "match[" << v << "] = " << m << " out of range";
      return err.str();
    }
    if (match[static_cast<std::size_t>(m)] != v) {
      err << "match not involutive at " << v << " (match[v]=" << m
          << ", match[match[v]]=" << match[static_cast<std::size_t>(m)] << ")";
      return err.str();
    }
  }
  return {};
}

std::string validate_cmap(const std::vector<vid_t>& match,
                          const std::vector<vid_t>& cmap, vid_t n_coarse) {
  const auto n = static_cast<vid_t>(match.size());
  std::ostringstream err;
  if (cmap.size() != match.size()) return "cmap/match size mismatch";
  std::vector<char> hit(static_cast<std::size_t>(n_coarse), 0);
  vid_t next_leader_label = 0;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t c = cmap[static_cast<std::size_t>(v)];
    if (c < 0 || c >= n_coarse) {
      err << "cmap[" << v << "] = " << c << " out of [0," << n_coarse << ")";
      return err.str();
    }
    if (cmap[static_cast<std::size_t>(match[static_cast<std::size_t>(v)])] !=
        c) {
      err << "cmap differs across matched pair at " << v;
      return err.str();
    }
    hit[static_cast<std::size_t>(c)] = 1;
    if (v <= match[static_cast<std::size_t>(v)]) {
      // v is a leader; labels must appear in increasing vertex order.
      if (c != next_leader_label) {
        err << "leader " << v << " has label " << c << ", expected "
            << next_leader_label;
        return err.str();
      }
      ++next_leader_label;
    }
  }
  if (next_leader_label != n_coarse) {
    err << "leader count " << next_leader_label << " != n_coarse " << n_coarse;
    return err.str();
  }
  for (vid_t c = 0; c < n_coarse; ++c) {
    if (!hit[static_cast<std::size_t>(c)]) {
      err << "coarse label " << c << " unused";
      return err.str();
    }
  }
  return {};
}

std::pair<std::vector<vid_t>, vid_t> build_cmap_serial(
    const std::vector<vid_t>& match) {
  const auto n = static_cast<vid_t>(match.size());
  std::vector<vid_t> cmap(match.size(), kInvalidVid);
  vid_t next = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (v <= match[static_cast<std::size_t>(v)]) {
      cmap[static_cast<std::size_t>(v)] = next++;
    }
  }
  for (vid_t v = 0; v < n; ++v) {
    if (v > match[static_cast<std::size_t>(v)]) {
      cmap[static_cast<std::size_t>(v)] =
          cmap[static_cast<std::size_t>(match[static_cast<std::size_t>(v)])];
    }
  }
  return {std::move(cmap), next};
}

CsrGraph contract_serial(const CsrGraph& fine, const std::vector<vid_t>& match,
                         const std::vector<vid_t>& cmap, vid_t n_coarse) {
  const vid_t n = fine.num_vertices();
  std::vector<wgt_t> cvwgt(static_cast<std::size_t>(n_coarse), 0);
  std::vector<eid_t> cadjp(static_cast<std::size_t>(n_coarse) + 1, 0);
  std::vector<vid_t> cadjncy;
  std::vector<wgt_t> cadjwgt;
  cadjncy.reserve(static_cast<std::size_t>(fine.num_arcs()));
  cadjwgt.reserve(static_cast<std::size_t>(fine.num_arcs()));

  // Merge the adjacency of each matched pair with a scratch map keyed by
  // coarse neighbour label.
  std::unordered_map<vid_t, wgt_t> merged;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t m = match[static_cast<std::size_t>(v)];
    if (v > m) continue;  // follower handled with its leader
    const vid_t c = cmap[static_cast<std::size_t>(v)];
    cvwgt[static_cast<std::size_t>(c)] =
        fine.vertex_weight(v) + (m != v ? fine.vertex_weight(m) : 0);
    merged.clear();
    auto absorb = [&](vid_t src) {
      const auto nbrs = fine.neighbors(src);
      const auto wts = fine.neighbor_weights(src);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t cu = cmap[static_cast<std::size_t>(nbrs[i])];
        if (cu == c) continue;  // intra-pair arc disappears
        merged[cu] += wts[i];
      }
    };
    absorb(v);
    if (m != v) absorb(m);
    // Deterministic order: sort neighbours by label.
    std::vector<std::pair<vid_t, wgt_t>> sorted(merged.begin(), merged.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [cu, w] : sorted) {
      cadjncy.push_back(cu);
      cadjwgt.push_back(w);
    }
    cadjp[static_cast<std::size_t>(c) + 1] =
        static_cast<eid_t>(sorted.size());
  }
  for (vid_t c = 0; c < n_coarse; ++c) {
    cadjp[static_cast<std::size_t>(c) + 1] +=
        cadjp[static_cast<std::size_t>(c)];
  }
  return CsrGraph(std::move(cadjp), std::move(cadjncy), std::move(cadjwgt),
                  std::move(cvwgt));
}

std::vector<part_t> project_partition(const std::vector<vid_t>& cmap,
                                      const std::vector<part_t>& coarse_where) {
  std::vector<part_t> fine_where(cmap.size());
  for (std::size_t v = 0; v < cmap.size(); ++v) {
    fine_where[v] = coarse_where[static_cast<std::size_t>(cmap[v])];
  }
  return fine_where;
}

}  // namespace gp
