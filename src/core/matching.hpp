// Matching arrays and the shared contraction contract.
//
// Every coarsening implementation in this library (serial, mt, par,
// hybrid/GPU) produces the same two artifacts per level:
//
//   match[v]  — partner of v (match[v] == v for vertices matched to
//               themselves; never kInvalidVid after conflict resolution)
//   cmap[v]   — label of the coarse vertex v collapses into
//
// A match array is VALID iff it is an involution: match[match[v]] == v for
// all v.  A cmap is CONSISTENT with a match iff cmap[v] == cmap[match[v]],
// cmap is a surjection onto [0, n_coarse), and leaders (min(v, match[v]))
// receive strictly increasing labels in vertex order — the property the
// paper's 4-kernel prefix-sum construction guarantees.
#pragma once

#include <string>
#include <vector>

#include "core/csr_graph.hpp"
#include "util/types.hpp"

namespace gp {

struct MatchResult {
  std::vector<vid_t> match;  ///< involution over [0,n)
  std::vector<vid_t> cmap;   ///< coarse label per fine vertex
  vid_t              n_coarse = 0;
};

/// Checks the involution property.  Empty string on success.
[[nodiscard]] std::string validate_match(const std::vector<vid_t>& match);

/// Checks cmap consistency against a valid match (see header comment).
[[nodiscard]] std::string validate_cmap(const std::vector<vid_t>& match,
                                        const std::vector<vid_t>& cmap,
                                        vid_t n_coarse);

/// Builds cmap from a valid match by the canonical serial rule: scan
/// vertices in order, a vertex v with v <= match[v] is a leader and gets
/// the next coarse label; followers copy their leader's label.  This is
/// the reference implementation the parallel 4-kernel GPU pipeline must
/// agree with (tests assert equality).
[[nodiscard]] std::pair<std::vector<vid_t>, vid_t> build_cmap_serial(
    const std::vector<vid_t>& match);

/// Reference serial contraction: collapses matched pairs of `fine` into a
/// coarse graph.  Vertex weights add; parallel coarse arcs merge with
/// summed weights; arcs internal to a pair vanish.  All parallel
/// contractions are tested against this.
[[nodiscard]] CsrGraph contract_serial(const CsrGraph& fine,
                                       const std::vector<vid_t>& match,
                                       const std::vector<vid_t>& cmap,
                                       vid_t n_coarse);

/// Projects a coarse partition back through cmap onto the fine graph.
[[nodiscard]] std::vector<part_t> project_partition(
    const std::vector<vid_t>& cmap, const std::vector<part_t>& coarse_where);

}  // namespace gp
