#include "core/partition.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace gp {

wgt_t edge_cut(const CsrGraph& g, const Partition& p) {
  wgt_t cut2 = 0;  // each cut edge counted twice (once per arc)
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    const part_t pv = p.where[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (p.where[static_cast<std::size_t>(nbrs[i])] != pv) cut2 += wts[i];
    }
  }
  return cut2 / 2;
}

std::vector<wgt_t> partition_weights(const CsrGraph& g, const Partition& p) {
  std::vector<wgt_t> w(static_cast<std::size_t>(p.k), 0);
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    w[static_cast<std::size_t>(p.where[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }
  return w;
}

double partition_balance(const CsrGraph& g, const Partition& p) {
  const auto w = partition_weights(g, p);
  const wgt_t total = g.total_vertex_weight();
  if (p.k <= 0 || total == 0) return 1.0;
  const double ideal = static_cast<double>(total) / static_cast<double>(p.k);
  wgt_t mx = 0;
  for (const auto& x : w) mx = std::max(mx, x);
  return static_cast<double>(mx) / ideal;
}

wgt_t communication_volume(const CsrGraph& g, const Partition& p) {
  wgt_t vol = 0;
  const vid_t n = g.num_vertices();
  std::unordered_set<part_t> ext;
  for (vid_t v = 0; v < n; ++v) {
    ext.clear();
    const part_t pv = p.where[static_cast<std::size_t>(v)];
    for (const vid_t u : g.neighbors(v)) {
      const part_t pu = p.where[static_cast<std::size_t>(u)];
      if (pu != pv) ext.insert(pu);
    }
    vol += static_cast<wgt_t>(ext.size());
  }
  return vol;
}

vid_t boundary_size(const CsrGraph& g, const Partition& p) {
  vid_t cnt = 0;
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    const part_t pv = p.where[static_cast<std::size_t>(v)];
    for (const vid_t u : g.neighbors(v)) {
      if (p.where[static_cast<std::size_t>(u)] != pv) {
        ++cnt;
        break;
      }
    }
  }
  return cnt;
}

std::string validate_partition(const CsrGraph& g, const Partition& p) {
  std::ostringstream err;
  if (p.k <= 0) return "k <= 0";
  if (p.where.size() != static_cast<std::size_t>(g.num_vertices())) {
    err << "where size " << p.where.size() << " != n = " << g.num_vertices();
    return err.str();
  }
  for (std::size_t v = 0; v < p.where.size(); ++v) {
    if (p.where[v] < 0 || p.where[v] >= p.k) {
      err << "where[" << v << "] = " << p.where[v] << " out of [0," << p.k
          << ")";
      return err.str();
    }
  }
  return {};
}

std::string validate_partition(const CsrGraph& g, const Partition& p,
                               wgt_t stored_cut, double stored_balance) {
  std::string err = validate_partition(g, p);
  if (!err.empty()) return err;
  std::ostringstream os;
  const wgt_t cut = edge_cut(g, p);
  if (cut != stored_cut) {
    os << "stored cut " << stored_cut << " != recomputed cut " << cut;
    return os.str();
  }
  const double balance = partition_balance(g, p);
  if (std::abs(balance - stored_balance) > 1e-9 * std::max(1.0, balance)) {
    os << "stored balance " << stored_balance << " != recomputed balance "
       << balance;
    return os.str();
  }
  return {};
}

int repair_empty_parts(const CsrGraph& g, Partition& p) {
  auto pw = partition_weights(g, p);
  std::vector<vid_t> pcount(static_cast<std::size_t>(p.k), 0);
  for (const part_t q : p.where) ++pcount[static_cast<std::size_t>(q)];

  int repairs = 0;
  for (part_t empty = 0; empty < p.k; ++empty) {
    if (pcount[static_cast<std::size_t>(empty)] > 0) continue;
    // Donor: the part with the most vertices (must have >= 2 to donate).
    part_t donor = kInvalidPart;
    for (part_t q = 0; q < p.k; ++q) {
      if (pcount[static_cast<std::size_t>(q)] < 2) continue;
      if (donor == kInvalidPart ||
          pw[static_cast<std::size_t>(q)] > pw[static_cast<std::size_t>(donor)]) {
        donor = q;
      }
    }
    if (donor == kInvalidPart) break;  // fewer vertices than parts overall
    // Cheapest vertex to exile: least internal arc weight within donor.
    vid_t best_v = kInvalidVid;
    wgt_t best_internal = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (p.where[static_cast<std::size_t>(v)] != donor) continue;
      wgt_t internal = 0;
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (p.where[static_cast<std::size_t>(nbrs[i])] == donor) {
          internal += wts[i];
        }
      }
      if (best_v == kInvalidVid || internal < best_internal) {
        best_v = v;
        best_internal = internal;
      }
    }
    p.where[static_cast<std::size_t>(best_v)] = empty;
    pw[static_cast<std::size_t>(donor)] -= g.vertex_weight(best_v);
    pw[static_cast<std::size_t>(empty)] += g.vertex_weight(best_v);
    --pcount[static_cast<std::size_t>(donor)];
    ++pcount[static_cast<std::size_t>(empty)];
    ++repairs;
  }
  return repairs;
}

wgt_t max_part_weight(wgt_t total_weight, part_t k, double eps) {
  const double ideal =
      static_cast<double>(total_weight) / static_cast<double>(k);
  return static_cast<wgt_t>(std::ceil(ideal * (1.0 + eps)));
}

wgt_t min_part_weight(wgt_t total_weight, part_t k, double eps) {
  const double ideal =
      static_cast<double>(total_weight) / static_cast<double>(k);
  return std::max<wgt_t>(
      1, static_cast<wgt_t>(std::floor(ideal * (1.0 - eps))));
}

}  // namespace gp
