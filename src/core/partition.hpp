// Partition representation and quality metrics.
//
// A partition of graph G into k parts is a vector `where` of length n with
// where[v] in [0, k).  The metrics here are the ones the paper reports:
// edge cut (Table III is edge-cut ratio vs Metis) and balance (the paper
// fixes the imbalance tolerance at 3%).
#pragma once

#include <string>
#include <vector>

#include "core/csr_graph.hpp"
#include "util/types.hpp"

namespace gp {

struct Partition {
  part_t              k = 0;
  std::vector<part_t> where;  ///< partition id per vertex

  [[nodiscard]] bool empty() const { return where.empty(); }
};

/// Sum of weights of edges whose endpoints lie in different parts.
[[nodiscard]] wgt_t edge_cut(const CsrGraph& g, const Partition& p);

/// Weight of each part.
[[nodiscard]] std::vector<wgt_t> partition_weights(const CsrGraph& g,
                                                   const Partition& p);

/// max part weight / ideal part weight.  1.0 = perfect.  The balance
/// constraint used throughout the library is `balance <= 1 + eps` with
/// eps = 0.03 as in the paper.
[[nodiscard]] double partition_balance(const CsrGraph& g, const Partition& p);

/// Total communication volume (sum over vertices of #distinct foreign parts among
/// neighbours) — an auxiliary quality metric used by tests and examples.
[[nodiscard]] wgt_t communication_volume(const CsrGraph& g,
                                         const Partition& p);

/// Number of boundary vertices (vertices with at least one neighbour in a
/// different part).
[[nodiscard]] vid_t boundary_size(const CsrGraph& g, const Partition& p);

/// Structural validation: size, k, range.  Empty string on success.
[[nodiscard]] std::string validate_partition(const CsrGraph& g,
                                             const Partition& p);

/// Structural validation plus verification of stored result fields: the
/// `cut` and `balance` a PartitionResult carries must match recomputation
/// from (g, p).  Catches metric drift a corrupted or buggy driver would
/// otherwise hand to the caller.  Empty string on success.
[[nodiscard]] std::string validate_partition(const CsrGraph& g,
                                             const Partition& p,
                                             wgt_t stored_cut,
                                             double stored_balance);

/// Repairs empty parts in place: each empty part receives a vertex from
/// the heaviest part (the one with the least internal connectivity, so
/// the cut damage is minimal).  Needed by partitioners whose construction
/// can strand a part on pathological inputs (power-law hubs whose vertex
/// weight exceeds the per-part budget).  Returns the number of repairs.
int repair_empty_parts(const CsrGraph& g, Partition& p);

/// Maximum allowed part weight for tolerance eps (paper: eps = 0.03).
[[nodiscard]] wgt_t max_part_weight(wgt_t total_weight, part_t k, double eps);

/// Minimum allowed part weight (used by refinement to avoid underweighting
/// the source part, as the paper's destination-selection rule requires).
/// Never below 1: a refinement move may not drain a part empty.
[[nodiscard]] wgt_t min_part_weight(wgt_t total_weight, part_t k, double eps);

}  // namespace gp
