#include "core/partitioner.hpp"

#include <stdexcept>
#include <string>

namespace gp {

void validate_options(const CsrGraph& g, const PartitionOptions& opts) {
  if (opts.k < 1) {
    throw std::invalid_argument("k must be >= 1, got " +
                                std::to_string(opts.k));
  }
  if (g.num_vertices() > 0 && opts.k > g.num_vertices()) {
    throw std::invalid_argument(
        "k (" + std::to_string(opts.k) + ") exceeds the number of vertices (" +
        std::to_string(g.num_vertices()) + ")");
  }
  if (!(opts.eps >= 0.0 && opts.eps < 1.0)) {
    throw std::invalid_argument("eps must be in [0, 1), got " +
                                std::to_string(opts.eps));
  }
  if (opts.threads < 1) {
    throw std::invalid_argument("threads must be >= 1");
  }
  if (opts.ranks < 1) {
    throw std::invalid_argument("ranks must be >= 1");
  }
  if (opts.refine_passes < 0) {
    throw std::invalid_argument("refine_passes must be >= 0");
  }
  if (opts.time_budget_seconds < 0.0) {
    throw std::invalid_argument("time_budget_seconds must be >= 0, got " +
                                std::to_string(opts.time_budget_seconds));
  }
  if (!opts.fault_spec.empty()) {
    (void)FaultPlan::parse(opts.fault_spec);  // throws on syntax errors
  }
}

std::unique_ptr<FaultInjector> PartitionOptions::make_fault_injector() const {
  if (fault_spec.empty()) return nullptr;
  return std::make_unique<FaultInjector>(fault_seed,
                                         FaultPlan::parse(fault_spec));
}

}  // namespace gp
