// Common options / result types and the abstract interface shared by the
// four partitioners (serial Metis-like, mt-metis-like, ParMetis-like, and
// the paper's GP-metis).
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "model/machine_model.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/types.hpp"

namespace gp {

struct PartitionOptions {
  part_t k = 64;       ///< number of parts (paper: 64)
  double eps = 0.03;   ///< imbalance tolerance (paper: 3%)
  std::uint64_t seed = 1;

  int threads = 8;     ///< logical CPU threads (mt phases; paper: 8)
  int ranks = 8;       ///< simulated MPI ranks (par)

  /// Coarsening stops when the graph has at most max(coarsen_to, 30*k)
  /// vertices (0 = use 30*k, roughly Metis' C*k rule).
  vid_t coarsen_to = 0;
  /// ParMetis variant: when > 0, switch to a PT-Scotch-style folding
  /// stage once the distributed coarse graph has at most this many
  /// vertices — every rank receives a replica and finishes coarsening +
  /// initial partitioning independently, the best result winning.  This
  /// trades one early broadcast for all remaining ghost-exchange rounds
  /// (the paper's Background II-B describes the technique).  0 = off.
  vid_t par_fold_threshold = 0;
  /// Stop coarsening early if a level shrinks by less than this factor.
  double min_shrink = 0.95;
  int refine_passes = 8;
  /// GGGP+FM trials raced per bisection by the mt-style initial
  /// partitioning engine (mt-metis, gp-metis, gmetis).  The partition is
  /// byte-identical at any thread count for a fixed value; raising it
  /// buys cut quality for modeled time.  The serial driver keeps its
  /// Metis-faithful 4 growths + 1 FM and ignores this.
  int init_trials = 1;
  /// Serial driver only: use the priority-queue k-way refiner (process
  /// boundary vertices in best-gain order, as real Metis does) instead
  /// of the scan-order refiner.  Ablation: bench/abl_kway_refine.
  bool pq_refinement = false;

  // --- GP-metis specific ---
  /// GPU coarsening hands off to the CPU when the level has fewer
  /// vertices than this (paper's "threshold level").
  vid_t gpu_cpu_threshold = 16 * 1024;
  /// Contraction merge strategy on the device: true = clustered hash
  /// table (paper's faster variant), false = sort-merge.
  bool gpu_hash_contraction = true;
  /// Logical GPU threads for the first level; later levels shrink the
  /// launch with the graph ("we reduce the number of launched threads in
  /// the following levels").
  int gpu_threads = 1 << 14;
  /// Per-device memory capacity override in bytes (0 = the GTX Titan's
  /// 6 GB).  Lets tests exercise the out-of-memory path.
  std::size_t gpu_memory_bytes = 0;
  /// Paper Section III-D: GP-metis launches kernels "with a variable
  /// number of threads" that shrinks with the graph (non-persistent data
  /// ownership), unlike mt-metis' persistent threads.  false = keep the
  /// initial launch width at every level (the ablation's strawman).
  bool gpu_shrink_launch = true;
  /// Device-wide prefix-sum / dispatch strategy (DESIGN.md §3.9):
  /// kLookback (default) runs each hot level chain as a single fused
  /// dispatch built on the decoupled-lookback scan; kBlocked keeps the
  /// historical one-launch-per-kernel pipelines with three-kernel scans
  /// (the differential harness and the scan ablation flip this).  Both
  /// modes produce byte-identical partitions.
  GpuScanMode gpu_scan = GpuScanMode::kLookback;
  /// Number of GPUs for the multi-device partitioner (the paper's future
  /// work, implemented in src/hybrid/multi_gpu_partitioner).  The
  /// single-device GP-metis ignores this.
  int gpu_devices = 2;
  /// Host worker threads per simulated device (0 = the device default).
  /// Tests set 1 for bit-deterministic kernel execution.
  int gpu_host_workers = 0;

  // --- fault injection (src/util/fault.hpp) ---
  /// Fault schedule, e.g. "alloc@3;kernel:p=0.01;device1:lost".  Empty =
  /// no injection and zero overhead; parse errors throw invalid_argument.
  std::string fault_spec;
  /// Seed for probabilistic fault rules (independent of `seed` so the
  /// same partitioning run can be replayed under different schedules).
  std::uint64_t fault_seed = 0;

  // --- silent-corruption defense (src/core/audit.hpp) ---
  /// Phase-boundary invariant audits: off = zero overhead (default),
  /// phase = O(n+m) checks at phase boundaries, paranoid = phase plus
  /// full structural revalidation of every coarse graph.  A failed audit
  /// rolls the level back and re-executes on an escalating ladder.
  AuditLevel audit_level = AuditLevel::kOff;
  /// Wall-clock deadline in seconds, enforced at phase boundaries: when
  /// rollback-retries threaten the budget, the drivers shed refinement
  /// passes and finish degraded rather than overrun.  0 = no deadline.
  double time_budget_seconds = 0.0;

  // --- cooperative cancellation (src/util/cancel.hpp, DESIGN.md §3.8) ---
  /// Non-owning cancellation token, observed at V-cycle phase boundaries
  /// by every driver (and between pool jobs by ThreadPool).  When set and
  /// cancelled, the run throws CancelledError; the caller owns the token's
  /// lifetime for the whole run.  nullptr (default) = not cancellable.
  const CancelToken* cancel = nullptr;

  /// Builds the injector for this run, or nullptr when fault_spec is
  /// empty (implemented in partitioner.cpp).
  [[nodiscard]] std::unique_ptr<FaultInjector> make_fault_injector() const;

  [[nodiscard]] vid_t coarsen_target() const {
    const vid_t metis_rule = 30 * k;
    return coarsen_to > 0 ? std::max(coarsen_to, metis_rule) : metis_rule;
  }
};

struct PhaseSeconds {
  double coarsen = 0;
  double initpart = 0;
  double uncoarsen = 0;
  double transfer = 0;  ///< host<->device copies (GP-metis only)

  [[nodiscard]] double total() const {
    return coarsen + initpart + uncoarsen + transfer;
  }
};

/// Per-level coarsening trace (finest to coarsest), for users inspecting
/// how their graph collapses.
struct LevelStat {
  vid_t vertices = 0;
  eid_t edges = 0;
};

/// Execution-engine counters from the run's simulated device(s): kernel
/// launches and device-buffer-pool behaviour.  All zero for the CPU-only
/// partitioners; multi-device runs sum over devices.
struct DeviceExecStats {
  std::uint64_t kernels_launched = 0;
  std::uint64_t pool_hits = 0;   ///< scratch acquisitions served from pool
  std::uint64_t pool_misses = 0; ///< acquisitions that allocated fresh memory
  std::uint64_t pool_recycled_bytes = 0;  ///< bytes served without malloc
  std::int64_t  pool_leaked_blocks = 0;   ///< blocks outstanding at teardown

  DeviceExecStats& operator+=(const DeviceExecStats& o) {
    kernels_launched += o.kernels_launched;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    pool_recycled_bytes += o.pool_recycled_bytes;
    pool_leaked_blocks += o.pool_leaked_blocks;
    return *this;
  }
};

struct PartitionResult {
  Partition partition;
  wgt_t     cut = 0;
  double    balance = 0;
  std::vector<LevelStat> levels;  ///< coarsening trace (may be empty)

  double modeled_seconds = 0;  ///< cost-model time on the paper's testbed
  double wall_seconds = 0;     ///< actual wall time in this container

  PhaseSeconds phases;         ///< modeled, by phase
  CostLedger   ledger;         ///< full metered breakdown
  int          coarsen_levels = 0;
  vid_t        coarsest_vertices = 0;

  /// Fault/degradation record of this run (default: healthy, no faults).
  RunHealth    health;

  /// Execution-engine counters (simulated device runs only).
  DeviceExecStats exec;
};

/// Validates (graph, options) preconditions shared by every partitioner:
/// k >= 1, k <= number of vertices (unless the graph is empty and k == 1),
/// eps in [0, 1), threads/ranks >= 1.  Throws std::invalid_argument.
void validate_options(const CsrGraph& g, const PartitionOptions& opts);

/// Cooperative cancellation check at a V-cycle phase boundary: throws
/// CancelledError when the run's token (if any) has been cancelled.
/// `where` names the boundary for the error message / event trail.
inline void check_cancelled(const PartitionOptions& opts, const char* where) {
  if (opts.cancel && opts.cancel->cancelled()) throw CancelledError(where);
}

/// Abstract partitioner, for code that compares all four systems.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual PartitionResult run(
      const CsrGraph& g, const PartitionOptions& opts) const = 0;
};

/// Factories for the four systems (implemented in their modules).
std::unique_ptr<Partitioner> make_serial_partitioner();   // "metis"
std::unique_ptr<Partitioner> make_mt_partitioner();       // "mt-metis"
std::unique_ptr<Partitioner> make_par_partitioner();      // "parmetis"
std::unique_ptr<Partitioner> make_hybrid_partitioner();   // "gp-metis"
std::unique_ptr<Partitioner> make_multi_gpu_partitioner();// "gp-metis-multi"

}  // namespace gp
