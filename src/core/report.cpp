#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gp {

PartitionReport analyze_partition(const CsrGraph& g, const Partition& p) {
  PartitionReport rep;
  rep.parts.resize(static_cast<std::size_t>(p.k));
  for (part_t q = 0; q < p.k; ++q) rep.parts[static_cast<std::size_t>(q)].part = q;

  wgt_t cut2 = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const part_t pv = p.where[static_cast<std::size_t>(v)];
    auto& row = rep.parts[static_cast<std::size_t>(pv)];
    row.weight += g.vertex_weight(v);
    row.vertices += 1;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    bool is_boundary = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (p.where[static_cast<std::size_t>(nbrs[i])] != pv) {
        row.external_weight += wts[i];
        cut2 += wts[i];
        is_boundary = true;
      }
    }
    if (is_boundary) {
      row.boundary_vertices += 1;
      rep.boundary += 1;
    }
  }
  rep.cut = cut2 / 2;
  rep.balance = partition_balance(g, p);
  rep.comm_volume = communication_volume(g, p);
  return rep;
}

std::string format_report(const PartitionReport& report, bool per_part_rows) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "edge cut %lld | balance %.4f | comm volume %lld | "
                "boundary vertices %d\n",
                static_cast<long long>(report.cut), report.balance,
                static_cast<long long>(report.comm_volume), report.boundary);
  os << buf;
  if (per_part_rows) {
    std::snprintf(buf, sizeof(buf), "%6s %12s %10s %10s %12s\n", "part",
                  "weight", "vertices", "boundary", "ext.weight");
    os << buf;
    for (const auto& row : report.parts) {
      std::snprintf(buf, sizeof(buf), "%6d %12lld %10d %10d %12lld\n",
                    row.part, static_cast<long long>(row.weight),
                    row.vertices, row.boundary_vertices,
                    static_cast<long long>(row.external_weight));
      os << buf;
    }
  }
  return os.str();
}

std::string summarize_result(const PartitionResult& r) {
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "cut=%lld balance=%.4f levels=%d modeled=%.4fs wall=%.4fs",
                static_cast<long long>(r.cut), r.balance, r.coarsen_levels,
                r.modeled_seconds, r.wall_seconds);
  std::string out = buf;
  if (r.exec.kernels_launched > 0) {
    const auto acq = r.exec.pool_hits + r.exec.pool_misses;
    std::snprintf(
        buf, sizeof(buf),
        " kernels=%llu pool(hit=%llu miss=%llu recycled=%.1fMB hit%%=%.0f)",
        static_cast<unsigned long long>(r.exec.kernels_launched),
        static_cast<unsigned long long>(r.exec.pool_hits),
        static_cast<unsigned long long>(r.exec.pool_misses),
        static_cast<double>(r.exec.pool_recycled_bytes) / (1024.0 * 1024.0),
        acq > 0 ? 100.0 * static_cast<double>(r.exec.pool_hits) /
                      static_cast<double>(acq)
                : 0.0);
    out += buf;
  }
  if (r.health.degraded) {
    std::snprintf(
        buf, sizeof(buf),
        " DEGRADED(faults=%llu retries=%llu fallbacks=%llu rollbacks=%llu)",
        static_cast<unsigned long long>(r.health.faults_injected),
        static_cast<unsigned long long>(r.health.gpu_retries),
        static_cast<unsigned long long>(r.health.fallbacks),
        static_cast<unsigned long long>(r.health.rollbacks));
    out += buf;
  }
  return out;
}

std::string format_health(const RunHealth& h) {
  std::ostringstream os;
  char buf[240];
  std::snprintf(
      buf, sizeof(buf),
      "health: %s | faults %llu | gpu retries %llu | devices lost %llu | "
      "msgs dropped %llu / resent %llu | match repairs %llu | fallbacks %llu\n",
      h.degraded ? "DEGRADED" : "ok",
      static_cast<unsigned long long>(h.faults_injected),
      static_cast<unsigned long long>(h.gpu_retries),
      static_cast<unsigned long long>(h.devices_lost),
      static_cast<unsigned long long>(h.messages_dropped),
      static_cast<unsigned long long>(h.messages_resent),
      static_cast<unsigned long long>(h.match_repairs),
      static_cast<unsigned long long>(h.fallbacks));
  os << buf;
  if (h.audits_run > 0 || h.corruptions_injected > 0 || h.rollbacks > 0 ||
      h.payload_discards > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "audits: run %llu | failed %llu | rollbacks %llu | "
        "corruptions injected %llu | payload discards %llu\n",
        static_cast<unsigned long long>(h.audits_run),
        static_cast<unsigned long long>(h.audits_failed),
        static_cast<unsigned long long>(h.rollbacks),
        static_cast<unsigned long long>(h.corruptions_injected),
        static_cast<unsigned long long>(h.payload_discards));
    os << buf;
  }
  for (const auto& e : h.events) os << "  " << e << "\n";
  return os.str();
}

std::string format_service_stats(const ServiceStats& s) {
  std::ostringstream os;
  char buf[240];
  std::snprintf(
      buf, sizeof(buf),
      "service: submitted %llu | accepted %llu | shed %llu "
      "(queue-full %llu, cost-budget %llu, shutdown %llu)\n",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.shed_total()),
      static_cast<unsigned long long>(s.shed_queue_full),
      static_cast<unsigned long long>(s.shed_cost_budget),
      static_cast<unsigned long long>(s.shed_shutdown));
  os << buf;
  std::snprintf(
      buf, sizeof(buf),
      "         completed %llu (degraded %llu) | deadline misses %llu | "
      "retries %llu | cancelled %llu | failed %llu | leaked blocks %llu\n",
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.completed_degraded),
      static_cast<unsigned long long>(s.deadline_misses),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.leaked_blocks));
  os << buf;
  return os.str();
}

}  // namespace gp
