// Human-readable partition quality report — what `gpmetis --report`
// prints and what examples use to summarize results.
#pragma once

#include <string>

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "core/partitioner.hpp"
#include "service/request.hpp"

namespace gp {

struct PartReportRow {
  part_t part = 0;
  wgt_t weight = 0;
  vid_t vertices = 0;
  vid_t boundary_vertices = 0;
  wgt_t external_weight = 0;  ///< arc weight leaving the part
};

struct PartitionReport {
  wgt_t cut = 0;
  double balance = 0;
  wgt_t comm_volume = 0;
  vid_t boundary = 0;
  std::vector<PartReportRow> parts;
};

/// Computes the full per-part breakdown.
[[nodiscard]] PartitionReport analyze_partition(const CsrGraph& g,
                                                const Partition& p);

/// Renders the report as an aligned text table.
[[nodiscard]] std::string format_report(const PartitionReport& report,
                                        bool per_part_rows = true);

/// One-line summary of a PartitionResult (for logs).  Degraded runs get a
/// trailing "DEGRADED(...)" tag so fault-tolerant completions are visible.
[[nodiscard]] std::string summarize_result(const PartitionResult& r);

/// Multi-line rendering of a run's health record: fault/retry/fallback
/// tallies plus the ordered event trail.  Healthy runs render one line.
[[nodiscard]] std::string format_health(const RunHealth& h);

/// Multi-line rendering of a service engine's lifetime counters —
/// admission/shed split, completion health, retry and deadline tallies
/// (printed by `gpmetis --serve` and bench_service).
[[nodiscard]] std::string format_service_stats(const ServiceStats& s);

}  // namespace gp
