#include "galois/gmetis_partitioner.hpp"

#include <memory>

#include "gpu/device_atomics.hpp"
#include "mt/mt_contract.hpp"
#include "mt/mt_initpart.hpp"
#include "mt/mt_refine.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gp {

MatchResult gmetis_match(const CsrGraph& g, ThreadPool& pool,
                         std::uint64_t seed, GmetisMatchStats* stats) {
  const vid_t n = g.num_vertices();
  MatchResult r;
  r.match.assign(static_cast<std::size_t>(n), kInvalidVid);
  vid_t* match = r.match.data();

  SpeculativeEngine engine(pool, static_cast<std::size_t>(n));
  std::atomic<std::uint64_t> work{0};

  const auto spec_stats = engine.for_each(
      n, [&](SpecTxn& txn, std::int64_t i) -> bool {
        const auto v = static_cast<vid_t>(i);
        if (!txn.acquire(v)) return false;
        if (racy_load(match[v]) != kInvalidVid) return true;  // settled
        const auto nbrs = g.neighbors(v);
        const auto wts = g.neighbor_weights(v);
        work.fetch_add(nbrs.size(), std::memory_order_relaxed);
        // HEM choice with a seed-rotated scan (random tie-break).
        Rng rng(seed + static_cast<std::uint64_t>(v));
        vid_t best = kInvalidVid;
        wgt_t best_w = -1;
        const std::size_t rot = nbrs.empty() ? 0 : rng.next_below(nbrs.size());
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          const std::size_t idx = (j + rot) % nbrs.size();
          const vid_t u = nbrs[idx];
          if (racy_load(match[u]) != kInvalidVid) continue;
          if (wts[idx] > best_w) {
            best_w = wts[idx];
            best = u;
          }
        }
        if (best == kInvalidVid) {
          racy_store(match[v], v);  // v is locked: no one else writes it
          return true;
        }
        // Lock the mate before writing anything — abort on conflict.
        if (!txn.acquire(best)) return false;
        if (racy_load(match[best]) != kInvalidVid) {
          // Mate got taken between the scan and the lock: retry would
          // find another; abort to re-queue.
          return false;
        }
        racy_store(match[v], best);
        racy_store(match[best], v);
        return true;
      });

  // Settle any vertices the operator left unmatched after retries (an
  // aborted retry whose mate vanished self-matches here).
  for (vid_t v = 0; v < n; ++v) {
    if (match[v] == kInvalidVid) match[v] = v;
    // A one-sided pair can only arise if a retry wrote match[v]=u after
    // u self-matched in the serial round; repair exactly like the GPU
    // resolve kernel.
    const vid_t m = match[v];
    if (m != v && match[m] != v) match[v] = v;
  }

  auto [cmap, nc] = build_cmap_serial(r.match);
  r.cmap = std::move(cmap);
  r.n_coarse = nc;
  if (stats) {
    stats->spec = spec_stats;
    stats->work_units = work.load();
  }
  return r;
}

PartitionResult GmetisPartitioner::run(const CsrGraph& g,
                                       const PartitionOptions& opts) const {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  ThreadPool pool(opts.threads);
  MtContext ctx{&pool, &res.ledger, opts.seed};

  struct Level {
    CsrGraph graph;
    std::vector<vid_t> cmap;
  };
  std::vector<Level> levels;

  // Cost model for speculative work: every lock acquisition costs a CAS
  // (~4 work units), every abort wastes the transaction's scan, and each
  // transaction pays the Galois runtime's fixed overhead (worklist pop,
  // conflict bookkeeping, commit record — several hundred cycles, ~14
  // work units; this overhead is what the paper's background blames for
  // Gmetis being "not as efficient as ParMetis").
  constexpr std::uint64_t kLockCost = 4;
  constexpr std::uint64_t kTxnOverhead = 14;

  const vid_t target = opts.coarsen_target();
  const CsrGraph* cur = &g;
  int lvl = 0;
  while (cur->num_vertices() > target) {
    GmetisMatchStats mst;
    MatchResult m = gmetis_match(*cur, pool, opts.seed + static_cast<std::uint64_t>(lvl), &mst);
    if (static_cast<double>(m.n_coarse) >
        opts.min_shrink * static_cast<double>(cur->num_vertices())) {
      break;
    }
    // Charge: scans + lock CASes + abort-wasted scans, split evenly
    // across threads (the worklist is balanced).
    const std::uint64_t spec_work =
        mst.work_units + mst.spec.lock_acquisitions * kLockCost +
        (mst.spec.commits + mst.spec.aborts) * kTxnOverhead +
        mst.spec.aborts * (static_cast<std::uint64_t>(cur->num_arcs()) /
                           std::max<std::uint64_t>(
                               1, static_cast<std::uint64_t>(
                                      cur->num_vertices())));
    std::vector<std::uint64_t> per_thread(
        static_cast<std::size_t>(opts.threads),
        spec_work / static_cast<std::uint64_t>(opts.threads));
    res.ledger.charge_mt_pass("coarsen/specmatch/L" + std::to_string(lvl),
                              per_thread);
    // The cmap construction after speculative matching is serial in
    // Gmetis (Galois set iterators do not cover it).
    res.ledger.charge_serial(
        "coarsen/cmap-serial/L" + std::to_string(lvl),
        static_cast<std::uint64_t>(cur->num_vertices()) * 2);

    CsrGraph coarse = mt_contract(*cur, m, ctx, lvl);
    levels.push_back({std::move(coarse), std::move(m.cmap)});
    cur = &levels.back().graph;
    ++lvl;
  }
  res.coarsen_levels = static_cast<int>(levels.size());
  res.coarsest_vertices = cur->num_vertices();

  Partition p =
      mt_initial_partition(*cur, opts.k, opts.eps, ctx, opts.init_trials);
  mt_refine(*cur, p, opts.eps, opts.refine_passes, ctx, lvl);

  for (std::size_t i = levels.size(); i-- > 0;) {
    const CsrGraph& fine = (i == 0) ? g : levels[i - 1].graph;
    p.where = project_partition(levels[i].cmap, p.where);
    res.ledger.charge_serial("uncoarsen/project/L" + std::to_string(i),
                             static_cast<std::uint64_t>(fine.num_vertices()) /
                                 static_cast<std::uint64_t>(opts.threads));
    mt_refine(fine, p, opts.eps, opts.refine_passes, ctx,
              static_cast<int>(i));
  }

  res.partition = std::move(p);
  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  res.modeled_seconds = res.ledger.total_seconds();
  res.phases.coarsen = res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen = res.ledger.seconds_with_prefix("uncoarsen/");
  res.wall_seconds = wall.seconds();
  return res;
}

std::unique_ptr<Partitioner> make_gmetis_partitioner() {
  return std::make_unique<GmetisPartitioner>();
}

}  // namespace gp
