// Gmetis-style multicore partitioner (paper Background II-C: "Gmetis
// extended a version of Metis to a multicore platform using the Galois
// programming model ... a sequential object-oriented programming model
// that supports parallel set iterators").
//
// The distinctive piece is the coarsening: matching runs as speculative
// parallel operators over the vertex worklist — each transaction locks a
// vertex and its chosen mate, aborting on conflict — instead of the
// lock-free two-round repair GP-metis and mt-metis use.  Contraction,
// initial partitioning and refinement reuse the shared-memory engine.
//
// The paper notes "this approach is found to be not as efficient as
// ParMetis in terms of performance": the cost model charges each lock
// acquisition and each aborted transaction's wasted work, which is where
// that gap comes from.
#pragma once

#include "core/matching.hpp"
#include "core/partitioner.hpp"
#include "galois/speculative.hpp"
#include "mt/mt_context.hpp"

namespace gp {

struct GmetisMatchStats {
  SpeculativeEngine::Stats spec;
  std::uint64_t work_units = 0;
};

/// Speculative HEM matching: one transaction per vertex, locking the
/// vertex and its heaviest free neighbour.  Always yields a valid
/// involution (transactions are atomic — no repair round needed).
[[nodiscard]] MatchResult gmetis_match(const CsrGraph& g, ThreadPool& pool,
                                       std::uint64_t seed,
                                       GmetisMatchStats* stats = nullptr);

class GmetisPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "gmetis"; }
  [[nodiscard]] PartitionResult run(const CsrGraph& g,
                                    const PartitionOptions& opts) const override;
};

std::unique_ptr<Partitioner> make_gmetis_partitioner();

}  // namespace gp
