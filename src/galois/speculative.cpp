#include "galois/speculative.hpp"

#include <algorithm>

namespace gp {

bool SpecTxn::acquire(vid_t id) {
  auto& lock = (*locks_)[static_cast<std::size_t>(id)];
  int expected = -1;
  if (lock.compare_exchange_strong(expected, owner_,
                                   std::memory_order_acquire)) {
    held_.push_back(id);
    return true;
  }
  return expected == owner_;  // re-entrant acquire of our own lock is fine
}

void SpecTxn::rollback() {
  for (std::size_t i = undo_log_.size(); i-- > 0;) undo_log_[i]();
  undo_log_.clear();
}

void SpecTxn::release_all() {
  for (const vid_t id : held_) {
    (*locks_)[static_cast<std::size_t>(id)].store(-1,
                                                  std::memory_order_release);
  }
  held_.clear();
  undo_log_.clear();
}

SpeculativeEngine::SpeculativeEngine(ThreadPool& pool,
                                     std::size_t num_elements)
    : pool_(pool), locks_(num_elements) {
  for (auto& l : locks_) l.store(-1, std::memory_order_relaxed);
}

SpeculativeEngine::Stats SpeculativeEngine::for_each(
    std::int64_t n, const std::function<bool(SpecTxn&, std::int64_t)>& op) {
  Stats stats;
  const int nt = pool_.size();
  std::vector<std::vector<std::int64_t>> retries(
      static_cast<std::size_t>(nt));
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(nt), 0);
  std::vector<std::uint64_t> aborts(static_cast<std::size_t>(nt), 0);
  std::vector<std::uint64_t> acqs(static_cast<std::size_t>(nt), 0);

  // Parallel optimistic round.
  pool_.parallel_for_blocked(n, [&](int t, std::int64_t b, std::int64_t e) {
    SpecTxn txn(&locks_, t);
    for (std::int64_t i = b; i < e; ++i) {
      const bool ok = op(txn, i);
      acqs[static_cast<std::size_t>(t)] += txn.locks_held();
      if (ok) {
        ++commits[static_cast<std::size_t>(t)];
        txn.release_all();
      } else {
        ++aborts[static_cast<std::size_t>(t)];
        txn.rollback();
        txn.release_all();
        retries[static_cast<std::size_t>(t)].push_back(i);
      }
    }
  });
  for (int t = 0; t < nt; ++t) {
    stats.commits += commits[static_cast<std::size_t>(t)];
    stats.aborts += aborts[static_cast<std::size_t>(t)];
    stats.lock_acquisitions += acqs[static_cast<std::size_t>(t)];
  }

  // Serial settlement round: cannot conflict, so every retry commits
  // unless the operator itself declines (which then counts as a commit
  // of a no-op — the item is settled either way).
  SpecTxn txn(&locks_, nt);
  for (const auto& lst : retries) {
    for (const std::int64_t i : lst) {
      ++stats.retry_round_items;
      const bool ok = op(txn, i);
      stats.lock_acquisitions += txn.locks_held();
      if (!ok) txn.rollback();
      txn.release_all();
      ++stats.commits;
      (void)ok;
    }
  }
  return stats;
}

}  // namespace gp
