// Minimal optimistic-parallelism runtime in the spirit of the Galois
// programming model (Kulkarni et al., "Optimistic parallelism requires
// abstractions") — the substrate under Gmetis, the multicore partitioner
// the paper's background compares against.
//
// The model: a worklist of items is processed by parallel operators.  An
// operator touches shared state only through its transaction handle,
// which acquires per-element locks; if a lock is already held, the
// transaction ABORTS — its undo log rolls back every write — and the item
// is retried in a later (eventually serial) round.  The commit/abort
// counts are the runtime's characteristic metric; the ablation bench
// compares them against the lock-free two-round scheme GP-metis uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace gp {

/// Per-transaction view: lock acquisition + undo logging.
class SpecTxn {
 public:
  SpecTxn(std::vector<std::atomic<int>>* locks, int owner)
      : locks_(locks), owner_(owner) {}

  /// Tries to take the lock of element `id`; false = conflict (caller
  /// must abort).  Re-acquiring an element this txn already holds is ok.
  [[nodiscard]] bool acquire(vid_t id);

  /// Registers a rollback action for a write this txn performed.
  void log_undo(std::function<void()> undo) {
    undo_log_.push_back(std::move(undo));
  }

  [[nodiscard]] std::size_t locks_held() const { return held_.size(); }

 private:
  friend class SpeculativeEngine;

  void rollback();
  void release_all();

  std::vector<std::atomic<int>>* locks_;
  int owner_;
  std::vector<vid_t> held_;
  std::vector<std::function<void()>> undo_log_;
};

class SpeculativeEngine {
 public:
  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t lock_acquisitions = 0;
    std::uint64_t retry_round_items = 0;  ///< items settled serially

    [[nodiscard]] double abort_rate() const {
      const double total = static_cast<double>(commits + aborts);
      return total > 0 ? static_cast<double>(aborts) / total : 0.0;
    }
  };

  /// `num_elements` sizes the lock table (one lock per lockable element,
  /// typically one per vertex).
  SpeculativeEngine(ThreadPool& pool, std::size_t num_elements);

  /// Processes items [0, n) with `op(txn, item)`.  The operator returns
  /// true to commit; returning false — or any failed acquire() — aborts
  /// and re-queues the item.  Items that keep conflicting are settled in
  /// a final serial round (which cannot conflict), so the call always
  /// terminates.  The operator must perform ALL acquires before its
  /// first write, or log undos for writes preceding a failed acquire.
  Stats for_each(std::int64_t n,
                 const std::function<bool(SpecTxn&, std::int64_t)>& op);

 private:
  ThreadPool& pool_;
  std::vector<std::atomic<int>> locks_;
};

}  // namespace gp
