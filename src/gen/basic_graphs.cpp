// Simple generators: grids, Erdos-Renyi, RMAT.
#include <unordered_set>

#include "gen/generators.hpp"
#include "util/rng.hpp"

namespace gp {

CsrGraph grid2d_graph(vid_t width, vid_t height) {
  GraphBuilder b(width * height);
  for (vid_t y = 0; y < height; ++y) {
    for (vid_t x = 0; x < width; ++x) {
      const vid_t v = y * width + x;
      if (x + 1 < width) b.add_edge(v, v + 1);
      if (y + 1 < height) b.add_edge(v, v + width);
    }
  }
  return b.build();
}

CsrGraph grid3d_graph(vid_t nx, vid_t ny, vid_t nz) {
  GraphBuilder b(nx * ny * nz);
  auto id = [&](vid_t x, vid_t y, vid_t z) { return (z * ny + y) * nx + x; };
  for (vid_t z = 0; z < nz; ++z) {
    for (vid_t y = 0; y < ny; ++y) {
      for (vid_t x = 0; x < nx; ++x) {
        const vid_t v = id(x, y, z);
        if (x + 1 < nx) b.add_edge(v, id(x + 1, y, z));
        if (y + 1 < ny) b.add_edge(v, id(x, y + 1, z));
        if (z + 1 < nz) b.add_edge(v, id(x, y, z + 1));
      }
    }
  }
  return b.build();
}

CsrGraph erdos_renyi_graph(vid_t n, eid_t m, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(static_cast<std::size_t>(m) * 2);
  eid_t added = 0;
  // Cap attempts so dense requests terminate.
  eid_t attempts = 0;
  const eid_t max_attempts = m * 20 + 1000;
  while (added < m && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    const vid_t lo = std::min(u, v), hi = std::max(u, v);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
        static_cast<std::uint32_t>(hi);
    if (!used.insert(key).second) continue;
    b.add_edge(lo, hi);
    ++added;
  }
  return b.build();
}

CsrGraph rmat_graph(vid_t n_log2, eid_t m, std::uint64_t seed) {
  Rng rng(seed);
  const vid_t n = vid_t{1} << n_log2;
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(static_cast<std::size_t>(m) * 2);
  const double a = 0.57, bq = 0.19, c = 0.19;  // d = 0.05
  eid_t added = 0, attempts = 0;
  const eid_t max_attempts = m * 20 + 1000;
  while (added < m && attempts < max_attempts) {
    ++attempts;
    vid_t u = 0, v = 0;
    for (int bit = 0; bit < n_log2; ++bit) {
      const double r = rng.next_double();
      int quad;
      if (r < a) quad = 0;
      else if (r < a + bq) quad = 1;
      else if (r < a + bq + c) quad = 2;
      else quad = 3;
      u = (u << 1) | (quad >> 1);
      v = (v << 1) | (quad & 1);
    }
    if (u == v) continue;
    const vid_t lo = std::min(u, v), hi = std::max(u, v);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
        static_cast<std::uint32_t>(hi);
    if (!used.insert(key).second) continue;
    b.add_edge(lo, hi);
    ++added;
  }
  return b.build();
}

}  // namespace gp
