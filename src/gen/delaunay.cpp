// Bowyer-Watson incremental Delaunay triangulation.
//
// Substitutes the paper's delaunay_nXX DIMACS-10 inputs, which are
// themselves "Delaunay triangulations of random points" — so this is the
// same construction, not an approximation.  Points are inserted in Morton
// order with remembering walk point location; the cavity of each insertion
// is re-triangulated as a fan and dead triangles are recycled through a
// free list so live memory stays ~2n triangles.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "gen/generators.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace gp {
namespace {

struct Point {
  double x, y;
};

/// > 0 if (a,b,c) is counter-clockwise.
double orient2d(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// > 0 if d is strictly inside the circumcircle of CCW triangle (a,b,c).
double incircle(const Point& a, const Point& b, const Point& c,
                const Point& d) {
  const double adx = a.x - d.x, ady = a.y - d.y;
  const double bdx = b.x - d.x, bdy = b.y - d.y;
  const double cdx = c.x - d.x, cdy = c.y - d.y;
  const double ad2 = adx * adx + ady * ady;
  const double bd2 = bdx * bdx + bdy * bdy;
  const double cd2 = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
         ad2 * (bdx * cdy - cdx * bdy);
}

struct Tri {
  // CCW vertices; adj[i] faces the edge opposite v[i], i.e. (v[i+1], v[i+2]).
  int v[3];
  int adj[3];
  bool alive = true;
};

/// Interleaves the low 16 bits of x and y (Morton code for locality).
std::uint32_t morton16(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint32_t a) {
    a &= 0xffff;
    a = (a | (a << 8)) & 0x00ff00ff;
    a = (a | (a << 4)) & 0x0f0f0f0f;
    a = (a | (a << 2)) & 0x33333333;
    a = (a | (a << 1)) & 0x55555555;
    return a;
  };
  return spread(x) | (spread(y) << 1);
}

class Triangulator {
 public:
  explicit Triangulator(std::vector<Point> pts) : pts_(std::move(pts)) {
    // Super-triangle well outside the unit square.
    const int s0 = add_point({-40.0, -40.0});
    const int s1 = add_point({80.0, -40.0});
    const int s2 = add_point({-40.0, 80.0});
    super_[0] = s0;
    super_[1] = s1;
    super_[2] = s2;
    const int t = alloc_tri();
    tris_[static_cast<std::size_t>(t)] = Tri{{s0, s1, s2}, {-1, -1, -1}, true};
    last_tri_ = t;
  }

  void run() {
    const int n = static_cast<int>(pts_.size()) - 3;  // minus super vertices
    for (int p = 0; p < n; ++p) insert(p);
  }

  /// Emits the triangulation edges (excluding super-triangle incidences).
  CsrGraph to_graph(vid_t n) const {
    GraphBuilder b(n);
    for (const auto& t : tris_) {
      if (!t.alive) continue;
      for (int i = 0; i < 3; ++i) {
        const int u = t.v[i], w = t.v[(i + 1) % 3];
        if (u >= static_cast<int>(n) || w >= static_cast<int>(n)) continue;
        if (u < w) b.add_edge(static_cast<vid_t>(u), static_cast<vid_t>(w));
      }
    }
    return b.build();
  }

 private:
  int add_point(Point p) {
    pts_.push_back(p);
    return static_cast<int>(pts_.size()) - 1;
  }

  int alloc_tri() {
    if (!free_.empty()) {
      const int t = free_.back();
      free_.pop_back();
      tris_[static_cast<std::size_t>(t)].alive = true;
      return t;
    }
    tris_.emplace_back();
    return static_cast<int>(tris_.size()) - 1;
  }

  void kill_tri(int t) {
    tris_[static_cast<std::size_t>(t)].alive = false;
    free_.push_back(t);
  }

  /// Walks from last_tri_ toward the triangle containing point p.
  int locate(int p) const {
    const Point& q = pts_[static_cast<std::size_t>(p)];
    int t = last_tri_;
    // Guard: bounded walk, then (never observed on random inputs) scan.
    for (std::size_t steps = 0; steps < tris_.size() + 16; ++steps) {
      const Tri& tr = tris_[static_cast<std::size_t>(t)];
      int cross = -1;
      for (int i = 0; i < 3; ++i) {
        const Point& a = pts_[static_cast<std::size_t>(tr.v[(i + 1) % 3])];
        const Point& b = pts_[static_cast<std::size_t>(tr.v[(i + 2) % 3])];
        if (orient2d(a, b, q) < 0) {
          cross = i;
          break;
        }
      }
      if (cross < 0) return t;
      const int next = tr.adj[cross];
      if (next < 0) return t;  // outside hull (cannot happen inside super)
      t = next;
    }
    for (std::size_t i = 0; i < tris_.size(); ++i) {
      const Tri& tr = tris_[i];
      if (!tr.alive) continue;
      bool inside = true;
      for (int e = 0; e < 3 && inside; ++e) {
        inside = orient2d(pts_[static_cast<std::size_t>(tr.v[(e + 1) % 3])],
                          pts_[static_cast<std::size_t>(tr.v[(e + 2) % 3])],
                          q) >= 0;
      }
      if (inside) return static_cast<int>(i);
    }
    return last_tri_;  // unreachable on well-formed input
  }

  void insert(int p) {
    const Point& q = pts_[static_cast<std::size_t>(p)];
    const int t0 = locate(p);

    // Grow the cavity: all connected triangles whose circumcircle holds q.
    // Cavity membership uses version stamps so no per-insertion clear is
    // needed (a full clear would make construction quadratic).
    ++cavity_epoch_;
    cavity_stamp_.resize(tris_.size(), 0);
    bad_.clear();
    stack_.clear();
    stack_.push_back(t0);
    cavity_stamp_[static_cast<std::size_t>(t0)] = cavity_epoch_;
    while (!stack_.empty()) {
      const int t = stack_.back();
      stack_.pop_back();
      bad_.push_back(t);
      const Tri& tr = tris_[static_cast<std::size_t>(t)];
      for (int i = 0; i < 3; ++i) {
        const int nb = tr.adj[i];
        if (nb < 0 ||
            cavity_stamp_[static_cast<std::size_t>(nb)] == cavity_epoch_) {
          continue;
        }
        const Tri& nt = tris_[static_cast<std::size_t>(nb)];
        if (incircle(pts_[static_cast<std::size_t>(nt.v[0])],
                     pts_[static_cast<std::size_t>(nt.v[1])],
                     pts_[static_cast<std::size_t>(nt.v[2])], q) > 0) {
          cavity_stamp_[static_cast<std::size_t>(nb)] = cavity_epoch_;
          stack_.push_back(nb);
        }
      }
    }

    // Collect boundary edges (a, b, outer_neighbour) in cavity orientation,
    // remembering which bad triangle owned each edge so the outer
    // triangle's adjacency can be repaired slot-exactly (an outer triangle
    // may border the cavity on two edges).
    boundary_.clear();
    for (const int t : bad_) {
      const Tri& tr = tris_[static_cast<std::size_t>(t)];
      for (int i = 0; i < 3; ++i) {
        const int nb = tr.adj[i];
        if (nb >= 0 &&
            cavity_stamp_[static_cast<std::size_t>(nb)] == cavity_epoch_) {
          continue;
        }
        boundary_.push_back({tr.v[(i + 1) % 3], tr.v[(i + 2) % 3], nb, t});
      }
    }

    for (const int t : bad_) kill_tri(t);

    // Fan from p over the boundary; link fan neighbours by start vertex.
    start_map_.clear();
    new_tris_.clear();
    for (const auto& be : boundary_) {
      const int nt = alloc_tri();
      Tri& tr = tris_[static_cast<std::size_t>(nt)];
      tr.v[0] = be.a;
      tr.v[1] = be.b;
      tr.v[2] = p;
      tr.adj[0] = -1;  // edge (b, p): the fan triangle starting at b
      tr.adj[1] = -1;  // edge (p, a): the fan triangle ending at a
      tr.adj[2] = be.outer;
      if (be.outer >= 0) {
        Tri& ot = tris_[static_cast<std::size_t>(be.outer)];
        for (int i = 0; i < 3; ++i) {
          if (ot.adj[i] == be.bad) ot.adj[i] = nt;
        }
      }
      start_map_.push_back({be.a, nt});
      new_tris_.push_back(nt);
    }
    // adj by matching start vertices: triangle with edge (a,b) has fan
    // successor the triangle whose boundary edge starts at b.
    for (const int nt : new_tris_) {
      Tri& tr = tris_[static_cast<std::size_t>(nt)];
      const int bvert = tr.v[1];
      for (const auto& [start, tidx] : start_map_) {
        if (start == bvert) {
          tr.adj[0] = tidx;
          tris_[static_cast<std::size_t>(tidx)].adj[1] = nt;
          break;
        }
      }
    }
    last_tri_ = new_tris_.empty() ? last_tri_ : new_tris_.back();
  }

  struct BoundaryEdge {
    int a, b, outer, bad;
  };

  std::vector<Point> pts_;
  std::vector<Tri>   tris_;
  std::vector<int>   free_;
  int                super_[3] = {-1, -1, -1};
  int                last_tri_ = 0;

  // Scratch (reused across insertions).
  std::vector<int>           bad_, stack_, new_tris_;
  std::vector<std::uint32_t> cavity_stamp_;
  std::uint32_t              cavity_epoch_ = 0;
  std::vector<BoundaryEdge>  boundary_;
  std::vector<std::pair<int, int>> start_map_;
};

}  // namespace

CsrGraph delaunay_graph(vid_t n, std::uint64_t seed,
                        std::vector<Point2D>* coords) {
  Rng rng(seed);
  std::vector<Point> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) {
    p.x = rng.next_double();
    p.y = rng.next_double();
  }
  // Morton sort for walk locality; ids in the output graph follow the
  // sorted order (harmless relabeling of random points).
  std::vector<std::uint32_t> key(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    key[i] = morton16(static_cast<std::uint32_t>(pts[i].x * 65535.0),
                      static_cast<std::uint32_t>(pts[i].y * 65535.0));
  }
  std::vector<std::size_t> order(pts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return key[a] < key[b]; });
  std::vector<Point> sorted(pts.size());
  for (std::size_t i = 0; i < order.size(); ++i) sorted[i] = pts[order[i]];

  if (coords) {
    coords->resize(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      (*coords)[i] = Point2D{sorted[i].x, sorted[i].y};
    }
  }

  Triangulator tri(std::move(sorted));
  tri.run();
  return tri.to_graph(n);
}

}  // namespace gp
