// Synthetic graph generators.
//
// The paper evaluates on four DIMACS graphs we cannot download here
// (see DESIGN.md §3.3); each generator below produces a synthetic graph
// with matched structure — degree distribution, regularity, and dimension
// — so the partitioners face the same kind of irregularity:
//
//   ldoor       -> fem_slab_graph        3D FEM slab with a hole, ~48 avg deg
//   delaunay    -> delaunay_graph        true Delaunay triangulation, ~6 avg deg
//   hugebubbles -> bubble_mesh_graph     degree-3 honeycomb with holes
//   USA roads   -> road_network_graph    chains + sparse intersections, ~2.4 avg deg
//
// Plus simple generators (grid, ER, RMAT) for tests and ablations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/csr_graph.hpp"

namespace gp {

/// 2D grid mesh, 4-neighbour stencil.
[[nodiscard]] CsrGraph grid2d_graph(vid_t width, vid_t height);

/// 3D grid mesh, 6-neighbour stencil.
[[nodiscard]] CsrGraph grid3d_graph(vid_t nx, vid_t ny, vid_t nz);

/// Erdos-Renyi G(n, m): n vertices, ~m distinct random edges.
[[nodiscard]] CsrGraph erdos_renyi_graph(vid_t n, eid_t m, std::uint64_t seed);

/// RMAT power-law graph (a,b,c,d = 0.57,0.19,0.19,0.05), deduplicated.
[[nodiscard]] CsrGraph rmat_graph(vid_t n_log2, eid_t m, std::uint64_t seed);

/// ldoor analogue: 3D hexahedral FEM slab (nx x ny x nz) with a
/// rectangular door-hole, second-order stencil (Chebyshev-1 plus even
/// Chebyshev-2 shell) giving ~48 average degree.
[[nodiscard]] CsrGraph fem_slab_graph(vid_t nx, vid_t ny, vid_t nz);

/// 2D vertex coordinates (exported by the geometric generators for the
/// coordinate-based baseline partitioners).
struct Point2D {
  double x, y;
};

/// delaunay_nXX analogue: Delaunay triangulation (Bowyer-Watson) of n
/// uniform random points in the unit square.  `coords` (optional out)
/// receives the point of each vertex id.
[[nodiscard]] CsrGraph delaunay_graph(vid_t n, std::uint64_t seed,
                                      std::vector<Point2D>* coords = nullptr);

/// hugebubbles analogue: degree-3 honeycomb lattice of ~n vertices with
/// `holes` circular bubbles removed (largest component returned).
[[nodiscard]] CsrGraph bubble_mesh_graph(vid_t n, int holes,
                                         std::uint64_t seed);

/// USA-roads analogue: sparse intersection network whose edges are
/// subdivided into degree-2 chains; average degree ~2.4, huge diameter.
[[nodiscard]] CsrGraph road_network_graph(vid_t n, std::uint64_t seed);

// --- paper-instance registry (Table I) ---

struct PaperGraphInfo {
  std::string name;
  std::string description;      ///< Table I "Description" column
  vid_t paper_vertices;         ///< Table I vertex count
  eid_t paper_edges;            ///< Table I edge count
};

/// The four Table I rows, in paper order.
[[nodiscard]] const std::vector<PaperGraphInfo>& paper_graphs();

/// Builds the synthetic stand-in for Table I row `name` at `scale` times
/// the paper's vertex count (scale 1.0 = full size).
[[nodiscard]] CsrGraph make_paper_graph(const std::string& name, double scale,
                                        std::uint64_t seed);

}  // namespace gp
