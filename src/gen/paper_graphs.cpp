// The structure-matched stand-ins for the paper's four DIMACS inputs
// (Table I) and the registry that builds them at a requested scale.
#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "core/graph_ops.hpp"
#include "gen/generators.hpp"
#include "util/rng.hpp"

namespace gp {

CsrGraph fem_slab_graph(vid_t nx, vid_t ny, vid_t nz) {
  // A door is a thin tall slab with a rectangular cut-out (the "window");
  // vertices carry a second-order FEM stencil: Chebyshev distance 1 (26
  // neighbours) plus the even Chebyshev-2 shell (26 more), giving interior
  // degree 52 and, with boundary effects, the ~48 average of ldoor.
  auto in_hole = [&](vid_t x, vid_t y, vid_t z) {
    // Window: centered horizontally, upper-middle vertically, full depth.
    const vid_t hx0 = nx / 4, hx1 = (3 * nx) / 4;
    const vid_t hy0 = ny / 2, hy1 = (5 * ny) / 6;
    (void)z;
    return x >= hx0 && x < hx1 && y >= hy0 && y < hy1;
  };
  std::vector<vid_t> id(
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
          static_cast<std::size_t>(nz),
      kInvalidVid);
  auto lin = [&](vid_t x, vid_t y, vid_t z) {
    return (static_cast<std::size_t>(z) * static_cast<std::size_t>(ny) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(x);
  };
  vid_t n = 0;
  for (vid_t z = 0; z < nz; ++z)
    for (vid_t y = 0; y < ny; ++y)
      for (vid_t x = 0; x < nx; ++x)
        if (!in_hole(x, y, z)) id[lin(x, y, z)] = n++;

  GraphBuilder b(n);
  // Stencil offsets: Chebyshev-1 shell + even Chebyshev-2 shell.
  std::vector<std::array<int, 3>> offs;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx)
        if (dx || dy || dz) offs.push_back({dx, dy, dz});
  for (int dz = -2; dz <= 2; dz += 2)
    for (int dy = -2; dy <= 2; dy += 2)
      for (int dx = -2; dx <= 2; dx += 2)
        if (dx || dy || dz) offs.push_back({dx, dy, dz});

  for (vid_t z = 0; z < nz; ++z) {
    for (vid_t y = 0; y < ny; ++y) {
      for (vid_t x = 0; x < nx; ++x) {
        const vid_t v = id[lin(x, y, z)];
        if (v == kInvalidVid) continue;
        for (const auto& o : offs) {
          const vid_t ux = x + o[0], uy = y + o[1], uz = z + o[2];
          if (ux < 0 || ux >= nx || uy < 0 || uy >= ny || uz < 0 || uz >= nz)
            continue;
          const vid_t u = id[lin(ux, uy, uz)];
          if (u == kInvalidVid || u <= v) continue;  // add each edge once
          b.add_edge(v, u);
        }
      }
    }
  }
  return b.build();
}

CsrGraph bubble_mesh_graph(vid_t n, int holes, std::uint64_t seed) {
  // Honeycomb (brick-wall embedding): vertices on a grid, each vertex has
  // two horizontal neighbours and one vertical neighbour on alternating
  // parity — interior degree exactly 3, matching hugebubbles' avg degree.
  const auto side = static_cast<vid_t>(std::lround(std::sqrt(
      static_cast<double>(n))));
  const vid_t w = std::max<vid_t>(4, side), h = std::max<vid_t>(4, side);
  Rng rng(seed);

  // Punch circular holes ("bubbles").
  std::vector<char> alive(static_cast<std::size_t>(w) *
                              static_cast<std::size_t>(h),
                          1);
  auto lin = [&](vid_t x, vid_t y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(x);
  };
  for (int hole = 0; hole < holes; ++hole) {
    const double cx = rng.next_double() * w;
    const double cy = rng.next_double() * h;
    const double r = (0.03 + 0.07 * rng.next_double()) * w;
    const vid_t x0 = std::max<vid_t>(0, static_cast<vid_t>(cx - r));
    const vid_t x1 = std::min<vid_t>(w, static_cast<vid_t>(cx + r) + 1);
    const vid_t y0 = std::max<vid_t>(0, static_cast<vid_t>(cy - r));
    const vid_t y1 = std::min<vid_t>(h, static_cast<vid_t>(cy + r) + 1);
    for (vid_t y = y0; y < y1; ++y) {
      for (vid_t x = x0; x < x1; ++x) {
        const double dx = x - cx, dy = y - cy;
        if (dx * dx + dy * dy <= r * r) alive[lin(x, y)] = 0;
      }
    }
  }

  std::vector<vid_t> id(alive.size(), kInvalidVid);
  vid_t cnt = 0;
  for (std::size_t i = 0; i < alive.size(); ++i)
    if (alive[i]) id[i] = cnt++;

  GraphBuilder b(cnt);
  for (vid_t y = 0; y < h; ++y) {
    for (vid_t x = 0; x < w; ++x) {
      const vid_t v = id[lin(x, y)];
      if (v == kInvalidVid) continue;
      if (x + 1 < w && id[lin(x + 1, y)] != kInvalidVid)
        b.add_edge(v, id[lin(x + 1, y)]);
      // Vertical bond only on alternating parity: honeycomb degree 3.
      if (((x + y) & 1) == 0 && y + 1 < h && id[lin(x, y + 1)] != kInvalidVid)
        b.add_edge(v, id[lin(x, y + 1)]);
    }
  }
  CsrGraph g = b.build();
  // Holes can strand islands; keep the largest component so partitioners
  // see one mesh (matching the DIMACS instance).
  if (!is_connected(g)) {
    // Label components, keep the biggest.
    const vid_t nv = g.num_vertices();
    std::vector<vid_t> comp(static_cast<std::size_t>(nv), kInvalidVid);
    std::vector<vid_t> stack;
    vid_t ncomp = 0;
    for (vid_t s = 0; s < nv; ++s) {
      if (comp[static_cast<std::size_t>(s)] != kInvalidVid) continue;
      stack.push_back(s);
      comp[static_cast<std::size_t>(s)] = ncomp;
      while (!stack.empty()) {
        const vid_t v = stack.back();
        stack.pop_back();
        for (const vid_t u : g.neighbors(v)) {
          if (comp[static_cast<std::size_t>(u)] == kInvalidVid) {
            comp[static_cast<std::size_t>(u)] = ncomp;
            stack.push_back(u);
          }
        }
      }
      ++ncomp;
    }
    std::vector<vid_t> size(static_cast<std::size_t>(ncomp), 0);
    for (const vid_t c : comp) ++size[static_cast<std::size_t>(c)];
    const vid_t big = static_cast<vid_t>(
        std::max_element(size.begin(), size.end()) - size.begin());
    std::vector<char> mask(static_cast<std::size_t>(nv));
    for (vid_t v = 0; v < nv; ++v)
      mask[static_cast<std::size_t>(v)] = (comp[static_cast<std::size_t>(v)] == big);
    g = induced_subgraph(g, mask, nullptr);
  }
  return g;
}

CsrGraph road_network_graph(vid_t n, std::uint64_t seed) {
  // Intersections live on a jittered coarse grid connected to right/down
  // neighbours with random skips; every link is subdivided into a chain of
  // degree-2 road vertices.  Result: ~25% intersections of degree 3-4,
  // ~75% chain vertices of degree 2 -> avg degree ~2.4 and large diameter,
  // the signature of the DIMACS9 USA network.
  Rng rng(seed);
  // Choose grid so that intersections + chain vertices ≈ n.  With mean
  // chain length L and ~2 links per intersection, n ≈ I * (1 + 2L).
  const double mean_chain = 1.5;
  const auto intersections = static_cast<vid_t>(
      std::max(4.0, static_cast<double>(n) / (1.0 + 2.0 * mean_chain)));
  const auto side = static_cast<vid_t>(
      std::max(2.0, std::floor(std::sqrt(static_cast<double>(intersections)))));

  struct Link {
    vid_t a, b;
    int   len;
  };
  std::vector<Link> links;
  auto iid = [&](vid_t x, vid_t y) { return y * side + x; };
  for (vid_t y = 0; y < side; ++y) {
    for (vid_t x = 0; x < side; ++x) {
      // Chains of length 0..3 (0 = direct road segment).
      if (x + 1 < side && rng.next_double() < 0.92) {
        links.push_back({iid(x, y), iid(x + 1, y),
                         static_cast<int>(rng.next_below(4))});
      }
      if (y + 1 < side && rng.next_double() < 0.92) {
        links.push_back({iid(x, y), iid(x, y + 1),
                         static_cast<int>(rng.next_below(4))});
      }
      // Occasional diagonal "highway".
      if (x + 1 < side && y + 1 < side && rng.next_double() < 0.06) {
        links.push_back({iid(x, y), iid(x + 1, y + 1),
                         static_cast<int>(2 + rng.next_below(4))});
      }
    }
  }
  vid_t total = side * side;
  for (const auto& l : links) total += l.len;

  GraphBuilder b(total);
  vid_t next = side * side;
  for (const auto& l : links) {
    vid_t prev = l.a;
    for (int i = 0; i < l.len; ++i) {
      b.add_edge(prev, next);
      prev = next++;
    }
    b.add_edge(prev, l.b);
  }
  CsrGraph g = b.build();
  // The grid construction is connected with overwhelming probability; if
  // skips disconnected it, keep the largest component.
  if (!is_connected(g)) {
    std::vector<char> mask(static_cast<std::size_t>(g.num_vertices()), 0);
    // Simple: BFS from 0 and keep that component (dominant by construction).
    std::vector<vid_t> stack{0};
    mask[0] = 1;
    while (!stack.empty()) {
      const vid_t v = stack.back();
      stack.pop_back();
      for (const vid_t u : g.neighbors(v)) {
        if (!mask[static_cast<std::size_t>(u)]) {
          mask[static_cast<std::size_t>(u)] = 1;
          stack.push_back(u);
        }
      }
    }
    g = induced_subgraph(g, mask, nullptr);
  }
  return g;
}

const std::vector<PaperGraphInfo>& paper_graphs() {
  static const std::vector<PaperGraphInfo> kGraphs = {
      {"ldoor", "Sparse matrix from University of Florida collection", 952203,
       22785136},
      {"delaunay", "Delaunay triangulation of random points", 1048576,
       3145686},
      {"hugebubble", "2D dynamic simulation", 21198119, 31790179},
      {"usa-roads", "Road network", 23947347, 28947347},
  };
  return kGraphs;
}

CsrGraph make_paper_graph(const std::string& name, double scale,
                          std::uint64_t seed) {
  if (name == "ldoor") {
    const double target = 952203.0 * scale;
    // Door aspect ~ 2:3:0.2 (thin slab); solve nx*ny*nz*(1-hole) ≈ target
    // with hole fraction ~1/6.
    const double base = std::cbrt(target / (2.0 * 3.0 * 0.35 * (5.0 / 6.0)));
    const auto nx = std::max<vid_t>(6, static_cast<vid_t>(2.0 * base));
    const auto ny = std::max<vid_t>(8, static_cast<vid_t>(3.0 * base));
    const auto nz = std::max<vid_t>(3, static_cast<vid_t>(0.35 * base));
    return fem_slab_graph(nx, ny, nz);
  }
  if (name == "delaunay") {
    const auto n = static_cast<vid_t>(std::max(64.0, 1048576.0 * scale));
    return delaunay_graph(n, seed);
  }
  if (name == "hugebubble") {
    const auto n = static_cast<vid_t>(std::max(256.0, 21198119.0 * scale));
    return bubble_mesh_graph(n, 24, seed);
  }
  if (name == "usa-roads") {
    const auto n = static_cast<vid_t>(std::max(256.0, 23947347.0 * scale));
    return road_network_graph(n, seed);
  }
  throw std::invalid_argument("unknown paper graph: " + name);
}

}  // namespace gp
