#include "gpu/coalescing.hpp"

#include <algorithm>
#include <set>

namespace gp {

CoalescingStats analyze_coalescing(const std::vector<std::uint64_t>& addresses,
                                   int warp_size, int transaction_bytes) {
  CoalescingStats s;
  const auto tb = static_cast<std::uint64_t>(transaction_bytes);
  std::set<std::uint64_t> blocks;
  for (std::size_t i = 0; i < addresses.size();
       i += static_cast<std::size_t>(warp_size)) {
    const std::size_t end =
        std::min(addresses.size(), i + static_cast<std::size_t>(warp_size));
    blocks.clear();
    for (std::size_t j = i; j < end; ++j) blocks.insert(addresses[j] / tb);
    ++s.warps;
    s.transactions += blocks.size();
  }
  return s;
}

}  // namespace gp
