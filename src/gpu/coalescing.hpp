// Memory-coalescing analyzer (the paper's Fig. 2).
//
// On CUDA hardware, a warp's 32 loads coalesce into one transaction iff
// they fall within one 128-byte block.  This analyzer replays an access
// pattern (one address per logical thread) and counts the transactions
// each warp would issue — used by bench/fig2_coalescing to demonstrate
// why the partitioner assigns vertex v to thread (v mod stride) the way
// it does, and by tests to pin the arithmetic.
#pragma once

#include <cstdint>
#include <vector>

namespace gp {

struct CoalescingStats {
  std::uint64_t warps = 0;
  std::uint64_t transactions = 0;
  /// transactions / warps: 1.0 = perfectly coalesced, up to warp_size.
  [[nodiscard]] double transactions_per_warp() const {
    return warps ? static_cast<double>(transactions) /
                       static_cast<double>(warps)
                 : 0.0;
  }
};

/// Analyzes byte addresses, one per logical thread, warp_size threads per
/// warp, with 128-byte transaction granularity.
[[nodiscard]] CoalescingStats analyze_coalescing(
    const std::vector<std::uint64_t>& addresses, int warp_size = 32,
    int transaction_bytes = 128);

}  // namespace gp
