#include "gpu/device.hpp"

#include <algorithm>
#include <atomic>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace gp {

Device::Device() : Device(Config{}) {}

Device::Device(Config config)
    : config_(config), pool_(std::max(1, config.host_workers)) {}

void Device::check_fault(FaultSite site, const std::string& what) {
  if (!injector_) return;
  switch (injector_->on_device_op(device_id_, site)) {
    case FaultInjector::Action::kNone:
      return;
    case FaultInjector::Action::kOom:
      throw DeviceOutOfMemory("injected allocation fault: " + what,
                              device_id_);
    case FaultInjector::Action::kFail:
      throw DeviceFailure("injected " + std::string(fault_site_name(site)) +
                              " fault on device " +
                              std::to_string(device_id_) + ": " + what,
                          device_id_);
  }
}

void Device::on_alloc(std::size_t bytes) {
  check_fault(FaultSite::kAlloc, std::to_string(bytes) + " bytes");
  if (allocated_ + bytes > config_.memory_bytes) {
    throw DeviceOutOfMemory("device allocation of " + std::to_string(bytes) +
                                " bytes exceeds capacity (" +
                                std::to_string(allocated_) + " of " +
                                std::to_string(config_.memory_bytes) +
                                " bytes in use)",
                            device_id_);
  }
  allocated_ += bytes;
  peak_ = std::max(peak_, allocated_);
}

void Device::on_free(std::size_t bytes) noexcept {
  if (bytes > allocated_) {
    // A free larger than the outstanding allocation means device code
    // double-freed (or the accounting was corrupted) — clamping silently
    // would hide the bug.
    log_warn("device %d: freeing %zu bytes with only %zu allocated "
             "(double free?)",
             device_id_, bytes, allocated_);
  }
  allocated_ -= std::min(allocated_, bytes);
}

void Device::meter_h2d(std::size_t bytes, const std::string& label) {
  check_fault(FaultSite::kH2D, label);
  h2d_bytes_ += bytes;
  if (ledger_) ledger_->charge_transfer("transfer/h2d/" + label, bytes);
}

void Device::meter_d2h(std::size_t bytes, const std::string& label) {
  check_fault(FaultSite::kD2H, label);
  d2h_bytes_ += bytes;
  if (ledger_) ledger_->charge_transfer("transfer/d2h/" + label, bytes);
}

void Device::launch(const std::string& label, std::int64_t n_threads,
                    const std::function<std::uint64_t(std::int64_t)>& body) {
  check_fault(FaultSite::kKernel, label);
  ++kernels_;
  if (n_threads <= 0) {
    if (ledger_) ledger_->charge_gpu_kernel("kernel/" + label, 0, 1.0);
    return;
  }
  const int ws = config_.warp_size;
  const auto n_warps =
      static_cast<std::size_t>((n_threads + ws - 1) / ws);
  std::vector<std::uint64_t> warp_work(n_warps, 0);

  pool_.parallel_for_blocked(
      n_threads, [&](int, std::int64_t begin, std::int64_t end) {
        // Each worker owns whole warps where possible; warp sums need no
        // atomics as long as warp boundaries don't straddle workers, but
        // blocked ranges may split a warp — use a local accumulator and a
        // relaxed atomic add on the boundary warps.
        std::int64_t i = begin;
        while (i < end) {
          const std::int64_t warp = i / ws;
          const std::int64_t warp_end = std::min<std::int64_t>((warp + 1) * ws, end);
          std::uint64_t acc = 0;
          for (; i < warp_end; ++i) acc += body(i);
          std::atomic_ref<std::uint64_t> slot(
              warp_work[static_cast<std::size_t>(warp)]);
          slot.fetch_add(acc, std::memory_order_relaxed);
        }
      });

  if (ledger_) {
    std::uint64_t total = 0;
    for (const auto w : warp_work) total += w;
    // Warp imbalance: max/mean, capped — a single pathological warp
    // cannot stall the whole device forever (other SMs keep working).
    double imb = imbalance_factor(warp_work);
    imb = std::min(imb, 8.0);
    ledger_->charge_gpu_kernel("kernel/" + label, total, imb);
  }
}

void Device::launch_simple(const std::string& label, std::int64_t n_threads,
                           const std::function<void(std::int64_t)>& body) {
  launch(label, n_threads, [&](std::int64_t tid) -> std::uint64_t {
    body(tid);
    return 1;
  });
}

void Device::reset_counters() {
  h2d_bytes_ = 0;
  d2h_bytes_ = 0;
  kernels_ = 0;
}

}  // namespace gp
