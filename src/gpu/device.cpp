#include "gpu/device.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace gp {

Device::Device() : Device(Config{}) {}

Device::Device(Config config)
    : config_(config), pool_(std::max(1, config.host_workers)) {}

void Device::check_fault(FaultSite site, const std::string& what) {
  if (!injector_) return;
  switch (injector_->on_device_op(device_id_, site)) {
    case FaultInjector::Action::kNone:
      return;
    case FaultInjector::Action::kOom:
      throw DeviceOutOfMemory("injected allocation fault: " + what,
                              device_id_);
    case FaultInjector::Action::kFail:
      throw DeviceFailure("injected " + std::string(fault_site_name(site)) +
                              " fault on device " +
                              std::to_string(device_id_) + ": " + what,
                          device_id_);
  }
}

void Device::on_alloc(std::size_t bytes) {
  check_fault(FaultSite::kAlloc, std::to_string(bytes) + " bytes");
  // Injected capacity squeeze (`mem-cap=<bytes>`): the plan shrinks this
  // device below its configured memory so the pool's OOM path runs
  // mid-V-cycle.  Checked only when an injector is attached — unarmed
  // allocations pay nothing beyond the existing null test.
  if (injector_ != nullptr) {
    const std::size_t cap = injector_->mem_cap_bytes();
    if (cap != 0 && cap < config_.memory_bytes && allocated_ + bytes > cap) {
      injector_->note_mem_cap_hit(bytes, cap);
      throw DeviceOutOfMemory(
          "device allocation of " + std::to_string(bytes) +
              " bytes exceeds injected mem-cap (" +
              std::to_string(allocated_) + " of " + std::to_string(cap) +
              " bytes in use)",
          device_id_);
    }
  }
  if (allocated_ + bytes > config_.memory_bytes) {
    throw DeviceOutOfMemory("device allocation of " + std::to_string(bytes) +
                                " bytes exceeds capacity (" +
                                std::to_string(allocated_) + " of " +
                                std::to_string(config_.memory_bytes) +
                                " bytes in use)",
                            device_id_);
  }
  allocated_ += bytes;
  peak_ = std::max(peak_, allocated_);
}

void Device::on_free(std::size_t bytes) noexcept {
  if (bytes > allocated_) {
    // A free larger than the outstanding allocation means device code
    // double-freed (or the accounting was corrupted) — clamping silently
    // would hide the bug.
    log_warn("device %d: freeing %zu bytes with only %zu allocated "
             "(double free?)",
             device_id_, bytes, allocated_);
  }
  allocated_ -= std::min(allocated_, bytes);
}

void Device::meter_h2d(std::size_t bytes, const std::string& label) {
  check_fault(FaultSite::kH2D, label);
  h2d_bytes_ += bytes;
  if (ledger_) ledger_->charge_transfer("transfer/h2d/" + label, bytes);
}

void Device::meter_d2h(std::size_t bytes, const std::string& label) {
  check_fault(FaultSite::kD2H, label);
  d2h_bytes_ += bytes;
  if (ledger_) ledger_->charge_transfer("transfer/d2h/" + label, bytes);
}

void Device::maybe_corrupt_transfer(void* data, std::size_t bytes,
                                    const std::string& label) {
  if (!injector_ || bytes == 0 || !data) return;
  std::uint64_t material = 0;
  if (!injector_->corrupt_transfer(
          &material, label + " (device " + std::to_string(device_id_) + ")")) {
    return;
  }
  auto* p = static_cast<unsigned char*>(data);
  p[material % bytes] ^=
      static_cast<unsigned char>(1u << ((material >> 56) & 7u));
}

void Device::begin_launch(const std::string& label) {
  check_fault(FaultSite::kKernel, label);
  ++kernels_;
}

void Device::finish_launch(const std::string& label) {
  std::uint64_t total = 0;
  for (const auto w : warp_work_) total += w;
  ledger_->charge_gpu_kernel("kernel/" + label, total, warp_imbalance());
}

double Device::warp_imbalance() const {
  // Warp imbalance: max/mean, capped — a single pathological warp
  // cannot stall the whole device forever (other SMs keep working).
  return std::min(imbalance_factor(warp_work_), 8.0);
}

namespace {

/// Pool bucket for a request: log2 of the smallest power of two >= bytes
/// (minimum bucket 256 bytes, so tiny counters share a list).
int pool_bucket(std::size_t bytes) {
  std::size_t cap = 256;
  int b = 8;
  while (cap < bytes) {
    cap <<= 1;
    ++b;
  }
  return b;
}

}  // namespace

void Device::pool_presize(std::size_t max_bytes, int copies) {
  if (max_bytes == 0 || copies <= 0) return;
  const int top = pool_bucket(max_bytes);
  if (static_cast<std::size_t>(top) >= pool_free_.size()) {
    pool_free_.resize(static_cast<std::size_t>(top) + 1);
  }
  for (int b = 8; b <= top; ++b) {
    auto& list = pool_free_[static_cast<std::size_t>(b)];
    while (list.size() < static_cast<std::size_t>(copies)) {
      list.push_back(::operator new(std::size_t{1} << b));
    }
  }
}

void* Device::pool_acquire(std::size_t bytes) {
  const int b = pool_bucket(bytes);
  if (static_cast<std::size_t>(b) >= pool_free_.size()) {
    pool_free_.resize(static_cast<std::size_t>(b) + 1);
  }
  auto& list = pool_free_[static_cast<std::size_t>(b)];
  void* p;
  if (!list.empty()) {
    p = list.back();
    list.pop_back();
    ++pool_hits_;
    pool_recycled_bytes_ += bytes;
  } else {
    p = ::operator new(std::size_t{1} << b);
    ++pool_misses_;
  }
  // Fresh-allocation semantics: callers see zeroed memory either way.
  std::memset(p, 0, bytes);
  ++pool_outstanding_;
  return p;
}

void Device::pool_release(void* p, std::size_t bytes) noexcept {
  if (!p) return;
  --pool_outstanding_;
  const int b = pool_bucket(bytes);
  if (static_cast<std::size_t>(b) >= pool_free_.size()) {
    pool_free_.resize(static_cast<std::size_t>(b) + 1);
  }
  try {
    pool_free_[static_cast<std::size_t>(b)].push_back(p);
  } catch (...) {
    ::operator delete(p);
  }
}

void Device::pool_trim() noexcept {
  for (auto& list : pool_free_) {
    for (void* p : list) ::operator delete(p);
    list.clear();
  }
}

namespace {
std::atomic<std::int64_t> g_process_leaked_blocks{0};
}  // namespace

std::int64_t Device::process_leaked_blocks() {
  return g_process_leaked_blocks.load(std::memory_order_acquire);
}

Device::~Device() {
  if (pool_outstanding_ != 0) {
    // A DeviceBuffer outlived its Device (or the accounting broke).  The
    // process-wide ledger is the surface the service engine and the chaos
    // oracle assert on; the per-run sink attributes the leak to a result.
    g_process_leaked_blocks.fetch_add(pool_outstanding_,
                                      std::memory_order_acq_rel);
    if (leak_sink_ != nullptr) *leak_sink_ += pool_outstanding_;
    log_warn("device %d destroyed with %lld pool blocks outstanding",
             device_id_, static_cast<long long>(pool_outstanding_));
  }
  pool_trim();
}

void Device::reset_counters() {
  h2d_bytes_ = 0;
  d2h_bytes_ = 0;
  kernels_ = 0;
}

}  // namespace gp
