// Simulated CUDA device (see DESIGN.md §3.1).
//
// The paper runs its kernels on a GeForce GTX Titan.  This class provides
// the same programming model in pure C++ so every GPU code path of
// GP-metis executes unchanged in this container:
//
//   * device memory with explicit H2D/D2H copies (byte-metered; there is
//     a 6 GB capacity limit like the Titan's),
//   * kernel launches over a logical thread index space, executed by a
//     host worker pool so that concurrent logical threads genuinely race
//     on shared arrays (the lock-free algorithms depend on that),
//   * per-warp work metering feeding the analytical cost model, which
//     converts metered work into modeled GTX-Titan seconds.
//
// Deliberately NOT simulated: cycle-level SIMT execution.  The paper's
// contribution is algorithmic (lock-free conflict repair, prefix-sum
// compaction, buffered refinement); what the model needs from "the GPU"
// is work volume, warp-level imbalance, and transfer bytes — all metered
// here exactly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/machine_model.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace gp {

class DeviceOutOfMemory : public std::runtime_error {
 public:
  explicit DeviceOutOfMemory(const std::string& what, int device_id = 0)
      : std::runtime_error(what), device_id_(device_id) {}

  [[nodiscard]] int device_id() const { return device_id_; }

 private:
  int device_id_ = 0;
};

/// A non-memory device fault: a failed kernel launch, a failed transfer,
/// or any operation on a device that has been lost (multi-GPU future-work
/// scenario).  Distinct from DeviceOutOfMemory so degradation policies can
/// tell "shrink the working set" apart from "stop using this device".
class DeviceFailure : public std::runtime_error {
 public:
  explicit DeviceFailure(const std::string& what, int device_id = 0)
      : std::runtime_error(what), device_id_(device_id) {}

  [[nodiscard]] int device_id() const { return device_id_; }

 private:
  int device_id_ = 0;
};

class Device {
 public:
  struct Config {
    int warp_size = 32;
    /// GTX Titan: 14 SMX. Only used by the cost model narrative.
    int num_sms = 14;
    /// Device memory capacity (GTX Titan: 6 GB).
    std::size_t memory_bytes = std::size_t{6} << 30;
    /// Host worker threads that execute kernel chunks concurrently.
    int host_workers = 8;
  };

  Device();  ///< default (GTX-Titan-like) configuration
  explicit Device(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Attaches a ledger; all subsequent launches/transfers charge to it.
  void set_ledger(CostLedger* ledger) { ledger_ = ledger; }
  [[nodiscard]] CostLedger* ledger() const { return ledger_; }

  /// Attaches a fault injector; `device_id` identifies this device in the
  /// fault plan (`deviceN:lost` rules).  nullptr disables injection — the
  /// default, with zero overhead on every operation.
  void set_fault_injector(FaultInjector* injector, int device_id = 0) {
    injector_ = injector;
    device_id_ = device_id;
  }
  [[nodiscard]] int device_id() const { return device_id_; }
  [[nodiscard]] bool has_fault_injector() const {
    return injector_ != nullptr;
  }

  /// Forwards a cancellation token to the device's host worker pool: a
  /// cancelled run stops before the next kernel launch (jobs are atomic
  /// w.r.t. cancellation; see util/cancel.hpp).  nullptr detaches.
  void set_cancel_token(const CancelToken* token) {
    pool_.set_cancel_token(token);
  }

  /// Silent-corruption hook (DESIGN.md §3.5): when the fault plan carries
  /// a `flip` rule for this transfer occurrence, flips one bit of the
  /// payload at a (seed, occurrence)-determined position.  Called by
  /// DeviceBuffer after each copy, guarded by has_fault_injector() so the
  /// injector-free path pays one inline null check.
  void maybe_corrupt_transfer(void* data, std::size_t bytes,
                              const std::string& label);

  // --- memory accounting (called by DeviceBuffer) ---
  void on_alloc(std::size_t bytes);
  void on_free(std::size_t bytes) noexcept;
  [[nodiscard]] std::size_t allocated_bytes() const { return allocated_; }
  /// High-water mark of device memory usage.
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }

  // --- transfer metering (called by DeviceBuffer copy helpers) ---
  void meter_h2d(std::size_t bytes, const std::string& label);
  void meter_d2h(std::size_t bytes, const std::string& label);
  [[nodiscard]] std::uint64_t total_h2d_bytes() const { return h2d_bytes_; }
  [[nodiscard]] std::uint64_t total_d2h_bytes() const { return d2h_bytes_; }

  /// Launches a kernel over logical threads [0, n_threads).  The body
  /// returns the work units (arc touches) that logical thread performed;
  /// work is aggregated per warp and the warp imbalance stretches the
  /// modeled kernel time.  Bodies run concurrently on the worker pool —
  /// shared-array writes race exactly as on the real device.
  ///
  /// The body type is a template parameter: every per-element call is a
  /// direct (inlinable) invocation, never a type-erased std::function —
  /// this is the hot path of the whole simulated device.  Logical threads
  /// are handed to host workers in warp-aligned dynamic chunks (atomic
  /// chunk counter), mirroring how a real GPU's scheduler assigns thread
  /// blocks to SMs, so one heavy chunk cannot serialize the launch on a
  /// static block boundary.  Warp-aligned chunks also give every warp's
  /// work sum exactly one writer — no atomics on the metering path.
  template <typename Body>
  void launch(const std::string& label, std::int64_t n_threads, Body&& body) {
    begin_launch(label);
    if (n_threads <= 0) {
      if (ledger_) ledger_->charge_gpu_kernel("kernel/" + label, 0, 1.0);
      return;
    }
    const int ws = config_.warp_size;
    const std::int64_t grain = launch_grain(n_threads);
    if (!ledger_) {
      // No ledger attached: skip the per-warp work vector and the warp
      // accumulation entirely; the body's return value is not needed.
      pool_.parallel_for_dynamic(
          n_threads, grain, [&](int, std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) body(i);
          });
      return;
    }
    const auto n_warps =
        static_cast<std::size_t>((n_threads + ws - 1) / ws);
    warp_work_.assign(n_warps, 0);
    std::uint64_t* ww = warp_work_.data();
    pool_.parallel_for_dynamic(
        n_threads, grain, [&](int, std::int64_t b, std::int64_t e) {
          // Chunks are warp-aligned, so every warp lives in exactly one
          // chunk and its sum has one writer: plain stores suffice.
          std::int64_t i = b;
          while (i < e) {
            const std::int64_t warp = i / ws;
            const std::int64_t warp_end =
                std::min<std::int64_t>((warp + 1) * ws, e);
            std::uint64_t acc = 0;
            for (; i < warp_end; ++i) acc += body(i);
            ww[static_cast<std::size_t>(warp)] = acc;
          }
        });
    finish_launch(label);
  }

  /// Convenience launch for bodies with no interesting work metric
  /// (charged 1 unit per logical thread).
  template <typename Body>
  void launch_simple(const std::string& label, std::int64_t n_threads,
                     Body&& body) {
    launch(label, n_threads, [&](std::int64_t tid) -> std::uint64_t {
      body(tid);
      return 1;
    });
  }

  /// Launch for perfectly uniform kernels (fills, memsets): charged one
  /// unit per logical thread with no per-warp metering at all.
  template <typename Body>
  void launch_uniform(const std::string& label, std::int64_t n_threads,
                      Body&& body) {
    begin_launch(label);
    if (n_threads > 0) {
      pool_.parallel_for_dynamic(
          n_threads, launch_grain(n_threads),
          [&](int, std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) body(i);
          });
    }
    if (ledger_) {
      ledger_->charge_gpu_kernel(
          "kernel/" + label,
          static_cast<std::uint64_t>(std::max<std::int64_t>(n_threads, 0)),
          1.0);
    }
  }

  /// Launch for perfectly coalesced streaming kernels (fills, sequential
  /// sweeps): consecutive threads touch consecutive `elem_bytes`-sized
  /// elements, so a warp's accesses collapse into 128-byte transactions.
  /// Charged one work unit per transaction instead of one per element —
  /// the model's unit is a latency-bound data-dependent access (an arc
  /// touch), and a streamed sweep issues ~128/elem_bytes fewer of those.
  template <typename Body>
  void launch_streamed(const std::string& label, std::int64_t n_threads,
                       std::size_t elem_bytes, Body&& body) {
    begin_launch(label);
    if (n_threads > 0) {
      pool_.parallel_for_dynamic(
          n_threads, launch_grain(n_threads),
          [&](int, std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) body(i);
          });
    }
    if (ledger_) {
      const auto bytes = static_cast<std::uint64_t>(
                             std::max<std::int64_t>(n_threads, 0)) *
                         static_cast<std::uint64_t>(elem_bytes);
      ledger_->charge_gpu_kernel("kernel/" + label, (bytes + 127) / 128, 1.0);
    }
  }

  [[nodiscard]] std::uint64_t kernels_launched() const { return kernels_; }

  /// Metering context for one FUSED dispatch (see launch_fused).  Each
  /// stage*() call executes a constituent sweep on the worker pool with
  /// the same warp-aligned chunking as a standalone launch and records
  /// its metered work for the single charge_gpu_fused entry written when
  /// the dispatch ends.  Stages run sequentially — the implicit
  /// device-wide barrier between chained sweeps — so fusing never changes
  /// results, only metering.
  class Fused {
   public:
    /// Per-warp-metered stage (analogue of launch()): the body returns
    /// that logical thread's work units.
    template <typename Body>
    void stage(const std::string& name, std::int64_t n_threads,
               Body&& body) {
      if (n_threads <= 0) {
        stages_.push_back({name, 0, 1.0});
        return;
      }
      const int ws = dev_.config_.warp_size;
      const std::int64_t grain = dev_.launch_grain(n_threads);
      if (!dev_.ledger_) {
        dev_.pool_.parallel_for_dynamic(
            n_threads, grain, [&](int, std::int64_t b, std::int64_t e) {
              for (std::int64_t i = b; i < e; ++i) body(i);
            });
        return;
      }
      const auto n_warps =
          static_cast<std::size_t>((n_threads + ws - 1) / ws);
      dev_.warp_work_.assign(n_warps, 0);
      std::uint64_t* ww = dev_.warp_work_.data();
      dev_.pool_.parallel_for_dynamic(
          n_threads, grain, [&](int, std::int64_t b, std::int64_t e) {
            std::int64_t i = b;
            while (i < e) {
              const std::int64_t warp = i / ws;
              const std::int64_t warp_end =
                  std::min<std::int64_t>((warp + 1) * ws, e);
              std::uint64_t acc = 0;
              for (; i < warp_end; ++i) acc += body(i);
              ww[static_cast<std::size_t>(warp)] = acc;
            }
          });
      GpuFusedStage s;
      s.name = name;
      for (const auto w : dev_.warp_work_) s.work_units += w;
      s.imbalance = dev_.warp_imbalance();
      stages_.push_back(std::move(s));
    }

    /// Unit-per-thread stage (analogue of launch_simple()).
    template <typename Body>
    void stage_simple(const std::string& name, std::int64_t n_threads,
                      Body&& body) {
      stage(name, n_threads, [&](std::int64_t tid) -> std::uint64_t {
        body(tid);
        return 1;
      });
    }

    /// Coalesced streaming stage (analogue of launch_streamed()): charged
    /// one unit per 128-byte transaction.
    template <typename Body>
    void stage_streamed(const std::string& name, std::int64_t n_threads,
                        std::size_t elem_bytes, Body&& body) {
      if (n_threads > 0) {
        dev_.pool_.parallel_for_dynamic(
            n_threads, dev_.launch_grain(n_threads),
            [&](int, std::int64_t b, std::int64_t e) {
              for (std::int64_t i = b; i < e; ++i) body(i);
            });
      }
      const auto bytes = static_cast<std::uint64_t>(
                             std::max<std::int64_t>(n_threads, 0)) *
                         static_cast<std::uint64_t>(elem_bytes);
      stages_.push_back({name, (bytes + 127) / 128, 1.0});
    }

    /// Executes `n_items` bodies with dynamic scheduling, one item per
    /// chunk, claimed in increasing index order — the scheduling
    /// guarantee the decoupled-lookback scoreboard's forward-progress
    /// argument rests on (scan.hpp).  No metering; pair with
    /// stage_metered for sweeps whose traffic is computed analytically.
    template <typename Body>
    void run_items(std::int64_t n_items, Body&& body) {
      if (n_items <= 0) return;
      dev_.pool_.parallel_for_dynamic(
          n_items, 1, [&](int, std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) body(i);
          });
    }

    /// Records a pre-metered stage (work computed by the caller).
    void stage_metered(const std::string& name, std::uint64_t work_units,
                       double imbalance = 1.0) {
      stages_.push_back({name, work_units, imbalance});
    }

   private:
    friend class Device;
    explicit Fused(Device& dev) : dev_(dev) {}

    Device&                    dev_;
    std::vector<GpuFusedStage> stages_;
  };

  /// Meters a multi-stage kernel body as ONE dispatch (DESIGN.md §3.9):
  /// `fn(fused)` issues its sweeps through the Fused context, then the
  /// whole chain is charged via CostLedger::charge_gpu_fused — launch
  /// overhead and the low-occupancy ramp once, bandwidth per stage.
  /// Counts as one kernel for kernels_launched() and fault injection.
  template <typename Fn>
  void launch_fused(const std::string& label, Fn&& fn) {
    begin_launch(label);
    Fused fused(*this);
    fn(fused);
    if (ledger_) ledger_->charge_gpu_fused("kernel/" + label, fused.stages_);
  }

  // --- device-memory pool (used by DeviceBuffer's backing storage) ---
  // Size-bucketed free lists in the spirit of CUB's caching allocator:
  // per-level scratch (scan totals, contraction index arrays, refinement
  // gain buffers) is recycled across the V-cycle instead of re-allocated.
  // Blocks come back zero-filled, preserving cudaMalloc-the-simulated-way
  // (fresh std::vector) semantics exactly.

  /// Pre-populates every free list up to the bucket serving `max_bytes`
  /// with `copies` blocks each.  Drivers that know the level-0 working
  /// set (the largest buffer any level will request) call this once after
  /// device setup, so per-level allocations across the whole V-cycle hit
  /// the pool on first touch instead of warming it up one miss at a time
  /// — the cudaMallocAsync pool-reserve analogue.
  void pool_presize(std::size_t max_bytes, int copies = 2);

  /// Returns a zero-initialized block of at least `bytes` bytes.
  void* pool_acquire(std::size_t bytes);
  /// Returns a block obtained from pool_acquire with the same `bytes`.
  void pool_release(void* p, std::size_t bytes) noexcept;
  /// Frees every cached (currently unused) pool block.
  void pool_trim() noexcept;

  [[nodiscard]] std::uint64_t pool_hits() const { return pool_hits_; }
  [[nodiscard]] std::uint64_t pool_misses() const { return pool_misses_; }
  /// Bytes served from the pool without touching the host allocator.
  [[nodiscard]] std::uint64_t pool_recycled_bytes() const {
    return pool_recycled_bytes_;
  }
  /// Blocks acquired and not yet released.  Must drop back to zero once
  /// every DeviceBuffer is destroyed — including along exception paths
  /// (audit rollbacks, injected faults mid-kernel); tests assert it.
  [[nodiscard]] std::int64_t pool_outstanding_blocks() const {
    return pool_outstanding_;
  }

  /// Process-wide count of pool blocks still outstanding when their
  /// Device was destroyed.  Devices are per-run locals inside the
  /// drivers, so the service engine and the chaos oracle check leaks by
  /// snapshotting this counter around a run — it must not move.
  [[nodiscard]] static std::int64_t process_leaked_blocks();

  /// Optional per-run leak sink: the destructor adds any outstanding
  /// block count to `*sink` (drivers point it at their result's exec
  /// stats so leaks are attributed even on exception paths).  The sink
  /// must outlive the Device.
  void set_leak_sink(std::int64_t* sink) { leak_sink_ = sink; }

  /// Resets transfer/kernel counters (not allocations, not pool stats).
  void reset_counters();

  ~Device();

 private:
  /// Consults the injector (if any) for this operation; throws
  /// DeviceOutOfMemory / DeviceFailure when a fault fires.
  void check_fault(FaultSite site, const std::string& what);

  /// Non-template halves of launch(): fault check + kernel count, and
  /// the warp_work_ roll-up into the ledger.
  void begin_launch(const std::string& label);
  void finish_launch(const std::string& label);

  /// Capped max/mean imbalance of the warp_work_ scratch from the sweep
  /// that just ran (shared by finish_launch and Fused::stage).
  [[nodiscard]] double warp_imbalance() const;

  /// Warp-aligned dynamic chunk size for an n_threads-wide launch.
  [[nodiscard]] std::int64_t launch_grain(std::int64_t n_threads) const {
    const int ws = config_.warp_size;
    const auto target_chunks = static_cast<std::int64_t>(pool_.size()) * 8;
    std::int64_t g = (n_threads + target_chunks - 1) / target_chunks;
    g = ((g + ws - 1) / ws) * ws;  // whole warps per chunk
    return std::max<std::int64_t>(g, ws);
  }

  Config        config_;
  ThreadPool    pool_;
  CostLedger*   ledger_ = nullptr;
  FaultInjector* injector_ = nullptr;
  int           device_id_ = 0;
  std::size_t   allocated_ = 0;
  std::size_t   peak_ = 0;
  std::uint64_t h2d_bytes_ = 0;
  std::uint64_t d2h_bytes_ = 0;
  std::uint64_t kernels_ = 0;

  /// Per-launch warp metering scratch, reused across launches so the hot
  /// path performs no allocation.
  std::vector<std::uint64_t> warp_work_;

  /// Pool free lists indexed by power-of-two bucket (log2).
  std::vector<std::vector<void*>> pool_free_;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t pool_misses_ = 0;
  std::uint64_t pool_recycled_bytes_ = 0;
  std::int64_t  pool_outstanding_ = 0;
  std::int64_t* leak_sink_ = nullptr;
};

}  // namespace gp
