// Simulated CUDA device (see DESIGN.md §3.1).
//
// The paper runs its kernels on a GeForce GTX Titan.  This class provides
// the same programming model in pure C++ so every GPU code path of
// GP-metis executes unchanged in this container:
//
//   * device memory with explicit H2D/D2H copies (byte-metered; there is
//     a 6 GB capacity limit like the Titan's),
//   * kernel launches over a logical thread index space, executed by a
//     host worker pool so that concurrent logical threads genuinely race
//     on shared arrays (the lock-free algorithms depend on that),
//   * per-warp work metering feeding the analytical cost model, which
//     converts metered work into modeled GTX-Titan seconds.
//
// Deliberately NOT simulated: cycle-level SIMT execution.  The paper's
// contribution is algorithmic (lock-free conflict repair, prefix-sum
// compaction, buffered refinement); what the model needs from "the GPU"
// is work volume, warp-level imbalance, and transfer bytes — all metered
// here exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/machine_model.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace gp {

class DeviceOutOfMemory : public std::runtime_error {
 public:
  explicit DeviceOutOfMemory(const std::string& what, int device_id = 0)
      : std::runtime_error(what), device_id_(device_id) {}

  [[nodiscard]] int device_id() const { return device_id_; }

 private:
  int device_id_ = 0;
};

/// A non-memory device fault: a failed kernel launch, a failed transfer,
/// or any operation on a device that has been lost (multi-GPU future-work
/// scenario).  Distinct from DeviceOutOfMemory so degradation policies can
/// tell "shrink the working set" apart from "stop using this device".
class DeviceFailure : public std::runtime_error {
 public:
  explicit DeviceFailure(const std::string& what, int device_id = 0)
      : std::runtime_error(what), device_id_(device_id) {}

  [[nodiscard]] int device_id() const { return device_id_; }

 private:
  int device_id_ = 0;
};

class Device {
 public:
  struct Config {
    int warp_size = 32;
    /// GTX Titan: 14 SMX. Only used by the cost model narrative.
    int num_sms = 14;
    /// Device memory capacity (GTX Titan: 6 GB).
    std::size_t memory_bytes = std::size_t{6} << 30;
    /// Host worker threads that execute kernel chunks concurrently.
    int host_workers = 8;
  };

  Device();  ///< default (GTX-Titan-like) configuration
  explicit Device(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Attaches a ledger; all subsequent launches/transfers charge to it.
  void set_ledger(CostLedger* ledger) { ledger_ = ledger; }
  [[nodiscard]] CostLedger* ledger() const { return ledger_; }

  /// Attaches a fault injector; `device_id` identifies this device in the
  /// fault plan (`deviceN:lost` rules).  nullptr disables injection — the
  /// default, with zero overhead on every operation.
  void set_fault_injector(FaultInjector* injector, int device_id = 0) {
    injector_ = injector;
    device_id_ = device_id;
  }
  [[nodiscard]] int device_id() const { return device_id_; }

  // --- memory accounting (called by DeviceBuffer) ---
  void on_alloc(std::size_t bytes);
  void on_free(std::size_t bytes) noexcept;
  [[nodiscard]] std::size_t allocated_bytes() const { return allocated_; }
  /// High-water mark of device memory usage.
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }

  // --- transfer metering (called by DeviceBuffer copy helpers) ---
  void meter_h2d(std::size_t bytes, const std::string& label);
  void meter_d2h(std::size_t bytes, const std::string& label);
  [[nodiscard]] std::uint64_t total_h2d_bytes() const { return h2d_bytes_; }
  [[nodiscard]] std::uint64_t total_d2h_bytes() const { return d2h_bytes_; }

  /// Launches a kernel over logical threads [0, n_threads).  The body
  /// returns the work units (arc touches) that logical thread performed;
  /// work is aggregated per warp and the warp imbalance stretches the
  /// modeled kernel time.  Bodies run concurrently on the worker pool —
  /// shared-array writes race exactly as on the real device.
  void launch(const std::string& label, std::int64_t n_threads,
              const std::function<std::uint64_t(std::int64_t)>& body);

  /// Convenience launch for bodies with no interesting work metric
  /// (charged 1 unit per logical thread).
  void launch_simple(const std::string& label, std::int64_t n_threads,
                     const std::function<void(std::int64_t)>& body);

  [[nodiscard]] std::uint64_t kernels_launched() const { return kernels_; }

  /// Resets transfer/kernel counters (not allocations).
  void reset_counters();

 private:
  /// Consults the injector (if any) for this operation; throws
  /// DeviceOutOfMemory / DeviceFailure when a fault fires.
  void check_fault(FaultSite site, const std::string& what);

  Config        config_;
  ThreadPool    pool_;
  CostLedger*   ledger_ = nullptr;
  FaultInjector* injector_ = nullptr;
  int           device_id_ = 0;
  std::size_t   allocated_ = 0;
  std::size_t   peak_ = 0;
  std::uint64_t h2d_bytes_ = 0;
  std::uint64_t d2h_bytes_ = 0;
  std::uint64_t kernels_ = 0;
};

}  // namespace gp
