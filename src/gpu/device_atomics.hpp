// CUDA-style atomics for kernel bodies, built on C++20 std::atomic_ref.
// The refinement buffers use atomic_add on a counter exactly as the paper
// describes ("it atomically increments the counter S by one"), and the
// matching kernels rely on plain racy loads/stores — provided here as
// volatile-like relaxed accessors to make the intent explicit.
#pragma once

#include <atomic>

namespace gp {

/// atomicAdd(addr, v): returns the previous value.
template <typename T>
T atomic_add(T& target, T value) {
  std::atomic_ref<T> ref(target);
  return ref.fetch_add(value, std::memory_order_relaxed);
}

/// atomicCAS(addr, expected, desired): returns the value before the op.
template <typename T>
T atomic_cas(T& target, T expected, T desired) {
  std::atomic_ref<T> ref(target);
  ref.compare_exchange_strong(expected, desired, std::memory_order_relaxed);
  return expected;  // updated by compare_exchange on failure
}

/// atomicMax(addr, v): returns the previous value.
template <typename T>
T atomic_max(T& target, T value) {
  std::atomic_ref<T> ref(target);
  T prev = ref.load(std::memory_order_relaxed);
  while (prev < value &&
         !ref.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  return prev;
}

/// Racy (lock-free, unsynchronized) load — the paper's matching kernel
/// reads the shared match vector without synchronization.
template <typename T>
T racy_load(const T& target) {
  std::atomic_ref<const T> ref(target);
  return ref.load(std::memory_order_relaxed);
}

/// Racy (lock-free, unsynchronized) store.
template <typename T>
void racy_store(T& target, T value) {
  std::atomic_ref<T> ref(target);
  ref.store(value, std::memory_order_relaxed);
}

}  // namespace gp
