// Typed device memory with explicit host<->device copies.
//
// Mirrors cudaMalloc/cudaMemcpy discipline: host code moves data in and
// out through h2d()/d2h() (metered, capacity-checked); kernel bodies
// access the raw storage through data()/span().  Reading a DeviceBuffer
// from host code without d2h() is a bug by convention, just as
// dereferencing a device pointer on the host is in CUDA.
#pragma once

#include <cassert>
#include <span>
#include <string>
#include <vector>

#include "gpu/device.hpp"

namespace gp {

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& dev, std::size_t n, std::string label = "buf")
      : dev_(&dev), label_(std::move(label)) {
    dev_->on_alloc(n * sizeof(T));
    storage_.resize(n);
  }

  ~DeviceBuffer() { release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept { *this = std::move(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      dev_ = o.dev_;
      label_ = std::move(o.label_);
      storage_ = std::move(o.storage_);
      o.dev_ = nullptr;
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return storage_.size(); }
  [[nodiscard]] bool empty() const { return storage_.empty(); }

  /// Device-side access (kernel bodies only, by convention).
  [[nodiscard]] T* data() { return storage_.data(); }
  [[nodiscard]] const T* data() const { return storage_.data(); }
  [[nodiscard]] std::span<T> span() { return {storage_.data(), storage_.size()}; }
  [[nodiscard]] std::span<const T> span() const {
    return {storage_.data(), storage_.size()};
  }

  /// Host -> device copy (metered).
  void h2d(std::span<const T> host) {
    assert(host.size() == storage_.size());
    std::copy(host.begin(), host.end(), storage_.begin());
    dev_->meter_h2d(host.size_bytes(), label_);
  }

  /// Device -> host copy (metered).
  void d2h(std::span<T> host) const {
    assert(host.size() == storage_.size());
    std::copy(storage_.begin(), storage_.end(), host.begin());
    dev_->meter_d2h(host.size() * sizeof(T), label_);
  }

  /// Device -> host into a fresh vector (metered).
  [[nodiscard]] std::vector<T> d2h_vector() const {
    std::vector<T> out(storage_.size());
    d2h(out);
    return out;
  }

  /// Device-side fill (a trivial kernel in CUDA; not a transfer).
  void fill(const T& value) {
    std::fill(storage_.begin(), storage_.end(), value);
  }

  /// Frees the device memory early (like cudaFree).
  void release() noexcept {
    if (dev_) {
      dev_->on_free(storage_.size() * sizeof(T));
      storage_.clear();
      storage_.shrink_to_fit();
      dev_ = nullptr;
    }
  }

 private:
  Device*        dev_ = nullptr;
  std::string    label_;
  std::vector<T> storage_;
};

/// Allocates a device buffer and uploads `host` in one step.
template <typename T>
DeviceBuffer<T> to_device(Device& dev, std::span<const T> host,
                          std::string label) {
  DeviceBuffer<T> buf(dev, host.size(), std::move(label));
  buf.h2d(host);
  return buf;
}

template <typename T>
DeviceBuffer<T> to_device(Device& dev, const std::vector<T>& host,
                          std::string label) {
  return to_device(dev, std::span<const T>(host.data(), host.size()),
                   std::move(label));
}

}  // namespace gp
