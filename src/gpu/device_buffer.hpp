// Typed device memory with explicit host<->device copies.
//
// Mirrors cudaMalloc/cudaMemcpy discipline: host code moves data in and
// out through h2d()/d2h() (metered, capacity-checked); kernel bodies
// access the raw storage through data()/span().  Reading a DeviceBuffer
// from host code without d2h() is a bug by convention, just as
// dereferencing a device pointer on the host is in CUDA.
//
// Backing storage comes from the owning Device's size-bucketed pool (see
// Device::pool_acquire): per-level scratch is recycled across the V-cycle
// instead of hitting the host allocator, and arrives zero-initialized
// either way.  Element types must be trivially copyable — device memory
// is raw bytes, exactly as in CUDA.
#pragma once

#include <cassert>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "gpu/device.hpp"

namespace gp {

template <typename T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "device memory holds raw bytes; T must be trivially "
                "copyable (as in CUDA)");

 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& dev, std::size_t n, std::string label = "buf")
      : dev_(&dev), label_(std::move(label)), n_(n) {
    dev_->on_alloc(n * sizeof(T));  // capacity check / fault site first
    try {
      data_ = static_cast<T*>(dev_->pool_acquire(n * sizeof(T)));
    } catch (...) {
      // A throwing constructor runs no destructor: roll the capacity
      // accounting back here or the charge leaks for the device's
      // lifetime (and every later capacity check over-rejects).
      dev_->on_free(n * sizeof(T));
      throw;
    }
  }

  ~DeviceBuffer() { release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept { *this = std::move(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      dev_ = o.dev_;
      label_ = std::move(o.label_);
      data_ = o.data_;
      n_ = o.n_;
      o.dev_ = nullptr;
      o.data_ = nullptr;
      o.n_ = 0;
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// Device-side access (kernel bodies only, by convention).
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::span<T> span() { return {data_, n_}; }
  [[nodiscard]] std::span<const T> span() const { return {data_, n_}; }

  /// Host -> device copy (metered).  A planned `flip` fault lands on the
  /// device-side copy, exactly like a bus/DRAM bit-flip on real hardware.
  void h2d(std::span<const T> host) {
    assert(host.size() == n_);
    if (!host.empty()) std::memcpy(data_, host.data(), host.size_bytes());
    dev_->meter_h2d(host.size_bytes(), label_);
    if (dev_->has_fault_injector()) {
      dev_->maybe_corrupt_transfer(data_, host.size_bytes(), "h2d/" + label_);
    }
  }

  /// Device -> host copy (metered).  A planned `flip` fault lands on the
  /// host-side copy; the device data stays intact.
  void d2h(std::span<T> host) const {
    assert(host.size() == n_);
    if (n_ > 0) std::memcpy(host.data(), data_, n_ * sizeof(T));
    dev_->meter_d2h(n_ * sizeof(T), label_);
    if (dev_->has_fault_injector()) {
      dev_->maybe_corrupt_transfer(host.data(), n_ * sizeof(T),
                                   "d2h/" + label_);
    }
  }

  /// Device -> host into a fresh vector (metered).
  [[nodiscard]] std::vector<T> d2h_vector() const {
    std::vector<T> out(n_);
    d2h(out);
    return out;
  }

  /// Device-side fill — a real kernel launch: metered by the cost ledger
  /// (cudaMemset / fill kernels are not free on hardware either, though
  /// they run at streaming bandwidth — charged per 128-byte transaction)
  /// and visible to the fault injector like any other kernel.
  void fill(const T& value) {
    if (!dev_) return;
    T* p = data_;
    // "/fill" is appended (not prefixed) so a phase-qualified buffer label
    // like "coarsen/match/L0" keeps its phase as the leading segment and
    // the drivers' per-phase ledger roll-ups classify the charge.
    dev_->launch_streamed(label_ + "/fill", static_cast<std::int64_t>(n_),
                          sizeof(T),
                          [p, value](std::int64_t i) { p[i] = value; });
  }

  /// Frees the device memory early (like cudaFree); the bytes go back to
  /// the owning device's pool.
  void release() noexcept {
    if (dev_) {
      dev_->on_free(n_ * sizeof(T));
      dev_->pool_release(data_, n_ * sizeof(T));
      data_ = nullptr;
      n_ = 0;
      dev_ = nullptr;
    }
  }

 private:
  Device*     dev_ = nullptr;
  std::string label_;
  T*          data_ = nullptr;
  std::size_t n_ = 0;
};

/// Allocates a device buffer and uploads `host` in one step.
template <typename T>
DeviceBuffer<T> to_device(Device& dev, std::span<const T> host,
                          std::string label) {
  DeviceBuffer<T> buf(dev, host.size(), std::move(label));
  buf.h2d(host);
  return buf;
}

template <typename T>
DeviceBuffer<T> to_device(Device& dev, const std::vector<T>& host,
                          std::string label) {
  return to_device(dev, std::span<const T>(host.data(), host.size()),
                   std::move(label));
}

}  // namespace gp
