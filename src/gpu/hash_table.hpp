// Per-thread clustered hash table with chaining — the paper's fast merge
// structure for GPU contraction ("to avoid collisions, chaining is used
// where each bucket of the hash table stores multiple elements, i.e. a
// clustered hash table").
//
// One table lives in a thread's working set during the contraction kernel;
// it accumulates (coarse neighbour id -> merged weight) pairs for the pair
// of vertices being collapsed, then is drained in bucket order.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace gp {

class ClusteredHashTable {
 public:
  /// `buckets` should be ~the expected number of distinct neighbours; the
  /// chain storage grows on demand.
  explicit ClusteredHashTable(std::size_t buckets)
      : heads_(buckets, -1) {}

  /// Adds weight w to key (inserting the key if new).
  void add(vid_t key, wgt_t w) {
    const std::size_t b = bucket_of(key);
    for (int i = heads_[b]; i >= 0; i = nodes_[static_cast<std::size_t>(i)].next) {
      if (nodes_[static_cast<std::size_t>(i)].key == key) {
        nodes_[static_cast<std::size_t>(i)].w += w;
        return;
      }
      ++probes_;
    }
    nodes_.push_back({key, w, heads_[b]});
    heads_[b] = static_cast<int>(nodes_.size()) - 1;
  }

  /// Number of distinct keys currently stored.
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Chain-collision probes since construction/clear (ablation metric).
  [[nodiscard]] std::uint64_t probes() const { return probes_; }

  /// Invokes fn(key, weight) for every entry (bucket order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& nd : nodes_) fn(nd.key, nd.w);
  }

  /// Empties the table, keeping the bucket array (cheap between vertices
  /// only when few entries: clears chains by walking them).
  void clear() {
    for (const auto& nd : nodes_) heads_[bucket_of(nd.key)] = -1;
    nodes_.clear();
  }

 private:
  struct Node {
    vid_t key;
    wgt_t w;
    int   next;
  };

  [[nodiscard]] std::size_t bucket_of(vid_t key) const {
    // Multiplicative hash; table size need not be a power of two.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key)) *
            0x9E3779B9u) %
           heads_.size();
  }

  std::vector<int>  heads_;
  std::vector<Node> nodes_;
  std::uint64_t     probes_ = 0;
};

}  // namespace gp
