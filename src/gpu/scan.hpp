// Device-wide prefix sums — stand-in for CUB's DeviceScan, which the
// paper uses for the cmap construction ("the parallel inclusive-scan from
// the CUB library") and for the contraction index arrays.
//
// Two strategies (GpuScanMode, DESIGN.md §3.9):
//
//   kBlocked  — classic three-kernel blocked scan: (1) each block scans
//               its chunk and emits a block total, (2) block totals are
//               scanned, (3) block offsets are added back.  Degenerate
//               geometry (n fits one block) short-circuits to a single
//               launch with no totals scratch.
//
//   kLookback — single-pass decoupled look-back (Merrill & Garland):
//               each tile publishes its aggregate to a per-tile
//               descriptor scoreboard, walks back over predecessors
//               accumulating aggregates until it meets an inclusive
//               PREFIX descriptor, publishes its own inclusive prefix,
//               and writes its output — the whole device-wide scan is
//               ONE dispatch.  The generic stage form composes into
//               larger fused level pipelines (Device::launch_fused), and
//               one-dispatch partition/compact are built on it below.
//
// Both modes produce byte-identical results: integer prefix sums are
// exact regardless of blocking.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>

#include "gpu/device_buffer.hpp"
#include "util/types.hpp"

namespace gp {

namespace scan_detail {

/// Look-back descriptor states.  Descriptors start kInvalid because pool
/// blocks arrive zero-filled — no init sweep needed.
inline constexpr int kInvalid = 0;    ///< tile not yet published anything
inline constexpr int kAggregate = 1;  ///< tile-local aggregate available
inline constexpr int kPrefix = 2;     ///< inclusive prefix available

/// Blocked/tiled geometry shared by both modes: chunky enough to amortize
/// the per-tile bookkeeping, enough tiles to occupy the device.
inline std::int64_t scan_tile(std::int64_t n) {
  return std::max<std::int64_t>(1024, n / 256);
}

}  // namespace scan_detail

/// Generic decoupled-lookback inclusive-scan sweep, run as one stage of a
/// fused dispatch.  Scans the length-`n` sequence `load(0..n-1)`; for each
/// i calls `store(i, inclusive, exclusive)` with the inclusive prefix sum
/// through i and the exclusive sum before i.  Returns the grand total.
///
/// `load(i)` is invoked twice per element (aggregate pass + output pass) —
/// it must be a pure read.  `store(i, ...)` may overwrite the element
/// `load(i)` reads: within a tile the element is loaded before position i
/// is stored, and tiles are disjoint.
///
/// Forward progress on the simulated device: Fused::run_items hands tiles
/// to host workers in increasing index order (atomic chunk counter), so
/// the minimal in-flight tile's predecessors have all completed and its
/// look-back terminates without waiting; every spin therefore sits behind
/// a tile that can finish, at any host_workers count including 1 (where
/// tiles simply run in order and no spin ever blocks).
///
/// Charging (the honest single-pass rule): the element traffic is one
/// coalesced sweep — tile data lives in registers/shared memory on real
/// hardware while the look-back runs — plus a constant number of
/// descriptor transactions per tile (publish aggregate, publish prefix,
/// and a short expected look-back window).
template <typename T, typename Load, typename Store>
T lookback_scan_stage(Device& dev, Device::Fused& fused,
                      const std::string& name, std::int64_t n,
                      std::size_t elem_bytes, Load&& load, Store&& store) {
  if (n <= 0) {
    fused.stage_metered(name, 0);
    return T{};
  }
  const std::int64_t tile = scan_detail::scan_tile(n);
  const auto n_tiles = (n + tile - 1) / tile;

  // Descriptor scoreboard (zero-filled on acquire: status == kInvalid).
  DeviceBuffer<T> agg(dev, static_cast<std::size_t>(n_tiles),
                      name + "/desc_agg");
  DeviceBuffer<T> incl(dev, static_cast<std::size_t>(n_tiles),
                       name + "/desc_incl");
  DeviceBuffer<int> status(dev, static_cast<std::size_t>(n_tiles),
                           name + "/desc_status");
  T* A = agg.data();
  T* I = incl.data();
  int* S = status.data();

  fused.run_items(n_tiles, [&](std::int64_t t) {
    const std::int64_t lo = t * tile;
    const std::int64_t hi = std::min<std::int64_t>(lo + tile, n);
    T sum{};
    for (std::int64_t i = lo; i < hi; ++i) sum += load(i);

    T exclusive{};
    if (t == 0) {
      I[0] = sum;
      std::atomic_ref<int>(S[0]).store(scan_detail::kPrefix,
                                       std::memory_order_release);
    } else {
      // Publish the tile aggregate first so successors spinning on this
      // tile can make progress while we look back ourselves.
      A[t] = sum;
      std::atomic_ref<int>(S[t]).store(scan_detail::kAggregate,
                                       std::memory_order_release);
      for (std::int64_t p = t - 1;; --p) {
        int st;
        while ((st = std::atomic_ref<int>(S[p]).load(
                    std::memory_order_acquire)) == scan_detail::kInvalid) {
          std::this_thread::yield();
        }
        // The acquire load above orders the publisher's plain value
        // stores before these plain reads — race-free.
        if (st == scan_detail::kPrefix) {
          exclusive += I[p];
          break;
        }
        exclusive += A[p];
      }
      I[t] = exclusive + sum;
      std::atomic_ref<int>(S[t]).store(scan_detail::kPrefix,
                                       std::memory_order_release);
    }

    T run = exclusive;
    for (std::int64_t i = lo; i < hi; ++i) {
      const T prev = run;
      run += load(i);
      store(i, run, prev);
    }
  });

  // One coalesced element sweep + a deterministic descriptor budget per
  // tile (2 publishes + expected look-back window of ~2 reads).  Actual
  // spin counts are host-scheduling noise and must not feed the model.
  const auto bytes =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(elem_bytes);
  fused.stage_metered(name, (bytes + 127) / 128 +
                                static_cast<std::uint64_t>(n_tiles) * 4);
  return I[n_tiles - 1];
}

/// In-place single-dispatch inclusive scan (look-back).  Returns the total.
template <typename T>
T device_scan_lookback(Device& dev, DeviceBuffer<T>& buf,
                       const std::string& label = "scan") {
  const auto n = static_cast<std::int64_t>(buf.size());
  if (n == 0) return T{};
  T* a = buf.data();
  T total{};
  dev.launch_fused(label, [&](Device::Fused& f) {
    total = lookback_scan_stage<T>(
        dev, f, "lookback", n, sizeof(T),
        [a](std::int64_t i) { return a[i]; },
        [a](std::int64_t i, T inc, T) { a[i] = inc; });
  });
  return total;
}

/// In-place single-dispatch exclusive scan (look-back).  Returns the total.
template <typename T>
T device_scan_lookback_exclusive(Device& dev, DeviceBuffer<T>& buf,
                                 const std::string& label = "xscan") {
  const auto n = static_cast<std::int64_t>(buf.size());
  if (n == 0) return T{};
  T* a = buf.data();
  T total{};
  dev.launch_fused(label, [&](Device::Fused& f) {
    total = lookback_scan_stage<T>(
        dev, f, "lookback", n, sizeof(T),
        [a](std::int64_t i) { return a[i]; },
        [a](std::int64_t i, T, T exc) { a[i] = exc; });
  });
  return total;
}

/// In-place device-wide inclusive scan.  Returns the total (last element).
template <typename T>
T device_inclusive_scan(Device& dev, DeviceBuffer<T>& buf,
                        const std::string& label = "scan",
                        GpuScanMode mode = GpuScanMode::kBlocked) {
  if (mode == GpuScanMode::kLookback) {
    return device_scan_lookback(dev, buf, label);
  }
  const auto n = static_cast<std::int64_t>(buf.size());
  if (n == 0) return T{};
  T* a = buf.data();

  const std::int64_t block = scan_detail::scan_tile(n);
  const auto n_blocks = (n + block - 1) / block;

  if (n_blocks == 1) {
    // Degenerate geometry: the whole input is one block — a single launch
    // scans it; no totals scratch, no offset pass.
    dev.launch(label + "/block_scan", 1, [&](std::int64_t) {
      T sum{};
      for (std::int64_t i = 0; i < n; ++i) {
        sum += a[i];
        a[i] = sum;
      }
      return (static_cast<std::uint64_t>(n) * sizeof(T) + 127) / 128;
    });
    return a[n - 1];
  }

  DeviceBuffer<T> totals(dev, static_cast<std::size_t>(n_blocks),
                         label + "/totals");
  T* tot = totals.data();

  dev.launch(label + "/block_scan", n_blocks, [&](std::int64_t b) {
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    T sum{};
    for (std::int64_t i = lo; i < hi; ++i) {
      sum += a[i];
      a[i] = sum;
    }
    tot[b] = sum;
    // Sequential read-modify-write sweep: coalesced, one work unit per
    // 128-byte transaction (see Device::launch_streamed).
    return (static_cast<std::uint64_t>(hi - lo) * sizeof(T) + 127) / 128;
  });

  dev.launch(label + "/total_scan", 1, [&](std::int64_t) {
    T sum{};
    for (std::int64_t b = 0; b < n_blocks; ++b) {
      sum += tot[b];
      tot[b] = sum;
    }
    return static_cast<std::uint64_t>(n_blocks);
  });

  dev.launch(label + "/add_offsets", n_blocks, [&](std::int64_t b) {
    if (b == 0) return std::uint64_t{1};
    const T off = tot[b - 1];
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    for (std::int64_t i = lo; i < hi; ++i) a[i] += off;
    return (static_cast<std::uint64_t>(hi - lo) * sizeof(T) + 127) / 128;
  });

  return a[n - 1];
}

/// In-place device-wide exclusive scan.  Returns the total.
///
/// Blocked mode: same structure as the inclusive scan, but the final
/// shift is fused into the add-offsets pass — each block walks its chunk
/// backwards and writes a[i] = incl[i-1] + block_offset directly, so the
/// exclusive scan costs one kernel and zero scratch buffers more than the
/// block-total scan.
template <typename T>
T device_exclusive_scan(Device& dev, DeviceBuffer<T>& buf,
                        const std::string& label = "xscan",
                        GpuScanMode mode = GpuScanMode::kBlocked) {
  if (mode == GpuScanMode::kLookback) {
    return device_scan_lookback_exclusive(dev, buf, label);
  }
  const auto n = static_cast<std::int64_t>(buf.size());
  if (n == 0) return T{};
  T* a = buf.data();

  const std::int64_t block = scan_detail::scan_tile(n);
  const auto n_blocks = (n + block - 1) / block;

  if (n_blocks == 1) {
    // Degenerate geometry: one launch, no totals scratch.  The total
    // lands in a host-visible cell the same way tot[n_blocks-1] did.
    T total{};
    dev.launch(label + "/block_scan", 1, [&](std::int64_t) {
      T sum{};
      for (std::int64_t i = 0; i < n; ++i) {
        const T v = a[i];
        a[i] = sum;
        sum += v;
      }
      total = sum;
      return (static_cast<std::uint64_t>(n) * sizeof(T) + 127) / 128;
    });
    return total;
  }

  DeviceBuffer<T> totals(dev, static_cast<std::size_t>(n_blocks),
                         label + "/totals");
  T* tot = totals.data();

  dev.launch(label + "/block_scan", n_blocks, [&](std::int64_t b) {
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    T sum{};
    for (std::int64_t i = lo; i < hi; ++i) {
      sum += a[i];
      a[i] = sum;
    }
    tot[b] = sum;
    // Sequential read-modify-write sweep: coalesced, one work unit per
    // 128-byte transaction (see Device::launch_streamed).
    return (static_cast<std::uint64_t>(hi - lo) * sizeof(T) + 127) / 128;
  });

  dev.launch(label + "/total_scan", 1, [&](std::int64_t) {
    T sum{};
    for (std::int64_t b = 0; b < n_blocks; ++b) {
      sum += tot[b];
      tot[b] = sum;
    }
    return static_cast<std::uint64_t>(n_blocks);
  });

  const T total = tot[n_blocks - 1];

  // Fused shift + add-offsets: walking backwards inside the block makes
  // the in-place neighbour read safe (a[i-1] is still the inclusive
  // value when a[i] is written; blocks are disjoint per logical thread).
  dev.launch(label + "/shift_add", n_blocks, [&](std::int64_t b) {
    const T off = (b == 0) ? T{} : tot[b - 1];
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    for (std::int64_t i = hi - 1; i > lo; --i) a[i] = a[i - 1] + off;
    a[lo] = off;
    return (static_cast<std::uint64_t>(hi - lo) * sizeof(T) + 127) / 128;
  });

  return total;
}

/// One-dispatch stream compaction (look-back select): copies the elements
/// of `in` satisfying `pred` into the front of `out` in order; returns
/// the number kept.  `out` must be at least as large as `in`.
template <typename T, typename Pred>
std::int64_t device_compact(Device& dev, const DeviceBuffer<T>& in,
                            DeviceBuffer<T>& out, Pred&& pred,
                            const std::string& label = "compact") {
  const auto n = static_cast<std::int64_t>(in.size());
  if (n == 0) return 0;
  const T* src = in.data();
  T* dst = out.data();
  std::int64_t kept = 0;
  dev.launch_fused(label, [&](Device::Fused& f) {
    kept = lookback_scan_stage<std::int64_t>(
        dev, f, "select", n, sizeof(T),
        [&](std::int64_t i) -> std::int64_t { return pred(src[i]) ? 1 : 0; },
        [&](std::int64_t i, std::int64_t inc, std::int64_t) {
          if (pred(src[i])) dst[inc - 1] = src[i];
        });
  });
  return kept;
}

/// One-dispatch two-way partition (look-back): elements of `in`
/// satisfying `pred` go to the front of `out` in stable order; the rest
/// fill the back in REVERSE order (CUB DevicePartition semantics — the
/// rejects are written from the tail inward).  Returns the split point
/// (number of selected elements).
template <typename T, typename Pred>
std::int64_t device_partition(Device& dev, const DeviceBuffer<T>& in,
                              DeviceBuffer<T>& out, Pred&& pred,
                              const std::string& label = "partition") {
  const auto n = static_cast<std::int64_t>(in.size());
  if (n == 0) return 0;
  const T* src = in.data();
  T* dst = out.data();
  std::int64_t selected = 0;
  dev.launch_fused(label, [&](Device::Fused& f) {
    selected = lookback_scan_stage<std::int64_t>(
        dev, f, "partition", n, sizeof(T),
        [&](std::int64_t i) -> std::int64_t { return pred(src[i]) ? 1 : 0; },
        [&](std::int64_t i, std::int64_t inc, std::int64_t exc) {
          if (pred(src[i])) {
            dst[inc - 1] = src[i];
          } else {
            // i - exc rejects precede this one; fill from the tail.
            dst[n - 1 - (i - exc)] = src[i];
          }
        });
  });
  return selected;
}

}  // namespace gp
