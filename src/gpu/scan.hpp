// Device-wide prefix sums — stand-in for CUB's DeviceScan, which the
// paper uses for the cmap construction ("the parallel inclusive-scan from
// the CUB library") and for the contraction index arrays.
//
// Classic three-kernel blocked scan: (1) each block scans its chunk and
// emits a block total, (2) block totals are scanned, (3) block offsets are
// added back.  All three launches run on (and are metered by) the Device.
#pragma once

#include <cstdint>

#include "gpu/device_buffer.hpp"

namespace gp {

/// In-place device-wide inclusive scan.  Returns the total (last element).
template <typename T>
T device_inclusive_scan(Device& dev, DeviceBuffer<T>& buf,
                        const std::string& label = "scan") {
  const auto n = static_cast<std::int64_t>(buf.size());
  if (n == 0) return T{};
  T* a = buf.data();

  // Block geometry: enough blocks to occupy the device, chunky enough to
  // amortize the block-total scan.
  const std::int64_t block = std::max<std::int64_t>(1024, n / 256);
  const auto n_blocks = (n + block - 1) / block;

  DeviceBuffer<T> totals(dev, static_cast<std::size_t>(n_blocks),
                         label + "/totals");
  T* tot = totals.data();

  dev.launch(label + "/block_scan", n_blocks, [&](std::int64_t b) {
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    T sum{};
    for (std::int64_t i = lo; i < hi; ++i) {
      sum += a[i];
      a[i] = sum;
    }
    tot[b] = sum;
    return static_cast<std::uint64_t>(hi - lo);
  });

  dev.launch(label + "/total_scan", 1, [&](std::int64_t) {
    T sum{};
    for (std::int64_t b = 0; b < n_blocks; ++b) {
      sum += tot[b];
      tot[b] = sum;
    }
    return static_cast<std::uint64_t>(n_blocks);
  });

  dev.launch(label + "/add_offsets", n_blocks, [&](std::int64_t b) {
    if (b == 0) return std::uint64_t{1};
    const T off = tot[b - 1];
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    for (std::int64_t i = lo; i < hi; ++i) a[i] += off;
    return static_cast<std::uint64_t>(hi - lo);
  });

  return a[n - 1];
}

/// In-place device-wide exclusive scan.  Returns the total.
template <typename T>
T device_exclusive_scan(Device& dev, DeviceBuffer<T>& buf,
                        const std::string& label = "xscan") {
  const auto n = static_cast<std::int64_t>(buf.size());
  if (n == 0) return T{};
  const T total = device_inclusive_scan(dev, buf, label);
  T* a = buf.data();
  // Shift-right kernel: each logical thread writes one slot from its left
  // neighbour's inclusive value (reads complete before the dependent
  // write only within a thread, so stage through a temp buffer).
  DeviceBuffer<T> tmp(dev, static_cast<std::size_t>(n), label + "/tmp");
  T* t = tmp.data();
  dev.launch(label + "/shift_read", n, [&](std::int64_t i) {
    t[i] = (i == 0) ? T{} : a[i - 1];
    return std::uint64_t{1};
  });
  dev.launch(label + "/shift_write", n, [&](std::int64_t i) {
    a[i] = t[i];
    return std::uint64_t{1};
  });
  return total;
}

}  // namespace gp
