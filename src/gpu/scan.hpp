// Device-wide prefix sums — stand-in for CUB's DeviceScan, which the
// paper uses for the cmap construction ("the parallel inclusive-scan from
// the CUB library") and for the contraction index arrays.
//
// Classic three-kernel blocked scan: (1) each block scans its chunk and
// emits a block total, (2) block totals are scanned, (3) block offsets are
// added back.  All three launches run on (and are metered by) the Device.
#pragma once

#include <cstdint>

#include "gpu/device_buffer.hpp"

namespace gp {

/// In-place device-wide inclusive scan.  Returns the total (last element).
template <typename T>
T device_inclusive_scan(Device& dev, DeviceBuffer<T>& buf,
                        const std::string& label = "scan") {
  const auto n = static_cast<std::int64_t>(buf.size());
  if (n == 0) return T{};
  T* a = buf.data();

  // Block geometry: enough blocks to occupy the device, chunky enough to
  // amortize the block-total scan.
  const std::int64_t block = std::max<std::int64_t>(1024, n / 256);
  const auto n_blocks = (n + block - 1) / block;

  DeviceBuffer<T> totals(dev, static_cast<std::size_t>(n_blocks),
                         label + "/totals");
  T* tot = totals.data();

  dev.launch(label + "/block_scan", n_blocks, [&](std::int64_t b) {
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    T sum{};
    for (std::int64_t i = lo; i < hi; ++i) {
      sum += a[i];
      a[i] = sum;
    }
    tot[b] = sum;
    // Sequential read-modify-write sweep: coalesced, one work unit per
    // 128-byte transaction (see Device::launch_streamed).
    return (static_cast<std::uint64_t>(hi - lo) * sizeof(T) + 127) / 128;
  });

  dev.launch(label + "/total_scan", 1, [&](std::int64_t) {
    T sum{};
    for (std::int64_t b = 0; b < n_blocks; ++b) {
      sum += tot[b];
      tot[b] = sum;
    }
    return static_cast<std::uint64_t>(n_blocks);
  });

  dev.launch(label + "/add_offsets", n_blocks, [&](std::int64_t b) {
    if (b == 0) return std::uint64_t{1};
    const T off = tot[b - 1];
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    for (std::int64_t i = lo; i < hi; ++i) a[i] += off;
    return (static_cast<std::uint64_t>(hi - lo) * sizeof(T) + 127) / 128;
  });

  return a[n - 1];
}

/// In-place device-wide exclusive scan.  Returns the total.
///
/// Same blocked structure as the inclusive scan, but the final shift is
/// fused into the add-offsets pass: each block walks its chunk backwards
/// and writes a[i] = incl[i-1] + block_offset directly, so the exclusive
/// scan costs one kernel and zero scratch buffers more than the
/// block-total scan — instead of the former two extra shift kernels
/// staging through a temporary the size of the input.
template <typename T>
T device_exclusive_scan(Device& dev, DeviceBuffer<T>& buf,
                        const std::string& label = "xscan") {
  const auto n = static_cast<std::int64_t>(buf.size());
  if (n == 0) return T{};
  T* a = buf.data();

  const std::int64_t block = std::max<std::int64_t>(1024, n / 256);
  const auto n_blocks = (n + block - 1) / block;

  DeviceBuffer<T> totals(dev, static_cast<std::size_t>(n_blocks),
                         label + "/totals");
  T* tot = totals.data();

  dev.launch(label + "/block_scan", n_blocks, [&](std::int64_t b) {
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    T sum{};
    for (std::int64_t i = lo; i < hi; ++i) {
      sum += a[i];
      a[i] = sum;
    }
    tot[b] = sum;
    // Sequential read-modify-write sweep: coalesced, one work unit per
    // 128-byte transaction (see Device::launch_streamed).
    return (static_cast<std::uint64_t>(hi - lo) * sizeof(T) + 127) / 128;
  });

  dev.launch(label + "/total_scan", 1, [&](std::int64_t) {
    T sum{};
    for (std::int64_t b = 0; b < n_blocks; ++b) {
      sum += tot[b];
      tot[b] = sum;
    }
    return static_cast<std::uint64_t>(n_blocks);
  });

  const T total = tot[n_blocks - 1];

  // Fused shift + add-offsets: walking backwards inside the block makes
  // the in-place neighbour read safe (a[i-1] is still the inclusive
  // value when a[i] is written; blocks are disjoint per logical thread).
  dev.launch(label + "/shift_add", n_blocks, [&](std::int64_t b) {
    const T off = (b == 0) ? T{} : tot[b - 1];
    const std::int64_t lo = b * block;
    const std::int64_t hi = std::min<std::int64_t>(lo + block, n);
    for (std::int64_t i = hi - 1; i > lo; --i) a[i] = a[i - 1] + off;
    a[lo] = off;
    return (static_cast<std::uint64_t>(hi - lo) * sizeof(T) + 127) / 128;
  });

  return total;
}

}  // namespace gp
