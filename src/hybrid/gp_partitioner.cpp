#include "hybrid/gp_partitioner.hpp"

#include <algorithm>
#include <memory>

#include "hybrid/gpu_contract.hpp"
#include "hybrid/gpu_matching.hpp"
#include "hybrid/gpu_refine.hpp"
#include "mt/mt_partitioner.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace gp {

PartitionResult gp_metis_run(const CsrGraph& g, const PartitionOptions& opts,
                             GpPhaseLog* log) {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  Device::Config dev_config;  // GTX-Titan-like simulated device
  if (opts.gpu_memory_bytes > 0) {
    dev_config.memory_bytes = opts.gpu_memory_bytes;
  }
  Device dev(dev_config);
  dev.set_ledger(&res.ledger);

  struct GpuLevel {
    GpuGraph graph;              // coarse graph at this level (device)
    DeviceBuffer<vid_t> cmap;    // fine->coarse map producing it (device)
    vid_t fine_n = 0;
  };
  std::vector<GpuLevel> gpu_levels;

  // ---- 1. copy the graph to GPU global memory ----
  GpuGraph g0 = GpuGraph::upload(dev, g, "G0");

  // ---- 2. GPU coarsening until the threshold level ----
  const vid_t handoff = std::max<vid_t>(opts.gpu_cpu_threshold,
                                        opts.coarsen_target());
  const GpuGraph* cur = &g0;
  int lvl = 0;
  std::uint64_t total_conflicts = 0;
  std::int64_t launch_threads = opts.gpu_threads;
  while (cur->n > handoff) {
    auto m = gpu_match(dev, *cur, lvl, opts.seed, launch_threads);
    total_conflicts += m.conflicts;
    if (static_cast<double>(m.n_coarse) >
        opts.min_shrink * static_cast<double>(cur->n)) {
      break;
    }
    GpuContractStats cst;
    GpuGraph coarse =
        gpu_contract(dev, *cur, m.match, m.cmap, m.n_coarse, lvl,
                     launch_threads, opts.gpu_hash_contraction, &cst);
    gpu_levels.push_back(
        {std::move(coarse), std::move(m.cmap), cur->n});
    cur = &gpu_levels.back().graph;
    ++lvl;
    // The paper reduces the launched threads as the graph shrinks to
    // avoid underutilized kernels (Section III-D's non-persistent data
    // ownership; the fixed-width alternative exists for the ablation).
    if (opts.gpu_shrink_launch) {
      launch_threads = std::max<std::int64_t>(256, launch_threads / 2);
    }
  }
  const int gpu_lvls = static_cast<int>(gpu_levels.size());

  // ---- 3. transfer the coarse graph to the CPU; finish coarsening +
  // initial partitioning + first refinements with the mt-metis engine ----
  const CsrGraph cpu_graph = cur->download();
  ThreadPool pool(opts.threads);
  MtContext mt_ctx{&pool, &res.ledger, opts.seed};
  PartitionOptions cpu_opts = opts;
  const auto mt_out =
      mt_multilevel_pipeline(cpu_graph, cpu_opts, mt_ctx, gpu_lvls);

  // ---- 4. transfer the partitioned graph back; GPU uncoarsening ----
  DeviceBuffer<part_t> where_coarse(
      dev, static_cast<std::size_t>(cpu_graph.num_vertices()), "where");
  where_coarse.h2d(mt_out.partition.where);

  for (std::size_t i = gpu_levels.size(); i-- > 0;) {
    const vid_t fine_n = gpu_levels[i].fine_n;
    const GpuGraph& fine = (i == 0) ? g0 : gpu_levels[i - 1].graph;
    DeviceBuffer<part_t> where_fine(
        dev, static_cast<std::size_t>(fine_n), "where/L" + std::to_string(i));
    const std::int64_t T = std::min<std::int64_t>(
        opts.gpu_threads, std::max<std::int64_t>(256, fine_n));
    gpu_project(dev, gpu_levels[i].cmap, where_coarse, where_fine,
                static_cast<int>(i), T);
    auto rst = gpu_refine(dev, fine, where_fine, opts.k, opts.eps,
                          opts.refine_passes, static_cast<int>(i), T);
    if (log) log->refine_committed += rst.committed;
    where_coarse = std::move(where_fine);
  }

  // ---- 5. final partition back to the host ----
  res.partition.k = opts.k;
  res.partition.where = where_coarse.d2h_vector();

  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  res.modeled_seconds = res.ledger.total_seconds();
  res.coarsen_levels = gpu_lvls + mt_out.levels;
  res.coarsest_vertices = mt_out.coarsest_vertices;
  res.phases.transfer = res.ledger.seconds_with_prefix("transfer/");
  res.phases.coarsen = res.ledger.seconds_with_prefix("kernel/coarsen/") +
                       res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen =
      res.ledger.seconds_with_prefix("kernel/uncoarsen/") +
      res.ledger.seconds_with_prefix("uncoarsen/");
  res.wall_seconds = wall.seconds();

  if (log) {
    log->gpu_coarsen_levels = gpu_lvls;
    log->cpu_levels = mt_out.levels;
    log->handoff_vertices = cpu_graph.num_vertices();
    log->h2d_bytes = dev.total_h2d_bytes();
    log->d2h_bytes = dev.total_d2h_bytes();
    log->match_conflicts = total_conflicts;
  }
  return res;
}

PartitionResult GpMetisPartitioner::run(const CsrGraph& g,
                                        const PartitionOptions& opts) const {
  return gp_metis_run(g, opts, nullptr);
}

std::unique_ptr<Partitioner> make_hybrid_partitioner() {
  return std::make_unique<GpMetisPartitioner>();
}

}  // namespace gp
