#include "hybrid/gp_partitioner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/audit.hpp"
#include "hybrid/gpu_contract.hpp"
#include "hybrid/gpu_gain_cache.hpp"
#include "hybrid/gpu_matching.hpp"
#include "hybrid/gpu_refine.hpp"
#include "mt/mt_partitioner.hpp"
#include "serial/metis_partitioner.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace gp {

namespace {

/// Modeled cost of recovering from a device fault before a retry: the
/// driver tears the context down and re-establishes it (cudaDeviceReset +
/// re-init is milliseconds on real hardware).
constexpr double kDeviceResetSeconds = 2e-3;

/// Bounded GPU retries before degrading to a pure mt-metis run.
constexpr int kMaxGpuAttempts = 3;

DeviceExecStats device_exec_stats(const Device& dev) {
  return {dev.kernels_launched(), dev.pool_hits(), dev.pool_misses(),
          dev.pool_recycled_bytes()};
}

/// Fills the phase roll-up shared by the GPU and the fallback paths.
/// Retried attempts' charges stay in the ledger, so degraded runs show
/// their wasted work here.
void fill_phase_seconds(PartitionResult& res) {
  res.phases.transfer = res.ledger.seconds_with_prefix("transfer/");
  res.phases.coarsen = res.ledger.seconds_with_prefix("kernel/coarsen/") +
                       res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen =
      res.ledger.seconds_with_prefix("kernel/uncoarsen/") +
      res.ledger.seconds_with_prefix("uncoarsen/");
}

/// Records an audit outcome in the health tallies; returns ok().
bool record_audit(PartitionResult& res, const AuditFailure& f) {
  ++res.health.audits_run;
  if (!f.ok()) {
    ++res.health.audits_failed;
    res.health.note("audit: " + f.to_string());
  }
  return f.ok();
}

/// One full GPU-coarsen / CPU-middle / GPU-uncoarsen attempt.  Throws
/// DeviceOutOfMemory / DeviceFailure when the device gives out and
/// AuditError when a phase-boundary invariant audit fails; the driver
/// below owns the retry/escalation ladder.  `handoff` is the level size
/// at which the GPU hands the graph to the CPU engine; `force_sort_merge`
/// is the ladder's second rung (the hash contraction is the suspect).
void gp_metis_attempt(const CsrGraph& g, const PartitionOptions& opts,
                      GpPhaseLog* log, vid_t handoff, bool force_sort_merge,
                      FaultInjector* injector, const Watchdog& watchdog,
                      PartitionResult& res) {
  Device::Config dev_config;  // GTX-Titan-like simulated device
  if (opts.gpu_memory_bytes > 0) {
    dev_config.memory_bytes = opts.gpu_memory_bytes;
  }
  if (opts.gpu_host_workers > 0) {
    dev_config.host_workers = opts.gpu_host_workers;
  }
  Device dev(dev_config);
  dev.set_ledger(&res.ledger);
  dev.set_fault_injector(injector, 0);
  dev.set_cancel_token(opts.cancel);
  dev.set_leak_sink(&res.exec.pool_leaked_blocks);

  const AuditLevel audit = opts.audit_level;

  struct GpuLevel {
    GpuGraph graph;              // coarse graph at this level (device)
    DeviceBuffer<vid_t> cmap;    // fine->coarse map producing it (device)
    vid_t fine_n = 0;
  };
  std::vector<GpuLevel> gpu_levels;

  // ---- 1. copy the graph to GPU global memory ----
  // Seed the device pool from the level-0 footprint first: every buffer
  // any level allocates (coarse graphs, cmaps, request buffers, the gain
  // cache's slabs) is bounded by the level-0 arrays, so pre-sizing the
  // buckets turns the V-cycle's first-touch allocations — including this
  // upload's own — into pool hits.
  dev.pool_presize(sizeof(eid_t) * (static_cast<std::size_t>(g.num_vertices()) + 1) +
                       sizeof(vid_t) * static_cast<std::size_t>(g.num_arcs()) +
                       sizeof(wgt_t) * static_cast<std::size_t>(g.num_arcs()) +
                       sizeof(wgt_t) * static_cast<std::size_t>(g.num_vertices()),
                   /*copies=*/2);
  GpuGraph g0 = GpuGraph::upload(dev, g, "G0");
  if (audit != AuditLevel::kOff) {
    // Transfer-integrity audit: the kernels index through the device copy
    // of the structure arrays, so a flipped bit there must be caught
    // BEFORE any kernel consumes it — afterwards it is an out-of-bounds
    // access, not a wrong answer.
    const bool clean = g0.adjp.d2h_vector() == g.adjp() &&
                       g0.adjncy.d2h_vector() == g.adjncy() &&
                       g0.adjwgt.d2h_vector() == g.adjwgt() &&
                       g0.vwgt.d2h_vector() == g.vwgt();
    AuditFailure f;
    if (!clean) {
      f.kind = AuditFailure::Kind::kCsr;
      f.invariant = "transfer-integrity";
      f.detail = "device copy of the input graph differs from the host "
                 "source after upload";
    }
    if (!record_audit(res, f)) throw AuditError(std::move(f));
  }

  // ---- 2. GPU coarsening until the threshold level ----
  const GpuGraph* cur = &g0;
  int lvl = 0;
  std::uint64_t total_conflicts = 0;
  std::int64_t launch_threads = opts.gpu_threads;
  while (cur->n > handoff) {
    check_cancelled(opts, "gp/gpu-coarsen");
    auto m = gpu_match(dev, *cur, lvl, opts.seed, launch_threads,
                       opts.gpu_scan);
    total_conflicts += m.conflicts;
    if (static_cast<double>(m.n_coarse) >
        opts.min_shrink * static_cast<double>(cur->n)) {
      break;
    }
    // Corruption site: one cmap entry perturbed in device memory on the
    // single-threaded host path between matching and contraction.
    std::uint64_t material = 0;
    if (injector && m.n_coarse > 1 && injector->corrupt_cmap(&material)) {
      vid_t* cm = m.cmap.data();
      const auto idx =
          static_cast<std::size_t>(material % static_cast<std::uint64_t>(
                                                  cur->n));
      cm[idx] = static_cast<vid_t>(
          (static_cast<std::uint64_t>(cm[idx]) + 1 +
           (material >> 32) % static_cast<std::uint64_t>(m.n_coarse - 1)) %
          static_cast<std::uint64_t>(m.n_coarse));
    }
    if (audit != AuditLevel::kOff) {
      // Phase-boundary audit of the level's matching artifacts.  The
      // d2h copies are metered like any transfer (and are themselves
      // flip-corruption sites — an audit that reads through a faulty bus
      // can misfire, which the ladder absorbs like any other failure).
      const auto host_match = m.match.d2h_vector();
      const auto host_cmap = m.cmap.d2h_vector();
      AuditFailure f = audit_matching(host_match, audit);
      if (f.ok()) {
        std::string err = validate_cmap(host_match, host_cmap, m.n_coarse);
        if (!err.empty()) {
          f.kind = AuditFailure::Kind::kContraction;
          f.invariant = "cmap-consistency";
          f.detail = "gpu level " + std::to_string(lvl) + ": " + err;
        }
      }
      if (!record_audit(res, f)) throw AuditError(std::move(f));
    }
    GpuContractStats cst;
    GpuGraph coarse =
        gpu_contract(dev, *cur, m.match, m.cmap, m.n_coarse, lvl,
                     launch_threads,
                     opts.gpu_hash_contraction && !force_sort_merge,
                     opts.gpu_scan, &cst);
    if (audit == AuditLevel::kParanoid) {
      // Full conservation audit of the device contraction against the
      // fine graph (both sides downloaded; paranoid is allowed to pay).
      AuditFailure f = audit_contraction(
          cur->download(), coarse.download(), m.match.d2h_vector(),
          m.cmap.d2h_vector(), audit);
      if (!record_audit(res, f)) throw AuditError(std::move(f));
    }
    gpu_levels.push_back(
        {std::move(coarse), std::move(m.cmap), cur->n});
    cur = &gpu_levels.back().graph;
    ++lvl;
    // The paper reduces the launched threads as the graph shrinks to
    // avoid underutilized kernels (Section III-D's non-persistent data
    // ownership; the fixed-width alternative exists for the ablation).
    if (opts.gpu_shrink_launch) {
      launch_threads = std::max<std::int64_t>(256, launch_threads / 2);
    }
  }
  const int gpu_lvls = static_cast<int>(gpu_levels.size());

  // ---- 3. transfer the coarse graph to the CPU; finish coarsening +
  // initial partitioning + first refinements with the mt-metis engine ----
  const CsrGraph cpu_graph = cur->download();
  if (audit != AuditLevel::kOff) {
    // Handoff audit: the graph crossing the PCIe boundary must be
    // well-formed and conserve the original total vertex weight (GPU
    // contraction only merges vertices).
    AuditFailure f = audit_csr(cpu_graph, audit);
    if (f.ok() &&
        cpu_graph.total_vertex_weight() != g.total_vertex_weight()) {
      f.kind = AuditFailure::Kind::kContraction;
      f.invariant = "vertex-weight-conservation";
      f.detail = "handoff graph total vertex weight " +
                 std::to_string(cpu_graph.total_vertex_weight()) +
                 " != input total " +
                 std::to_string(g.total_vertex_weight());
    }
    if (!record_audit(res, f)) throw AuditError(std::move(f));
  }
  check_cancelled(opts, "gp/cpu-middle");
  ThreadPool pool(opts.threads);
  pool.set_cancel_token(opts.cancel);
  pool.set_fault_injector(injector);
  MtContext mt_ctx{&pool, &res.ledger, opts.seed};
  PartitionOptions cpu_opts = opts;
  const MtPipelineControl mt_control{injector, &res.health, &watchdog};
  const auto mt_out =
      mt_multilevel_pipeline(cpu_graph, cpu_opts, mt_ctx, gpu_lvls,
                             mt_control);

  // ---- 4. transfer the partitioned graph back; GPU uncoarsening ----
  DeviceBuffer<part_t> where_coarse(
      dev, static_cast<std::size_t>(cpu_graph.num_vertices()), "where");
  where_coarse.h2d(mt_out.partition.where);
  if (audit != AuditLevel::kOff) {
    // The refinement kernels index part-weight tables with these labels:
    // verify the upload before any kernel dereferences a flipped label.
    AuditFailure f;
    if (where_coarse.d2h_vector() != mt_out.partition.where) {
      f.kind = AuditFailure::Kind::kPartition;
      f.invariant = "transfer-integrity";
      f.detail = "device copy of the coarse labels differs from the host "
                 "source after upload";
    }
    if (!record_audit(res, f)) throw AuditError(std::move(f));
  }

  // Device-resident gain cache (DESIGN.md §3.6): built once on the
  // handoff graph (whose labels just arrived from the CPU middle),
  // projected — not rebuilt — down each uncoarsening level, and kept
  // exact-or-dirty by the refine kernels' deltas in between.
  GpuGainCache gcache;
  bool gcache_valid = false;
  // Partition weights ride along: projection preserves per-part weight
  // sums exactly, so the k-entry table survives level transitions and the
  // per-level recount kernel runs only once (inside the first refine).
  DeviceBuffer<wgt_t> gpw;
  if (!gpu_levels.empty() && !watchdog.expired()) {
    const std::int64_t T0 = std::min<std::int64_t>(
        opts.gpu_threads, std::max<std::int64_t>(256, cur->n));
    gcache = GpuGainCache::build(dev, *cur, where_coarse, opts.k,
                                 "uncoarsen/gaincache/handoff", T0,
                                 opts.gpu_scan);
    gcache_valid = true;
  }

  bool shed_noted = false;
  for (std::size_t i = gpu_levels.size(); i-- > 0;) {
    check_cancelled(opts, "gp/gpu-uncoarsen");
    const vid_t fine_n = gpu_levels[i].fine_n;
    const GpuGraph& fine = (i == 0) ? g0 : gpu_levels[i - 1].graph;
    DeviceBuffer<part_t> where_fine(
        dev, static_cast<std::size_t>(fine_n), "where/L" + std::to_string(i));
    const std::int64_t T = std::min<std::int64_t>(
        opts.gpu_threads, std::max<std::int64_t>(256, fine_n));
    gpu_project(dev, gpu_levels[i].cmap, where_coarse, where_fine,
                static_cast<int>(i), T);
    if (watchdog.expired()) {
      // Deadline: keep the (valid) projected partition, shed the level's
      // refinement passes, finish degraded rather than overrun.
      if (!shed_noted) {
        res.health.note(
            "watchdog: time budget exceeded, shedding gpu refinement");
        ++res.health.fallbacks;
        res.health.degraded = true;
        shed_noted = true;
      }
      gcache_valid = false;  // later levels shed too; stop maintaining it
    } else {
      const std::string tag = "uncoarsen/gaincache/L" + std::to_string(i);
      if (gcache_valid) {
        GpuGainCache fine_cache = GpuGainCache::project(
            dev, gcache, fine, where_fine, gpu_levels[i].cmap, tag, T,
            opts.gpu_scan);
        gcache = std::move(fine_cache);
      } else {
        gcache = GpuGainCache::build(dev, fine, where_fine, opts.k, tag, T,
                                     opts.gpu_scan);
        gcache_valid = true;
      }
      auto rst = gpu_refine(dev, fine, where_fine, opts.k, opts.eps,
                            opts.refine_passes, static_cast<int>(i), T,
                            &gcache, &gpw, opts.gpu_scan);
      if (log) log->refine_committed += rst.committed;
      if (audit == AuditLevel::kParanoid) {
        // Cache-vs-recompute cross-check: the refine kernels both read
        // and delta-updated the device cache, so corruption there skews
        // every later move — audit it at the same boundary as the labels.
        AuditFailure f;
        const std::string err = gcache.compare_to_host(
            fine.download(), where_fine.d2h_vector());
        if (!err.empty()) {
          f.kind = AuditFailure::Kind::kGainCache;
          f.invariant = "recompute";
          f.detail = "gpu level " + std::to_string(i) + ": " + err;
        }
        if (!record_audit(res, f)) throw AuditError(std::move(f));
      }
    }
    where_coarse = std::move(where_fine);
  }

  // ---- 5. final partition back to the host ----
  res.partition.k = opts.k;
  res.partition.where = where_coarse.d2h_vector();

  if (audit != AuditLevel::kOff) {
    AuditFailure f = audit_partition(g, res.partition, opts.k, opts.eps,
                                     /*expected_cut=*/-1, audit);
    if (!record_audit(res, f)) throw AuditError(std::move(f));
  }

  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  res.coarsen_levels = gpu_lvls + mt_out.levels;
  res.coarsest_vertices = mt_out.coarsest_vertices;
  res.exec += device_exec_stats(dev);

  if (log) {
    log->gpu_coarsen_levels = gpu_lvls;
    log->cpu_levels = mt_out.levels;
    log->handoff_vertices = cpu_graph.num_vertices();
    log->h2d_bytes = dev.total_h2d_bytes();
    log->d2h_bytes = dev.total_d2h_bytes();
    log->match_conflicts = total_conflicts;
  }
}

/// Third rung of the ladder: the whole multilevel pipeline on the CPU
/// engine (exactly what GP-metis already does below the threshold level,
/// applied to the entire graph).  Charges land in the same ledger, after
/// whatever the failed GPU attempts already spent.
void pure_cpu_fallback(const CsrGraph& g, const PartitionOptions& opts,
                       GpPhaseLog* log, const MtPipelineControl& control,
                       PartitionResult& res) {
  ThreadPool pool(opts.threads);
  pool.set_cancel_token(opts.cancel);
  pool.set_fault_injector(control.injector);
  MtContext ctx{&pool, &res.ledger, opts.seed};
  auto out = mt_multilevel_pipeline(g, opts, ctx, 0, control);
  res.partition = std::move(out.partition);
  res.partition.k = opts.k;
  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  if (opts.audit_level != AuditLevel::kOff) {
    AuditFailure f = audit_partition(g, res.partition, opts.k, opts.eps,
                                     static_cast<std::int64_t>(res.cut),
                                     opts.audit_level);
    if (!record_audit(res, f)) throw AuditError(std::move(f));
  }
  res.coarsen_levels = out.levels;
  res.coarsest_vertices = out.coarsest_vertices;
  if (log) {
    log->gpu_coarsen_levels = 0;
    log->cpu_levels = out.levels;
    log->handoff_vertices = g.num_vertices();
  }
}

}  // namespace

PartitionResult gp_metis_run(const CsrGraph& g, const PartitionOptions& opts,
                             GpPhaseLog* log) {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  const std::unique_ptr<FaultInjector> injector = opts.make_fault_injector();
  const Watchdog watchdog(opts.time_budget_seconds);

  vid_t handoff = std::max<vid_t>(opts.gpu_cpu_threshold,
                                  opts.coarsen_target());
  bool gpu_ok = false;
  bool force_sort_merge = false;
  int audit_failures = 0;
  int attempts = 0;
  while (!gpu_ok && attempts < kMaxGpuAttempts) {
    if (log) {
      const int kept_attempts = attempts;
      *log = GpPhaseLog{};  // a failed attempt's partial trail is stale
      log->attempts = kept_attempts;
    }
    ++attempts;
    try {
      gp_metis_attempt(g, opts, log, handoff, force_sort_merge,
                       injector.get(), watchdog, res);
      gpu_ok = true;
    } catch (const DeviceOutOfMemory& e) {
      res.health.gpu_retries += 1;
      res.health.degraded = true;
      res.ledger.charge_raw("fault/device-reset", kDeviceResetSeconds);
      // Shrink the device working set by handing off to the CPU earlier.
      // Once the handoff covers the whole graph the GPU does no level at
      // all, so further retries cannot help — degrade to pure CPU.
      if (handoff >= g.num_vertices()) {
        res.health.note(std::string("gp-metis: OOM with nothing left on the "
                                    "GPU (") + e.what() + ")");
        break;
      }
      const vid_t raised = handoff > g.num_vertices() / 4
                               ? g.num_vertices()
                               : handoff * 4;
      res.health.note("gp-metis: OOM (" + std::string(e.what()) +
                      "); retrying with CPU handoff at " +
                      std::to_string(raised) + " vertices");
      log_warn("gp-metis: device OOM, raising CPU handoff %d -> %d",
               handoff, raised);
      handoff = raised;
    } catch (const DeviceFailure& e) {
      res.health.gpu_retries += 1;
      res.health.degraded = true;
      res.ledger.charge_raw("fault/device-reset", kDeviceResetSeconds);
      res.health.note("gp-metis: device failure (" + std::string(e.what()) +
                      "); retrying");
      log_warn("gp-metis: device failure, retrying (attempt %d): %s",
               attempts, e.what());
    } catch (const ThreadPoolTaskError& e) {
      // A CPU-phase task threw (injected `task` fault).  The attempt's
      // buffers unwound cleanly, so retry the whole attempt like a
      // transient device failure; occurrence counters keep advancing, so
      // a one-shot rule cannot refire.
      res.health.gpu_retries += 1;
      res.health.degraded = true;
      res.ledger.charge_raw("fault/task-restart", kDeviceResetSeconds);
      res.health.note("gp-metis: pool task fault (" + std::string(e.what()) +
                      "); retrying");
      log_warn("gp-metis: pool task fault, retrying (attempt %d): %s",
               attempts, e.what());
    } catch (const AuditError& e) {
      // Escalation ladder for silent corruption: re-execute, then swap
      // the hash contraction for sort-merge, then leave the GPU.
      ++audit_failures;
      res.health.rollbacks += 1;
      res.health.gpu_retries += 1;
      res.health.degraded = true;
      res.ledger.charge_raw("fault/device-reset", kDeviceResetSeconds);
      if (watchdog.expired()) {
        res.health.note(std::string("gp-metis: audit failed (") + e.what() +
                        ") with the time budget exhausted; leaving the GPU");
        break;
      }
      if (audit_failures == 1) {
        res.health.note(std::string("gp-metis: audit failed (") + e.what() +
                        "); rolling the attempt back and retrying");
      } else if (opts.gpu_hash_contraction && !force_sort_merge) {
        force_sort_merge = true;
        res.health.note(std::string("gp-metis: audit failed again (") +
                        e.what() +
                        "); escalating to sort-merge contraction");
      } else {
        res.health.note(std::string("gp-metis: audit failed on the "
                                    "sort-merge rung (") +
                        e.what() + "); leaving the GPU");
        break;
      }
    }
  }
  if (!gpu_ok) {
    res.health.fallbacks += 1;
    res.health.degraded = true;
    res.health.note("gp-metis: GPU attempts exhausted; degrading to a pure "
                    "mt-metis run");
    log_warn("gp-metis: degrading to pure mt-metis after %d GPU attempts",
             attempts);
    if (log) *log = GpPhaseLog{};
    const MtPipelineControl control{injector.get(), &res.health, &watchdog};
    try {
      pure_cpu_fallback(g, opts, log, control, res);
    } catch (const AuditError& e) {
      // Terminal rung: whole-run serial fallback with corruption
      // injection suppressed, so convergence is guaranteed even under
      // probabilistic corruption rules.
      res.health.rollbacks += 1;
      res.health.fallbacks += 1;
      res.health.note(std::string("gp-metis: CPU phase failed audit (") +
                      e.what() +
                      "); whole-run serial fallback with corruption "
                      "suppressed");
      if (injector) injector->set_corruption_suppressed(true);
      PartitionOptions serial_opts = opts;
      serial_opts.fault_spec.clear();  // the terminal engine runs clean
      PartitionResult serial_res =
          SerialMetisPartitioner().run(g, serial_opts);
      res.partition = std::move(serial_res.partition);
      res.cut = serial_res.cut;
      res.balance = serial_res.balance;
      res.coarsen_levels = serial_res.coarsen_levels;
      res.coarsest_vertices = serial_res.coarsest_vertices;
      res.health.audits_run += serial_res.health.audits_run;
      res.health.audits_failed += serial_res.health.audits_failed;
      res.ledger.merge("", serial_res.ledger);
      if (log) {
        *log = GpPhaseLog{};
        log->cpu_levels = serial_res.coarsen_levels;
        log->handoff_vertices = g.num_vertices();
        log->cpu_fallback = true;
      }
    }
  }
  if (injector) injector->report_into(res.health);
  if (log) {
    log->attempts = attempts;
    log->cpu_fallback = !gpu_ok;
  }
  fill_phase_seconds(res);
  res.modeled_seconds = res.ledger.total_seconds();
  res.wall_seconds = wall.seconds();
  return res;
}

PartitionResult GpMetisPartitioner::run(const CsrGraph& g,
                                        const PartitionOptions& opts) const {
  return gp_metis_run(g, opts, nullptr);
}

std::unique_ptr<Partitioner> make_hybrid_partitioner() {
  return std::make_unique<GpMetisPartitioner>();
}

}  // namespace gp
