// GP-metis — the paper's contribution: a multilevel k-way partitioner for
// a heterogeneous CPU-GPU system (Fig. 1).
//
//   GPU:  coarsening levels (lock-free matching, 4-kernel cmap,
//         prefix-sum contraction) while the graph is large,
//   CPU:  remaining coarsening + initial partitioning + first refinement
//         via the mt-metis engine once parallelism runs out,
//   GPU:  uncoarsening (projection + lock-free buffered refinement)
//         back to the original graph.
//
// Host<->device transfers are explicit and metered; Table II's GP-metis
// column includes them, and so does this implementation's modeled time.
#pragma once

#include "core/partitioner.hpp"

namespace gp {

class GpMetisPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "gp-metis"; }
  [[nodiscard]] PartitionResult run(const CsrGraph& g,
                                    const PartitionOptions& opts) const override;
};

/// Extra introspection for benches/tests: per-run phase placement log.
struct GpPhaseLog {
  int gpu_coarsen_levels = 0;
  int cpu_levels = 0;          ///< coarsening levels done on the CPU
  vid_t handoff_vertices = 0;  ///< graph size at the GPU->CPU switch
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t match_conflicts = 0;
  std::uint64_t refine_committed = 0;
  // Degradation trail (mirrors PartitionResult::health for quick checks).
  int  attempts = 0;           ///< GPU attempts made (1 = clean first try)
  bool cpu_fallback = false;   ///< true when the run degraded to pure mt-metis
};

/// Same as GpMetisPartitioner::run but also exposes the phase log.
PartitionResult gp_metis_run(const CsrGraph& g, const PartitionOptions& opts,
                             GpPhaseLog* log);

}  // namespace gp
