#include "hybrid/gpu_contract.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "gpu/hash_table.hpp"
#include "gpu/scan.hpp"

namespace gp {

GpuGraph gpu_contract(Device& dev, const GpuGraph& fine,
                      const DeviceBuffer<vid_t>& match,
                      const DeviceBuffer<vid_t>& cmap, vid_t n_coarse,
                      int level, std::int64_t n_threads, bool use_hash,
                      GpuScanMode mode, GpuContractStats* stats) {
  const std::string L = "/L" + std::to_string(level);
  const vid_t* mt = match.data();
  const vid_t* cm = cmap.data();
  const eid_t* adjp = fine.adjp.data();
  const vid_t* adjncy = fine.adjncy.data();
  const wgt_t* adjwgt = fine.adjwgt.data();
  const wgt_t* vwgt = fine.vwgt.data();

  const std::int64_t T = std::max<std::int64_t>(
      1, std::min<std::int64_t>(n_threads, n_coarse));

  const bool fused = (mode == GpuScanMode::kLookback);

  // leaders[c]: fine leader of coarse vertex c (coalesced write pattern:
  // leaders appear in increasing vertex order with increasing labels).
  DeviceBuffer<vid_t> leaders(dev, static_cast<std::size_t>(n_coarse),
                              "leaders" + L);
  vid_t* ld = leaders.data();
  auto leaders_body = [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0;
    for (vid_t v = static_cast<vid_t>(t); v < fine.n;
         v += static_cast<vid_t>(T)) {
      if (v <= mt[v]) ld[cm[v]] = v;
      ++work;
    }
    return work;
  };

  // Thread t owns the contiguous block of coarse vertices [cb(t), ce(t)).
  auto block = [&](std::int64_t t) {
    const std::int64_t chunk = n_coarse / T, rem = n_coarse % T;
    const std::int64_t b = t * chunk + std::min<std::int64_t>(t, rem);
    return std::pair<vid_t, vid_t>(
        static_cast<vid_t>(b),
        static_cast<vid_t>(b + chunk + (t < rem ? 1 : 0)));
  };

  // --- kernel: per-thread maximum entries (temp) ---
  // Fresh pool buffers arrive zero-filled (the cudaMalloc-the-simulated-
  // way contract), so no fill kernels are spent on temp/temp2/cdeg.
  DeviceBuffer<eid_t> temp(dev, static_cast<std::size_t>(T) + 1, "temp" + L);
  eid_t* tp = temp.data();
  auto maxcount_body = [&](std::int64_t t) -> std::uint64_t {
    auto [cb, ce] = block(t);
    eid_t need = 0;
    std::uint64_t work = 0;
    for (vid_t c = cb; c < ce; ++c) {
      const vid_t v = ld[c];
      const vid_t u = mt[v];
      need += adjp[v + 1] - adjp[v];
      if (u != v) need += adjp[u + 1] - adjp[u];
      ++work;
    }
    tp[t + 1] = need;
    return work;
  };

  // --- first prefix sum: temporary-array offsets per thread ---
  eid_t temp_total = 0;
  if (fused) {
    // One dispatch for the whole counting chain: leaders + maxcount +
    // single-pass scan1.
    dev.launch_fused("coarsen/contract/count" + L, [&](Device::Fused& f) {
      f.stage("leaders", T, leaders_body);
      f.stage("maxcount", T, maxcount_body);
      temp_total = lookback_scan_stage<eid_t>(
          dev, f, "scan1", static_cast<std::int64_t>(temp.size()),
          sizeof(eid_t), [&](std::int64_t i) { return tp[i]; },
          [&](std::int64_t i, eid_t inc, eid_t) { tp[i] = inc; });
    });
  } else {
    dev.launch("coarsen/contract/leaders" + L, T, leaders_body);
    dev.launch("coarsen/contract/maxcount" + L, T, maxcount_body);
    temp_total = device_inclusive_scan(dev, temp,
                                       "coarsen/contract/scan1" + L);
  }

  DeviceBuffer<vid_t> tadjncy(dev, static_cast<std::size_t>(temp_total),
                              "tadjncy" + L);
  DeviceBuffer<wgt_t> tadjwgt(dev, static_cast<std::size_t>(temp_total),
                              "tadjwgt" + L);
  DeviceBuffer<eid_t> cdeg(dev, static_cast<std::size_t>(n_coarse) + 1,
                           "cdeg" + L);
  DeviceBuffer<wgt_t> cvwgt(dev, static_cast<std::size_t>(n_coarse),
                            "cvwgt" + L);
  DeviceBuffer<eid_t> temp2(dev, static_cast<std::size_t>(T) + 1,
                            "temp2" + L);
  vid_t* ta = tadjncy.data();
  wgt_t* tw = tadjwgt.data();
  eid_t* cd = cdeg.data();
  wgt_t* cw = cvwgt.data();
  eid_t* tp2 = temp2.data();

  // --- merge kernel: contract each owned coarse vertex into the
  // temporary arrays; two strategies (paper Section III-A):
  //   sort-merge:  concatenate, quicksort, then "remove" duplicates
  //   hash-merge:  clustered hash table with chaining
  auto merge_body = [&](std::int64_t t) -> std::uint64_t {
    auto [cb, ce] = block(t);
    eid_t out = tp[t];  // start index from the first scan
    std::uint64_t work = 0;
    // Per-executor scratch: the table self-clears before each
    // coarse vertex and scratch before each use, so reuse
    // across logical threads and launches is free.
    thread_local ClusteredHashTable table(128);
    thread_local std::vector<std::pair<vid_t, wgt_t>> scratch;
    for (vid_t c = cb; c < ce; ++c) {
      const vid_t v = ld[c];
      const vid_t u = mt[v];
      cw[c] = vwgt[v] + (u != v ? vwgt[u] : 0);
      scratch.clear();
      auto absorb = [&](vid_t src) {
        for (eid_t j = adjp[src]; j < adjp[src + 1]; ++j) {
          const vid_t cu = cm[adjncy[j]];
          if (cu == c) continue;
          if (use_hash) {
            table.add(cu, adjwgt[j]);
          } else {
            scratch.emplace_back(cu, adjwgt[j]);
          }
          ++work;
        }
      };
      if (use_hash) table.clear();
      absorb(v);
      if (u != v) absorb(u);
      if (use_hash) {
        scratch.clear();
        table.for_each([&](vid_t k, wgt_t x) {
          scratch.emplace_back(k, x);
        });
        std::sort(scratch.begin(), scratch.end());
      } else {
        // quicksort + "remove" (merge adjacent duplicates).
        std::sort(scratch.begin(), scratch.end());
        work += scratch.size();  // sorting pass
        std::size_t o = 0;
        for (std::size_t i = 0; i < scratch.size();) {
          const vid_t k = scratch[i].first;
          wgt_t x = 0;
          while (i < scratch.size() && scratch[i].first == k) {
            x += scratch[i++].second;
          }
          scratch[o++] = {k, x};
        }
        scratch.resize(o);
      }
      cd[c + 1] = static_cast<eid_t>(scratch.size());
      for (const auto& [k, x] : scratch) {
        ta[out] = k;
        tw[out] = x;
        ++out;
      }
    }
    tp2[t + 1] = out - tp[t];  // actual entries used
    return work;
  };

  // --- second prefix sum (final offsets per thread) and cadjp from the
  // coarse degrees.  The per-coarse-vertex degrees must sum to exactly
  // the entries the merge kernel wrote — a cheap end-to-end invariant
  // over the whole two-scan pipeline.
  eid_t final_total = 0;
  eid_t check_total = 0;
  if (fused) {
    // One dispatch for the whole build chain: merge + scan2 + adjp scan.
    dev.launch_fused("coarsen/contract/build" + L, [&](Device::Fused& f) {
      f.stage("merge", T, merge_body);
      final_total = lookback_scan_stage<eid_t>(
          dev, f, "scan2", static_cast<std::int64_t>(temp2.size()),
          sizeof(eid_t), [&](std::int64_t i) { return tp2[i]; },
          [&](std::int64_t i, eid_t inc, eid_t) { tp2[i] = inc; });
      check_total = lookback_scan_stage<eid_t>(
          dev, f, "adjp", static_cast<std::int64_t>(cdeg.size()),
          sizeof(eid_t), [&](std::int64_t i) { return cd[i]; },
          [&](std::int64_t i, eid_t inc, eid_t) { cd[i] = inc; });
    });
  } else {
    dev.launch("coarsen/contract/merge" + L, T, merge_body);
    final_total = device_inclusive_scan(dev, temp2,
                                        "coarsen/contract/scan2" + L);
    check_total = device_inclusive_scan(dev, cdeg,
                                        "coarsen/contract/adjp" + L);
  }
  if (check_total != final_total) {
    throw std::logic_error(
        "gpu_contract: degree sum (" + std::to_string(check_total) +
        ") != compacted entries (" + std::to_string(final_total) + ")");
  }

  GpuGraph coarse(dev, n_coarse, final_total, "G" + std::to_string(level + 1));
  // cdeg now IS the coarse adjp; move it into the result (device-side
  // pointer swap, no transfer).
  coarse.adjp = std::move(cdeg);
  coarse.vwgt = std::move(cvwgt);
  vid_t* fa = coarse.adjncy.data();
  wgt_t* fw = coarse.adjwgt.data();

  // --- compaction copy: each thread moves its used slots from the
  // temporary arrays to the final arrays using temp and temp2 ---
  dev.launch("coarsen/contract/copy" + L, T,
             [&](std::int64_t t) -> std::uint64_t {
               const eid_t src0 = tp[t];
               const eid_t dst0 = tp2[t];
               const eid_t cnt = tp2[t + 1] - tp2[t];
               for (eid_t i = 0; i < cnt; ++i) {
                 fa[dst0 + i] = ta[src0 + i];
                 fw[dst0 + i] = tw[src0 + i];
               }
               return static_cast<std::uint64_t>(cnt);
             });

  if (stats) {
    stats->temp_entries = static_cast<std::uint64_t>(temp_total);
    stats->final_entries = static_cast<std::uint64_t>(final_total);
  }
  // temp, temp2, tadjncy, tadjwgt, leaders free on scope exit — the paper
  // notes the same: "at the end of the contraction step, we can free the
  // temp arrays, so there is no extra memory overhead".
  return coarse;
}

}  // namespace gp
