// GPU contraction of GP-metis (paper Section III-A, contraction step):
// per-thread maximum-entry counts (temp), an exclusive prefix sum for the
// temporary-array offsets, merge into temporary adjacency arrays (either
// quicksort+remove or the clustered hash table), actual counts (temp2), a
// second prefix sum, and the final compaction copy.
#pragma once

#include <cstdint>

#include "hybrid/gpu_graph.hpp"

namespace gp {

struct GpuContractStats {
  std::uint64_t temp_entries = 0;   ///< allocated temporary slots
  std::uint64_t final_entries = 0;  ///< actual coarse arcs
};

/// Contracts the device graph given a valid device (match, cmap).
/// `use_hash` selects the clustered-hash-table merge (paper: faster) over
/// the sort-merge; both are kept for the ablation bench.
///
/// Under GpuScanMode::kLookback the launch ladder collapses to three
/// dispatches — count chain (leaders + maxcount + scan1), build chain
/// (merge + scan2 + adjp scan), compaction copy — via single-pass
/// look-back scans inside fused dispatches (DESIGN.md §3.9).  Results are
/// byte-identical to the blocked per-kernel path.
[[nodiscard]] GpuGraph gpu_contract(Device& dev, const GpuGraph& fine,
                                    const DeviceBuffer<vid_t>& match,
                                    const DeviceBuffer<vid_t>& cmap,
                                    vid_t n_coarse, int level,
                                    std::int64_t n_threads, bool use_hash,
                                    GpuScanMode mode = GpuScanMode::kBlocked,
                                    GpuContractStats* stats = nullptr);

}  // namespace gp
