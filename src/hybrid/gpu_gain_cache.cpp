#include "hybrid/gpu_gain_cache.hpp"

#include "core/gain_cache.hpp"
#include "gpu/scan.hpp"

namespace gp {

namespace {

/// Allocates the per-vertex arrays and the connectivity slab.  A cheap
/// max-degree reduction decides the slab shape: when no degree exceeds k
/// the per-vertex capacity min(deg, k) is just the degree, so the graph's
/// own adjp serves as the offsets and the capacity kernel + device scan
/// are skipped entirely (the common case on meshes and road networks,
/// where deg << k).  Otherwise the offsets are built CSR-style.
GpuGainCache alloc_cache(Device& dev, const GpuGraph& g, part_t k,
                         const std::string& tag, std::int64_t n_threads,
                         GpuScanMode mode) {
  GpuGainCache c;
  c.n = g.n;
  c.k = k;
  const auto n = static_cast<std::size_t>(g.n);
  const eid_t* adjp = g.adjp.data();
  DeviceBuffer<eid_t> md(dev, 1, "gaincache/maxdeg");
  eid_t* mdp = md.data();
  const std::int64_t T = std::max<std::int64_t>(
      1, std::min<std::int64_t>(n_threads, static_cast<std::int64_t>(n)));
  dev.launch(tag + "/maxdeg", T, [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0;
    eid_t local = 0;
    for (auto v = static_cast<std::int64_t>(t);
         v < static_cast<std::int64_t>(n); v += T) {
      local = std::max(local, adjp[v + 1] - adjp[v]);
      ++work;
    }
    atomic_max(*mdp, local);
    // Coalesced streaming reduction over adjp: per-transaction charge.
    return (work * sizeof(eid_t) + 127) / 128;
  });
  eid_t slab = 0;
  if (md.d2h_vector()[0] <= static_cast<eid_t>(k)) {
    c.off_alias = adjp;
    slab = static_cast<eid_t>(g.adjncy.size());
  } else {
    c.off = DeviceBuffer<eid_t>(dev, n + 1, "gaincache/off");
    eid_t* off = c.off.data();
    auto cap_of = [&](std::int64_t i) -> eid_t {
      return (i == 0) ? 0
                      : std::min<eid_t>(adjp[i] - adjp[i - 1],
                                        static_cast<eid_t>(c.k));
    };
    if (mode == GpuScanMode::kLookback) {
      // The capacity kernel folds into the scan's load transform: one
      // dispatch builds the offsets instead of cap + three-kernel scan.
      dev.launch_fused(tag + "/offscan", [&](Device::Fused& f) {
        slab = lookback_scan_stage<eid_t>(
            dev, f, "cap_scan", static_cast<std::int64_t>(n) + 1,
            sizeof(eid_t), cap_of,
            [&](std::int64_t i, eid_t inc, eid_t) { off[i] = inc; });
      });
    } else {
      dev.launch_simple(tag + "/cap", static_cast<std::int64_t>(n) + 1,
                        [&](std::int64_t i) { off[i] = cap_of(i); });
      slab = device_inclusive_scan(dev, c.off, tag + "/offscan");
    }
  }
  c.id = DeviceBuffer<wgt_t>(dev, n, "gaincache/id");
  c.ed = DeviceBuffer<wgt_t>(dev, n, "gaincache/ed");
  c.cnt = DeviceBuffer<std::int32_t>(dev, n, "gaincache/cnt");
  c.slot_part = DeviceBuffer<part_t>(dev, static_cast<std::size_t>(slab),
                                     "gaincache/slot_part");
  c.slot_wgt = DeviceBuffer<wgt_t>(dev, static_cast<std::size_t>(slab),
                                   "gaincache/slot_wgt");
  c.dirty = DeviceBuffer<char>(dev, n, "gaincache/dirty");
  return c;
}

}  // namespace

GpuGainCache GpuGainCache::build(Device& dev, const GpuGraph& g,
                                 const DeviceBuffer<part_t>& where, part_t k,
                                 const std::string& tag,
                                 std::int64_t n_threads, GpuScanMode mode) {
  GpuGainCache c = alloc_cache(dev, g, k, tag, n_threads, mode);
  const vid_t n = g.n;
  const eid_t* adjp = g.adjp.data();
  const vid_t* adjncy = g.adjncy.data();
  const wgt_t* adjwgt = g.adjwgt.data();
  const part_t* wh = where.data();
  const GpuGainCacheView cv = c.view();
  const std::int64_t T =
      std::max<std::int64_t>(1, std::min<std::int64_t>(n_threads, n));
  dev.launch(tag + "/build", T, [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0;
    thread_local std::vector<wgt_t> conn;
    thread_local std::vector<part_t> parts;
    if (conn.size() < static_cast<std::size_t>(k)) {
      conn.assign(static_cast<std::size_t>(k), 0);
    }
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      work += cv.rebuild_vertex(adjp, adjncy, adjwgt, wh, v, conn, parts);
    }
    return work;
  });
  return c;
}

GpuGainCache GpuGainCache::project(Device& dev, GpuGainCache& coarse,
                                   const GpuGraph& fine,
                                   const DeviceBuffer<part_t>& where_fine,
                                   const DeviceBuffer<vid_t>& cmap,
                                   const std::string& tag,
                                   std::int64_t n_threads, GpuScanMode mode) {
  GpuGainCache c = alloc_cache(dev, fine, coarse.k, tag, n_threads, mode);
  const vid_t n = fine.n;
  const eid_t* adjp = fine.adjp.data();
  const vid_t* adjncy = fine.adjncy.data();
  const wgt_t* adjwgt = fine.adjwgt.data();
  const part_t* wh = where_fine.data();
  const vid_t* cm = cmap.data();
  const wgt_t* ced = coarse.ed.data();
  const char* cdirty = coarse.dirty.data();
  const GpuGainCacheView cv = c.view();
  const part_t k = coarse.k;
  const std::int64_t T =
      std::max<std::int64_t>(1, std::min<std::int64_t>(n_threads, n));
  dev.launch(tag + "/project", T, [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0;
    thread_local std::vector<wgt_t> conn;
    thread_local std::vector<part_t> parts;
    if (conn.size() < static_cast<std::size_t>(k)) {
      conn.assign(static_cast<std::size_t>(k), 0);
    }
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      const vid_t p = cm[v];
      // A moved-dirty parent's ed is stale; a lazy parent's ed only ever
      // grew from 0, so ed == 0 is exact for it too.
      if (cdirty[p] == kDirtyMoved || ced[p] != 0) {
        // Boundary (or stale) parent: the fine vertex may touch foreign
        // parts; full rebuild for this vertex only.
        work += cv.rebuild_vertex(adjp, adjncy, adjwgt, wh, v, conn, parts);
        continue;
      }
      // Interior parent: every coarse neighbour of p shares its part and
      // v's neighbours all map into that closed neighbourhood, so v is
      // interior too.  The fresh slab is already all-free and ed/cnt
      // already zero — recording laziness is a single flag store; id is
      // materialised by the rebuild the first boundary delta triggers.
      cv.dirty[v] = kDirtyLazy;
      ++work;
    }
    return work;
  });
  return c;
}

std::string GpuGainCache::compare_to_host(
    const CsrGraph& g, const std::vector<part_t>& where) const {
  if (static_cast<vid_t>(g.num_vertices()) != n) {
    return "shape mismatch: cache has " + std::to_string(n) +
           " vertices, graph has " + std::to_string(g.num_vertices());
  }
  GainCache fresh;
  fresh.build(g, where, k);
  const auto h_id = id.d2h_vector();
  const auto h_ed = ed.d2h_vector();
  const std::vector<eid_t> h_off_local =
      off_alias ? std::vector<eid_t>{} : off.d2h_vector();
  const std::vector<eid_t>& h_off = off_alias ? g.adjp() : h_off_local;
  const auto h_cnt = cnt.d2h_vector();
  const auto h_part = slot_part.d2h_vector();
  const auto h_wgt = slot_wgt.d2h_vector();
  const auto h_dirty = dirty.d2h_vector();
  std::vector<wgt_t> conn(static_cast<std::size_t>(k), 0);
  std::vector<char> mark(static_cast<std::size_t>(k), 0);
  std::vector<part_t> parts;
  for (vid_t v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (h_dirty[sv] == kDirtyLazy && h_ed[sv] == 0) {
      // An undisturbed lazy vertex claims to be interior; its id was
      // never materialised, but the interiority claim is checkable.
      if (fresh.external(v) != 0 || fresh.conn_count(v) != 0) {
        return "lazy vertex v=" + std::to_string(v) +
               " is not interior: recomputed ed " +
               std::to_string(fresh.external(v));
      }
      continue;
    }
    if (h_dirty[sv]) continue;  // stale until the next propose rebuild
    if (h_id[sv] != fresh.internal(v) || h_ed[sv] != fresh.external(v)) {
      return "id/ed mismatch at v=" + std::to_string(v) + ": device (" +
             std::to_string(h_id[sv]) + "," + std::to_string(h_ed[sv]) +
             ") recomputed (" + std::to_string(fresh.internal(v)) + "," +
             std::to_string(fresh.external(v)) + ")";
    }
    // Sum duplicate slots per part, then compare the sparse sets.
    const eid_t base = h_off[sv];
    const auto  cap = static_cast<std::int32_t>(h_off[sv + 1] - base);
    const std::int32_t used = std::min(h_cnt[sv], cap);
    parts.clear();
    for (std::int32_t i = 0; i < used; ++i) {
      const part_t qp1 = h_part[static_cast<std::size_t>(base + i)];
      if (qp1 <= 0) continue;
      const part_t q = static_cast<part_t>(qp1 - 1);
      if (!mark[static_cast<std::size_t>(q)]) {
        mark[static_cast<std::size_t>(q)] = 1;
        parts.push_back(q);
      }
      conn[static_cast<std::size_t>(q)] +=
          h_wgt[static_cast<std::size_t>(base + i)];
    }
    std::string err;
    std::int32_t nonzero = 0;
    for (const part_t q : parts) {
      const wgt_t c = conn[static_cast<std::size_t>(q)];
      if (c != 0) ++nonzero;
      if (c != 0 && c != fresh.conn_to(v, q)) {
        err = "conn mismatch at v=" + std::to_string(v) + " part " +
              std::to_string(q) + ": device " + std::to_string(c) +
              " recomputed " + std::to_string(fresh.conn_to(v, q));
      }
    }
    if (err.empty() && nonzero != fresh.conn_count(v)) {
      err = "conn-count mismatch at v=" + std::to_string(v) + ": device " +
            std::to_string(nonzero) + " recomputed " +
            std::to_string(fresh.conn_count(v));
    }
    for (const part_t q : parts) {
      conn[static_cast<std::size_t>(q)] = 0;
      mark[static_cast<std::size_t>(q)] = 0;
    }
    if (!err.empty()) return err;
  }
  return {};
}

}  // namespace gp
