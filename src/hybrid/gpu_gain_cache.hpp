// Device-resident incremental gain cache (DESIGN.md §3.6) — the GPU twin
// of core/gain_cache: per-vertex internal/external degree plus a sparse
// per-vertex partition-connectivity slab, all in device global memory so
// the refinement kernels never recompute connectivity by rescanning a
// neighbourhood.
//
// Concurrency contract ("exact or dirty"): the propose kernel only READS
// cache entries (each vertex's entry is read by its single owning logical
// thread), the explore kernel only WRITES them — via atomic deltas pushed
// to every neighbour of a committed move.  A non-moved vertex's entry
// stays exact under those commutative deltas; a moved vertex (whose own
// entry cannot be delta-updated race-free) is merely flagged dirty, and
// the next propose pass rebuilds it from its adjacency before evaluating
// it — the rebuild is race-free because propose and explore are separate
// launches.  Slot management tolerates the races the deltas can produce:
// a part may occupy several slots (readers sum duplicates), a slot-claim
// overflow or a subtract that cannot find its part falls back to the
// dirty flag.  With one host worker the kernels execute sequentially,
// every entry stays exact, and the proposal stream is byte-identical to
// the historical full-scan kernel.
//
// Slot encoding: slot_part stores part + 1, so 0 means "free".  A freshly
// pool-acquired (zeroed) slab is therefore all-free with no reset kernel,
// and a racing scanner that reads a claimed-but-not-yet-published slot
// sees "free" — never an alias of a real part id.
//
// Dirty states: 0 = exact, kDirtyMoved = stale (rebuild before reading),
// kDirtyLazy = projected interior shortcut — ed is exactly 0 and the
// slot table exactly empty, but id was never materialised.  A lazy vertex
// costs O(1) to project and O(1) to skip in propose; the moment a
// neighbour's commit raises its ed, the next propose pass rebuilds it
// (id included) before evaluating it, so laziness is never observable.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "core/csr_graph.hpp"
#include "gpu/device_atomics.hpp"
#include "gpu/device_buffer.hpp"
#include "hybrid/gpu_graph.hpp"

namespace gp {

inline constexpr char kDirtyMoved = 1;  ///< entry stale: rebuild before use
inline constexpr char kDirtyLazy = 2;   ///< interior shortcut: ed/table exact, id unset

/// Raw-pointer view of the cache for kernel bodies (device code never
/// touches DeviceBuffer wrappers, only the underlying storage).
struct GpuGainCacheView {
  wgt_t*        id = nullptr;
  wgt_t*        ed = nullptr;
  const eid_t*  off = nullptr;  ///< n+1 slab offsets (adjp itself when deg <= k everywhere)
  std::int32_t* cnt = nullptr;  ///< used slots per vertex
  part_t*       slot_part = nullptr;  ///< slab: part ids + 1 (0 = free)
  wgt_t*        slot_wgt = nullptr;   ///< slab: connectivity weights
  char*         dirty = nullptr;

  /// Lock-free connectivity increment for vertex u toward part q.  Reused
  /// slots are found by scan; a fresh part claims a slot with an atomic
  /// counter bump.  Two racing claims for the same part may produce
  /// duplicate slots (readers sum them); a claim past the capacity marks
  /// u dirty instead of writing out of bounds.
  void conn_add(vid_t u, part_t q, wgt_t w) const {
    const eid_t base = off[u];
    const auto  cap = static_cast<std::int32_t>(off[u + 1] - base);
    const std::int32_t seen = std::min(racy_load(cnt[u]), cap);
    for (std::int32_t i = 0; i < seen; ++i) {
      if (racy_load(slot_part[base + i]) == q + 1) {
        atomic_add(slot_wgt[base + i], w);
        return;
      }
    }
    const std::int32_t s = atomic_add(cnt[u], 1);
    if (s >= cap) {
      racy_store(dirty[u], kDirtyMoved);
      return;
    }
    racy_store(slot_part[base + s], static_cast<part_t>(q + 1));
    atomic_add(slot_wgt[base + s], w);
  }

  /// Lock-free connectivity decrement.  Subtracts from the first slot
  /// carrying q (per-part sums stay exact even across duplicates); if no
  /// slot is visible — a racing claim not yet published — u goes dirty.
  void conn_sub(vid_t u, part_t q, wgt_t w) const {
    const eid_t base = off[u];
    const auto  cap = static_cast<std::int32_t>(off[u + 1] - base);
    const std::int32_t seen = std::min(racy_load(cnt[u]), cap);
    for (std::int32_t i = 0; i < seen; ++i) {
      if (racy_load(slot_part[base + i]) == q + 1) {
        atomic_add(slot_wgt[base + i], -w);
        return;
      }
    }
    racy_store(dirty[u], kDirtyMoved);
  }

  /// Delta for neighbour u of a vertex that moved from -> to; `pu` is u's
  /// own (racy-loaded) label.  Exact whenever u is not itself moving this
  /// instant — and if it is, u's committer marks it dirty anyway.  A lazy
  /// vertex only ever receives the pu == from case (all its neighbours
  /// share its part until one leaves, which raises ed and forces the
  /// rebuild), so its unset id is never read before being recomputed.
  void neighbor_delta(vid_t u, part_t pu, part_t from, part_t to,
                      wgt_t w) const {
    if (pu == from) {
      atomic_add(id[u], -w);
      atomic_add(ed[u], w);
      conn_add(u, to, w);
    } else if (pu == to) {
      conn_sub(u, from, w);
      atomic_add(id[u], w);
      atomic_add(ed[u], -w);
    } else {
      conn_sub(u, from, w);
      conn_add(u, to, w);
    }
  }

  /// Owner-exclusive rebuild of v's entry from a full adjacency scan.
  /// Only valid where no launch is concurrently writing v's entry (the
  /// build/projection kernels, or the propose kernel's dirty rebuild —
  /// explore never overlaps those).  The whole capacity range is reset to
  /// free so stale parts from an earlier epoch can never alias a live
  /// part during a later explore-time slot scan.  `conn` is k zeroes on
  /// entry and is restored before returning; `parts` is scratch.  Returns
  /// work units.
  std::uint64_t rebuild_vertex(const eid_t* adjp, const vid_t* adjncy,
                               const wgt_t* adjwgt, const part_t* wh, vid_t v,
                               std::vector<wgt_t>& conn,
                               std::vector<part_t>& parts) const {
    const eid_t lo = adjp[v], hi = adjp[v + 1];
    const part_t pv = racy_load(wh[v]);
    parts.clear();
    wgt_t internal = 0;
    for (eid_t j = lo; j < hi; ++j) {
      const part_t pu = racy_load(wh[adjncy[j]]);
      if (pu == pv) {
        internal += adjwgt[j];
        continue;
      }
      if (conn[static_cast<std::size_t>(pu)] == 0) parts.push_back(pu);
      conn[static_cast<std::size_t>(pu)] += adjwgt[j];
    }
    const eid_t base = off[v];
    const eid_t cap = off[v + 1] - base;
    for (eid_t s = 0; s < cap; ++s) {
      slot_part[base + s] = 0;
      slot_wgt[base + s] = 0;
    }
    std::int32_t used = 0;
    wgt_t external = 0;
    for (const part_t q : parts) {
      slot_part[base + used] = static_cast<part_t>(q + 1);
      slot_wgt[base + used] = conn[static_cast<std::size_t>(q)];
      external += conn[static_cast<std::size_t>(q)];
      conn[static_cast<std::size_t>(q)] = 0;
      ++used;
    }
    cnt[v] = used;
    id[v] = internal;
    ed[v] = external;
    dirty[v] = 0;
    return static_cast<std::uint64_t>(hi - lo) +
           static_cast<std::uint64_t>(cap) + 1;
  }
};

/// The cache's device storage.  Built once on the CPU-handoff graph and
/// projected (not rebuilt) down each uncoarsening level; all buffers come
/// from the device's size-bucketed pool like every other per-level array.
struct GpuGainCache {
  vid_t  n = 0;
  part_t k = 0;
  DeviceBuffer<wgt_t>        id;
  DeviceBuffer<wgt_t>        ed;
  DeviceBuffer<eid_t>        off;
  DeviceBuffer<std::int32_t> cnt;
  DeviceBuffer<part_t>       slot_part;
  DeviceBuffer<wgt_t>        slot_wgt;
  DeviceBuffer<char>         dirty;
  /// When the graph's maximum degree is <= k, every vertex's capacity
  /// min(deg, k) equals its degree and the slab offsets ARE the graph's
  /// adjp — alias it instead of running the capacity kernel + device scan
  /// per level.  Points into the level's GpuGraph, which the driver keeps
  /// alive for the whole uncoarsening walk.
  const eid_t* off_alias = nullptr;

  GpuGainCache() = default;

  [[nodiscard]] GpuGainCacheView view() {
    return {id.data(),
            ed.data(),
            off_alias ? off_alias : off.data(),
            cnt.data(),
            slot_part.data(),
            slot_wgt.data(),
            dirty.data()};
  }

  /// Full build from the device partition labels.  `tag` prefixes the
  /// kernel labels (pass an "uncoarsen/..."-rooted tag so the work lands
  /// in the uncoarsening phase roll-up).
  /// Under GpuScanMode::kLookback the offset construction (capacity
  /// kernel + device scan, when needed) is one fused dispatch.
  [[nodiscard]] static GpuGainCache build(
      Device& dev, const GpuGraph& g, const DeviceBuffer<part_t>& where,
      part_t k, const std::string& tag, std::int64_t n_threads,
      GpuScanMode mode = GpuScanMode::kBlocked);

  /// Projects the coarse level's cache onto the fine graph: a fine vertex
  /// whose coarse parent has exact ed == 0 (not moved-dirty) is provably
  /// interior — it is marked lazy at O(1), its slab entries already free
  /// in the fresh slab; every other vertex gets the full rebuild.
  [[nodiscard]] static GpuGainCache project(
      Device& dev, GpuGainCache& coarse, const GpuGraph& fine,
      const DeviceBuffer<part_t>& where_fine, const DeviceBuffer<vid_t>& cmap,
      const std::string& tag, std::int64_t n_threads,
      GpuScanMode mode = GpuScanMode::kBlocked);

  /// Paranoid cross-check: downloads the cache and compares it against a
  /// fresh host-side recompute over (g, where).  Moved-dirty vertices are
  /// exempt — stale-until-rebuilt is their contract; a lazy vertex with
  /// ed == 0 must genuinely be interior; duplicate slots are summed per
  /// part.  Returns "" on success, else the first mismatch.
  [[nodiscard]] std::string compare_to_host(
      const CsrGraph& g, const std::vector<part_t>& where) const;
};

}  // namespace gp
