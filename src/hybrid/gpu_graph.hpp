// Device-resident CSR graph: the four arrays the paper keeps in GPU global
// memory (adjp, adjncy, adjwgt, vwgt) plus upload/download helpers whose
// transfer bytes feed the cost model (Table II includes transfer time).
#pragma once

#include "core/csr_graph.hpp"
#include "gpu/device_buffer.hpp"

namespace gp {

struct GpuGraph {
  vid_t n = 0;
  eid_t m = 0;  ///< directed arcs
  DeviceBuffer<eid_t> adjp;
  DeviceBuffer<vid_t> adjncy;
  DeviceBuffer<wgt_t> adjwgt;
  DeviceBuffer<wgt_t> vwgt;

  GpuGraph() = default;

  /// Allocates uninitialized device storage of the given shape.
  GpuGraph(Device& dev, vid_t n_, eid_t m_, const std::string& tag)
      : n(n_), m(m_),
        adjp(dev, static_cast<std::size_t>(n_) + 1, tag + "/adjp"),
        adjncy(dev, static_cast<std::size_t>(m_), tag + "/adjncy"),
        adjwgt(dev, static_cast<std::size_t>(m_), tag + "/adjwgt"),
        vwgt(dev, static_cast<std::size_t>(n_), tag + "/vwgt") {}

  [[nodiscard]] static GpuGraph upload(Device& dev, const CsrGraph& g,
                                       const std::string& tag) {
    GpuGraph out(dev, g.num_vertices(), g.num_arcs(), tag);
    out.adjp.h2d(g.adjp());
    out.adjncy.h2d(g.adjncy());
    out.adjwgt.h2d(g.adjwgt());
    out.vwgt.h2d(g.vwgt());
    return out;
  }

  [[nodiscard]] CsrGraph download() const {
    return CsrGraph(adjp.d2h_vector(), adjncy.d2h_vector(),
                    adjwgt.d2h_vector(), vwgt.d2h_vector());
  }

  [[nodiscard]] std::size_t bytes() const {
    return adjp.size() * sizeof(eid_t) + adjncy.size() * sizeof(vid_t) +
           adjwgt.size() * sizeof(wgt_t) + vwgt.size() * sizeof(wgt_t);
  }
};

}  // namespace gp
