#include "hybrid/gpu_matching.hpp"

#include <algorithm>

#include "gpu/device_atomics.hpp"
#include "gpu/scan.hpp"
#include "util/rng.hpp"

namespace gp {

GpuMatchResult gpu_match(Device& dev, const GpuGraph& g, int level,
                         std::uint64_t seed, std::int64_t n_threads,
                         GpuScanMode mode) {
  const vid_t n = g.n;
  const std::string L = "/L" + std::to_string(level);
  GpuMatchResult r;
  r.match = DeviceBuffer<vid_t>(dev, static_cast<std::size_t>(n),
                                "coarsen/match" + L);

  vid_t* match = r.match.data();
  const eid_t* adjp = g.adjp.data();
  const vid_t* adjncy = g.adjncy.data();
  const wgt_t* adjwgt = g.adjwgt.data();

  const std::int64_t T = std::max<std::int64_t>(1, std::min<std::int64_t>(n_threads, n));

  // The stage bodies are shared verbatim by both dispatch modes — fusing
  // changes metering, never results.

  // --- match kernel: thread t owns vertices t, t+T, t+2T, ... so that a
  // warp's threads touch consecutive vertices (memory coalescing, Fig 2).
  auto match_body = [&](std::int64_t t) -> std::uint64_t {
    Rng rng(seed * 0x9E3779B97F4A7C15ULL +
            static_cast<std::uint64_t>(level) * 7919ULL +
            static_cast<std::uint64_t>(t));
    std::uint64_t work = 0;
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      if (racy_load(match[v]) != kInvalidVid) continue;
      const eid_t lo = adjp[v], hi = adjp[v + 1];
      work += static_cast<std::uint64_t>(hi - lo);
      // HEM with a random starting rotation: on uniform edge weights this
      // degrades to the paper's iterative random matching.
      vid_t best = kInvalidVid;
      wgt_t best_w = -1;
      const auto deg = static_cast<std::size_t>(hi - lo);
      const std::size_t rot = deg ? rng.next_below(deg) : 0;
      for (std::size_t j = 0; j < deg; ++j) {
        const eid_t idx = lo + static_cast<eid_t>((j + rot) % deg);
        const vid_t u = adjncy[idx];
        if (racy_load(match[u]) != kInvalidVid) continue;
        if (adjwgt[idx] > best_w) {
          best_w = adjwgt[idx];
          best = u;
        }
      }
      if (best == kInvalidVid) {
        racy_store(match[v], v);
      } else {
        racy_store(match[v], best);
        racy_store(match[best], v);  // races repaired by the next kernel
      }
    }
    return work;
  };

  // --- conflict-resolution kernel (Fig 3): if match(i) = j but
  // match(j) != i, vertex i re-matches to itself and gets another chance
  // at the next coarsening level.
  DeviceBuffer<std::uint64_t> conflict_ctr(dev, 1, "conflicts" + L);
  std::uint64_t* cc = conflict_ctr.data();
  auto resolve_body = [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0, local = 0;
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      ++work;
      const vid_t m = racy_load(match[v]);
      if (m == kInvalidVid) {
        racy_store(match[v], v);
        continue;
      }
      if (m == v) continue;
      if (racy_load(match[m]) != v) {
        racy_store(match[v], v);
        ++local;
      }
    }
    if (local) atomic_add(*cc, local);
    return work;
  };

  r.cmap = DeviceBuffer<vid_t>(dev, static_cast<std::size_t>(n), "cmap" + L);
  vid_t* cm = r.cmap.data();

  // Kernel 4 of the cmap chain (Fig 4): followers gather their leader's
  // label.  Leaders' entries are final once the scan has run (a leader v
  // has v <= match[v], and this body never writes those), so the in-place
  // gather is race-free.
  auto final_body = [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0;
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      if (v > match[v]) cm[v] = cm[match[v]];
      ++work;
    }
    return work;
  };

  if (mode == GpuScanMode::kLookback) {
    // One dispatch for the whole level (DESIGN.md §3.9).  The cmap init /
    // scan / subtract-one triple collapses into a single look-back scan
    // stage: the leader flag is computed in the scan's load transform and
    // the 0-based label (inclusive - 1) in its store transform.
    vid_t n_coarse = 0;
    dev.launch_fused("coarsen/level" + L, [&](Device::Fused& f) {
      f.stage_streamed("fill", n, sizeof(vid_t),
                       [&](std::int64_t v) { match[v] = kInvalidVid; });
      f.stage("match", T, match_body);
      f.stage("resolve", T, resolve_body);
      if (n > 0) {
        n_coarse = lookback_scan_stage<vid_t>(
            dev, f, "cmap_scan", n, sizeof(vid_t),
            [&](std::int64_t v) -> vid_t { return (v <= match[v]) ? 1 : 0; },
            [&](std::int64_t v, vid_t inc, vid_t) { cm[v] = inc - 1; });
      }
      f.stage("cmap_final", T, final_body);
    });
    r.n_coarse = n_coarse;
    r.conflicts = conflict_ctr.d2h_vector()[0];
    return r;
  }

  // --- historical blocked path: one launch per kernel ---
  r.match.fill(kInvalidVid);
  dev.launch("coarsen/match" + L, T, match_body);
  dev.launch("coarsen/resolve" + L, T, resolve_body);
  r.conflicts = conflict_ctr.d2h_vector()[0];

  // --- cmap construction, the paper's four kernels (Fig 4), in place ---

  // Kernel 1: flag leaders.  Streams match and cm with consecutive
  // threads on consecutive vertices: transaction-granular charge.
  dev.launch("coarsen/cmap/init" + L, T, [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0;
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      cm[v] = (v <= match[v]) ? 1 : 0;
      ++work;
    }
    return (work * sizeof(vid_t) + 127) / 128;
  });

  // Kernel 2: device-wide inclusive scan (the CUB call in the paper).
  // The last element is the number of coarse vertices.
  r.n_coarse = (n > 0) ? device_inclusive_scan(dev, r.cmap,
                                               "coarsen/cmap/scan" + L)
                       : 0;

  // Kernel 3: subtract one from every entry (pure streaming sweep).
  dev.launch("coarsen/cmap/sub" + L, T, [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0;
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      cm[v] -= 1;
      ++work;
    }
    return (work * sizeof(vid_t) + 127) / 128;
  });

  dev.launch("coarsen/cmap/final" + L, T, final_body);

  return r;
}

}  // namespace gp
