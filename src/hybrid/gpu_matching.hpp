// GPU coarsening kernels of GP-metis (paper Section III-A):
//
//   match kernel     — lock-free HEM/RM over the shared match array
//                      (coalescing-friendly strided vertex ownership)
//   resolve kernel   — repairs round-1 conflicts (Fig. 3)
//   4-kernel cmap    — flag init, CUB-style inclusive scan, subtract-one,
//                      follower gather (Fig. 4), all in place
#pragma once

#include <cstdint>

#include "hybrid/gpu_graph.hpp"

namespace gp {

struct GpuMatchResult {
  DeviceBuffer<vid_t> match;  ///< device-resident; valid involution
  DeviceBuffer<vid_t> cmap;   ///< device-resident coarse labels
  vid_t n_coarse = 0;
  std::uint64_t conflicts = 0;  ///< vertices self-matched by the resolver
};

/// Runs the matching + conflict-resolution + cmap pipeline on the device.
/// `n_threads` is the logical launch width (the paper shrinks it level by
/// level as the graph gets smaller).
///
/// Under GpuScanMode::kLookback the whole level is ONE fused dispatch
/// (fill, match, resolve, single-pass flag scan producing cmap directly,
/// follower gather); under kBlocked it is the historical 8-launch chain.
/// Both produce byte-identical results — the stage bodies are the same
/// code, and the flag scan is an exact integer prefix sum.
[[nodiscard]] GpuMatchResult gpu_match(Device& dev, const GpuGraph& g,
                                       int level, std::uint64_t seed,
                                       std::int64_t n_threads,
                                       GpuScanMode mode = GpuScanMode::kBlocked);

}  // namespace gp
