#include "hybrid/gpu_refine.hpp"

#include <algorithm>
#include <limits>

#include "gpu/device_atomics.hpp"

namespace gp {

void gpu_project(Device& dev, const DeviceBuffer<vid_t>& cmap,
                 const DeviceBuffer<part_t>& where_coarse,
                 DeviceBuffer<part_t>& where_fine, int level,
                 std::int64_t n_threads) {
  const auto n = static_cast<vid_t>(cmap.size());
  const vid_t* cm = cmap.data();
  const part_t* wc = where_coarse.data();
  part_t* wf = where_fine.data();
  const std::int64_t T =
      std::max<std::int64_t>(1, std::min<std::int64_t>(n_threads, n));
  dev.launch("uncoarsen/project/L" + std::to_string(level), T,
             [&](std::int64_t t) -> std::uint64_t {
               std::uint64_t work = 0;
               for (vid_t v = static_cast<vid_t>(t); v < n;
                    v += static_cast<vid_t>(T)) {
                 wf[v] = wc[cm[v]];
                 ++work;
               }
               return work;
             });
}

namespace {

struct GpuMoveRequest {
  vid_t  v;
  part_t from;
  wgt_t  gain;
  wgt_t  vw;
};

}  // namespace

GpuRefineStats gpu_refine(Device& dev, const GpuGraph& g,
                          DeviceBuffer<part_t>& where, part_t k, double eps,
                          int max_passes, int level, std::int64_t n_threads,
                          GpuGainCache* cache, DeviceBuffer<wgt_t>* pw_io,
                          GpuScanMode mode) {
  GpuRefineStats stats;
  const vid_t n = g.n;
  const std::string L = "/L" + std::to_string(level);
  const eid_t* adjp = g.adjp.data();
  const vid_t* adjncy = g.adjncy.data();
  const wgt_t* adjwgt = g.adjwgt.data();
  const wgt_t* vwgt = g.vwgt.data();
  part_t* wh = where.data();

  const std::int64_t T =
      std::max<std::int64_t>(1, std::min<std::int64_t>(n_threads, n));

  // Gain cache: the propose kernel reads per-vertex connectivity from it
  // instead of rescanning neighbourhoods; the explore kernel keeps it
  // exact-or-dirty with atomic deltas.  The driver normally passes the
  // cache it carries across levels; a null cache is built here.
  GpuGainCache local_cache;
  if (cache == nullptr) {
    local_cache = GpuGainCache::build(dev, g, where, k,
                                      "uncoarsen/gaincache" + L, T, mode);
    cache = &local_cache;
  }
  const GpuGainCacheView cv = cache->view();

  // Partition weights live on the device across passes — and, when the
  // driver passes `pw_io`, across levels: projection maps every fine
  // vertex to its parent's part, so per-part weight sums are invariant at
  // level transitions and the per-level recount kernel is redundant.
  DeviceBuffer<wgt_t> pw_local;
  DeviceBuffer<wgt_t>& pw = pw_io ? *pw_io : pw_local;
  const bool need_weights = pw.size() != static_cast<std::size_t>(k);
  if (need_weights) {
    // Fresh pool buffers are zero-filled; no fill kernel needed.
    pw = DeviceBuffer<wgt_t>(dev, static_cast<std::size_t>(k), "pw" + L);
  }
  wgt_t* pwd = pw.data();
  auto weights_body = [&](std::int64_t t) -> std::uint64_t {
    std::uint64_t work = 0;
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      atomic_add(pwd[wh[v]], vwgt[v]);
      ++work;
    }
    return work;
  };

  // Balance bounds, fixed by one d2h of the k part weights (tiny) after
  // the weights kernel has run; the kernel bodies capture by reference.
  wgt_t max_pw = 0, min_pw = 0;
  auto fix_bounds = [&] {
    wgt_t total = 0;
    for (const auto w : pw.d2h_vector()) total += w;
    max_pw = max_part_weight(total, k, eps);
    min_pw = min_part_weight(total, k, eps);
  };

  // Request buffers: one per partition, fixed capacity, an atomic size
  // counter per buffer (paper: "each buffer has a counter S ... a thread
  // atomically increments the counter S by one" so threads write to
  // exclusive slots without locks).
  const std::int64_t cap = std::max<std::int64_t>(
      64, (2 * static_cast<std::int64_t>(n)) / std::max<part_t>(1, k));
  DeviceBuffer<GpuMoveRequest> buffers(
      dev, static_cast<std::size_t>(cap) * static_cast<std::size_t>(k),
      "reqbuf" + L);
  // All counter buffers arrive zero-filled from the pool; the explore
  // kernel resets S[q] after draining buffer q (it owns it exclusively),
  // so no per-pass fill launches are needed at all.  Commit counts are a
  // per-partition array each explore thread overwrites, read back once
  // per pass for the early-exit check.
  DeviceBuffer<int> counters(dev, static_cast<std::size_t>(k), "S" + L);
  DeviceBuffer<int> committed_arr(dev, static_cast<std::size_t>(k),
                                  "committed" + L);
  // dropped/proposed accumulate across passes on the device and are read
  // back once at the end.
  DeviceBuffer<int> dropped_ctr(dev, 1, "dropped" + L);
  DeviceBuffer<int> proposed_ctr(dev, 1, "proposed" + L);
  GpuMoveRequest* buf = buffers.data();
  int* S = counters.data();
  int* com = committed_arr.data();
  int* pc = proposed_ctr.data();

  // --- boundary kernel: evaluate each owned vertex from its cache
  // entry (rebuilding it first when a commit left it dirty) and append
  // a request to the destination partition's buffer.  A vertex with
  // ed == 0 is interior — it cannot produce a request, and the explore
  // kernel's deltas raise its ed the moment a neighbour's move makes it
  // boundary again, so skipping it yields the exact proposal stream of
  // a full scan.  The skip itself is a warp-coalesced streaming read of
  // the ed array (consecutive logical threads read consecutive words),
  // so it is charged per 128-byte transaction — 16 vertices per work
  // unit — not per vertex like the data-dependent adjacency gathers. ---
  auto propose_body = [&](std::int64_t t, bool upward,
                          int* dc) -> std::uint64_t {
    std::uint64_t work = 0;
    // Per-executor scratch (a real kernel would keep this in
    // registers/local memory).  `conn` and `mark` are restored to
    // all-zero after every vertex, so across logical threads and
    // launches they only need growing, never re-zeroing.
    thread_local std::vector<wgt_t> conn;
    thread_local std::vector<char> mark;
    thread_local std::vector<part_t> parts;
    if (conn.size() < static_cast<std::size_t>(k)) {
      conn.assign(static_cast<std::size_t>(k), 0);
    }
    if (mark.size() < static_cast<std::size_t>(k)) {
      mark.assign(static_cast<std::size_t>(k), 0);
    }
    std::uint64_t skipped = 0;
    for (vid_t v = static_cast<vid_t>(t); v < n; v += static_cast<vid_t>(T)) {
      const char dv = cv.dirty[v];
      if (dv == kDirtyMoved || (dv == kDirtyLazy && cv.ed[v] != 0)) {
        // Owner-exclusive: this logical thread is the only one
        // touching v in this launch, and explore is not running.
        // A lazy vertex with ed still 0 stays lazy — its skip below
        // is exact without materialising id.
        work += cv.rebuild_vertex(adjp, adjncy, adjwgt, wh, v, conn, parts);
      }
      if (cv.ed[v] == 0) {
        ++skipped;
        continue;
      }
      const part_t pv = racy_load(wh[v]);
      // Gather the slots (summing the duplicates racing claims can
      // leave) into the dense scratch.
      const eid_t base = cv.off[v];
      const std::int32_t used = cv.cnt[v];
      parts.clear();
      for (std::int32_t i = 0; i < used; ++i) {
        const part_t qp1 = cv.slot_part[base + i];
        if (qp1 <= 0) continue;  // free slot
        const part_t q = static_cast<part_t>(qp1 - 1);
        if (!mark[static_cast<std::size_t>(q)]) {
          mark[static_cast<std::size_t>(q)] = 1;
          parts.push_back(q);
        }
        conn[static_cast<std::size_t>(q)] += cv.slot_wgt[base + i];
      }
      work += static_cast<std::uint64_t>(used) + 1;
      const bool overweight = racy_load(pwd[pv]) > max_pw;
      const wgt_t internal = cv.id[v];
      part_t best = kInvalidPart;
      wgt_t best_conn = overweight ? std::numeric_limits<wgt_t>::min()
                                   : internal;
      int tied = 0;
      for (const part_t q : parts) {
        const wgt_t cq = conn[static_cast<std::size_t>(q)];
        if (cq <= 0) continue;
        if (upward ? (q <= pv) : (q >= pv)) continue;
        if (cq > best_conn) {
          best_conn = cq;
          best = q;
          tied = 1;
        } else if (best != kInvalidPart && cq == best_conn) {
          ++tied;
        }
      }
      if (best != kInvalidPart && tied > 1) {
        // Tie: replicate the historical scan-order rule — the full
        // scan registered (and therefore selected) the tied part of
        // the earliest foreign neighbour.  Early-exits there.
        for (eid_t j = adjp[v]; j < adjp[v + 1]; ++j) {
          ++work;
          const part_t pu = racy_load(wh[adjncy[j]]);
          if (pu == pv) continue;
          if (conn[static_cast<std::size_t>(pu)] != best_conn) continue;
          if (upward ? (pu <= pv) : (pu >= pv)) continue;
          best = pu;
          break;
        }
      }
      for (const part_t q : parts) {
        conn[static_cast<std::size_t>(q)] = 0;
        mark[static_cast<std::size_t>(q)] = 0;
      }
      if (best == kInvalidPart) continue;
      // Pre-check the destination bound (the explore kernel decides
      // finally, but hopeless requests waste buffer slots).
      if (racy_load(pwd[best]) + vwgt[v] > max_pw) continue;
      atomic_add(*pc, 1);
      const int slot = atomic_add(S[best], 1);
      if (slot >= cap) {
        atomic_add(*dc, 1);
        continue;  // buffer full: drop (counted)
      }
      buf[static_cast<std::int64_t>(best) * cap + slot] = {
          v, pv, best_conn - internal, vwgt[v]};
    }
    return work + (skipped + 15) / 16;
  };

  // --- explore kernel: one logical thread per partition commits its
  // incoming requests by descending gain under the balance bounds ---
  auto explore_body = [&](std::int64_t q) -> std::uint64_t {
    const int cnt = std::min<int>(S[q], static_cast<int>(cap));
    GpuMoveRequest* my = buf + q * cap;
    std::sort(my, my + cnt,
              [](const GpuMoveRequest& a, const GpuMoveRequest& b) {
                return a.gain > b.gain;
              });
    std::uint64_t work = static_cast<std::uint64_t>(cnt), nc = 0;
    for (int i = 0; i < cnt; ++i) {
      const auto& rq = my[i];
      // Destination grows only in this thread: plain bound check.
      if (pwd[q] + rq.vw > max_pw) continue;
      // Source shrinks concurrently (other explore threads drain
      // it too): CAS reservation.
      std::atomic_ref<wgt_t> src(pwd[rq.from]);
      wgt_t cur = src.load(std::memory_order_relaxed);
      bool ok = false;
      while (cur - rq.vw >= min_pw) {
        if (src.compare_exchange_weak(cur, cur - rq.vw,
                                      std::memory_order_relaxed)) {
          ok = true;
          break;
        }
      }
      if (!ok) continue;
      atomic_add(pwd[q], rq.vw);
      racy_store(wh[rq.v], static_cast<part_t>(q));
      // Cache maintenance: the moved vertex's own entry cannot be
      // delta-updated race-free — flag it for rebuild; every
      // neighbour gets an O(1) atomic delta (same O(deg) total the
      // old re-activation sweep charged, but the next propose pass
      // reads gains instead of rescanning).
      racy_store(cv.dirty[rq.v], kDirtyMoved);
      const eid_t mlo = adjp[rq.v], mhi = adjp[rq.v + 1];
      work += static_cast<std::uint64_t>(mhi - mlo);
      for (eid_t j = mlo; j < mhi; ++j) {
        const vid_t u = adjncy[j];
        cv.neighbor_delta(u, racy_load(wh[u]), rq.from,
                          static_cast<part_t>(q), adjwgt[j]);
      }
      ++nc;
    }
    // This thread owns buffer q and its counters: publish the pass's
    // commit count and reset S for the next propose pass, so neither
    // needs a separate fill launch.
    com[q] = static_cast<int>(nc);
    racy_store(S[q], 0);
    return work;
  };

  // Stretch the pass budget (up to 8x) while a part is still overweight;
  // the check costs one tiny D2H per extension round, as a real
  // implementation would pay.
  auto max_pw_violated = [&] {
    for (const wgt_t w : pw.d2h_vector()) {
      if (w > max_pw) return true;
    }
    return false;
  };

  // The alternating propose/commit loop; `run_propose` / `run_explore`
  // issue the two sweeps either as standalone launches (blocked) or as
  // stages of one fused dispatch (lookback).  The per-pass d2h of the
  // commit counts — exactly what a CUDA implementation would pay for its
  // early-exit read-back — stays in both modes.
  auto pass_loop = [&](auto&& run_propose, auto&& run_explore) {
    int idle_passes = 0;
    for (int pass = 0;
         pass < max_passes || (pass < 8 * max_passes && max_pw_violated());
         ++pass) {
      ++stats.passes;
      const bool upward = (pass % 2 == 0);
      int* dc = dropped_ctr.data();
      run_propose(pass, upward, dc);
      run_explore(pass);
      int committed = 0;
      for (const int c : committed_arr.d2h_vector()) committed += c;
      stats.committed += static_cast<std::uint64_t>(committed);
      // Both alternating directions must go idle before stopping (an
      // overweight part may only have admissible moves one way).
      idle_passes = (committed == 0) ? idle_passes + 1 : 0;
      if (idle_passes >= 2) break;
    }
  };

  if (mode == GpuScanMode::kLookback) {
    // The whole refinement — weights recount (when needed) plus every
    // propose/explore pass — is ONE persistent-kernel-style dispatch
    // (DESIGN.md §3.9); each pass still pays its honest bandwidth and
    // read-back transfer.
    dev.launch_fused("uncoarsen/refine" + L, [&](Device::Fused& f) {
      if (need_weights) f.stage("weights", T, weights_body);
      fix_bounds();
      pass_loop(
          [&](int pass, bool upward, int* dc) {
            f.stage("p" + std::to_string(pass) + "/propose", T,
                    [&](std::int64_t t) { return propose_body(t, upward, dc); });
          },
          [&](int pass) {
            f.stage("p" + std::to_string(pass) + "/explore", k, explore_body);
          });
    });
  } else {
    if (need_weights) {
      dev.launch("uncoarsen/refine/weights" + L, T, weights_body);
    }
    fix_bounds();
    pass_loop(
        [&](int pass, bool upward, int* dc) {
          dev.launch("uncoarsen/refine/propose" + L + "/p" +
                         std::to_string(pass),
                     T, [&](std::int64_t t) { return propose_body(t, upward, dc); });
        },
        [&](int pass) {
          dev.launch("uncoarsen/refine/explore" + L + "/p" +
                         std::to_string(pass),
                     k, explore_body);
        });
  }
  stats.dropped_full_buffer =
      static_cast<std::uint64_t>(dropped_ctr.d2h_vector()[0]);
  stats.proposed = static_cast<std::uint64_t>(proposed_ctr.d2h_vector()[0]);
  return stats;
}

}  // namespace gp
