#include "hybrid/gpu_refine.hpp"

#include <algorithm>
#include <limits>

#include "gpu/device_atomics.hpp"

namespace gp {

void gpu_project(Device& dev, const DeviceBuffer<vid_t>& cmap,
                 const DeviceBuffer<part_t>& where_coarse,
                 DeviceBuffer<part_t>& where_fine, int level,
                 std::int64_t n_threads) {
  const auto n = static_cast<vid_t>(cmap.size());
  const vid_t* cm = cmap.data();
  const part_t* wc = where_coarse.data();
  part_t* wf = where_fine.data();
  const std::int64_t T =
      std::max<std::int64_t>(1, std::min<std::int64_t>(n_threads, n));
  dev.launch("uncoarsen/project/L" + std::to_string(level), T,
             [&](std::int64_t t) -> std::uint64_t {
               std::uint64_t work = 0;
               for (vid_t v = static_cast<vid_t>(t); v < n;
                    v += static_cast<vid_t>(T)) {
                 wf[v] = wc[cm[v]];
                 ++work;
               }
               return work;
             });
}

namespace {

struct GpuMoveRequest {
  vid_t  v;
  part_t from;
  wgt_t  gain;
  wgt_t  vw;
};

}  // namespace

GpuRefineStats gpu_refine(Device& dev, const GpuGraph& g,
                          DeviceBuffer<part_t>& where, part_t k, double eps,
                          int max_passes, int level, std::int64_t n_threads) {
  GpuRefineStats stats;
  const vid_t n = g.n;
  const std::string L = "/L" + std::to_string(level);
  const eid_t* adjp = g.adjp.data();
  const vid_t* adjncy = g.adjncy.data();
  const wgt_t* adjwgt = g.adjwgt.data();
  const wgt_t* vwgt = g.vwgt.data();
  part_t* wh = where.data();

  const std::int64_t T =
      std::max<std::int64_t>(1, std::min<std::int64_t>(n_threads, n));

  // Partition weights live on the device across passes.
  DeviceBuffer<wgt_t> pw(dev, static_cast<std::size_t>(k), "pw" + L);
  pw.fill(0);
  wgt_t* pwd = pw.data();
  dev.launch("uncoarsen/refine/weights" + L, T,
             [&](std::int64_t t) -> std::uint64_t {
               std::uint64_t work = 0;
               for (vid_t v = static_cast<vid_t>(t); v < n;
                    v += static_cast<vid_t>(T)) {
                 atomic_add(pwd[wh[v]], vwgt[v]);
                 ++work;
               }
               return work;
             });

  wgt_t total = 0;
  {
    // One d2h of the k part weights (tiny) to fix the bounds.
    const auto host_pw = pw.d2h_vector();
    for (const auto w : host_pw) total += w;
  }
  const wgt_t max_pw = max_part_weight(total, k, eps);
  const wgt_t min_pw = min_part_weight(total, k, eps);

  // Request buffers: one per partition, fixed capacity, an atomic size
  // counter per buffer (paper: "each buffer has a counter S ... a thread
  // atomically increments the counter S by one" so threads write to
  // exclusive slots without locks).
  const std::int64_t cap = std::max<std::int64_t>(
      64, (2 * static_cast<std::int64_t>(n)) / std::max<part_t>(1, k));
  DeviceBuffer<GpuMoveRequest> buffers(
      dev, static_cast<std::size_t>(cap) * static_cast<std::size_t>(k),
      "reqbuf" + L);
  DeviceBuffer<int> counters(dev, static_cast<std::size_t>(k), "S" + L);
  DeviceBuffer<int> committed_ctr(dev, 1, "committed" + L);
  // dropped/proposed accumulate across passes on the device and are read
  // back once at the end.
  DeviceBuffer<int> dropped_ctr(dev, 1, "dropped" + L);
  DeviceBuffer<int> proposed_ctr(dev, 1, "proposed" + L);
  dropped_ctr.fill(0);
  proposed_ctr.fill(0);
  GpuMoveRequest* buf = buffers.data();
  int* S = counters.data();
  int* pc = proposed_ctr.data();

  // Active-vertex flags (boundary tracking).  A vertex with no external
  // neighbour can never produce a request (its `parts` list stays empty),
  // and `where` only changes in the explore kernel, which re-activates the
  // moved vertex and its neighbourhood.  The flag set therefore always
  // covers the true boundary, and skipping unflagged vertices yields the
  // exact proposal stream of a full scan — passes after the first touch
  // only the cut region instead of all n vertices.
  DeviceBuffer<char> active(dev, static_cast<std::size_t>(n), "active" + L);
  active.fill(1);
  char* act = active.data();

  // Stretch the pass budget (up to 8x) while a part is still overweight;
  // the check costs one tiny D2H per extension round, as a real
  // implementation would pay.
  auto max_pw_violated = [&] {
    for (const wgt_t w : pw.d2h_vector()) {
      if (w > max_pw) return true;
    }
    return false;
  };
  int idle_passes = 0;
  for (int pass = 0;
       pass < max_passes || (pass < 8 * max_passes && max_pw_violated());
       ++pass) {
    ++stats.passes;
    const bool upward = (pass % 2 == 0);
    counters.fill(0);
    committed_ctr.fill(0);
    int* cc = committed_ctr.data();
    int* dc = dropped_ctr.data();

    // --- boundary kernel: find best destination per owned vertex and
    // append a request to the destination partition's buffer ---
    dev.launch(
        "uncoarsen/refine/propose" + L + "/p" + std::to_string(pass), T,
        [&](std::int64_t t) -> std::uint64_t {
          std::uint64_t work = 0;
          // Per-executor scratch (a real kernel would keep this in
          // registers/local memory).  `conn` is restored to all-zero after
          // every vertex via `parts`, so across logical threads and
          // launches it only needs growing, never re-zeroing.
          thread_local std::vector<wgt_t> conn;
          thread_local std::vector<part_t> parts;
          if (conn.size() < static_cast<std::size_t>(k)) {
            conn.assign(static_cast<std::size_t>(k), 0);
          }
          for (vid_t v = static_cast<vid_t>(t); v < n;
               v += static_cast<vid_t>(T)) {
            if (!act[v]) {
              ++work;
              continue;
            }
            const part_t pv = racy_load(wh[v]);
            const eid_t lo = adjp[v], hi = adjp[v + 1];
            work += static_cast<std::uint64_t>(hi - lo) + 1;
            parts.clear();
            wgt_t internal = 0;
            for (eid_t j = lo; j < hi; ++j) {
              const part_t pu = racy_load(wh[adjncy[j]]);
              if (pu == pv) {
                internal += adjwgt[j];
                continue;
              }
              if (conn[static_cast<std::size_t>(pu)] == 0) parts.push_back(pu);
              conn[static_cast<std::size_t>(pu)] += adjwgt[j];
            }
            // Refresh the flag from this scan: only the owning logical
            // thread writes it, so a plain store suffices here.
            act[v] = parts.empty() ? 0 : 1;
            const bool overweight = racy_load(pwd[pv]) > max_pw;
            part_t best = kInvalidPart;
            wgt_t best_conn = overweight
                                  ? std::numeric_limits<wgt_t>::min()
                                  : internal;
            for (const part_t q : parts) {
              if (upward ? (q <= pv) : (q >= pv)) continue;
              if (conn[static_cast<std::size_t>(q)] > best_conn) {
                best_conn = conn[static_cast<std::size_t>(q)];
                best = q;
              }
            }
            for (const part_t q : parts) conn[static_cast<std::size_t>(q)] = 0;
            if (best == kInvalidPart) continue;
            // Pre-check the destination bound (the explore kernel decides
            // finally, but hopeless requests waste buffer slots).
            if (racy_load(pwd[best]) + vwgt[v] > max_pw) continue;
            atomic_add(*pc, 1);
            const int slot = atomic_add(S[best], 1);
            if (slot >= cap) {
              atomic_add(*dc, 1);
              continue;  // buffer full: drop (counted)
            }
            buf[static_cast<std::int64_t>(best) * cap + slot] = {
                v, pv, best_conn - internal, vwgt[v]};
          }
          return work;
        });

    // --- explore kernel: one logical thread per partition commits its
    // incoming requests by descending gain under the balance bounds ---
    dev.launch(
        "uncoarsen/refine/explore" + L + "/p" + std::to_string(pass), k,
        [&](std::int64_t q) -> std::uint64_t {
          const int cnt = std::min<int>(S[q], static_cast<int>(cap));
          GpuMoveRequest* my = buf + q * cap;
          std::sort(my, my + cnt,
                    [](const GpuMoveRequest& a, const GpuMoveRequest& b) {
                      return a.gain > b.gain;
                    });
          std::uint64_t work = static_cast<std::uint64_t>(cnt), nc = 0;
          for (int i = 0; i < cnt; ++i) {
            const auto& rq = my[i];
            // Destination grows only in this thread: plain bound check.
            if (pwd[q] + rq.vw > max_pw) continue;
            // Source shrinks concurrently (other explore threads drain
            // it too): CAS reservation.
            std::atomic_ref<wgt_t> src(pwd[rq.from]);
            wgt_t cur = src.load(std::memory_order_relaxed);
            bool ok = false;
            while (cur - rq.vw >= min_pw) {
              if (src.compare_exchange_weak(cur, cur - rq.vw,
                                            std::memory_order_relaxed)) {
                ok = true;
                break;
              }
            }
            if (!ok) continue;
            atomic_add(pwd[q], rq.vw);
            racy_store(wh[rq.v], static_cast<part_t>(q));
            // Re-activate the moved vertex and its neighbourhood so the
            // next propose pass rescans exactly the changed region.
            racy_store(act[rq.v], static_cast<char>(1));
            const eid_t mlo = adjp[rq.v], mhi = adjp[rq.v + 1];
            work += static_cast<std::uint64_t>(mhi - mlo);
            for (eid_t j = mlo; j < mhi; ++j) {
              racy_store(act[adjncy[j]], static_cast<char>(1));
            }
            ++nc;
          }
          if (nc) atomic_add(*cc, static_cast<int>(nc));
          return work;
        });

    // Early-exit check requires reading the commit counter back (one tiny
    // D2H per pass, exactly what a CUDA implementation would do; the
    // other statistics counters are read once after the final pass).
    const int committed = committed_ctr.d2h_vector()[0];
    stats.committed += static_cast<std::uint64_t>(committed);
    // Both alternating directions must go idle before stopping (an
    // overweight part may only have admissible moves one way).
    idle_passes = (committed == 0) ? idle_passes + 1 : 0;
    if (idle_passes >= 2) break;
  }
  stats.dropped_full_buffer =
      static_cast<std::uint64_t>(dropped_ctr.d2h_vector()[0]);
  stats.proposed = static_cast<std::uint64_t>(proposed_ctr.d2h_vector()[0]);
  return stats;
}

}  // namespace gp
