// GPU uncoarsening kernels of GP-metis (paper Sections III-C):
//
//   projection kernel — coarse partition labels fan out through cmap
//   refinement        — lock-free: a boundary kernel finds each vertex's
//                       best destination under the one-direction ordering
//                       rule and appends a request to the destination
//                       partition's buffer via an atomically incremented
//                       counter; an explore kernel (one thread per
//                       partition) sorts requests by gain and commits the
//                       moves that keep the balance constraint.
#pragma once

#include <cstdint>

#include "core/partition.hpp"
#include "hybrid/gpu_graph.hpp"

namespace gp {

/// where_fine[v] = where_coarse[cmap[v]] on the device.
void gpu_project(Device& dev, const DeviceBuffer<vid_t>& cmap,
                 const DeviceBuffer<part_t>& where_coarse,
                 DeviceBuffer<part_t>& where_fine, int level,
                 std::int64_t n_threads);

struct GpuRefineStats {
  std::uint64_t proposed = 0;
  std::uint64_t committed = 0;
  std::uint64_t dropped_full_buffer = 0;
  int passes = 0;
};

/// In-place lock-free buffered refinement of the device partition.
GpuRefineStats gpu_refine(Device& dev, const GpuGraph& g,
                          DeviceBuffer<part_t>& where, part_t k, double eps,
                          int max_passes, int level, std::int64_t n_threads);

}  // namespace gp
