// GPU uncoarsening kernels of GP-metis (paper Sections III-C):
//
//   projection kernel — coarse partition labels fan out through cmap
//   refinement        — lock-free: a boundary kernel reads each vertex's
//                       connectivity from the device-resident gain cache
//                       (DESIGN.md §3.6), finds its best destination under
//                       the one-direction ordering rule, and appends a
//                       request to the destination partition's buffer via
//                       an atomically incremented counter; an explore
//                       kernel (one thread per partition) sorts requests
//                       by gain, commits the moves that keep the balance
//                       constraint, and pushes O(deg) cache deltas per
//                       committed move instead of re-activating the
//                       neighbourhood for a full rescan.
#pragma once

#include <cstdint>

#include "core/partition.hpp"
#include "hybrid/gpu_gain_cache.hpp"
#include "hybrid/gpu_graph.hpp"

namespace gp {

/// where_fine[v] = where_coarse[cmap[v]] on the device.
void gpu_project(Device& dev, const DeviceBuffer<vid_t>& cmap,
                 const DeviceBuffer<part_t>& where_coarse,
                 DeviceBuffer<part_t>& where_fine, int level,
                 std::int64_t n_threads);

struct GpuRefineStats {
  std::uint64_t proposed = 0;
  std::uint64_t committed = 0;
  std::uint64_t dropped_full_buffer = 0;
  int passes = 0;
};

/// In-place lock-free buffered refinement of the device partition.
/// `cache`, when non-null, must be exact-or-dirty against `where` on
/// entry (see gpu_gain_cache.hpp); the explore kernel's deltas keep it
/// that way so the driver can project it to the next level.  When null a
/// cache is built here for the duration of the call.
///
/// `pw_io`, when non-null, carries the k partition weights across levels:
/// if it already holds k entries they are trusted (projection preserves
/// per-part weights exactly, and the explore kernel keeps them current),
/// otherwise it is filled by the weights kernel here and handed back.
///
/// Under GpuScanMode::kLookback the whole call — weights recount plus
/// every propose/explore pass — is metered as ONE persistent-kernel-style
/// fused dispatch (DESIGN.md §3.9); under kBlocked each pass is two
/// launches as before.  Results are byte-identical.
GpuRefineStats gpu_refine(Device& dev, const GpuGraph& g,
                          DeviceBuffer<part_t>& where, part_t k, double eps,
                          int max_passes, int level, std::int64_t n_threads,
                          GpuGainCache* cache = nullptr,
                          DeviceBuffer<wgt_t>* pw_io = nullptr,
                          GpuScanMode mode = GpuScanMode::kBlocked);

}  // namespace gp
