#include "hybrid/multi_gpu_partitioner.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "core/audit.hpp"
#include "gpu/device_atomics.hpp"
#include "gpu/device_buffer.hpp"
#include "gpu/scan.hpp"
#include "mt/mt_partitioner.hpp"
#include "serial/metis_partitioner.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gp {

namespace {

/// One device's share of a level: local vertices are the contiguous
/// global-id block [begin, end); adjncy stores GLOBAL ids (halo arcs point
/// outside the block).  The host keeps a mirror of the arrays it needs to
/// build halo tables; the device holds the working copies.
struct DeviceShard {
  vid_t begin = 0, end = 0;  ///< global id range of local vertices

  // Device-resident level graph (adjncy in global ids).
  DeviceBuffer<eid_t> adjp;
  DeviceBuffer<vid_t> adjncy;
  DeviceBuffer<wgt_t> adjwgt;
  DeviceBuffer<wgt_t> vwgt;

  // Host mirror of the same arrays (used to compute halo tables and to
  // merge the final coarse graph without re-downloading).
  std::vector<eid_t> h_adjp;
  std::vector<vid_t> h_adjncy;
  std::vector<wgt_t> h_adjwgt;
  std::vector<wgt_t> h_vwgt;

  [[nodiscard]] vid_t local_n() const { return end - begin; }
};

/// Per-level per-device coarsening artifacts kept for uncoarsening.
struct ShardLevel {
  std::vector<DeviceShard> shards;          ///< fine shards of this level
  std::vector<std::vector<vid_t>> cmaps;    ///< per device: local fine -> GLOBAL coarse
  std::vector<vid_t> fine_vtxdist;
};

/// Sorted halo translation table uploaded to a device for one level:
/// ids[] (sorted unique global ids outside the local block) and vals[]
/// (their translation).  Kernels translate by binary search — the way
/// real distributed-GPU codes resolve ghost ids.
struct HaloTable {
  DeviceBuffer<vid_t> ids;
  DeviceBuffer<vid_t> vals;
  std::size_t size = 0;
};

/// Builds the sorted unique halo-id list of a shard from its host mirror.
std::vector<vid_t> halo_ids_of(const DeviceShard& s) {
  std::vector<vid_t> halo;
  for (const vid_t u : s.h_adjncy) {
    if (u < s.begin || u >= s.end) halo.push_back(u);
  }
  std::sort(halo.begin(), halo.end());
  halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
  return halo;
}

/// Charges the main ledger with the max over the per-device ledger deltas
/// (devices run concurrently, so a stage costs its slowest device).
class ConcurrentStage {
 public:
  ConcurrentStage(CostLedger& main, std::vector<CostLedger>& dev_ledgers,
                  std::string label)
      : main_(main), devs_(dev_ledgers), label_(std::move(label)) {
    before_.reserve(devs_.size());
    for (const auto& l : devs_) before_.push_back(l.total_seconds());
  }
  ~ConcurrentStage() {
    double mx = 0;
    for (std::size_t i = 0; i < devs_.size(); ++i) {
      mx = std::max(mx, devs_[i].total_seconds() - before_[i]);
    }
    main_.charge_raw(label_, mx);
  }

  ConcurrentStage(const ConcurrentStage&) = delete;
  ConcurrentStage& operator=(const ConcurrentStage&) = delete;

 private:
  CostLedger& main_;
  std::vector<CostLedger>& devs_;
  std::string label_;
  std::vector<double> before_;
};

struct HostMoveRequest {
  vid_t  v;
  part_t from, to;
  wgt_t  gain;
};

/// Modeled cost of tearing down and re-establishing the device contexts
/// after a fault, before the vertex blocks are redistributed.
constexpr double kDeviceResetSeconds = 2e-3;

/// Bounded OOM retries (each raises the CPU handoff) before the run
/// degrades to a pure mt-metis fallback.
constexpr int kMaxOomRetries = 2;

/// One full multi-device attempt over the surviving physical devices
/// listed in `phys`.  Throws DeviceOutOfMemory / DeviceFailure (tagged
/// with the physical device id); the driver below owns the
/// redistribution / retry / fallback policy.
void multi_gpu_attempt(const CsrGraph& g, const PartitionOptions& opts,
                       MultiGpuLog* log, const std::vector<int>& phys,
                       vid_t handoff, FaultInjector* injector,
                       const Watchdog& watchdog, PartitionResult& res) {
  const int D = static_cast<int>(phys.size());
  const AuditLevel audit = opts.audit_level;
  // Tallies the audit and, on failure, logs + throws for the driver's
  // retry ladder (the distributed shard state has no cheaper recovery
  // unit than the attempt).
  auto require_audit = [&](AuditFailure f) {
    ++res.health.audits_run;
    if (f.ok()) return;
    ++res.health.audits_failed;
    res.health.note("audit: " + f.to_string());
    throw AuditError(std::move(f));
  };
  auto audit_failure = [](AuditFailure::Kind kind, std::string invariant,
                          std::string detail) {
    AuditFailure f;
    f.kind = kind;
    f.invariant = std::move(invariant);
    f.detail = std::move(detail);
    return f;
  };
  bool shed_noted = false;
  auto watchdog_expired = [&]() {
    if (!watchdog.expired()) return false;
    if (!shed_noted) {
      res.health.note("watchdog: time budget exceeded, shedding refinement");
      ++res.health.fallbacks;
      res.health.degraded = true;
    }
    shed_noted = true;
    return true;
  };

  // One simulated device per GPU, each with its own ledger so stages can
  // be rolled up as max-over-devices.
  Device::Config dc;
  if (opts.gpu_memory_bytes > 0) dc.memory_bytes = opts.gpu_memory_bytes;
  if (opts.gpu_host_workers > 0) dc.host_workers = opts.gpu_host_workers;
  std::vector<std::unique_ptr<Device>> devices;
  std::vector<CostLedger> dev_ledgers(static_cast<std::size_t>(D));
  for (int d = 0; d < D; ++d) {
    devices.push_back(std::make_unique<Device>(dc));
    devices.back()->set_ledger(&dev_ledgers[static_cast<std::size_t>(d)]);
    devices.back()->set_fault_injector(injector,
                                       phys[static_cast<std::size_t>(d)]);
    devices.back()->set_cancel_token(opts.cancel);
    devices.back()->set_leak_sink(&res.exec.pool_leaked_blocks);
  }

  // ---- initial block split + shard upload ----
  auto make_shards = [&](const std::vector<eid_t>& adjp,
                         const std::vector<vid_t>& adjncy,
                         const std::vector<wgt_t>& adjwgt,
                         const std::vector<wgt_t>& vwgt,
                         const std::vector<vid_t>& vtxdist,
                         const std::string& tag) {
    std::vector<DeviceShard> shards(static_cast<std::size_t>(D));
    for (int d = 0; d < D; ++d) {
      auto& s = shards[static_cast<std::size_t>(d)];
      s.begin = vtxdist[static_cast<std::size_t>(d)];
      s.end = vtxdist[static_cast<std::size_t>(d) + 1];
      const auto nb = static_cast<std::size_t>(s.begin);
      const auto ne = static_cast<std::size_t>(s.end);
      const auto ab = static_cast<std::size_t>(adjp[nb]);
      const auto ae = static_cast<std::size_t>(adjp[ne]);
      s.h_adjp.assign(adjp.begin() + static_cast<std::ptrdiff_t>(nb),
                      adjp.begin() + static_cast<std::ptrdiff_t>(ne) + 1);
      for (auto& x : s.h_adjp) x -= static_cast<eid_t>(ab);  // local offsets
      s.h_adjncy.assign(adjncy.begin() + static_cast<std::ptrdiff_t>(ab),
                        adjncy.begin() + static_cast<std::ptrdiff_t>(ae));
      s.h_adjwgt.assign(adjwgt.begin() + static_cast<std::ptrdiff_t>(ab),
                        adjwgt.begin() + static_cast<std::ptrdiff_t>(ae));
      s.h_vwgt.assign(vwgt.begin() + static_cast<std::ptrdiff_t>(nb),
                      vwgt.begin() + static_cast<std::ptrdiff_t>(ne));
      Device& dev = *devices[static_cast<std::size_t>(d)];
      s.adjp = DeviceBuffer<eid_t>(dev, s.h_adjp.size(), tag + "/adjp");
      s.adjp.h2d(s.h_adjp);
      s.adjncy = DeviceBuffer<vid_t>(dev, s.h_adjncy.size(), tag + "/adjncy");
      s.adjncy.h2d(s.h_adjncy);
      s.adjwgt = DeviceBuffer<wgt_t>(dev, s.h_adjwgt.size(), tag + "/adjwgt");
      s.adjwgt.h2d(s.h_adjwgt);
      s.vwgt = DeviceBuffer<wgt_t>(dev, s.h_vwgt.size(), tag + "/vwgt");
      s.vwgt.h2d(s.h_vwgt);
      // Transfer-integrity audit: kernels index through the device copy
      // of the structure arrays, so a flipped bit there (a `flip` fault
      // rule) must be caught BEFORE any kernel consumes it — afterwards
      // it is an out-of-bounds access, not a wrong answer.
      if (audit != AuditLevel::kOff) {
        const bool clean = s.adjp.d2h_vector() == s.h_adjp &&
                           s.adjncy.d2h_vector() == s.h_adjncy &&
                           s.adjwgt.d2h_vector() == s.h_adjwgt &&
                           s.vwgt.d2h_vector() == s.h_vwgt;
        require_audit(clean ? AuditFailure{}
                            : audit_failure(
                                  AuditFailure::Kind::kCsr,
                                  "transfer-integrity",
                                  tag + ": device shard of gpu " +
                                      std::to_string(d) +
                                      " differs from host source"));
      }
    }
    return shards;
  };

  std::vector<vid_t> vtxdist(static_cast<std::size_t>(D) + 1);
  for (int d = 0; d <= D; ++d) {
    vtxdist[static_cast<std::size_t>(d)] = static_cast<vid_t>(
        (static_cast<std::int64_t>(g.num_vertices()) * d) / D);
  }

  std::vector<ShardLevel> levels;
  {
    ConcurrentStage stage(res.ledger, dev_ledgers, "transfer/h2d/shards");
    ShardLevel l0;
    l0.shards = make_shards(g.adjp(), g.adjncy(), g.adjwgt(), g.vwgt(),
                            vtxdist, "G0");
    l0.fine_vtxdist = vtxdist;
    levels.push_back(std::move(l0));
  }

  // ---- multi-device coarsening ----
  std::uint64_t halo_bytes = 0;
  int lvl = 0;
  std::int64_t launch_threads = opts.gpu_threads;
  while (true) {
    check_cancelled(opts, "multi/gpu-coarsen");
    ShardLevel& cur = levels.back();
    vid_t total_n = 0;
    for (const auto& s : cur.shards) total_n += s.local_n();
    if (total_n <= handoff) break;
    const std::string L = "/L" + std::to_string(lvl);

    // 1. local matching + conflict resolution + local cmap, per device.
    cur.cmaps.assign(static_cast<std::size_t>(D), {});
    std::vector<vid_t> coarse_count(static_cast<std::size_t>(D), 0);
    {
      ConcurrentStage stage(res.ledger, dev_ledgers,
                            "kernel/coarsen/mgpu-match" + L);
      for (int d = 0; d < D; ++d) {
        DeviceShard& s = cur.shards[static_cast<std::size_t>(d)];
        Device& dev = *devices[static_cast<std::size_t>(d)];
        const vid_t n = s.local_n();
        const std::int64_t T = std::max<std::int64_t>(
            1, std::min<std::int64_t>(launch_threads / D, n));

        DeviceBuffer<vid_t> match(dev, static_cast<std::size_t>(n),
                                  "coarsen/match" + L);
        vid_t* mt = match.data();
        const eid_t* adjp = s.adjp.data();
        const vid_t* adjncy = s.adjncy.data();
        const wgt_t* adjwgt = s.adjwgt.data();
        const vid_t sb = s.begin, se = s.end;

        auto match_body = [&](std::int64_t t) -> std::uint64_t {
          Rng rng(opts.seed + static_cast<std::uint64_t>(lvl) * 977 +
                  static_cast<std::uint64_t>(d) * 131071 +
                  static_cast<std::uint64_t>(t));
          std::uint64_t work = 0;
          for (vid_t v = static_cast<vid_t>(t); v < n;
               v += static_cast<vid_t>(T)) {
            if (racy_load(mt[v]) != kInvalidVid) continue;
            const eid_t lo = adjp[v], hi = adjp[v + 1];
            work += static_cast<std::uint64_t>(hi - lo);
            vid_t best = kInvalidVid;
            wgt_t best_w = -1;
            const auto deg = static_cast<std::size_t>(hi - lo);
            const std::size_t rot = deg ? rng.next_below(deg) : 0;
            for (std::size_t j = 0; j < deg; ++j) {
              const eid_t idx = lo + static_cast<eid_t>((j + rot) % deg);
              const vid_t gu = adjncy[idx];
              if (gu < sb || gu >= se) continue;  // halo: never matched
              const vid_t u = gu - sb;
              if (racy_load(mt[u]) != kInvalidVid) continue;
              if (adjwgt[idx] > best_w) {
                best_w = adjwgt[idx];
                best = u;
              }
            }
            if (best == kInvalidVid) {
              racy_store(mt[v], v);
            } else {
              racy_store(mt[v], best);
              racy_store(mt[best], v);
            }
          }
          return work;
        };
        auto resolve_body = [&](std::int64_t t) -> std::uint64_t {
          std::uint64_t work = 0;
          for (vid_t v = static_cast<vid_t>(t); v < n;
               v += static_cast<vid_t>(T)) {
            ++work;
            const vid_t m = racy_load(mt[v]);
            if (m == kInvalidVid) {
              racy_store(mt[v], v);
              continue;
            }
            if (m != v && racy_load(mt[m]) != v) {
              racy_store(mt[v], v);
            }
          }
          return work;
        };

        // cmap (4-kernel pipeline, local labels 0..nc-1).
        DeviceBuffer<vid_t> cmap(dev, static_cast<std::size_t>(n),
                                 "cmap" + L);
        vid_t* cm = cmap.data();
        auto final_body = [&](std::int64_t t) -> std::uint64_t {
          std::uint64_t w = 0;
          for (vid_t v = static_cast<vid_t>(t); v < n;
               v += static_cast<vid_t>(T)) {
            if (v > mt[v]) cm[v] = cm[mt[v]];
            ++w;
          }
          return w;
        };

        vid_t nc = 0;
        if (opts.gpu_scan == GpuScanMode::kLookback) {
          // The whole per-device level chain is one fused dispatch; the
          // cmap init/scan/sub triple collapses into a single look-back
          // scan stage (same transform as gpu_match's fused path).
          dev.launch_fused("coarsen/level" + L, [&](Device::Fused& f) {
            f.stage_streamed("fill", n, sizeof(vid_t),
                             [&](std::int64_t v) { mt[v] = kInvalidVid; });
            f.stage("match", T, match_body);
            f.stage("resolve", T, resolve_body);
            if (n > 0) {
              nc = lookback_scan_stage<vid_t>(
                  dev, f, "cmap_scan", n, sizeof(vid_t),
                  [&](std::int64_t v) -> vid_t {
                    return (v <= mt[v]) ? 1 : 0;
                  },
                  [&](std::int64_t v, vid_t inc, vid_t) { cm[v] = inc - 1; });
            }
            f.stage("cmap_final", T, final_body);
          });
        } else {
          match.fill(kInvalidVid);
          dev.launch("coarsen/match" + L, T, match_body);
          dev.launch("coarsen/resolve" + L, T, resolve_body);
          dev.launch("coarsen/cmap/init" + L, T,
                     [&](std::int64_t t) -> std::uint64_t {
                       std::uint64_t w = 0;
                       for (vid_t v = static_cast<vid_t>(t); v < n;
                            v += static_cast<vid_t>(T)) {
                         cm[v] = (v <= mt[v]) ? 1 : 0;
                         ++w;
                       }
                       return w;
                     });
          nc = n > 0 ? device_inclusive_scan(dev, cmap,
                                             "coarsen/cmap/scan" + L)
                     : 0;
          dev.launch("coarsen/cmap/sub" + L, T,
                     [&](std::int64_t t) -> std::uint64_t {
                       std::uint64_t w = 0;
                       for (vid_t v = static_cast<vid_t>(t); v < n;
                            v += static_cast<vid_t>(T)) {
                         cm[v] -= 1;
                         ++w;
                       }
                       return w;
                     });
          dev.launch("coarsen/cmap/final" + L, T, final_body);
        }
        coarse_count[static_cast<std::size_t>(d)] = nc;
        cur.cmaps[static_cast<std::size_t>(d)] = cmap.d2h_vector();
        // Range audit BEFORE the host consumes the downloaded cmap: the
        // leader/partner scans and the halo owner lookups index host
        // arrays with these values, so a flipped entry would be an
        // out-of-bounds access there rather than a wrong answer.
        if (audit != AuditLevel::kOff) {
          AuditFailure f;
          for (const vid_t c : cur.cmaps[static_cast<std::size_t>(d)]) {
            if (c < 0 || c >= nc) {
              f = audit_failure(
                  AuditFailure::Kind::kContraction, "cmap-range",
                  "gpu " + std::to_string(d) + " level " +
                      std::to_string(lvl) + ": coarse map entry " +
                      std::to_string(c) + " outside [0, " +
                      std::to_string(nc) + ")");
              break;
            }
          }
          require_audit(std::move(f));
        }
      }
    }

    // 2. host: global coarse numbering (offset per device) and the
    // per-device cmap made GLOBAL.
    std::vector<vid_t> coarse_off(static_cast<std::size_t>(D) + 1, 0);
    for (int d = 0; d < D; ++d) {
      coarse_off[static_cast<std::size_t>(d) + 1] =
          coarse_off[static_cast<std::size_t>(d)] +
          coarse_count[static_cast<std::size_t>(d)];
    }
    const vid_t n_coarse = coarse_off[static_cast<std::size_t>(D)];
    for (int d = 0; d < D; ++d) {
      for (auto& c : cur.cmaps[static_cast<std::size_t>(d)]) {
        c += coarse_off[static_cast<std::size_t>(d)];
      }
    }
    if (static_cast<double>(n_coarse) >
        opts.min_shrink * static_cast<double>(total_n)) {
      break;  // matching stalled (halo-restricted matching can stall
              // earlier than single-device matching)
    }

    // 3. halo-cmap exchange: each device receives the sorted (halo id ->
    // global coarse id) table for its halo set (metered upload).
    std::vector<HaloTable> halo(static_cast<std::size_t>(D));
    {
      ConcurrentStage stage(res.ledger, dev_ledgers,
                            "transfer/mgpu-halo-cmap" + L);
      for (int d = 0; d < D; ++d) {
        DeviceShard& s = cur.shards[static_cast<std::size_t>(d)];
        Device& dev = *devices[static_cast<std::size_t>(d)];
        const auto ids = halo_ids_of(s);
        std::vector<vid_t> vals(ids.size());
        for (std::size_t i = 0; i < ids.size(); ++i) {
          // Owner lookup on the host (the exchange a real implementation
          // performs device-to-device through the PCIe switch).
          const vid_t gid = ids[i];
          // A corrupted coarse id from the previous level's contraction
          // (flipped halo-table upload) surfaces here as an id outside
          // the global range; trap it as a device fault before the owner
          // scan walks off the end of vtxdist.
          if (gid < 0 || gid >= cur.fine_vtxdist.back()) {
            throw DeviceFailure(
                "corrupted halo id in mgpu-halo-cmap exchange",
                dev.device_id());
          }
          int owner = 0;
          while (gid >= cur.fine_vtxdist[static_cast<std::size_t>(owner) + 1])
            ++owner;
          vals[i] = cur.cmaps[static_cast<std::size_t>(owner)]
                             [static_cast<std::size_t>(
                                 gid - cur.fine_vtxdist[static_cast<std::size_t>(
                                           owner)])];
        }
        halo_bytes += ids.size() * (sizeof(vid_t) * 2);
        auto& h = halo[static_cast<std::size_t>(d)];
        h.size = ids.size();
        h.ids = DeviceBuffer<vid_t>(dev, std::max<std::size_t>(1, ids.size()),
                                    "halo_ids" + L);
        h.vals = DeviceBuffer<vid_t>(dev, std::max<std::size_t>(1, ids.size()),
                                     "halo_vals" + L);
        if (!ids.empty()) {
          h.ids.h2d(std::span<const vid_t>(ids.data(), ids.size()));
          h.vals.h2d(std::span<const vid_t>(vals.data(), vals.size()));
        }
      }
    }

    // 4. contraction per device into global-coarse-id adjacency.
    std::vector<vid_t> coarse_vtxdist = coarse_off;
    ShardLevel next;
    next.fine_vtxdist = coarse_vtxdist;
    next.shards.resize(static_cast<std::size_t>(D));
    {
      ConcurrentStage stage(res.ledger, dev_ledgers,
                            "kernel/coarsen/mgpu-contract" + L);
      for (int d = 0; d < D; ++d) {
        DeviceShard& s = cur.shards[static_cast<std::size_t>(d)];
        Device& dev = *devices[static_cast<std::size_t>(d)];
        const vid_t n = s.local_n();
        const vid_t nc = coarse_count[static_cast<std::size_t>(d)];
        const auto& cmap = cur.cmaps[static_cast<std::size_t>(d)];
        const auto& h = halo[static_cast<std::size_t>(d)];
        const vid_t* hid = h.ids.data();
        const vid_t* hval = h.vals.data();
        const std::size_t hsz = h.size;
        const vid_t sb = s.begin, se = s.end;
        const vid_t cb = coarse_off[static_cast<std::size_t>(d)];

        // Leader list: local coarse ordinal -> local fine leader (the
        // first fine vertex mapping to the coarse id, by construction of
        // the cmap pipeline).
        std::vector<vid_t> leaders(static_cast<std::size_t>(nc));
        std::vector<char> seen(static_cast<std::size_t>(nc), 0);
        for (vid_t v = 0; v < n; ++v) {
          const auto lc = static_cast<std::size_t>(
              cmap[static_cast<std::size_t>(v)] - cb);
          if (!seen[lc]) {
            seen[lc] = 1;
            leaders[lc] = v;
          }
        }
        DeviceBuffer<vid_t> d_leaders(dev, std::max<std::size_t>(1, leaders.size()),
                                      "leaders" + L);
        if (!leaders.empty()) {
          d_leaders.h2d(std::span<const vid_t>(leaders.data(), leaders.size()));
        }
        DeviceBuffer<vid_t> d_cmap(dev, std::max<std::size_t>(1, cmap.size()),
                                   "gcmap" + L);
        if (!cmap.empty()) {
          d_cmap.h2d(std::span<const vid_t>(cmap.data(), cmap.size()));
        }
        const vid_t* ld = d_leaders.data();
        const vid_t* cm = d_cmap.data();
        const eid_t* adjp = s.adjp.data();
        const vid_t* adjncy = s.adjncy.data();
        const wgt_t* adjwgt = s.adjwgt.data();
        const wgt_t* vw = s.vwgt.data();

        // Pair partner of a leader: second fine vertex with the same
        // coarse id (if any) — recovered on host for kernel simplicity.
        std::vector<vid_t> partner(static_cast<std::size_t>(nc),
                                   kInvalidVid);
        {
          std::vector<char> first(static_cast<std::size_t>(nc), 0);
          for (vid_t v = 0; v < n; ++v) {
            const auto lc = static_cast<std::size_t>(
                cmap[static_cast<std::size_t>(v)] - cb);
            if (!first[lc]) {
              first[lc] = 1;
            } else {
              partner[lc] = v;
            }
          }
        }
        DeviceBuffer<vid_t> d_partner(
            dev, std::max<std::size_t>(1, partner.size()), "partner" + L);
        if (!partner.empty()) {
          d_partner.h2d(std::span<const vid_t>(partner.data(), partner.size()));
        }
        const vid_t* pt = d_partner.data();

        const std::int64_t T = std::max<std::int64_t>(
            1, std::min<std::int64_t>(launch_threads / D,
                                      std::max<vid_t>(1, nc)));
        auto block = [&](std::int64_t t) {
          const std::int64_t chunk = nc / T, rem = nc % T;
          const std::int64_t b = t * chunk + std::min<std::int64_t>(t, rem);
          return std::pair<vid_t, vid_t>(
              static_cast<vid_t>(b),
              static_cast<vid_t>(b + chunk + (t < rem ? 1 : 0)));
        };

        // Merge kernel with on-the-fly halo translation (binary search).
        struct Out {
          std::vector<vid_t> adjncy;
          std::vector<wgt_t> adjwgt;
        };
        std::vector<Out> outs(static_cast<std::size_t>(T));
        std::vector<eid_t> cdeg(static_cast<std::size_t>(nc) + 1, 0);
        std::vector<wgt_t> cvwgt(static_cast<std::size_t>(nc), 0);
        dev.launch("coarsen/contract/merge" + L, T,
                   [&](std::int64_t t) -> std::uint64_t {
                     auto [bb, ee] = block(t);
                     auto& out = outs[static_cast<std::size_t>(t)];
                     std::uint64_t work = 0;
                     std::vector<std::pair<vid_t, wgt_t>> scratch;
                     // The kernel indexes through device copies (leaders,
                     // partners, adjacency, halo table) that cross the
                     // corruptible bus; a flipped word there must surface
                     // as a device fault, not an out-of-bounds host read.
                     auto trap = [&](const char* what) {
                       throw DeviceFailure(
                           std::string("corrupted index in "
                                       "coarsen/contract/merge (") +
                               what + ")",
                           dev.device_id());
                     };
                     auto translate = [&](vid_t gu) -> vid_t {
                       if (gu >= sb && gu < se) return cm[gu - sb];
                       // halo: binary search the sorted table
                       std::size_t lo = 0, hi = hsz;
                       while (lo < hi) {
                         const std::size_t mid = (lo + hi) / 2;
                         if (hid[mid] < gu) lo = mid + 1;
                         else hi = mid;
                       }
                       work += 4;  // log-factor charge
                       if (lo >= hsz || hid[lo] != gu) trap("halo id");
                       return hval[lo];
                     };
                     const eid_t me = static_cast<eid_t>(s.adjncy.size());
                     for (vid_t c = bb; c < ee; ++c) {
                       const vid_t v = ld[c];
                       const vid_t u = pt[c];
                       if (v < 0 || v >= n) trap("leader");
                       if (u != kInvalidVid && (u < 0 || u >= n))
                         trap("partner");
                       const vid_t gc = cb + c;
                       cvwgt[static_cast<std::size_t>(c)] =
                           vw[v] + (u != kInvalidVid ? vw[u] : 0);
                       scratch.clear();
                       auto absorb = [&](vid_t src) {
                         const eid_t jb = adjp[src], je = adjp[src + 1];
                         if (jb < 0 || je < jb || je > me) trap("adjp row");
                         for (eid_t j = jb; j < je; ++j) {
                           const vid_t cu = translate(adjncy[j]);
                           if (cu == gc) continue;
                           scratch.emplace_back(cu, adjwgt[j]);
                           ++work;
                         }
                       };
                       absorb(v);
                       if (u != kInvalidVid) absorb(u);
                       std::sort(scratch.begin(), scratch.end());
                       work += scratch.size();
                       std::size_t o = 0;
                       for (std::size_t i = 0; i < scratch.size();) {
                         const vid_t k = scratch[i].first;
                         wgt_t x = 0;
                         while (i < scratch.size() && scratch[i].first == k)
                           x += scratch[i++].second;
                         scratch[o++] = {k, x};
                       }
                       scratch.resize(o);
                       cdeg[static_cast<std::size_t>(c) + 1] =
                           static_cast<eid_t>(o);
                       for (std::size_t i = 0; i < o; ++i) {
                         out.adjncy.push_back(scratch[i].first);
                         out.adjwgt.push_back(scratch[i].second);
                       }
                     }
                     return work;
                   });
        for (vid_t c = 0; c < nc; ++c) {
          cdeg[static_cast<std::size_t>(c) + 1] +=
              cdeg[static_cast<std::size_t>(c)];
        }
        std::vector<vid_t> cadjncy;
        std::vector<wgt_t> cadjwgt;
        cadjncy.reserve(static_cast<std::size_t>(cdeg.back()));
        cadjwgt.reserve(static_cast<std::size_t>(cdeg.back()));
        for (const auto& o : outs) {
          cadjncy.insert(cadjncy.end(), o.adjncy.begin(), o.adjncy.end());
          cadjwgt.insert(cadjwgt.end(), o.adjwgt.begin(), o.adjwgt.end());
        }

        // Upload the coarse shard to the device; keep the host mirror.
        DeviceShard cs;
        cs.begin = coarse_vtxdist[static_cast<std::size_t>(d)];
        cs.end = coarse_vtxdist[static_cast<std::size_t>(d) + 1];
        cs.h_adjp = std::move(cdeg);
        cs.h_adjncy = std::move(cadjncy);
        cs.h_adjwgt = std::move(cadjwgt);
        cs.h_vwgt = std::move(cvwgt);
        cs.adjp = DeviceBuffer<eid_t>(dev, cs.h_adjp.size(), "cadjp" + L);
        cs.adjp.h2d(cs.h_adjp);
        cs.adjncy =
            DeviceBuffer<vid_t>(dev, std::max<std::size_t>(1, cs.h_adjncy.size()),
                                "cadjncy" + L);
        if (!cs.h_adjncy.empty()) cs.adjncy.h2d(cs.h_adjncy);
        cs.adjwgt =
            DeviceBuffer<wgt_t>(dev, std::max<std::size_t>(1, cs.h_adjwgt.size()),
                                "cadjwgt" + L);
        if (!cs.h_adjwgt.empty()) cs.adjwgt.h2d(cs.h_adjwgt);
        cs.vwgt = DeviceBuffer<wgt_t>(dev, std::max<std::size_t>(1, cs.h_vwgt.size()),
                                      "cvwgt" + L);
        if (!cs.h_vwgt.empty()) cs.vwgt.h2d(cs.h_vwgt);
        if (audit != AuditLevel::kOff) {
          const bool clean = cs.adjp.d2h_vector() == cs.h_adjp &&
                             (cs.h_adjncy.empty() ||
                              cs.adjncy.d2h_vector() == cs.h_adjncy) &&
                             (cs.h_adjwgt.empty() ||
                              cs.adjwgt.d2h_vector() == cs.h_adjwgt) &&
                             (cs.h_vwgt.empty() ||
                              cs.vwgt.d2h_vector() == cs.h_vwgt);
          require_audit(clean
                            ? AuditFailure{}
                            : audit_failure(
                                  AuditFailure::Kind::kCsr,
                                  "transfer-integrity",
                                  "coarse shard of gpu " + std::to_string(d) +
                                      " at level " + std::to_string(lvl) +
                                      " differs from host source"));
        }
        next.shards[static_cast<std::size_t>(d)] = std::move(cs);
      }
    }

    // Cross-device conservation audit: contraction only merges vertices,
    // so the shard-summed vertex weight is level-invariant.  This is the
    // cheapest whole-level check that catches a corrupted contraction on
    // any one device after the per-device artifacts are merged.
    if (audit != AuditLevel::kOff) {
      wgt_t fine_w = 0, coarse_w = 0;
      for (const auto& s : cur.shards)
        for (const wgt_t w : s.h_vwgt) fine_w += w;
      for (const auto& s : next.shards)
        for (const wgt_t w : s.h_vwgt) coarse_w += w;
      require_audit(
          fine_w == coarse_w
              ? AuditFailure{}
              : audit_failure(AuditFailure::Kind::kContraction,
                              "vertex-weight-conservation",
                              "level " + std::to_string(lvl) +
                                  ": fine shards weigh " +
                                  std::to_string(fine_w) +
                                  ", coarse shards weigh " +
                                  std::to_string(coarse_w)));
    }

    // Free the fine shards' device copies except level-0... keep all for
    // uncoarsening refinement (the single-GPU version does the same).
    levels.push_back(std::move(next));
    ++lvl;
    launch_threads = std::max<std::int64_t>(256 * D, launch_threads / 2);
  }
  const int gpu_lvls = static_cast<int>(levels.size()) - 1;

  // ---- gather coarse graph, CPU stage ----
  const ShardLevel& top = levels.back();
  CsrGraph cpu_graph;
  {
    std::vector<eid_t> adjp{0};
    std::vector<vid_t> adjncy;
    std::vector<wgt_t> adjwgt, vwgt;
    for (const auto& s : top.shards) {
      const eid_t base = adjp.back();
      for (std::size_t i = 1; i < s.h_adjp.size(); ++i) {
        adjp.push_back(base + s.h_adjp[i]);
      }
      adjncy.insert(adjncy.end(), s.h_adjncy.begin(), s.h_adjncy.end());
      adjwgt.insert(adjwgt.end(), s.h_adjwgt.begin(), s.h_adjwgt.end());
      vwgt.insert(vwgt.end(), s.h_vwgt.begin(), s.h_vwgt.end());
    }
    // The gather is a real D2H of every shard.
    std::uint64_t bytes = 0;
    for (const auto& s : top.shards) {
      bytes += s.h_adjp.size() * sizeof(eid_t) +
               s.h_adjncy.size() * (sizeof(vid_t) + sizeof(wgt_t)) +
               s.h_vwgt.size() * sizeof(wgt_t);
    }
    res.ledger.charge_transfer("transfer/d2h/mgpu-gather", bytes);
    cpu_graph = CsrGraph(std::move(adjp), std::move(adjncy),
                         std::move(adjwgt), std::move(vwgt));
  }

  // Handoff audit: the CPU stage trusts this gathered graph completely,
  // so it is the last place a corrupted coarsening can be caught before
  // it silently shapes the initial partition.
  if (audit != AuditLevel::kOff) {
    require_audit(audit_csr(cpu_graph, audit));
    wgt_t handoff_w = 0;
    for (vid_t v = 0; v < cpu_graph.num_vertices(); ++v) {
      handoff_w += cpu_graph.vertex_weight(v);
    }
    require_audit(
        handoff_w == g.total_vertex_weight()
            ? AuditFailure{}
            : audit_failure(AuditFailure::Kind::kContraction,
                            "handoff-weight",
                            "gathered coarse graph weighs " +
                                std::to_string(handoff_w) +
                                ", input weighs " +
                                std::to_string(g.total_vertex_weight())));
  }

  check_cancelled(opts, "multi/cpu-middle");
  ThreadPool pool(opts.threads);
  pool.set_cancel_token(opts.cancel);
  pool.set_fault_injector(injector);
  MtContext mt_ctx{&pool, &res.ledger, opts.seed};
  const MtPipelineControl mt_control{injector, &res.health, &watchdog};
  const auto mt_out =
      mt_multilevel_pipeline(cpu_graph, opts, mt_ctx, gpu_lvls, mt_control);

  // ---- uncoarsening: host-authoritative labels, device proposals ----
  std::vector<part_t> where = mt_out.partition.where;  // coarse level
  const wgt_t total_w = g.total_vertex_weight();
  const wgt_t max_pw = max_part_weight(total_w, opts.k, opts.eps);
  const wgt_t min_pw = min_part_weight(total_w, opts.k, opts.eps);
  std::uint64_t replay_moves = 0;

  for (int i = gpu_lvls - 1; i >= 0; --i) {
    check_cancelled(opts, "multi/gpu-uncoarsen");
    const ShardLevel& fine_level = levels[static_cast<std::size_t>(i)];
    const std::string L = "/L" + std::to_string(i);

    // Projection (host-side through the stored global cmaps — one gather
    // already paid; the per-device projection kernel is charged).
    vid_t fine_n = 0;
    for (const auto& s : fine_level.shards) fine_n += s.local_n();
    std::vector<part_t> fwhere(static_cast<std::size_t>(fine_n));
    {
      ConcurrentStage stage(res.ledger, dev_ledgers,
                            "kernel/uncoarsen/mgpu-project" + L);
      for (int d = 0; d < D; ++d) {
        const DeviceShard& s = fine_level.shards[static_cast<std::size_t>(d)];
        Device& dev = *devices[static_cast<std::size_t>(d)];
        const auto& cmap = fine_level.cmaps[static_cast<std::size_t>(d)];
        const vid_t n = s.local_n();
        const std::int64_t T = std::max<std::int64_t>(
            1, std::min<std::int64_t>(launch_threads, n));
        dev.launch("uncoarsen/project" + L, T,
                   [&](std::int64_t t) -> std::uint64_t {
                     std::uint64_t w = 0;
                     for (vid_t v = static_cast<vid_t>(t); v < n;
                          v += static_cast<vid_t>(T)) {
                       fwhere[static_cast<std::size_t>(s.begin + v)] =
                           where[static_cast<std::size_t>(
                               cmap[static_cast<std::size_t>(v)])];
                       ++w;
                     }
                     return w;
                   });
      }
    }
    where = std::move(fwhere);

    // Past the deadline, projection still runs (correctness) but the
    // propose/replay passes are shed — the partition stays valid, just
    // less refined.
    if (watchdog_expired()) continue;

    // Refinement: devices propose, host replays.
    std::vector<wgt_t> pw(static_cast<std::size_t>(opts.k), 0);
    for (int d = 0; d < D; ++d) {
      const DeviceShard& s = fine_level.shards[static_cast<std::size_t>(d)];
      for (vid_t v = 0; v < s.local_n(); ++v) {
        pw[static_cast<std::size_t>(
            where[static_cast<std::size_t>(s.begin + v)])] += s.h_vwgt
            [static_cast<std::size_t>(v)];
      }
    }
    int idle_passes = 0;
    for (int pass = 0; pass < opts.refine_passes; ++pass) {
      const bool upward = (pass % 2 == 0);
      std::vector<HostMoveRequest> all;
      {
        ConcurrentStage stage(
            res.ledger, dev_ledgers,
            "kernel/uncoarsen/mgpu-propose" + L + "/p" + std::to_string(pass));
        for (int d = 0; d < D; ++d) {
          const DeviceShard& s =
              fine_level.shards[static_cast<std::size_t>(d)];
          Device& dev = *devices[static_cast<std::size_t>(d)];
          const vid_t n = s.local_n();
          // Label slice + halo labels travel to the device each pass.
          dev.meter_h2d(static_cast<std::size_t>(n) * sizeof(part_t),
                        "where-slice" + L);
          const std::int64_t T = std::max<std::int64_t>(
              1, std::min<std::int64_t>(launch_threads, n));
          std::vector<std::vector<HostMoveRequest>> per_chunk(
              static_cast<std::size_t>(T));
          const eid_t* adjp = s.adjp.data();
          const vid_t* adjncy = s.adjncy.data();
          const wgt_t* adjwgt = s.adjwgt.data();
          dev.launch(
              "uncoarsen/refine/propose" + L, T,
              [&](std::int64_t t) -> std::uint64_t {
                std::uint64_t work = 0;
                auto& out = per_chunk[static_cast<std::size_t>(t)];
                std::vector<wgt_t> conn(static_cast<std::size_t>(opts.k), 0);
                std::vector<part_t> parts;
                for (vid_t v = static_cast<vid_t>(t); v < n;
                     v += static_cast<vid_t>(T)) {
                  const vid_t gv = s.begin + v;
                  const part_t pv = where[static_cast<std::size_t>(gv)];
                  const eid_t lo = adjp[v], hi = adjp[v + 1];
                  work += static_cast<std::uint64_t>(hi - lo) + 1;
                  parts.clear();
                  wgt_t internal = 0;
                  for (eid_t j = lo; j < hi; ++j) {
                    const part_t pu =
                        where[static_cast<std::size_t>(adjncy[j])];
                    if (pu == pv) {
                      internal += adjwgt[j];
                      continue;
                    }
                    if (conn[static_cast<std::size_t>(pu)] == 0)
                      parts.push_back(pu);
                    conn[static_cast<std::size_t>(pu)] += adjwgt[j];
                  }
                  const bool over =
                      pw[static_cast<std::size_t>(pv)] > max_pw;
                  part_t best = kInvalidPart;
                  wgt_t best_conn =
                      over ? std::numeric_limits<wgt_t>::min() : internal;
                  for (const part_t q : parts) {
                    if (upward ? (q <= pv) : (q >= pv)) continue;
                    if (conn[static_cast<std::size_t>(q)] > best_conn) {
                      best_conn = conn[static_cast<std::size_t>(q)];
                      best = q;
                    }
                  }
                  for (const part_t q : parts)
                    conn[static_cast<std::size_t>(q)] = 0;
                  if (best == kInvalidPart) continue;
                  out.push_back({gv, pv, best, best_conn - internal});
                }
                return work;
              });
          std::size_t cnt = 0;
          for (const auto& c : per_chunk) cnt += c.size();
          dev.meter_d2h(cnt * sizeof(HostMoveRequest), "proposals" + L);
          for (auto& c : per_chunk) {
            all.insert(all.end(), c.begin(), c.end());
          }
        }
      }

      // Host replay, deterministic: sort by gain desc then vertex id.
      std::sort(all.begin(), all.end(),
                [](const HostMoveRequest& a, const HostMoveRequest& b) {
                  if (a.gain != b.gain) return a.gain > b.gain;
                  return a.v < b.v;
                });
      auto vwgt_of = [&](vid_t gv) -> wgt_t {
        const auto it =
            std::upper_bound(fine_level.fine_vtxdist.begin(),
                             fine_level.fine_vtxdist.end(), gv);
        const auto d = static_cast<std::size_t>(
            it - fine_level.fine_vtxdist.begin() - 1);
        const DeviceShard& sh = fine_level.shards[d];
        return sh.h_vwgt[static_cast<std::size_t>(gv - sh.begin)];
      };
      std::uint64_t committed = 0;
      for (const auto& mv : all) {
        const wgt_t vw = vwgt_of(mv.v);
        if (pw[static_cast<std::size_t>(mv.to)] + vw > max_pw) continue;
        if (pw[static_cast<std::size_t>(mv.from)] - vw < min_pw) continue;
        pw[static_cast<std::size_t>(mv.from)] -= vw;
        pw[static_cast<std::size_t>(mv.to)] += vw;
        where[static_cast<std::size_t>(mv.v)] = mv.to;
        ++committed;
      }
      res.ledger.charge_serial(
          "uncoarsen/mgpu-replay" + L + "/p" + std::to_string(pass),
          all.size());
      replay_moves += committed;
      // Both alternating directions must go idle before stopping.
      idle_passes = (committed == 0) ? idle_passes + 1 : 0;
      if (idle_passes >= 2) break;
    }
  }

  // Roll the per-device ledgers' leftover entries are already reflected
  // through ConcurrentStage charges; assemble results.
  res.partition.k = opts.k;
  res.partition.where = std::move(where);
  // Final audit gates the metric computations: a corrupted label would
  // index the per-part accumulators out of bounds inside edge_cut.
  if (audit != AuditLevel::kOff) {
    require_audit(audit_partition(g, res.partition, opts.k, opts.eps,
                                  /*expected_cut=*/-1, audit));
  }
  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  res.coarsen_levels = gpu_lvls + mt_out.levels;
  res.coarsest_vertices = mt_out.coarsest_vertices;
  for (const auto& dev : devices) {
    res.exec += DeviceExecStats{dev->kernels_launched(), dev->pool_hits(),
                                dev->pool_misses(),
                                dev->pool_recycled_bytes()};
  }

  if (log) {
    log->devices = D;
    log->gpu_coarsen_levels = gpu_lvls;
    std::size_t peak = 0;
    for (const auto& dev : devices) peak = std::max(peak, dev->peak_bytes());
    log->peak_device_bytes = peak;
    log->halo_exchange_bytes = halo_bytes;
    log->refine_replay_moves = replay_moves;
  }
}

}  // namespace

PartitionResult multi_gpu_run(const CsrGraph& g, const PartitionOptions& opts,
                              MultiGpuLog* log) {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  const std::unique_ptr<FaultInjector> injector = opts.make_fault_injector();
  const Watchdog watchdog(opts.time_budget_seconds);

  // Surviving physical devices.  A lost device is excluded and the vertex
  // blocks are redistributed over the remainder — the vtxdist rebuild at
  // the top of the attempt IS the redistribution (per-device blocks are
  // recomputed over the survivors).
  std::vector<int> phys(static_cast<std::size_t>(std::max(1, opts.gpu_devices)));
  std::iota(phys.begin(), phys.end(), 0);

  vid_t handoff =
      std::max<vid_t>(opts.gpu_cpu_threshold, opts.coarsen_target());
  const int max_attempts =
      static_cast<int>(phys.size()) + kMaxOomRetries + 1;
  bool gpu_ok = false;
  int attempts = 0;
  int oom_retries = 0;
  int audit_failures = 0;
  while (!gpu_ok && !phys.empty() && attempts < max_attempts) {
    if (log) *log = MultiGpuLog{};
    ++attempts;
    try {
      multi_gpu_attempt(g, opts, log, phys, handoff, injector.get(), watchdog,
                        res);
      gpu_ok = true;
    } catch (const AuditError& e) {
      // Without an injector an audit failure is a genuine logic bug —
      // never mask it behind a fallback.
      if (!injector) throw;
      ++res.health.rollbacks;
      ++res.health.gpu_retries;
      res.health.degraded = true;
      res.ledger.charge_raw("fault/device-reset", kDeviceResetSeconds);
      if (++audit_failures == 1) {
        res.health.note(
            "rollback: gp-metis-multi attempt restarted after failed audit (" +
            std::string(e.what()) + ")");
        log_warn("gp-metis-multi: audit failed, restarting attempt: %s",
                 e.what());
      } else {
        res.health.note("gp-metis-multi: repeated audit failure (" +
                        std::string(e.what()) +
                        "); abandoning the GPU path");
        log_warn("gp-metis-multi: repeated audit failure, degrading: %s",
                 e.what());
        break;
      }
    } catch (const DeviceFailure& e) {
      res.health.degraded = true;
      res.ledger.charge_raw("fault/device-reset", kDeviceResetSeconds);
      const auto it = std::find(phys.begin(), phys.end(), e.device_id());
      if (it != phys.end()) phys.erase(it);
      res.health.note("gp-metis-multi: device " +
                      std::to_string(e.device_id()) + " failed (" + e.what() +
                      "); redistributing over " +
                      std::to_string(phys.size()) + " surviving device(s)");
      log_warn("gp-metis-multi: lost device %d, %zu survive: %s",
               e.device_id(), phys.size(), e.what());
    } catch (const ThreadPoolTaskError& e) {
      // Injected `task` fault in a CPU phase: the attempt unwound at a
      // job boundary, so restart it like a transient device failure (one
      // rung — a second throw abandons the GPU path for the CPU ladder).
      ++res.health.gpu_retries;
      res.health.degraded = true;
      res.ledger.charge_raw("fault/task-restart", kDeviceResetSeconds);
      if (++audit_failures > 1) {
        res.health.note("gp-metis-multi: repeated pool task fault (" +
                        std::string(e.what()) +
                        "); abandoning the GPU path");
        break;
      }
      res.health.note("gp-metis-multi: pool task fault (" +
                      std::string(e.what()) + "); restarting attempt");
      log_warn("gp-metis-multi: pool task fault, restarting attempt: %s",
               e.what());
    } catch (const DeviceOutOfMemory& e) {
      res.health.gpu_retries += 1;
      res.health.degraded = true;
      res.ledger.charge_raw("fault/device-reset", kDeviceResetSeconds);
      if (++oom_retries > kMaxOomRetries || handoff >= g.num_vertices()) {
        res.health.note("gp-metis-multi: OOM retries exhausted (" +
                        std::string(e.what()) + ")");
        break;
      }
      const vid_t raised = handoff > g.num_vertices() / 4
                               ? g.num_vertices()
                               : handoff * 4;
      res.health.note("gp-metis-multi: OOM (" + std::string(e.what()) +
                      "); retrying with CPU handoff at " +
                      std::to_string(raised) + " vertices");
      log_warn("gp-metis-multi: device OOM, raising CPU handoff %d -> %d",
               handoff, raised);
      handoff = raised;
    }
  }
  if (!gpu_ok) {
    res.health.fallbacks += 1;
    res.health.degraded = true;
    res.health.note("gp-metis-multi: no usable GPU path; degrading to a "
                    "pure mt-metis run");
    log_warn("gp-metis-multi: degrading to pure mt-metis after %d attempts",
             attempts);
    if (log) *log = MultiGpuLog{};
    try {
      ThreadPool pool(opts.threads);
      pool.set_cancel_token(opts.cancel);
      pool.set_fault_injector(injector.get());
      MtContext ctx{&pool, &res.ledger, opts.seed};
      const MtPipelineControl control{injector.get(), &res.health, &watchdog};
      auto out = mt_multilevel_pipeline(g, opts, ctx, 0, control);
      res.partition = std::move(out.partition);
      res.partition.k = opts.k;
      if (opts.audit_level != AuditLevel::kOff) {
        ++res.health.audits_run;
        AuditFailure f = audit_partition(g, res.partition, opts.k, opts.eps,
                                         /*expected_cut=*/-1,
                                         opts.audit_level);
        if (!f.ok()) {
          ++res.health.audits_failed;
          res.health.note("audit: " + f.to_string());
          throw AuditError(std::move(f));
        }
      }
      res.cut = edge_cut(g, res.partition);
      res.balance = partition_balance(g, res.partition);
      res.coarsen_levels = out.levels;
      res.coarsest_vertices = out.coarsest_vertices;
    } catch (const AuditError& e) {
      if (!injector) throw;
      // Terminal rung: serial reference implementation with corruption
      // suppressed — guaranteed to converge under probabilistic rules.
      ++res.health.rollbacks;
      ++res.health.fallbacks;
      res.health.degraded = true;
      res.health.note("gp-metis-multi: CPU fallback failed audit (" +
                      std::string(e.what()) +
                      "); whole-run serial fallback with corruption "
                      "suppressed");
      injector->set_corruption_suppressed(true);
      PartitionOptions serial_opts = opts;
      serial_opts.fault_spec.clear();
      PartitionResult serial_res = SerialMetisPartitioner().run(g, serial_opts);
      res.partition = std::move(serial_res.partition);
      res.cut = serial_res.cut;
      res.balance = serial_res.balance;
      res.coarsen_levels = serial_res.coarsen_levels;
      res.coarsest_vertices = serial_res.coarsest_vertices;
      res.health.audits_run += serial_res.health.audits_run;
      res.health.audits_failed += serial_res.health.audits_failed;
      res.ledger.merge("", serial_res.ledger);
    }
  }
  if (injector) injector->report_into(res.health);
  if (log) {
    log->attempts = attempts;
    log->cpu_fallback = !gpu_ok;
    log->devices_lost = static_cast<int>(res.health.devices_lost);
  }
  res.phases.transfer = res.ledger.seconds_with_prefix("transfer/");
  res.phases.coarsen = res.ledger.seconds_with_prefix("kernel/coarsen/") +
                       res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen =
      res.ledger.seconds_with_prefix("kernel/uncoarsen/") +
      res.ledger.seconds_with_prefix("uncoarsen/");
  res.modeled_seconds = res.ledger.total_seconds();
  res.wall_seconds = wall.seconds();
  return res;
}

PartitionResult MultiGpuPartitioner::run(const CsrGraph& g,
                                         const PartitionOptions& opts) const {
  return multi_gpu_run(g, opts, nullptr);
}

std::unique_ptr<Partitioner> make_multi_gpu_partitioner() {
  return std::make_unique<MultiGpuPartitioner>();
}

}  // namespace gp
