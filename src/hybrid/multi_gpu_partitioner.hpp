// Multi-GPU GP-metis — the extension the paper names as future work:
// "the partitioning algorithm should be extended to multiple GPUs for
// handling even larger graphs [that do not fit into global memory]".
//
// Design (ours; the paper only states the goal):
//   * the vertex set is block-split across D devices; each device holds
//     only its local subgraph plus halo arcs (global ids of remote
//     neighbours), so per-device memory is ~|G|/D;
//   * coarsening runs the single-GPU kernels per device with matching
//     restricted to local neighbours (halo arcs are never matched — the
//     same restriction ParMetis uses between ranks); global coarse ids
//     come from a host-side offset scan, and each level performs one
//     halo-cmap exchange through the host (metered D2H+H2D);
//   * once the combined coarse graph is small it is gathered to the host
//     and the CPU stage (mt-metis) runs exactly as in single-GPU GP-metis;
//   * uncoarsening projects per device; refinement proposes on the
//     devices (same lock-free buffered kernels) and the host replays the
//     gathered requests deterministically against the true partition
//     weights, then scatters label updates back — the simplest scheme
//     that keeps the balance constraint exact across devices.
#pragma once

#include "core/partitioner.hpp"

namespace gp {

class MultiGpuPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "gp-metis-multi"; }
  [[nodiscard]] PartitionResult run(const CsrGraph& g,
                                    const PartitionOptions& opts) const override;
};

struct MultiGpuLog {
  int devices = 0;
  int gpu_coarsen_levels = 0;
  std::size_t peak_device_bytes = 0;  ///< max over devices of peak usage
  std::uint64_t halo_exchange_bytes = 0;
  std::uint64_t refine_replay_moves = 0;
  // Degradation trail (mirrors PartitionResult::health for quick checks).
  int  attempts = 0;         ///< multi-GPU attempts made (1 = clean first try)
  int  devices_lost = 0;     ///< devices excluded after injected failures
  bool cpu_fallback = false; ///< true when the run degraded to pure mt-metis
};

PartitionResult multi_gpu_run(const CsrGraph& g, const PartitionOptions& opts,
                              MultiGpuLog* log);

}  // namespace gp
