#include "io/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace gp {

namespace {

constexpr char kMagic[8] = {'G', 'P', 'M', 'E', 'T', 'I', 'S', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("binary graph: truncated stream");
  return v;
}

template <typename T>
std::vector<T> read_vec(std::istream& in, std::size_t n) {
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw std::runtime_error("binary graph: truncated stream");
  return v;
}

}  // namespace

void write_binary_graph(std::ostream& out, const CsrGraph& g) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::int64_t>(out, g.num_vertices());
  write_pod<std::int64_t>(out, g.num_arcs());
  write_vec(out, g.adjp());
  write_vec(out, g.adjncy());
  write_vec(out, g.adjwgt());
  write_vec(out, g.vwgt());
}

void write_binary_graph_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_binary_graph(out, g);
}

CsrGraph read_binary_graph(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("binary graph: bad magic");
  }
  const auto n = read_pod<std::int64_t>(in);
  const auto arcs = read_pod<std::int64_t>(in);
  if (n < 0 || arcs < 0) throw std::runtime_error("binary graph: bad sizes");
  auto adjp = read_vec<eid_t>(in, static_cast<std::size_t>(n) + 1);
  auto adjncy = read_vec<vid_t>(in, static_cast<std::size_t>(arcs));
  auto adjwgt = read_vec<wgt_t>(in, static_cast<std::size_t>(arcs));
  auto vwgt = read_vec<wgt_t>(in, static_cast<std::size_t>(n));
  if (!adjp.empty() && adjp.back() != arcs) {
    throw std::runtime_error("binary graph: adjp/arc count mismatch");
  }
  return CsrGraph(std::move(adjp), std::move(adjncy), std::move(adjwgt),
                  std::move(vwgt));
}

CsrGraph read_binary_graph_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_binary_graph(in);
}

}  // namespace gp
