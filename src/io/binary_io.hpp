// Binary CSR snapshot format — fast save/load for large generated
// instances (regenerating a 20M-vertex synthetic road network takes far
// longer than reading its CSR arrays back).
//
// Layout (little-endian, fixed-width):
//   magic   "GPMETIS1"           8 bytes
//   n       int64
//   arcs    int64
//   adjp    (n+1) * int64
//   adjncy  arcs * int32
//   adjwgt  arcs * int64
//   vwgt    n * int64
#pragma once

#include <iosfwd>
#include <string>

#include "core/csr_graph.hpp"

namespace gp {

void write_binary_graph(std::ostream& out, const CsrGraph& g);
void write_binary_graph_file(const std::string& path, const CsrGraph& g);

/// Throws std::runtime_error on bad magic / truncated stream /
/// inconsistent sizes.
[[nodiscard]] CsrGraph read_binary_graph(std::istream& in);
[[nodiscard]] CsrGraph read_binary_graph_file(const std::string& path);

}  // namespace gp
