// DIMACS-9 shortest-path challenge .gr format (the USA road networks the
// paper uses are distributed this way):
//   c <comment>
//   p sp <n> <m>          (m = number of directed arcs)
//   a <u> <v> <w>         (1-based directed arc)
// We fold directed arcs into an undirected weighted graph (duplicate
// arcs merged by the builder).
#pragma once

#include <iosfwd>
#include <string>

#include "core/csr_graph.hpp"

namespace gp {

[[nodiscard]] CsrGraph read_dimacs_gr(std::istream& in);
[[nodiscard]] CsrGraph read_dimacs_gr_file(const std::string& path);

void write_dimacs_gr(std::ostream& out, const CsrGraph& g);
void write_dimacs_gr_file(const std::string& path, const CsrGraph& g);

}  // namespace gp
