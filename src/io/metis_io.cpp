#include "io/metis_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gp {

namespace {

/// Line-tracking reader: next non-comment, non-empty line; false at EOF.
/// `lineno` always holds the 1-based physical line number of `line`.
bool next_data_line(std::istream& in, std::string& line, std::int64_t& lineno) {
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i == line.size()) continue;
    if (line[i] == '%') continue;
    return true;
  }
  return false;
}

[[noreturn]] void metis_error(std::int64_t lineno, const std::string& what) {
  throw std::invalid_argument("metis: line " + std::to_string(lineno) + ": " +
                              what);
}

/// The remainder of a parsed line must be whitespace — a stray token
/// (letters, punctuation) means the file is not what it claims to be.
void require_consumed(std::istringstream& ls, std::int64_t lineno,
                      const std::string& where) {
  ls.clear();
  std::string rest;
  if (ls >> rest) {
    metis_error(lineno, "unparseable token '" + rest + "' in " + where);
  }
}

}  // namespace

CsrGraph read_metis_graph(std::istream& in) {
  std::string line;
  std::int64_t lineno = 0;
  if (!next_data_line(in, line, lineno)) {
    throw std::invalid_argument(
        "metis: missing header (empty or comment-only file)");
  }
  std::istringstream hdr(line);
  std::int64_t n = 0, m = 0;
  int fmt = 0;
  if (!(hdr >> n >> m) || n < 0 || m < 0) {
    metis_error(lineno, "bad header '" + line +
                            "' (want '<vertices> <edges> [fmt]', both "
                            "non-negative)");
  }
  std::string fmt_str;
  if (hdr >> fmt_str) {
    try {
      std::size_t used = 0;
      fmt = std::stoi(fmt_str, &used);
      if (used != fmt_str.size()) throw std::invalid_argument(fmt_str);
    } catch (const std::exception&) {
      metis_error(lineno, "bad format field '" + fmt_str + "' in header");
    }
    if (fmt < 0 || fmt > 111 || fmt % 10 > 1 || (fmt / 10) % 10 > 1 ||
        fmt / 100 > 1) {
      metis_error(lineno, "unsupported format code " + std::to_string(fmt) +
                              " (want a 3-digit code of 0s and 1s)");
    }
  }
  require_consumed(hdr, lineno, "header");
  if (fmt / 100 == 1) {
    metis_error(lineno, "multi-constraint vertex sizes (fmt 1xx) are not "
                        "supported");
  }
  const bool has_ewgt = (fmt % 10) == 1;
  const bool has_vwgt = (fmt / 10) % 10 == 1;

  GraphBuilder b(static_cast<vid_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    if (!next_data_line(in, line, lineno)) {
      metis_error(lineno, "unexpected end of file: header promises " +
                              std::to_string(n) + " vertex lines, got " +
                              std::to_string(v));
    }
    std::istringstream ls(line);
    if (has_vwgt) {
      wgt_t w;
      if (!(ls >> w)) {
        metis_error(lineno, "vertex " + std::to_string(v + 1) +
                                ": missing or non-numeric vertex weight");
      }
      if (w <= 0) {
        metis_error(lineno, "vertex " + std::to_string(v + 1) +
                                ": vertex weight " + std::to_string(w) +
                                " must be positive");
      }
      b.set_vertex_weight(static_cast<vid_t>(v), w);
    }
    std::int64_t u;
    while (ls >> u) {
      if (u < 1 || u > n) {
        metis_error(lineno, "vertex " + std::to_string(v + 1) +
                                ": neighbour " + std::to_string(u) +
                                " outside [1, " + std::to_string(n) + "]");
      }
      if (u - 1 == v) {
        metis_error(lineno, "vertex " + std::to_string(v + 1) +
                                ": self-loop is not allowed");
      }
      wgt_t w = 1;
      if (has_ewgt) {
        if (!(ls >> w)) {
          metis_error(lineno, "vertex " + std::to_string(v + 1) +
                                  ": neighbour " + std::to_string(u) +
                                  " has no edge weight (fmt says weighted)");
        }
        if (w <= 0) {
          metis_error(lineno, "vertex " + std::to_string(v + 1) +
                                  ": edge weight " + std::to_string(w) +
                                  " must be positive");
        }
      }
      // Each undirected edge appears twice; add it once.
      if (u - 1 > v) b.add_edge(static_cast<vid_t>(v), static_cast<vid_t>(u - 1), w);
    }
    require_consumed(ls, lineno,
                     "adjacency list of vertex " + std::to_string(v + 1));
  }
  if (next_data_line(in, line, lineno)) {
    metis_error(lineno, "trailing data after the last promised vertex line");
  }
  CsrGraph g = b.build();
  if (g.num_edges() != m) {
    throw std::invalid_argument(
        "metis: header claims " + std::to_string(m) + " edges, file has " +
        std::to_string(g.num_edges()) +
        " (each undirected edge must be listed from both endpoints)");
  }
  return g;
}

CsrGraph read_metis_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_metis_graph(in);
}

void write_metis_graph(std::ostream& out, const CsrGraph& g) {
  bool has_vwgt = false, has_ewgt = false;
  for (const auto w : g.vwgt()) has_vwgt |= (w != 1);
  for (const auto w : g.adjwgt()) has_ewgt |= (w != 1);
  const int fmt = (has_vwgt ? 10 : 0) + (has_ewgt ? 1 : 0);

  out << g.num_vertices() << ' ' << g.num_edges();
  if (fmt) out << ' ' << (fmt < 10 ? "00" : "0") << fmt;
  out << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    bool first = true;
    if (has_vwgt) {
      out << g.vertex_weight(v);
      first = false;
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!first) out << ' ';
      out << (nbrs[i] + 1);
      if (has_ewgt) out << ' ' << wts[i];
      first = false;
    }
    out << '\n';
  }
}

void write_metis_graph_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_metis_graph(out, g);
}

std::vector<part_t> read_partition_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<part_t> where;
  part_t p;
  while (in >> p) where.push_back(p);
  return where;
}

void write_partition_file(const std::string& path,
                          const std::vector<part_t>& where) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  for (const auto p : where) out << p << '\n';
}

}  // namespace gp
