#include "io/metis_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gp {

namespace {

/// Next non-comment, non-empty line; false at EOF.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i == line.size()) continue;
    if (line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

CsrGraph read_metis_graph(std::istream& in) {
  std::string line;
  if (!next_data_line(in, line)) {
    throw std::runtime_error("metis: missing header");
  }
  std::istringstream hdr(line);
  std::int64_t n = 0, m = 0;
  int fmt = 0;
  hdr >> n >> m;
  if (!hdr || n < 0 || m < 0) throw std::runtime_error("metis: bad header");
  std::string fmt_str;
  if (hdr >> fmt_str) fmt = std::stoi(fmt_str);
  const bool has_ewgt = (fmt % 10) == 1;
  const bool has_vwgt = (fmt / 10) % 10 == 1;

  GraphBuilder b(static_cast<vid_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    if (!next_data_line(in, line)) {
      throw std::runtime_error("metis: unexpected EOF at vertex " +
                               std::to_string(v + 1));
    }
    std::istringstream ls(line);
    if (has_vwgt) {
      wgt_t w;
      if (!(ls >> w) || w <= 0) {
        throw std::runtime_error("metis: bad vertex weight at vertex " +
                                 std::to_string(v + 1));
      }
      b.set_vertex_weight(static_cast<vid_t>(v), w);
    }
    std::int64_t u;
    while (ls >> u) {
      if (u < 1 || u > n) {
        throw std::runtime_error("metis: neighbour out of range at vertex " +
                                 std::to_string(v + 1));
      }
      wgt_t w = 1;
      if (has_ewgt && !(ls >> w)) {
        throw std::runtime_error("metis: missing edge weight at vertex " +
                                 std::to_string(v + 1));
      }
      // Each undirected edge appears twice; add it once.
      if (u - 1 > v) b.add_edge(static_cast<vid_t>(v), static_cast<vid_t>(u - 1), w);
    }
  }
  CsrGraph g = b.build();
  if (g.num_edges() != m) {
    throw std::runtime_error("metis: header claims " + std::to_string(m) +
                             " edges, file has " +
                             std::to_string(g.num_edges()));
  }
  return g;
}

CsrGraph read_metis_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_metis_graph(in);
}

void write_metis_graph(std::ostream& out, const CsrGraph& g) {
  bool has_vwgt = false, has_ewgt = false;
  for (const auto w : g.vwgt()) has_vwgt |= (w != 1);
  for (const auto w : g.adjwgt()) has_ewgt |= (w != 1);
  const int fmt = (has_vwgt ? 10 : 0) + (has_ewgt ? 1 : 0);

  out << g.num_vertices() << ' ' << g.num_edges();
  if (fmt) out << ' ' << (fmt < 10 ? "00" : "0") << fmt;
  out << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    bool first = true;
    if (has_vwgt) {
      out << g.vertex_weight(v);
      first = false;
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!first) out << ' ';
      out << (nbrs[i] + 1);
      if (has_ewgt) out << ' ' << wts[i];
      first = false;
    }
    out << '\n';
  }
}

void write_metis_graph_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_metis_graph(out, g);
}

std::vector<part_t> read_partition_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<part_t> where;
  part_t p;
  while (in >> p) where.push_back(p);
  return where;
}

void write_partition_file(const std::string& path,
                          const std::vector<part_t>& where) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  for (const auto p : where) out << p << '\n';
}

}  // namespace gp
