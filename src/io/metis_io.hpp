// METIS .graph file format reader/writer.
//
// The paper's inputs come from the DIMACS-10 collection, which is
// distributed in this format:
//   header:  <n> <m> [fmt [ncon]]     (m = undirected edge count)
//   line v:  [vwgt] u1 [w1] u2 [w2] ...  (1-based neighbour ids)
// fmt: 0/blank = no weights, 1 = edge weights, 10 = vertex weights,
// 11 = both.  Comment lines start with '%'.
#pragma once

#include <iosfwd>
#include <string>

#include "core/csr_graph.hpp"

namespace gp {

/// Parses a METIS .graph stream.  Throws std::runtime_error on malformed
/// input (bad header, neighbour out of range, asymmetric list lengths).
[[nodiscard]] CsrGraph read_metis_graph(std::istream& in);
[[nodiscard]] CsrGraph read_metis_graph_file(const std::string& path);

/// Writes a METIS .graph stream (fmt chosen from the weights present).
void write_metis_graph(std::ostream& out, const CsrGraph& g);
void write_metis_graph_file(const std::string& path, const CsrGraph& g);

/// Reads/writes a partition file (one part id per line, Metis convention).
[[nodiscard]] std::vector<part_t> read_partition_file(const std::string& path);
void write_partition_file(const std::string& path,
                          const std::vector<part_t>& where);

}  // namespace gp
