#include "model/machine_model.hpp"

#include <algorithm>
#include <cmath>

namespace gp {

void CostLedger::push(CostEntry e) {
  total_ += e.seconds;
  entries_.push_back(std::move(e));
}

void CostLedger::charge_serial(const std::string& label,
                               std::uint64_t work_units) {
  CostEntry e;
  e.label = label;
  e.work_units = work_units;
  e.seconds = static_cast<double>(work_units) / model_.cpu_work_rate;
  push(std::move(e));
}

void CostLedger::charge_mt_pass(
    const std::string& label,
    const std::vector<std::uint64_t>& per_thread_work) {
  std::uint64_t mx = 0;
  for (const auto w : per_thread_work) mx = std::max(mx, w);
  CostEntry e;
  e.label = label;
  std::uint64_t sum = 0;
  for (const auto w : per_thread_work) sum += w;
  e.work_units = sum;
  const double avg =
      per_thread_work.empty()
          ? 0.0
          : static_cast<double>(sum) /
                static_cast<double>(per_thread_work.size());
  e.imbalance = (avg > 0) ? static_cast<double>(mx) / avg : 1.0;
  const double per_core_rate = model_.cpu_work_rate * model_.cpu_parallel_eff;
  e.seconds = static_cast<double>(mx) / per_core_rate + model_.cpu_barrier_s;
  push(std::move(e));
}

void CostLedger::charge_mt_dynamic_pass(const std::string& label,
                                        std::uint64_t total_work,
                                        std::uint64_t max_chunk_work,
                                        int num_threads) {
  CostEntry e;
  e.label = label;
  e.work_units = total_work;
  const double avg = num_threads > 0 ? static_cast<double>(total_work) /
                                           static_cast<double>(num_threads)
                                     : 0.0;
  const double makespan =
      std::max(avg, static_cast<double>(max_chunk_work));
  e.imbalance = (avg > 0) ? makespan / avg : 1.0;
  const double per_core_rate = model_.cpu_work_rate * model_.cpu_parallel_eff;
  e.seconds = makespan / per_core_rate + model_.cpu_barrier_s;
  push(std::move(e));
}

void CostLedger::charge_gpu_kernel(const std::string& label,
                                   std::uint64_t total_work,
                                   double imbalance) {
  CostEntry e;
  e.label = label;
  e.work_units = total_work;
  e.imbalance = std::max(1.0, imbalance);
  e.launches = 1;
  e.seconds =
      ((static_cast<double>(total_work) +
        (total_work > 0 ? model_.gpu_low_occupancy_tail_units : 0.0)) /
       model_.gpu_work_rate) *
          std::pow(e.imbalance, model_.gpu_imbalance_exp) +
      model_.gpu_kernel_launch_s;
  push(std::move(e));
}

void CostLedger::charge_gpu_fused(const std::string& label,
                                  const std::vector<GpuFusedStage>& stages) {
  // Header: the dispatch itself.  Launch overhead once, and ONE
  // low-occupancy ramp for the whole chained pipeline (stages hand work
  // over through the scoreboard without a device-wide drain, so the
  // machine fills once, not per stage).
  std::uint64_t total_work = 0;
  for (const auto& s : stages) total_work += s.work_units;
  CostEntry h;
  h.label = label;
  h.launches = 1;
  h.seconds = model_.gpu_kernel_launch_s +
              (total_work > 0
                   ? model_.gpu_low_occupancy_tail_units / model_.gpu_work_rate
                   : 0.0);
  push(std::move(h));
  // Constituent sweeps: full-bandwidth work under each stage's own warp
  // imbalance — fusing saves dispatch overhead, never memory traffic.
  for (const auto& s : stages) {
    CostEntry e;
    e.label = label + "/" + s.name;
    e.work_units = s.work_units;
    e.imbalance = std::max(1.0, s.imbalance);
    e.seconds = (static_cast<double>(s.work_units) / model_.gpu_work_rate) *
                std::pow(e.imbalance, model_.gpu_imbalance_exp);
    push(std::move(e));
  }
}

void CostLedger::charge_transfer(const std::string& label,
                                 std::uint64_t bytes) {
  CostEntry e;
  e.label = label;
  e.bytes = bytes;
  e.seconds = model_.pcie_latency_s +
              static_cast<double>(bytes) / model_.pcie_bw_bytes_per_s;
  push(std::move(e));
}

void CostLedger::charge_messages(const std::string& label,
                                 std::uint64_t num_messages,
                                 std::uint64_t bytes) {
  CostEntry e;
  e.label = label;
  e.bytes = bytes;
  e.seconds = static_cast<double>(num_messages) * model_.net_alpha_s +
              static_cast<double>(bytes) * model_.net_beta_s_per_byte;
  push(std::move(e));
}

void CostLedger::charge_raw(const std::string& label, double seconds) {
  CostEntry e;
  e.label = label;
  e.seconds = seconds;
  push(std::move(e));
}

void CostLedger::merge(const std::string& prefix, const CostLedger& other) {
  for (const auto& e : other.entries()) {
    CostEntry copy = e;
    copy.label = prefix + copy.label;
    push(std::move(copy));
  }
}

double CostLedger::seconds_with_prefix(const std::string& prefix) const {
  double s = 0;
  for (const auto& e : entries_) {
    if (e.label.rfind(prefix, 0) == 0) s += e.seconds;
  }
  return s;
}

std::uint64_t CostLedger::bytes_with_prefix(const std::string& prefix) const {
  std::uint64_t b = 0;
  for (const auto& e : entries_) {
    if (e.label.rfind(prefix, 0) == 0) b += e.bytes;
  }
  return b;
}

std::uint64_t CostLedger::launches_with_prefix(const std::string& prefix) const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) {
    if (e.label.rfind(prefix, 0) == 0) n += e.launches;
  }
  return n;
}

void CostLedger::clear() {
  entries_.clear();
  total_ = 0;
}

std::string CostLedger::to_json() const {
  std::string out = "[\n";
  char buf[256];
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    std::snprintf(buf, sizeof(buf),
                  "  {\"label\": \"%s\", \"seconds\": %.9g, "
                  "\"work_units\": %llu, \"bytes\": %llu, "
                  "\"imbalance\": %.4g}%s\n",
                  e.label.c_str(), e.seconds,
                  static_cast<unsigned long long>(e.work_units),
                  static_cast<unsigned long long>(e.bytes), e.imbalance,
                  i + 1 < entries_.size() ? "," : "");
    out += buf;
  }
  out += "]\n";
  return out;
}

}  // namespace gp
