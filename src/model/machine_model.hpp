// Analytical machine cost model — the timing substitution for the paper's
// testbed (see DESIGN.md §3.2).
//
// This container has one CPU core and no GPU, so the paper's wall-clock
// speedups cannot be measured directly.  Instead, every substrate meters
// its actual algorithmic work (arcs touched per thread / per kernel, bytes
// moved over the simulated PCIe bus, messages through the simulated MPI
// layer) and this model converts the metered work into *modeled seconds*
// on the paper's machine: an 8-core Intel Xeon E5540 plus an NVIDIA
// GeForce GTX Titan over PCIe 2.0.
//
// The unit of work is one adjacency-arc touch (reading a neighbour id +
// weight and doing O(1) bookkeeping).  Rates below are calibrated so that
// the serial baseline lands in the few-seconds range real Metis showed on
// these graph sizes in 2016 — the *ratios* between substrates are what the
// reproduction claims, not the absolute values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gp {

struct MachineModel {
  // --- CPU (Xeon E5540, 2.53 GHz Nehalem, 8 cores) ---
  double cpu_work_rate = 55e6;   ///< work-units/s for one scalar core
  int    cpu_cores = 8;
  double cpu_barrier_s = 25e-6;  ///< fork-join / barrier cost per pass
  /// Multithreaded memory-bound code does not scale linearly on a 2009
  /// Nehalem (3 memory channels): effective parallel efficiency.
  double cpu_parallel_eff = 0.82;

  // --- GPU (GTX Titan: 14 SMX, 2688 cores, 288 GB/s GDDR5) ---
  /// Effective device-wide rate for irregular (graph) kernels.  Far below
  /// peak: the vertex-indexed reads coalesce (Fig. 2) but the adjacency
  /// reads are data-dependent gathers, so the kernels are memory-latency
  /// bound.  ~1 G arc-touches/s matches what 2013-era GPUs sustained on
  /// comparable irregular kernels (BFS/SpMV-class).
  double gpu_work_rate = 0.9e9;
  double gpu_kernel_launch_s = 12e-6;
  /// Smooth low-occupancy penalty: a kernel's modeled time is
  /// (work + tail) / rate — small launches cannot fill 14 SMX worth of
  /// in-flight memory requests, so they run at a fraction of the
  /// saturated rate (the effect behind the paper's GPU->CPU threshold).
  double gpu_low_occupancy_tail_units = 2.5e4;
  /// Penalty exponent applied to measured warp-level imbalance: effective
  /// time = (work / rate) * imbalance^gpu_imbalance_exp.
  double gpu_imbalance_exp = 1.0;

  // --- PCIe 2.0 x16 host<->device link ---
  double pcie_bw_bytes_per_s = 5.5e9;
  double pcie_latency_s = 12e-6;

  // --- Simulated MPI (all ranks on the same 8-core host, as in the
  //     paper's ParMetis runs): shared-memory transport ---
  double net_alpha_s = 6e-6;            ///< per-message latency
  double net_beta_s_per_byte = 1.0 / 2.5e9;  ///< inverse bandwidth

  /// The paper's testbed configuration.
  static MachineModel paper_testbed() { return MachineModel{}; }
};

/// One metered cost entry (a kernel launch, a parallel pass, a transfer...).
struct CostEntry {
  std::string   label;
  double        seconds = 0;
  std::uint64_t work_units = 0;
  std::uint64_t bytes = 0;
  double        imbalance = 1.0;
  /// Kernel dispatches this entry represents: 1 for a launch header (plain
  /// or fused), 0 for fused per-stage sweeps, transfers, and CPU passes —
  /// so launches_with_prefix() counts dispatches, not ledger rows.
  std::uint32_t launches = 0;
};

/// One constituent sweep of a fused (single-dispatch) GPU kernel: the
/// stage's metered work and warp imbalance.  See CostLedger::charge_gpu_fused.
struct GpuFusedStage {
  std::string   name;
  std::uint64_t work_units = 0;
  double        imbalance = 1.0;
};

/// Accumulates modeled time.  Each partitioner carries one ledger; phases
/// charge entries through the typed helpers below.
class CostLedger {
 public:
  explicit CostLedger(MachineModel model = MachineModel::paper_testbed())
      : model_(model) {}

  const MachineModel& model() const { return model_; }

  /// Serial CPU work (one core).
  void charge_serial(const std::string& label, std::uint64_t work_units);

  /// One barrier-synchronized multithreaded pass; `per_thread_work` is the
  /// measured work of each logical thread — the max determines the time.
  void charge_mt_pass(const std::string& label,
                      const std::vector<std::uint64_t>& per_thread_work);

  /// One barrier-synchronized multithreaded pass under DYNAMIC chunk
  /// scheduling.  Which executor drains which chunk on this container is
  /// host-scheduling noise (a one-core box funnels most chunks through
  /// one worker), so the per-slot split must not be used as the model
  /// input.  On the modeled `num_threads`-core testbed a greedy chunk
  /// scheduler achieves the classic makespan bound
  /// max(total/num_threads, heaviest chunk), which is what gets charged.
  void charge_mt_dynamic_pass(const std::string& label,
                              std::uint64_t total_work,
                              std::uint64_t max_chunk_work, int num_threads);

  /// One GPU kernel launch; `per_chunk_work` is the measured work of each
  /// scheduling chunk (≈ warp), whose imbalance stretches the kernel.
  void charge_gpu_kernel(const std::string& label, std::uint64_t total_work,
                         double imbalance);

  /// One FUSED (single-dispatch) GPU kernel made of several dependent
  /// sweeps (DESIGN.md §3.9).  The fused-launch charging rule: launch
  /// overhead and the low-occupancy ramp are credited ONCE for the whole
  /// dispatch — decoupled chaining pipelines the stages, so there is no
  /// per-stage drain — but every constituent sweep's memory work is
  /// charged honestly at full bandwidth under its own warp imbalance.
  /// Emits a header entry `label` (the dispatch, launches=1) plus one
  /// entry `label + "/" + stage.name` per sweep (launches=0), so phase
  /// roll-ups and the tiling gate see every second exactly once.
  void charge_gpu_fused(const std::string& label,
                        const std::vector<GpuFusedStage>& stages);

  /// One host<->device copy.
  void charge_transfer(const std::string& label, std::uint64_t bytes);

  /// Point-to-point / collective traffic: n messages totalling `bytes`,
  /// plus `cpu_work` units of rank-local processing (already divided among
  /// ranks by the caller if concurrent).
  void charge_messages(const std::string& label, std::uint64_t num_messages,
                       std::uint64_t bytes);

  /// Adds raw seconds (e.g. from a sub-ledger roll-up).
  void charge_raw(const std::string& label, double seconds);

  /// Merges another ledger's entries (prefixing labels).
  void merge(const std::string& prefix, const CostLedger& other);

  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] const std::vector<CostEntry>& entries() const {
    return entries_;
  }

  /// Sum of entries whose label starts with `prefix`.
  [[nodiscard]] double seconds_with_prefix(const std::string& prefix) const;

  /// Total bytes of entries whose label starts with `prefix` (transfers).
  [[nodiscard]] std::uint64_t bytes_with_prefix(
      const std::string& prefix) const;

  /// Kernel dispatches among entries whose label starts with `prefix`
  /// (fused launches count once, their stage rows zero) — the per-phase
  /// kernel-count breakdown behind BENCH_e2e.json's `kernels_by_phase`.
  [[nodiscard]] std::uint64_t launches_with_prefix(
      const std::string& prefix) const;

  void clear();

  /// Serializes the entries as a JSON array (label, seconds, work_units,
  /// bytes, imbalance) — for offline analysis of a run's cost breakdown
  /// (`gpmetis --ledger-json <path>` writes this).
  [[nodiscard]] std::string to_json() const;

 private:
  void push(CostEntry e);

  MachineModel           model_;
  std::vector<CostEntry> entries_;
  double                 total_ = 0;
};

}  // namespace gp
