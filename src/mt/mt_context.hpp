// Shared context for the mt-metis-style shared-memory algorithms: the
// worker pool (T logical threads with static vertex ownership), the cost
// ledger they charge, and the seed stream.
#pragma once

#include <cstdint>

#include "model/machine_model.hpp"
#include "util/thread_pool.hpp"

namespace gp {

struct MtContext {
  ThreadPool* pool;        ///< T persistent workers (T = options.threads)
  CostLedger* ledger;      ///< phase costs are charged here (nullable)
  std::uint64_t seed = 1;

  [[nodiscard]] int threads() const { return pool->size(); }

  void charge_pass(const std::string& label,
                   const std::vector<std::uint64_t>& per_thread_work) const {
    if (ledger) ledger->charge_mt_pass(label, per_thread_work);
  }
  void charge_serial(const std::string& label, std::uint64_t work) const {
    if (ledger) ledger->charge_serial(label, work);
  }
  /// For dynamically scheduled passes: per-slot splits reflect host
  /// scheduling, not the algorithm, so charge total + heaviest chunk.
  void charge_dynamic_pass(const std::string& label, std::uint64_t total_work,
                           std::uint64_t max_chunk_work) const {
    if (ledger) {
      ledger->charge_mt_dynamic_pass(label, total_work, max_chunk_work,
                                     threads());
    }
  }
};

}  // namespace gp
