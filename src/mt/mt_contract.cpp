#include "mt/mt_contract.hpp"

#include <algorithm>

#include "gpu/device_atomics.hpp"
#include "gpu/hash_table.hpp"
#include "util/prefix_sum.hpp"

namespace gp {

CsrGraph mt_contract(const CsrGraph& fine, const MatchResult& m,
                     const MtContext& ctx, int level) {
  const vid_t nc = m.n_coarse;
  const int nt = ctx.threads();

  // leaders[c] = fine leader vertex of coarse vertex c.  One writer per
  // slot on a clean cmap; an injected cmap corruption can alias two
  // leaders onto one slot, so the store is the annotated racy kind
  // (either leader is an acceptable winner — the audits judge the rest).
  std::vector<vid_t> leaders(static_cast<std::size_t>(nc));
  ctx.pool->parallel_for_blocked(
      fine.num_vertices(), [&](int, std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<vid_t>(i);
          if (v <= m.match[static_cast<std::size_t>(v)]) {
            racy_store(leaders[static_cast<std::size_t>(
                           m.cmap[static_cast<std::size_t>(v)])],
                       v);
          }
        }
      });

  // Per-thread merge into local buffers + per-coarse-vertex degree.
  struct ThreadOut {
    std::vector<vid_t> adjncy;
    std::vector<wgt_t> adjwgt;
  };
  std::vector<ThreadOut> outs(static_cast<std::size_t>(nt));
  std::vector<eid_t> cdeg(static_cast<std::size_t>(nc) + 1, 0);
  std::vector<wgt_t> cvwgt(static_cast<std::size_t>(nc), 0);
  std::vector<std::uint64_t> work(static_cast<std::size_t>(nt), 0);

  ctx.pool->parallel_for_blocked(
      nc, [&](int t, std::int64_t b, std::int64_t e) {
        auto& out = outs[static_cast<std::size_t>(t)];
        ClusteredHashTable table(64);
        std::uint64_t w = 0;
        std::vector<std::pair<vid_t, wgt_t>> sorted;
        for (std::int64_t i = b; i < e; ++i) {
          const auto c = static_cast<vid_t>(i);
          const vid_t v = leaders[static_cast<std::size_t>(c)];
          const vid_t u = m.match[static_cast<std::size_t>(v)];
          cvwgt[static_cast<std::size_t>(c)] =
              fine.vertex_weight(v) + (u != v ? fine.vertex_weight(u) : 0);
          table.clear();
          auto absorb = [&](vid_t src) {
            const auto nbrs = fine.neighbors(src);
            const auto wts = fine.neighbor_weights(src);
            w += nbrs.size();
            for (std::size_t j = 0; j < nbrs.size(); ++j) {
              const vid_t cu =
                  m.cmap[static_cast<std::size_t>(nbrs[j])];
              if (cu == c) continue;
              table.add(cu, wts[j]);
            }
          };
          absorb(v);
          if (u != v) absorb(u);
          sorted.clear();
          table.for_each(
              [&](vid_t k, wgt_t x) { sorted.emplace_back(k, x); });
          std::sort(sorted.begin(), sorted.end());
          cdeg[static_cast<std::size_t>(c) + 1] =
              static_cast<eid_t>(sorted.size());
          for (const auto& [k, x] : sorted) {
            out.adjncy.push_back(k);
            out.adjwgt.push_back(x);
          }
        }
        work[static_cast<std::size_t>(t)] = w;
      });
  ctx.charge_pass("coarsen/contract/merge/L" + std::to_string(level), work);

  // Prefix sum of coarse degrees -> adjp; copy thread buffers in place.
  inclusive_scan_parallel(*ctx.pool, cdeg);
  std::vector<vid_t> cadjncy(static_cast<std::size_t>(cdeg.back()));
  std::vector<wgt_t> cadjwgt(static_cast<std::size_t>(cdeg.back()));
  std::fill(work.begin(), work.end(), 0);
  ctx.pool->parallel_for_blocked(
      nc, [&](int t, std::int64_t b, std::int64_t e) {
        // This thread produced the adjacency of coarse ids [b, e) in its
        // buffer, in order; the global offset is cdeg[b].
        if (b >= e) return;
        const auto& out = outs[static_cast<std::size_t>(t)];
        const auto dst0 = static_cast<std::size_t>(
            cdeg[static_cast<std::size_t>(b)]);
        std::copy(out.adjncy.begin(), out.adjncy.end(),
                  cadjncy.begin() + static_cast<std::ptrdiff_t>(dst0));
        std::copy(out.adjwgt.begin(), out.adjwgt.end(),
                  cadjwgt.begin() + static_cast<std::ptrdiff_t>(dst0));
        work[static_cast<std::size_t>(t)] = out.adjncy.size();
      });
  ctx.charge_pass("coarsen/contract/copy/L" + std::to_string(level), work);

  return CsrGraph(std::move(cdeg), std::move(cadjncy), std::move(cadjwgt),
                  std::move(cvwgt));
}

}  // namespace gp
