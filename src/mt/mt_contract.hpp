// Parallel contraction for the shared-memory partitioner: coarse vertices
// are statically divided among threads; each thread merges the adjacency
// lists of its collapsed pairs into thread-local buffers (hash-merged),
// after which a prefix sum over coarse degrees assembles the final CSR.
#pragma once

#include "core/csr_graph.hpp"
#include "core/matching.hpp"
#include "mt/mt_context.hpp"

namespace gp {

/// Contracts `fine` according to a valid (match, cmap).  Result equals
/// contract_serial (tested) but is built by the pool with metered work.
[[nodiscard]] CsrGraph mt_contract(const CsrGraph& fine,
                                   const MatchResult& m, const MtContext& ctx,
                                   int level);

}  // namespace gp
