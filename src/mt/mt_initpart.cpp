#include "mt/mt_initpart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/graph_ops.hpp"
#include "serial/bisection.hpp"
#include "util/rng.hpp"

namespace gp {

namespace {

struct GroupTask {
  CsrGraph           graph;
  std::vector<vid_t> ids;   ///< original (coarse-graph) vertex ids
  part_t             k;
  part_t             first_part;
  int                group_threads;
};

}  // namespace

Partition mt_initial_partition(const CsrGraph& g, part_t k, double eps,
                               const MtContext& ctx) {
  Partition p;
  p.k = k;
  p.where.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  if (k <= 1 || g.num_vertices() == 0) return p;

  const int depth_total = std::max(1, static_cast<int>(std::ceil(std::log2(k))));
  const double eps_level = eps / static_cast<double>(depth_total);

  // Breadth-first over the bisection tree: tasks at the same depth are
  // concurrent in the real system; within a task, `group_threads` threads
  // race bisection trials.  Execution here runs trials on the pool and
  // charges the modeled concurrent time per depth.
  std::vector<GroupTask> frontier;
  {
    GroupTask root;
    root.graph = g;  // copy: the coarse graph is small by construction
    root.ids.resize(static_cast<std::size_t>(g.num_vertices()));
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      root.ids[static_cast<std::size_t>(v)] = v;
    root.k = k;
    root.first_part = 0;
    root.group_threads = std::max(1, ctx.threads());
    frontier.push_back(std::move(root));
  }

  int depth = 0;
  std::uint64_t trial_seed = ctx.seed * 7919;
  while (!frontier.empty()) {
    std::vector<GroupTask> next;
    // Modeled per-thread work for this depth (index = logical thread).
    std::vector<std::uint64_t> depth_work(
        static_cast<std::size_t>(std::max(1, ctx.threads())), 0);
    int slot = 0;

    for (auto& task : frontier) {
      if (task.k == 1) {
        for (const vid_t id : task.ids)
          p.where[static_cast<std::size_t>(id)] = task.first_part;
        continue;
      }
      const part_t k0 = (task.k + 1) / 2;
      const wgt_t total = task.graph.total_vertex_weight();
      const wgt_t target0 = static_cast<wgt_t>(std::llround(
          static_cast<double>(total) * static_cast<double>(k0) /
          static_cast<double>(task.k)));

      // group_threads independent trials; best cut wins.  Trials run on
      // the pool (they are independent, so racing them is faithful).
      const int trials = std::max(1, task.group_threads);
      std::vector<BisectionResult> results(static_cast<std::size_t>(trials));
      std::vector<FmStats> fm_stats(static_cast<std::size_t>(trials));
      const wgt_t slack = std::max<wgt_t>(
          1, static_cast<wgt_t>(std::floor(static_cast<double>(target0) *
                                           eps_level)));
      // Balance window floors/caps keep both sides populous enough to
      // host their part counts (see rb_partition.cpp).
      const wgt_t min0 = std::max<wgt_t>(k0, target0 - slack);
      const wgt_t max0 =
          std::min<wgt_t>(total - (task.k - k0), target0 + slack);
      ctx.pool->parallel_for_blocked(
          trials, [&](int, std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
              Rng rng(trial_seed + static_cast<std::uint64_t>(i) * 104729ULL);
              auto bis = gggp_bisect(task.graph, target0, rng, 1);
              // gggp's cut is exact and FM tracks it exactly from there, so
              // neither end of the refinement needs an O(E) cut rescan.
              fm_stats[static_cast<std::size_t>(i)] = fm_refine_bisection(
                  task.graph, bis.side, min0, max0, 8, bis.cut);
              bis.cut = fm_stats[static_cast<std::size_t>(i)].cut_after;
              results[static_cast<std::size_t>(i)] = std::move(bis);
            }
          });
      trial_seed += static_cast<std::uint64_t>(trials);

      std::size_t best = 0;
      for (std::size_t i = 1; i < results.size(); ++i) {
        if (results[i].cut < results[best].cut) best = i;
      }
      // Each trial occupies one logical thread of the group.
      for (std::size_t i = 0; i < results.size(); ++i) {
        depth_work[static_cast<std::size_t>(
            (slot + static_cast<int>(i)) %
            static_cast<int>(depth_work.size()))] +=
            results[i].work_units + fm_stats[i].work_units;
      }
      slot += trials;

      // Split into subtasks.
      const auto& side = results[best].side;
      std::vector<char> mask0(side.size()), mask1(side.size());
      for (std::size_t v = 0; v < side.size(); ++v) {
        mask0[v] = (side[v] == 0);
        mask1[v] = (side[v] == 1);
      }
      std::vector<vid_t> map0, map1;
      GroupTask t0, t1;
      t0.graph = induced_subgraph(task.graph, mask0, &map0);
      t1.graph = induced_subgraph(task.graph, mask1, &map1);
      t0.ids.resize(static_cast<std::size_t>(t0.graph.num_vertices()));
      t1.ids.resize(static_cast<std::size_t>(t1.graph.num_vertices()));
      for (std::size_t v = 0; v < side.size(); ++v) {
        if (map0[v] != kInvalidVid)
          t0.ids[static_cast<std::size_t>(map0[v])] = task.ids[v];
        if (map1[v] != kInvalidVid)
          t1.ids[static_cast<std::size_t>(map1[v])] = task.ids[v];
      }
      t0.k = k0;
      t1.k = task.k - k0;
      t0.first_part = task.first_part;
      t1.first_part = task.first_part + k0;
      t0.group_threads = std::max(1, task.group_threads / 2);
      t1.group_threads = std::max(1, task.group_threads - t0.group_threads);
      next.push_back(std::move(t0));
      next.push_back(std::move(t1));
    }
    ctx.charge_pass("initpart/depth" + std::to_string(depth), depth_work);
    frontier = std::move(next);
    ++depth;
  }
  return p;
}

}  // namespace gp
