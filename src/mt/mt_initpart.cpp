#include "mt/mt_initpart.hpp"

#include <algorithm>

#include "serial/initpart_engine.hpp"

namespace gp {

Partition mt_initial_partition(const CsrGraph& g, part_t k, double eps,
                               const MtContext& ctx, int trials,
                               int fm_passes) {
  InitPartConfig cfg;
  cfg.k = k;
  cfg.eps = eps;
  cfg.trials = std::max(1, trials);
  cfg.fm_passes = fm_passes;
  cfg.seed_mode = InitSeedMode::kDerived;
  cfg.fm_per_trial = true;  // every trial is growth + FM, best refined cut
  // Same seed hash the historical implementation used: trial t of the
  // bisection with static BFS rank b draws from Rng(seed*7919 + b +
  // t*104729) — at trials == 1 this reproduces its 1-thread partitions.
  cfg.seed_base = ctx.seed * 7919ULL;
  cfg.pool = ctx.pool;
  cfg.ledger = ctx.ledger;
  cfg.model_threads = ctx.threads();
  return initpart_engine(g, cfg, nullptr);
}

}  // namespace gp
