// mt-metis-style parallel initial partitioning: independent GGGP+FM
// trials race per bisection (different derived seeds), the (cut, trial-id)
// minimum wins, and disjoint subtrees execute as independent pool tasks
// ("half of the threads work on one of the bisections and half of them
// partition the other bisection recursively").  Implemented on the shared
// engine of serial/initpart_engine.hpp in derived-seed mode, so the
// partition is byte-identical at any thread count.
#pragma once

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "mt/mt_context.hpp"

namespace gp {

/// Parallel recursive bisection into k parts.  `trials` independent
/// GGGP+FM attempts race per bisection (1 reproduces the historical
/// single-thread sequence); work is charged to ctx's ledger per level.
[[nodiscard]] Partition mt_initial_partition(const CsrGraph& g, part_t k,
                                             double eps, const MtContext& ctx,
                                             int trials = 1,
                                             int fm_passes = 8);

}  // namespace gp
