// mt-metis-style parallel initial partitioning: every thread bisects the
// coarse graph independently (different seeds), the minimum-cut bisection
// wins, and the thread group splits in half to recurse on the two sides
// ("half of the threads work on one of the bisections and half of them
// partition the other bisection recursively").
#pragma once

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "mt/mt_context.hpp"

namespace gp {

/// Parallel best-of-threads recursive bisection into k parts.
[[nodiscard]] Partition mt_initial_partition(const CsrGraph& g, part_t k,
                                             double eps, const MtContext& ctx);

}  // namespace gp
