#include "mt/mt_matching.hpp"

#include <atomic>

#include "gpu/device_atomics.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"

namespace gp {

MatchResult mt_match(const CsrGraph& g, const MtContext& ctx, int level,
                     MtMatchStats* stats) {
  const vid_t n = g.num_vertices();
  const int nt = ctx.threads();
  MatchResult r;
  r.match.assign(static_cast<std::size_t>(n), kInvalidVid);
  vid_t* match = r.match.data();

  std::vector<std::uint64_t> conflicts(static_cast<std::size_t>(nt), 0);

  // Work metering for the dynamic rounds: total plus heaviest chunk (the
  // model inputs — see CostLedger::charge_mt_dynamic_pass).
  std::atomic<std::uint64_t> total_w{0}, max_chunk_w{0};
  auto meter_chunk = [&](std::uint64_t w) {
    total_w.fetch_add(w, std::memory_order_relaxed);
    std::uint64_t cur = max_chunk_w.load(std::memory_order_relaxed);
    while (cur < w && !max_chunk_w.compare_exchange_weak(
                          cur, w, std::memory_order_relaxed)) {
    }
  };

  // --- Round 1: unsynchronized HEM, dynamically scheduled ---
  // Vertex degrees are skewed (power-law graphs), so chunks are handed to
  // workers from an atomic counter instead of static blocks: a worker that
  // drew hubs does not gate the pass.  One RNG per *worker* (not per
  // chunk), pre-created so the stream is decorrelated by (seed, level,
  // worker) and — with one worker — consumed in the same ascending-vertex
  // order as a single static block.
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    rngs.emplace_back(ctx.seed * 0x9E3779B97F4A7C15ULL +
                      static_cast<std::uint64_t>(level) * 1000003ULL +
                      static_cast<std::uint64_t>(t));
  }
  const std::int64_t grain = ctx.pool->dynamic_grain(n);
  ctx.pool->parallel_for_dynamic(
      n, grain, [&](int t, std::int64_t b, std::int64_t e) {
        Rng& rng = rngs[static_cast<std::size_t>(t)];
        std::uint64_t w = 0;
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<vid_t>(i);
          if (racy_load(match[v]) != kInvalidVid) continue;
          const auto nbrs = g.neighbors(v);
          const auto wts = g.neighbor_weights(v);
          w += nbrs.size();
          // HEM with random tie-breaking: scan from a random rotation so
          // equal-weight graphs degrade to random matching (paper: "if
          // all the edges have the same weight, a random matching method
          // is used").
          vid_t best = kInvalidVid;
          wgt_t best_w = -1;
          const std::size_t rot =
              nbrs.empty() ? 0 : rng.next_below(nbrs.size());
          for (std::size_t j = 0; j < nbrs.size(); ++j) {
            const std::size_t idx = (j + rot) % nbrs.size();
            const vid_t u = nbrs[idx];
            if (racy_load(match[u]) != kInvalidVid) continue;
            if (wts[idx] > best_w) {
              best_w = wts[idx];
              best = u;
            }
          }
          if (best == kInvalidVid) {
            racy_store(match[v], v);
          } else {
            // Both writes race with other threads — round 2 repairs.
            racy_store(match[v], best);
            racy_store(match[best], v);
          }
        }
        meter_chunk(w);
      });
  ctx.charge_dynamic_pass("coarsen/match/round1/L" + std::to_string(level),
                          total_w.load(), max_chunk_w.load());

  // --- Round 2: conflict resolution, dynamically scheduled too ---
  total_w.store(0);
  max_chunk_w.store(0);
  ctx.pool->parallel_for_dynamic(
      n, grain, [&](int t, std::int64_t b, std::int64_t e) {
        std::uint64_t w = 0, c = 0;
        for (std::int64_t i = b; i < e; ++i) {
          const auto v = static_cast<vid_t>(i);
          ++w;
          const vid_t m = racy_load(match[v]);
          if (m == kInvalidVid) {
            racy_store(match[v], v);  // never reached in round 1
            continue;
          }
          if (m == v) continue;
          if (racy_load(match[m]) != v) {
            // match(v) = u but match(u) != v: v lost the race and gets
            // another chance at the next coarsening level.
            racy_store(match[v], v);
            ++c;
          }
        }
        meter_chunk(w);
        conflicts[static_cast<std::size_t>(t)] += c;
      });
  ctx.charge_dynamic_pass("coarsen/match/round2/L" + std::to_string(level),
                          total_w.load(), max_chunk_w.load());

  // --- cmap via parallel prefix sum (mt analogue of the paper's 4-kernel
  // GPU pipeline; tested to agree with build_cmap_serial) ---
  std::vector<vid_t> pv(static_cast<std::size_t>(n));
  ctx.pool->parallel_for_blocked(n, [&](int, std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto v = static_cast<vid_t>(i);
      pv[static_cast<std::size_t>(v)] = (v <= match[v]) ? 1 : 0;
    }
  });
  inclusive_scan_parallel(*ctx.pool, pv);
  r.n_coarse = n > 0 ? pv[static_cast<std::size_t>(n) - 1] : 0;
  r.cmap.assign(static_cast<std::size_t>(n), kInvalidVid);
  vid_t* cmap = r.cmap.data();
  ctx.pool->parallel_for_blocked(n, [&](int, std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto v = static_cast<vid_t>(i);
      if (v <= match[v]) cmap[v] = pv[static_cast<std::size_t>(v)] - 1;
    }
  });
  ctx.pool->parallel_for_blocked(n, [&](int, std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto v = static_cast<vid_t>(i);
      if (v > match[v]) cmap[v] = cmap[match[v]];
    }
  });
  ctx.charge_pass("coarsen/cmap/L" + std::to_string(level),
                  std::vector<std::uint64_t>(
                      static_cast<std::size_t>(nt),
                      static_cast<std::uint64_t>(n / std::max(1, nt)) * 3));

  if (stats) {
    stats->conflicts = 0;
    for (const auto c : conflicts) stats->conflicts += c;
    vid_t pairs = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (r.match[static_cast<std::size_t>(v)] > v) ++pairs;
    }
    stats->matched_pairs = pairs;
  }
  return r;
}

}  // namespace gp
