// Two-round lock-free HEM matching (mt-metis' scheme, Section II-C of the
// paper): round 1 lets all threads read and write the shared match vector
// without synchronization — conflicts are possible and expected; round 2
// re-examines every vertex and self-matches the losers, restoring the
// involution invariant.
#pragma once

#include <cstdint>

#include "core/csr_graph.hpp"
#include "core/matching.hpp"
#include "mt/mt_context.hpp"

namespace gp {

struct MtMatchStats {
  std::uint64_t conflicts = 0;  ///< vertices self-matched in round 2
  vid_t matched_pairs = 0;
};

/// Lock-free two-round matching.  The returned match array is always a
/// valid involution; the cmap is built with a parallel prefix sum.
[[nodiscard]] MatchResult mt_match(const CsrGraph& g, const MtContext& ctx,
                                   int level, MtMatchStats* stats = nullptr);

}  // namespace gp
