#include "mt/mt_partitioner.hpp"

#include <memory>
#include <utility>

#include "core/audit.hpp"
#include "mt/mt_contract.hpp"
#include "mt/mt_initpart.hpp"
#include "mt/mt_matching.hpp"
#include "mt/mt_refine.hpp"
#include "util/timer.hpp"

namespace gp {

MtPipelineResult mt_multilevel_pipeline(const CsrGraph& g,
                                        const PartitionOptions& opts,
                                        const MtContext& ctx,
                                        int level_offset,
                                        const MtPipelineControl& control) {
  struct Level {
    CsrGraph graph;
    std::vector<vid_t> cmap;
  };
  std::vector<Level> levels;

  const AuditLevel audit = opts.audit_level;
  RunHealth* health = control.health;
  auto run_audit = [&](const AuditFailure& f) {
    if (health) {
      ++health->audits_run;
      if (!f.ok()) {
        ++health->audits_failed;
        health->note("audit: " + f.to_string());
      }
    }
    return f.ok();
  };
  bool shed_noted = false;
  auto watchdog_expired = [&]() {
    if (!control.watchdog || !control.watchdog->expired()) return false;
    if (!shed_noted && health) {
      health->note("watchdog: time budget exceeded, shedding refinement");
      ++health->fallbacks;
      health->degraded = true;
    }
    shed_noted = true;
    return true;
  };
  // Gain cache carried across the V-cycle (DESIGN.md §3.6): built in
  // parallel on the coarsest graph, kept exact by the refiner's delta
  // replay, projected (not rebuilt) at each uncoarsening level.
  GainCache gain_cache;
  bool cache_valid = false;
  auto ensure_cache = [&](const CsrGraph& graph, const Partition& part,
                          int level) {
    if (cache_valid) return;
    gain_cache.init(graph, part.k);
    const vid_t n = graph.num_vertices();
    std::vector<std::uint64_t> bwork(
        static_cast<std::size_t>(ctx.threads()), 0);
    std::vector<wgt_t> bed(static_cast<std::size_t>(ctx.threads()), 0);
    ctx.pool->parallel_for_blocked(
        n, [&](int t, std::int64_t b, std::int64_t e) {
          bwork[static_cast<std::size_t>(t)] = gain_cache.build_range(
              graph, part.where, static_cast<vid_t>(b),
              static_cast<vid_t>(e), &bed[static_cast<std::size_t>(t)]);
        });
    wgt_t ed_sum = 0;
    for (const wgt_t x : bed) ed_sum += x;
    gain_cache.finish_totals(ed_sum);
    ctx.charge_pass("uncoarsen/gaincache-build/L" + std::to_string(level),
                    bwork);
    cache_valid = true;
  };

  /// Refine with a pre-refine checkpoint: a failed partition audit rolls
  /// the level back to the checkpoint and retries once, then keeps the
  /// (already audited) checkpoint and drops the level's refinement.
  auto guarded_refine = [&](const CsrGraph& graph, Partition& part,
                            int level) {
    if (watchdog_expired()) {
      cache_valid = false;  // later levels shed too; stop maintaining it
      return;
    }
    if (audit == AuditLevel::kOff) {
      ensure_cache(graph, part, level);
      mt_refine(graph, part, opts.eps, opts.refine_passes, ctx, level,
                /*cut_stats=*/false, &gain_cache);
      return;
    }
    const std::vector<part_t> checkpoint = part.where;
    for (int attempt = 0; attempt < 2; ++attempt) {
      ensure_cache(graph, part, level);
      mt_refine(graph, part, opts.eps, opts.refine_passes, ctx, level,
                /*cut_stats=*/false, &gain_cache);
      bool ok = run_audit(audit_partition(graph, part, opts.k, /*eps=*/0.0,
                                          /*expected_cut=*/-1, audit));
      if (ok && audit == AuditLevel::kParanoid) {
        // Cache-vs-recompute cross-check at the same boundary as the
        // partition audit: the cache fed every gain this level.
        ok = run_audit(
            audit_gain_cache(graph, part.where, gain_cache, audit));
      }
      if (ok) return;
      if (health) {
        ++health->rollbacks;
        health->degraded = true;
        health->note(attempt == 0
                         ? "rollback: refine/L" + std::to_string(level) +
                               " restored from checkpoint, retrying"
                         : "rollback: refine/L" + std::to_string(level) +
                               " dropped, keeping checkpoint");
      }
      part.where = checkpoint;
      cache_valid = false;  // rebuilt against the restored labels
    }
  };

  const vid_t target = opts.coarsen_target();
  const CsrGraph* cur = &g;
  int lvl = level_offset;
  while (cur->num_vertices() > target) {
    check_cancelled(opts, "mt/coarsen");
    MatchResult m = mt_match(*cur, ctx, lvl);
    if (static_cast<double>(m.n_coarse) >
        opts.min_shrink * static_cast<double>(cur->num_vertices())) {
      break;
    }
    // Corruption site: one cmap entry perturbed on the single-threaded
    // path between matching and contraction (`cmap@N` / `cmap:p=` rules).
    std::uint64_t material = 0;
    if (control.injector && m.n_coarse > 1 &&
        control.injector->corrupt_cmap(&material)) {
      auto& slot = m.cmap[static_cast<std::size_t>(material % m.cmap.size())];
      slot = static_cast<vid_t>(
          (static_cast<std::uint64_t>(slot) + 1 +
           (material >> 32) % static_cast<std::uint64_t>(m.n_coarse - 1)) %
          static_cast<std::uint64_t>(m.n_coarse));
    }
    if (audit != AuditLevel::kOff) {
      AuditFailure mf = audit_matching(m.match, audit);
      if (!run_audit(mf)) {
        // A damaged match has no cheaper recovery unit than the level's
        // inputs, which we no longer have: the run-level ladder restarts.
        throw AuditError(std::move(mf));
      }
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (attempt == 1) {
        // Roll the level back: rebuild the cmap from the audited match
        // with the serial reference rule, then re-contract serially.
        if (health) {
          ++health->rollbacks;
          health->degraded = true;
          health->note("rollback: coarsen/L" + std::to_string(lvl) +
                       " re-contracted from rebuilt cmap");
        }
        auto rebuilt = build_cmap_serial(m.match);
        m.cmap = std::move(rebuilt.first);
        m.n_coarse = rebuilt.second;
      }
      CsrGraph coarse = (attempt == 0)
                            ? mt_contract(*cur, m, ctx, lvl)
                            : contract_serial(*cur, m.match, m.cmap,
                                              m.n_coarse);
      if (audit != AuditLevel::kOff) {
        AuditFailure f = audit_contraction(*cur, coarse, m.match, m.cmap,
                                           audit);
        if (!run_audit(f)) {
          if (attempt == 1) throw AuditError(std::move(f));
          continue;
        }
      }
      levels.push_back({std::move(coarse), std::move(m.cmap)});
      break;
    }
    cur = &levels.back().graph;
    ++lvl;
  }

  MtPipelineResult out;
  out.levels = static_cast<int>(levels.size());
  out.coarsest_vertices = cur->num_vertices();

  check_cancelled(opts, "mt/initpart");
  Partition p =
      mt_initial_partition(*cur, opts.k, opts.eps, ctx, opts.init_trials);
  if (audit != AuditLevel::kOff) {
    AuditFailure f = audit_partition(*cur, p, opts.k, /*eps=*/0.0,
                                     /*expected_cut=*/-1, audit);
    if (!run_audit(f)) throw AuditError(std::move(f));
  }
  guarded_refine(*cur, p, lvl);

  for (std::size_t i = levels.size(); i-- > 0;) {
    check_cancelled(opts, "mt/uncoarsen");
    const CsrGraph& fine = (i == 0) ? g : levels[i - 1].graph;
    // Parallel projection.
    std::vector<part_t> fine_where(
        static_cast<std::size_t>(fine.num_vertices()));
    const auto& cmap = levels[i].cmap;
    ctx.pool->parallel_for_blocked(
        fine.num_vertices(), [&](int, std::int64_t b, std::int64_t e) {
          for (std::int64_t v = b; v < e; ++v) {
            fine_where[static_cast<std::size_t>(v)] =
                p.where[static_cast<std::size_t>(
                    cmap[static_cast<std::size_t>(v)])];
          }
        });
    ctx.charge_pass(
        "uncoarsen/project/L" + std::to_string(level_offset + i),
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(ctx.threads()),
            static_cast<std::uint64_t>(fine.num_vertices()) /
                static_cast<std::uint64_t>(std::max(1, ctx.threads()))));
    // Project the gain cache alongside the labels (parallel): fine
    // vertices with an interior coarse parent inherit id/ed with no
    // table work.  The coarse cache is read-only here, the fine cache's
    // vertex ranges are disjoint per thread.
    if (cache_valid && !watchdog_expired()) {
      GainCache fine_cache;
      fine_cache.init(fine, opts.k);
      std::vector<std::uint64_t> pwork(
          static_cast<std::size_t>(ctx.threads()), 0);
      std::vector<wgt_t> ped(static_cast<std::size_t>(ctx.threads()), 0);
      ctx.pool->parallel_for_blocked(
          fine.num_vertices(), [&](int t, std::int64_t b, std::int64_t e) {
            pwork[static_cast<std::size_t>(t)] = fine_cache.project_range(
                gain_cache, fine, fine_where, cmap, static_cast<vid_t>(b),
                static_cast<vid_t>(e), &ped[static_cast<std::size_t>(t)]);
          });
      wgt_t ed_sum = 0;
      for (const wgt_t x : ped) ed_sum += x;
      fine_cache.finish_totals(ed_sum);
      gain_cache = std::move(fine_cache);
      ctx.charge_pass(
          "uncoarsen/gaincache/L" + std::to_string(level_offset + i), pwork);
    } else {
      cache_valid = false;
    }
    p.where = std::move(fine_where);
    if (audit != AuditLevel::kOff) {
      AuditFailure f = audit_partition(fine, p, opts.k, /*eps=*/0.0,
                                       /*expected_cut=*/-1, audit);
      if (!run_audit(f)) throw AuditError(std::move(f));
    }
    guarded_refine(fine, p, static_cast<int>(level_offset + i));
  }
  out.partition = std::move(p);
  return out;
}

PartitionResult MtMetisPartitioner::run(const CsrGraph& g,
                                        const PartitionOptions& opts) const {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  ThreadPool pool(opts.threads);
  pool.set_cancel_token(opts.cancel);
  MtContext ctx{&pool, &res.ledger, opts.seed};

  auto injector = opts.make_fault_injector();
  pool.set_fault_injector(injector.get());
  const Watchdog watchdog(opts.time_budget_seconds);
  MtPipelineControl control{injector.get(), &res.health, &watchdog};

  for (int attempt = 0;; ++attempt) {
    try {
      auto out = mt_multilevel_pipeline(g, opts, ctx, 0, control);
      res.partition = std::move(out.partition);
      res.coarsen_levels = out.levels;
      res.coarsest_vertices = out.coarsest_vertices;
      res.cut = edge_cut(g, res.partition);
      res.balance = partition_balance(g, res.partition);
      if (opts.audit_level != AuditLevel::kOff) {
        ++res.health.audits_run;
        AuditFailure f = audit_partition(g, res.partition, opts.k, opts.eps,
                                         static_cast<std::int64_t>(res.cut),
                                         opts.audit_level);
        if (!f.ok()) {
          ++res.health.audits_failed;
          res.health.note("audit: " + f.to_string());
          throw AuditError(std::move(f));
        }
      }
      break;
    } catch (const AuditError& e) {
      // Terminal escalation: one whole-run restart with corruption
      // injection suppressed; a second failure is a genuine bug.
      if (attempt >= 1 || !injector) throw;
      ++res.health.rollbacks;
      ++res.health.fallbacks;
      res.health.degraded = true;
      res.health.note(std::string("rollback: whole-run restart with "
                                  "corruption suppressed (") +
                      e.what() + ")");
      injector->set_corruption_suppressed(true);
    } catch (const ThreadPoolTaskError& e) {
      // Injected `task` fault: the pipeline unwound at a job boundary, so
      // one whole-run restart recovers; occurrence counters advanced, so
      // a one-shot rule cannot refire.  A second throw propagates.
      if (attempt >= 1 || !injector) throw;
      ++res.health.rollbacks;
      ++res.health.fallbacks;
      res.health.degraded = true;
      res.health.note(std::string("rollback: whole-run restart after pool "
                                  "task fault (") +
                      e.what() + ")");
    }
  }

  if (injector) injector->report_into(res.health);
  res.modeled_seconds = res.ledger.total_seconds();
  res.phases.coarsen = res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen = res.ledger.seconds_with_prefix("uncoarsen/");
  res.wall_seconds = wall.seconds();
  return res;
}

std::unique_ptr<Partitioner> make_mt_partitioner() {
  return std::make_unique<MtMetisPartitioner>();
}

}  // namespace gp
