#include "mt/mt_partitioner.hpp"

#include <memory>

#include "mt/mt_contract.hpp"
#include "mt/mt_initpart.hpp"
#include "mt/mt_matching.hpp"
#include "mt/mt_refine.hpp"
#include "util/timer.hpp"

namespace gp {

MtPipelineResult mt_multilevel_pipeline(const CsrGraph& g,
                                        const PartitionOptions& opts,
                                        const MtContext& ctx,
                                        int level_offset) {
  struct Level {
    CsrGraph graph;
    std::vector<vid_t> cmap;
  };
  std::vector<Level> levels;

  const vid_t target = opts.coarsen_target();
  const CsrGraph* cur = &g;
  int lvl = level_offset;
  while (cur->num_vertices() > target) {
    MatchResult m = mt_match(*cur, ctx, lvl);
    if (static_cast<double>(m.n_coarse) >
        opts.min_shrink * static_cast<double>(cur->num_vertices())) {
      break;
    }
    CsrGraph coarse = mt_contract(*cur, m, ctx, lvl);
    levels.push_back({std::move(coarse), std::move(m.cmap)});
    cur = &levels.back().graph;
    ++lvl;
  }

  MtPipelineResult out;
  out.levels = static_cast<int>(levels.size());
  out.coarsest_vertices = cur->num_vertices();

  Partition p = mt_initial_partition(*cur, opts.k, opts.eps, ctx);
  mt_refine(*cur, p, opts.eps, opts.refine_passes, ctx, lvl,
            /*cut_stats=*/false);

  for (std::size_t i = levels.size(); i-- > 0;) {
    const CsrGraph& fine = (i == 0) ? g : levels[i - 1].graph;
    // Parallel projection.
    std::vector<part_t> fine_where(
        static_cast<std::size_t>(fine.num_vertices()));
    const auto& cmap = levels[i].cmap;
    ctx.pool->parallel_for_blocked(
        fine.num_vertices(), [&](int, std::int64_t b, std::int64_t e) {
          for (std::int64_t v = b; v < e; ++v) {
            fine_where[static_cast<std::size_t>(v)] =
                p.where[static_cast<std::size_t>(
                    cmap[static_cast<std::size_t>(v)])];
          }
        });
    ctx.charge_pass(
        "uncoarsen/project/L" + std::to_string(level_offset + i),
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(ctx.threads()),
            static_cast<std::uint64_t>(fine.num_vertices()) /
                static_cast<std::uint64_t>(std::max(1, ctx.threads()))));
    p.where = std::move(fine_where);
    mt_refine(fine, p, opts.eps, opts.refine_passes, ctx,
              static_cast<int>(level_offset + i), /*cut_stats=*/false);
  }
  out.partition = std::move(p);
  return out;
}

PartitionResult MtMetisPartitioner::run(const CsrGraph& g,
                                        const PartitionOptions& opts) const {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  ThreadPool pool(opts.threads);
  MtContext ctx{&pool, &res.ledger, opts.seed};

  auto out = mt_multilevel_pipeline(g, opts, ctx, 0);
  res.partition = std::move(out.partition);
  res.coarsen_levels = out.levels;
  res.coarsest_vertices = out.coarsest_vertices;

  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  res.modeled_seconds = res.ledger.total_seconds();
  res.phases.coarsen = res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen = res.ledger.seconds_with_prefix("uncoarsen/");
  res.wall_seconds = wall.seconds();
  return res;
}

std::unique_ptr<Partitioner> make_mt_partitioner() {
  return std::make_unique<MtMetisPartitioner>();
}

}  // namespace gp
