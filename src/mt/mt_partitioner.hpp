// Shared-memory multilevel k-way partitioner (the paper's mt-metis
// competitor, and the engine GP-metis borrows for its CPU phases).
#pragma once

#include "core/partitioner.hpp"
#include "mt/mt_context.hpp"

namespace gp {

class MtMetisPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "mt-metis"; }
  [[nodiscard]] PartitionResult run(const CsrGraph& g,
                                    const PartitionOptions& opts) const override;
};

/// The multilevel pipeline with externally supplied context — reused by
/// GP-metis for the CPU stage between the GPU coarsening and GPU
/// uncoarsening (paper: "the remaining coarsening steps are completed on
/// the CPU using mt-metis").
struct MtPipelineResult {
  Partition partition;
  int       levels = 0;
  vid_t     coarsest_vertices = 0;
};

MtPipelineResult mt_multilevel_pipeline(const CsrGraph& g,
                                        const PartitionOptions& opts,
                                        const MtContext& ctx,
                                        int level_offset);

}  // namespace gp
