// Shared-memory multilevel k-way partitioner (the paper's mt-metis
// competitor, and the engine GP-metis borrows for its CPU phases).
#pragma once

#include "core/partitioner.hpp"
#include "mt/mt_context.hpp"

namespace gp {

class MtMetisPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "mt-metis"; }
  [[nodiscard]] PartitionResult run(const CsrGraph& g,
                                    const PartitionOptions& opts) const override;
};

/// The multilevel pipeline with externally supplied context — reused by
/// GP-metis for the CPU stage between the GPU coarsening and GPU
/// uncoarsening (paper: "the remaining coarsening steps are completed on
/// the CPU using mt-metis").
struct MtPipelineResult {
  Partition partition;
  int       levels = 0;
  vid_t     coarsest_vertices = 0;
};

/// Optional corruption-defense hooks threaded through the pipeline
/// (DESIGN.md §3.5).  All members may be null: the default-constructed
/// control reproduces the pre-audit pipeline exactly.
struct MtPipelineControl {
  /// Corruption site: a `cmap` rule perturbs one coarse-map entry on the
  /// single-threaded path between matching and contraction.
  FaultInjector* injector = nullptr;
  /// Audit/rollback tallies and the event trail land here.
  RunHealth* health = nullptr;
  /// Deadline: refinement passes are shed once it expires.
  const Watchdog* watchdog = nullptr;
};

/// Audits (opts.audit_level) run at phase boundaries; a failed
/// contraction audit rolls the level back onto the serial reference
/// implementations, a failed refinement audit restores the level's
/// checkpoint.  Damage beyond level scope throws AuditError for the
/// caller's run-level ladder.
MtPipelineResult mt_multilevel_pipeline(const CsrGraph& g,
                                        const PartitionOptions& opts,
                                        const MtContext& ctx,
                                        int level_offset,
                                        const MtPipelineControl& control = {});

}  // namespace gp
