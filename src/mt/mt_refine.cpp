#include "mt/mt_refine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "gpu/device_atomics.hpp"

namespace gp {

namespace {

struct MoveRequest {
  vid_t  v;
  part_t from;
  part_t to;
  wgt_t  gain;
};

}  // namespace

MtRefineStats mt_refine(const CsrGraph& g, Partition& p, double eps,
                        int max_passes, const MtContext& ctx, int level,
                        bool cut_stats, GainCache* cache) {
  MtRefineStats stats;
  const vid_t n = g.num_vertices();
  const int nt = ctx.threads();
  const wgt_t total = g.total_vertex_weight();
  const wgt_t max_pw = max_part_weight(total, p.k, eps);
  const wgt_t min_pw = min_part_weight(total, p.k, eps);

  // Gain cache (DESIGN.md §3.6): propose reads conn/gain from the sparse
  // table instead of rescanning neighbourhoods, and each pass ends with a
  // delta replay of the committed moves.  Callers that carry a cache
  // across levels pass it in (it must match p.where); otherwise one is
  // built here with a parallel sweep.
  GainCache local_cache;
  GainCache* gc = cache;
  if (gc == nullptr) {
    gc = &local_cache;
    gc->init(g, p.k);
    std::vector<std::uint64_t> bwork(static_cast<std::size_t>(nt), 0);
    std::vector<wgt_t> bed(static_cast<std::size_t>(nt), 0);
    ctx.pool->parallel_for_blocked(
        n, [&](int t, std::int64_t b, std::int64_t e) {
          bwork[static_cast<std::size_t>(t)] = gc->build_range(
              g, p.where, static_cast<vid_t>(b), static_cast<vid_t>(e),
              &bed[static_cast<std::size_t>(t)]);
        });
    wgt_t ed_sum = 0;
    for (const wgt_t x : bed) ed_sum += x;
    gc->finish_totals(ed_sum);
    ctx.charge_pass("uncoarsen/refine/gaincache-build/L" +
                        std::to_string(level),
                    bwork);
  }
  if (cut_stats) stats.cut_before = gc->cut();

  auto pw = partition_weights(g, p);
  part_t* where = p.where.data();
  wgt_t* pwd = pw.data();

  // One request buffer per partition (paper: "we allocate a buffer to each
  // partition where the threads insert their movement requests").
  std::vector<std::vector<MoveRequest>> buffers(
      static_cast<std::size_t>(p.k));
  std::vector<std::mutex> buf_mutex(static_cast<std::size_t>(p.k));

  // Per-thread delta buffers (mt-metis): each explore thread records the
  // moves it committed; the replay at the pass barrier folds them into the
  // gain cache so the next propose pass reads exact state.
  std::vector<std::vector<CommittedMove>> deltas(
      static_cast<std::size_t>(nt));

  // The pass budget stretches (up to 8x) while the balance constraint is
  // still violated — the paper's "balance ... is guaranteed by continuing
  // the refinement" requires not stopping while a part is overweight and
  // draining.
  auto max_pw_violated = [&] {
    for (part_t q = 0; q < p.k; ++q) {
      if (pwd[static_cast<std::size_t>(q)] > max_pw) return true;
    }
    return false;
  };
  int idle_passes = 0;
  for (int pass = 0;
       pass < max_passes || (pass < 8 * max_passes && max_pw_violated());
       ++pass) {
    ++stats.passes;
    // Direction alternates per pass: even passes allow only moves to a
    // higher part id, odd passes to a lower id.  This "prevents concurrent
    // exchanges of two vertices between two neighbor partitions".
    const bool upward = (pass % 2 == 0);

    for (auto& buf : buffers) buf.clear();
    for (auto& d : deltas) d.clear();

    // --- propose kernel: threads scan their owned boundary vertices,
    // reading gains from the cache (the cache is exact here: the last
    // pass's deltas were replayed at the barrier) ---
    std::vector<std::uint64_t> work(static_cast<std::size_t>(nt), 0);
    std::vector<std::uint64_t> proposed(static_cast<std::size_t>(nt), 0);
    ctx.pool->parallel_for_blocked(
        n, [&](int t, std::int64_t b, std::int64_t e) {
          std::uint64_t w = 0, np = 0;
          for (std::int64_t i = b; i < e; ++i) {
            const auto v = static_cast<vid_t>(i);
            if (!gc->boundary(v)) {
              w += 1;
              continue;
            }
            const part_t pv = where[v];
            // Overweight sources may evict at any gain (the balancing
            // companion of the gain rule); balanced sources move only on
            // strictly positive gain.
            const bool overweight = racy_load(pwd[pv]) > max_pw;
            const wgt_t threshold = overweight
                                        ? std::numeric_limits<wgt_t>::min()
                                        : gc->internal(v);
            const BestDest bd = gc->best_destination(
                g, p.where, v, pv, threshold, [&](part_t q) {
                  return upward ? (q > pv) : (q < pv);
                });
            w += static_cast<std::uint64_t>(gc->conn_count(v)) + 1 +
                 bd.tie_scan;
            if (bd.part == kInvalidPart) continue;
            ++np;
            std::lock_guard<std::mutex> lk(
                buf_mutex[static_cast<std::size_t>(bd.part)]);
            buffers[static_cast<std::size_t>(bd.part)].push_back(
                {v, pv, bd.part, bd.conn - gc->internal(v)});
          }
          work[static_cast<std::size_t>(t)] = w;
          proposed[static_cast<std::size_t>(t)] = np;
        });
    ctx.charge_pass(
        "uncoarsen/refine/propose/L" + std::to_string(level) + "/p" +
            std::to_string(pass),
        work);
    for (const auto x : proposed) stats.proposed += x;

    // --- explore kernel: one logical thread per partition ---
    std::vector<std::uint64_t> commit_work(static_cast<std::size_t>(nt), 0);
    std::atomic<std::uint64_t> committed{0}, rejected{0};
    ctx.pool->parallel_for_blocked(
        p.k, [&](int t, std::int64_t b, std::int64_t e) {
          std::uint64_t w = 0, nc = 0, nr = 0;
          auto& delta = deltas[static_cast<std::size_t>(t)];
          for (std::int64_t q = b; q < e; ++q) {
            auto& buf = buffers[static_cast<std::size_t>(q)];
            // Sort relocation requests by gain (descending).
            std::sort(buf.begin(), buf.end(),
                      [](const MoveRequest& a, const MoveRequest& b) {
                        return a.gain > b.gain;
                      });
            w += buf.size();
            for (const auto& req : buf) {
              // Destination bound: this thread owns partition q, so its
              // weight only grows here — plain check suffices.
              if (pwd[q] + g.vertex_weight(req.v) > max_pw) {
                ++nr;
                continue;
              }
              // Source bound: other owners drain the same source
              // concurrently; reserve with a CAS loop.
              const wgt_t vw = g.vertex_weight(req.v);
              std::atomic_ref<wgt_t> src(pwd[req.from]);
              wgt_t cur = src.load(std::memory_order_relaxed);
              bool ok = false;
              while (cur - vw >= min_pw) {
                if (src.compare_exchange_weak(cur, cur - vw,
                                              std::memory_order_relaxed)) {
                  ok = true;
                  break;
                }
              }
              if (!ok) {
                ++nr;
                continue;
              }
              atomic_add(pwd[q], vw);
              racy_store(where[req.v], static_cast<part_t>(q));
              // Record into this thread's delta buffer; replayed into the
              // cache at the pass barrier below.
              delta.push_back({req.v, req.from, static_cast<part_t>(q)});
              ++nc;
            }
          }
          commit_work[static_cast<std::size_t>(t)] = w;
          committed += nc;
          rejected += nr;
        });
    ctx.charge_pass(
        "uncoarsen/refine/commit/L" + std::to_string(level) + "/p" +
            std::to_string(pass),
        commit_work);
    stats.committed += committed.load();
    stats.rejected_balance += rejected.load();

    // --- delta replay at the barrier ---
    // Any fixed replay order yields the exact cache of the final labels
    // (each step transforms the exact cache of one configuration into the
    // exact cache of the next), so concatenating the per-thread buffers
    // in thread order is sufficient.
    if (committed.load() != 0) {
      std::vector<CommittedMove> all_moves;
      all_moves.reserve(static_cast<std::size_t>(committed.load()));
      for (const auto& d : deltas) {
        all_moves.insert(all_moves.end(), d.begin(), d.end());
      }
      const std::uint64_t dw = gc->apply_moves(g, p.where, all_moves);
      ctx.charge_serial("uncoarsen/refine/delta/L" + std::to_string(level) +
                            "/p" + std::to_string(pass),
                        dw);
    }

    // Terminate on idleness — but only after BOTH directions have gone
    // idle back to back: an overweight part may have admissible evictions
    // in only one of the two alternating directions.
    idle_passes = (committed.load() == 0) ? idle_passes + 1 : 0;
    if (idle_passes >= 2) break;
  }

  // --- forced balance cleanup ---
  // The alternating-direction drain can go idle with a part still a few
  // units overweight: its admissible targets may all be at capacity in
  // both directions, and race outcomes decide whether that corner is hit.
  // The balance constraint is a guarantee, not a preference, so finish
  // the job serially: evict the minimum-damage vertex from each
  // overweight part (any underweight destination admissible) until every
  // part fits.  Violations at this point are tiny, so the serial scans
  // are cheap relative to the passes above.
  std::uint64_t cleanup_work = 0;
  bool progress = true;
  while (progress && max_pw_violated()) {
    progress = false;
    for (part_t q = 0; q < p.k; ++q) {
      if (pwd[static_cast<std::size_t>(q)] <= max_pw) continue;
      vid_t best_v = kInvalidVid;
      part_t best_to = kInvalidPart;
      wgt_t best_score = std::numeric_limits<wgt_t>::min();
      std::vector<wgt_t> conn(static_cast<std::size_t>(p.k), 0);
      for (vid_t v = 0; v < n; ++v) {
        if (where[v] != q) continue;
        const wgt_t vw = g.vertex_weight(v);
        if (pwd[static_cast<std::size_t>(q)] - vw < min_pw) continue;
        const auto nbrs = g.neighbors(v);
        const auto wts = g.neighbor_weights(v);
        cleanup_work += nbrs.size() + 1;
        std::fill(conn.begin(), conn.end(), 0);
        wgt_t internal = 0;
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          const part_t pu = where[nbrs[j]];
          if (pu == q) internal += wts[j];
          else conn[static_cast<std::size_t>(pu)] += wts[j];
        }
        for (part_t r = 0; r < p.k; ++r) {
          if (r == q) continue;
          if (pwd[static_cast<std::size_t>(r)] + vw > max_pw) continue;
          const wgt_t score = conn[static_cast<std::size_t>(r)] - internal;
          if (score > best_score) {
            best_score = score;
            best_v = v;
            best_to = r;
          }
        }
      }
      if (best_v == kInvalidVid) continue;  // nothing admissible from q
      const wgt_t vw = g.vertex_weight(best_v);
      // Keep the cache exact through the forced move (the destination may
      // be non-adjacent; apply_move handles zero connectivity).
      cleanup_work += gc->apply_move(g, p.where, best_v, q, best_to);
      where[best_v] = best_to;
      pwd[static_cast<std::size_t>(q)] -= vw;
      pwd[static_cast<std::size_t>(best_to)] += vw;
      ++stats.committed;
      progress = true;
    }
  }
  if (cleanup_work > 0) {
    ctx.charge_serial("uncoarsen/refine/balance/L" + std::to_string(level),
                      cleanup_work);
  }

  if (cut_stats) stats.cut_after = gc->cut();
  return stats;
}

}  // namespace gp
