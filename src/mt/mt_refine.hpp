// mt-metis-style buffered k-way refinement: direction-alternating passes;
// threads propose moves for their vertices into per-partition request
// buffers; buffer owners sort by gain and commit under the balance
// constraint, with atomic part-weight reservations instead of locks.
#pragma once

#include <cstdint>

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "mt/mt_context.hpp"

namespace gp {

struct MtRefineStats {
  std::uint64_t proposed = 0;
  std::uint64_t committed = 0;
  std::uint64_t rejected_balance = 0;
  int passes = 0;
  wgt_t cut_before = 0;
  wgt_t cut_after = 0;
};

/// In-place buffered refinement.  `level` only labels ledger entries.
/// `cut_stats` controls whether cut_before/cut_after are filled in — each
/// is a full O(E) scan, and the driving partitioner does not read them,
/// so it passes false; tests and ablation benches keep the default.
MtRefineStats mt_refine(const CsrGraph& g, Partition& p, double eps,
                        int max_passes, const MtContext& ctx, int level,
                        bool cut_stats = true);

}  // namespace gp
