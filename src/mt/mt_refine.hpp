// mt-metis-style buffered k-way refinement: direction-alternating passes;
// threads propose moves for their vertices into per-partition request
// buffers; buffer owners sort by gain and commit under the balance
// constraint, with atomic part-weight reservations instead of locks.
#pragma once

#include <cstdint>

#include "core/csr_graph.hpp"
#include "core/gain_cache.hpp"
#include "core/partition.hpp"
#include "mt/mt_context.hpp"

namespace gp {

struct MtRefineStats {
  std::uint64_t proposed = 0;
  std::uint64_t committed = 0;
  std::uint64_t rejected_balance = 0;
  int passes = 0;
  wgt_t cut_before = 0;
  wgt_t cut_after = 0;
};

/// In-place buffered refinement.  `level` only labels ledger entries.
/// `cut_stats` controls whether cut_before/cut_after are filled in (free
/// with the gain cache, kept as a switch for signature stability).
/// `cache`, when non-null, must be consistent with p.where on entry; the
/// per-pass delta replay and the balance cleanup keep it consistent so
/// the driving partitioner can carry it across uncoarsening levels.
/// When null, a cache is built here with a parallel sweep.
MtRefineStats mt_refine(const CsrGraph& g, Partition& p, double eps,
                        int max_passes, const MtContext& ctx, int level,
                        bool cut_stats = true, GainCache* cache = nullptr);

}  // namespace gp
