#include "par/comm.hpp"

#include <algorithm>

namespace gp {

SimComm::SimComm(int ranks, ThreadPool& pool, CostLedger* ledger)
    : ranks_(ranks), pool_(pool), ledger_(ledger),
      pending_(static_cast<std::size_t>(ranks)) {}

void SimComm::superstep(
    const std::string& label,
    const std::function<std::uint64_t(int, Mailbox&)>& fn) {
  const std::uint64_t step = steps_;
  ++steps_;
  if (injector_) {
    // Fail-stop detection at the step barrier: a dead rank cannot make
    // progress, so the collective superstep aborts cleanly rather than
    // computing with silently missing contributions.
    for (int r = 0; r < ranks_; ++r) {
      if (injector_->rank_failed(r, step)) {
        injector_->record_rank_failure(r, step);
        throw CommFailure("rank " + std::to_string(r) +
                          " fail-stopped at superstep " +
                          std::to_string(step) + " (" + label + ")");
      }
    }
  }
  // Deliver last superstep's mail and hand each rank its mailbox.
  std::vector<std::vector<SimMessage>> inboxes = std::move(pending_);
  inboxes.resize(static_cast<std::size_t>(ranks_));
  pending_.assign(static_cast<std::size_t>(ranks_), {});

  std::vector<std::uint64_t> work(static_cast<std::size_t>(ranks_), 0);
  std::vector<std::uint64_t> msgs(static_cast<std::size_t>(ranks_), 0);
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(ranks_), 0);
  std::vector<std::vector<std::vector<SimMessage>>> all_out(
      static_cast<std::size_t>(ranks_));

  pool_.parallel_for_blocked(
      ranks_, [&](int, std::int64_t b, std::int64_t e) {
        for (std::int64_t r = b; r < e; ++r) {
          Mailbox mb(static_cast<int>(r), ranks_,
                     &inboxes[static_cast<std::size_t>(r)]);
          work[static_cast<std::size_t>(r)] = fn(static_cast<int>(r), mb);
          for (int dst = 0; dst < ranks_; ++dst) {
            for (auto& m : mb.outboxes()[static_cast<std::size_t>(dst)]) {
              msgs[static_cast<std::size_t>(r)] += 1;
              bytes[static_cast<std::size_t>(r)] += m.bytes.size();
            }
          }
          all_out[static_cast<std::size_t>(r)] = std::move(mb.outboxes());
        }
      });

  // Route messages (deterministic order: by sender rank, then send order).
  // Fault injection happens here, on the single-threaded routing path, so
  // drop decisions are independent of worker-pool interleaving.
  const bool blackout = injector_ && injector_->superstep_blackout(step);
  for (int src = 0; src < ranks_; ++src) {
    auto& out = all_out[static_cast<std::size_t>(src)];
    for (int dst = 0; dst < ranks_; ++dst) {
      auto& box = out[static_cast<std::size_t>(dst)];
      for (auto& m : box) {
        if (injector_ && (blackout || injector_->drop_message())) {
          ++dropped_;
          continue;
        }
        // Silent corruption: a `payload` rule garbles the message body in
        // transit — the message is still delivered, just wrong, so the
        // receiver's defensive checks (not the comm layer) must catch it.
        std::uint64_t material = 0;
        if (injector_ && !m.bytes.empty() &&
            injector_->corrupt_payload(&material)) {
          m.bytes[material % m.bytes.size()] ^=
              static_cast<std::uint8_t>(1u << ((material >> 56) & 7u));
        }
        pending_[static_cast<std::size_t>(dst)].push_back(std::move(m));
      }
    }
  }

  if (ledger_) {
    std::uint64_t max_work = 0, max_msgs = 0, max_bytes = 0;
    for (int r = 0; r < ranks_; ++r) {
      max_work = std::max(max_work, work[static_cast<std::size_t>(r)]);
      max_msgs = std::max(max_msgs, msgs[static_cast<std::size_t>(r)]);
      max_bytes = std::max(max_bytes, bytes[static_cast<std::size_t>(r)]);
    }
    ledger_->charge_serial("compute/" + label, max_work);
    if (max_msgs > 0) {
      ledger_->charge_messages("comm/" + label, max_msgs, max_bytes);
    }
  }
}

}  // namespace gp
