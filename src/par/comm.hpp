// Simulated message-passing layer (the MPI substitute for the
// ParMetis-like partitioner, DESIGN.md §3).
//
// The model is BSP supersteps, which matches ParMetis' structure exactly:
// the paper stresses that "each processor sends its match requests in one
// single message to the corresponding processors" per pass.  Within a
// superstep every rank runs its compute function (concurrently on the
// worker pool), sending typed messages that become visible to receivers
// in the NEXT superstep.  The ledger is charged per superstep with
//   compute: max over ranks of metered work
//   comm:    alpha * max messages per rank + beta * max bytes per rank.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/machine_model.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace gp {

/// Unrecoverable communication failure: a fail-stopped rank, or message
/// loss the bounded-resend recovery could not repair.
class CommFailure : public std::runtime_error {
 public:
  explicit CommFailure(const std::string& what) : std::runtime_error(what) {}
};

/// A delivered message: sender rank plus a POD byte payload.
struct SimMessage {
  int                       from = 0;
  std::vector<std::uint8_t> bytes;

  /// Reinterprets the payload as a vector of T (POD only).  The payload
  /// must be an exact multiple of sizeof(T) — a mismatch means the sender
  /// and receiver disagree on the message type, which silently truncating
  /// would hide.
  template <typename T>
  [[nodiscard]] std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (bytes.size() % sizeof(T) != 0) {
      throw std::runtime_error(
          "SimMessage::as: payload of " + std::to_string(bytes.size()) +
          " bytes is not a multiple of element size " +
          std::to_string(sizeof(T)));
    }
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), out.size() * sizeof(T));
    return out;
  }
};

/// Per-rank send/receive interface inside a superstep.
class Mailbox {
 public:
  Mailbox(int rank, int ranks, std::vector<SimMessage>* inbox)
      : rank_(rank), ranks_(ranks), inbox_(inbox),
        outboxes_(static_cast<std::size_t>(ranks)) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int ranks() const { return ranks_; }

  /// Messages sent to this rank in the previous superstep.
  [[nodiscard]] const std::vector<SimMessage>& inbox() const {
    return *inbox_;
  }

  /// Sends a POD vector to `dst` (delivered next superstep).
  template <typename T>
  void send(int dst, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (dst < 0 || dst >= ranks_) {
      throw std::out_of_range("Mailbox::send: destination rank " +
                              std::to_string(dst) + " outside [0, " +
                              std::to_string(ranks_) + ")");
    }
    SimMessage m;
    m.from = rank_;
    m.bytes.resize(data.size() * sizeof(T));
    std::memcpy(m.bytes.data(), data.data(), m.bytes.size());
    outboxes_[static_cast<std::size_t>(dst)].push_back(std::move(m));
  }

  /// Internal: outgoing mail collected by the communicator.
  [[nodiscard]] std::vector<std::vector<SimMessage>>& outboxes() {
    return outboxes_;
  }

 private:
  int rank_, ranks_;
  std::vector<SimMessage>* inbox_;
  std::vector<std::vector<SimMessage>> outboxes_;
};

class SimComm {
 public:
  /// `pool` should have >= ranks workers for genuine concurrency.
  SimComm(int ranks, ThreadPool& pool, CostLedger* ledger);

  [[nodiscard]] int ranks() const { return ranks_; }

  /// Attaches a fault injector: per-message and per-superstep drops plus
  /// rank fail-stop detection.  nullptr disables injection (the default).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Messages eaten in transit by the fault injector so far.
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

  /// Runs one superstep.  `fn(rank, mailbox)` returns the rank's metered
  /// compute work.  Messages sent become receivable next superstep.
  /// Throws CommFailure when the fault plan fail-stops a rank (the
  /// simulated runtime detects the dead process at the step barrier).
  void superstep(const std::string& label,
                 const std::function<std::uint64_t(int, Mailbox&)>& fn);

  /// Collective: every rank contributes a POD vector; after the call
  /// every rank sees all contributions (indexed by rank).  Metered as an
  /// all-gather.
  template <typename T>
  std::vector<std::vector<T>> allgather(const std::string& label,
                                        std::vector<std::vector<T>> contrib) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t max_bytes = 0;
    for (const auto& c : contrib) {
      max_bytes = std::max<std::uint64_t>(max_bytes, c.size() * sizeof(T));
    }
    if (ledger_) {
      // Ring all-gather: P-1 rounds, each rank forwarding; bytes per rank
      // = (P-1) * max contribution.
      ledger_->charge_messages(
          "comm/allgather/" + label,
          static_cast<std::uint64_t>(ranks_ - 1),
          static_cast<std::uint64_t>(ranks_ - 1) * max_bytes);
    }
    return contrib;  // shared address space: data is already everywhere
  }

  /// Number of supersteps executed (tests/ablations).
  [[nodiscard]] std::uint64_t supersteps() const { return steps_; }

 private:
  int ranks_;
  ThreadPool& pool_;
  CostLedger* ledger_;
  FaultInjector* injector_ = nullptr;
  std::uint64_t steps_ = 0;
  std::uint64_t dropped_ = 0;
  /// pending_[dst] = messages awaiting delivery at the next superstep.
  std::vector<std::vector<SimMessage>> pending_;
};

}  // namespace gp
