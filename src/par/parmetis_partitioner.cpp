#include "par/parmetis_partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <utility>

#include "core/audit.hpp"
#include "core/matching.hpp"
#include "gpu/hash_table.hpp"
#include "par/comm.hpp"
#include "serial/hem_matching.hpp"
#include "serial/initpart_engine.hpp"
#include "serial/metis_partitioner.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gp {

namespace {

/// Vertex-block distribution: rank r owns global ids
/// [vtxdist[r], vtxdist[r+1]).  Rebuilt per level.
struct Distribution {
  std::vector<vid_t> vtxdist;

  [[nodiscard]] int owner(vid_t v) const {
    // vtxdist is small (ranks+1): linear scan beats binary search here.
    for (std::size_t r = 1; r < vtxdist.size(); ++r) {
      if (v < vtxdist[r]) return static_cast<int>(r - 1);
    }
    return static_cast<int>(vtxdist.size()) - 2;
  }
  [[nodiscard]] vid_t begin(int r) const {
    return vtxdist[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] vid_t end(int r) const {
    return vtxdist[static_cast<std::size_t>(r) + 1];
  }

  static Distribution block(vid_t n, int ranks) {
    Distribution d;
    d.vtxdist.resize(static_cast<std::size_t>(ranks) + 1);
    for (int r = 0; r <= ranks; ++r) {
      d.vtxdist[static_cast<std::size_t>(r)] = static_cast<vid_t>(
          (static_cast<std::int64_t>(n) * r) / ranks);
    }
    return d;
  }
};

struct MatchRequest {
  vid_t v, u;  ///< v requests to match u (owner of u decides)
  wgt_t w;
};

/// A vertex that has an outstanding remote match request: not matched,
/// but not grantable to other requesters either (prevents the classic
/// A-requests-B-while-C-is-granted-A inconsistency).
inline constexpr vid_t kPendingVid = -2;

struct Grant {
  vid_t v, u;
};

struct CmapMsg {
  vid_t follower;
  vid_t coarse_id;
};

struct MoveProposal {
  vid_t  v;
  part_t from, to;
  wgt_t  gain;
};

/// Meters a ghost-state exchange: every boundary vertex's state goes to
/// each neighbouring rank once.  (Data itself is read from the shared
/// arrays afterwards — in-process simulation of the ghost update.)
void charge_ghost_exchange(CostLedger* ledger,
                           const CsrGraph& g, const Distribution& dist,
                           const std::string& label, std::size_t elem_bytes) {
  if (!ledger) return;
  const int P = static_cast<int>(dist.vtxdist.size()) - 1;
  // per-rank: distinct (boundary vertex, dest rank) pairs.
  std::uint64_t max_items = 0, max_msgs = 0;
  std::vector<char> dests(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    std::uint64_t items = 0;
    std::fill(dests.begin(), dests.end(), 0);
    for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
      bool counted = false;
      for (const vid_t u : g.neighbors(v)) {
        const int ro = dist.owner(u);
        if (ro == r) continue;
        if (!counted) {
          ++items;  // a boundary vertex is sent once per remote dest;
          counted = true;
        }
        dests[static_cast<std::size_t>(ro)] = 1;
      }
    }
    std::uint64_t msgs = 0;
    for (const char d : dests) msgs += d;
    max_items = std::max(max_items, items);
    max_msgs = std::max(max_msgs, msgs);
  }
  ledger->charge_messages("comm/ghost/" + label, max_msgs,
                          max_items * elem_bytes);
}

/// One full distributed V-cycle.  Received records pass defensive bounds
/// checks before they touch shared arrays — a garbled payload (a `payload`
/// fault rule) is discarded like a lost message and the existing loss
/// recovery (pending revert, asymmetric-match repair, cmap resend) heals
/// it.  In-range garble survives delivery and is caught by the phase
/// audits instead, which throw AuditError for the run-level ladder.
void parmetis_attempt(const CsrGraph& g, const PartitionOptions& opts,
                      int P, SimComm& comm, FaultInjector* injector,
                      const Watchdog& watchdog, PartitionResult& res) {
  /// Bounded recovery: how many resend rounds a lost cmap message gets
  /// before the run aborts with CommFailure.
  constexpr int kMaxResendRounds = 4;

  const AuditLevel audit = opts.audit_level;
  auto run_audit = [&](const AuditFailure& f) {
    ++res.health.audits_run;
    if (!f.ok()) {
      ++res.health.audits_failed;
      res.health.note("audit: " + f.to_string());
    }
    return f.ok();
  };
  // Receive-side rejects, tallied per rank inside supersteps (one slot
  // per rank: race-free) and drained on the single-threaded path after.
  std::vector<std::uint64_t> discards(static_cast<std::size_t>(P), 0);
  auto drain_discards = [&](const std::string& where) {
    std::uint64_t total = 0;
    for (auto& d : discards) {
      total += d;
      d = 0;
    }
    if (total == 0) return;
    res.health.payload_discards += total;
    res.health.degraded = true;
    res.health.note("parmetis: discarded " + std::to_string(total) +
                    " malformed record(s) in " + where +
                    " (garbled payload)");
  };
  bool shed_noted = false;
  auto watchdog_expired = [&]() {
    if (!watchdog.expired()) return false;
    if (!shed_noted) {
      res.health.note("watchdog: time budget exceeded, shedding refinement");
      ++res.health.fallbacks;
      res.health.degraded = true;
    }
    shed_noted = true;
    return true;
  };

  struct Level {
    CsrGraph graph;             // graph at this (coarse) level
    std::vector<vid_t> cmap;    // fine -> coarse mapping producing it
    Distribution dist;          // distribution of the fine graph
  };
  std::vector<Level> levels;

  const vid_t target = opts.coarsen_target();
  // With folding enabled, the distributed coarsening hands over earlier.
  const vid_t distributed_target =
      opts.par_fold_threshold > 0
          ? std::max(target, opts.par_fold_threshold)
          : target;
  const CsrGraph* cur = &g;
  Distribution dist = Distribution::block(g.num_vertices(), P);
  int lvl = 0;

  // =========================== Coarsening ===========================
  while (cur->num_vertices() > distributed_target) {
    check_cancelled(opts, "par/coarsen");
    const vid_t n = cur->num_vertices();
    const std::string L = "/L" + std::to_string(lvl);
    std::vector<vid_t> match(static_cast<std::size_t>(n), kInvalidVid);

    // -- matching passes (paper: even pass requests flow only to lower
    // ranks, odd pass to higher; one aggregated message per rank pair) --
    const int kPasses = 4;
    for (int pass = 0; pass < kPasses; ++pass) {
      charge_ghost_exchange(&res.ledger, *cur, dist,
                            "matchstate" + L, sizeof(vid_t));

      // Request superstep: local pairing + remote requests.
      comm.superstep(
          "coarsen/match/request" + L + "/p" + std::to_string(pass),
          [&](int r, Mailbox& mb) -> std::uint64_t {
            std::uint64_t work = 0;
            Rng rng(opts.seed + static_cast<std::uint64_t>(lvl) * 131 +
                    static_cast<std::uint64_t>(pass) * 17 +
                    static_cast<std::uint64_t>(r));
            std::vector<std::vector<MatchRequest>> out(
                static_cast<std::size_t>(P));
            for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
              if (match[static_cast<std::size_t>(v)] != kInvalidVid) continue;
              const auto nbrs = cur->neighbors(v);
              const auto wts = cur->neighbor_weights(v);
              work += nbrs.size();
              vid_t best = kInvalidVid;
              wgt_t best_w = -1;
              const std::size_t rot =
                  nbrs.empty() ? 0 : rng.next_below(nbrs.size());
              for (std::size_t j = 0; j < nbrs.size(); ++j) {
                const std::size_t idx = (j + rot) % nbrs.size();
                const vid_t u = nbrs[idx];
                if (match[static_cast<std::size_t>(u)] != kInvalidVid)
                  continue;
                if (wts[idx] > best_w) {
                  best_w = wts[idx];
                  best = u;
                }
              }
              if (best == kInvalidVid) continue;
              const int ro = dist.owner(best);
              if (ro == r) {
                // Local pair: owner commits both sides immediately.
                if (match[static_cast<std::size_t>(best)] == kInvalidVid) {
                  match[static_cast<std::size_t>(v)] = best;
                  match[static_cast<std::size_t>(best)] = v;
                }
              } else {
                const bool allowed = (pass % 2 == 0) ? (ro < r) : (ro > r);
                if (allowed) {
                  match[static_cast<std::size_t>(v)] = kPendingVid;
                  out[static_cast<std::size_t>(ro)].push_back(
                      {v, best, best_w});
                }
              }
            }
            for (int dst = 0; dst < P; ++dst) {
              if (!out[static_cast<std::size_t>(dst)].empty()) {
                mb.send(dst, out[static_cast<std::size_t>(dst)]);
              }
            }
            return work;
          });

      // Grant superstep: owners arbitrate (heaviest request wins).  A
      // request whose endpoints fall outside the vertex range travelled
      // through a garbled payload: reject it before it can index.
      comm.superstep(
          "coarsen/match/grant" + L + "/p" + std::to_string(pass),
          [&](int r, Mailbox& mb) -> std::uint64_t {
            std::uint64_t work = 0;
            std::vector<MatchRequest> reqs;
            for (const auto& m : mb.inbox()) {
              const auto batch = m.as<MatchRequest>();
              reqs.insert(reqs.end(), batch.begin(), batch.end());
            }
            std::sort(reqs.begin(), reqs.end(),
                      [](const MatchRequest& a, const MatchRequest& b) {
                        return a.w > b.w;
                      });
            std::vector<std::vector<Grant>> grants(
                static_cast<std::size_t>(P));
            for (const auto& rq : reqs) {
              ++work;
              if (rq.u < 0 || rq.u >= n || rq.v < 0 || rq.v >= n) {
                ++discards[static_cast<std::size_t>(r)];
                continue;
              }
              if (match[static_cast<std::size_t>(rq.u)] != kInvalidVid)
                continue;
              match[static_cast<std::size_t>(rq.u)] = rq.v;
              grants[static_cast<std::size_t>(dist.owner(rq.v))].push_back(
                  {rq.v, rq.u});
            }
            for (int dst = 0; dst < P; ++dst) {
              if (!grants[static_cast<std::size_t>(dst)].empty()) {
                mb.send(dst, grants[static_cast<std::size_t>(dst)]);
              }
            }
            return work;
          });

      // Commit superstep: requesters adopt their grants; denied requests
      // revert from pending to unmatched for the next pass.  A genuine
      // grant always targets a pending requester — anything else is a
      // garbled payload and is discarded (the asymmetric match it leaves
      // at the owner is dissolved by the repair sweep below).
      comm.superstep(
          "coarsen/match/commit" + L + "/p" + std::to_string(pass),
          [&](int r, Mailbox& mb) -> std::uint64_t {
            std::uint64_t work = 0;
            for (const auto& m : mb.inbox()) {
              for (const auto& gr : m.as<Grant>()) {
                ++work;
                if (gr.v < 0 || gr.v >= n || gr.u < 0 || gr.u >= n ||
                    match[static_cast<std::size_t>(gr.v)] != kPendingVid) {
                  ++discards[static_cast<std::size_t>(r)];
                  continue;
                }
                match[static_cast<std::size_t>(gr.v)] = gr.u;
              }
            }
            for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
              ++work;
              if (match[static_cast<std::size_t>(v)] == kPendingVid) {
                match[static_cast<std::size_t>(v)] = kInvalidVid;
              }
            }
            return work;
          });
      drain_discards("coarsen/match" + L + "/p" + std::to_string(pass));
    }

    // Recovery (fault plans only): a dropped grant — or a discarded
    // garbled one — leaves the owner pointing at a requester whose
    // pending state reverted: an asymmetric match that would corrupt the
    // coarse numbering.  Dissolve such edges; the vertex self-matches
    // below like any other leftover.
    if (injector) {
      std::vector<std::uint64_t> repairs(static_cast<std::size_t>(P), 0);
      comm.superstep(
          "coarsen/match/repair" + L, [&](int r, Mailbox&) -> std::uint64_t {
            std::uint64_t work = 0;
            for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
              ++work;
              const vid_t m = match[static_cast<std::size_t>(v)];
              if (m == kInvalidVid || m == v) continue;
              if (match[static_cast<std::size_t>(m)] != v) {
                match[static_cast<std::size_t>(v)] = kInvalidVid;
                ++repairs[static_cast<std::size_t>(r)];
              }
            }
            return work;
          });
      for (const auto c : repairs) res.health.match_repairs += c;
    }

    // Self-match leftovers.
    comm.superstep("coarsen/match/self" + L,
                   [&](int r, Mailbox&) -> std::uint64_t {
                     std::uint64_t work = 0;
                     for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
                       ++work;
                       if (match[static_cast<std::size_t>(v)] == kInvalidVid) {
                         match[static_cast<std::size_t>(v)] = v;
                       }
                     }
                     return work;
                   });

    // In-range garble that slipped past the receive checks surfaces here:
    // the repaired+self-matched array must be a valid involution.
    if (audit != AuditLevel::kOff) {
      AuditFailure mf = audit_matching(match, audit);
      if (!run_audit(mf)) throw AuditError(std::move(mf));
    }

    // -- coarse numbering: cross-rank pair's leader is the lower-rank
    // endpoint (tie: lower id); ranks get contiguous coarse id ranges --
    auto is_leader = [&](vid_t v) {
      const vid_t m = match[static_cast<std::size_t>(v)];
      if (m == v) return true;
      const int rv = dist.owner(v), rm = dist.owner(m);
      if (rv != rm) return rv < rm;
      return v < m;
    };
    std::vector<vid_t> leader_count(static_cast<std::size_t>(P), 0);
    comm.superstep("coarsen/cmap/count" + L,
                   [&](int r, Mailbox&) -> std::uint64_t {
                     vid_t c = 0;
                     for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
                       if (is_leader(v)) ++c;
                     }
                     leader_count[static_cast<std::size_t>(r)] = c;
                     return static_cast<std::uint64_t>(dist.end(r) -
                                                       dist.begin(r));
                   });
    {
      std::vector<std::vector<vid_t>> contrib(static_cast<std::size_t>(P));
      for (int r = 0; r < P; ++r)
        contrib[static_cast<std::size_t>(r)] = {
            leader_count[static_cast<std::size_t>(r)]};
      comm.allgather("leader_count" + L, contrib);
    }
    std::vector<vid_t> coarse_off(static_cast<std::size_t>(P) + 1, 0);
    for (int r = 0; r < P; ++r) {
      coarse_off[static_cast<std::size_t>(r) + 1] =
          coarse_off[static_cast<std::size_t>(r)] +
          leader_count[static_cast<std::size_t>(r)];
    }
    const vid_t n_coarse = coarse_off[static_cast<std::size_t>(P)];

    std::vector<vid_t> cmap(static_cast<std::size_t>(n), kInvalidVid);
    // Leaders label themselves; cross-rank followers get a message.
    comm.superstep(
        "coarsen/cmap/assign" + L, [&](int r, Mailbox& mb) -> std::uint64_t {
          std::uint64_t work = 0;
          vid_t next = coarse_off[static_cast<std::size_t>(r)];
          std::vector<std::vector<CmapMsg>> out(static_cast<std::size_t>(P));
          for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
            ++work;
            if (!is_leader(v)) continue;
            cmap[static_cast<std::size_t>(v)] = next;
            const vid_t m = match[static_cast<std::size_t>(v)];
            if (m != v) {
              const int ro = dist.owner(m);
              if (ro == r) {
                cmap[static_cast<std::size_t>(m)] = next;
              } else {
                out[static_cast<std::size_t>(ro)].push_back({m, next});
              }
            }
            ++next;
          }
          for (int dst = 0; dst < P; ++dst) {
            if (!out[static_cast<std::size_t>(dst)].empty()) {
              mb.send(dst, out[static_cast<std::size_t>(dst)]);
            }
          }
          return work;
        });
    // A garbled label message is discarded like a lost one: the follower
    // stays unlabeled and the bounded resend below repairs it.
    auto apply_cmap_msgs = [&](int r, Mailbox& mb) -> std::uint64_t {
      std::uint64_t work = 0;
      for (const auto& m : mb.inbox()) {
        for (const auto& cm : m.as<CmapMsg>()) {
          ++work;
          if (cm.follower < 0 || cm.follower >= n || cm.coarse_id < 0 ||
              cm.coarse_id >= n_coarse) {
            ++discards[static_cast<std::size_t>(r)];
            continue;
          }
          cmap[static_cast<std::size_t>(cm.follower)] = cm.coarse_id;
        }
      }
      return work;
    };
    comm.superstep("coarsen/cmap/followers" + L, apply_cmap_msgs);
    drain_discards("coarsen/cmap" + L);

    // Recovery (fault plans only): a dropped CmapMsg leaves a cross-rank
    // follower unlabeled, which would corrupt contraction.  Leaders rescan
    // their pairs and resend for a bounded number of rounds; loss that
    // outlives the rounds aborts the run cleanly.
    if (injector) {
      for (int round = 0;; ++round) {
        bool missing = false;
        for (vid_t v = 0; v < n && !missing; ++v) {
          missing = cmap[static_cast<std::size_t>(v)] == kInvalidVid;
        }
        if (!missing) break;
        if (round >= kMaxResendRounds) {
          throw CommFailure("coarsen/cmap" + L +
                            ": follower labels still missing after " +
                            std::to_string(kMaxResendRounds) +
                            " resend rounds");
        }
        const std::string R = "/r" + std::to_string(round);
        std::vector<std::uint64_t> resent(static_cast<std::size_t>(P), 0);
        comm.superstep(
            "coarsen/cmap/resend" + L + R,
            [&](int r, Mailbox& mb) -> std::uint64_t {
              std::uint64_t work = 0;
              std::vector<std::vector<CmapMsg>> out(
                  static_cast<std::size_t>(P));
              for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
                ++work;
                if (!is_leader(v)) continue;
                const vid_t m = match[static_cast<std::size_t>(v)];
                if (m == v || cmap[static_cast<std::size_t>(m)] != kInvalidVid)
                  continue;
                out[static_cast<std::size_t>(dist.owner(m))].push_back(
                    {m, cmap[static_cast<std::size_t>(v)]});
                ++resent[static_cast<std::size_t>(r)];
              }
              for (int dst = 0; dst < P; ++dst) {
                if (!out[static_cast<std::size_t>(dst)].empty()) {
                  mb.send(dst, out[static_cast<std::size_t>(dst)]);
                }
              }
              return work;
            });
        for (const auto c : resent) res.health.messages_resent += c;
        comm.superstep("coarsen/cmap/redeliver" + L + R, apply_cmap_msgs);
        drain_discards("coarsen/cmap" + L + R);
      }
    }

    // -- contraction: cross-rank followers ship their (translated)
    // adjacency to the leader's rank; leaders hash-merge --
    charge_ghost_exchange(&res.ledger, *cur, dist, "cmap" + L,
                          sizeof(vid_t));

    // Follower adjacency shipping (metered with real list sizes).
    {
      std::uint64_t max_bytes = 0, max_msgs = 0;
      for (int r = 0; r < P; ++r) {
        std::uint64_t bytes = 0, msgs = 0;
        for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
          const vid_t m = match[static_cast<std::size_t>(v)];
          if (m == v || is_leader(v)) continue;
          if (dist.owner(m) == r) continue;
          bytes += static_cast<std::uint64_t>(cur->degree(v)) *
                   (sizeof(vid_t) + sizeof(wgt_t));
          ++msgs;
        }
        max_bytes = std::max(max_bytes, bytes);
        max_msgs = std::max(max_msgs, std::min<std::uint64_t>(msgs, static_cast<std::uint64_t>(P - 1)));
      }
      res.ledger.charge_messages("comm/coarsen/shipadj" + L, max_msgs,
                                 max_bytes);
    }

    // Assemble the coarse graph (leaders merge; executed per rank).
    std::vector<eid_t> cdeg(static_cast<std::size_t>(n_coarse) + 1, 0);
    std::vector<wgt_t> cvwgt(static_cast<std::size_t>(n_coarse), 0);
    std::vector<std::vector<vid_t>> cadj_per_rank(
        static_cast<std::size_t>(P));
    std::vector<std::vector<wgt_t>> cwgt_per_rank(
        static_cast<std::size_t>(P));
    comm.superstep(
        "coarsen/contract" + L, [&](int r, Mailbox&) -> std::uint64_t {
          std::uint64_t work = 0;
          ClusteredHashTable table(64);
          std::vector<std::pair<vid_t, wgt_t>> sorted;
          auto& adj = cadj_per_rank[static_cast<std::size_t>(r)];
          auto& wgt = cwgt_per_rank[static_cast<std::size_t>(r)];
          for (vid_t v = dist.begin(r); v < dist.end(r); ++v) {
            if (!is_leader(v)) continue;
            const vid_t c = cmap[static_cast<std::size_t>(v)];
            const vid_t m = match[static_cast<std::size_t>(v)];
            cvwgt[static_cast<std::size_t>(c)] =
                cur->vertex_weight(v) +
                (m != v ? cur->vertex_weight(m) : 0);
            table.clear();
            auto absorb = [&](vid_t src) {
              const auto nbrs = cur->neighbors(src);
              const auto wts = cur->neighbor_weights(src);
              work += nbrs.size();
              for (std::size_t j = 0; j < nbrs.size(); ++j) {
                const vid_t cu = cmap[static_cast<std::size_t>(nbrs[j])];
                if (cu == c) continue;
                table.add(cu, wts[j]);
              }
            };
            absorb(v);
            if (m != v) absorb(m);
            sorted.clear();
            table.for_each(
                [&](vid_t k, wgt_t x) { sorted.emplace_back(k, x); });
            std::sort(sorted.begin(), sorted.end());
            cdeg[static_cast<std::size_t>(c) + 1] =
                static_cast<eid_t>(sorted.size());
            for (const auto& [k, x] : sorted) {
              adj.push_back(k);
              wgt.push_back(x);
            }
          }
          return work;
        });
    for (vid_t c = 0; c < n_coarse; ++c) {
      cdeg[static_cast<std::size_t>(c) + 1] +=
          cdeg[static_cast<std::size_t>(c)];
    }
    std::vector<vid_t> cadjncy;
    std::vector<wgt_t> cadjwgt;
    cadjncy.reserve(static_cast<std::size_t>(cdeg.back()));
    cadjwgt.reserve(static_cast<std::size_t>(cdeg.back()));
    for (int r = 0; r < P; ++r) {
      cadjncy.insert(cadjncy.end(),
                     cadj_per_rank[static_cast<std::size_t>(r)].begin(),
                     cadj_per_rank[static_cast<std::size_t>(r)].end());
      cadjwgt.insert(cadjwgt.end(),
                     cwgt_per_rank[static_cast<std::size_t>(r)].begin(),
                     cwgt_per_rank[static_cast<std::size_t>(r)].end());
    }
    CsrGraph coarse(std::move(cdeg), std::move(cadjncy), std::move(cadjwgt),
                    std::move(cvwgt));

    // The distributed state (per-rank partial adjacency, shipped
    // followers) has no cheaper recovery unit than the level itself, so a
    // failed conservation audit escalates straight to the run ladder.
    if (audit != AuditLevel::kOff) {
      AuditFailure f = audit_contraction(*cur, coarse, match, cmap, audit);
      if (!run_audit(f)) throw AuditError(std::move(f));
    }

    if (static_cast<double>(n_coarse) >
        opts.min_shrink * static_cast<double>(n)) {
      break;  // stalled
    }

    Distribution coarse_dist;
    coarse_dist.vtxdist = coarse_off;
    levels.push_back({std::move(coarse), std::move(cmap), dist});
    cur = &levels.back().graph;
    dist = std::move(coarse_dist);
    ++lvl;
  }
  res.coarsen_levels = static_cast<int>(levels.size());
  res.coarsest_vertices = cur->num_vertices();

  // ======================= Initial partitioning =======================
  // All-to-all broadcast of the coarse graph, then every rank works
  // independently and the best cut wins (one allreduce).
  //
  // Without folding the replicated work is just the recursive bisection.
  // With folding (PT-Scotch style, Background II-B) each rank first
  // finishes the remaining coarsening levels serially on its replica —
  // the broadcast happens earlier on a larger graph, but all remaining
  // ghost-exchange and match-request rounds disappear.
  check_cancelled(opts, "par/initpart");
  {
    const std::uint64_t graph_bytes = cur->memory_bytes();
    res.ledger.charge_messages("comm/initpart/broadcast",
                               static_cast<std::uint64_t>(P - 1),
                               graph_bytes * static_cast<std::uint64_t>(P - 1) /
                                   static_cast<std::uint64_t>(P));
  }
  const bool folding = opts.par_fold_threshold > 0;
  std::vector<Partition> candidates(static_cast<std::size_t>(P));
  std::vector<wgt_t> cand_cut(static_cast<std::size_t>(P), 0);
  comm.superstep(
      folding ? "initpart/fold" : "initpart/rb",
      [&](int r, Mailbox&) -> std::uint64_t {
        Rng rng(opts.seed * 31 + static_cast<std::uint64_t>(r));
        std::uint64_t work = 0;

        // Replica coarsening (folding only): serial HEM multilevel from
        // the fold point down to the usual target.
        CsrGraph replica;
        const CsrGraph* base = cur;
        std::vector<std::vector<vid_t>> fold_cmaps;
        if (folding) {
          while (base->num_vertices() > target) {
            SerialMatchStats mst;
            MatchResult m = hem_match_serial(*base, rng, &mst);
            work += mst.work_units;
            if (static_cast<double>(m.n_coarse) >
                opts.min_shrink * static_cast<double>(base->num_vertices())) {
              break;
            }
            replica = contract_serial(*base, m.match, m.cmap, m.n_coarse);
            work += static_cast<std::uint64_t>(replica.num_arcs());
            fold_cmaps.push_back(std::move(m.cmap));
            base = &replica;
          }
        }

        // Shared initial-partitioning engine, stream-seed mode: byte-
        // compatible with the serial recursion.  Ranks already execute
        // concurrently on the comm layer's pool, so each rank runs the
        // engine without a nested pool of its own (nesting pool dispatch
        // inside a pool worker would deadlock).
        InitPartConfig icfg;
        icfg.k = opts.k;
        icfg.eps = opts.eps;
        icfg.seed_mode = InitSeedMode::kStream;
        InitPartStats ist;
        Partition cand = initpart_engine(*base, icfg, &rng, &ist);
        work += ist.work_units;

        // Project the candidate back through the replica's private
        // levels (with a refinement pass each, as the serial driver
        // does) so every rank's candidate lives on the SHARED fold-point
        // graph and cuts are comparable.
        if (folding) {
          for (std::size_t i = fold_cmaps.size(); i-- > 0;) {
            cand.where = project_partition(fold_cmaps[i], cand.where);
            // Note: intermediate graphs were not retained; refinement of
            // the private levels happens on the shared graph below via
            // the normal uncoarsening, which is where ParMetis folds the
            // quality back in.
          }
        }
        candidates[static_cast<std::size_t>(r)] = std::move(cand);
        cand_cut[static_cast<std::size_t>(r)] =
            edge_cut(*cur, candidates[static_cast<std::size_t>(r)]);
        work += static_cast<std::uint64_t>(cur->num_arcs());
        return work;
      });
  res.ledger.charge_messages("comm/initpart/allreduce",
                             static_cast<std::uint64_t>(P - 1),
                             static_cast<std::uint64_t>(P) * sizeof(wgt_t));
  std::size_t best = 0;
  for (std::size_t r = 1; r < candidates.size(); ++r) {
    if (cand_cut[r] < cand_cut[best]) best = r;
  }
  Partition p = std::move(candidates[best]);
  if (audit != AuditLevel::kOff) {
    AuditFailure f = audit_partition(*cur, p, opts.k, /*eps=*/0.0,
                                     /*expected_cut=*/-1, audit);
    if (!run_audit(f)) throw AuditError(std::move(f));
  }

  // =========================== Uncoarsening ===========================
  const wgt_t total = g.total_vertex_weight();
  const wgt_t max_pw = max_part_weight(total, opts.k, opts.eps);
  const wgt_t min_pw = min_part_weight(total, opts.k, opts.eps);

  // Gain cache (DESIGN.md §3.6), shared with the other refiners' design:
  // built per-rank on the coarsest graph, consumed by the propose
  // superstep for boundary selection, delta-updated during the replayed
  // commit, and projected per-rank at each level transition.
  GainCache gain_cache;
  bool cache_valid = false;

  for (std::size_t i = levels.size() + 1; i-- > 0;) {
    check_cancelled(opts, "par/uncoarsen");
    // Level i refines the graph whose coarse version is levels[i]; the
    // extra first iteration (i == levels.size()) refines the coarsest.
    const CsrGraph& fine =
        (i == levels.size()) ? *cur : (i == 0 ? g : levels[i - 1].graph);
    const Distribution& fdist =
        (i == levels.size())
            ? dist
            : levels[i].dist;
    const std::string L = "/L" + std::to_string(i);

    if (i < levels.size()) {
      // Projection: leaders send part labels to cross-rank followers.
      const auto& cmap = levels[i].cmap;
      std::vector<part_t> fwhere(
          static_cast<std::size_t>(fine.num_vertices()));
      comm.superstep("uncoarsen/project" + L,
                     [&](int r, Mailbox&) -> std::uint64_t {
                       std::uint64_t work = 0;
                       for (vid_t v = fdist.begin(r); v < fdist.end(r); ++v) {
                         fwhere[static_cast<std::size_t>(v)] =
                             p.where[static_cast<std::size_t>(
                                 cmap[static_cast<std::size_t>(v)])];
                         ++work;
                       }
                       return work;
                     });
      charge_ghost_exchange(&res.ledger, fine, fdist, "project" + L,
                            sizeof(part_t));
      p.where = std::move(fwhere);
      if (audit != AuditLevel::kOff) {
        AuditFailure f = audit_partition(fine, p, opts.k, /*eps=*/0.0,
                                         /*expected_cut=*/-1, audit);
        if (!run_audit(f)) throw AuditError(std::move(f));
      }
    }

    // Refinement passes (direction-alternating, pass-committed), shed
    // wholesale once the deadline watchdog expires.
    if (watchdog_expired()) {
      cache_valid = false;  // all later levels shed too
      continue;
    }

    // Build (coarsest level) or project (every other level) the gain
    // cache, each rank filling its owned vertex range.
    {
      std::vector<wgt_t> ed_parts(static_cast<std::size_t>(P), 0);
      if (!cache_valid) {
        gain_cache.init(fine, opts.k);
        comm.superstep("uncoarsen/gaincache-build" + L,
                       [&](int r, Mailbox&) -> std::uint64_t {
                         return gain_cache.build_range(
                             fine, p.where, fdist.begin(r), fdist.end(r),
                             &ed_parts[static_cast<std::size_t>(r)]);
                       });
        cache_valid = true;
      } else {
        const auto& cmap = levels[i].cmap;
        GainCache fine_cache;
        fine_cache.init(fine, opts.k);
        comm.superstep("uncoarsen/gaincache-project" + L,
                       [&](int r, Mailbox&) -> std::uint64_t {
                         return fine_cache.project_range(
                             gain_cache, fine, p.where, cmap,
                             fdist.begin(r), fdist.end(r),
                             &ed_parts[static_cast<std::size_t>(r)]);
                       });
        gain_cache = std::move(fine_cache);
      }
      wgt_t ed_sum = 0;
      for (const wgt_t x : ed_parts) ed_sum += x;
      gain_cache.finish_totals(ed_sum);
    }

    auto pw = partition_weights(fine, p);
    int idle_passes = 0;
    for (int pass = 0; pass < opts.refine_passes; ++pass) {
      charge_ghost_exchange(&res.ledger, fine, fdist,
                            "where" + L + "/p" + std::to_string(pass),
                            sizeof(part_t));
      const bool upward = (pass % 2 == 0);
      std::vector<std::vector<MoveProposal>> proposals(
          static_cast<std::size_t>(P));
      comm.superstep(
          "uncoarsen/refine/propose" + L + "/p" + std::to_string(pass),
          [&](int r, Mailbox&) -> std::uint64_t {
            std::uint64_t work = 0;
            auto& out = proposals[static_cast<std::size_t>(r)];
            for (vid_t v = fdist.begin(r); v < fdist.end(r); ++v) {
              if (!gain_cache.boundary(v)) {
                ++work;
                continue;
              }
              const part_t pv = p.where[static_cast<std::size_t>(v)];
              const bool over = pw[static_cast<std::size_t>(pv)] > max_pw;
              const wgt_t threshold =
                  over ? std::numeric_limits<wgt_t>::min()
                       : gain_cache.internal(v);
              const BestDest bd = gain_cache.best_destination(
                  fine, p.where, v, pv, threshold, [&](part_t q) {
                    return upward ? (q > pv) : (q < pv);
                  });
              work += static_cast<std::uint64_t>(gain_cache.conn_count(v)) +
                      1 + bd.tie_scan;
              if (bd.part == kInvalidPart) continue;
              out.push_back(
                  {v, pv, bd.part, bd.conn - gain_cache.internal(v)});
            }
            return work;
          });

      // Proposal exchange (allgather) + deterministic global replay.
      comm.allgather("refine/proposals" + L + "/p" + std::to_string(pass),
                     proposals);
      std::vector<MoveProposal> all;
      for (const auto& pr : proposals)
        all.insert(all.end(), pr.begin(), pr.end());
      std::sort(all.begin(), all.end(),
                [](const MoveProposal& a, const MoveProposal& b) {
                  if (a.gain != b.gain) return a.gain > b.gain;
                  return a.v < b.v;
                });
      std::uint64_t committed = 0;
      comm.superstep(
          "uncoarsen/refine/commit" + L + "/p" + std::to_string(pass),
          [&](int r, Mailbox&) -> std::uint64_t {
            // Every rank replays the identical commit decision sequence;
            // rank 0's replay mutates the shared state, others charge
            // compute only (in a real run each rank updates its copy).
            std::uint64_t work = all.size();
            if (r != 0) return work;
            for (const auto& mv : all) {
              const wgt_t vw = fine.vertex_weight(mv.v);
              if (pw[static_cast<std::size_t>(mv.to)] + vw > max_pw) continue;
              if (pw[static_cast<std::size_t>(mv.from)] - vw < min_pw &&
                  pw[static_cast<std::size_t>(mv.from)] <= max_pw) {
                continue;
              }
              pw[static_cast<std::size_t>(mv.from)] -= vw;
              pw[static_cast<std::size_t>(mv.to)] += vw;
              // Delta-update the cache before the label flips (apply_move
              // reads the neighbours' labels, not where[v]); the replay
              // is sequential, so the cache stays exact move by move.
              work += gain_cache.apply_move(fine, p.where, mv.v, mv.from,
                                            mv.to);
              p.where[static_cast<std::size_t>(mv.v)] = mv.to;
              ++committed;
            }
            return work;
          });
      // Both alternating directions must go idle before stopping.
      idle_passes = (committed == 0) ? idle_passes + 1 : 0;
      if (idle_passes >= 2) break;
    }
    if (audit == AuditLevel::kParanoid && cache_valid) {
      // Cache-vs-recompute cross-check: every boundary selection this
      // level came from the cache, so audit it like partition state.
      AuditFailure f = audit_gain_cache(fine, p.where, gain_cache, audit);
      if (!run_audit(f)) throw AuditError(std::move(f));
    }
  }

  res.partition = std::move(p);
  res.partition.k = opts.k;
  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  if (audit != AuditLevel::kOff) {
    AuditFailure f = audit_partition(g, res.partition, opts.k, opts.eps,
                                     static_cast<std::int64_t>(res.cut),
                                     audit);
    if (!run_audit(f)) throw AuditError(std::move(f));
  }
}

}  // namespace

PartitionResult ParMetisPartitioner::run(const CsrGraph& g,
                                         const PartitionOptions& opts) const {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  const int P = std::max(1, opts.ranks);
  ThreadPool pool(P);
  pool.set_cancel_token(opts.cancel);
  SimComm comm(P, pool, &res.ledger);
  const std::unique_ptr<FaultInjector> injector = opts.make_fault_injector();
  comm.set_fault_injector(injector.get());
  pool.set_fault_injector(injector.get());
  const Watchdog watchdog(opts.time_budget_seconds);

  for (int attempt = 0;; ++attempt) {
    try {
      parmetis_attempt(g, opts, P, comm, injector.get(), watchdog, res);
      break;
    } catch (const AuditError& e) {
      if (!injector) throw;
      ++res.health.rollbacks;
      ++res.health.fallbacks;
      res.health.degraded = true;
      if (attempt == 0) {
        // Rung 1: whole-run restart with corruption suppressed.  The
        // injector's occurrence counters keep advancing, so `@N` rules do
        // not re-fire and `:p=` rules are muted.
        res.health.note(std::string("rollback: whole-run restart with "
                                    "corruption suppressed (") +
                        e.what() + ")");
        injector->set_corruption_suppressed(true);
      } else {
        // Rung 2 (terminal): the distributed engine failed its restart —
        // hand the whole run to the serial reference implementation.
        res.health.note(std::string("parmetis: restart failed audit (") +
                        e.what() +
                        "); whole-run serial fallback with corruption "
                        "suppressed");
        PartitionOptions serial_opts = opts;
        serial_opts.fault_spec.clear();
        PartitionResult serial_res =
            SerialMetisPartitioner().run(g, serial_opts);
        res.partition = std::move(serial_res.partition);
        res.cut = serial_res.cut;
        res.balance = serial_res.balance;
        res.coarsen_levels = serial_res.coarsen_levels;
        res.coarsest_vertices = serial_res.coarsest_vertices;
        res.health.audits_run += serial_res.health.audits_run;
        res.health.audits_failed += serial_res.health.audits_failed;
        res.ledger.merge("", serial_res.ledger);
        break;
      }
    }
  }

  if (injector) {
    res.health.messages_dropped += comm.messages_dropped();
    if (res.health.match_repairs > 0) {
      res.health.note("parmetis: dissolved " +
                      std::to_string(res.health.match_repairs) +
                      " asymmetric matches left by dropped grants");
    }
    if (res.health.messages_resent > 0) {
      res.health.note("parmetis: resent " +
                      std::to_string(res.health.messages_resent) +
                      " cmap messages lost in transit");
    }
    injector->report_into(res.health);
  }
  res.modeled_seconds = res.ledger.total_seconds();
  for (const auto& e : res.ledger.entries()) {
    const bool comm_entry = e.label.rfind("comm/", 0) == 0;
    const std::string body =
        comm_entry ? e.label.substr(5)
                   : (e.label.rfind("compute/", 0) == 0 ? e.label.substr(8)
                                                        : e.label);
    if (body.rfind("coarsen", 0) == 0 || body.rfind("ghost/match", 0) == 0 ||
        body.rfind("ghost/cmap", 0) == 0 || body.rfind("allgather/leader", 0) == 0) {
      res.phases.coarsen += e.seconds;
    } else if (body.rfind("initpart", 0) == 0) {
      res.phases.initpart += e.seconds;
    } else {
      res.phases.uncoarsen += e.seconds;
    }
  }
  res.wall_seconds = wall.seconds();
  return res;
}

std::unique_ptr<Partitioner> make_par_partitioner() {
  return std::make_unique<ParMetisPartitioner>();
}

}  // namespace gp
