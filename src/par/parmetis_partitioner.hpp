// Distributed-memory multilevel k-way partitioner in the style of
// ParMetis, running on the simulated message-passing layer (src/par/comm):
// block-distributed vertices, even/odd-direction match-request passes with
// one aggregated message per rank pair, all-to-all broadcast before the
// initial partitioning, and pass-committed refinement.
#pragma once

#include "core/partitioner.hpp"

namespace gp {

class ParMetisPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "parmetis"; }
  [[nodiscard]] PartitionResult run(const CsrGraph& g,
                                    const PartitionOptions& opts) const override;
};

}  // namespace gp
