#include "serial/bisection.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace gp {

namespace {

/// Max-heap over (gain, vertex) used by the FM drain.  Entries order
/// exactly like std::pair<wgt_t, vid_t>, and any correct max-heap pops the
/// same value sequence, so results are bit-identical to a
/// std::priority_queue while the hot path runs on a flat 4-ary heap of
/// packed 8-byte keys (gain biased into the high 32 bits, vertex id low).
/// Packing requires |gain| to fit 31 bits — gains never exceed a vertex's
/// weighted degree, so the caller picks the mode from that bound once per
/// graph; the pair-heap fallback covers arbitrarily heavy graphs.
class GainHeap {
 public:
  void reset(bool packed) {
    packed_ = packed;
    pk_.clear();
    pr_.clear();
  }
  void clear() {
    pk_.clear();
    pr_.clear();
  }
  [[nodiscard]] bool empty() const {
    return packed_ ? pk_.empty() : pr_.empty();
  }
  /// Append without restoring the heap property (bulk seeding).
  void append(wgt_t gain, vid_t v) {
    if (packed_) pk_.push_back(pack(gain, v));
    else pr_.emplace_back(gain, v);
  }
  /// Restore the heap property after a sequence of append()s.
  void build() {
    if (packed_) {
      for (std::size_t i = 1; i < pk_.size(); ++i) sift_up(i);
    } else {
      std::make_heap(pr_.begin(), pr_.end());
    }
  }
  void push(wgt_t gain, vid_t v) {
    if (packed_) {
      pk_.push_back(pack(gain, v));
      sift_up(pk_.size() - 1);
    } else {
      pr_.emplace_back(gain, v);
      std::push_heap(pr_.begin(), pr_.end());
    }
  }
  std::pair<wgt_t, vid_t> pop() {
    if (!packed_) {
      std::pop_heap(pr_.begin(), pr_.end());
      const auto top = pr_.back();
      pr_.pop_back();
      return top;
    }
    const std::uint64_t top = pk_[0];
    const std::uint64_t last = pk_.back();
    pk_.pop_back();
    if (!pk_.empty()) {
      // Sift the former tail down from the root (4 children per node).
      std::size_t i = 0;
      const std::size_t n = pk_.size();
      for (;;) {
        const std::size_t c0 = 4 * i + 1;
        if (c0 >= n) break;
        std::size_t best = c0;
        const std::size_t ce = std::min(c0 + 4, n);
        for (std::size_t c = c0 + 1; c < ce; ++c) {
          if (pk_[c] > pk_[best]) best = c;
        }
        if (pk_[best] <= last) break;
        pk_[i] = pk_[best];
        i = best;
      }
      pk_[i] = last;
    }
    return {static_cast<wgt_t>(static_cast<std::int32_t>(
                static_cast<std::uint32_t>(top >> 32) - 0x80000000u)),
            static_cast<vid_t>(static_cast<std::uint32_t>(top))};
  }

 private:
  static std::uint64_t pack(wgt_t gain, vid_t v) {
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(gain) + 0x80000000u)
            << 32) |
           static_cast<std::uint32_t>(v);
  }
  void sift_up(std::size_t i) {
    const std::uint64_t x = pk_[i];
    while (i > 0) {
      const std::size_t p = (i - 1) / 4;
      if (pk_[p] >= x) break;
      pk_[i] = pk_[p];
      i = p;
    }
    pk_[i] = x;
  }

  bool packed_ = true;
  std::vector<std::uint64_t> pk_;
  std::vector<std::pair<wgt_t, vid_t>> pr_;
};

/// gain of moving v to the other side = external - internal arc weight.
wgt_t move_gain(const CsrGraph& g, const std::vector<part_t>& side, vid_t v) {
  const auto nbrs = g.neighbors(v);
  const auto wts = g.neighbor_weights(v);
  const part_t sv = side[static_cast<std::size_t>(v)];
  wgt_t gain = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    gain += (side[static_cast<std::size_t>(nbrs[i])] != sv) ? wts[i] : -wts[i];
  }
  return gain;
}

}  // namespace

wgt_t bisection_cut(const CsrGraph& g, const std::vector<part_t>& side) {
  wgt_t cut2 = 0;
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (side[static_cast<std::size_t>(nbrs[i])] !=
          side[static_cast<std::size_t>(v)]) {
        cut2 += wts[i];
      }
    }
  }
  return cut2 / 2;
}

BisectionResult gggp_bisect(const CsrGraph& g, wgt_t target0, Rng& rng,
                            int trials) {
  const vid_t n = g.num_vertices();
  BisectionResult best;
  if (n == 0) {
    best.cut = 0;
    return best;
  }
  best.cut = std::numeric_limits<wgt_t>::max();

  for (int trial = 0; trial < trials; ++trial) {
    std::vector<part_t> side(static_cast<std::size_t>(n), 1);
    std::vector<char> in_frontier(static_cast<std::size_t>(n), 0);
    std::uint64_t work = 0;

    // (gain, vertex) max-heap with lazy stale-entry skipping: we re-push a
    // vertex whenever its gain improves and skip entries whose gain no
    // longer matches at pop time.
    std::priority_queue<std::pair<wgt_t, vid_t>> frontier;
    std::vector<wgt_t> gain(static_cast<std::size_t>(n), 0);

    const vid_t seed = static_cast<vid_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    wgt_t w0 = 0;
    wgt_t cut = 0;
    vid_t grown = 0;

    auto grow = [&](vid_t v) {
      side[static_cast<std::size_t>(v)] = 0;
      w0 += g.vertex_weight(v);
      ++grown;
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      work += nbrs.size();
      // Moving v across adds its side-1 arcs to the cut and removes its
      // side-0 arcs: delta = total - 2*internal.  Tracking this here keeps
      // cut exact without the O(E) full rescan per trial.
      wgt_t tot = 0, internal = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t u = nbrs[i];
        if (u == v) continue;  // self-arcs never cross the cut
        tot += wts[i];
        if (side[static_cast<std::size_t>(u)] == 0) {
          internal += wts[i];
          continue;
        }
        // Moving u into the region removes arc {u, region} from the cut
        // and adds its remaining side-1 arcs: gain = 2*internal - degree_w.
        gain[static_cast<std::size_t>(u)] += 2 * wts[i];
        if (!in_frontier[static_cast<std::size_t>(u)]) {
          // First touch: initialize with -total arc weight of u.
          wgt_t tot = 0;
          for (const wgt_t w : g.neighbor_weights(u)) tot += w;
          gain[static_cast<std::size_t>(u)] =
              2 * wts[i] - tot;  // overwrite the += above deliberately
          in_frontier[static_cast<std::size_t>(u)] = 1;
        }
        frontier.emplace(gain[static_cast<std::size_t>(u)], u);
      }
      cut += tot - 2 * internal;
    };

    grow(seed);
    while (w0 < target0 && grown < n) {
      vid_t next = kInvalidVid;
      while (!frontier.empty()) {
        const auto [gn, v] = frontier.top();
        frontier.pop();
        if (side[static_cast<std::size_t>(v)] == 0) continue;  // already in
        if (gn != gain[static_cast<std::size_t>(v)]) continue;  // stale
        next = v;
        break;
      }
      if (next == kInvalidVid) {
        // Disconnected graph: restart growth from any side-1 vertex.
        for (vid_t v = 0; v < n; ++v) {
          if (side[static_cast<std::size_t>(v)] == 1) {
            next = v;
            break;
          }
        }
        if (next == kInvalidVid) break;
      }
      grow(next);
    }

    BisectionResult cur;
    cur.side = std::move(side);
    cur.cut = cut;
    cur.weight0 = w0;
    cur.work_units = work;
    if (cur.cut < best.cut) best = std::move(cur);
    else best.work_units += cur.work_units;
  }
  return best;
}

FmStats fm_refine_bisection(const CsrGraph& g, std::vector<part_t>& side,
                            wgt_t min0, wgt_t max0, int max_passes,
                            wgt_t cut_hint) {
  const vid_t n = g.num_vertices();
  FmStats stats;
  stats.cut_before = (cut_hint >= 0) ? cut_hint : bisection_cut(g, side);
  wgt_t cur_cut = stats.cut_before;

  wgt_t w0 = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (side[static_cast<std::size_t>(v)] == 0) w0 += g.vertex_weight(v);
  }

  std::vector<wgt_t> gain(static_cast<std::size_t>(n));
  std::vector<char> moved(static_cast<std::size_t>(n));
  // Gains are valid only once computed in the current pass; applying a
  // delta to a stale entry would corrupt the cut accounting.
  std::vector<int> gain_pass(static_cast<std::size_t>(n), -1);

  // Heap key mode: a gain never exceeds the vertex's weighted degree, so
  // the packed 8-byte heap is exact whenever the heaviest vertex stays
  // comfortably inside 31 bits.
  wgt_t maxwdeg = 0;
  for (vid_t v = 0; v < n; ++v) {
    wgt_t s = 0;
    for (const wgt_t w : g.neighbor_weights(v)) s += w;
    maxwdeg = std::max(maxwdeg, s);
  }
  GainHeap heap;
  heap.reset(maxwdeg < (wgt_t{1} << 30));
  std::vector<vid_t> move_seq;

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    std::fill(moved.begin(), moved.end(), 0);

    // Seed with boundary vertices.  One fused neighbour scan both detects
    // the boundary and accumulates the move gain.
    heap.clear();
    for (vid_t v = 0; v < n; ++v) {
      const part_t sv = side[static_cast<std::size_t>(v)];
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      wgt_t gn = 0;
      bool boundary = false;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (side[static_cast<std::size_t>(nbrs[i])] != sv) {
          gn += wts[i];
          boundary = true;
        } else {
          gn -= wts[i];
        }
      }
      stats.work_units += 1;
      if (boundary) {
        gain[static_cast<std::size_t>(v)] = gn;
        gain_pass[static_cast<std::size_t>(v)] = pass;
        stats.work_units += static_cast<std::uint64_t>(g.degree(v));
        heap.append(gn, v);
      }
    }
    heap.build();

    // FM pass: move vertices one at a time (hill-climbing allowed),
    // remember the best prefix, roll back the rest.
    move_seq.clear();
    wgt_t best_cut = cur_cut;
    std::size_t best_prefix = 0;
    wgt_t sim_cut = cur_cut;

    while (!heap.empty()) {
      const auto [gn, v] = heap.pop();
      if (moved[static_cast<std::size_t>(v)]) continue;
      if (gn != gain[static_cast<std::size_t>(v)]) continue;  // stale
      // Balance check for the move.
      const part_t sv = side[static_cast<std::size_t>(v)];
      const wgt_t vw = g.vertex_weight(v);
      const wgt_t new_w0 = (sv == 0) ? w0 - vw : w0 + vw;
      const wgt_t mid = (min0 + max0) / 2;
      const bool in_window = (new_w0 >= min0 && new_w0 <= max0);
      const bool toward_window =
          std::abs(new_w0 - mid) < std::abs(w0 - mid);
      if (!in_window && !toward_window) continue;
      // Stop exploring hopeless tails: bounded negative-gain streak is
      // enforced by the queue draining naturally; we cap the sequence at n.
      moved[static_cast<std::size_t>(v)] = 1;
      side[static_cast<std::size_t>(v)] = 1 - sv;
      w0 = new_w0;
      sim_cut -= gn;
      move_seq.push_back(v);
      if (sim_cut < best_cut) {
        best_cut = sim_cut;
        best_prefix = move_seq.size();
      }
      // Update neighbour gains.
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      stats.work_units += nbrs.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t u = nbrs[i];
        if (moved[static_cast<std::size_t>(u)]) continue;
        if (gain_pass[static_cast<std::size_t>(u)] == pass) {
          // v switched sides: if u is now on v's old side its gain rises
          // by 2*w(u,v); if on v's new side it falls by 2*w(u,v).
          const wgt_t delta =
              (side[static_cast<std::size_t>(u)] == sv) ? 2 * wts[i]
                                                        : -2 * wts[i];
          gain[static_cast<std::size_t>(u)] += delta;
        } else {
          // First time u becomes interesting this pass: full recompute.
          gain[static_cast<std::size_t>(u)] = move_gain(g, side, u);
          gain_pass[static_cast<std::size_t>(u)] = pass;
          stats.work_units += static_cast<std::uint64_t>(g.degree(u));
        }
        heap.push(gain[static_cast<std::size_t>(u)], u);
      }
    }

    // Roll back moves past the best prefix.
    for (std::size_t i = move_seq.size(); i-- > best_prefix;) {
      const vid_t v = move_seq[i];
      const part_t sv = side[static_cast<std::size_t>(v)];
      side[static_cast<std::size_t>(v)] = 1 - sv;
      w0 += (sv == 0) ? -g.vertex_weight(v) : g.vertex_weight(v);
    }
    const wgt_t new_cut = best_cut;
    const bool improved = new_cut < cur_cut;
    cur_cut = new_cut;
    if (!improved) break;
  }
  stats.cut_after = cur_cut;
  return stats;
}

}  // namespace gp
