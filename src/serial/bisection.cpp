#include "serial/bisection.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace gp {

namespace {

/// Max-heap over (gain, vertex) used by the FM drain.  Entries order
/// exactly like std::pair<wgt_t, vid_t>, and any correct max-heap pops the
/// same value sequence, so results are bit-identical to a
/// std::priority_queue while the hot path runs on a flat 4-ary heap of
/// packed 8-byte keys (gain biased into the high 32 bits, vertex id low).
/// Packing requires |gain| to fit 31 bits — gains never exceed a vertex's
/// weighted degree, so the caller picks the mode from that bound once per
/// graph; the pair-heap fallback covers arbitrarily heavy graphs.
class GainHeap {
 public:
  void reset(bool packed) {
    packed_ = packed;
    pk_.clear();
    pr_.clear();
  }
  void clear() {
    pk_.clear();
    pr_.clear();
  }
  [[nodiscard]] bool empty() const {
    return packed_ ? pk_.empty() : pr_.empty();
  }
  /// Append without restoring the heap property (bulk seeding).
  void append(wgt_t gain, vid_t v) {
    if (packed_) pk_.push_back(pack(gain, v));
    else pr_.emplace_back(gain, v);
  }
  /// Restore the heap property after a sequence of append()s.
  void build() {
    if (packed_) {
      for (std::size_t i = 1; i < pk_.size(); ++i) sift_up(i);
    } else {
      std::make_heap(pr_.begin(), pr_.end());
    }
  }
  void push(wgt_t gain, vid_t v) {
    if (packed_) {
      pk_.push_back(pack(gain, v));
      sift_up(pk_.size() - 1);
    } else {
      pr_.emplace_back(gain, v);
      std::push_heap(pr_.begin(), pr_.end());
    }
  }
  std::pair<wgt_t, vid_t> pop() {
    if (!packed_) {
      std::pop_heap(pr_.begin(), pr_.end());
      const auto top = pr_.back();
      pr_.pop_back();
      return top;
    }
    const std::uint64_t top = pk_[0];
    const std::uint64_t last = pk_.back();
    pk_.pop_back();
    if (!pk_.empty()) {
      // Sift the former tail down from the root (4 children per node).
      std::size_t i = 0;
      const std::size_t n = pk_.size();
      for (;;) {
        const std::size_t c0 = 4 * i + 1;
        if (c0 >= n) break;
        std::size_t best = c0;
        const std::size_t ce = std::min(c0 + 4, n);
        for (std::size_t c = c0 + 1; c < ce; ++c) {
          if (pk_[c] > pk_[best]) best = c;
        }
        if (pk_[best] <= last) break;
        pk_[i] = pk_[best];
        i = best;
      }
      pk_[i] = last;
    }
    return {static_cast<wgt_t>(static_cast<std::int32_t>(
                static_cast<std::uint32_t>(top >> 32) - 0x80000000u)),
            static_cast<vid_t>(static_cast<std::uint32_t>(top))};
  }

 private:
  static std::uint64_t pack(wgt_t gain, vid_t v) {
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(gain) + 0x80000000u)
            << 32) |
           static_cast<std::uint32_t>(v);
  }
  void sift_up(std::size_t i) {
    const std::uint64_t x = pk_[i];
    while (i > 0) {
      const std::size_t p = (i - 1) / 4;
      if (pk_[p] >= x) break;
      pk_[i] = pk_[p];
      i = p;
    }
    pk_[i] = x;
  }

  bool packed_ = true;
  std::vector<std::uint64_t> pk_;
  std::vector<std::pair<wgt_t, vid_t>> pr_;
};

}  // namespace

wgt_t bisection_cut(const CsrGraph& g, const std::vector<part_t>& side) {
  wgt_t cut2 = 0;
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (side[static_cast<std::size_t>(nbrs[i])] !=
          side[static_cast<std::size_t>(v)]) {
        cut2 += wts[i];
      }
    }
  }
  return cut2 / 2;
}

BisectionResult gggp_bisect(const CsrGraph& g, wgt_t target0, Rng& rng,
                            int trials) {
  const vid_t n = g.num_vertices();
  BisectionResult best;
  if (n == 0) {
    best.cut = 0;
    return best;
  }
  best.cut = std::numeric_limits<wgt_t>::max();

  for (int trial = 0; trial < trials; ++trial) {
    std::vector<part_t> side(static_cast<std::size_t>(n), 1);
    std::vector<char> in_frontier(static_cast<std::size_t>(n), 0);
    std::uint64_t work = 0;

    // (gain, vertex) max-heap with lazy stale-entry skipping: we re-push a
    // vertex whenever its gain improves and skip entries whose gain no
    // longer matches at pop time.
    std::priority_queue<std::pair<wgt_t, vid_t>> frontier;
    std::vector<wgt_t> gain(static_cast<std::size_t>(n), 0);

    const vid_t seed = static_cast<vid_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    wgt_t w0 = 0;
    wgt_t cut = 0;
    vid_t grown = 0;

    auto grow = [&](vid_t v) {
      side[static_cast<std::size_t>(v)] = 0;
      w0 += g.vertex_weight(v);
      ++grown;
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      work += nbrs.size();
      // Moving v across adds its side-1 arcs to the cut and removes its
      // side-0 arcs: delta = total - 2*internal.  Tracking this here keeps
      // cut exact without the O(E) full rescan per trial.
      wgt_t tot = 0, internal = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t u = nbrs[i];
        if (u == v) continue;  // self-arcs never cross the cut
        tot += wts[i];
        if (side[static_cast<std::size_t>(u)] == 0) {
          internal += wts[i];
          continue;
        }
        // Moving u into the region removes arc {u, region} from the cut
        // and adds its remaining side-1 arcs: gain = 2*internal - degree_w.
        gain[static_cast<std::size_t>(u)] += 2 * wts[i];
        if (!in_frontier[static_cast<std::size_t>(u)]) {
          // First touch: initialize with -total arc weight of u.
          wgt_t tot = 0;
          for (const wgt_t w : g.neighbor_weights(u)) tot += w;
          gain[static_cast<std::size_t>(u)] =
              2 * wts[i] - tot;  // overwrite the += above deliberately
          in_frontier[static_cast<std::size_t>(u)] = 1;
        }
        frontier.emplace(gain[static_cast<std::size_t>(u)], u);
      }
      cut += tot - 2 * internal;
    };

    grow(seed);
    while (w0 < target0 && grown < n) {
      vid_t next = kInvalidVid;
      while (!frontier.empty()) {
        const auto [gn, v] = frontier.top();
        frontier.pop();
        if (side[static_cast<std::size_t>(v)] == 0) continue;  // already in
        if (gn != gain[static_cast<std::size_t>(v)]) continue;  // stale
        next = v;
        break;
      }
      if (next == kInvalidVid) {
        // Disconnected graph: restart growth from any side-1 vertex.
        for (vid_t v = 0; v < n; ++v) {
          if (side[static_cast<std::size_t>(v)] == 1) {
            next = v;
            break;
          }
        }
        if (next == kInvalidVid) break;
      }
      grow(next);
    }

    BisectionResult cur;
    cur.side = std::move(side);
    cur.cut = cut;
    cur.weight0 = w0;
    cur.work_units = work;
    if (cur.cut < best.cut) best = std::move(cur);
    else best.work_units += cur.work_units;
  }
  return best;
}

FmStats fm_refine_bisection(const CsrGraph& g, std::vector<part_t>& side,
                            wgt_t min0, wgt_t max0, int max_passes,
                            wgt_t cut_hint, ThreadPool* seed_pool,
                            std::vector<std::uint64_t>* seed_thread_work) {
  const vid_t n = g.num_vertices();
  FmStats stats;
  stats.cut_before = (cut_hint >= 0) ? cut_hint : bisection_cut(g, side);
  wgt_t cur_cut = stats.cut_before;

  wgt_t w0 = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (side[static_cast<std::size_t>(v)] == 0) w0 += g.vertex_weight(v);
  }

  // Persistent exact gain cache (DESIGN.md §3.7): one full O(n + arcs)
  // build, then delta-maintained through every move AND every rollback, so
  // later passes seed from an O(n) boundary sweep instead of re-deriving
  // gains from the arcs, and the drain never pays the old "first touch
  // this pass" full recompute.  A vertex is boundary iff it has a crossing
  // arc, i.e. ext > 0; with gain = ext - int and wdeg = ext + int that is
  // exactly gain + wdeg > 0, so the boundary test needs no neighbour scan.
  std::vector<wgt_t> gain(static_cast<std::size_t>(n));
  std::vector<wgt_t> wdeg(static_cast<std::size_t>(n));
  std::vector<wgt_t> selfw(static_cast<std::size_t>(n));
  std::vector<char> moved(static_cast<std::size_t>(n));

  // Parallel-seeding scratch, alive across passes.  Scans write only
  // per-vertex slots they own (contiguous blocks) and per-thread buffers,
  // so they are race-free; concatenating the buffers in block order
  // reproduces the serial append sequence exactly.
  const bool par_seed = seed_pool && seed_pool->size() > 1 && n >= 256;
  std::vector<std::vector<std::pair<wgt_t, vid_t>>> seed_bufs;
  std::vector<std::uint64_t> seed_tw;
  if (par_seed) {
    seed_bufs.resize(static_cast<std::size_t>(seed_pool->size()));
    seed_tw.assign(static_cast<std::size_t>(seed_pool->size()), 0);
  }

  wgt_t maxwdeg = 0;
  auto init_range = [&](std::int64_t b, std::int64_t e,
                        wgt_t* mw_out) -> std::uint64_t {
    wgt_t mw = 0;
    std::uint64_t w = 0;
    for (std::int64_t vi = b; vi < e; ++vi) {
      const auto v = static_cast<vid_t>(vi);
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      const part_t sv = side[static_cast<std::size_t>(v)];
      wgt_t wd = 0, gn = 0, sw = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        wd += wts[i];
        if (nbrs[i] == v) sw += wts[i];
        gn +=
            (side[static_cast<std::size_t>(nbrs[i])] != sv) ? wts[i] : -wts[i];
      }
      wdeg[static_cast<std::size_t>(v)] = wd;
      selfw[static_cast<std::size_t>(v)] = sw;
      gain[static_cast<std::size_t>(v)] = gn;
      mw = std::max(mw, wd);
      w += 1 + nbrs.size();
    }
    *mw_out = mw;
    return w;
  };
  if (par_seed) {
    std::vector<wgt_t> tmax(static_cast<std::size_t>(seed_pool->size()), 0);
    std::fill(seed_tw.begin(), seed_tw.end(), 0);
    seed_pool->parallel_for_blocked(
        n, [&](int t, std::int64_t b, std::int64_t e) {
          seed_tw[static_cast<std::size_t>(t)] =
              init_range(b, e, &tmax[static_cast<std::size_t>(t)]);
        });
    for (std::size_t t = 0; t < seed_tw.size(); ++t) {
      maxwdeg = std::max(maxwdeg, tmax[t]);
      stats.work_units += seed_tw[t];
      stats.seed_work += seed_tw[t];
      if (seed_thread_work) (*seed_thread_work)[t] += seed_tw[t];
    }
  } else {
    const std::uint64_t w = init_range(0, n, &maxwdeg);
    stats.work_units += w;
    stats.seed_work += w;
  }

  // Heap key mode: a gain never exceeds the vertex's weighted degree, so
  // the packed 8-byte heap is exact whenever the heaviest vertex stays
  // comfortably inside 31 bits.
  GainHeap heap;
  heap.reset(maxwdeg < (wgt_t{1} << 30));
  std::vector<vid_t> move_seq;

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    std::fill(moved.begin(), moved.end(), 0);

    // Seed with boundary vertices — an O(1)-per-vertex sweep over the
    // maintained gains (the old code re-derived every gain from the arcs
    // here, every pass).
    heap.clear();
    if (par_seed) {
      for (auto& buf : seed_bufs) buf.clear();
      std::fill(seed_tw.begin(), seed_tw.end(), 0);
      seed_pool->parallel_for_blocked(
          n, [&](int t, std::int64_t b, std::int64_t e) {
            auto& buf = seed_bufs[static_cast<std::size_t>(t)];
            std::uint64_t w = 0;
            for (std::int64_t vi = b; vi < e; ++vi) {
              const auto v = static_cast<vid_t>(vi);
              w += 1;
              if (gain[static_cast<std::size_t>(v)] +
                      wdeg[static_cast<std::size_t>(v)] >
                  0) {
                w += 1;
                buf.emplace_back(gain[static_cast<std::size_t>(v)], v);
              }
            }
            seed_tw[static_cast<std::size_t>(t)] = w;
          });
      for (std::size_t t = 0; t < seed_bufs.size(); ++t) {
        for (const auto& [gn, v] : seed_bufs[t]) heap.append(gn, v);
        stats.work_units += seed_tw[t];
        stats.seed_work += seed_tw[t];
        if (seed_thread_work) (*seed_thread_work)[t] += seed_tw[t];
      }
    } else {
      for (vid_t v = 0; v < n; ++v) {
        stats.work_units += 1;
        stats.seed_work += 1;
        if (gain[static_cast<std::size_t>(v)] +
                wdeg[static_cast<std::size_t>(v)] >
            0) {
          stats.work_units += 1;
          stats.seed_work += 1;
          heap.append(gain[static_cast<std::size_t>(v)], v);
        }
      }
    }
    heap.build();

    // FM pass: move vertices one at a time (hill-climbing allowed),
    // remember the best prefix, roll back the rest.
    move_seq.clear();
    wgt_t best_cut = cur_cut;
    std::size_t best_prefix = 0;
    wgt_t sim_cut = cur_cut;

    while (!heap.empty()) {
      const auto [gn, v] = heap.pop();
      if (moved[static_cast<std::size_t>(v)]) continue;
      if (gn != gain[static_cast<std::size_t>(v)]) continue;  // stale
      // Balance check for the move.
      const part_t sv = side[static_cast<std::size_t>(v)];
      const wgt_t vw = g.vertex_weight(v);
      const wgt_t new_w0 = (sv == 0) ? w0 - vw : w0 + vw;
      const wgt_t mid = (min0 + max0) / 2;
      const bool in_window = (new_w0 >= min0 && new_w0 <= max0);
      const bool toward_window =
          std::abs(new_w0 - mid) < std::abs(w0 - mid);
      if (!in_window && !toward_window) continue;
      // Stop exploring hopeless tails: bounded negative-gain streak is
      // enforced by the queue draining naturally; we cap the sequence at n.
      moved[static_cast<std::size_t>(v)] = 1;
      side[static_cast<std::size_t>(v)] = 1 - sv;
      w0 = new_w0;
      sim_cut -= gn;
      move_seq.push_back(v);
      if (sim_cut < best_cut) {
        best_cut = sim_cut;
        best_prefix = move_seq.size();
      }
      // Update neighbour gains.  Every neighbour's gain gets the exact
      // delta — including already-moved ones, which the old code left
      // stale — so the cache stays globally exact and the next pass can
      // seed without recomputing.  Only unmoved neighbours are (re)pushed,
      // exactly as before, so the heap's value sequence is unchanged.
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      stats.work_units += nbrs.size();
      stats.drain_work += nbrs.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t u = nbrs[i];
        if (u == v) continue;  // self-arcs never change crossing state
        // v switched sides: if the arc now crosses, u's gain rises by
        // 2*w(u,v); if it became internal, it falls by 2*w(u,v).
        const wgt_t delta = (side[static_cast<std::size_t>(u)] !=
                             side[static_cast<std::size_t>(v)])
                                ? 2 * wts[i]
                                : -2 * wts[i];
        gain[static_cast<std::size_t>(u)] += delta;
        if (!moved[static_cast<std::size_t>(u)]) {
          heap.push(gain[static_cast<std::size_t>(u)], u);
        }
      }
      // v's own flip negates its non-self gain (ext and int swap); the
      // self-arc contribution -selfw is side-invariant.
      gain[static_cast<std::size_t>(v)] =
          -gn - 2 * selfw[static_cast<std::size_t>(v)];
    }

    // Roll back moves past the best prefix.  When the pass improved
    // (best_prefix > 0) the loop continues, so the inverse gain deltas
    // keep the cache exact for the next seeding sweep.  When it did not
    // (best_prefix == 0) this is the terminal pass — the cache is dead,
    // so the rollback is just the cheap side flips.
    const bool fix_gains = best_prefix > 0;
    for (std::size_t i = move_seq.size(); i-- > best_prefix;) {
      const vid_t v = move_seq[i];
      const part_t sv = side[static_cast<std::size_t>(v)];
      side[static_cast<std::size_t>(v)] = 1 - sv;
      w0 += (sv == 0) ? -g.vertex_weight(v) : g.vertex_weight(v);
      if (!fix_gains) continue;
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      stats.work_units += nbrs.size();
      stats.drain_work += nbrs.size();
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        const vid_t u = nbrs[j];
        if (u == v) continue;
        gain[static_cast<std::size_t>(u)] +=
            (side[static_cast<std::size_t>(u)] !=
             side[static_cast<std::size_t>(v)])
                ? 2 * wts[j]
                : -2 * wts[j];
      }
      gain[static_cast<std::size_t>(v)] =
          -gain[static_cast<std::size_t>(v)] -
          2 * selfw[static_cast<std::size_t>(v)];
    }
    const wgt_t new_cut = best_cut;
    const bool improved = new_cut < cur_cut;
    cur_cut = new_cut;
    if (!improved) break;
  }
  stats.cut_after = cur_cut;
  return stats;
}

}  // namespace gp
