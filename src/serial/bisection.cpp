#include "serial/bisection.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace gp {

namespace {

/// gain of moving v to the other side = external - internal arc weight.
wgt_t move_gain(const CsrGraph& g, const std::vector<part_t>& side, vid_t v) {
  const auto nbrs = g.neighbors(v);
  const auto wts = g.neighbor_weights(v);
  const part_t sv = side[static_cast<std::size_t>(v)];
  wgt_t gain = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    gain += (side[static_cast<std::size_t>(nbrs[i])] != sv) ? wts[i] : -wts[i];
  }
  return gain;
}

}  // namespace

wgt_t bisection_cut(const CsrGraph& g, const std::vector<part_t>& side) {
  wgt_t cut2 = 0;
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (side[static_cast<std::size_t>(nbrs[i])] !=
          side[static_cast<std::size_t>(v)]) {
        cut2 += wts[i];
      }
    }
  }
  return cut2 / 2;
}

BisectionResult gggp_bisect(const CsrGraph& g, wgt_t target0, Rng& rng,
                            int trials) {
  const vid_t n = g.num_vertices();
  BisectionResult best;
  if (n == 0) {
    best.cut = 0;
    return best;
  }
  best.cut = std::numeric_limits<wgt_t>::max();

  for (int trial = 0; trial < trials; ++trial) {
    std::vector<part_t> side(static_cast<std::size_t>(n), 1);
    std::vector<char> in_frontier(static_cast<std::size_t>(n), 0);
    std::uint64_t work = 0;

    // (gain, vertex) max-heap with lazy stale-entry skipping: we re-push a
    // vertex whenever its gain improves and skip entries whose gain no
    // longer matches at pop time.
    std::priority_queue<std::pair<wgt_t, vid_t>> frontier;
    std::vector<wgt_t> gain(static_cast<std::size_t>(n), 0);

    const vid_t seed = static_cast<vid_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    wgt_t w0 = 0;
    vid_t grown = 0;

    auto grow = [&](vid_t v) {
      side[static_cast<std::size_t>(v)] = 0;
      w0 += g.vertex_weight(v);
      ++grown;
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      work += nbrs.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t u = nbrs[i];
        if (side[static_cast<std::size_t>(u)] == 0) continue;
        // Moving u into the region removes arc {u, region} from the cut
        // and adds its remaining side-1 arcs: gain = 2*internal - degree_w.
        gain[static_cast<std::size_t>(u)] += 2 * wts[i];
        if (!in_frontier[static_cast<std::size_t>(u)]) {
          // First touch: initialize with -total arc weight of u.
          wgt_t tot = 0;
          for (const wgt_t w : g.neighbor_weights(u)) tot += w;
          gain[static_cast<std::size_t>(u)] =
              2 * wts[i] - tot;  // overwrite the += above deliberately
          in_frontier[static_cast<std::size_t>(u)] = 1;
        }
        frontier.emplace(gain[static_cast<std::size_t>(u)], u);
      }
    };

    grow(seed);
    while (w0 < target0 && grown < n) {
      vid_t next = kInvalidVid;
      while (!frontier.empty()) {
        const auto [gn, v] = frontier.top();
        frontier.pop();
        if (side[static_cast<std::size_t>(v)] == 0) continue;  // already in
        if (gn != gain[static_cast<std::size_t>(v)]) continue;  // stale
        next = v;
        break;
      }
      if (next == kInvalidVid) {
        // Disconnected graph: restart growth from any side-1 vertex.
        for (vid_t v = 0; v < n; ++v) {
          if (side[static_cast<std::size_t>(v)] == 1) {
            next = v;
            break;
          }
        }
        if (next == kInvalidVid) break;
      }
      grow(next);
    }

    BisectionResult cur;
    cur.side = std::move(side);
    cur.cut = bisection_cut(g, cur.side);
    cur.weight0 = w0;
    cur.work_units = work + static_cast<std::uint64_t>(g.num_arcs());
    if (cur.cut < best.cut) best = std::move(cur);
    else best.work_units += cur.work_units;
  }
  return best;
}

FmStats fm_refine_bisection(const CsrGraph& g, std::vector<part_t>& side,
                            wgt_t min0, wgt_t max0, int max_passes) {
  const vid_t n = g.num_vertices();
  FmStats stats;
  stats.cut_before = bisection_cut(g, side);
  wgt_t cur_cut = stats.cut_before;

  wgt_t w0 = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (side[static_cast<std::size_t>(v)] == 0) w0 += g.vertex_weight(v);
  }

  std::vector<wgt_t> gain(static_cast<std::size_t>(n));
  std::vector<char> moved(static_cast<std::size_t>(n));
  // Gains are valid only once computed in the current pass; applying a
  // delta to a stale entry would corrupt the cut accounting.
  std::vector<int> gain_pass(static_cast<std::size_t>(n), -1);

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    std::fill(moved.begin(), moved.end(), 0);

    std::priority_queue<std::pair<wgt_t, vid_t>> pq;
    // Seed with boundary vertices.
    for (vid_t v = 0; v < n; ++v) {
      const part_t sv = side[static_cast<std::size_t>(v)];
      bool boundary = false;
      for (const vid_t u : g.neighbors(v)) {
        if (side[static_cast<std::size_t>(u)] != sv) {
          boundary = true;
          break;
        }
      }
      stats.work_units += 1;
      if (boundary) {
        gain[static_cast<std::size_t>(v)] = move_gain(g, side, v);
        gain_pass[static_cast<std::size_t>(v)] = pass;
        stats.work_units += static_cast<std::uint64_t>(g.degree(v));
        pq.emplace(gain[static_cast<std::size_t>(v)], v);
      }
    }

    // FM pass: move vertices one at a time (hill-climbing allowed),
    // remember the best prefix, roll back the rest.
    std::vector<vid_t> move_seq;
    wgt_t best_cut = cur_cut;
    std::size_t best_prefix = 0;
    wgt_t sim_cut = cur_cut;

    while (!pq.empty()) {
      const auto [gn, v] = pq.top();
      pq.pop();
      if (moved[static_cast<std::size_t>(v)]) continue;
      if (gn != gain[static_cast<std::size_t>(v)]) continue;  // stale
      // Balance check for the move.
      const part_t sv = side[static_cast<std::size_t>(v)];
      const wgt_t vw = g.vertex_weight(v);
      const wgt_t new_w0 = (sv == 0) ? w0 - vw : w0 + vw;
      const wgt_t mid = (min0 + max0) / 2;
      const bool in_window = (new_w0 >= min0 && new_w0 <= max0);
      const bool toward_window =
          std::abs(new_w0 - mid) < std::abs(w0 - mid);
      if (!in_window && !toward_window) continue;
      // Stop exploring hopeless tails: bounded negative-gain streak is
      // enforced by the queue draining naturally; we cap the sequence at n.
      moved[static_cast<std::size_t>(v)] = 1;
      side[static_cast<std::size_t>(v)] = 1 - sv;
      w0 = new_w0;
      sim_cut -= gn;
      move_seq.push_back(v);
      if (sim_cut < best_cut) {
        best_cut = sim_cut;
        best_prefix = move_seq.size();
      }
      // Update neighbour gains.
      const auto nbrs = g.neighbors(v);
      const auto wts = g.neighbor_weights(v);
      stats.work_units += nbrs.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t u = nbrs[i];
        if (moved[static_cast<std::size_t>(u)]) continue;
        if (gain_pass[static_cast<std::size_t>(u)] == pass) {
          // v switched sides: if u is now on v's old side its gain rises
          // by 2*w(u,v); if on v's new side it falls by 2*w(u,v).
          const wgt_t delta =
              (side[static_cast<std::size_t>(u)] == sv) ? 2 * wts[i]
                                                        : -2 * wts[i];
          gain[static_cast<std::size_t>(u)] += delta;
        } else {
          // First time u becomes interesting this pass: full recompute.
          gain[static_cast<std::size_t>(u)] = move_gain(g, side, u);
          gain_pass[static_cast<std::size_t>(u)] = pass;
          stats.work_units += static_cast<std::uint64_t>(g.degree(u));
        }
        pq.emplace(gain[static_cast<std::size_t>(u)], u);
      }
    }

    // Roll back moves past the best prefix.
    for (std::size_t i = move_seq.size(); i-- > best_prefix;) {
      const vid_t v = move_seq[i];
      const part_t sv = side[static_cast<std::size_t>(v)];
      side[static_cast<std::size_t>(v)] = 1 - sv;
      w0 += (sv == 0) ? -g.vertex_weight(v) : g.vertex_weight(v);
    }
    const wgt_t new_cut = best_cut;
    const bool improved = new_cut < cur_cut;
    cur_cut = new_cut;
    if (!improved) break;
  }
  stats.cut_after = cur_cut;
  return stats;
}

}  // namespace gp
