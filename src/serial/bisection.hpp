// Greedy Graph Growing bisection (GGGP) and 2-way FM refinement — the
// initial-partitioning toolkit of the Metis-style baseline.
#pragma once

#include <cstdint>

#include "core/csr_graph.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace gp {

struct BisectionResult {
  std::vector<part_t> side;  ///< 0 or 1 per vertex
  wgt_t cut = 0;
  wgt_t weight0 = 0;  ///< total vertex weight on side 0
  std::uint64_t work_units = 0;
};

/// Grows side 0 from a random seed in breadth-first fashion, always adding
/// the frontier vertex with the largest edge-cut decrease, until side 0
/// holds ~`target0` vertex weight (the paper's "almost half").  Runs
/// `trials` independent growths and keeps the best cut.
[[nodiscard]] BisectionResult gggp_bisect(const CsrGraph& g, wgt_t target0,
                                          Rng& rng, int trials = 4);

struct FmStats {
  std::uint64_t work_units = 0;  ///< seed_work + drain_work
  /// Gain-cache build (one O(n + arcs) sweep) plus the per-pass O(n)
  /// boundary sweeps: embarrassingly parallel, see seed_pool below.
  std::uint64_t seed_work = 0;
  /// Heap-drain portion (sequential moves + rollback with exact inverse
  /// gain deltas): inherently serial.
  std::uint64_t drain_work = 0;
  int passes = 0;
  wgt_t cut_before = 0;
  wgt_t cut_after = 0;
};

/// Boundary Fiduccia-Mattheyses refinement of a bisection (the "modified
/// Kernighan-Lin" of Metis): repeated passes of single-vertex moves with
/// hill-climbing and rollback to the best prefix, under the balance
/// window [min0, max0] for side-0 weight.
///
/// `cut_hint`, when >= 0, is trusted as the exact current cut of `side`
/// (callers coming straight from gggp_bisect already know it) and skips
/// the O(E) recompute; FM tracks the cut exactly from there, so
/// `cut_after` always equals bisection_cut of the refined side.
///
/// `seed_pool`, when non-null with more than one worker, parallelizes the
/// per-pass boundary-seeding scan across its threads.  The result is
/// byte-identical to the serial scan: per-thread buffers cover contiguous
/// vertex blocks, are concatenated in block order (so the heap receives
/// the same append sequence), and the heap's (gain, vertex) keys are
/// distinct, so the drain pops the same move sequence regardless of
/// layout.  `seed_thread_work`, when provided (sized >= pool size),
/// accumulates the measured per-thread seeding work for model charging.
FmStats fm_refine_bisection(const CsrGraph& g, std::vector<part_t>& side,
                            wgt_t min0, wgt_t max0, int max_passes = 8,
                            wgt_t cut_hint = -1,
                            ThreadPool* seed_pool = nullptr,
                            std::vector<std::uint64_t>* seed_thread_work =
                                nullptr);

/// Cut of a 2-way partition given as a side vector.
[[nodiscard]] wgt_t bisection_cut(const CsrGraph& g,
                                  const std::vector<part_t>& side);

}  // namespace gp
