#include "serial/hem_matching.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace gp {

MatchResult hem_match_serial(const CsrGraph& g, Rng& rng,
                             SerialMatchStats* stats) {
  std::vector<vid_t> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with the library RNG for reproducibility.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  return hem_match_serial_ordered(g, order, stats);
}

MatchResult hem_match_serial_ordered(const CsrGraph& g,
                                     const std::vector<vid_t>& order,
                                     SerialMatchStats* stats) {
  const vid_t n = g.num_vertices();
  MatchResult r;
  r.match.assign(static_cast<std::size_t>(n), kInvalidVid);

  std::uint64_t work = 0;
  vid_t pairs = 0;
  for (const vid_t v : order) {
    if (r.match[static_cast<std::size_t>(v)] != kInvalidVid) continue;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    work += nbrs.size();
    vid_t best = kInvalidVid;
    wgt_t best_w = -1;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      if (r.match[static_cast<std::size_t>(u)] != kInvalidVid) continue;
      if (wts[i] > best_w) {
        best_w = wts[i];
        best = u;
      }
    }
    if (best == kInvalidVid) {
      r.match[static_cast<std::size_t>(v)] = v;
    } else {
      r.match[static_cast<std::size_t>(v)] = best;
      r.match[static_cast<std::size_t>(best)] = v;
      ++pairs;
    }
  }

  auto [cmap, nc] = build_cmap_serial(r.match);
  r.cmap = std::move(cmap);
  r.n_coarse = nc;
  if (stats) {
    stats->work_units = work;
    stats->matched_pairs = pairs;
  }
  return r;
}

MatchResult match_serial_policy(const CsrGraph& g, MatchPolicy policy,
                                Rng& rng, SerialMatchStats* stats) {
  if (policy == MatchPolicy::kHeavyEdge) {
    return hem_match_serial(g, rng, stats);
  }
  const vid_t n = g.num_vertices();
  MatchResult r;
  r.match.assign(static_cast<std::size_t>(n), kInvalidVid);

  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  std::uint64_t work = 0;
  vid_t pairs = 0;
  for (const vid_t v : order) {
    if (r.match[static_cast<std::size_t>(v)] != kInvalidVid) continue;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    work += nbrs.size();
    vid_t best = kInvalidVid;
    if (policy == MatchPolicy::kLightEdge) {
      wgt_t best_w = std::numeric_limits<wgt_t>::max();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t u = nbrs[i];
        if (r.match[static_cast<std::size_t>(u)] != kInvalidVid) continue;
        if (wts[i] < best_w) {
          best_w = wts[i];
          best = u;
        }
      }
    } else {  // kRandom: uniform among the free neighbours
      vid_t free_count = 0;
      for (const vid_t u : nbrs) {
        if (r.match[static_cast<std::size_t>(u)] == kInvalidVid) ++free_count;
      }
      if (free_count > 0) {
        auto pick = static_cast<vid_t>(
            rng.next_below(static_cast<std::uint64_t>(free_count)));
        for (const vid_t u : nbrs) {
          if (r.match[static_cast<std::size_t>(u)] != kInvalidVid) continue;
          if (pick-- == 0) {
            best = u;
            break;
          }
        }
      }
    }
    if (best == kInvalidVid) {
      r.match[static_cast<std::size_t>(v)] = v;
    } else {
      r.match[static_cast<std::size_t>(v)] = best;
      r.match[static_cast<std::size_t>(best)] = v;
      ++pairs;
    }
  }
  auto [cmap, nc] = build_cmap_serial(r.match);
  r.cmap = std::move(cmap);
  r.n_coarse = nc;
  if (stats) {
    stats->work_units = work;
    stats->matched_pairs = pairs;
  }
  return r;
}

}  // namespace gp
