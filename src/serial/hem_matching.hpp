// Serial heavy-edge matching (HEM) — the matching policy of Metis, Scotch
// and Jostle, and the reference the parallel matchers are tested against.
#pragma once

#include <cstdint>

#include "core/csr_graph.hpp"
#include "core/matching.hpp"
#include "util/rng.hpp"

namespace gp {

struct SerialMatchStats {
  std::uint64_t work_units = 0;  ///< arcs scanned
  vid_t         matched_pairs = 0;
};

/// Matching policies discussed in the paper's background section:
/// HEM (heavy edge — used by Metis/Scotch/Jostle and by this library's
/// drivers), LEM (light edge), RM (random).
enum class MatchPolicy { kHeavyEdge, kLightEdge, kRandom };

/// Computes a maximal HEM matching.  Vertices are visited in a random
/// permutation (seeded); each unmatched vertex takes its heaviest
/// unmatched neighbour, falling back to self-match when none is free —
/// this *is* random matching when all edge weights are equal, matching
/// the paper's "HEM, or RM if all the edges have the same weight".
[[nodiscard]] MatchResult hem_match_serial(const CsrGraph& g, Rng& rng,
                                           SerialMatchStats* stats = nullptr);

/// Same policy with an explicit visit order (testing and determinism).
[[nodiscard]] MatchResult hem_match_serial_ordered(
    const CsrGraph& g, const std::vector<vid_t>& order,
    SerialMatchStats* stats = nullptr);

/// Generic policy-selectable serial matching (ablation support: the
/// paper's background compares HEM against random and light-edge
/// matching; HEM "exhibits the best results").
[[nodiscard]] MatchResult match_serial_policy(const CsrGraph& g,
                                              MatchPolicy policy, Rng& rng,
                                              SerialMatchStats* stats = nullptr);

}  // namespace gp
