#include "serial/initpart_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/graph_ops.hpp"
#include "serial/bisection.hpp"

namespace gp {

int initpart_select_winner(const std::vector<wgt_t>& cuts) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(cuts.size()); ++i) {
    if (cuts[static_cast<std::size_t>(i)] <
        cuts[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

namespace {

/// Static shape of the bisection tree: computable from k alone, because
/// every internal node splits its part count k into k0 = ceil(k/2) and
/// k - k0 regardless of the graph it ends up bisecting.  The static ranks
/// are what make per-trial seeds independent of execution order (and
/// therefore of the thread count).
struct PlanNode {
  part_t k = 0;           ///< parts this subtree must produce (>= 2)
  part_t k0 = 0;          ///< left child's share, ceil(k/2)
  part_t first_part = 0;
  int depth = 0;
  int left = -1;          ///< plan index of the left child; -1 = k==1 leaf
  int right = -1;
  std::uint64_t pre_rank = 0;  ///< internal nodes before this one, preorder
  std::uint64_t bfs_rank = 0;  ///< internal nodes before this one, BFS order
};

int build_plan(std::vector<PlanNode>& out, part_t k, part_t first_part,
               int depth) {
  const int idx = static_cast<int>(out.size());
  PlanNode n;
  n.k = k;
  n.k0 = (k + 1) / 2;  // left branch takes ceil(k/2) parts (Metis rule)
  n.first_part = first_part;
  n.depth = depth;
  n.pre_rank = static_cast<std::uint64_t>(idx);
  out.push_back(n);
  if (n.k0 > 1) {
    const int l = build_plan(out, n.k0, first_part, depth + 1);
    out[static_cast<std::size_t>(idx)].left = l;
  }
  if (k - n.k0 > 1) {
    const int r = build_plan(out, k - n.k0,
                             static_cast<part_t>(first_part + n.k0),
                             depth + 1);
    out[static_cast<std::size_t>(idx)].right = r;
  }
  return idx;
}

void assign_bfs_ranks(std::vector<PlanNode>& plan) {
  std::vector<int> queue{0};
  std::uint64_t rank = 0;
  for (std::size_t h = 0; h < queue.size(); ++h) {
    PlanNode& n = plan[static_cast<std::size_t>(queue[h])];
    n.bfs_rank = rank++;
    if (n.left >= 0) queue.push_back(n.left);
    if (n.right >= 0) queue.push_back(n.right);
  }
}

void advance_rng(Rng& r, std::uint64_t draws) {
  while (draws--) r.next();
}

/// A live tree node: the induced subgraph it must bisect plus the original
/// coarse-graph vertex ids behind its local ids.
struct ExecNode {
  int plan = -1;
  CsrGraph graph;
  std::vector<vid_t> ids;
};

}  // namespace

Partition initpart_engine(const CsrGraph& g, const InitPartConfig& cfg,
                          Rng* stream_rng, InitPartStats* stats) {
  Partition p;
  p.k = cfg.k;
  p.where.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  const int trials = std::max(1, cfg.trials);
  if (cfg.k <= 1 || g.num_vertices() == 0) {
    if (stats) *stats = InitPartStats{};
    return p;
  }

  std::vector<PlanNode> plan;
  build_plan(plan, cfg.k, 0, 0);
  assign_bfs_ranks(plan);

  // Tolerance budget: log2(k) nested bisections share eps (same split as
  // the historical serial and mt implementations).
  const int depth_total = std::max(
      1, static_cast<int>(std::ceil(std::log2(static_cast<double>(cfg.k)))));
  const double eps_level = cfg.eps / static_cast<double>(depth_total);

  ThreadPool* pool = (cfg.pool && cfg.pool->size() > 1) ? cfg.pool : nullptr;
  const int model_threads =
      cfg.model_threads > 0 ? cfg.model_threads
                            : (cfg.pool ? cfg.pool->size() : 1);

  // In stream mode every trial's RNG is the caller's stream advanced to
  // the trial's nominal draw position: trials consume one draw each, in
  // preorder over the tree, exactly as the old depth-first recursion did.
  // Positions are static, so trials can run in any order on any thread.
  const Rng stream_root = stream_rng ? *stream_rng : Rng(0);
  auto trial_rng = [&](const PlanNode& pn, int t) {
    if (cfg.seed_mode == InitSeedMode::kDerived) {
      return Rng(cfg.seed_base + pn.bfs_rank +
                 static_cast<std::uint64_t>(t) * 104729ULL);
    }
    Rng r = stream_root;
    advance_rng(r, pn.pre_rank * static_cast<std::uint64_t>(trials) +
                       static_cast<std::uint64_t>(t));
    return r;
  };

  InitPartStats st;
  st.tree_nodes = static_cast<int>(plan.size());

  std::vector<ExecNode> frontier(1);
  frontier[0].plan = 0;
  frontier[0].graph = g;  // copy: the coarse graph is small by construction
  frontier[0].ids.resize(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    frontier[0].ids[static_cast<std::size_t>(v)] = v;
  }

  while (!frontier.empty()) {
    const int d = plan[static_cast<std::size_t>(frontier[0].plan)].depth;
    st.max_depth = std::max(st.max_depth, d);
    const int nn = static_cast<int>(frontier.size());
    const int units = nn * trials;
    const std::string lvl = "/L" + std::to_string(d);

    // Per-node balance windows (identical formulas to the historical
    // serial and mt implementations; see rb_partition.cpp history).
    std::vector<wgt_t> target0(static_cast<std::size_t>(nn));
    std::vector<wgt_t> min0(static_cast<std::size_t>(nn));
    std::vector<wgt_t> max0(static_cast<std::size_t>(nn));
    for (int i = 0; i < nn; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const PlanNode& pn = plan[static_cast<std::size_t>(frontier[ii].plan)];
      const wgt_t total = frontier[ii].graph.total_vertex_weight();
      const wgt_t t0 = static_cast<wgt_t>(
          std::llround(static_cast<double>(total) *
                       static_cast<double>(pn.k0) /
                       static_cast<double>(pn.k)));
      const wgt_t slack = std::max<wgt_t>(
          1, static_cast<wgt_t>(
                 std::floor(static_cast<double>(t0) * eps_level)));
      target0[ii] = t0;
      // Neither side may be refined below the weight its part count needs.
      min0[ii] = std::max<wgt_t>(pn.k0, t0 - slack);
      max0[ii] = std::min<wgt_t>(total - (pn.k - pn.k0), t0 + slack);
    }

    // ---- Phase A: GGGP trials (plus per-trial FM in mt mode).  Units
    // are (node, trial) pairs, independent by construction, drained by
    // work-stealing; results land in per-unit slots so scheduling order
    // cannot leak into the outcome.
    std::vector<std::vector<part_t>> side(static_cast<std::size_t>(units));
    std::vector<wgt_t> cut(static_cast<std::size_t>(units), 0);
    std::vector<std::uint64_t> grow_w(static_cast<std::size_t>(units), 0);
    std::vector<std::uint64_t> fm_a(static_cast<std::size_t>(units), 0);
    std::vector<std::uint64_t> fm_a_seed(static_cast<std::size_t>(units), 0);
    std::vector<std::uint64_t> fm_a_drain(static_cast<std::size_t>(units), 0);
    std::vector<std::uint64_t> seed_tw;  // per-thread seed work (intra-FM)

    auto run_unit = [&](int u, ThreadPool* fm_pool,
                        std::vector<std::uint64_t>* fm_tw) {
      const auto uu = static_cast<std::size_t>(u);
      const int i = u / trials;
      const int t = u % trials;
      ExecNode& nd = frontier[static_cast<std::size_t>(i)];
      if (nd.graph.num_vertices() == 0) return;
      const PlanNode& pn = plan[static_cast<std::size_t>(nd.plan)];
      Rng r = trial_rng(pn, t);
      BisectionResult bis =
          gggp_bisect(nd.graph, target0[static_cast<std::size_t>(i)], r, 1);
      grow_w[uu] = bis.work_units;
      cut[uu] = bis.cut;
      if (cfg.fm_per_trial) {
        // gggp's cut is exact and FM tracks it exactly from there, so
        // neither end of the refinement needs an O(E) cut rescan.
        FmStats fs = fm_refine_bisection(
            nd.graph, bis.side, min0[static_cast<std::size_t>(i)],
            max0[static_cast<std::size_t>(i)], cfg.fm_passes, bis.cut,
            fm_pool, fm_tw);
        fm_a[uu] = fs.work_units;
        fm_a_seed[uu] = fs.seed_work;
        fm_a_drain[uu] = fs.drain_work;
        cut[uu] = fs.cut_after;
      }
      side[uu] = std::move(bis.side);
    };

    // A lone unit (the root, and any level whose siblings collapsed)
    // cannot be split across trials or subtrees — parallelism moves
    // inside the FM instead (parallel boundary seeding).
    const bool intra_a = units == 1 && pool != nullptr && cfg.fm_per_trial;
    if (intra_a) {
      seed_tw.assign(static_cast<std::size_t>(pool->size()), 0);
      run_unit(0, pool, &seed_tw);
    } else if (pool && units > 1) {
      pool->parallel_for_dynamic(
          units, 1, [&](int, std::int64_t b, std::int64_t e) {
            for (std::int64_t u = b; u < e; ++u) {
              run_unit(static_cast<int>(u), nullptr, nullptr);
            }
          });
    } else {
      for (int u = 0; u < units; ++u) run_unit(u, nullptr, nullptr);
    }

    if (cfg.ledger) {
      std::uint64_t tot_g = 0, max_g = 0, tot_u = 0, max_u = 0;
      for (int u = 0; u < units; ++u) {
        const auto uu = static_cast<std::size_t>(u);
        tot_g += grow_w[uu];
        max_g = std::max(max_g, grow_w[uu]);
        const std::uint64_t uw = grow_w[uu] + fm_a[uu];
        tot_u += uw;
        max_u = std::max(max_u, uw);
      }
      if (intra_a) {
        // Root-style level: serial growth, parallel FM seeding, serial
        // FM drain — charge the three legs at their real concurrency.
        if (tot_g) cfg.ledger->charge_serial("initpart/grow" + lvl, tot_g);
        std::uint64_t par_seed = 0;
        for (const auto w : seed_tw) par_seed += w;
        if (par_seed) {
          cfg.ledger->charge_mt_pass("initpart/fm-seed" + lvl, seed_tw);
        }
        const std::uint64_t resid = fm_a[0] - par_seed;
        if (resid) {
          cfg.ledger->charge_serial("initpart/fm-drain" + lvl, resid);
        }
      } else if (cfg.fm_per_trial) {
        if (tot_u) {
          cfg.ledger->charge_mt_dynamic_pass("initpart/trials" + lvl, tot_u,
                                             max_u, model_threads);
        }
      } else if (tot_g) {
        if (units == 1) {
          cfg.ledger->charge_serial("initpart/grow" + lvl, tot_g);
        } else {
          cfg.ledger->charge_mt_dynamic_pass("initpart/grow" + lvl, tot_g,
                                             max_g, model_threads);
        }
      }
    }

    // ---- Winner per node: (cut, trial-id) minimum, equivalent to the
    // serial first-strictly-better scan regardless of execution order.
    std::vector<int> win(static_cast<std::size_t>(nn), 0);
    for (int i = 0; i < nn; ++i) {
      const auto base = static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(trials);
      std::vector<wgt_t> cuts(cut.begin() + static_cast<std::ptrdiff_t>(base),
                              cut.begin() +
                                  static_cast<std::ptrdiff_t>(base + trials));
      win[static_cast<std::size_t>(i)] = initpart_select_winner(cuts);
    }
    if (d == 0) st.root_winner_trial = win[0];

    // ---- Phase B (Metis semantics only): one FM polish per node on the
    // winning growth.
    std::vector<std::uint64_t> fm_b(static_cast<std::size_t>(nn), 0);
    std::vector<std::uint64_t> fm_b_seed(static_cast<std::size_t>(nn), 0);
    std::vector<std::uint64_t> fm_b_drain(static_cast<std::size_t>(nn), 0);
    if (!cfg.fm_per_trial) {
      auto run_fm = [&](int i, ThreadPool* fm_pool,
                        std::vector<std::uint64_t>* fm_tw) {
        const auto ii = static_cast<std::size_t>(i);
        ExecNode& nd = frontier[ii];
        if (nd.graph.num_vertices() == 0) return;
        const auto w =
            ii * static_cast<std::size_t>(trials) +
            static_cast<std::size_t>(win[ii]);
        FmStats fs = fm_refine_bisection(nd.graph, side[w], min0[ii],
                                         max0[ii], cfg.fm_passes, cut[w],
                                         fm_pool, fm_tw);
        fm_b[ii] = fs.work_units;
        fm_b_seed[ii] = fs.seed_work;
        fm_b_drain[ii] = fs.drain_work;
      };
      const bool intra_b = nn == 1 && pool != nullptr;
      if (intra_b) {
        seed_tw.assign(static_cast<std::size_t>(pool->size()), 0);
        run_fm(0, pool, &seed_tw);
      } else if (pool && nn > 1) {
        pool->parallel_for_dynamic(
            nn, 1, [&](int, std::int64_t b, std::int64_t e) {
              for (std::int64_t i = b; i < e; ++i) {
                run_fm(static_cast<int>(i), nullptr, nullptr);
              }
            });
      } else {
        for (int i = 0; i < nn; ++i) run_fm(i, nullptr, nullptr);
      }
      if (cfg.ledger) {
        if (intra_b) {
          std::uint64_t par_seed = 0;
          for (const auto w : seed_tw) par_seed += w;
          if (par_seed) {
            cfg.ledger->charge_mt_pass("initpart/fm-seed" + lvl, seed_tw);
          }
          const std::uint64_t resid = fm_b[0] - par_seed;
          if (resid) {
            cfg.ledger->charge_serial("initpart/fm-drain" + lvl, resid);
          }
        } else {
          std::uint64_t tot = 0, mx = 0;
          for (const auto w : fm_b) {
            tot += w;
            mx = std::max(mx, w);
          }
          if (tot) {
            cfg.ledger->charge_mt_dynamic_pass("initpart/fm" + lvl, tot, mx,
                                               model_threads);
          }
        }
      }
    }

    for (int u = 0; u < units; ++u) {
      const auto uu = static_cast<std::size_t>(u);
      st.growth_work += grow_w[uu];
      st.fm_seed_work += fm_a_seed[uu];
      st.fm_drain_work += fm_a_drain[uu];
      st.work_units += grow_w[uu] + fm_a[uu];
    }
    for (int i = 0; i < nn; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      st.fm_seed_work += fm_b_seed[ii];
      st.fm_drain_work += fm_b_drain[ii];
      st.work_units += fm_b[ii];
    }

    // ---- Split phase: cut each node's graph along the winning side and
    // hand the halves to the next level (or label k==1 leaves).  Subtrees
    // are disjoint, so leaf writes into p.where never collide.
    std::vector<ExecNode> next(static_cast<std::size_t>(2 * nn));
    std::vector<char> present(static_cast<std::size_t>(2 * nn), 0);
    auto run_split = [&](int i) {
      const auto ii = static_cast<std::size_t>(i);
      ExecNode& nd = frontier[ii];
      if (nd.graph.num_vertices() == 0) return;
      const PlanNode& pn = plan[static_cast<std::size_t>(nd.plan)];
      const auto& s = side[ii * static_cast<std::size_t>(trials) +
                           static_cast<std::size_t>(win[ii])];
      std::vector<char> mask0(s.size()), mask1(s.size());
      for (std::size_t v = 0; v < s.size(); ++v) {
        mask0[v] = (s[v] == 0);
        mask1[v] = (s[v] == 1);
      }
      std::vector<vid_t> map0, map1;
      CsrGraph g0 = induced_subgraph(nd.graph, mask0, &map0);
      CsrGraph g1 = induced_subgraph(nd.graph, mask1, &map1);
      std::vector<vid_t> ids0(static_cast<std::size_t>(g0.num_vertices()));
      std::vector<vid_t> ids1(static_cast<std::size_t>(g1.num_vertices()));
      for (std::size_t v = 0; v < s.size(); ++v) {
        if (map0[v] != kInvalidVid) {
          ids0[static_cast<std::size_t>(map0[v])] = nd.ids[v];
        }
        if (map1[v] != kInvalidVid) {
          ids1[static_cast<std::size_t>(map1[v])] = nd.ids[v];
        }
      }
      if (pn.left < 0) {
        for (const vid_t id : ids0) {
          p.where[static_cast<std::size_t>(id)] = pn.first_part;
        }
      } else if (g0.num_vertices() > 0) {
        next[ii * 2] = ExecNode{pn.left, std::move(g0), std::move(ids0)};
        present[ii * 2] = 1;
      }
      if (pn.right < 0) {
        for (const vid_t id : ids1) {
          p.where[static_cast<std::size_t>(id)] =
              static_cast<part_t>(pn.first_part + pn.k0);
        }
      } else if (g1.num_vertices() > 0) {
        next[ii * 2 + 1] = ExecNode{pn.right, std::move(g1), std::move(ids1)};
        present[ii * 2 + 1] = 1;
      }
    };
    if (pool && nn > 1) {
      pool->parallel_for_dynamic(
          nn, 1, [&](int, std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
              run_split(static_cast<int>(i));
            }
          });
    } else {
      for (int i = 0; i < nn; ++i) run_split(i);
    }

    std::vector<ExecNode> compacted;
    compacted.reserve(static_cast<std::size_t>(2 * nn));
    for (std::size_t j = 0; j < next.size(); ++j) {
      if (present[j]) compacted.push_back(std::move(next[j]));
    }
    frontier = std::move(compacted);
  }

  // Stream mode consumed `trials` nominal draws per internal node; leave
  // the caller's RNG exactly past them, as the old recursion did.
  if (cfg.seed_mode == InitSeedMode::kStream && stream_rng) {
    advance_rng(*stream_rng,
                static_cast<std::uint64_t>(plan.size()) *
                    static_cast<std::uint64_t>(trials));
  }
  if (stats) *stats = st;
  return p;
}

}  // namespace gp
