// Shared parallel initial-partitioning engine (DESIGN.md §3.7).
//
// One recursive-bisection tree implementation serves all four systems:
// the serial Metis baseline and the ParMetis ranks consume it in
// stream-seed mode (bit-compatible with the historical serial recursion),
// while mt-metis and GP-metis consume it in derived-seed mode, where every
// (subtree, trial) pair owns a hash-derived RNG.  Either way the result is
// a pure function of (graph, config, seed): GGGP trials and disjoint
// subtrees execute as independent pool tasks, the winner of each bisection
// is the (cut, trial-id) minimum, and single-bisection levels fall back to
// intra-FM parallelism (parallel boundary seeding), so partitions are
// byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "model/machine_model.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gp {

/// How per-trial RNGs are derived.
enum class InitSeedMode {
  /// Serial-compatible: trials consume consecutive draws of the caller's
  /// RNG stream in depth-first preorder over the bisection tree, exactly
  /// as the historical recursive implementation did.  The caller's RNG is
  /// advanced past the whole tree's draws on return.
  kStream,
  /// Thread-count-independent hashing: trial t of the bisection with
  /// static BFS rank b seeds Rng(seed_base + b + t * 104729).  This is
  /// what mt-metis-style drivers use; at trials == 1 it reproduces the
  /// historical single-thread mt-metis seed sequence.
  kDerived,
};

struct InitPartConfig {
  part_t k = 2;
  double eps = 0.03;   ///< final k-way imbalance budget (split per level)
  int trials = 4;      ///< independent GGGP growths per bisection
  int fm_passes = 8;
  InitSeedMode seed_mode = InitSeedMode::kStream;
  /// false: Metis semantics — the best *growth* wins, then one FM polishes
  /// it.  true: mt-metis semantics — every trial is growth + FM and the
  /// best *refined* cut wins.
  bool fm_per_trial = false;
  /// kDerived only: base value of the per-trial seed hash.
  std::uint64_t seed_base = 0;
  /// Execution pool; nullptr (or size 1) runs serially with identical
  /// results.
  ThreadPool* pool = nullptr;
  /// When set, the engine charges its passes here under "initpart/..."
  /// labels (growth/FM phases per tree level).  Null = caller meters via
  /// InitPartStats.
  CostLedger* ledger = nullptr;
  /// Modeled thread count for ledger charges (0 = pool size, or 1).
  int model_threads = 0;
};

struct InitPartStats {
  std::uint64_t work_units = 0;     ///< growth + FM work over all trials
  std::uint64_t growth_work = 0;    ///< GGGP portion of work_units
  std::uint64_t fm_seed_work = 0;   ///< FM boundary-seeding portion
  std::uint64_t fm_drain_work = 0;  ///< FM heap-drain portion
  int tree_nodes = 0;               ///< internal bisection nodes executed
  int max_depth = 0;                ///< deepest bisection level
  int root_winner_trial = -1;       ///< winning trial index at the root
};

/// Index of the winning trial: minimum cut, ties broken by the lowest
/// trial id — the rule that makes any-order parallel trials reproduce the
/// serial first-strictly-better scan.
[[nodiscard]] int initpart_select_winner(const std::vector<wgt_t>& cuts);

/// Partitions g into cfg.k parts by parallel recursive bisection.
/// `stream_rng` is required in kStream mode (and advanced past the tree's
/// nominal draw count); ignored in kDerived mode.
[[nodiscard]] Partition initpart_engine(const CsrGraph& g,
                                        const InitPartConfig& cfg,
                                        Rng* stream_rng,
                                        InitPartStats* stats = nullptr);

}  // namespace gp
