#include "serial/jostle_partitioner.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "core/matching.hpp"
#include "serial/hem_matching.hpp"
#include "serial/kway_refine.hpp"
#include "serial/rb_partition.hpp"
#include "util/timer.hpp"

namespace gp {

namespace {

/// One combined balance+refine level pass, Jostle style: (a) greedy
/// refinement that may unbalance, (b) balancing that evicts the cheapest
/// vertices from overweight parts.  Returns metered work.
std::uint64_t jostle_refine_level(const CsrGraph& g, Partition& p, double eps,
                                  int passes) {
  std::uint64_t work = 0;
  const wgt_t total = g.total_vertex_weight();
  const wgt_t max_pw = max_part_weight(total, p.k, eps);
  auto pw = partition_weights(g, p);
  std::vector<wgt_t> conn(static_cast<std::size_t>(p.k), 0);
  std::vector<part_t> parts;

  for (int pass = 0; pass < passes; ++pass) {
    // --- (a) greedy refinement, balance-blind ---
    vid_t moves = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      work += static_cast<std::uint64_t>(g.degree(v)) + 1;
      const part_t pv = p.where[static_cast<std::size_t>(v)];
      const wgt_t internal = vertex_connectivity(g, p.where, v, conn, parts);
      part_t best = kInvalidPart;
      wgt_t best_conn = internal;
      for (const part_t q : parts) {
        if (conn[static_cast<std::size_t>(q)] > best_conn) {
          best_conn = conn[static_cast<std::size_t>(q)];
          best = q;
        }
      }
      for (const part_t q : parts) conn[static_cast<std::size_t>(q)] = 0;
      if (best == kInvalidPart) continue;
      // Accepted even if it unbalances — but never empty the source.
      const wgt_t vw = g.vertex_weight(v);
      if (pw[static_cast<std::size_t>(pv)] - vw < 1) continue;
      pw[static_cast<std::size_t>(pv)] -= vw;
      pw[static_cast<std::size_t>(best)] += vw;
      p.where[static_cast<std::size_t>(v)] = best;
      ++moves;
    }

    // --- (b) balancing: drain overweight parts by cheapest evictions ---
    for (part_t q = 0; q < p.k; ++q) {
      while (pw[static_cast<std::size_t>(q)] > max_pw) {
        // Cheapest boundary vertex of q: the one whose best external
        // destination loses the least gain (may be negative).
        vid_t best_v = kInvalidVid;
        part_t best_dst = kInvalidPart;
        wgt_t best_loss = std::numeric_limits<wgt_t>::max();
        for (vid_t v = 0; v < g.num_vertices(); ++v) {
          if (p.where[static_cast<std::size_t>(v)] != q) continue;
          work += static_cast<std::uint64_t>(g.degree(v)) + 1;
          const wgt_t internal =
              vertex_connectivity(g, p.where, v, conn, parts);
          for (const part_t d : parts) {
            const bool fits = pw[static_cast<std::size_t>(d)] +
                                  g.vertex_weight(v) <=
                              max_pw;
            const wgt_t loss = internal - conn[static_cast<std::size_t>(d)];
            if (fits && loss < best_loss) {
              best_loss = loss;
              best_v = v;
              best_dst = d;
            }
          }
          for (const part_t d : parts) conn[static_cast<std::size_t>(d)] = 0;
        }
        if (best_v == kInvalidVid) break;  // nowhere to evict to
        const wgt_t vw = g.vertex_weight(best_v);
        pw[static_cast<std::size_t>(q)] -= vw;
        pw[static_cast<std::size_t>(best_dst)] += vw;
        p.where[static_cast<std::size_t>(best_v)] = best_dst;
      }
    }
    if (moves == 0) break;
  }
  return work;
}

}  // namespace

PartitionResult JostlePartitioner::run(const CsrGraph& g,
                                       const PartitionOptions& opts) const {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  Rng rng(opts.seed);

  struct Level {
    CsrGraph graph;
    std::vector<vid_t> cmap;
  };
  std::vector<Level> levels;

  // --- coarsen down to exactly k vertices (Jostle's rule) ---
  const CsrGraph* cur = &g;
  while (cur->num_vertices() > opts.k) {
    SerialMatchStats mstats;
    MatchResult m = hem_match_serial(*cur, rng, &mstats);
    if (m.n_coarse >= cur->num_vertices()) break;  // fully stalled
    // Do not overshoot below k: if the matching would collapse past k,
    // self-match enough pairs (highest-id leaders first) to stop at k.
    if (m.n_coarse < opts.k) {
      vid_t excess = opts.k - m.n_coarse;
      for (vid_t v = cur->num_vertices(); v-- > 0 && excess > 0;) {
        const vid_t mate = m.match[static_cast<std::size_t>(v)];
        if (mate != v) {
          m.match[static_cast<std::size_t>(v)] = v;
          m.match[static_cast<std::size_t>(mate)] = mate;
          --excess;
        }
      }
      auto [cmap, nc] = build_cmap_serial(m.match);
      m.cmap = std::move(cmap);
      m.n_coarse = nc;
    }
    res.ledger.charge_serial(
        "coarsen/match/L" + std::to_string(levels.size()),
        mstats.work_units);
    CsrGraph coarse = contract_serial(*cur, m.match, m.cmap, m.n_coarse);
    res.ledger.charge_serial(
        "coarsen/contract/L" + std::to_string(levels.size()),
        static_cast<std::uint64_t>(cur->num_arcs() + coarse.num_arcs()));
    levels.push_back({std::move(coarse), std::move(m.cmap)});
    cur = &levels.back().graph;
  }
  res.coarsen_levels = static_cast<int>(levels.size());
  res.coarsest_vertices = cur->num_vertices();

  // --- trivial initial partitioning (or RB fallback when matching
  // stalled above k — star-like graphs cannot coarsen to k) ---
  Partition p;
  p.k = opts.k;
  if (cur->num_vertices() == opts.k) {
    p.where.resize(static_cast<std::size_t>(opts.k));
    for (part_t i = 0; i < opts.k; ++i) p.where[static_cast<std::size_t>(i)] = i;
    res.ledger.charge_serial("initpart/trivial",
                             static_cast<std::uint64_t>(opts.k));
  } else {
    RbStats st;
    p = recursive_bisection(*cur, opts.k, opts.eps, rng, &st);
    res.ledger.charge_serial("initpart/rb-fallback", st.work_units);
  }

  // --- uncoarsening with combined balance + refinement ---
  for (std::size_t i = levels.size(); i-- > 0;) {
    const CsrGraph& fine = (i == 0) ? g : levels[i - 1].graph;
    p.where = project_partition(levels[i].cmap, p.where);
    const auto work =
        jostle_refine_level(fine, p, opts.eps, opts.refine_passes);
    res.ledger.charge_serial("uncoarsen/refine/L" + std::to_string(i), work);
  }

  // Pathological inputs (power-law hubs heavier than a part's budget)
  // can strand parts; repair before reporting.
  repair_empty_parts(g, p);

  res.partition = std::move(p);
  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  res.modeled_seconds = res.ledger.total_seconds();
  res.phases.coarsen = res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen = res.ledger.seconds_with_prefix("uncoarsen/");
  res.wall_seconds = wall.seconds();
  return res;
}

std::unique_ptr<Partitioner> make_jostle_partitioner() {
  return std::make_unique<JostlePartitioner>();
}

}  // namespace gp
