// Jostle-style serial multilevel partitioner — the third classic system
// the paper's background describes (Walshaw & Cross):
//   * coarsening continues until the graph has exactly k vertices
//     ("Jostle terminates the matching when the number of vertices in
//     the coarse graph is equal to the number of required partitions"),
//   * the initial partitioning is therefore trivial (vertex i = part i),
//   * uncoarsening uses a combined balancing + refinement scheme: a
//     greedy step accepts best-gain moves even when they unbalance the
//     partitions, and a following balancing step repairs the weights by
//     evicting the cheapest vertices from overweight parts.
//
// Not part of the paper's evaluation (it compares against Metis-family
// systems only) — provided for completeness of the background's system
// inventory and as a quality cross-check in tests.
#pragma once

#include "core/partitioner.hpp"

namespace gp {

class JostlePartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "jostle"; }
  [[nodiscard]] PartitionResult run(const CsrGraph& g,
                                    const PartitionOptions& opts) const override;
};

std::unique_ptr<Partitioner> make_jostle_partitioner();

}  // namespace gp
