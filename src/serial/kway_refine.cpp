#include "serial/kway_refine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gp {

wgt_t vertex_connectivity(const CsrGraph& g, const std::vector<part_t>& where,
                          vid_t v, std::vector<wgt_t>& conn_scratch,
                          std::vector<part_t>& conn_parts) {
  // conn_scratch must be sized k and zeroed between calls for the parts in
  // conn_parts — we reset only the touched entries to stay O(degree).
  conn_parts.clear();
  const auto nbrs = g.neighbors(v);
  const auto wts = g.neighbor_weights(v);
  const part_t pv = where[static_cast<std::size_t>(v)];
  wgt_t internal = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const part_t pu = where[static_cast<std::size_t>(nbrs[i])];
    if (pu == pv) {
      internal += wts[i];
      continue;
    }
    if (conn_scratch[static_cast<std::size_t>(pu)] == 0) {
      conn_parts.push_back(pu);
    }
    conn_scratch[static_cast<std::size_t>(pu)] += wts[i];
  }
  return internal;
}

namespace {

/// Resolves the caller-supplied cache/workspace: when no ready cache is
/// handed in, the workspace's fallback cache is built against the current
/// assignment (charged to *work).
GainCache* resolve_cache(const CsrGraph& g, const Partition& p,
                         GainCache* cache, KwayWorkspace* ws,
                         std::uint64_t* work) {
  if (cache != nullptr) return cache;
  GainCache* gc = &ws->cache;
  gc->build(g, p.where, p.k);
  *work += static_cast<std::uint64_t>(g.num_arcs()) +
           static_cast<std::uint64_t>(g.num_vertices());
  return gc;
}

void fill_part_weights(const CsrGraph& g, const Partition& p,
                       std::vector<wgt_t>& pw) {
  pw.assign(static_cast<std::size_t>(p.k), 0);
  const vid_t n = g.num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    pw[static_cast<std::size_t>(p.where[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }
}

}  // namespace

KwayRefineStats kway_refine_serial(const CsrGraph& g, Partition& p,
                                   double eps, int max_passes,
                                   GainCache* cache, KwayWorkspace* ws) {
  KwayRefineStats stats;
  KwayWorkspace local_ws;
  if (ws == nullptr) ws = &local_ws;
  GainCache* gc = resolve_cache(g, p, cache, ws, &stats.work_units);
  stats.cut_before = gc->cut();
  const vid_t n = g.num_vertices();
  const wgt_t total = g.total_vertex_weight();
  const wgt_t max_pw = max_part_weight(total, p.k, eps);
  const wgt_t min_pw = min_part_weight(total, p.k, eps);

  fill_part_weights(g, p, ws->pw);
  stats.work_units += static_cast<std::uint64_t>(n);
  wgt_t* pw = ws->pw.data();

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    vid_t moves_this_pass = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (!gc->boundary(v)) {
        ++stats.work_units;
        continue;
      }
      const part_t pv = p.where[static_cast<std::size_t>(v)];
      const wgt_t vw = g.vertex_weight(v);
      const bool src_ok = pw[static_cast<std::size_t>(pv)] - vw >= min_pw;
      // Strict gain only (threshold = internal); ties keep the vertex put.
      const BestDest bd = gc->best_destination(
          g, p.where, v, pv, gc->internal(v), [&](part_t q) {
            return src_ok && pw[static_cast<std::size_t>(q)] + vw <= max_pw;
          });
      stats.work_units +=
          static_cast<std::uint64_t>(gc->conn_count(v)) + 1 + bd.tie_scan;
      if (bd.part == kInvalidPart) continue;
      pw[static_cast<std::size_t>(pv)] -= vw;
      pw[static_cast<std::size_t>(bd.part)] += vw;
      stats.work_units += gc->apply_move(g, p.where, v, pv, bd.part);
      p.where[static_cast<std::size_t>(v)] = bd.part;
      ++moves_this_pass;
    }
    stats.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  stats.cut_after = gc->cut();
  return stats;
}

KwayRefineStats kway_refine_pq(const CsrGraph& g, Partition& p, double eps,
                               int max_passes, GainCache* cache,
                               KwayWorkspace* ws) {
  KwayRefineStats stats;
  KwayWorkspace local_ws;
  if (ws == nullptr) ws = &local_ws;
  GainCache* gc = resolve_cache(g, p, cache, ws, &stats.work_units);
  stats.cut_before = gc->cut();
  const vid_t n = g.num_vertices();
  const wgt_t total = g.total_vertex_weight();
  const wgt_t max_pw = max_part_weight(total, p.k, eps);
  const wgt_t min_pw = min_part_weight(total, p.k, eps);

  fill_part_weights(g, p, ws->pw);
  stats.work_units += static_cast<std::uint64_t>(n);
  wgt_t* pw = ws->pw.data();

  // Best admissible move of v given the current state; gain may be
  // non-positive (callers filter).
  auto best_move = [&](vid_t v) -> std::pair<part_t, wgt_t> {
    const part_t pv = p.where[static_cast<std::size_t>(v)];
    const wgt_t vw = g.vertex_weight(v);
    const bool src_ok = pw[static_cast<std::size_t>(pv)] - vw >= min_pw;
    const BestDest bd = gc->best_destination(
        g, p.where, v, pv, std::numeric_limits<wgt_t>::min(), [&](part_t q) {
          return src_ok && pw[static_cast<std::size_t>(q)] + vw <= max_pw;
        });
    stats.work_units +=
        static_cast<std::uint64_t>(gc->conn_count(v)) + 1 + bd.tie_scan;
    if (bd.part == kInvalidPart) {
      return {kInvalidPart, std::numeric_limits<wgt_t>::min()};
    }
    return {bd.part, bd.conn - gc->internal(v)};
  };

  auto& moved = ws->moved;
  moved.assign(static_cast<std::size_t>(n), 0);
  // (gain, vertex) max-heap with lazy revalidation at pop time; the
  // backing vector lives in the workspace, heap ops mirror what
  // std::priority_queue does internally.
  auto& heap = ws->heap;
  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    std::fill(moved.begin(), moved.end(), 0);
    heap.clear();
    for (vid_t v = 0; v < n; ++v) {
      if (!gc->boundary(v)) {
        ++stats.work_units;
        continue;
      }
      const auto [dst, gain] = best_move(v);
      if (dst != kInvalidPart && gain > 0) {
        heap.emplace_back(gain, v);
        std::push_heap(heap.begin(), heap.end());
      }
    }
    vid_t moves_this_pass = 0;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end());
      const auto [gain_at_push, v] = heap.back();
      heap.pop_back();
      if (moved[static_cast<std::size_t>(v)]) continue;
      // Revalidate: the neighbourhood may have changed since the push.
      const auto [dst, gain] = best_move(v);
      if (dst == kInvalidPart || gain <= 0) continue;
      if (gain != gain_at_push) {
        heap.emplace_back(gain, v);  // stale entry: reinsert with current gain
        std::push_heap(heap.begin(), heap.end());
        continue;
      }
      const part_t pv = p.where[static_cast<std::size_t>(v)];
      const wgt_t vw = g.vertex_weight(v);
      pw[static_cast<std::size_t>(pv)] -= vw;
      pw[static_cast<std::size_t>(dst)] += vw;
      stats.work_units += gc->apply_move(g, p.where, v, pv, dst);
      p.where[static_cast<std::size_t>(v)] = dst;
      moved[static_cast<std::size_t>(v)] = 1;
      ++moves_this_pass;
      // Refresh the neighbours' queue entries.
      for (const vid_t u : g.neighbors(v)) {
        if (moved[static_cast<std::size_t>(u)]) continue;
        if (!gc->boundary(u)) {
          ++stats.work_units;
          continue;
        }
        const auto [du, gu] = best_move(u);
        if (du != kInvalidPart && gu > 0) {
          heap.emplace_back(gu, u);
          std::push_heap(heap.begin(), heap.end());
        }
      }
    }
    stats.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  stats.cut_after = gc->cut();
  return stats;
}

}  // namespace gp
