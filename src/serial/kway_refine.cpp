#include "serial/kway_refine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace gp {

wgt_t vertex_connectivity(const CsrGraph& g, const std::vector<part_t>& where,
                          vid_t v, std::vector<wgt_t>& conn_scratch,
                          std::vector<part_t>& conn_parts) {
  // conn_scratch must be sized k and zeroed between calls for the parts in
  // conn_parts — we reset only the touched entries to stay O(degree).
  conn_parts.clear();
  const auto nbrs = g.neighbors(v);
  const auto wts = g.neighbor_weights(v);
  const part_t pv = where[static_cast<std::size_t>(v)];
  wgt_t internal = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const part_t pu = where[static_cast<std::size_t>(nbrs[i])];
    if (pu == pv) {
      internal += wts[i];
      continue;
    }
    if (conn_scratch[static_cast<std::size_t>(pu)] == 0) {
      conn_parts.push_back(pu);
    }
    conn_scratch[static_cast<std::size_t>(pu)] += wts[i];
  }
  return internal;
}

KwayRefineStats kway_refine_serial(const CsrGraph& g, Partition& p,
                                   double eps, int max_passes) {
  KwayRefineStats stats;
  stats.cut_before = edge_cut(g, p);
  const vid_t n = g.num_vertices();
  const wgt_t total = g.total_vertex_weight();
  const wgt_t max_pw = max_part_weight(total, p.k, eps);
  const wgt_t min_pw = min_part_weight(total, p.k, eps);

  auto pw = partition_weights(g, p);
  std::vector<wgt_t> conn(static_cast<std::size_t>(p.k), 0);
  std::vector<part_t> parts;
  parts.reserve(16);

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    vid_t moves_this_pass = 0;
    for (vid_t v = 0; v < n; ++v) {
      stats.work_units += static_cast<std::uint64_t>(g.degree(v)) + 1;
      const part_t pv = p.where[static_cast<std::size_t>(v)];
      const wgt_t internal = vertex_connectivity(g, p.where, v, conn, parts);
      if (parts.empty()) continue;  // not a boundary vertex

      // Pick the best destination among adjacent parts.
      part_t best = kInvalidPart;
      wgt_t best_conn = internal;  // require gain > 0 (strict) or tie-break
      const wgt_t vw = g.vertex_weight(v);
      for (const part_t q : parts) {
        const wgt_t cq = conn[static_cast<std::size_t>(q)];
        const bool fits = pw[static_cast<std::size_t>(q)] + vw <= max_pw &&
                          pw[static_cast<std::size_t>(pv)] - vw >= min_pw;
        if (!fits) continue;
        if (cq > best_conn) {  // strict gain only; ties keep the vertex put
          best_conn = cq;
          best = q;
        }
      }
      // Reset scratch for the next vertex.
      for (const part_t q : parts) conn[static_cast<std::size_t>(q)] = 0;

      if (best == kInvalidPart) continue;
      pw[static_cast<std::size_t>(pv)] -= vw;
      pw[static_cast<std::size_t>(best)] += vw;
      p.where[static_cast<std::size_t>(v)] = best;
      ++moves_this_pass;
    }
    stats.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  stats.cut_after = edge_cut(g, p);
  stats.work_units +=
      2 * static_cast<std::uint64_t>(g.num_arcs());  // the two cut scans
  return stats;
}

KwayRefineStats kway_refine_pq(const CsrGraph& g, Partition& p, double eps,
                               int max_passes) {
  KwayRefineStats stats;
  stats.cut_before = edge_cut(g, p);
  const vid_t n = g.num_vertices();
  const wgt_t total = g.total_vertex_weight();
  const wgt_t max_pw = max_part_weight(total, p.k, eps);
  const wgt_t min_pw = min_part_weight(total, p.k, eps);

  auto pw = partition_weights(g, p);
  std::vector<wgt_t> conn(static_cast<std::size_t>(p.k), 0);
  std::vector<part_t> parts;
  parts.reserve(16);

  // Best admissible move of v given the current state; gain may be
  // non-positive (callers filter).
  auto best_move = [&](vid_t v) -> std::pair<part_t, wgt_t> {
    const part_t pv = p.where[static_cast<std::size_t>(v)];
    const wgt_t internal = vertex_connectivity(g, p.where, v, conn, parts);
    const wgt_t vw = g.vertex_weight(v);
    part_t best = kInvalidPart;
    wgt_t best_gain = std::numeric_limits<wgt_t>::min();
    for (const part_t q : parts) {
      const bool fits = pw[static_cast<std::size_t>(q)] + vw <= max_pw &&
                        pw[static_cast<std::size_t>(pv)] - vw >= min_pw;
      if (!fits) continue;
      const wgt_t gain = conn[static_cast<std::size_t>(q)] - internal;
      if (gain > best_gain) {
        best_gain = gain;
        best = q;
      }
    }
    for (const part_t q : parts) conn[static_cast<std::size_t>(q)] = 0;
    return {best, best_gain};
  };

  std::vector<char> moved(static_cast<std::size_t>(n));
  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    std::fill(moved.begin(), moved.end(), 0);
    // (gain, vertex) max-heap with lazy revalidation at pop time.
    std::priority_queue<std::pair<wgt_t, vid_t>> pq;
    for (vid_t v = 0; v < n; ++v) {
      stats.work_units += static_cast<std::uint64_t>(g.degree(v)) + 1;
      const auto [dst, gain] = best_move(v);
      if (dst != kInvalidPart && gain > 0) pq.emplace(gain, v);
    }
    vid_t moves_this_pass = 0;
    while (!pq.empty()) {
      const auto [gain_at_push, v] = pq.top();
      pq.pop();
      if (moved[static_cast<std::size_t>(v)]) continue;
      // Revalidate: the neighbourhood may have changed since the push.
      stats.work_units += static_cast<std::uint64_t>(g.degree(v)) + 1;
      const auto [dst, gain] = best_move(v);
      if (dst == kInvalidPart || gain <= 0) continue;
      if (gain != gain_at_push) {
        pq.emplace(gain, v);  // stale entry: reinsert with current gain
        continue;
      }
      const part_t pv = p.where[static_cast<std::size_t>(v)];
      const wgt_t vw = g.vertex_weight(v);
      pw[static_cast<std::size_t>(pv)] -= vw;
      pw[static_cast<std::size_t>(dst)] += vw;
      p.where[static_cast<std::size_t>(v)] = dst;
      moved[static_cast<std::size_t>(v)] = 1;
      ++moves_this_pass;
      // Refresh the neighbours' queue entries.
      for (const vid_t u : g.neighbors(v)) {
        if (moved[static_cast<std::size_t>(u)]) continue;
        stats.work_units += static_cast<std::uint64_t>(g.degree(u)) + 1;
        const auto [du, gu] = best_move(u);
        if (du != kInvalidPart && gu > 0) pq.emplace(gu, u);
      }
    }
    stats.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  stats.cut_after = edge_cut(g, p);
  stats.work_units += 2 * static_cast<std::uint64_t>(g.num_arcs());
  return stats;
}

}  // namespace gp
