// Greedy k-way refinement (Metis-style): boundary vertices move to the
// adjacent part with the best gain, subject to the balance constraint.
// Used by the serial driver's uncoarsening phase and as the quality
// reference for the parallel refiners.
//
// Both variants are fed from a GainCache (DESIGN.md §3.6): passes touch
// only boundary vertices, gains come from the sparse connectivity table,
// and each committed move updates the cache by an O(deg) delta instead of
// the next pass rescanning whole neighbourhoods.  Moves are byte-identical
// to the historical full-scan code.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/csr_graph.hpp"
#include "core/gain_cache.hpp"
#include "core/partition.hpp"
#include "util/types.hpp"

namespace gp {

struct KwayRefineStats {
  std::uint64_t work_units = 0;
  int passes = 0;
  vid_t moves = 0;
  wgt_t cut_before = 0;
  wgt_t cut_after = 0;
};

/// Reusable per-refiner scratch: the serial driver allocates one of these
/// per run and passes it to every level, so the per-pass part-weight /
/// moved-flag / heap vectors are hoisted out of the refiner (same pattern
/// as the thread_local kernel scratch in the GPU refiner).  `cache` is
/// the fallback gain cache built when the caller does not own one.
struct KwayWorkspace {
  GainCache cache;
  std::vector<wgt_t> pw;
  std::vector<char> moved;
  std::vector<std::pair<wgt_t, vid_t>> heap;
};

/// In-place greedy k-way refinement.  Each pass scans boundary vertices;
/// a vertex moves to the neighbouring part maximising (external(best) -
/// internal) if that gain is positive (or zero while improving balance),
/// the destination stays under max_pw, and the source stays above min_pw.
/// Terminates early when a pass commits no move.
///
/// `cache`, when non-null, must be consistent with p.where on entry; it
/// is kept consistent through every committed move so callers can carry
/// it across uncoarsening levels.  When null, a cache is built locally
/// (and the build is charged to work_units).
KwayRefineStats kway_refine_serial(const CsrGraph& g, Partition& p,
                                   double eps, int max_passes,
                                   GainCache* cache = nullptr,
                                   KwayWorkspace* ws = nullptr);

/// Priority-queue variant of the greedy k-way refinement: boundary
/// vertices are processed in descending best-gain order (the ordering
/// real Metis uses) instead of vertex-id scan order.  Slightly better
/// cuts for slightly more bookkeeping — `bench/abl_kway_refine`
/// quantifies the trade; the serial driver selects it via
/// PartitionOptions::pq_refinement.  Cache contract as above.
KwayRefineStats kway_refine_pq(const CsrGraph& g, Partition& p, double eps,
                               int max_passes, GainCache* cache = nullptr,
                               KwayWorkspace* ws = nullptr);

/// Per-vertex gain computation used by several refiners: fills `conn`
/// (weight of v's arcs into each part present in its neighbourhood) and
/// returns the internal weight.  `conn_parts` receives the distinct parts.
wgt_t vertex_connectivity(const CsrGraph& g, const std::vector<part_t>& where,
                          vid_t v, std::vector<wgt_t>& conn_scratch,
                          std::vector<part_t>& conn_parts);

}  // namespace gp
