// Greedy k-way refinement (Metis-style): boundary vertices move to the
// adjacent part with the best gain, subject to the balance constraint.
// Used by the serial driver's uncoarsening phase and as the quality
// reference for the parallel refiners.
#pragma once

#include <cstdint>

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "util/types.hpp"

namespace gp {

struct KwayRefineStats {
  std::uint64_t work_units = 0;
  int passes = 0;
  vid_t moves = 0;
  wgt_t cut_before = 0;
  wgt_t cut_after = 0;
};

/// In-place greedy k-way refinement.  Each pass scans boundary vertices;
/// a vertex moves to the neighbouring part maximising (external(best) -
/// internal) if that gain is positive (or zero while improving balance),
/// the destination stays under max_pw, and the source stays above min_pw.
/// Terminates early when a pass commits no move.
KwayRefineStats kway_refine_serial(const CsrGraph& g, Partition& p,
                                   double eps, int max_passes);

/// Priority-queue variant of the greedy k-way refinement: boundary
/// vertices are processed in descending best-gain order (the ordering
/// real Metis uses) instead of vertex-id scan order.  Slightly better
/// cuts for slightly more bookkeeping — `bench/abl_kway_refine`
/// quantifies the trade; the serial driver selects it via
/// PartitionOptions::pq_refinement.
KwayRefineStats kway_refine_pq(const CsrGraph& g, Partition& p, double eps,
                               int max_passes);

/// Per-vertex gain computation used by several refiners: fills `conn`
/// (weight of v's arcs into each part present in its neighbourhood) and
/// returns the internal weight.  `conn_parts` receives the distinct parts.
wgt_t vertex_connectivity(const CsrGraph& g, const std::vector<part_t>& where,
                          vid_t v, std::vector<wgt_t>& conn_scratch,
                          std::vector<part_t>& conn_parts);

}  // namespace gp
