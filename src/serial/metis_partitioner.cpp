#include "serial/metis_partitioner.hpp"

#include <memory>

#include "core/matching.hpp"
#include "serial/hem_matching.hpp"
#include "serial/kway_refine.hpp"
#include "serial/rb_partition.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace gp {

PartitionResult SerialMetisPartitioner::run(const CsrGraph& g,
                                            const PartitionOptions& opts) const {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  Rng rng(opts.seed);

  struct Level {
    CsrGraph graph;          // coarse graph produced at this level
    std::vector<vid_t> cmap; // fine->coarse map that produced it
  };
  std::vector<Level> levels;

  // --- Coarsening ---
  const vid_t target = opts.coarsen_target();
  const CsrGraph* cur = &g;
  res.levels.push_back({g.num_vertices(), g.num_edges()});
  while (cur->num_vertices() > target) {
    SerialMatchStats mstats;
    MatchResult m = hem_match_serial(*cur, rng, &mstats);
    if (static_cast<double>(m.n_coarse) >
        opts.min_shrink * static_cast<double>(cur->num_vertices())) {
      break;  // matching stalled (e.g. star graphs); stop coarsening
    }
    CsrGraph coarse = contract_serial(*cur, m.match, m.cmap, m.n_coarse);
    const auto lvl = static_cast<int>(levels.size());
    res.ledger.charge_serial("coarsen/match/L" + std::to_string(lvl),
                             mstats.work_units);
    res.ledger.charge_serial(
        "coarsen/contract/L" + std::to_string(lvl),
        static_cast<std::uint64_t>(cur->num_arcs() + coarse.num_arcs()));
    levels.push_back({std::move(coarse), std::move(m.cmap)});
    cur = &levels.back().graph;
    res.levels.push_back({cur->num_vertices(), cur->num_edges()});
  }
  res.coarsen_levels = static_cast<int>(levels.size());
  res.coarsest_vertices = cur->num_vertices();

  // --- Initial partitioning ---
  RbStats rb_stats;
  Partition p = recursive_bisection(*cur, opts.k, opts.eps, rng, &rb_stats);
  res.ledger.charge_serial("initpart/rb", rb_stats.work_units);

  // Refine the initial partition in place on the coarsest graph.
  {
    auto st = opts.pq_refinement
                  ? kway_refine_pq(*cur, p, opts.eps, opts.refine_passes)
                  : kway_refine_serial(*cur, p, opts.eps, opts.refine_passes);
    res.ledger.charge_serial("initpart/refine", st.work_units);
  }

  // --- Uncoarsening ---
  for (std::size_t i = levels.size(); i-- > 0;) {
    const CsrGraph& fine = (i == 0) ? g : levels[i - 1].graph;
    p.where = project_partition(levels[i].cmap, p.where);
    res.ledger.charge_serial(
        "uncoarsen/project/L" + std::to_string(i),
        static_cast<std::uint64_t>(fine.num_vertices()));
    auto st = opts.pq_refinement
                  ? kway_refine_pq(fine, p, opts.eps, opts.refine_passes)
                  : kway_refine_serial(fine, p, opts.eps, opts.refine_passes);
    res.ledger.charge_serial("uncoarsen/refine/L" + std::to_string(i),
                             st.work_units);
  }

  res.partition = std::move(p);
  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  res.modeled_seconds = res.ledger.total_seconds();
  res.phases.coarsen = res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen = res.ledger.seconds_with_prefix("uncoarsen/");
  res.wall_seconds = wall.seconds();
  return res;
}

std::unique_ptr<Partitioner> make_serial_partitioner() {
  return std::make_unique<SerialMetisPartitioner>();
}

}  // namespace gp
