#include "serial/metis_partitioner.hpp"

#include <memory>
#include <utility>

#include "core/audit.hpp"
#include "core/matching.hpp"
#include "serial/hem_matching.hpp"
#include "serial/kway_refine.hpp"
#include "serial/rb_partition.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace gp {

namespace {

/// One full multilevel attempt.  Audits (opts.audit_level) run at phase
/// boundaries; a failed contraction audit rolls the level back onto the
/// reference cmap and re-contracts; damage beyond level scope throws
/// AuditError for the run-level ladder.
void serial_attempt(const CsrGraph& g, const PartitionOptions& opts,
                    FaultInjector* injector, const Watchdog& watchdog,
                    PartitionResult& res) {
  Rng rng(opts.seed);
  const AuditLevel audit = opts.audit_level;
  auto run_audit = [&](const AuditFailure& f) {
    ++res.health.audits_run;
    if (!f.ok()) {
      ++res.health.audits_failed;
      res.health.note("audit: " + f.to_string());
    }
    return f.ok();
  };
  bool shed_noted = false;
  auto watchdog_expired = [&]() {
    if (!watchdog.expired()) return false;
    if (!shed_noted) {
      res.health.note("watchdog: time budget exceeded, shedding refinement");
      ++res.health.fallbacks;
      res.health.degraded = true;
    }
    shed_noted = true;
    return true;
  };
  // Gain cache and refiner scratch carried across the whole V-cycle: the
  // cache is built once on the coarsest graph, kept consistent by the
  // refiners' delta updates, and projected (not rebuilt) at each
  // uncoarsening level.  `cache_valid` tracks whether it matches p.where;
  // rollbacks and watchdog sheds invalidate it.
  GainCache gain_cache;
  KwayWorkspace refine_ws;
  bool cache_valid = false;

  /// Refine in place with a pre-refine checkpoint: a failed audit
  /// restores the checkpoint and drops the level's refinement (the
  /// serial refiner is deterministic, so retrying cannot help).
  auto guarded_refine = [&](const CsrGraph& graph, Partition& p,
                            const std::string& label) {
    if (watchdog_expired()) {
      cache_valid = false;  // later levels shed too; stop maintaining it
      return;
    }
    if (!cache_valid) {
      gain_cache.build(graph, p.where, p.k);
      res.ledger.charge_serial(
          label + "/gaincache-build",
          static_cast<std::uint64_t>(graph.num_arcs()) +
              static_cast<std::uint64_t>(graph.num_vertices()));
      cache_valid = true;
    }
    if (audit == AuditLevel::kOff) {
      auto st = opts.pq_refinement
                    ? kway_refine_pq(graph, p, opts.eps, opts.refine_passes,
                                     &gain_cache, &refine_ws)
                    : kway_refine_serial(graph, p, opts.eps,
                                         opts.refine_passes, &gain_cache,
                                         &refine_ws);
      res.ledger.charge_serial(label, st.work_units);
      return;
    }
    const std::vector<part_t> checkpoint = p.where;
    auto st = opts.pq_refinement
                  ? kway_refine_pq(graph, p, opts.eps, opts.refine_passes,
                                   &gain_cache, &refine_ws)
                  : kway_refine_serial(graph, p, opts.eps, opts.refine_passes,
                                       &gain_cache, &refine_ws);
    res.ledger.charge_serial(label, st.work_units);
    bool ok = run_audit(audit_partition(graph, p, opts.k, /*eps=*/0.0,
                                        /*expected_cut=*/-1, audit));
    if (ok && audit == AuditLevel::kParanoid) {
      // Cache-vs-recompute cross-check: the refiner both consumed and
      // delta-updated the cache, so corruption there is as damaging as
      // partition damage and audited at the same boundary.
      ok = run_audit(audit_gain_cache(graph, p.where, gain_cache, audit));
    }
    if (!ok) {
      ++res.health.rollbacks;
      res.health.degraded = true;
      res.health.note("rollback: " + label + " dropped, keeping checkpoint");
      p.where = checkpoint;
      cache_valid = false;  // rebuilt lazily against the restored labels
    }
  };

  struct Level {
    CsrGraph graph;          // coarse graph produced at this level
    std::vector<vid_t> cmap; // fine->coarse map that produced it
  };
  std::vector<Level> levels;
  res.levels.clear();

  // --- Coarsening ---
  const vid_t target = opts.coarsen_target();
  const CsrGraph* cur = &g;
  res.levels.push_back({g.num_vertices(), g.num_edges()});
  while (cur->num_vertices() > target) {
    check_cancelled(opts, "serial/coarsen");
    SerialMatchStats mstats;
    MatchResult m = hem_match_serial(*cur, rng, &mstats);
    if (static_cast<double>(m.n_coarse) >
        opts.min_shrink * static_cast<double>(cur->num_vertices())) {
      break;  // matching stalled (e.g. star graphs); stop coarsening
    }
    // Corruption site: one cmap entry perturbed before contraction.
    std::uint64_t material = 0;
    if (injector && m.n_coarse > 1 && injector->corrupt_cmap(&material)) {
      auto& slot = m.cmap[static_cast<std::size_t>(material % m.cmap.size())];
      slot = static_cast<vid_t>(
          (static_cast<std::uint64_t>(slot) + 1 +
           (material >> 32) % static_cast<std::uint64_t>(m.n_coarse - 1)) %
          static_cast<std::uint64_t>(m.n_coarse));
    }
    const auto lvl = static_cast<int>(levels.size());
    if (audit != AuditLevel::kOff) {
      AuditFailure mf = audit_matching(m.match, audit);
      if (!run_audit(mf)) throw AuditError(std::move(mf));
    }
    res.ledger.charge_serial("coarsen/match/L" + std::to_string(lvl),
                             mstats.work_units);
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (attempt == 1) {
        ++res.health.rollbacks;
        res.health.degraded = true;
        res.health.note("rollback: coarsen/L" + std::to_string(lvl) +
                        " re-contracted from rebuilt cmap");
        auto rebuilt = build_cmap_serial(m.match);
        m.cmap = std::move(rebuilt.first);
        m.n_coarse = rebuilt.second;
      }
      CsrGraph coarse = contract_serial(*cur, m.match, m.cmap, m.n_coarse);
      res.ledger.charge_serial(
          "coarsen/contract/L" + std::to_string(lvl),
          static_cast<std::uint64_t>(cur->num_arcs() + coarse.num_arcs()));
      if (audit != AuditLevel::kOff) {
        AuditFailure f = audit_contraction(*cur, coarse, m.match, m.cmap,
                                           audit);
        if (!run_audit(f)) {
          if (attempt == 1) throw AuditError(std::move(f));
          continue;
        }
      }
      levels.push_back({std::move(coarse), std::move(m.cmap)});
      break;
    }
    cur = &levels.back().graph;
    res.levels.push_back({cur->num_vertices(), cur->num_edges()});
  }
  res.coarsen_levels = static_cast<int>(levels.size());
  res.coarsest_vertices = cur->num_vertices();

  // --- Initial partitioning ---
  check_cancelled(opts, "serial/initpart");
  RbStats rb_stats;
  Partition p = recursive_bisection(*cur, opts.k, opts.eps, rng, &rb_stats);
  res.ledger.charge_serial("initpart/rb", rb_stats.work_units);
  if (audit != AuditLevel::kOff) {
    AuditFailure f = audit_partition(*cur, p, opts.k, /*eps=*/0.0,
                                     /*expected_cut=*/-1, audit);
    if (!run_audit(f)) throw AuditError(std::move(f));
  }

  // Refine the initial partition in place on the coarsest graph.
  guarded_refine(*cur, p, "initpart/refine");

  // --- Uncoarsening ---
  for (std::size_t i = levels.size(); i-- > 0;) {
    check_cancelled(opts, "serial/uncoarsen");
    const CsrGraph& fine = (i == 0) ? g : levels[i - 1].graph;
    p.where = project_partition(levels[i].cmap, p.where);
    res.ledger.charge_serial(
        "uncoarsen/project/L" + std::to_string(i),
        static_cast<std::uint64_t>(fine.num_vertices()));
    // Project the gain cache alongside the labels: fine vertices whose
    // coarse parent was interior inherit id/ed without any table work.
    if (cache_valid && !watchdog.expired()) {
      GainCache fine_cache;
      fine_cache.init(fine, opts.k);
      wgt_t ed_sum = 0;
      const auto w = fine_cache.project_range(gain_cache, fine, p.where,
                                              levels[i].cmap, 0,
                                              fine.num_vertices(), &ed_sum);
      fine_cache.finish_totals(ed_sum);
      gain_cache = std::move(fine_cache);
      res.ledger.charge_serial("uncoarsen/gaincache/L" + std::to_string(i),
                               w);
    } else {
      cache_valid = false;
    }
    if (audit != AuditLevel::kOff) {
      AuditFailure f = audit_partition(fine, p, opts.k, /*eps=*/0.0,
                                       /*expected_cut=*/-1, audit);
      if (!run_audit(f)) throw AuditError(std::move(f));
    }
    guarded_refine(fine, p, "uncoarsen/refine/L" + std::to_string(i));
  }

  res.partition = std::move(p);
  res.cut = edge_cut(g, res.partition);
  res.balance = partition_balance(g, res.partition);
  if (audit != AuditLevel::kOff) {
    AuditFailure f = audit_partition(g, res.partition, opts.k, opts.eps,
                                     static_cast<std::int64_t>(res.cut),
                                     audit);
    if (!run_audit(f)) throw AuditError(std::move(f));
  }
}

}  // namespace

PartitionResult SerialMetisPartitioner::run(const CsrGraph& g,
                                            const PartitionOptions& opts) const {
  validate_options(g, opts);
  WallTimer wall;
  PartitionResult res;
  auto injector = opts.make_fault_injector();
  const Watchdog watchdog(opts.time_budget_seconds);

  for (int attempt = 0;; ++attempt) {
    try {
      serial_attempt(g, opts, injector.get(), watchdog, res);
      break;
    } catch (const AuditError& e) {
      // Terminal escalation: one whole-run restart with corruption
      // injection suppressed; a second failure is a genuine bug.
      if (attempt >= 1 || !injector) throw;
      ++res.health.rollbacks;
      ++res.health.fallbacks;
      res.health.degraded = true;
      res.health.note(std::string("rollback: whole-run restart with "
                                  "corruption suppressed (") +
                      e.what() + ")");
      injector->set_corruption_suppressed(true);
    }
  }

  if (injector) injector->report_into(res.health);
  res.modeled_seconds = res.ledger.total_seconds();
  res.phases.coarsen = res.ledger.seconds_with_prefix("coarsen/");
  res.phases.initpart = res.ledger.seconds_with_prefix("initpart/");
  res.phases.uncoarsen = res.ledger.seconds_with_prefix("uncoarsen/");
  res.wall_seconds = wall.seconds();
  return res;
}

std::unique_ptr<Partitioner> make_serial_partitioner() {
  return std::make_unique<SerialMetisPartitioner>();
}

}  // namespace gp
