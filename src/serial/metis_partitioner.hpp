// Serial multilevel k-way partitioner (the "Metis" baseline of the paper):
// HEM coarsening -> recursive-bisection initial partitioning -> greedy
// k-way refinement during uncoarsening.
#pragma once

#include "core/partitioner.hpp"

namespace gp {

class SerialMetisPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "metis"; }
  [[nodiscard]] PartitionResult run(const CsrGraph& g,
                                    const PartitionOptions& opts) const override;
};

}  // namespace gp
