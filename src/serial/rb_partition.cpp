#include "serial/rb_partition.hpp"

#include <algorithm>
#include <cmath>

#include "core/graph_ops.hpp"
#include "serial/bisection.hpp"

namespace gp {

namespace {

struct RbCtx {
  double eps_per_level;
  Rng* rng;
  RbStats* stats;
  int gggp_trials;
  int fm_passes;
};

// Partitions `g` into parts [first_part, first_part + k) writing into
// `where` through `ids` (ids[v] = vertex id in the original graph).
void rb_rec(const CsrGraph& g, const std::vector<vid_t>& ids, part_t k,
            part_t first_part, std::vector<part_t>& where, const RbCtx& ctx) {
  if (k == 1 || g.num_vertices() == 0) {
    for (const vid_t id : ids) where[static_cast<std::size_t>(id)] = first_part;
    return;
  }
  const part_t k0 = (k + 1) / 2;  // left branch takes ceil(k/2) parts
  const wgt_t total = g.total_vertex_weight();
  const wgt_t target0 = static_cast<wgt_t>(
      std::llround(static_cast<double>(total) * static_cast<double>(k0) /
                   static_cast<double>(k)));

  auto bis = gggp_bisect(g, target0, *ctx.rng, ctx.gggp_trials);
  if (ctx.stats) ctx.stats->work_units += bis.work_units;

  const wgt_t slack = std::max<wgt_t>(
      1, static_cast<wgt_t>(std::floor(static_cast<double>(target0) *
                                       ctx.eps_per_level)));
  // Neither side may be refined below the weight its part count needs
  // (k0 parts need at least k0 unit-weight vertices; for weighted graphs
  // this is the natural heuristic floor).
  const wgt_t min0 = std::max<wgt_t>(k0, target0 - slack);
  const wgt_t max0 =
      std::min<wgt_t>(total - (k - k0), target0 + slack);
  auto fm = fm_refine_bisection(g, bis.side, min0, max0, ctx.fm_passes,
                                bis.cut);
  if (ctx.stats) ctx.stats->work_units += fm.work_units;

  // Split into the two induced subgraphs and recurse.
  std::vector<char> mask0(bis.side.size()), mask1(bis.side.size());
  for (std::size_t v = 0; v < bis.side.size(); ++v) {
    mask0[v] = (bis.side[v] == 0);
    mask1[v] = (bis.side[v] == 1);
  }
  std::vector<vid_t> map0, map1;
  const CsrGraph g0 = induced_subgraph(g, mask0, &map0);
  const CsrGraph g1 = induced_subgraph(g, mask1, &map1);
  std::vector<vid_t> ids0(static_cast<std::size_t>(g0.num_vertices()));
  std::vector<vid_t> ids1(static_cast<std::size_t>(g1.num_vertices()));
  for (std::size_t v = 0; v < bis.side.size(); ++v) {
    if (map0[v] != kInvalidVid) ids0[static_cast<std::size_t>(map0[v])] = ids[v];
    if (map1[v] != kInvalidVid) ids1[static_cast<std::size_t>(map1[v])] = ids[v];
  }
  rb_rec(g0, ids0, k0, first_part, where, ctx);
  rb_rec(g1, ids1, k - k0, first_part + k0, where, ctx);
}

}  // namespace

Partition recursive_bisection(const CsrGraph& g, part_t k, double eps,
                              Rng& rng, RbStats* stats, int gggp_trials,
                              int fm_passes) {
  Partition p;
  p.k = k;
  p.where.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  if (k <= 1 || g.num_vertices() == 0) return p;

  // Tolerance budget: log2(k) nested bisections share eps.
  const int depth = std::max(1, static_cast<int>(std::ceil(std::log2(k))));
  RbCtx ctx{eps / static_cast<double>(depth), &rng, stats, gggp_trials,
            fm_passes};

  std::vector<vid_t> ids(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) ids[static_cast<std::size_t>(v)] = v;
  rb_rec(g, ids, k, 0, p.where, ctx);
  return p;
}

}  // namespace gp
