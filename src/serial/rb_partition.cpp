#include "serial/rb_partition.hpp"

#include "serial/initpart_engine.hpp"

namespace gp {

Partition recursive_bisection(const CsrGraph& g, part_t k, double eps,
                              Rng& rng, RbStats* stats, int gggp_trials,
                              int fm_passes) {
  // Thin wrapper over the shared engine in stream-seed mode: trials
  // consume the caller's RNG stream in preorder, GGGP picks the best
  // growth, one FM polishes it — byte-compatible with the historical
  // depth-first recursion.  No pool: the serial baseline's wall clock
  // stays honest, and ParMetis ranks (which also land here) already run
  // concurrently on the comm layer's pool, so nesting would deadlock.
  InitPartConfig cfg;
  cfg.k = k;
  cfg.eps = eps;
  cfg.trials = gggp_trials;
  cfg.fm_passes = fm_passes;
  cfg.seed_mode = InitSeedMode::kStream;
  cfg.fm_per_trial = false;
  InitPartStats st;
  Partition p = initpart_engine(g, cfg, &rng, &st);
  if (stats) stats->work_units += st.work_units;
  return p;
}

}  // namespace gp
