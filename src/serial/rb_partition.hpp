// Recursive-bisection k-way partitioning of a (small, already coarse)
// graph: GGGP seeds each bisection, 2-way FM polishes it, and the two
// halves recurse until k parts exist.  Shared by the serial driver and —
// per the paper — by every other driver's initial-partitioning phase
// (ParMetis' bisection tree, mt-metis' best-of-threads bisection).
#pragma once

#include <cstdint>

#include "core/csr_graph.hpp"
#include "core/partition.hpp"
#include "util/rng.hpp"

namespace gp {

struct RbStats {
  std::uint64_t work_units = 0;
};

/// Partitions g into k parts by recursive bisection.  eps is the final
/// k-way imbalance tolerance; internal bisections use a tightened window
/// so imbalance cannot compound across levels of the bisection tree.
[[nodiscard]] Partition recursive_bisection(const CsrGraph& g, part_t k,
                                            double eps, Rng& rng,
                                            RbStats* stats = nullptr,
                                            int gggp_trials = 4,
                                            int fm_passes = 8);

}  // namespace gp
