#include "service/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "gpu/device.hpp"
#include "util/timer.hpp"

namespace gp {

namespace {

/// Budget handed to a run whose deadline already expired while it sat in
/// the queue (or burned in earlier attempts): small enough that the
/// Watchdog trips at the first phase boundary and sheds every optional
/// pass, so the run still returns a minimal *valid* partition.
constexpr double kExpiredDeadlineBudget = 1e-6;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void validate_service_config(const ServiceConfig& cfg) {
  if (cfg.workers < 0) {
    throw std::invalid_argument("service: workers must be >= 0 (0 = "
                                "synchronous run_one mode)");
  }
  if (cfg.queue_depth == 0) {
    throw std::invalid_argument("service: queue depth must be >= 1");
  }
  if (!(cfg.cost_budget_seconds > 0.0)) {
    throw std::invalid_argument("service: cost budget must be > 0 seconds");
  }
  if (cfg.retry.max_attempts < 1) {
    throw std::invalid_argument("service: retry max_attempts must be >= 1");
  }
  if (cfg.retry.base_backoff_seconds < 0.0 ||
      cfg.retry.max_backoff_seconds < 0.0) {
    throw std::invalid_argument("service: backoff seconds must be >= 0");
  }
  if (cfg.retry.backoff_multiplier < 1.0) {
    throw std::invalid_argument(
        "service: backoff multiplier must be >= 1 (backoff may not shrink)");
  }
  if (cfg.retry.jitter < 0.0 || cfg.retry.jitter > 1.0) {
    throw std::invalid_argument("service: jitter fraction must be in [0, 1]");
  }
  if (cfg.default_deadline_seconds < 0.0) {
    throw std::invalid_argument("service: default deadline must be >= 0");
  }
}

std::unique_ptr<Partitioner> make_partitioner_by_name(
    const std::string& system) {
  if (system == "metis") return make_serial_partitioner();
  if (system == "mt-metis") return make_mt_partitioner();
  if (system == "parmetis") return make_par_partitioner();
  if (system == "gp-metis") return make_hybrid_partitioner();
  if (system == "gp-metis-multi") return make_multi_gpu_partitioner();
  throw std::invalid_argument("unknown system '" + system +
                              "' (expected metis|mt-metis|parmetis|"
                              "gp-metis|gp-metis-multi)");
}

RequestOutcome RequestTicket::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  return outcome_;
}

bool RequestTicket::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void RequestTicket::cancel() { cancel_.cancel(); }

ServiceEngine::ServiceEngine(ServiceConfig cfg)
    : cfg_(cfg),
      queue_(AdmissionQueue::Config{cfg.queue_depth,
                                    cfg.cost_budget_seconds}) {
  validate_service_config(cfg_);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServiceEngine::~ServiceEngine() { shutdown(/*drain=*/false); }

std::shared_ptr<RequestTicket> ServiceEngine::submit(
    const CsrGraph& graph, const PartitionOptions& opts, Priority priority,
    double deadline_seconds, std::string system) {
  auto ticket = std::make_shared<RequestTicket>();
  ticket->submit_time_ = std::chrono::steady_clock::now();

  AdmissionQueue::Entry entry;
  entry.ticket = ticket;
  entry.req.graph = &graph;
  entry.req.opts = opts;
  entry.req.system = std::move(system);
  entry.req.priority = priority;
  entry.req.deadline_seconds = deadline_seconds < 0.0
                                   ? cfg_.default_deadline_seconds
                                   : deadline_seconds;
  entry.req.est_cost_seconds = estimate_request_cost(graph, opts);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    entry.req.id = next_id_++;
    ++stats_.submitted;
  }
  ticket->id_ = entry.req.id;

  const std::uint64_t id = entry.req.id;
  AdmitDecision d = queue_.push(std::move(entry));
  if (!d.accepted) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      switch (d.shed_class) {
        case ShedClass::kQueueFull: ++stats_.shed_queue_full; break;
        case ShedClass::kCostBudget: ++stats_.shed_cost_budget; break;
        case ShedClass::kShutdown: ++stats_.shed_shutdown; break;
        case ShedClass::kNone: break;
      }
    }
    RequestOutcome out;
    out.id = id;
    out.state = RequestState::kShed;
    out.shed_class = d.shed_class;
    out.shed_reason = std::move(d.shed_reason);
    finalize(*ticket, std::move(out));
    return ticket;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
  }
  return ticket;
}

bool ServiceEngine::run_one() {
  AdmissionQueue::Entry entry;
  if (!queue_.try_pop(&entry)) return false;
  execute(std::move(entry));
  return true;
}

void ServiceEngine::worker_loop() {
  AdmissionQueue::Entry entry;
  while (queue_.pop_blocking(&entry)) {
    execute(std::move(entry));
    entry = AdmissionQueue::Entry{};  // drop graph/ticket refs while blocked
  }
}

void ServiceEngine::execute(AdmissionQueue::Entry entry) {
  RequestTicket& ticket = *entry.ticket;
  const ServiceRequest& req = entry.req;

  RequestOutcome out;
  out.id = req.id;
  out.queue_seconds = seconds_since(ticket.submit_time_);

  if (ticket.cancel_.cancelled()) {
    out.state = RequestState::kCancelled;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.cancelled;
    finalize(ticket, std::move(out));
    return;
  }

  const std::vector<LadderRung> ladder = degradation_ladder(req.system);
  const int max_attempts = std::max(1, cfg_.retry.max_attempts);
  WallTimer run_timer;

  // Pool-leak accounting: drivers build their Devices per run, so the
  // engine watches the process-wide teardown ledger across the request's
  // attempts.  Concurrent requests can attribute each other's leaks (the
  // counter is global), but any nonzero total is a bug either way.
  const std::int64_t leaks_before = Device::process_leaked_blocks();

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // A request cancelled while backing off must not burn further ladder
    // rungs: stop before the next attempt starts (the in-attempt check
    // is the driver's own CancelledError path).
    if (attempt > 1 && ticket.cancel_.cancelled()) {
      out.state = RequestState::kCancelled;
      out.attempt_trail.push_back("cancelled(between attempts)");
      break;
    }
    const LadderRung& rung = ladder[std::min<std::size_t>(
        static_cast<std::size_t>(attempt - 1), ladder.size() - 1)];

    PartitionOptions opts = req.opts;
    opts.cancel = &ticket.cancel_;
    if (rung.clear_faults) opts.fault_spec.clear();

    if (req.deadline_seconds > 0.0) {
      const double remaining =
          req.deadline_seconds - (out.queue_seconds + run_timer.seconds());
      double budget = std::max(remaining, kExpiredDeadlineBudget);
      if (opts.time_budget_seconds > 0.0) {
        budget = std::min(budget, opts.time_budget_seconds);
      }
      opts.time_budget_seconds = budget;
    }

    ++out.attempts;
    try {
      std::unique_ptr<Partitioner> p = make_partitioner_by_name(rung.system);
      PartitionResult r = p->run(*req.graph, opts);

      const bool fault_degraded =
          r.health.degraded &&
          (r.health.faults_injected > 0 || r.health.audits_failed > 0 ||
           r.health.corruptions_injected > 0);
      out.attempt_trail.push_back(rung.system +
                                  (r.health.degraded ? ":degraded" : ":ok"));

      const bool deadline_left =
          req.deadline_seconds <= 0.0 ||
          out.queue_seconds + run_timer.seconds() < req.deadline_seconds;
      if (fault_degraded && cfg_.retry.retry_degraded &&
          attempt < max_attempts && deadline_left) {
        const double delay =
            cfg_.retry.backoff_seconds(req.id, attempt, cfg_.seed);
        out.backoff_seconds += delay;
        {
          // Count the retry before sleeping so observers polling stats()
          // see it as soon as the backoff starts, not after.
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.retries;
        }
        if (cfg_.sleep_on_backoff) {
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        }
        continue;
      }
      out.result = std::move(r);
      out.state = RequestState::kDone;
      break;
    } catch (const CancelledError& e) {
      out.state = RequestState::kCancelled;
      out.attempt_trail.push_back(rung.system + ":cancelled(" + e.what() +
                                  ")");
      break;
    } catch (const std::invalid_argument& e) {
      // Bad (graph, options) — no retry can fix a malformed request.
      out.state = RequestState::kFailed;
      out.attempt_trail.push_back(rung.system + ":invalid(" + e.what() + ")");
      break;
    } catch (const std::exception& e) {
      out.attempt_trail.push_back(rung.system + ":threw(" +
                                  std::string(e.what()) + ")");
      if (attempt >= max_attempts) {
        out.state = RequestState::kFailed;
        break;
      }
      const double delay =
          cfg_.retry.backoff_seconds(req.id, attempt, cfg_.seed);
      out.backoff_seconds += delay;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.retries;
      }
      if (cfg_.sleep_on_backoff) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    }
  }

  // Every Device the attempts created has been destroyed by now; the
  // pool ledger must be back to where it started (satellite of the chaos
  // oracle — see DESIGN.md §3.10).
  out.leaked_blocks = Device::process_leaked_blocks() - leaks_before;
  assert(out.leaked_blocks == 0 && "service request leaked pool blocks");

  out.run_seconds = run_timer.seconds();
  out.deadline_missed = req.deadline_seconds > 0.0 &&
                        out.total_seconds() > req.deadline_seconds;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (out.leaked_blocks > 0) {
      stats_.leaked_blocks += static_cast<std::uint64_t>(out.leaked_blocks);
    }
    switch (out.state) {
      case RequestState::kDone:
        ++stats_.completed;
        if (out.result.health.degraded) ++stats_.completed_degraded;
        if (out.deadline_missed) ++stats_.deadline_misses;
        break;
      case RequestState::kCancelled: ++stats_.cancelled; break;
      case RequestState::kFailed: ++stats_.failed; break;
      default: break;
    }
  }
  finalize(ticket, std::move(out));
}

void ServiceEngine::finalize(RequestTicket& ticket, RequestOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(ticket.mutex_);
    ticket.outcome_ = std::move(outcome);
    ticket.done_ = true;
  }
  ticket.cv_.notify_all();
}

void ServiceEngine::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (drain && cfg_.workers == 0) {
    while (run_one()) {
    }
  }
  if (!drain) {
    std::vector<AdmissionQueue::Entry> left = queue_.drain();
    for (auto& e : left) {
      RequestOutcome out;
      out.id = e.req.id;
      out.state = RequestState::kShed;
      out.shed_class = ShedClass::kShutdown;
      out.shed_reason = "shutdown";
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.shed_shutdown;
      }
      finalize(*e.ticket, std::move(out));
    }
  }
  // With drain=true and workers >= 1, close() lets the workers empty the
  // queue before their pop_blocking returns false.
  queue_.close();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

ServiceStats ServiceEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace gp
