// Batched partition-request engine (DESIGN.md §3.8).
//
// ServiceEngine wires the admission queue, the retry policy, and the five
// partitioner drivers into a long-running service with four structural
// guarantees:
//
//   1. Bounded admission — overload sheds requests with machine-readable
//      reasons instead of queueing without bound (queue.hpp).
//   2. Bounded latency — a per-request deadline becomes the run's
//      time_budget_seconds at dequeue, so the existing Watchdog sheds
//      optional work at phase boundaries and a deadline-exceeded request
//      returns a *valid* best-so-far partition with degraded RunHealth,
//      never a hang.
//   3. Cooperative cancellation — the ticket's CancelToken is observed at
//      driver phase boundaries and at ThreadPool job dispatch; a
//      cancelled run unwinds as CancelledError with no dangling pool
//      tasks (pool jobs are atomic: cancellation lands between jobs).
//   4. Fault convergence — attempts that terminated on injected faults or
//      failed audits retry with deterministic backoff down the
//      degradation ladder, bottoming out at fault-free serial METIS
//      (retry.hpp).
//
// Two execution modes share one code path:
//   workers >= 1 — a thread-per-worker service loop (the real service and
//                  the closed-loop bench);
//   workers == 0 — synchronous: nothing runs until the caller ticks
//                  run_one(), giving bit-reproducible accept/shed/retry
//                  traces for tests and the open-loop bench.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/queue.hpp"
#include "service/request.hpp"
#include "service/retry.hpp"
#include "util/cancel.hpp"

namespace gp {

struct ServiceConfig {
  /// Executor threads; 0 = synchronous mode (caller drives run_one()).
  int workers = 2;
  std::size_t queue_depth = 64;
  double cost_budget_seconds = 1e18;
  RetryPolicy retry;
  /// Applied when submit() is called without an explicit deadline;
  /// 0 = no deadline.
  double default_deadline_seconds = 0.0;
  /// Actually sleep during retry backoff (true for the live service);
  /// false models the delay in the outcome without burning wall time —
  /// what tests and benches want.
  bool sleep_on_backoff = false;
  /// Engine seed, mixed into the deterministic backoff jitter.
  std::uint64_t seed = 1;
};

/// Throws std::invalid_argument on nonsensical settings (negative worker
/// count, zero queue depth, retry policy that cannot make progress, ...).
void validate_service_config(const ServiceConfig& cfg);

/// Maps a system name ("metis", "mt-metis", "parmetis", "gp-metis",
/// "gp-metis-multi") to its factory.  Throws std::invalid_argument on an
/// unknown name.
std::unique_ptr<Partitioner> make_partitioner_by_name(
    const std::string& system);

/// Caller-side handle to one submitted request: a future for the
/// RequestOutcome plus the cancellation lever.  Tickets are shared
/// pointers so the caller may drop theirs before completion.
class RequestTicket {
 public:
  /// Blocks until the request reaches a terminal state.
  RequestOutcome wait();
  [[nodiscard]] bool done() const;
  /// Requests cooperative cancellation.  Queued requests finalize as
  /// kCancelled at dequeue; running requests unwind at the next phase
  /// boundary or pool-job dispatch.
  void cancel();
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  friend class ServiceEngine;
  std::uint64_t id_ = 0;
  std::chrono::steady_clock::time_point submit_time_{};
  CancelToken cancel_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  RequestOutcome outcome_;
};

class ServiceEngine {
 public:
  explicit ServiceEngine(ServiceConfig cfg);
  /// Sheds everything still queued, finishes in-flight work, joins.
  ~ServiceEngine();

  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  /// Submits one request.  The graph must outlive the ticket's terminal
  /// state.  deadline_seconds < 0 = use the config default; 0 = none.
  /// Always returns a ticket — a shed request's ticket is already done,
  /// with state kShed and a machine-readable shed_reason.
  std::shared_ptr<RequestTicket> submit(const CsrGraph& graph,
                                        const PartitionOptions& opts,
                                        Priority priority = Priority::kNormal,
                                        double deadline_seconds = -1.0,
                                        std::string system = "gp-metis");

  /// Synchronous mode: executes the highest-priority queued request on
  /// the calling thread.  Returns false when the queue is empty.
  bool run_one();

  /// Stops admission.  drain=true executes everything still queued
  /// (on the workers, or inline in synchronous mode); drain=false sheds
  /// it with reason "shutdown".  Idempotent.
  void shutdown(bool drain);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

 private:
  void worker_loop();
  void execute(AdmissionQueue::Entry entry);
  void finalize(RequestTicket& ticket, RequestOutcome outcome);

  ServiceConfig cfg_;
  AdmissionQueue queue_;
  std::vector<std::thread> workers_;
  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  std::uint64_t next_id_ = 1;
  bool stopped_ = false;
};

}  // namespace gp
