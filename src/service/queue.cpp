#include "service/queue.hpp"

#include <algorithm>
#include <sstream>

namespace gp {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kBatch: return "batch";
    case Priority::kNormal: return "normal";
    case Priority::kInteractive: return "interactive";
  }
  return "?";
}

const char* request_state_name(RequestState s) {
  switch (s) {
    case RequestState::kQueued: return "queued";
    case RequestState::kRunning: return "running";
    case RequestState::kDone: return "done";
    case RequestState::kShed: return "shed";
    case RequestState::kCancelled: return "cancelled";
    case RequestState::kFailed: return "failed";
  }
  return "?";
}

const char* shed_class_name(ShedClass c) {
  switch (c) {
    case ShedClass::kNone: return "none";
    case ShedClass::kQueueFull: return "queue-full";
    case ShedClass::kCostBudget: return "cost-budget";
    case ShedClass::kShutdown: return "shutdown";
  }
  return "?";
}

double estimate_request_cost(const CsrGraph& g, const PartitionOptions& opts) {
  // Per-element touch counts: each V-cycle side walks every vertex and arc
  // a few times per level, and level sizes decay ~2x, so sum over levels
  // ~= 2x the finest level.  Refinement adds a k-dependent gain-table
  // factor.  Absolute scale (elements/sec) is arbitrary but fixed; only
  // monotonicity and reproducibility matter for admission control.
  const double n = static_cast<double>(g.num_vertices());
  const double m = static_cast<double>(g.num_arcs());
  const double refine_factor = 1.0 + 0.1 * static_cast<double>(opts.k);
  const double elements = 2.0 * (4.0 * n + 2.0 * m) * refine_factor;
  constexpr double kElementsPerSecond = 50.0e6;
  return elements / kElementsPerSecond;
}

AdmitDecision AdmissionQueue::push(Entry e) {
  AdmitDecision d;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      d.shed_class = ShedClass::kShutdown;
      d.shed_reason = "shutdown";
      return d;
    }
    if (depth_ >= cfg_.max_depth) {
      std::ostringstream os;
      os << "queue-full:depth=" << depth_ << ":max=" << cfg_.max_depth;
      d.shed_class = ShedClass::kQueueFull;
      d.shed_reason = os.str();
      return d;
    }
    const double est = e.req.est_cost_seconds;
    if (backlog_seconds_ + est > cfg_.cost_budget_seconds) {
      std::ostringstream os;
      os << "cost-budget:backlog=" << backlog_seconds_ << ":est=" << est
         << ":max=" << cfg_.cost_budget_seconds;
      d.shed_class = ShedClass::kCostBudget;
      d.shed_reason = os.str();
      return d;
    }
    const int lane = static_cast<int>(e.req.priority);
    lanes_[lane].push_back(std::move(e));
    ++depth_;
    backlog_seconds_ += est;
    d.accepted = true;
  }
  cv_.notify_one();
  return d;
}

bool AdmissionQueue::pop_locked(Entry* out) {
  for (int lane = 2; lane >= 0; --lane) {
    auto& q = lanes_[lane];
    if (!q.empty()) {
      *out = std::move(q.front());
      q.pop_front();
      --depth_;
      backlog_seconds_ =
          std::max(0.0, backlog_seconds_ - out->req.est_cost_seconds);
      return true;
    }
  }
  return false;
}

bool AdmissionQueue::pop_blocking(Entry* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return depth_ > 0 || closed_; });
  return pop_locked(out);
}

bool AdmissionQueue::try_pop(Entry* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return pop_locked(out);
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<AdmissionQueue::Entry> AdmissionQueue::drain() {
  std::vector<Entry> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (int lane = 2; lane >= 0; --lane) {
    auto& q = lanes_[lane];
    for (auto& e : q) out.push_back(std::move(e));
    q.clear();
  }
  depth_ = 0;
  backlog_seconds_ = 0.0;
  return out;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

double AdmissionQueue::backlog_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backlog_seconds_;
}

}  // namespace gp
