// Bounded admission queue with priority classes and explicit load
// shedding (DESIGN.md §3.8).
//
// Admission control runs entirely at push time, under one lock, against
// two bounds: queue depth (requests) and estimated modeled-cost backlog
// (seconds).  A request that would exceed either is *rejected
// immediately* with a machine-readable reason — the service's contract is
// "fast no" over "slow maybe", so an overloaded engine degrades into a
// predictable rejection rate instead of unbounded queueing delay
// (the classic overload-collapse failure mode of research partitioners
// embedded in serving systems).
//
// Dispatch order: strict priority (interactive > normal > batch), FIFO
// within a class.  Starvation of batch work under sustained interactive
// overload is the intended policy — batch requests are the ones a loaded
// service sheds first, and the cost-budget bound keeps the queue short
// enough that admitted batch work ages out quickly.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/request.hpp"

namespace gp {

class RequestTicket;  // engine.hpp; opaque to the queue

/// Outcome of one admission decision.
struct AdmitDecision {
  bool accepted = false;
  ShedClass shed_class = ShedClass::kNone;
  std::string shed_reason;  ///< machine-readable, empty when accepted
};

class AdmissionQueue {
 public:
  struct Config {
    std::size_t max_depth = 64;
    /// Cap on the summed est_cost_seconds of queued requests.  The depth
    /// bound alone under-protects against a few huge graphs; the cost
    /// bound alone under-protects against swarms of tiny ones.
    double cost_budget_seconds = 1e18;
  };

  struct Entry {
    ServiceRequest req;
    std::shared_ptr<RequestTicket> ticket;
  };

  explicit AdmissionQueue(Config cfg) : cfg_(cfg) {}

  /// Admission decision + enqueue, atomically.  Never blocks.
  AdmitDecision push(Entry e);

  /// Blocking pop for worker threads: highest priority class first, FIFO
  /// within.  Returns false once the queue is closed *and* drained.
  bool pop_blocking(Entry* out);

  /// Non-blocking pop (synchronous run_one mode).
  bool try_pop(Entry* out);

  /// Stops admission (further pushes shed with kShutdown) and wakes
  /// blocked poppers so they can drain and exit.
  void close();

  /// Removes and returns every queued entry (shutdown without drain).
  std::vector<Entry> drain();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] double backlog_seconds() const;

 private:
  bool pop_locked(Entry* out);

  Config cfg_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// One FIFO lane per priority class, indexed by static_cast<int>(Priority).
  std::deque<Entry> lanes_[3];
  std::size_t depth_ = 0;
  double backlog_seconds_ = 0.0;
  bool closed_ = false;
};

}  // namespace gp
