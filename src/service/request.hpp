// Request/outcome types of the partitioning service (DESIGN.md §3.8).
//
// The service engine (src/service/engine.hpp) turns the one-shot
// partitioners into a long-running, multi-tenant facility: callers submit
// (graph, options) requests with a priority class and a deadline, and the
// engine answers with a structured RequestOutcome — a partition, a shed
// decision with a machine-readable reason, or a cancellation — never a
// hang.  These types are shared by the admission queue, the retry policy,
// the engine, the CLI's --serve mode, and bench/bench_service.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partitioner.hpp"

namespace gp {

/// Admission priority class.  Higher classes are served first; within a
/// class the queue is FIFO by submission order.
enum class Priority : int {
  kBatch = 0,        ///< offline/bulk work, first to wait and first to shed
  kNormal = 1,       ///< default
  kInteractive = 2,  ///< latency-sensitive requests
};

[[nodiscard]] const char* priority_name(Priority p);

/// Terminal (and transient) states of a request.
enum class RequestState : int {
  kQueued = 0,   ///< admitted, waiting for an executor
  kRunning,      ///< an executor is partitioning it
  kDone,         ///< finished with a valid partition (possibly degraded)
  kShed,         ///< rejected by admission control (see shed_reason)
  kCancelled,    ///< caller cancelled before completion
  kFailed,       ///< every ladder rung failed (should not happen in practice)
};

[[nodiscard]] const char* request_state_name(RequestState s);

/// Why admission control rejected a request.  `RequestOutcome::shed_reason`
/// carries the machine-readable detail string ("queue-full:...",
/// "cost-budget:...", "shutdown").
enum class ShedClass : int {
  kNone = 0,
  kQueueFull,    ///< queue depth at the configured bound
  kCostBudget,   ///< estimated modeled-cost backlog over budget
  kShutdown,     ///< engine draining/stopped
};

[[nodiscard]] const char* shed_class_name(ShedClass c);

/// One admitted request as the queue/engine carry it.
struct ServiceRequest {
  std::uint64_t id = 0;
  const CsrGraph* graph = nullptr;  ///< non-owning; caller keeps it alive
  PartitionOptions opts;
  std::string system = "gp-metis";  ///< requested partitioner (ladder rung 0)
  Priority priority = Priority::kNormal;
  double deadline_seconds = 0.0;    ///< relative to submission; 0 = none
  double est_cost_seconds = 0.0;    ///< admission-time modeled-cost estimate
};

/// Everything the caller learns about a finished (or rejected) request.
struct RequestOutcome {
  std::uint64_t id = 0;
  RequestState state = RequestState::kQueued;
  ShedClass shed_class = ShedClass::kNone;
  /// Machine-readable shed reason, e.g.
  /// "queue-full:depth=64:max=64" or "cost-budget:backlog=1.52:est=0.40:max=1.60".
  std::string shed_reason;

  PartitionResult result;           ///< valid only when state == kDone
  int attempts = 0;                 ///< partitioner runs consumed (>= 1 when executed)
  /// One entry per attempt: "<system>:<ok|degraded|threw>".
  std::vector<std::string> attempt_trail;
  bool deadline_missed = false;     ///< total latency exceeded the deadline
  /// Device pool blocks leaked across this request's attempts (delta of
  /// Device::process_leaked_blocks()); always 0 unless a driver broke
  /// its buffer lifetimes.
  std::int64_t leaked_blocks = 0;

  double queue_seconds = 0.0;       ///< admission -> dequeue
  double run_seconds = 0.0;         ///< dequeue -> terminal (incl. retries)
  double backoff_seconds = 0.0;     ///< modeled backoff charged between attempts
  [[nodiscard]] double total_seconds() const {
    return queue_seconds + run_seconds;
  }
};

/// Aggregate counters of one engine's lifetime, printed by
/// format_service_stats (core/report.hpp) and dumped in BENCH_service.json.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_cost_budget = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t completed = 0;         ///< kDone outcomes
  std::uint64_t completed_degraded = 0;///< kDone with health.degraded
  std::uint64_t deadline_misses = 0;   ///< kDone past their deadline
  std::uint64_t retries = 0;           ///< extra attempts beyond the first
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t leaked_blocks = 0;     ///< pool blocks leaked by any request

  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_queue_full + shed_cost_budget + shed_shutdown;
  }
};

/// Deterministic admission-time cost estimate for one request, in modeled
/// seconds: a multilevel pass touches every vertex+arc a handful of times
/// per V-cycle side and the level sizes decay geometrically, so the work
/// is O(n + m) with a small k-dependent refine factor.  Deliberately
/// crude — admission control needs a monotone, reproducible proxy, not a
/// prediction (the ledger reports real modeled cost afterwards).
[[nodiscard]] double estimate_request_cost(const CsrGraph& g,
                                           const PartitionOptions& opts);

}  // namespace gp
