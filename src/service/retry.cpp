#include "service/retry.hpp"

#include <algorithm>
#include <cmath>

namespace gp {

namespace {

/// splitmix64 — the standard 64-bit finalizer; full avalanche, so nearby
/// (seed, id, attempt) triples produce uncorrelated jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::backoff_seconds(std::uint64_t request_id, int attempt,
                                    std::uint64_t seed) const {
  const int n = std::max(1, attempt);
  double d = base_backoff_seconds *
             std::pow(backoff_multiplier, static_cast<double>(n - 1));
  d = std::min(d, max_backoff_seconds);
  if (jitter > 0.0) {
    const std::uint64_t h = mix64(mix64(mix64(seed) ^ request_id) ^
                                  static_cast<std::uint64_t>(n));
    // 53 high bits -> uniform double in [0, 1).
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    d *= 1.0 + jitter * (u - 0.5);
  }
  return d;
}

std::vector<LadderRung> degradation_ladder(
    const std::string& requested_system) {
  std::vector<LadderRung> ladder;
  ladder.push_back({requested_system, false});
  if (requested_system != "mt-metis" && requested_system != "metis") {
    ladder.push_back({"mt-metis", false});
  }
  // Terminal rung: serial, no injector — cannot fault, cannot miss an
  // audit, so the ladder always bottoms out in a healthy run.
  ladder.push_back({"metis", true});
  return ladder;
}

}  // namespace gp
