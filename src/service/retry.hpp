// Retry policy and degradation ladder for the service engine
// (DESIGN.md §3.8).
//
// A request whose attempt terminated on an injected fault or a failed
// audit is retried with exponential backoff and *deterministic* jitter:
// the jitter factor is a pure hash of (engine seed, request id, attempt),
// so a replayed trace backs off by byte-identical amounts — the property
// the differential harness and test_service lean on.  Retries escalate
// down the PR-3 reliability ladder: the requested system first, then the
// CPU-parallel fallback, then serial METIS with fault injection cleared,
// which converges by construction (the serial driver with no injector
// has no failure modes left to hit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gp {

struct RetryPolicy {
  /// Total partitioner runs a request may consume (first try included).
  int max_attempts = 3;
  double base_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Jitter fraction j: the backoff is scaled by a deterministic factor
  /// in [1 - j/2, 1 + j/2].  0 disables jitter.
  double jitter = 0.5;
  /// Retry attempts that returned a *valid but degraded* partition where
  /// the degradation traces to faults/audits (not to the watchdog —
  /// retrying a deadline shed would just miss harder).
  bool retry_degraded = true;

  /// Modeled backoff before attempt `attempt` (1-based: the delay charged
  /// after attempt N fails and before attempt N+1 runs is
  /// backoff_seconds(id, N, seed)).  Deterministic in all arguments.
  [[nodiscard]] double backoff_seconds(std::uint64_t request_id, int attempt,
                                       std::uint64_t seed) const;
};

/// One rung of the degradation ladder: which partitioner to run and
/// whether to strip fault injection from the options first.
struct LadderRung {
  std::string system;
  bool clear_faults = false;
};

/// Ladder for a request that asked for `requested_system`:
/// requested -> mt-metis (if different) -> metis with faults cleared.
/// The final rung is always fault-free serial METIS, so a request with
/// enough attempts left always converges to a healthy partition.
[[nodiscard]] std::vector<LadderRung> degradation_ladder(
    const std::string& requested_system);

}  // namespace gp
