// Cooperative cancellation for long-running partition jobs (DESIGN.md
// §3.8).
//
// A CancelToken is a shared flag between a requester (the service engine,
// a CLI signal handler, a test) and the code doing the work.  Cancellation
// is *cooperative*: nothing is interrupted mid-kernel.  The flag is
// observed at two granularities:
//
//   * ThreadPool::dispatch checks it before publishing a new job, so a
//     cancelled run stops between kernels/passes without ever leaving a
//     partially-executed parallel region behind (a job either runs to
//     completion or is never started — the invariants of the artifacts a
//     pass produces are preserved either way);
//   * the five drivers check it at V-cycle phase boundaries
//     (check_cancelled in core/partitioner.hpp), which bounds the
//     cancellation latency even for serial phases that never dispatch.
//
// Both sites throw CancelledError; the stack unwinds through ordinary
// RAII (device buffers return to their pool, worker pools join), and the
// service engine maps the exception to a kCancelled outcome.
#pragma once

#include <atomic>
#include <stdexcept>

namespace gp {

class CancelToken {
 public:
  /// Requests cancellation.  Idempotent, callable from any thread.
  void cancel() { flag_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancelled() const {
    return flag_.load(std::memory_order_acquire);
  }

  /// Re-arms a token for reuse across requests (single-owner phases only).
  void reset() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Thrown at a cancellation check point once the token is set.  Never
/// caught inside the partitioners (their recovery ladders catch specific
/// fault/audit types only), so it always reaches the caller that owns the
/// request.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& where)
      : std::runtime_error("cancelled: " + where) {}
};

}  // namespace gp
