#include "util/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/rng.hpp"

namespace gp {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:     return "alloc";
    case FaultSite::kKernel:    return "kernel";
    case FaultSite::kH2D:       return "h2d";
    case FaultSite::kD2H:       return "d2h";
    case FaultSite::kMsg:       return "msg";
    case FaultSite::kSuperstep: return "superstep";
    case FaultSite::kFlip:      return "flip";
    case FaultSite::kPayload:   return "payload";
    case FaultSite::kCmap:      return "cmap";
    case FaultSite::kTask:      return "task";
    default:                    return "?";
  }
}

namespace {

[[noreturn]] void bad_rule(const std::string& rule, const char* why) {
  throw std::invalid_argument("fault spec: bad rule '" + rule + "': " + why);
}

/// Parses a non-negative integer occupying the whole of `s`.
std::int64_t parse_count(const std::string& rule, const std::string& s) {
  if (s.empty()) bad_rule(rule, "missing number");
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (*end != '\0' || v < 0) bad_rule(rule, "malformed number");
  return static_cast<std::int64_t>(v);
}

bool parse_site(const std::string& name, FaultSite* out) {
  for (int i = 0; i < static_cast<int>(FaultSite::kNumSites); ++i) {
    if (name == fault_site_name(static_cast<FaultSite>(i))) {
      *out = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

/// Shortest printf precision whose output strtod's back to exactly `p`.
std::string format_probability(double p) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, p);
    if (std::strtod(buf, nullptr) == p) break;
  }
  return buf;
}

/// Post-parse validation: a well-formed plan has at most one rule per
/// (site, occurrence), one probabilistic rule per site, one mem-cap, and
/// one loss/failure clause per device/rank id.  Without this a duplicate
/// silently took last-writer, which broke to_string round-tripping and
/// made shrunk reproducers ambiguous.
void reject_conflicts(const FaultPlan& plan) {
  const auto dup = [](const std::string& what) {
    throw std::invalid_argument("fault spec: conflicting clauses: " + what);
  };
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.rules.size(); ++j) {
      const auto& a = plan.rules[i];
      const auto& b = plan.rules[j];
      if (a.site != b.site) continue;
      const char* site = fault_site_name(a.site);
      if (a.at >= 0 && a.at == b.at) {
        dup("duplicate '" + std::string(site) + "@" +
            std::to_string(a.at) + "'");
      }
      if (a.at < 0 && b.at < 0) {
        dup("two probabilistic rules for site '" + std::string(site) + "'");
      }
    }
  }
  for (std::size_t i = 0; i < plan.device_losses.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.device_losses.size(); ++j) {
      if (plan.device_losses[i].device == plan.device_losses[j].device) {
        dup("device" + std::to_string(plan.device_losses[i].device) +
            " lost twice");
      }
    }
  }
  for (std::size_t i = 0; i < plan.rank_failures.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.rank_failures.size(); ++j) {
      if (plan.rank_failures[i].rank == plan.rank_failures[j].rank) {
        dup("rank" + std::to_string(plan.rank_failures[i].rank) +
            " failed twice");
      }
    }
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    std::string rule = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    const auto b = rule.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    rule = rule.substr(b, rule.find_last_not_of(" \t") - b + 1);

    // deviceD:lost[@N]  /  rankR:fail[@S]
    if (rule.rfind("device", 0) == 0 || rule.rfind("rank", 0) == 0) {
      const bool is_device = rule.rfind("device", 0) == 0;
      const std::size_t id_at = is_device ? 6 : 4;
      const std::size_t colon = rule.find(':', id_at);
      if (colon == std::string::npos) bad_rule(rule, "expected ':'");
      const std::int64_t id =
          parse_count(rule, rule.substr(id_at, colon - id_at));
      std::string verb = rule.substr(colon + 1);
      std::int64_t after = 0;
      const std::size_t at = verb.find('@');
      if (at != std::string::npos) {
        after = parse_count(rule, verb.substr(at + 1));
        verb = verb.substr(0, at);
      }
      if (is_device) {
        if (verb != "lost") bad_rule(rule, "expected ':lost'");
        plan.device_losses.push_back(
            {static_cast<int>(id), static_cast<std::uint64_t>(after)});
      } else {
        if (verb != "fail") bad_rule(rule, "expected ':fail'");
        plan.rank_failures.push_back(
            {static_cast<int>(id), static_cast<std::uint64_t>(after)});
      }
      continue;
    }

    // mem-cap=<bytes>: device-capacity squeeze (at most one per plan)
    if (rule.rfind("mem-cap=", 0) == 0) {
      const std::int64_t bytes = parse_count(rule, rule.substr(8));
      if (bytes <= 0) bad_rule(rule, "capacity must be > 0 bytes");
      if (plan.mem_cap_bytes != 0) bad_rule(rule, "duplicate mem-cap");
      plan.mem_cap_bytes = static_cast<std::size_t>(bytes);
      continue;
    }

    // site@N  /  site:p=F
    FaultRule fr;
    const std::size_t at = rule.find('@');
    const std::size_t colon = rule.find(':');
    if (at != std::string::npos) {
      if (!parse_site(rule.substr(0, at), &fr.site)) {
        bad_rule(rule, "unknown site");
      }
      fr.at = parse_count(rule, rule.substr(at + 1));
    } else if (colon != std::string::npos) {
      if (!parse_site(rule.substr(0, colon), &fr.site)) {
        bad_rule(rule, "unknown site");
      }
      const std::string arg = rule.substr(colon + 1);
      if (arg.rfind("p=", 0) != 0) bad_rule(rule, "expected ':p=F'");
      char* end = nullptr;
      fr.p = std::strtod(arg.c_str() + 2, &end);
      if (*end != '\0' || fr.p < 0.0 || fr.p > 1.0) {
        bad_rule(rule, "probability must be in [0, 1]");
      }
    } else {
      bad_rule(rule, "expected 'site@N', 'site:p=F', ':lost', or ':fail'");
    }
    plan.rules.push_back(fr);
  }
  reject_conflicts(plan);
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  const auto clause = [&out](const std::string& c) {
    if (!out.empty()) out += ';';
    out += c;
  };
  for (const auto& r : rules) {
    if (r.at >= 0) {
      clause(std::string(fault_site_name(r.site)) + "@" +
             std::to_string(r.at));
    } else {
      clause(std::string(fault_site_name(r.site)) +
             ":p=" + format_probability(r.p));
    }
  }
  for (const auto& dl : device_losses) {
    std::string c = "device" + std::to_string(dl.device) + ":lost";
    if (dl.after_ops != 0) c += "@" + std::to_string(dl.after_ops);
    clause(c);
  }
  for (const auto& rf : rank_failures) {
    std::string c = "rank" + std::to_string(rf.rank) + ":fail";
    if (rf.from_superstep != 0) c += "@" + std::to_string(rf.from_superstep);
    clause(c);
  }
  if (mem_cap_bytes != 0) {
    clause("mem-cap=" + std::to_string(mem_cap_bytes));
  }
  return out;
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultPlan plan)
    : seed_(seed), plan_(std::move(plan)) {
  int max_device = 0;
  for (const auto& dl : plan_.device_losses) {
    max_device = std::max(max_device, dl.device);
  }
  device_ops_.assign(static_cast<std::size_t>(max_device) + 1, 0);
  device_dead_.assign(static_cast<std::size_t>(max_device) + 1, 0);
}

bool FaultInjector::site_fires_locked(FaultSite site) {
  const std::uint64_t n = counters_[static_cast<int>(site)]++;
  for (const auto& r : plan_.rules) {
    if (r.site != site) continue;
    if (r.at >= 0) {
      if (static_cast<std::uint64_t>(r.at) == n) return true;
      continue;
    }
    if (r.p <= 0.0) continue;
    // Stateless per-occurrence decision: reproducible regardless of how
    // other sites interleave with this one.
    SplitMix64 h(seed_ ^ (static_cast<std::uint64_t>(site) * 0x9e3779b9ULL) ^
                 (n * 0xd1b54a32d192ed03ULL));
    const double u =
        static_cast<double>(h.next() >> 11) * 0x1.0p-53;  // [0, 1)
    if (u < r.p) return true;
  }
  return false;
}

FaultInjector::Action FaultInjector::on_device_op(int device_id,
                                                  FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Lost-device check first: a dead GPU fails every operation.
  const auto d = static_cast<std::size_t>(device_id);
  if (d < device_ops_.size()) {
    const std::uint64_t op = device_ops_[d]++;
    for (const auto& dl : plan_.device_losses) {
      if (dl.device != device_id || op < dl.after_ops) continue;
      if (!device_dead_[d]) {
        device_dead_[d] = 1;
        ++lost_devices_;
        ++fired_;
        events_.push_back("device" + std::to_string(device_id) + ":lost@" +
                          std::to_string(op));
      }
      return Action::kFail;
    }
  }
  if (site_fires_locked(site)) {
    ++fired_;
    events_.push_back(std::string(fault_site_name(site)) + "@" +
                      std::to_string(counters_[static_cast<int>(site)] - 1) +
                      " (device " + std::to_string(device_id) + ")");
    return site == FaultSite::kAlloc ? Action::kOom : Action::kFail;
  }
  return Action::kNone;
}

bool FaultInjector::corrupt_site_locked(FaultSite site,
                                        std::uint64_t* material,
                                        const std::string& detail) {
  if (suppress_corruption_) {
    // Still advance the counter so @N schedules stay aligned with the
    // uncorrupted occurrence stream.
    ++counters_[static_cast<int>(site)];
    return false;
  }
  if (!site_fires_locked(site)) return false;
  const std::uint64_t n = counters_[static_cast<int>(site)] - 1;
  // Distinct constant from the :p= decision draw so the material is not
  // correlated with the firing test.
  SplitMix64 h(seed_ ^ (static_cast<std::uint64_t>(site) * 0x9e3779b9ULL) ^
               (n * 0xd1b54a32d192ed03ULL) ^ 0x5bf0363546a9b1c7ULL);
  *material = h.next();
  ++fired_;
  ++corrupted_;
  std::string ev = std::string(fault_site_name(site)) + "@" +
                   std::to_string(n) + " corrupted";
  if (!detail.empty()) ev += " (" + detail + ")";
  events_.push_back(std::move(ev));
  return true;
}

bool FaultInjector::corrupt_transfer(std::uint64_t* material,
                                     const std::string& what) {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupt_site_locked(FaultSite::kFlip, material, what);
}

bool FaultInjector::corrupt_payload(std::uint64_t* material) {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupt_site_locked(FaultSite::kPayload, material, "");
}

bool FaultInjector::corrupt_cmap(std::uint64_t* material) {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupt_site_locked(FaultSite::kCmap, material, "");
}

void FaultInjector::set_corruption_suppressed(bool suppressed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (suppress_corruption_ == suppressed) return;
  suppress_corruption_ = suppressed;
  if (suppressed) events_.push_back("corruption injection suppressed");
}

bool FaultInjector::superstep_blackout(std::uint64_t superstep) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!site_fires_locked(FaultSite::kSuperstep)) return false;
  ++fired_;
  events_.push_back("superstep@" + std::to_string(superstep) + " blackout");
  return true;
}

bool FaultInjector::drop_message() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!site_fires_locked(FaultSite::kMsg)) return false;
  ++fired_;
  events_.push_back(
      "msg@" +
      std::to_string(counters_[static_cast<int>(FaultSite::kMsg)] - 1) +
      " dropped");
  return true;
}

bool FaultInjector::task_fault() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!site_fires_locked(FaultSite::kTask)) return false;
  ++fired_;
  events_.push_back(
      "task@" +
      std::to_string(counters_[static_cast<int>(FaultSite::kTask)] - 1) +
      " throw");
  return true;
}

void FaultInjector::note_mem_cap_hit(std::size_t requested, std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++fired_;
  events_.push_back("mem-cap=" + std::to_string(cap) + " rejected alloc of " +
                    std::to_string(requested) + " bytes");
}

void FaultInjector::record_rank_failure(int rank, std::uint64_t superstep) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++fired_;
  events_.push_back("rank" + std::to_string(rank) + ":fail@" +
                    std::to_string(superstep));
}

bool FaultInjector::rank_failed(int rank, std::uint64_t superstep) const {
  for (const auto& rf : plan_.rank_failures) {
    if (rf.rank == rank && superstep >= rf.from_superstep) return true;
  }
  return false;
}

std::uint64_t FaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

std::uint64_t FaultInjector::devices_lost() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lost_devices_;
}

std::uint64_t FaultInjector::corruptions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupted_;
}

void FaultInjector::report_into(RunHealth& health) const {
  std::lock_guard<std::mutex> lock(mutex_);
  health.faults_injected += fired_;
  health.devices_lost += lost_devices_;
  health.corruptions_injected += corrupted_;
  for (const auto& e : events_) health.events.push_back("fault: " + e);
  if (fired_ > 0) health.degraded = true;
}

}  // namespace gp
