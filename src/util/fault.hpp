// Deterministic fault injection for the simulated GPU and comm substrates
// (DESIGN.md §3.4).
//
// Production partitioners treat resource exhaustion and partial hardware
// loss as recoverable, *reproducible* paths.  A FaultPlan is a parseable
// schedule of named fault sites; a FaultInjector evaluates it with a
// dedicated seed so that the same (seed, plan) pair yields the identical
// fault schedule — and therefore the identical retries, fallbacks, and
// final partition — on every run.
//
// Plan syntax (';' or ',' separated rules):
//   alloc@3            fault the 3rd device allocation (0-based, fires once)
//   kernel:p=0.01      each kernel launch faults with probability 0.01
//   h2d@1  d2h@0       Nth host->device / device->host copy faults
//   msg@5  msg:p=0.1   Nth routed message dropped / probabilistic drop
//   superstep@2        every message routed in superstep 2 is dropped
//   device1:lost       device 1 fails permanently (all ops raise)
//   device0:lost@40    device 0 fails starting at its 40th operation
//   rank2:fail         rank 2 fail-stops (detected at the next superstep)
//   rank1:fail@6       rank 1 fail-stops from superstep 6 on
//   flip@4  flip:p=    bit-flip in the Nth device transfer's payload
//   payload@2          garble the body of the Nth routed message
//   cmap@0             perturb one coarse-map entry at the Nth contraction
//   alloc:p=0.05       each device allocation fails with probability 0.05
//   task@7  task:p=    Nth ThreadPool dispatch throws from a worker slot
//   mem-cap=262144     squeeze device capacity to 262144 bytes (OOM path)
//
// Occurrence counters advance only on host-side, single-threaded paths
// (launch entry, transfer metering, message routing, pool dispatch), so the
// schedule is independent of worker-pool interleaving.  Probabilistic
// decisions hash (seed, site, occurrence) statelessly — sites never perturb
// each other.  Duplicate clauses for the same site (same `@N`, a second
// `:p=` rule, a second `mem-cap=`, repeated device/rank ids) are rejected
// at parse time so a plan round-trips through to_string() unambiguously.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gp {

enum class FaultSite : int {
  kAlloc = 0,
  kKernel,
  kH2D,
  kD2H,
  kMsg,
  kSuperstep,
  kFlip,     ///< silent bit-flip in a device transfer payload
  kPayload,  ///< silent garble of a routed message body
  kCmap,     ///< silent perturbation of a coarse-map entry
  kTask,     ///< ThreadPool dispatch throws from inside a worker slot
  kNumSites,
};

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// One injection rule: either "fire at occurrence `at`" (once) or "fire
/// with probability `p` at every occurrence".
struct FaultRule {
  FaultSite     site = FaultSite::kAlloc;
  std::int64_t  at = -1;  ///< 0-based occurrence index; -1 = probabilistic
  double        p = 0.0;
};

/// Parsed fault schedule.  Throws std::invalid_argument on syntax errors.
struct FaultPlan {
  struct DeviceLoss {
    int           device = 0;
    std::uint64_t after_ops = 0;  ///< lost from its Nth operation on
  };
  struct RankFailure {
    int           rank = 0;
    std::uint64_t from_superstep = 0;
  };

  std::vector<FaultRule>   rules;
  std::vector<DeviceLoss>  device_losses;
  std::vector<RankFailure> rank_failures;
  std::size_t              mem_cap_bytes = 0;  ///< 0 = no capacity squeeze

  [[nodiscard]] bool empty() const {
    return rules.empty() && device_losses.empty() && rank_failures.empty() &&
           mem_cap_bytes == 0;
  }

  static FaultPlan parse(const std::string& spec);

  /// Canonical serialization: rules in plan order, then device losses,
  /// rank failures, and the mem-cap clause, ';'-joined.  Probabilities
  /// print with the shortest representation that round-trips, so
  /// parse(to_string(parse(s))) == parse(s) for every valid spec.
  [[nodiscard]] std::string to_string() const;
};

/// Health record of one partitioner run: what was injected, what the
/// degradation policies did about it, and whether the result came from a
/// degraded path.  Threaded through PartitionResult; printed by report.cpp.
struct RunHealth {
  std::uint64_t faults_injected = 0;   ///< fault decisions that fired
  std::uint64_t gpu_retries = 0;       ///< GP-metis attempt restarts
  std::uint64_t devices_lost = 0;      ///< simulated GPUs lost for good
  std::uint64_t messages_dropped = 0;  ///< comm messages eaten in transit
  std::uint64_t messages_resent = 0;   ///< recovery resends (parmetis cmap)
  std::uint64_t match_repairs = 0;     ///< asymmetric matches repaired
  std::uint64_t payload_discards = 0;  ///< malformed records rejected on receive
  std::uint64_t fallbacks = 0;         ///< policy downgrades taken
  std::uint64_t audits_run = 0;        ///< invariant audits executed
  std::uint64_t audits_failed = 0;     ///< audits that found corruption
  std::uint64_t rollbacks = 0;         ///< level/phase re-executions
  std::uint64_t corruptions_injected = 0;  ///< silent corruptions planted
  bool          degraded = false;      ///< result came off the nominal path
  std::vector<std::string> events;     ///< ordered fault/fallback trail

  void note(std::string event) { events.push_back(std::move(event)); }

  friend bool operator==(const RunHealth&, const RunHealth&) = default;
};

/// Evaluates a FaultPlan deterministically.  One injector serves a whole
/// run (all devices, the comm layer, and every retry attempt): occurrence
/// counters keep advancing across attempts, so a `site@N` rule fires
/// exactly once per run no matter how often the partitioner retries.
class FaultInjector {
 public:
  enum class Action { kNone, kOom, kFail };

  FaultInjector(std::uint64_t seed, FaultPlan plan);

  /// Device-substrate check.  Returns kOom for an injected allocation
  /// failure, kFail for an injected kernel/transfer fault or any
  /// operation on a lost device.
  Action on_device_op(int device_id, FaultSite site);

  /// Comm-substrate checks (called from single-threaded routing code).
  /// Evaluated once per superstep: blackout drops every routed message.
  [[nodiscard]] bool superstep_blackout(std::uint64_t superstep);
  /// Per-message drop decision (kMsg rules; counts the occurrence).
  [[nodiscard]] bool drop_message();
  /// ThreadPool dispatch check (kTask rules; counts one occurrence per
  /// dispatch, evaluated on the dispatching host thread).  When true the
  /// pool plants a throw inside worker slot 0 of the job.
  [[nodiscard]] bool task_fault();
  /// Plan's device-capacity squeeze in bytes (0 = none).  The plan is
  /// immutable after construction, so this needs no lock.
  [[nodiscard]] std::size_t mem_cap_bytes() const {
    return plan_.mem_cap_bytes;
  }
  /// Records an allocation rejected by the mem-cap squeeze (counts as a
  /// fired fault so the run reports degraded health).
  void note_mem_cap_hit(std::size_t requested, std::size_t cap);
  /// Fail-stop check for a rank at a given superstep (no counter).
  [[nodiscard]] bool rank_failed(int rank, std::uint64_t superstep) const;
  /// Records a detected rank failure in the event trail (called once by
  /// the comm layer when it fail-stops).
  void record_rank_failure(int rank, std::uint64_t superstep);

  /// Silent-corruption checks (DESIGN.md §3.5).  Each counts one
  /// occurrence of its site; when the plan says to corrupt, `*material`
  /// receives 64 bits derived from (seed, site, occurrence) — the caller
  /// uses them to pick the byte/bit/index to mutate, so the same
  /// (seed, spec) replays byte-identically.  All return false while
  /// corruption is suppressed (terminal escalation steps turn injection
  /// off to guarantee convergence under `:p=` rules).
  [[nodiscard]] bool corrupt_transfer(std::uint64_t* material,
                                      const std::string& what);
  [[nodiscard]] bool corrupt_payload(std::uint64_t* material);
  [[nodiscard]] bool corrupt_cmap(std::uint64_t* material);

  /// Disables (or re-enables) the corruption sites.  Recorded in the
  /// event trail; deterministic because it is only toggled in response
  /// to deterministic audit outcomes.
  void set_corruption_suppressed(bool suppressed);

  [[nodiscard]] std::uint64_t faults_fired() const;
  [[nodiscard]] std::uint64_t devices_lost() const;
  [[nodiscard]] std::uint64_t corruptions() const;

  /// Folds the injector's tallies and event trail into a health record.
  void report_into(RunHealth& health) const;

 private:
  bool site_fires_locked(FaultSite site);  ///< counts an occurrence
  /// As site_fires_locked, but also derives the corruption material for
  /// the firing occurrence.
  bool corrupt_site_locked(FaultSite site, std::uint64_t* material,
                           const std::string& detail);

  std::uint64_t seed_;
  FaultPlan     plan_;

  mutable std::mutex mutex_;
  std::uint64_t counters_[static_cast<int>(FaultSite::kNumSites)] = {};
  std::vector<std::uint64_t> device_ops_;   ///< per-device op counters
  std::vector<char>          device_dead_;  ///< loss already reported
  std::uint64_t fired_ = 0;
  std::uint64_t lost_devices_ = 0;
  std::uint64_t corrupted_ = 0;
  bool          suppress_corruption_ = false;
  std::vector<std::string> events_;
};

}  // namespace gp
