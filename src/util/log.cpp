#include "util/log.hpp"

namespace gp {
namespace detail {

LogLevel& log_level_ref() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

std::mutex& log_mutex_ref() {
  static std::mutex m;
  return m;
}

}  // namespace detail

void set_log_level(LogLevel level) { detail::log_level_ref() = level; }
LogLevel log_level() { return detail::log_level_ref(); }

}  // namespace gp
