// Minimal leveled logger.  Single global level, thread-safe line output.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace gp {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace detail {
LogLevel&   log_level_ref();
std::mutex& log_mutex_ref();
}  // namespace detail

/// Sets the global log level (default: kWarn).
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; drops the message if `level` is above the global.
template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  static const char* kTag[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::lock_guard<std::mutex> lock(detail::log_mutex_ref());
  std::fprintf(stderr, "[%s] ", kTag[static_cast<int>(level)]);
  if constexpr (sizeof...(Args) == 0) {
    std::fprintf(stderr, "%s", fmt);
  } else {
    std::fprintf(stderr, fmt, args...);
  }
  std::fputc('\n', stderr);
}

template <typename... Args>
void log_info(const char* fmt, Args... args) {
  log(LogLevel::kInfo, fmt, args...);
}
template <typename... Args>
void log_warn(const char* fmt, Args... args) {
  log(LogLevel::kWarn, fmt, args...);
}
template <typename... Args>
void log_error(const char* fmt, Args... args) {
  log(LogLevel::kError, fmt, args...);
}
template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  log(LogLevel::kDebug, fmt, args...);
}

}  // namespace gp
