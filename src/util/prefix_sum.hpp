// Host-side inclusive / exclusive prefix sums, serial and pool-parallel.
//
// The pool-parallel variant is the classic two-pass blocked scan: each
// thread scans its block, block totals are scanned serially, then each
// thread adds its block offset.  The simulated CUDA device scan
// (src/gpu/scan.*) has the same structure but runs on the device
// abstraction; this one serves the CPU-side substrates.
#pragma once

#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace gp {

/// In-place inclusive scan: a[i] <- a[0] + ... + a[i].
template <typename T>
void inclusive_scan_serial(std::vector<T>& a) {
  T sum{};
  for (auto& x : a) {
    sum += x;
    x = sum;
  }
}

/// In-place exclusive scan: a[i] <- a[0] + ... + a[i-1].  Returns the total.
template <typename T>
T exclusive_scan_serial(std::vector<T>& a) {
  T sum{};
  for (auto& x : a) {
    T v = x;
    x = sum;
    sum += v;
  }
  return sum;
}

/// In-place inclusive scan on a pool.  Falls back to serial for tiny inputs.
template <typename T>
void inclusive_scan_parallel(ThreadPool& pool, std::vector<T>& a) {
  const auto n = static_cast<std::int64_t>(a.size());
  const int nt = pool.size();
  if (n < 4096 || nt == 1) {
    inclusive_scan_serial(a);
    return;
  }
  std::vector<T> block_total(static_cast<std::size_t>(nt), T{});
  pool.parallel_for_blocked(n, [&](int t, std::int64_t b, std::int64_t e) {
    T sum{};
    for (std::int64_t i = b; i < e; ++i) {
      sum += a[static_cast<std::size_t>(i)];
      a[static_cast<std::size_t>(i)] = sum;
    }
    block_total[static_cast<std::size_t>(t)] = sum;
  });
  T carry{};
  for (auto& bt : block_total) {
    T v = bt;
    bt = carry;
    carry += v;
  }
  pool.parallel_for_blocked(n, [&](int t, std::int64_t b, std::int64_t e) {
    const T off = block_total[static_cast<std::size_t>(t)];
    if (off == T{}) return;
    for (std::int64_t i = b; i < e; ++i) a[static_cast<std::size_t>(i)] += off;
  });
}

/// In-place exclusive scan on a pool.  Returns the total.
template <typename T>
T exclusive_scan_parallel(ThreadPool& pool, std::vector<T>& a) {
  if (a.empty()) return T{};
  inclusive_scan_parallel(pool, a);
  T total = a.back();
  // Shift right by one.  (Serial; the scan above dominates.)
  for (std::size_t i = a.size(); i-- > 1;) a[i] = a[i - 1];
  a[0] = T{};
  return total;
}

}  // namespace gp
