// Deterministic, cheap PRNGs.
//
// All stochastic choices in the library (random matching, GGGP seeds,
// generator jitter) flow through these so experiments are reproducible
// from a single seed.  Xoshiro256** is the workhorse; SplitMix64 seeds it
// and decorrelates per-thread streams.
#pragma once

#include <cstdint>

namespace gp {

/// SplitMix64: used to expand one seed into many decorrelated seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace gp
