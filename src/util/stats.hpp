// Small summary-statistics helpers used by benches and the cost model.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gp {

struct Summary {
  double min = 0, max = 0, mean = 0, median = 0, stddev = 0;
  std::size_t count = 0;
};

/// Computes min/max/mean/median/stddev of `v` (empty -> zeros).
template <typename T>
Summary summarize(std::vector<T> v) {
  Summary s;
  s.count = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  s.min = static_cast<double>(v.front());
  s.max = static_cast<double>(v.back());
  double sum = 0;
  for (const auto& x : v) sum += static_cast<double>(x);
  s.mean = sum / static_cast<double>(v.size());
  const std::size_t mid = v.size() / 2;
  s.median = (v.size() % 2 == 1)
                 ? static_cast<double>(v[mid])
                 : 0.5 * (static_cast<double>(v[mid - 1]) +
                          static_cast<double>(v[mid]));
  double ss = 0;
  for (const auto& x : v) {
    const double d = static_cast<double>(x) - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / static_cast<double>(v.size()));
  return s;
}

/// max/mean ratio of a work distribution; 1.0 = perfectly balanced.
/// Used by the cost model to turn measured per-thread work into an
/// imbalance penalty.
template <typename T>
double imbalance_factor(const std::vector<T>& work) {
  if (work.empty()) return 1.0;
  T mx{};
  double sum = 0;
  for (const auto& w : work) {
    mx = std::max(mx, w);
    sum += static_cast<double>(w);
  }
  const double mean = sum / static_cast<double>(work.size());
  if (mean <= 0) return 1.0;
  return std::max(1.0, static_cast<double>(mx) / mean);
}

}  // namespace gp
