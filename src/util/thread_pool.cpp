#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace gp {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  remaining_ = size();
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::parallel_for_blocked(
    std::int64_t n,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  const int nt = size();
  run_on_all([&, n, nt](int t) {
    auto [b, e] = block_range(n, nt, t);
    if (b < e) fn(t, b, e);
  });
}

std::pair<std::int64_t, std::int64_t> ThreadPool::block_range(std::int64_t n,
                                                              int num_threads,
                                                              int t) {
  assert(num_threads > 0 && t >= 0 && t < num_threads);
  const std::int64_t chunk = n / num_threads;
  const std::int64_t rem = n % num_threads;
  const std::int64_t begin = t * chunk + std::min<std::int64_t>(t, rem);
  const std::int64_t end = begin + chunk + (t < rem ? 1 : 0);
  return {begin, end};
}

}  // namespace gp
