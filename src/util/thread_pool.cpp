#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "util/fault.hpp"

namespace gp {

namespace {

/// Wrapper installed when the `task` fault site fires for a dispatch: the
/// inner body runs to completion first (the fault models a task that
/// throws, not one that corrupts), then slot 0 throws through the worker
/// boundary so the record/join/rethrow path is what propagates it.
struct TaskFaultShim {
  void (*inner)(void*, int);
  void* ctx;
};

void task_fault_invoke(void* p, int slot) {
  auto* shim = static_cast<TaskFaultShim*>(p);
  shim->inner(shim->ctx, slot);
  if (slot == 0) {
    throw ThreadPoolTaskError("injected pool task fault (slot 0)");
  }
}

// Spin budget before parking.  The container may have fewer cores than
// workers (often just one), so the budget is short and yields its
// timeslice for the second half — a worker that spins hard on a one-core
// box only delays the job it is waiting for.
constexpr int kSpinPause = 64;
constexpr int kSpinYield = 32;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  // The job word packs the participating-worker count into 16 bits.
  num_threads = std::min(std::max(1, num_threads), 0xffff);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int t = 0; t < num_threads; ++t) {
    workers_[static_cast<std::size_t>(t)]->thread =
        std::thread([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  if (std::getenv("GP_POOL_STATS")) {
    std::fprintf(stderr, "[pool %d threads] %llu dispatches\n", size(),
                 static_cast<unsigned long long>(dispatch_count()));
  }
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    w->cv.notify_one();
  }
  for (auto& w : workers_) w->thread.join();
}

void ThreadPool::worker_loop(int id) {
  Worker& me = *workers_[static_cast<std::size_t>(id)];
  std::uint64_t seen = 0;  // generation part of the last job word seen
  for (;;) {
    // --- wait for a new generation: spin, then park ---
    std::uint64_t jw;
    int spins = 0;
    while (((jw = job_word_.load(std::memory_order_acquire)) >> 16) == seen) {
      if (stop_.load(std::memory_order_acquire)) return;
      ++spins;
      if (spins <= kSpinPause) {
        cpu_relax();
      } else if (spins <= kSpinPause + kSpinYield) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(me.mutex);
        me.parked.store(true, std::memory_order_seq_cst);
        // The seq_cst store above and seq_cst load below pair with the
        // dispatcher's seq_cst publish-then-check (Dekker): either the
        // dispatcher sees parked and notifies, or this predicate sees
        // the new generation and skips the sleep.
        me.cv.wait(lock, [&] {
          return stop_.load(std::memory_order_relaxed) ||
                 (job_word_.load(std::memory_order_seq_cst) >> 16) != seen;
        });
        me.parked.store(false, std::memory_order_relaxed);
        spins = 0;
      }
    }
    seen = jw >> 16;
    // --- execute this worker's slot, if the job includes it ---
    if (id < static_cast<int>(jw & 0xffff)) {
      try {
        invoke_(ctx_, id);
      } catch (...) {
        // A throwing task must not wedge the barrier: record the error
        // for the dispatcher and fall through to the normal completion
        // protocol so the generation word keeps advancing.
        record_job_error(std::current_exception());
      }
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last finisher: the dispatcher may have parked.  Taking the lock
        // (even when nobody waits) closes the missed-wakeup window — the
        // dispatcher re-checks remaining_ under this mutex before
        // sleeping.
        std::lock_guard<std::mutex> lock(done_mutex_);
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::record_job_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(err_mutex_);
  if (!job_error_) job_error_ = std::move(e);
}

void ThreadPool::dispatch(int n_slots, void (*invoke)(void*, int),
                          void* ctx) {
  assert(n_slots >= 1 && n_slots <= size());
  // Cooperative cancellation boundary: a cancelled run stops *between*
  // jobs, never inside one, so every artifact a completed pass produced
  // is intact when the stack unwinds.
  if (const CancelToken* tok = cancel_.load(std::memory_order_acquire);
      tok && tok->cancelled()) {
    throw CancelledError("pool job before dispatch");
  }
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  // Injected task fault: decided here on the dispatching thread so the
  // occurrence schedule is independent of worker interleaving.  The shim
  // outlives the job — dispatch blocks until the join barrier below.
  TaskFaultShim shim;
  if (injector_ && injector_->task_fault()) {
    shim = {invoke, ctx};
    invoke = &task_fault_invoke;
    ctx = &shim;
  }
  if (n_slots == 1) {
    // Single-slot jobs (tiny kernels, one-thread pools) run inline: no
    // concurrency is possible with one executor, so no synchronization is
    // owed either (a thrown exception propagates directly).
    invoke(ctx, 0);
    return;
  }
  const int n_workers = n_slots - 1;  // the caller runs slot n_slots-1
  job_error_ = nullptr;  // previous job fully joined; no concurrent access
  invoke_ = invoke;
  ctx_ = ctx;
  remaining_.store(n_workers, std::memory_order_relaxed);
  const std::uint64_t gen = (job_word_.load(std::memory_order_relaxed) >> 16) + 1;
  job_word_.store((gen << 16) | static_cast<std::uint64_t>(n_workers),
                  std::memory_order_seq_cst);
  // Wake exactly the parked participants; spinning ones see the store.
  // A worker that decided to park after we looked re-checks the job word
  // under its mutex before sleeping (seq_cst Dekker pairing above), so
  // the publish is never missed.
  for (int w = 0; w < n_workers; ++w) {
    Worker& wk = *workers_[static_cast<std::size_t>(w)];
    if (wk.parked.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(wk.mutex);
      wk.cv.notify_one();
    }
  }

  try {
    invoke(ctx, n_slots - 1);  // caller's slot
  } catch (...) {
    // The caller's slot failed, but the workers still hold pointers into
    // this job's context: record the error and fall through to the join
    // barrier before letting anything unwind.
    record_job_error(std::current_exception());
  }

  // --- join: spin, then park on done_cv_ ---
  int spins = 0;
  while (remaining_.load(std::memory_order_acquire) != 0) {
    ++spins;
    if (spins <= kSpinPause) {
      cpu_relax();
    } else if (spins <= kSpinPause + kSpinYield) {
      std::this_thread::yield();
    } else {
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [&] {
        return remaining_.load(std::memory_order_acquire) == 0;
      });
      break;
    }
  }

  // Every slot finished (job fully joined): safe to surface the job's
  // first failure to the dispatcher's caller.  No lock needed — workers
  // only touch job_error_ while remaining_ > 0.
  if (job_error_) {
    std::exception_ptr e = std::move(job_error_);
    job_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

std::pair<std::int64_t, std::int64_t> ThreadPool::block_range(std::int64_t n,
                                                              int num_threads,
                                                              int t) {
  assert(num_threads > 0 && t >= 0 && t < num_threads);
  const std::int64_t chunk = n / num_threads;
  const std::int64_t rem = n % num_threads;
  const std::int64_t begin = t * chunk + std::min<std::int64_t>(t, rem);
  const std::int64_t end = begin + chunk + (t < rem ? 1 : 0);
  return {begin, end};
}

}  // namespace gp
