// Persistent worker-thread pool with a fork-join parallel_for.
//
// The mt-metis reimplementation (src/mt) and the simulated CUDA device
// (src/gpu) both execute their logical parallelism on this pool.  The pool
// deliberately allows more workers than hardware cores: the container this
// reproduction runs in may have a single core, yet the algorithms under
// study are *defined* by how T logical threads race on shared arrays, so
// the pool preserves that concurrency structure regardless of core count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace gp {

class ThreadPool {
 public:
  /// Creates `num_threads` persistent workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(thread_id)` once on every worker and waits for all of them.
  /// This is the SPMD primitive: each invocation sees its own thread id and
  /// typically derives its vertex range from it.
  void run_on_all(const std::function<void(int)>& fn);

  /// Splits [0, n) into `size()` contiguous blocks and runs
  /// `fn(thread_id, begin, end)` per block in parallel.  Blocks are the
  /// static ownership ranges used by the mt-metis-style algorithms.
  void parallel_for_blocked(
      std::int64_t n,
      const std::function<void(int, std::int64_t, std::int64_t)>& fn);

  /// Static block ownership helper: [begin, end) of thread `t` over n items.
  static std::pair<std::int64_t, std::int64_t> block_range(std::int64_t n,
                                                           int num_threads,
                                                           int t);

 private:
  void worker_loop(int id);

  std::vector<std::thread> workers_;

  std::mutex              mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int           remaining_  = 0;
  bool          stop_       = false;
};

/// Convenience: serial fallback parallel_for over [0,n) with chunked
/// callback, used where a pool is optional.
inline void serial_for_blocked(
    std::int64_t n, int pseudo_threads,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  for (int t = 0; t < pseudo_threads; ++t) {
    auto [b, e] = ThreadPool::block_range(n, pseudo_threads, t);
    if (b < e) fn(t, b, e);
  }
}

}  // namespace gp
