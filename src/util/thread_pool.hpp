// Persistent worker-thread pool with fork-join and dynamic parallel_for.
//
// The mt-metis reimplementation (src/mt) and the simulated CUDA device
// (src/gpu) both execute their logical parallelism on this pool.  The pool
// deliberately allows more workers than hardware cores: the container this
// reproduction runs in may have a single core, yet the algorithms under
// study are *defined* by how T logical threads race on shared arrays, so
// the pool preserves that concurrency structure regardless of core count.
//
// Execution engine (see DESIGN.md §3.1):
//
//   * Jobs are published through an atomic generation counter plus a raw
//     function-pointer trampoline — no std::function allocation and no
//     mutex on the dispatch fast path.  Workers spin briefly on the
//     generation counter and park on a per-worker condition variable when
//     no job arrives (spin-then-park, sized for few-core containers).
//   * The dispatching thread participates as the last executor slot, so a
//     job that needs S slots wakes only S-1 workers, and a job with a
//     single slot runs inline with zero synchronization — the common case
//     for the many tiny kernels of the coarse V-cycle levels.
//   * parallel_for_blocked keeps the static ownership ranges the
//     mt-metis-style algorithms are defined by; parallel_for_dynamic adds
//     an atomic-chunk-counter schedule with a tunable grain for
//     degree-skewed loops (USA-roads/delaunay irregularity) where the
//     slowest static block would serialize the pass.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include <stdexcept>
#include <string>

#include "util/cancel.hpp"
#include "util/types.hpp"

namespace gp {

class FaultInjector;

/// Injected task failure (fault site `task@N` / `task:p=`): thrown from
/// inside a worker slot so the pool's record/join/rethrow machinery is
/// exercised, then surfaces from dispatch() on the dispatching thread.
class ThreadPoolTaskError : public std::runtime_error {
 public:
  explicit ThreadPoolTaskError(const std::string& what)
      : std::runtime_error(what) {}
};

class ThreadPool {
 public:
  /// Creates `num_threads` persistent workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(thread_id)` once for every thread id in [0, size()) and
  /// waits for all of them.  This is the SPMD primitive: each invocation
  /// sees its own thread id and typically derives its vertex range from
  /// it.  The calling thread executes one of the slots itself.
  template <typename F>
  void run_on_all(F&& fn) {
    auto body = [&fn](int id) { fn(id); };
    dispatch(size(), &trampoline<decltype(body)>, &body);
  }

  /// Splits [0, n) into `size()` contiguous blocks and runs
  /// `fn(thread_id, begin, end)` per non-empty block in parallel.  Blocks
  /// are the static ownership ranges used by the mt-metis-style
  /// algorithms.
  template <typename F>
  void parallel_for_blocked(std::int64_t n, F&& fn) {
    if (n <= 0) return;
    const int nt = size();
    auto body = [nt, n, &fn](int t) {
      const auto [b, e] = block_range(n, nt, t);
      if (b < e) fn(t, b, e);
    };
    dispatch(static_cast<int>(std::min<std::int64_t>(nt, n)),
             &trampoline<decltype(body)>, &body);
  }

  /// Dynamically-scheduled parallel_for: chunks of `grain` items are
  /// handed to whichever executor asks next (atomic chunk counter), so a
  /// few heavy chunks cannot serialize the pass on one static block.
  /// `fn(thread_id, begin, end)` runs per chunk; a thread id may receive
  /// many chunks, and with one executor the chunks arrive in index order
  /// (which keeps single-threaded runs bit-deterministic).
  template <typename F>
  void parallel_for_dynamic(std::int64_t n, std::int64_t grain, F&& fn) {
    if (n <= 0) return;
    if (grain < 1) grain = 1;
    const std::int64_t n_chunks = (n + grain - 1) / grain;
    std::atomic<std::int64_t> next{0};
    auto body = [n, grain, &next, &fn](int t) {
      for (;;) {
        const std::int64_t b = next.fetch_add(grain, std::memory_order_relaxed);
        if (b >= n) break;
        fn(t, b, std::min<std::int64_t>(b + grain, n));
      }
    };
    dispatch(static_cast<int>(std::min<std::int64_t>(size(), n_chunks)),
             &trampoline<decltype(body)>, &body);
  }

  /// Default dynamic grain for an n-item loop on this pool: ~16 chunks
  /// per executor, clamped so tiny loops stay one chunk and huge loops
  /// keep the counter traffic negligible.
  [[nodiscard]] std::int64_t dynamic_grain(std::int64_t n) const {
    const auto nt = static_cast<std::int64_t>(size());
    std::int64_t g = n / (nt * 16);
    if (g < 64) g = 64;
    if (g > 65536) g = 65536;
    return g;
  }

  /// Static block ownership helper: [begin, end) of thread `t` over n items.
  static std::pair<std::int64_t, std::int64_t> block_range(std::int64_t n,
                                                           int num_threads,
                                                           int t);

  /// Number of jobs dispatched so far (inline single-slot jobs included).
  /// Observability hook for tests and the GP_POOL_STATS dump.
  [[nodiscard]] std::uint64_t dispatch_count() const {
    return dispatches_.load(std::memory_order_relaxed);
  }

  /// Job-level cancellation (DESIGN.md §3.8): once `token` is set and
  /// cancelled, dispatch() throws CancelledError *before* publishing the
  /// next job.  Jobs are atomic with respect to cancellation — a parallel
  /// pass either runs to completion or never starts, so no caller ever
  /// observes a partially-executed region.  nullptr detaches (default).
  void set_cancel_token(const CancelToken* token) {
    cancel_.store(token, std::memory_order_release);
  }
  [[nodiscard]] const CancelToken* cancel_token() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Arms the `task` fault site: each dispatch() consults the injector on
  /// the dispatching thread (deterministic occurrence order) and, when the
  /// plan says so, plants a ThreadPoolTaskError inside worker slot 0 after
  /// the slot body runs — the job completes, the error is recorded at the
  /// worker boundary, and dispatch rethrows it after the join.  nullptr
  /// detaches (default); unarmed dispatches cost one pointer load.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  template <typename F>
  static void trampoline(void* ctx, int id) {
    (*static_cast<F*>(ctx))(id);
  }

  /// Publishes (invoke, ctx) to `n_slots` executors: workers 0..n_slots-2
  /// run slots equal to their worker id, the caller runs slot n_slots-1.
  /// Blocks until every slot has finished.  n_slots == 1 runs inline.
  ///
  /// Exception safety: a slot body that throws (on a worker or on the
  /// caller) is caught at the executor boundary and recorded first-wins;
  /// every other slot still runs to completion, the barrier generation
  /// word advances normally, and dispatch rethrows the recorded exception
  /// to its caller once the job has fully joined.  The pool stays usable.
  void dispatch(int n_slots, void (*invoke)(void*, int), void* ctx);

  void worker_loop(int id);

  /// Records the job's first exception (later ones are dropped — the
  /// caller can only propagate one, and a single root cause usually
  /// cascades).
  void record_job_error(std::exception_ptr e);

  /// One parking slot per worker so the dispatcher can wake exactly the
  /// workers a job needs (and an idle pool costs nothing).
  struct alignas(64) Worker {
    std::thread             thread;
    std::mutex              mutex;
    std::condition_variable cv;
    std::atomic<bool>       parked{false};
  };

  std::vector<std::unique_ptr<Worker>> workers_;

  // Job publication.  Generation counter and participating-worker count
  // are packed into ONE atomic word so a worker can never pair a stale
  // generation with the next job's slot count: (generation << 16) |
  // n_active_workers.  Plain stores to invoke_/ctx_ are ordered before
  // the store of job_word_; workers load job_word_ before reading them.
  std::atomic<std::uint64_t> job_word_{0};
  void (*invoke_)(void*, int) = nullptr;
  void*            ctx_ = nullptr;
  std::atomic<int> remaining_{0};  ///< workers still running this job
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<const CancelToken*> cancel_{nullptr};
  FaultInjector* injector_ = nullptr;

  // First exception thrown by any slot of the current job; rethrown by
  // dispatch after the join barrier.  Written under err_mutex_ (slot
  // failures are cold), read by the dispatcher only after every slot has
  // finished.
  std::mutex         err_mutex_;
  std::exception_ptr job_error_;

  // Completion parking for the dispatching thread.
  std::mutex              done_mutex_;
  std::condition_variable done_cv_;
};

/// Convenience: serial fallback parallel_for over [0,n) with chunked
/// callback, used where a pool is optional.
template <typename F>
inline void serial_for_blocked(std::int64_t n, int pseudo_threads, F&& fn) {
  for (int t = 0; t < pseudo_threads; ++t) {
    auto [b, e] = ThreadPool::block_range(n, pseudo_threads, t);
    if (b < e) fn(t, b, e);
  }
}

}  // namespace gp
