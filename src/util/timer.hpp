// Wall-clock timers used by benches and by the phase logs.
#pragma once

#include <chrono>

namespace gp {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Adds the elapsed time to an accumulator on scope exit.
class ScopedAccumTimer {
 public:
  explicit ScopedAccumTimer(double& accum) : accum_(accum) {}
  ~ScopedAccumTimer() { accum_ += timer_.seconds(); }

  ScopedAccumTimer(const ScopedAccumTimer&) = delete;
  ScopedAccumTimer& operator=(const ScopedAccumTimer&) = delete;

 private:
  double&   accum_;
  WallTimer timer_;
};

}  // namespace gp
