// Fundamental integer types shared by every module.
//
// Widths follow the paper's setting: graphs up to ~24M vertices and ~32M
// undirected edges (64M directed arcs).  32-bit vertex ids are sufficient;
// edge offsets and accumulated weights use 64 bits so that prefix sums and
// cut totals cannot overflow on the largest configured instances.
#pragma once

#include <cstdint>

namespace gp {

using vid_t  = std::int32_t;  ///< vertex id / vertex count
using eid_t  = std::int64_t;  ///< edge (arc) index into CSR adjacency
using wgt_t  = std::int64_t;  ///< vertex or edge weight, and weight sums
using part_t = std::int32_t;  ///< partition id

/// Sentinel "no vertex" / "unmatched" marker.
inline constexpr vid_t kInvalidVid = -1;
/// Sentinel "no partition" marker.
inline constexpr part_t kInvalidPart = -1;

/// Device-wide prefix-sum strategy for the simulated GPU pipelines
/// (src/gpu/scan.hpp, DESIGN.md §3.9).
///
///   kBlocked  — the classic CUB-style three-kernel blocked scan, and the
///               historical one-kernel-per-stage level pipelines around it.
///   kLookback — single-pass decoupled-lookback scan, and the fused
///               single-dispatch level pipelines built on it (a whole
///               matching/contraction/refinement stage chain is metered as
///               one kernel launch).
///
/// Both modes produce byte-identical partitions; kBlocked is kept for the
/// differential harness and the scan ablation bench.
enum class GpuScanMode { kBlocked, kLookback };

}  // namespace gp
