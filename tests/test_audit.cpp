// Unit tests for src/core/audit: level parsing, the four phase-boundary
// invariant audits, the deadline watchdog, and the stored-field overload
// of validate_partition (DESIGN.md §3.5).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/audit.hpp"
#include "core/matching.hpp"
#include "gen/generators.hpp"
#include "serial/hem_matching.hpp"
#include "serial/rb_partition.hpp"
#include "util/rng.hpp"

namespace gp {
namespace {

TEST(AuditLevelParse, AcceptsTheThreeLevels) {
  EXPECT_EQ(parse_audit_level("off"), AuditLevel::kOff);
  EXPECT_EQ(parse_audit_level("phase"), AuditLevel::kPhase);
  EXPECT_EQ(parse_audit_level("paranoid"), AuditLevel::kParanoid);
}

TEST(AuditLevelParse, RejectsAnythingElse) {
  EXPECT_THROW((void)parse_audit_level(""), std::invalid_argument);
  EXPECT_THROW((void)parse_audit_level("ON"), std::invalid_argument);
  EXPECT_THROW((void)parse_audit_level("paranoia"), std::invalid_argument);
}

TEST(AuditLevelParse, NamesRoundTrip) {
  for (const auto level :
       {AuditLevel::kOff, AuditLevel::kPhase, AuditLevel::kParanoid}) {
    EXPECT_EQ(parse_audit_level(audit_level_name(level)), level);
  }
}

TEST(AuditCsr, PassesOnWellFormedGraph) {
  const auto g = delaunay_graph(500, 3);
  EXPECT_TRUE(audit_csr(g, AuditLevel::kPhase).ok());
}

TEST(AuditMatching, PassesOnRealMatching) {
  const auto g = delaunay_graph(500, 3);
  Rng rng(1);
  const auto m = hem_match_serial(g, rng, nullptr);
  EXPECT_TRUE(audit_matching(m.match, AuditLevel::kPhase).ok());
}

TEST(AuditMatching, DetectsBrokenInvolution) {
  std::vector<vid_t> match{1, 0, 3, 2};
  EXPECT_TRUE(audit_matching(match, AuditLevel::kPhase).ok());
  match[3] = 0;  // 3 -> 0 but 0 -> 1: not an involution
  const auto f = audit_matching(match, AuditLevel::kPhase);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.kind, AuditFailure::Kind::kMatching);
  EXPECT_FALSE(f.to_string().empty());
}

TEST(AuditMatching, DetectsOutOfRange) {
  const std::vector<vid_t> match{1, 0, 99, 3};
  EXPECT_FALSE(audit_matching(match, AuditLevel::kPhase).ok());
}

TEST(AuditContraction, PassesOnSerialReference) {
  const auto g = delaunay_graph(800, 5);
  Rng rng(2);
  const auto m = hem_match_serial(g, rng, nullptr);
  const auto coarse = contract_serial(g, m.match, m.cmap, m.n_coarse);
  EXPECT_TRUE(
      audit_contraction(g, coarse, m.match, m.cmap, AuditLevel::kParanoid)
          .ok());
}

TEST(AuditContraction, DetectsPerturbedCmap) {
  const auto g = delaunay_graph(800, 5);
  Rng rng(2);
  auto m = hem_match_serial(g, rng, nullptr);
  const auto coarse = contract_serial(g, m.match, m.cmap, m.n_coarse);
  // Redirect one fine vertex to a different (valid) coarse id: weight
  // sums and cmap consistency can no longer both hold.
  m.cmap[7] = (m.cmap[7] + 1) % m.n_coarse;
  const auto f =
      audit_contraction(g, coarse, m.match, m.cmap, AuditLevel::kPhase);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.kind, AuditFailure::Kind::kContraction);
}

TEST(AuditPartition, PassesOnRealPartition) {
  const auto g = delaunay_graph(800, 5);
  Rng rng(3);
  const auto p = recursive_bisection(g, 4, 0.05, rng, nullptr);
  const auto cut = edge_cut(g, p);
  EXPECT_TRUE(
      audit_partition(g, p, 4, 0.05, static_cast<std::int64_t>(cut),
                      AuditLevel::kPhase)
          .ok());
}

TEST(AuditPartition, DetectsOutOfRangeLabelBeforeMetricRecompute) {
  const auto g = delaunay_graph(800, 5);
  Rng rng(3);
  auto p = recursive_bisection(g, 4, 0.05, rng, nullptr);
  // A wildly out-of-range label must be reported as a range violation —
  // not crash the cut/balance recomputation it would otherwise index.
  p.where[11] = 1 << 20;
  const auto f = audit_partition(g, p, 4, 0.05, -1, AuditLevel::kPhase);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.kind, AuditFailure::Kind::kPartition);
}

TEST(AuditPartition, DetectsCutMismatch) {
  const auto g = delaunay_graph(800, 5);
  Rng rng(3);
  const auto p = recursive_bisection(g, 4, 0.05, rng, nullptr);
  const auto cut = edge_cut(g, p);
  const auto f = audit_partition(g, p, 4, /*eps=*/0.0,
                                 static_cast<std::int64_t>(cut) + 1,
                                 AuditLevel::kPhase);
  EXPECT_FALSE(f.ok());
}

TEST(AuditPartition, DetectsImbalance) {
  const auto g = delaunay_graph(800, 5);
  Partition p;
  p.k = 4;
  // Everything in part 0: balance ~4.0, far beyond any tolerance.
  p.where.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  const auto f = audit_partition(g, p, 4, 0.05, -1, AuditLevel::kPhase);
  EXPECT_FALSE(f.ok());
}

TEST(AuditPartition, ZeroEpsSkipsBalanceCheck) {
  const auto g = delaunay_graph(800, 5);
  Partition p;
  p.k = 4;
  p.where.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  EXPECT_TRUE(audit_partition(g, p, 4, /*eps=*/0.0, -1, AuditLevel::kPhase)
                  .ok());
}

TEST(Watchdog, DisabledByDefaultAndAtZeroBudget) {
  const Watchdog none;
  EXPECT_FALSE(none.enabled());
  EXPECT_FALSE(none.expired());
  const Watchdog zero(0.0);
  EXPECT_FALSE(zero.enabled());
  EXPECT_FALSE(zero.expired());
}

TEST(Watchdog, ExpiresAfterBudget) {
  const Watchdog w(1e-4);
  EXPECT_TRUE(w.enabled());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(w.expired());
  EXPECT_GT(w.elapsed_seconds(), 0.0);
}

TEST(Watchdog, GenerousBudgetDoesNotExpire) {
  const Watchdog w(3600.0);
  EXPECT_TRUE(w.enabled());
  EXPECT_FALSE(w.expired());
}

TEST(ValidatePartitionStoredFields, PassesWhenFieldsMatch) {
  const auto g = delaunay_graph(800, 5);
  Rng rng(4);
  const auto p = recursive_bisection(g, 4, 0.05, rng, nullptr);
  EXPECT_TRUE(
      validate_partition(g, p, edge_cut(g, p), partition_balance(g, p))
          .empty());
}

TEST(ValidatePartitionStoredFields, DetectsMetricDrift) {
  const auto g = delaunay_graph(800, 5);
  Rng rng(4);
  const auto p = recursive_bisection(g, 4, 0.05, rng, nullptr);
  const auto cut = edge_cut(g, p);
  const auto bal = partition_balance(g, p);
  EXPECT_FALSE(validate_partition(g, p, cut + 1, bal).empty());
  EXPECT_FALSE(validate_partition(g, p, cut, bal + 0.5).empty());
}

}  // namespace
}  // namespace gp
