// Tests for the pre-multilevel baselines: recursive coordinate bisection
// and spectral bisection — including the background's headline claim
// that the multilevel approach beats both on cut quality.
#include <gtest/gtest.h>

#include "baselines/rcb.hpp"
#include "baselines/spectral.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"

namespace gp {
namespace {

TEST(Rcb, BalancedValidPartition) {
  std::vector<Point2D> coords;
  const auto g = delaunay_graph(4000, 5, &coords);
  ASSERT_EQ(coords.size(), 4000u);
  const auto p = rcb_partition(g, coords, 8);
  EXPECT_TRUE(validate_partition(g, p).empty());
  EXPECT_LE(partition_balance(g, p), 1.1);
  for (const auto w : partition_weights(g, p)) EXPECT_GT(w, 0);
}

TEST(Rcb, GeometricPartsAreSpatiallyCompact) {
  // An RCB part of a uniform point set should have a bounding box far
  // smaller than the unit square.
  std::vector<Point2D> coords;
  const auto g = delaunay_graph(4000, 6, &coords);
  const auto p = rcb_partition(g, coords, 16);
  double area_sum = 0;
  for (part_t q = 0; q < 16; ++q) {
    double minx = 1e300, maxx = -1e300, miny = 1e300, maxy = -1e300;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (p.where[static_cast<std::size_t>(v)] != q) continue;
      minx = std::min(minx, coords[static_cast<std::size_t>(v)].x);
      maxx = std::max(maxx, coords[static_cast<std::size_t>(v)].x);
      miny = std::min(miny, coords[static_cast<std::size_t>(v)].y);
      maxy = std::max(maxy, coords[static_cast<std::size_t>(v)].y);
    }
    area_sum += (maxx - minx) * (maxy - miny);
  }
  // Perfect tiling sums to 1.0; allow slack for box overlap.
  EXPECT_LT(area_sum, 2.0);
}

TEST(Spectral, FiedlerVectorSeparatesAPathGraph) {
  // The Fiedler vector of a path is monotone (cosine profile): its sign
  // split is the exact middle cut.
  GraphBuilder b(20);
  for (vid_t v = 0; v + 1 < 20; ++v) b.add_edge(v, v + 1);
  const auto g = b.build();
  const auto f = fiedler_vector(g, {600, 1});
  // Monotone (up to global sign).
  const double sgn = (f[0] < f[19]) ? 1.0 : -1.0;
  for (vid_t v = 0; v + 1 < 20; ++v) {
    EXPECT_LE(sgn * f[static_cast<std::size_t>(v)],
              sgn * f[static_cast<std::size_t>(v) + 1] + 1e-6);
  }
  const auto p = spectral_bisection(g, {600, 1});
  EXPECT_EQ(edge_cut(g, p), 1);  // the optimal bisection of a path
}

TEST(Spectral, BisectsTwoCliquesAtTheBridge) {
  GraphBuilder b(16);
  for (vid_t v = 0; v < 8; ++v)
    for (vid_t u = v + 1; u < 8; ++u) b.add_edge(v, u);
  for (vid_t v = 8; v < 16; ++v)
    for (vid_t u = v + 1; u < 16; ++u) b.add_edge(v, u);
  b.add_edge(0, 8);
  const auto g = b.build();
  const auto p = spectral_bisection(g);
  EXPECT_EQ(edge_cut(g, p), 1);
}

TEST(Spectral, KWayValidAndBalanced) {
  const auto g = grid2d_graph(30, 30);
  const auto p = spectral_partition(g, 8);
  EXPECT_TRUE(validate_partition(g, p).empty());
  for (const auto w : partition_weights(g, p)) EXPECT_GT(w, 0);
  EXPECT_LE(partition_balance(g, p), 1.25);
}

TEST(Baselines, MultilevelBeatsGeometricAndSpectralOnCut) {
  // The paper's background: "Multilevel techniques for graph
  // partitioning show great improvements in the quality of partitions
  // and partitioning speed as compared to other techniques [4, 5]."
  std::vector<Point2D> coords;
  const auto g = delaunay_graph(6000, 9, &coords);
  PartitionOptions opts;
  opts.k = 16;
  const auto ml = make_serial_partitioner()->run(g, opts);
  const auto rcb = rcb_partition(g, coords, 16);
  const auto spec = spectral_partition(g, 16, {200, 1});
  EXPECT_LT(ml.cut, edge_cut(g, rcb));
  EXPECT_LT(ml.cut, edge_cut(g, spec));
}

}  // namespace
}  // namespace gp
