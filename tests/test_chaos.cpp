// Tests for src/chaos: campaign determinism, shrinker convergence, the
// mem-cap capacity squeeze, and the generated-spec grammar property.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/shrink.hpp"
#include "core/partition.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "hybrid/gp_partitioner.hpp"
#include "util/fault.hpp"

namespace gp {
namespace {

// ------------------------------------------------------------- determinism

TEST(Chaos, SameSeedSameLedger) {
  ChaosConfig cfg;
  cfg.seed = 42;
  cfg.specs = 12;
  cfg.systems = {"metis", "mt-metis", "gp-metis"};
  cfg.graph_n = 300;
  const ChaosReport a = chaos_campaign(cfg);
  const ChaosReport b = chaos_campaign(cfg);
  EXPECT_EQ(a.runs.size(), 36u);
  EXPECT_EQ(a.ledger(), b.ledger());  // byte-identical
  EXPECT_EQ(a.violations, 0u);
}

TEST(Chaos, DifferentSeedsDifferentSpecs) {
  // Not a hard guarantee for any single index, but across 20 indices two
  // seeds colliding on every spec would mean the generator ignores the
  // seed entirely.
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (chaos_generate_spec(1, i, 3) != chaos_generate_spec(2, i, 3))
      ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Chaos, GeneratedSpecsAlwaysParse) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    for (int i = 0; i < 200; ++i) {
      const std::string spec = chaos_generate_spec(seed, i, 4);
      ASSERT_FALSE(spec.empty());
      FaultPlan plan;
      ASSERT_NO_THROW(plan = FaultPlan::parse(spec))
          << "seed=" << seed << " i=" << i << " spec=" << spec;
      EXPECT_FALSE(plan.empty());
      // Round trip: printing and reparsing is the identity on the string.
      EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(),
                plan.to_string());
    }
  }
}

// --------------------------------------------------------------- shrinker

// Synthetic oracle: fails iff an alloc rule with at >= 4 AND any task rule
// are both present.  The planted haystack has three irrelevant clauses.
bool alloc4_and_task(const FaultPlan& p) {
  bool alloc_ge4 = false, has_task = false;
  for (const auto& r : p.rules) {
    if (r.site == FaultSite::kAlloc && r.at >= 4) alloc_ge4 = true;
    if (r.site == FaultSite::kTask) has_task = true;
  }
  return alloc_ge4 && has_task;
}

TEST(ChaosShrink, ConvergesToMinimalReproducer) {
  const auto initial = FaultPlan::parse(
      "kernel@1;alloc@7;flip:p=0.5;task@9;mem-cap=262144");
  const ShrinkResult s = shrink_fault_plan(initial, alloc4_and_task);
  EXPECT_TRUE(s.converged);
  EXPECT_EQ(s.spec, "alloc@4;task@0");
  EXPECT_TRUE(alloc4_and_task(s.plan));  // the minimum still reproduces
  EXPECT_LT(s.probes, 40);
}

TEST(ChaosShrink, NonReproducingInputIsFlagged) {
  const auto initial = FaultPlan::parse("kernel@1");
  const ShrinkResult s =
      shrink_fault_plan(initial, [](const FaultPlan&) { return false; });
  EXPECT_FALSE(s.converged);
  EXPECT_EQ(s.spec, "kernel@1");  // handed back unchanged
  EXPECT_EQ(s.probes, 1);
}

TEST(ChaosShrink, ScalarShrinkFindsExactBoundary) {
  // Oracle sensitive only to the kernel occurrence count: fails for
  // at >= 13.  Halving alone cannot land on 13; the step-down must.
  const auto initial = FaultPlan::parse("kernel@100;msg@5");
  const ShrinkResult s = shrink_fault_plan(initial, [](const FaultPlan& p) {
    for (const auto& r : p.rules) {
      if (r.site == FaultSite::kKernel && r.at >= 13) return true;
    }
    return false;
  });
  EXPECT_TRUE(s.converged);
  EXPECT_EQ(s.spec, "kernel@13");
}

TEST(ChaosShrink, ProbabilityHalvesTowardFloor) {
  const auto initial = FaultPlan::parse("flip:p=0.5");
  const ShrinkResult s = shrink_fault_plan(
      initial, [](const FaultPlan& p) { return !p.rules.empty(); });
  EXPECT_TRUE(s.converged);
  ASSERT_EQ(s.plan.rules.size(), 1u);
  // Any probability still fails, so the shrinker halves to the floor.
  EXPECT_LT(s.plan.rules[0].p, 0.002);
  EXPECT_GE(s.plan.rules[0].p, 0.0009);
}

TEST(ChaosShrink, DeviceLossTriggerShrinks) {
  const auto initial = FaultPlan::parse("device0:lost@64;alloc@3");
  const ShrinkResult s = shrink_fault_plan(initial, [](const FaultPlan& p) {
    return !p.device_losses.empty() && p.device_losses[0].after_ops >= 10;
  });
  EXPECT_TRUE(s.converged);
  EXPECT_EQ(s.spec, "device0:lost@10");
}

// ---------------------------------------------------------- mem-cap squeeze

TEST(Chaos, MemCapSqueezeForcesPoolOomAndRecovers) {
  // A cap big enough to admit level 0 but too small for the V-cycle's
  // working set: the buffer pool hits the injected OOM mid-run and the
  // ladder (handoff raise -> CPU fallback) must still produce a valid
  // partition with a degradation trail.
  const CsrGraph g = delaunay_graph(4000, /*seed=*/3);
  PartitionOptions opts;
  opts.k = 4;
  opts.threads = 1;
  opts.gpu_host_workers = 1;
  opts.gpu_cpu_threshold = 500;
  opts.fault_spec = "mem-cap=300000";
  opts.fault_seed = 9;
  const PartitionResult r = gp_metis_run(g, opts, nullptr);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_TRUE(r.health.degraded);
  EXPECT_GE(r.health.faults_injected, 1u);
  bool saw_cap = false;
  for (const auto& e : r.health.events) {
    if (e.find("mem-cap") != std::string::npos) saw_cap = true;
  }
  EXPECT_TRUE(saw_cap) << "expected a mem-cap event in the health trail";
  EXPECT_EQ(r.exec.pool_leaked_blocks, 0);
}

TEST(Chaos, MemCapViaCampaignRunner) {
  ChaosConfig cfg;
  cfg.graph_n = 2000;
  const ChaosRun run = chaos_run_spec(chaos_make_graph(cfg), cfg, "gp-metis",
                                      "mem-cap=200000", /*fault_seed=*/5);
  EXPECT_TRUE(run.verdict == ChaosVerdict::kValid ||
              run.verdict == ChaosVerdict::kDegraded ||
              run.verdict == ChaosVerdict::kTypedError)
      << "oracle violation: " << run.detail;
  EXPECT_EQ(run.leaked_blocks, 0);
}

// ------------------------------------------------------------------ oracle

TEST(Chaos, VerdictNamesAreStable) {
  // The ledger is diffed byte-for-byte by the determinism gate; renaming
  // a verdict silently breaks recorded ledgers.
  EXPECT_STREQ(chaos_verdict_name(ChaosVerdict::kValid), "valid");
  EXPECT_STREQ(chaos_verdict_name(ChaosVerdict::kDegraded), "degraded");
  EXPECT_STREQ(chaos_verdict_name(ChaosVerdict::kTypedError), "typed-error");
  EXPECT_STREQ(chaos_verdict_name(ChaosVerdict::kViolation), "VIOLATION");
}

TEST(Chaos, CleanSpecYieldsValidVerdict) {
  ChaosConfig cfg;
  cfg.graph_n = 300;
  const ChaosRun run = chaos_run_spec(chaos_make_graph(cfg), cfg, "metis",
                                      "", /*fault_seed=*/1);
  EXPECT_EQ(run.verdict, ChaosVerdict::kValid);
  EXPECT_GT(run.cut, 0);
}

}  // namespace
}  // namespace gp
