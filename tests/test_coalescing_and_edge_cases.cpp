// Remaining edge-case coverage: coalescing analyzer corner cases, CSR
// memory accounting, graph ops on empty inputs, prefix sums of wgt_t,
// device buffer with zero elements, METIS format torture cases.
#include <gtest/gtest.h>

#include <sstream>

#include "core/graph_ops.hpp"
#include "gen/generators.hpp"
#include "gpu/coalescing.hpp"
#include "gpu/device_buffer.hpp"
#include "gpu/scan.hpp"
#include "io/metis_io.hpp"
#include "util/prefix_sum.hpp"

namespace gp {
namespace {

TEST(Coalescing, EmptyAccessList) {
  const auto s = analyze_coalescing({});
  EXPECT_EQ(s.warps, 0u);
  EXPECT_EQ(s.transactions, 0u);
  EXPECT_DOUBLE_EQ(s.transactions_per_warp(), 0.0);
}

TEST(Coalescing, CustomWarpAndTransactionSizes) {
  // 8-thread warps, 32-byte transactions: 8 consecutive 4-byte loads span
  // exactly one 32-byte block.
  std::vector<std::uint64_t> addr(8);
  for (std::size_t i = 0; i < 8; ++i) addr[i] = i * 4;
  const auto s = analyze_coalescing(addr, 8, 32);
  EXPECT_EQ(s.warps, 1u);
  EXPECT_EQ(s.transactions, 1u);
}

TEST(Coalescing, MisalignedAccessStraddlesBlocks) {
  // 32 consecutive ints starting at byte 64 straddle two 128-byte blocks.
  std::vector<std::uint64_t> addr(32);
  for (std::size_t i = 0; i < 32; ++i) addr[i] = 64 + i * 4;
  const auto s = analyze_coalescing(addr);
  EXPECT_EQ(s.transactions, 2u);
}

TEST(CsrGraph, MemoryBytesMatchesArraySizes) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const auto g = b.build();
  const std::size_t expect = 4 * sizeof(eid_t)        // adjp: n+1
                             + 4 * sizeof(vid_t)      // adjncy: 2|E|
                             + 4 * sizeof(wgt_t)      // adjwgt
                             + 3 * sizeof(wgt_t);     // vwgt
  EXPECT_EQ(g.memory_bytes(), expect);
}

TEST(GraphOps, EmptyGraphOps) {
  CsrGraph g({0}, {}, {}, {});
  EXPECT_EQ(count_components(g), 0);
  EXPECT_TRUE(is_connected(g));
  const auto s = degree_stats(g);
  EXPECT_EQ(s.max_degree, 0);
}

TEST(GraphOps, PermuteIdentity) {
  const auto g = delaunay_graph(300, 1);
  std::vector<vid_t> id(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) id[static_cast<std::size_t>(v)] = v;
  const auto h = permute(g, id);
  EXPECT_EQ(h.adjp(), g.adjp());
  EXPECT_EQ(h.adjncy(), g.adjncy());
}

TEST(PrefixSum, WorksForWeightType) {
  std::vector<wgt_t> a = {1'000'000'000'000LL, 2, 3};
  inclusive_scan_serial(a);
  EXPECT_EQ(a[2], 1'000'000'000'005LL);  // no overflow at wgt_t width
}

TEST(DeviceBuffer, ZeroElements) {
  Device dev;
  DeviceBuffer<int> empty(dev, 0, "e");
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  const auto v = empty.d2h_vector();
  EXPECT_TRUE(v.empty());
}

TEST(DeviceScan, SingleElement) {
  Device dev;
  auto buf = to_device(dev, std::vector<std::int64_t>{41}, "one");
  EXPECT_EQ(device_inclusive_scan(dev, buf), 41);
  EXPECT_EQ(buf.d2h_vector()[0], 41);
}

TEST(MetisIo, SkipsCommentAndBlankLines) {
  std::istringstream in(
      "% header comment\n"
      "\n"
      "3 2\n"
      "% mid comment\n"
      "2\n"
      "1 3\n"
      "\n"
      "2\n");
  const auto g = read_metis_graph(in);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(MetisIo, IsolatedVertexLines) {
  // Vertex 2 has no neighbours: its line is empty but must be consumed.
  std::istringstream in("3 1\n2\n1\n \n");
  // Note: a line holding a single space is "blank" and skipped — so this
  // stream is one data line short and must be rejected, which guards
  // against silently mis-shifting adjacency lines.
  EXPECT_THROW(read_metis_graph(in), std::invalid_argument);
}

TEST(MetisIo, WeightedRoundTripThroughFile) {
  GraphBuilder b(4);
  b.set_vertex_weight(2, 9);
  b.add_edge(0, 1, 4);
  b.add_edge(2, 3, 2);
  const auto g = b.build();
  const std::string path = "/tmp/gp_weighted_roundtrip.graph";
  write_metis_graph_file(path, g);
  const auto h = read_metis_graph_file(path);
  EXPECT_EQ(h.vwgt(), g.vwgt());
  EXPECT_EQ(h.adjwgt(), g.adjwgt());
}

}  // namespace
}  // namespace gp
