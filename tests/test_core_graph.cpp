// Unit tests for src/core: CSR graph, builder, partition metrics, graph ops,
// matching/cmap/contraction reference implementations.
#include <gtest/gtest.h>

#include <vector>

#include "core/csr_graph.hpp"
#include "core/graph_ops.hpp"
#include "core/matching.hpp"
#include "core/partition.hpp"
#include "util/rng.hpp"

namespace gp {
namespace {

/// Path graph 0-1-2-...-(n-1), unit weights.
CsrGraph make_path(vid_t n) {
  GraphBuilder b(n);
  for (vid_t v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

/// Complete graph K_n.
CsrGraph make_complete(vid_t n) {
  GraphBuilder b(n);
  for (vid_t u = 0; u < n; ++u)
    for (vid_t v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

TEST(GraphBuilder, BuildsValidPath) {
  const auto g = make_path(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.num_arcs(), 8);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
}

TEST(GraphBuilder, MergesDuplicateEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 3);  // duplicate, reversed
  b.add_edge(1, 2, 1);
  const auto g = b.build();
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.neighbor_weights(0)[0], 5);  // 2 + 3 merged
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0, 7);
  b.add_edge(0, 1, 1);
  const auto g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.validate().empty());
}

TEST(GraphBuilder, VertexWeights) {
  GraphBuilder b(2);
  b.set_vertex_weight(0, 10);
  b.add_edge(0, 1);
  const auto g = b.build();
  EXPECT_EQ(g.vertex_weight(0), 10);
  EXPECT_EQ(g.vertex_weight(1), 1);
  EXPECT_EQ(g.total_vertex_weight(), 11);
}

TEST(CsrGraph, ValidateCatchesAsymmetry) {
  // Hand-built broken graph: arc 0->1 but no 1->0.
  CsrGraph g({0, 1, 1}, {1}, {1}, {1, 1});
  EXPECT_FALSE(g.validate().empty());
}

TEST(CsrGraph, ValidateCatchesOutOfRange) {
  CsrGraph g({0, 1, 2}, {5, 0}, {1, 1}, {1, 1});
  EXPECT_FALSE(g.validate().empty());
}

TEST(CsrGraph, EmptyGraphIsValid) {
  CsrGraph g({0}, {}, {}, {});
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.num_vertices(), 0);
}

TEST(PartitionMetrics, EdgeCutOnPath) {
  const auto g = make_path(4);  // edges {0,1},{1,2},{2,3}
  Partition p{2, {0, 0, 1, 1}};
  EXPECT_EQ(edge_cut(g, p), 1);
  Partition q{2, {0, 1, 0, 1}};
  EXPECT_EQ(edge_cut(g, q), 3);
}

TEST(PartitionMetrics, WeightsAndBalance) {
  const auto g = make_path(4);
  Partition p{2, {0, 0, 1, 1}};
  const auto w = partition_weights(g, p);
  EXPECT_EQ(w[0], 2);
  EXPECT_EQ(w[1], 2);
  EXPECT_DOUBLE_EQ(partition_balance(g, p), 1.0);
  Partition q{2, {0, 0, 0, 1}};
  EXPECT_DOUBLE_EQ(partition_balance(g, q), 1.5);
}

TEST(PartitionMetrics, CommunicationVolumeAndBoundary) {
  const auto g = make_path(4);
  Partition p{2, {0, 0, 1, 1}};
  EXPECT_EQ(communication_volume(g, p), 2);  // vertices 1 and 2
  EXPECT_EQ(boundary_size(g, p), 2);
}

TEST(PartitionMetrics, ValidatePartition) {
  const auto g = make_path(3);
  Partition ok{2, {0, 1, 1}};
  EXPECT_TRUE(validate_partition(g, ok).empty());
  Partition bad_size{2, {0, 1}};
  EXPECT_FALSE(validate_partition(g, bad_size).empty());
  Partition bad_range{2, {0, 1, 2}};
  EXPECT_FALSE(validate_partition(g, bad_range).empty());
}

TEST(PartitionMetrics, RepairEmptyParts) {
  const auto g = make_path(6);
  Partition p{3, {0, 0, 0, 0, 0, 0}};  // parts 1 and 2 empty
  const int repairs = repair_empty_parts(g, p);
  EXPECT_EQ(repairs, 2);
  EXPECT_TRUE(validate_partition(g, p).empty());
  auto pw = partition_weights(g, p);
  for (const auto w : pw) EXPECT_GT(w, 0);
}

TEST(PartitionMetrics, RepairPrefersLooseVertices) {
  // Path 0-1-2-3 plus isolated 4: the isolated vertex (zero internal
  // weight) is the cheapest donor into the empty part.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const auto g = b.build();
  Partition p{2, {0, 0, 0, 0, 0}};
  EXPECT_EQ(repair_empty_parts(g, p), 1);
  EXPECT_EQ(p.where[4], 1);  // the isolated vertex moved
  EXPECT_EQ(edge_cut(g, p), 0);
}

TEST(PartitionMetrics, RepairNoopWhenAllPopulated) {
  const auto g = make_path(4);
  Partition p{2, {0, 0, 1, 1}};
  EXPECT_EQ(repair_empty_parts(g, p), 0);
  EXPECT_EQ(p.where, (std::vector<part_t>{0, 0, 1, 1}));
}

TEST(PartitionMetrics, MaxMinPartWeight) {
  EXPECT_EQ(max_part_weight(100, 4, 0.03), 26);  // ceil(25 * 1.03)
  EXPECT_EQ(min_part_weight(100, 4, 0.03), 24);  // floor(25 * 0.97)
}

TEST(GraphOps, Components) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto g = b.build();
  EXPECT_EQ(count_components(g), 3);  // {0,1} {2,3} {4}
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(make_path(10)));
}

TEST(GraphOps, PermutePreservesStructure) {
  const auto g = make_path(4);
  std::vector<vid_t> perm = {3, 2, 1, 0};  // reverse
  const auto h = permute(g, perm);
  EXPECT_TRUE(h.validate().empty()) << h.validate();
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Old edge {0,1} becomes {3,2}.
  bool found = false;
  for (const vid_t u : h.neighbors(3)) found |= (u == 2);
  EXPECT_TRUE(found);
}

TEST(GraphOps, InducedSubgraph) {
  const auto g = make_complete(4);
  std::vector<char> mask = {1, 1, 1, 0};
  std::vector<vid_t> map;
  const auto h = induced_subgraph(g, mask, &map);
  EXPECT_TRUE(h.validate().empty());
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_edges(), 3);  // K3
  EXPECT_EQ(map[3], kInvalidVid);
}

TEST(GraphOps, ExtractPart) {
  const auto g = make_path(6);
  Partition p{2, {0, 0, 0, 1, 1, 1}};
  const auto h = extract_part(g, p, 1, nullptr);
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_edges(), 2);
}

TEST(GraphOps, DegreeStats) {
  const auto s = degree_stats(make_path(4));
  EXPECT_EQ(s.min_degree, 1);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.5);
}

// --- matching / cmap / contraction reference ---

TEST(Matching, ValidateMatch) {
  EXPECT_TRUE(validate_match({1, 0, 2}).empty());      // pair + self
  EXPECT_FALSE(validate_match({1, 2, 0}).empty());     // 3-cycle, not involutive
  EXPECT_FALSE(validate_match({5, 0}).empty());        // out of range
}

TEST(Matching, BuildCmapSerial) {
  // match: (0,1) pair, 2 self, (3,4) pair.
  const std::vector<vid_t> match = {1, 0, 2, 4, 3};
  const auto [cmap, nc] = build_cmap_serial(match);
  EXPECT_EQ(nc, 3);
  EXPECT_EQ(cmap, (std::vector<vid_t>{0, 0, 1, 2, 2}));
  EXPECT_TRUE(validate_cmap(match, cmap, nc).empty());
}

TEST(Matching, ValidateCmapCatchesBadLabelOrder) {
  const std::vector<vid_t> match = {1, 0, 2};
  // Leaders 0 and 2 must get labels 0 and 1; swap them.
  EXPECT_FALSE(validate_cmap(match, {1, 1, 0}, 2).empty());
}

TEST(Contraction, PathPairs) {
  const auto g = make_path(4);
  const std::vector<vid_t> match = {1, 0, 3, 2};
  const auto [cmap, nc] = build_cmap_serial(match);
  const auto c = contract_serial(g, match, cmap, nc);
  EXPECT_TRUE(c.validate().empty()) << c.validate();
  EXPECT_EQ(c.num_vertices(), 2);
  EXPECT_EQ(c.num_edges(), 1);
  EXPECT_EQ(c.vertex_weight(0), 2);
  EXPECT_EQ(c.vertex_weight(1), 2);
  // The edge {1,2} survives with weight 1.
  EXPECT_EQ(c.neighbor_weights(0)[0], 1);
}

TEST(Contraction, MergesParallelCoarseArcs) {
  // Square 0-1-2-3-0 plus diagonal-ish weights; match (0,1) and (2,3):
  // coarse vertices A={0,1}, B={2,3}; fine edges 1-2 and 3-0 both become
  // A-B and must merge with summed weight.
  GraphBuilder b(4);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 3, 7);
  b.add_edge(3, 0, 4);
  const auto g = b.build();
  const std::vector<vid_t> match = {1, 0, 3, 2};
  const auto [cmap, nc] = build_cmap_serial(match);
  const auto c = contract_serial(g, match, cmap, nc);
  EXPECT_EQ(c.num_vertices(), 2);
  EXPECT_EQ(c.num_edges(), 1);
  EXPECT_EQ(c.neighbor_weights(0)[0], 6);  // 2 + 4
}

TEST(Contraction, ConservesVertexWeight) {
  Rng r(5);
  GraphBuilder b(50);
  for (int i = 0; i < 150; ++i) {
    const auto u = static_cast<vid_t>(r.next_below(50));
    const auto v = static_cast<vid_t>(r.next_below(50));
    if (u != v) b.add_edge(u, v, 1 + static_cast<wgt_t>(r.next_below(5)));
  }
  const auto g = b.build();
  // Greedy valid matching: pair consecutive unmatched neighbours.
  std::vector<vid_t> match(50);
  for (vid_t v = 0; v < 50; ++v) match[static_cast<std::size_t>(v)] = v;
  for (vid_t v = 0; v < 50; ++v) {
    if (match[static_cast<std::size_t>(v)] != v) continue;
    for (const vid_t u : g.neighbors(v)) {
      if (u > v && match[static_cast<std::size_t>(u)] == u) {
        match[static_cast<std::size_t>(v)] = u;
        match[static_cast<std::size_t>(u)] = v;
        break;
      }
    }
  }
  ASSERT_TRUE(validate_match(match).empty());
  const auto [cmap, nc] = build_cmap_serial(match);
  const auto c = contract_serial(g, match, cmap, nc);
  EXPECT_TRUE(c.validate().empty()) << c.validate();
  EXPECT_EQ(c.total_vertex_weight(), g.total_vertex_weight());
  // Total arc weight shrinks exactly by twice the matched-edge weight.
  wgt_t matched_w2 = 0;
  for (vid_t v = 0; v < 50; ++v) {
    const vid_t m = match[static_cast<std::size_t>(v)];
    if (m == v) continue;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == m) matched_w2 += wts[i];
    }
  }
  EXPECT_EQ(c.total_arc_weight(), g.total_arc_weight() - matched_w2);
}

TEST(Contraction, ProjectPartitionRoundTrip) {
  const auto g = make_path(6);
  const std::vector<vid_t> match = {1, 0, 3, 2, 5, 4};
  const auto [cmap, nc] = build_cmap_serial(match);
  const std::vector<part_t> coarse_where = {0, 1, 0};
  const auto fine = project_partition(cmap, coarse_where);
  EXPECT_EQ(fine, (std::vector<part_t>{0, 0, 1, 1, 0, 0}));
}

}  // namespace
}  // namespace gp
