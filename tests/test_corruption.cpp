// Silent-corruption defense, end to end (DESIGN.md §3.5): for every
// partitioning system, a seeded corruption plan must (a) terminate with a
// structurally valid partition, (b) leave a corruption -> audit-failure ->
// rollback chain in RunHealth, and (c) replay byte-identically for the
// same (fault_seed, fault_spec) — including the event trail.
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "hybrid/gp_partitioner.hpp"
#include "hybrid/multi_gpu_partitioner.hpp"
#include "mt/mt_partitioner.hpp"
#include "par/parmetis_partitioner.hpp"
#include "serial/metis_partitioner.hpp"
#include "util/fault.hpp"

namespace gp {
namespace {

bool has_event_containing(const RunHealth& h, const std::string& needle) {
  for (const auto& e : h.events) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

PartitionOptions corruption_opts() {
  PartitionOptions opts;
  opts.k = 4;
  opts.threads = 1;          // bit-deterministic shared-memory phases
  opts.gpu_host_workers = 1; // bit-deterministic kernels
  opts.audit_level = AuditLevel::kPhase;
  opts.fault_seed = 17;
  return opts;
}

// ------------------------------------------------------------- serial

TEST(CorruptionSerial, CmapPerturbationIsCaughtRolledBackAndDeterministic) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = corruption_opts();
  opts.fault_spec = "cmap@0";
  const auto r0 = SerialMetisPartitioner{}.run(g, opts);
  const auto r1 = SerialMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r0.partition, r0.cut, r0.balance).empty());
  EXPECT_EQ(r0.health.corruptions_injected, 1u);
  EXPECT_GE(r0.health.audits_failed, 1u);
  EXPECT_GE(r0.health.rollbacks, 1u);
  EXPECT_TRUE(r0.health.degraded);
  EXPECT_TRUE(has_event_containing(r0.health, "audit:"));
  EXPECT_TRUE(has_event_containing(r0.health, "rollback:"));
  // Byte-identical replay: partition, counters, and the event trail.
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_EQ(r0.health, r1.health);
  EXPECT_EQ(r0.cut, r1.cut);
}

TEST(CorruptionSerial, WithoutAuditsTheCorruptionGoesUndetected) {
  // The control experiment: the same plan at audit off terminates (the
  // cmap perturbation stays in-range by construction) but nothing fires.
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = corruption_opts();
  opts.audit_level = AuditLevel::kOff;
  opts.fault_spec = "cmap@0";
  const auto r = SerialMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_EQ(r.health.corruptions_injected, 1u);
  EXPECT_EQ(r.health.audits_failed, 0u);
  EXPECT_EQ(r.health.rollbacks, 0u);
}

TEST(CorruptionSerial, AuditsAloneDoNotChangeThePartition) {
  // Audits observe, never steer: with no faults, phase-level auditing
  // must reproduce the audit-off partition bit for bit.
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions off = corruption_opts();
  off.audit_level = AuditLevel::kOff;
  PartitionOptions phase = corruption_opts();
  const auto r_off = SerialMetisPartitioner{}.run(g, off);
  const auto r_phase = SerialMetisPartitioner{}.run(g, phase);
  EXPECT_EQ(r_off.partition.where, r_phase.partition.where);
  EXPECT_GT(r_phase.health.audits_run, 0u);
  EXPECT_EQ(r_phase.health.audits_failed, 0u);
  EXPECT_FALSE(r_phase.health.degraded);
}

// ------------------------------------------------------------ mt-metis

TEST(CorruptionMt, CmapPerturbationIsCaughtRolledBackAndDeterministic) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = corruption_opts();
  opts.fault_spec = "cmap@0";
  const auto r0 = MtMetisPartitioner{}.run(g, opts);
  const auto r1 = MtMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r0.partition, r0.cut, r0.balance).empty());
  EXPECT_EQ(r0.health.corruptions_injected, 1u);
  EXPECT_GE(r0.health.audits_failed, 1u);
  EXPECT_GE(r0.health.rollbacks, 1u);
  EXPECT_TRUE(r0.health.degraded);
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_EQ(r0.health, r1.health);
}

TEST(CorruptionMt, ProbabilisticCmapStormStillTerminatesValid) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = corruption_opts();
  opts.fault_spec = "cmap:p=0.5";
  const auto r0 = MtMetisPartitioner{}.run(g, opts);
  const auto r1 = MtMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r0.partition, r0.cut, r0.balance).empty());
  EXPECT_GT(r0.health.corruptions_injected, 0u);
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_EQ(r0.health, r1.health);
}

// ------------------------------------------------------------- gp-metis

TEST(CorruptionGp, TransferFlipIsCaughtRolledBackAndDeterministic) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = corruption_opts();
  opts.gpu_cpu_threshold = 500;
  opts.fault_spec = "flip@1";  // second payload-carrying device transfer
  const auto r0 = gp_metis_run(g, opts, nullptr);
  const auto r1 = gp_metis_run(g, opts, nullptr);
  EXPECT_TRUE(validate_partition(g, r0.partition, r0.cut, r0.balance).empty());
  EXPECT_EQ(r0.health.corruptions_injected, 1u);
  EXPECT_GE(r0.health.audits_failed, 1u);
  EXPECT_TRUE(r0.health.degraded);
  EXPECT_TRUE(has_event_containing(r0.health, "audit:"));
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_EQ(r0.health, r1.health);
}

TEST(CorruptionGp, FlipStormAcrossSeedsAlwaysTerminatesValid) {
  // Acceptance shape: probabilistic flips + phase audits.  Every seed
  // must end in a valid partition, by recovery or by clean luck.
  const auto g = delaunay_graph(4000, 3);
  for (const std::uint64_t fs : {1u, 2u, 3u, 4u, 5u}) {
    PartitionOptions opts = corruption_opts();
    opts.gpu_cpu_threshold = 500;
    opts.fault_spec = "flip:p=0.05";
    opts.fault_seed = fs;
    const auto r = gp_metis_run(g, opts, nullptr);
    EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty())
        << "fault_seed " << fs;
    if (r.health.audits_failed > 0) {
      EXPECT_TRUE(has_event_containing(r.health, "audit:")) << fs;
      EXPECT_TRUE(r.health.degraded) << fs;
    }
  }
}

TEST(CorruptionGp, EscalationReachesCpuFallbackUnderSaturation) {
  // Every device transfer corrupted: no GPU attempt can pass its audits,
  // so the ladder must walk down to the transfer-free pure-CPU rung and
  // emerge with a valid partition.
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = corruption_opts();
  opts.gpu_cpu_threshold = 500;
  opts.fault_spec = "flip:p=1.0";
  const auto r0 = gp_metis_run(g, opts, nullptr);
  const auto r1 = gp_metis_run(g, opts, nullptr);
  EXPECT_TRUE(validate_partition(g, r0.partition, r0.cut, r0.balance).empty());
  EXPECT_TRUE(r0.health.degraded);
  EXPECT_GE(r0.health.fallbacks, 1u);
  EXPECT_GE(r0.health.audits_failed, 1u);
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_EQ(r0.health, r1.health);
}

// -------------------------------------------------------- gp-metis-multi

TEST(CorruptionMultiGpu, TransferFlipIsCaughtAndDeterministic) {
  const auto g = delaunay_graph(6000, 5);
  PartitionOptions opts = corruption_opts();
  opts.gpu_devices = 2;
  opts.gpu_cpu_threshold = 500;
  opts.fault_spec = "flip@2";
  const auto r0 = multi_gpu_run(g, opts, nullptr);
  const auto r1 = multi_gpu_run(g, opts, nullptr);
  EXPECT_TRUE(validate_partition(g, r0.partition, r0.cut, r0.balance).empty());
  EXPECT_EQ(r0.health.corruptions_injected, 1u);
  EXPECT_GE(r0.health.audits_failed, 1u);
  EXPECT_TRUE(r0.health.degraded);
  EXPECT_GE(r0.health.rollbacks, 1u);
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_EQ(r0.health, r1.health);
}

TEST(CorruptionMultiGpu, FlipSaturationDegradesToCpuThenTerminates) {
  const auto g = delaunay_graph(6000, 5);
  PartitionOptions opts = corruption_opts();
  opts.gpu_devices = 2;
  opts.gpu_cpu_threshold = 500;
  opts.fault_spec = "flip:p=1.0";
  const auto r = multi_gpu_run(g, opts, nullptr);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_TRUE(r.health.degraded);
  EXPECT_GE(r.health.fallbacks, 1u);
}

// --------------------------------------------------------------- parmetis

TEST(CorruptionParMetis, GarbledPayloadTerminatesValidAndAccountably) {
  // Rank compute races by design (shared-address-space matching), so the
  // partition vector is not compared across runs; the injection schedule
  // and final validity are.
  const auto g = delaunay_graph(6000, 11);
  PartitionOptions opts = corruption_opts();
  opts.ranks = 4;
  opts.fault_spec = "payload@2";
  const auto r0 = ParMetisPartitioner{}.run(g, opts);
  const auto r1 = ParMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r0.partition, r0.cut, r0.balance).empty());
  EXPECT_TRUE(validate_partition(g, r1.partition, r1.cut, r1.balance).empty());
  EXPECT_EQ(r0.health.corruptions_injected, 1u);
  EXPECT_EQ(r1.health.corruptions_injected, 1u);
}

TEST(CorruptionParMetis, PayloadStormIsHealedOrEscalated) {
  const auto g = delaunay_graph(6000, 11);
  PartitionOptions opts = corruption_opts();
  opts.ranks = 4;
  opts.fault_spec = "payload:p=0.3";
  const auto r = ParMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_GT(r.health.corruptions_injected, 0u);
  // Every corrupted record is accounted for: discarded at the receive
  // bounds checks, healed by loss recovery, or escalated via an audit.
  EXPECT_TRUE(r.health.payload_discards > 0 || r.health.audits_failed > 0 ||
              r.health.match_repairs > 0 || r.health.messages_resent > 0);
}

// --------------------------------------------------------------- watchdog

TEST(Watchdog, ExpiredBudgetShedsRefinementButStaysValid) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = corruption_opts();
  opts.audit_level = AuditLevel::kOff;
  opts.time_budget_seconds = 1e-9;  // expired before the first phase ends
  const auto r = SerialMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_TRUE(r.health.degraded);
  EXPECT_TRUE(has_event_containing(r.health, "watchdog:"));
}

TEST(Watchdog, GenerousBudgetChangesNothing) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = corruption_opts();
  opts.audit_level = AuditLevel::kOff;
  const auto r0 = SerialMetisPartitioner{}.run(g, opts);
  opts.time_budget_seconds = 3600.0;
  const auto r1 = SerialMetisPartitioner{}.run(g, opts);
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_EQ(r0.health, r1.health);
}

}  // namespace
}  // namespace gp
