// Cross-system differential harness (ISSUE 5): every system partitions
// the same (graph, seed) matrix under phase-level invariant audits, and
// the results are compared against the serial Metis baseline.  A system
// whose refactor silently breaks quality, balance, or the phase/model
// bookkeeping fails here even if its own unit tests still pass.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"

namespace gp {
namespace {

struct DiffCase {
  const char* graph;
  double scale;
  std::uint64_t graph_seed;
  /// Extra imbalance envelope on top of eps + one-vertex granularity.
  /// The refiners are gain-driven with no dedicated rebalance pass (the
  /// Metis-faithful simplification), so on low-connectivity graphs a bad
  /// coarsest-level roll can leave a coarse-vertex-granularity overshoot
  /// that refinement has no gain incentive to undo.  Mesh-like graphs get
  /// no slack: there the window is always met and a regression must fail.
  double balance_slack;
};

const DiffCase kCases[] = {
    {"ldoor", 0.002, 3, 0.0},       // FEM slab, heavy coarsening
    {"delaunay", 0.002, 3, 0.0},    // planar-ish triangulation
    {"usa-roads", 0.0005, 5, 0.05}, // low-degree road network
};

const std::uint64_t kSeeds[] = {1, 2};

PartitionOptions base_options(std::uint64_t seed) {
  PartitionOptions opts;
  opts.k = 8;
  opts.eps = 0.03;
  opts.seed = seed;
  opts.threads = 4;
  opts.ranks = 4;
  opts.gpu_host_workers = 1;      // deterministic device execution
  opts.gpu_cpu_threshold = 1024;  // small graphs still exercise GPU levels
  opts.audit_level = AuditLevel::kPhase;
  return opts;
}

/// Shared checks every system's result must satisfy on every input.
void check_result(const CsrGraph& g, const PartitionOptions& opts,
                  const std::string& system, const PartitionResult& r,
                  double balance_slack) {
  SCOPED_TRACE(system);
  const std::string invalid = validate_partition(g, r.partition);
  EXPECT_TRUE(invalid.empty()) << invalid;
  EXPECT_EQ(r.cut, edge_cut(g, r.partition))
      << "reported cut disagrees with the partition";
  EXPECT_NEAR(r.balance, partition_balance(g, r.partition), 1e-9);
  // eps plus one-vertex integer granularity: with unit weights and
  // total/k fractional, the best integral max-part can already sit one
  // vertex above the real-valued bound (e.g. n=1500, k=8: ideal 187.5).
  wgt_t max_vwgt = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
  }
  const double granularity = static_cast<double>(opts.k) *
                             static_cast<double>(max_vwgt) /
                             static_cast<double>(g.total_vertex_weight());
  EXPECT_LE(r.balance, 1.0 + opts.eps + granularity + balance_slack + 1e-9)
      << "imbalance exceeds the eps tolerance";
  // The per-phase breakdown must tile the modeled total exactly — a phase
  // that double-charges (or forgets) ledger entries breaks this.
  EXPECT_NEAR(r.phases.total(), r.modeled_seconds,
              1e-9 * std::max(1.0, r.modeled_seconds))
      << "phase rows do not sum to modeled_seconds";
  EXPECT_FALSE(r.health.degraded)
      << "phase audits forced a degraded path on a healthy run";
  EXPECT_GT(r.modeled_seconds, 0.0);
}

TEST(Differential, AllSystemsAgreeWithinQualityEnvelope) {
  struct SystemEntry {
    const char* label;
    std::unique_ptr<Partitioner> p;
  };
  SystemEntry systems[] = {
      {"mt-metis", make_mt_partitioner()},
      {"parmetis", make_par_partitioner()},
      {"gp-metis", make_hybrid_partitioner()},
  };
  const auto serial = make_serial_partitioner();

  for (const DiffCase& c : kCases) {
    const CsrGraph g = make_paper_graph(c.graph, c.scale, c.graph_seed);
    SCOPED_TRACE(std::string(c.graph) + " n=" +
                 std::to_string(g.num_vertices()));
    for (const std::uint64_t seed : kSeeds) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      const PartitionOptions opts = base_options(seed);

      const PartitionResult base = serial->run(g, opts);
      check_result(g, opts, "metis", base, c.balance_slack);
      ASSERT_GT(base.cut, 0);

      for (auto& s : systems) {
        const PartitionResult r = s.p->run(g, opts);
        check_result(g, opts, s.label, r, c.balance_slack);
        // Parallel systems trade quality for speed, but only so far: a
        // cut beyond 2x serial means a broken algorithm, not a tradeoff.
        EXPECT_LE(r.cut, 2 * base.cut)
            << s.label << " cut " << r.cut << " vs serial " << base.cut;
      }
    }
  }
}

TEST(Differential, SerialIsDeterministicAcrossRepeatedRuns) {
  // Anchor of the differential harness: the baseline itself must be a
  // pure function of (graph, options) or the 2x envelope means nothing.
  const CsrGraph g = make_paper_graph("delaunay", 0.002, 3);
  const auto serial = make_serial_partitioner();
  const PartitionOptions opts = base_options(1);
  const PartitionResult a = serial->run(g, opts);
  const PartitionResult b = serial->run(g, opts);
  EXPECT_EQ(a.partition.where, b.partition.where);
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
}

}  // namespace
}  // namespace gp
