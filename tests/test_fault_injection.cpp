// Tests for src/util/fault: plan parsing, deterministic injection, and the
// graceful-degradation policies of the three partitioner substrates.
#include <gtest/gtest.h>

#include <atomic>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "gpu/device.hpp"
#include "gpu/device_buffer.hpp"
#include "hybrid/gp_partitioner.hpp"
#include "hybrid/multi_gpu_partitioner.hpp"
#include "par/comm.hpp"
#include "par/parmetis_partitioner.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace gp {
namespace {

// ---------------------------------------------------------------- parsing

TEST(FaultPlan, ParsesEverySiteForm) {
  const auto plan =
      FaultPlan::parse("alloc@3; kernel:p=0.01, h2d@1;d2h@0;msg:p=0.5;"
                       "superstep@2;device1:lost;device0:lost@40;"
                       "rank2:fail;rank1:fail@6");
  ASSERT_EQ(plan.rules.size(), 6u);
  EXPECT_EQ(plan.rules[0].site, FaultSite::kAlloc);
  EXPECT_EQ(plan.rules[0].at, 3);
  EXPECT_EQ(plan.rules[1].site, FaultSite::kKernel);
  EXPECT_DOUBLE_EQ(plan.rules[1].p, 0.01);
  EXPECT_EQ(plan.rules[2].site, FaultSite::kH2D);
  EXPECT_EQ(plan.rules[3].site, FaultSite::kD2H);
  EXPECT_EQ(plan.rules[4].site, FaultSite::kMsg);
  EXPECT_EQ(plan.rules[5].site, FaultSite::kSuperstep);
  ASSERT_EQ(plan.device_losses.size(), 2u);
  EXPECT_EQ(plan.device_losses[0].device, 1);
  EXPECT_EQ(plan.device_losses[0].after_ops, 0u);
  EXPECT_EQ(plan.device_losses[1].device, 0);
  EXPECT_EQ(plan.device_losses[1].after_ops, 40u);
  ASSERT_EQ(plan.rank_failures.size(), 2u);
  EXPECT_EQ(plan.rank_failures[0].rank, 2);
  EXPECT_EQ(plan.rank_failures[1].from_superstep, 6u);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;  , ").empty());
  EXPECT_FALSE(FaultPlan::parse("alloc@0").empty());
}

TEST(FaultPlan, RejectsMalformedRules) {
  EXPECT_THROW(FaultPlan::parse("alloc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("frobnicate@3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("alloc@-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("alloc@x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kernel:p=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kernel:q=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("device1:gone"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank0:lost"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("device:lost"), std::invalid_argument);
}

TEST(FaultPlan, BadSpecRejectedByOptionValidation) {
  const auto g = grid2d_graph(10, 10);
  PartitionOptions opts;
  opts.k = 2;
  opts.fault_spec = "bogus@1";
  EXPECT_THROW(validate_options(g, opts), std::invalid_argument);
}

// ----------------------------------------------------------- the injector

TEST(FaultInjector, AtRuleFiresExactlyOnce) {
  FaultInjector inj(0, FaultPlan::parse("alloc@2"));
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kAlloc), FaultInjector::Action::kNone);
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kAlloc), FaultInjector::Action::kNone);
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kAlloc), FaultInjector::Action::kOom);
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kAlloc), FaultInjector::Action::kNone);
  EXPECT_EQ(inj.faults_fired(), 1u);
}

TEST(FaultInjector, KernelFaultIsFailNotOom) {
  FaultInjector inj(0, FaultPlan::parse("kernel@0"));
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kKernel),
            FaultInjector::Action::kFail);
}

TEST(FaultInjector, SitesCountIndependently) {
  // An alloc rule must not be perturbed by interleaved kernel checks.
  FaultInjector inj(0, FaultPlan::parse("alloc@1"));
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kKernel),
            FaultInjector::Action::kNone);
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kAlloc),
            FaultInjector::Action::kNone);
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kKernel),
            FaultInjector::Action::kNone);
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kAlloc),
            FaultInjector::Action::kOom);
}

TEST(FaultInjector, ProbabilisticRuleIsSeedDeterministic) {
  const auto plan = FaultPlan::parse("kernel:p=0.3");
  std::vector<bool> a, b;
  {
    FaultInjector inj(42, FaultPlan(plan));
    for (int i = 0; i < 200; ++i) {
      a.push_back(inj.on_device_op(0, FaultSite::kKernel) !=
                  FaultInjector::Action::kNone);
    }
  }
  {
    FaultInjector inj(42, FaultPlan(plan));
    for (int i = 0; i < 200; ++i) {
      b.push_back(inj.on_device_op(0, FaultSite::kKernel) !=
                  FaultInjector::Action::kNone);
    }
  }
  EXPECT_EQ(a, b);
  std::size_t fired = 0;
  for (const bool x : a) fired += x;
  EXPECT_GT(fired, 30u);   // ~60 expected at p=0.3
  EXPECT_LT(fired, 120u);
  // A different seed gives a different schedule (overwhelmingly likely).
  FaultInjector inj2(43, FaultPlan(plan));
  std::vector<bool> c;
  for (int i = 0; i < 200; ++i) {
    c.push_back(inj2.on_device_op(0, FaultSite::kKernel) !=
                FaultInjector::Action::kNone);
  }
  EXPECT_NE(a, c);
}

TEST(FaultInjector, LostDeviceFailsEveryOpAndReportsOnce) {
  FaultInjector inj(0, FaultPlan::parse("device1:lost@2"));
  EXPECT_EQ(inj.on_device_op(1, FaultSite::kAlloc),
            FaultInjector::Action::kNone);
  EXPECT_EQ(inj.on_device_op(1, FaultSite::kKernel),
            FaultInjector::Action::kNone);
  EXPECT_EQ(inj.on_device_op(1, FaultSite::kKernel),
            FaultInjector::Action::kFail);
  EXPECT_EQ(inj.on_device_op(1, FaultSite::kH2D),
            FaultInjector::Action::kFail);
  // Device 0 is unaffected.
  EXPECT_EQ(inj.on_device_op(0, FaultSite::kKernel),
            FaultInjector::Action::kNone);
  EXPECT_EQ(inj.devices_lost(), 1u);
  RunHealth h;
  inj.report_into(h);
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.devices_lost, 1u);
}

// ------------------------------------------------- device-level plumbing

TEST(FaultDevice, InjectedAllocThrowsDeviceOutOfMemory) {
  FaultInjector inj(0, FaultPlan::parse("alloc@0"));
  Device dev;
  dev.set_fault_injector(&inj, 3);
  try {
    DeviceBuffer<vid_t> buf(dev, 128, "t");
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.device_id(), 3);
  }
}

TEST(FaultDevice, InjectedKernelThrowsDeviceFailure) {
  FaultInjector inj(0, FaultPlan::parse("kernel@0"));
  Device dev;
  dev.set_fault_injector(&inj, 1);
  try {
    dev.launch("t", 4, [](std::int64_t) -> std::uint64_t { return 1; });
    FAIL() << "expected DeviceFailure";
  } catch (const DeviceFailure& e) {
    EXPECT_EQ(e.device_id(), 1);
  }
}

TEST(FaultDevice, InjectedTransferFaultsThrow) {
  FaultInjector inj(0, FaultPlan::parse("h2d@0;d2h@0"));
  Device dev;
  dev.set_fault_injector(&inj, 0);
  DeviceBuffer<vid_t> buf(dev, 16, "t");
  const std::vector<vid_t> host(16, 7);
  EXPECT_THROW(buf.h2d(host), DeviceFailure);
  EXPECT_THROW((void)buf.d2h_vector(), DeviceFailure);
}

// -------------------------------------------------------- comm satellites

TEST(SimComm, MessagePayloadSizeMismatchThrows) {
  SimMessage m;
  m.bytes.assign(10, 0);  // not a multiple of 8
  EXPECT_THROW((void)m.as<std::uint64_t>(), std::runtime_error);
  m.bytes.assign(16, 0);
  EXPECT_EQ(m.as<std::uint64_t>().size(), 2u);
}

TEST(SimComm, SendToBadRankThrows) {
  std::vector<SimMessage> inbox;
  Mailbox mb(0, 4, &inbox);
  const std::vector<int> data{1, 2, 3};
  EXPECT_THROW(mb.send(-1, data), std::out_of_range);
  EXPECT_THROW(mb.send(4, data), std::out_of_range);
  mb.send(3, data);  // in range: fine
}

// ------------------------------------------- GP-metis degradation ladder

PartitionOptions gp_fault_opts() {
  PartitionOptions opts;
  opts.k = 4;
  opts.threads = 1;
  opts.gpu_host_workers = 1;  // bit-deterministic kernels
  opts.gpu_cpu_threshold = 500;
  return opts;
}

TEST(GpMetisFaults, AllocFaultAtAnyIndexStillYieldsValidPartition) {
  const auto g = delaunay_graph(4000, 3);
  for (const int at : {0, 1, 2, 5, 9, 20}) {
    PartitionOptions opts = gp_fault_opts();
    opts.fault_spec = "alloc@" + std::to_string(at);
    GpPhaseLog log;
    const auto r = gp_metis_run(g, opts, &log);
    EXPECT_TRUE(validate_partition(g, r.partition).empty())
        << "alloc@" << at;
    EXPECT_GT(r.cut, 0) << "alloc@" << at;
    EXPECT_TRUE(r.health.degraded) << "alloc@" << at;
    EXPECT_EQ(r.health.faults_injected, 1u) << "alloc@" << at;
    EXPECT_GE(r.health.gpu_retries, 1u) << "alloc@" << at;
    EXPECT_GE(log.attempts, 2);
  }
}

TEST(GpMetisFaults, KernelFaultRetriesAndRecovers) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = gp_fault_opts();
  opts.fault_spec = "kernel@2";
  GpPhaseLog log;
  const auto r = gp_metis_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_TRUE(r.health.degraded);
  EXPECT_EQ(r.health.gpu_retries, 1u);
  // The retry succeeds on the full GPU path: no CPU fallback.
  EXPECT_FALSE(log.cpu_fallback);
  EXPECT_EQ(r.health.fallbacks, 0u);
}

TEST(GpMetisFaults, PersistentFailureFallsBackToPureCpu) {
  // Every kernel launch faults: all GPU attempts die, and the run must
  // still complete via the mt-metis fallback.
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = gp_fault_opts();
  opts.fault_spec = "kernel:p=1.0";
  GpPhaseLog log;
  const auto r = gp_metis_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_GT(r.cut, 0);
  EXPECT_TRUE(r.health.degraded);
  EXPECT_EQ(r.health.fallbacks, 1u);
  EXPECT_TRUE(log.cpu_fallback);
  EXPECT_EQ(log.gpu_coarsen_levels, 0);
}

TEST(GpMetisFaults, RetryCostStaysInLedger) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions clean = gp_fault_opts();
  const auto r0 = gp_metis_run(g, clean, nullptr);
  PartitionOptions faulty = gp_fault_opts();
  faulty.fault_spec = "kernel@3";
  const auto r1 = gp_metis_run(g, faulty, nullptr);
  // The failed attempt's work plus the reset penalty stay visible: a
  // degraded run is modeled strictly slower than a clean one.
  EXPECT_GT(r1.modeled_seconds, r0.modeled_seconds);
  EXPECT_GT(r1.ledger.seconds_with_prefix("fault/"), 0.0);
  EXPECT_EQ(r0.ledger.seconds_with_prefix("fault/"), 0.0);
}

TEST(GpMetisFaults, NoPlanIsBitIdenticalToSeedBehaviour) {
  // Zero-overhead requirement: an empty fault spec must not change the
  // partition or the modeled time in any way.
  const auto g = delaunay_graph(3000, 7);
  PartitionOptions opts = gp_fault_opts();
  const auto r0 = gp_metis_run(g, opts, nullptr);
  const auto r1 = gp_metis_run(g, opts, nullptr);
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_DOUBLE_EQ(r0.modeled_seconds, r1.modeled_seconds);
  EXPECT_EQ(r0.health, r1.health);
  EXPECT_FALSE(r0.health.degraded);
  EXPECT_EQ(r0.health.faults_injected, 0u);
}

TEST(GpMetisFaults, SameSeedSamePlanIsFullyDeterministic) {
  // Acceptance criterion: identical --fault-seed/--fault-spec give an
  // identical partition vector AND an identical RunHealth record.
  const auto g = delaunay_graph(3000, 7);
  PartitionOptions opts = gp_fault_opts();
  opts.fault_spec = "kernel:p=0.02;alloc@4";
  opts.fault_seed = 99;
  const auto r0 = gp_metis_run(g, opts, nullptr);
  const auto r1 = gp_metis_run(g, opts, nullptr);
  EXPECT_EQ(r0.partition.where, r1.partition.where);
  EXPECT_EQ(r0.health, r1.health);
  EXPECT_DOUBLE_EQ(r0.modeled_seconds, r1.modeled_seconds);
  EXPECT_TRUE(r0.health.degraded);
  EXPECT_TRUE(validate_partition(g, r0.partition).empty());
}

// ------------------------------------------- multi-GPU device-loss ladder

TEST(MultiGpuFaults, LostDeviceRedistributesOverSurvivors) {
  const auto g = delaunay_graph(6000, 5);
  PartitionOptions opts;
  opts.k = 4;
  opts.threads = 1;
  opts.gpu_host_workers = 1;
  opts.gpu_devices = 3;
  opts.gpu_cpu_threshold = 500;
  opts.fault_spec = "device1:lost@20";
  MultiGpuLog log;
  const auto r = multi_gpu_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_GT(r.cut, 0);
  EXPECT_TRUE(r.health.degraded);
  EXPECT_EQ(r.health.devices_lost, 1u);
  EXPECT_EQ(log.devices_lost, 1);
  EXPECT_FALSE(log.cpu_fallback);
  EXPECT_EQ(log.devices, 2);  // survivors carried the successful attempt
  EXPECT_GE(log.attempts, 2);
}

TEST(MultiGpuFaults, AllDevicesLostFallsBackToCpu) {
  const auto g = delaunay_graph(6000, 5);
  PartitionOptions opts;
  opts.k = 4;
  opts.threads = 1;
  opts.gpu_host_workers = 1;
  opts.gpu_devices = 2;
  opts.gpu_cpu_threshold = 500;
  opts.fault_spec = "device0:lost;device1:lost";
  MultiGpuLog log;
  const auto r = multi_gpu_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_TRUE(r.health.degraded);
  EXPECT_EQ(r.health.devices_lost, 2u);
  EXPECT_TRUE(log.cpu_fallback);
  EXPECT_EQ(r.health.fallbacks, 1u);
}

// --------------------------------------------- ParMetis message recovery

TEST(ParMetisFaults, DroppedMessagesAreRepairedOrResent) {
  const auto g = delaunay_graph(6000, 11);
  PartitionOptions opts;
  opts.k = 4;
  opts.ranks = 4;
  opts.threads = 1;
  opts.fault_spec = "msg:p=0.2";
  opts.fault_seed = 7;
  const auto r = ParMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_GT(r.cut, 0);
  EXPECT_TRUE(r.health.degraded);
  EXPECT_GT(r.health.messages_dropped, 0u);
  // With 20% loss across many supersteps, at least one grant or cmap
  // message was affected and repaired/resent.
  EXPECT_GT(r.health.match_repairs + r.health.messages_resent, 0u);
}

TEST(ParMetisFaults, SingleDropRecovers) {
  // `msg@3` eats exactly one message on the deterministic routing path.
  // (The rank compute itself races by design, so only the drop count —
  // not the partition vector — is compared across runs here; byte-level
  // fault determinism is covered on the GP-metis substrate above.)
  const auto g = delaunay_graph(6000, 11);
  PartitionOptions opts;
  opts.k = 4;
  opts.ranks = 4;
  opts.threads = 1;
  opts.fault_spec = "msg@3";
  const auto r0 = ParMetisPartitioner{}.run(g, opts);
  const auto r1 = ParMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r0.partition).empty());
  EXPECT_TRUE(validate_partition(g, r1.partition).empty());
  EXPECT_EQ(r0.health.messages_dropped, 1u);
  EXPECT_EQ(r1.health.messages_dropped, 1u);
  EXPECT_TRUE(r0.health.degraded);
}

TEST(ParMetisFaults, RankFailureAbortsCleanly) {
  const auto g = delaunay_graph(4000, 2);
  PartitionOptions opts;
  opts.k = 4;
  opts.ranks = 4;
  opts.threads = 1;
  opts.fault_spec = "rank2:fail@5";
  EXPECT_THROW(ParMetisPartitioner{}.run(g, opts), CommFailure);
}

TEST(ParMetisFaults, NoPlanHealthStaysClean) {
  const auto g = delaunay_graph(4000, 2);
  PartitionOptions opts;
  opts.k = 4;
  opts.ranks = 4;
  opts.threads = 1;
  const auto r = ParMetisPartitioner{}.run(g, opts);
  EXPECT_FALSE(r.health.degraded);
  EXPECT_EQ(r.health, RunHealth{});
}

// ------------------------------------------------- to_string / hardening

TEST(FaultPlan, ToStringRoundTripsEveryClauseKind) {
  const std::string spec =
      "alloc@3;kernel:p=0.01;flip@2;cmap:p=0.05;task@7;"
      "device1:lost;device0:lost@40;rank2:fail;rank1:fail@6;"
      "mem-cap=262144";
  const auto plan = FaultPlan::parse(spec);
  EXPECT_EQ(plan.to_string(), spec);
  // parse(to_string(parse(s))) == parse(s): the printed form is canonical.
  const auto reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
  EXPECT_EQ(reparsed.mem_cap_bytes, 262144u);
}

TEST(FaultPlan, ToStringPreservesAwkwardProbabilities) {
  // 0.1 has no exact double; the printer must still round-trip it.
  for (const char* spec : {"msg:p=0.1", "flip:p=0.3333333333333333",
                           "alloc:p=0.001"}) {
    const auto plan = FaultPlan::parse(spec);
    const auto again = FaultPlan::parse(plan.to_string());
    ASSERT_EQ(again.rules.size(), 1u);
    EXPECT_DOUBLE_EQ(again.rules[0].p, plan.rules[0].p) << spec;
  }
}

TEST(FaultPlan, RejectsDuplicateAndConflictingClauses) {
  EXPECT_THROW(FaultPlan::parse("alloc@3;alloc@3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kernel:p=0.1;kernel:p=0.2"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("device0:lost;device0:lost@5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("rank1:fail;rank1:fail@3"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("mem-cap=4096;mem-cap=8192"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("mem-cap=0"), std::invalid_argument);
  // Distinct occurrences of the same site remain legal.
  EXPECT_NO_THROW(FaultPlan::parse("alloc@3;alloc@5"));
  // One @N rule plus one :p= rule on the same site remains legal.
  EXPECT_NO_THROW(FaultPlan::parse("task@2;task:p=0.01"));
}

TEST(FaultPlan, MemCapParsesAndCountsAsNonEmpty) {
  const auto plan = FaultPlan::parse("mem-cap=65536");
  EXPECT_EQ(plan.mem_cap_bytes, 65536u);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.to_string(), "mem-cap=65536");
}

// ------------------------------------------------------ new fault sites

TEST(FaultDevice, ProbabilisticAllocCertaintyFiresEveryAllocation) {
  FaultInjector inj(7, FaultPlan::parse("alloc:p=1"));
  Device dev;
  dev.set_fault_injector(&inj, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(DeviceBuffer<vid_t>(dev, 64, "t"), DeviceOutOfMemory);
  }
  EXPECT_GE(inj.faults_fired(), 4u);
}

TEST(FaultPool, TaskFaultThrowsAtNthDispatch) {
  FaultInjector inj(0, FaultPlan::parse("task@2"));
  ThreadPool pool(1);
  pool.set_fault_injector(&inj);
  std::atomic<int> ran{0};
  const auto job = [&](int, std::int64_t, std::int64_t) { ++ran; };
  pool.parallel_for_dynamic(8, 1, job);  // dispatch 0
  pool.parallel_for_dynamic(8, 1, job);  // dispatch 1
  EXPECT_THROW(pool.parallel_for_dynamic(8, 1, job), ThreadPoolTaskError);
  // The pool survives the throw and keeps dispatching.
  pool.set_fault_injector(nullptr);
  ran = 0;
  pool.parallel_for_dynamic(8, 1, job);
  EXPECT_EQ(ran.load(), 8);
}

TEST(FaultPool, TaskFaultCrossesWorkerBoundaryOnMultiSlotPools) {
  // With >1 slot the throw happens on a worker thread and must travel
  // through the pool's record-and-rethrow-after-join machinery.
  FaultInjector inj(0, FaultPlan::parse("task@0"));
  ThreadPool pool(4);
  pool.set_fault_injector(&inj);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for_dynamic(
                   64, 1, [&](int, std::int64_t, std::int64_t) { ++ran; }),
               ThreadPoolTaskError);
  // The faulted task ran to completion before throwing (fault-at-end
  // semantics), so no chunk is silently lost besides the injected error.
  EXPECT_GE(ran.load(), 1);
  pool.set_fault_injector(nullptr);
  ran = 0;
  pool.parallel_for_dynamic(64, 1,
                            [&](int, std::int64_t, std::int64_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64);
}

TEST(FaultDevice, MemCapSqueezeThrowsOomAndRecordsEvent) {
  FaultInjector inj(0, FaultPlan::parse("mem-cap=1024"));
  Device dev;
  dev.set_fault_injector(&inj, 0);
  EXPECT_NO_THROW(DeviceBuffer<vid_t>(dev, 64, "small"));  // under the cap
  EXPECT_THROW(DeviceBuffer<vid_t>(dev, 4096, "big"), DeviceOutOfMemory);
  EXPECT_GE(inj.faults_fired(), 1u);
  RunHealth health;
  inj.report_into(health);
  bool saw = false;
  for (const auto& e : health.events) {
    if (e.find("mem-cap") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(GpMetisFaults, TaskFaultRetriesAndRecovers) {
  const auto g = delaunay_graph(4000, 2);
  PartitionOptions opts = gp_fault_opts();
  opts.fault_spec = "task@0";
  const auto r = gp_metis_run(g, opts, nullptr);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_TRUE(r.health.degraded);
  EXPECT_GE(r.health.gpu_retries, 1u);
}

}  // namespace
}  // namespace gp
