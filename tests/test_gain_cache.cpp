// Tests for the shared incremental gain cache (DESIGN.md §3.6): delta
// updates must be indistinguishable from a fresh recompute after any move
// sequence, batch replay must reconstruct the commit-barrier state,
// projection must equal a ground-up build on the fine level, and the
// cached best-destination query must pick byte-identical moves to the
// historical full adjacency scan — pinned end-to-end by golden partition
// hashes for all four systems.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/gain_cache.hpp"
#include "core/matching.hpp"
#include "core/partition.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "serial/hem_matching.hpp"
#include "util/rng.hpp"

namespace gp {
namespace {

std::vector<part_t> random_where(vid_t n, part_t k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<part_t> where(static_cast<std::size_t>(n));
  for (auto& w : where) w = static_cast<part_t>(rng() % static_cast<std::uint64_t>(k));
  return where;
}

/// The historical gain evaluation: scan v's whole adjacency, accumulate
/// connectivity per part in first-occurrence order, pick the first
/// allowed part whose connectivity is maximal and exceeds `threshold`.
template <typename Allowed>
BestDest best_destination_full_scan(const CsrGraph& g,
                                    const std::vector<part_t>& where, vid_t v,
                                    part_t pv, wgt_t threshold,
                                    Allowed&& allowed) {
  std::vector<part_t> order;
  std::vector<wgt_t>  conn(static_cast<std::size_t>(
                              1 + *std::max_element(where.begin(), where.end())),
                          0);
  const auto nbrs = g.neighbors(v);
  const auto wgts = g.neighbor_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const part_t pu = where[static_cast<std::size_t>(nbrs[i])];
    if (pu == pv) continue;
    if (conn[static_cast<std::size_t>(pu)] == 0) order.push_back(pu);
    conn[static_cast<std::size_t>(pu)] += wgts[i];
  }
  BestDest best{kInvalidPart, threshold, 0};
  for (const part_t q : order) {
    if (!allowed(q)) continue;
    if (conn[static_cast<std::size_t>(q)] > best.conn) {
      best.part = q;
      best.conn = conn[static_cast<std::size_t>(q)];
    }
  }
  return best;
}

TEST(GainCache, DeltaUpdateMatchesRecomputeAfterRandomMoves) {
  const auto g = delaunay_graph(2000, 11);
  const part_t k = 8;
  auto where = random_where(g.num_vertices(), k, 17);

  GainCache cache;
  cache.build(g, where, k);
  ASSERT_EQ(cache.compare_to_rebuild(g, where), "");

  Rng rng(23);
  for (int step = 1; step <= 600; ++step) {
    const auto v = static_cast<vid_t>(rng() % static_cast<std::uint64_t>(
                                                  g.num_vertices()));
    const part_t from = where[static_cast<std::size_t>(v)];
    part_t to = static_cast<part_t>(rng() % static_cast<std::uint64_t>(k));
    if (to == from) to = static_cast<part_t>((to + 1) % k);
    cache.apply_move(g, where, v, from, to);
    where[static_cast<std::size_t>(v)] = to;
    // Cross-check the cache against a ground-up recompute periodically
    // (every committed move keeps the cut counter exact too).
    ASSERT_EQ(cache.cut(), edge_cut(g, Partition{k, where}))
        << "after move " << step;
    if (step % 150 == 0) {
      ASSERT_EQ(cache.compare_to_rebuild(g, where), "")
          << "after move " << step;
    }
  }
  EXPECT_EQ(cache.compare_to_rebuild(g, where), "");
}

TEST(GainCache, BatchReplayReconstructsCommitBarrierState) {
  const auto g = delaunay_graph(1500, 29);
  const part_t k = 6;
  const auto initial = random_where(g.num_vertices(), k, 31);

  GainCache cache;
  cache.build(g, initial, k);

  // Record a move sequence the way the mt refiner's commit step does:
  // against the FINAL where array, with per-move from/to.  The barrier
  // contract admits each vertex at most once per batch (a pass moves a
  // vertex at most once), so draw without replacement.
  auto where = initial;
  std::vector<CommittedMove> moves;
  std::vector<char> picked(static_cast<std::size_t>(g.num_vertices()), 0);
  Rng rng(37);
  for (int i = 0; i < 400; ++i) {
    const auto v = static_cast<vid_t>(rng() % static_cast<std::uint64_t>(
                                                  g.num_vertices()));
    if (picked[static_cast<std::size_t>(v)]) continue;
    picked[static_cast<std::size_t>(v)] = 1;
    const part_t from = where[static_cast<std::size_t>(v)];
    part_t to = static_cast<part_t>(rng() % static_cast<std::uint64_t>(k));
    if (to == from) to = static_cast<part_t>((to + 1) % k);
    moves.push_back({v, from, to});
    where[static_cast<std::size_t>(v)] = to;
  }

  cache.apply_moves(g, where, moves);
  EXPECT_EQ(cache.compare_to_rebuild(g, where), "");
  EXPECT_EQ(cache.cut(), edge_cut(g, Partition{k, where}));
}

TEST(GainCache, ProjectionMatchesGroundUpBuild) {
  // A contracted grid keeps spatial locality, so a block partition of the
  // coarse level leaves plenty of interior vertices — both projection
  // paths (interior shortcut and boundary rebuild) get exercised.
  const auto fine = grid2d_graph(64, 48);
  Rng match_rng(41);
  const auto m = hem_match_serial(fine, match_rng);
  const auto [cmap, n_coarse] = build_cmap_serial(m.match);
  const auto coarse = contract_serial(fine, m.match, cmap, n_coarse);

  const part_t k = 8;
  std::vector<part_t> coarse_where(static_cast<std::size_t>(n_coarse));
  for (vid_t c = 0; c < n_coarse; ++c) {
    coarse_where[static_cast<std::size_t>(c)] =
        static_cast<part_t>((static_cast<std::int64_t>(c) * k) / n_coarse);
  }

  GainCache coarse_cache;
  coarse_cache.build(coarse, coarse_where, k);

  // Disturb the coarse level with a few committed moves first — projection
  // must follow the *current* coarse state, not the initial one.
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    const auto c = static_cast<vid_t>(rng() % static_cast<std::uint64_t>(
                                                  n_coarse));
    const part_t from = coarse_where[static_cast<std::size_t>(c)];
    const part_t to = static_cast<part_t>((from + 1) % k);
    coarse_cache.apply_move(coarse, coarse_where, c, from, to);
    coarse_where[static_cast<std::size_t>(c)] = to;
  }
  ASSERT_EQ(coarse_cache.compare_to_rebuild(coarse, coarse_where), "");

  const auto fine_where = project_partition(cmap, coarse_where);

  GainCache projected;
  projected.init(fine, k);
  wgt_t ed_total = 0;
  projected.project_range(coarse_cache, fine, fine_where, cmap, 0,
                          fine.num_vertices(), &ed_total);
  projected.finish_totals(ed_total);

  EXPECT_EQ(projected.compare_to_rebuild(fine, fine_where), "");
  EXPECT_EQ(projected.cut(), edge_cut(fine, Partition{k, fine_where}));

  GainCache ground_up;
  ground_up.build(fine, fine_where, k);
  EXPECT_EQ(projected.cut(), ground_up.cut());
}

TEST(GainCache, BestDestinationMatchesFullScanIncludingTies) {
  // Unit edge weights maximise connectivity ties; the cached query must
  // resolve every one exactly as the historical adjacency scan did.
  const auto g = delaunay_graph(1200, 47);
  const part_t k = 5;
  const auto where = random_where(g.num_vertices(), k, 53);

  GainCache cache;
  cache.build(g, where, k);

  const auto all = [](part_t) { return true; };
  const auto even_only = [](part_t q) { return (q % 2) == 0; };
  std::uint64_t ties_seen = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const part_t pv = where[static_cast<std::size_t>(v)];
    for (const wgt_t threshold : {cache.internal(v), wgt_t{0}, wgt_t{-1}}) {
      const auto got = cache.best_destination(g, where, v, pv, threshold, all);
      const auto want =
          best_destination_full_scan(g, where, v, pv, threshold, all);
      ASSERT_EQ(got.part, want.part) << "v=" << v << " thr=" << threshold;
      ASSERT_EQ(got.conn, want.conn) << "v=" << v << " thr=" << threshold;
      ties_seen += got.tie_scan > 0;

      const auto got_f =
          cache.best_destination(g, where, v, pv, threshold, even_only);
      const auto want_f =
          best_destination_full_scan(g, where, v, pv, threshold, even_only);
      ASSERT_EQ(got_f.part, want_f.part) << "filtered v=" << v;
      ASSERT_EQ(got_f.conn, want_f.conn) << "filtered v=" << v;
    }
  }
  // The scenario is built to produce ties; if none occurred the tie-break
  // fallback went untested and the fixture needs retuning.
  EXPECT_GT(ties_seen, 0u);
}

// End-to-end determinism regression: the cache-backed refiners must pick
// byte-identical move sequences to the historical full-scan evaluation.
// These hashes were produced by the pre-cache code on the bench's fixed
// single-threaded configuration and are committed in BENCH_e2e.json.
TEST(GainCache, GoldenPartitionHashesUnchangedByCaching) {
  struct Golden {
    const char*   system;
    std::uint64_t fnv;
    wgt_t         cut;
  };
  const Golden golden[] = {
      {"metis", 16254912780744818177ULL, 498},
      {"parmetis", 3681740895285960291ULL, 532},
      {"mt-metis", 7355817695509169360ULL, 570},
      {"gp-metis", 5153263865161350000ULL, 604},
  };

  const CsrGraph g = make_paper_graph("delaunay", 1.0 / 256.0, 7);
  std::vector<std::unique_ptr<Partitioner>> systems;
  systems.push_back(make_serial_partitioner());
  systems.push_back(make_par_partitioner());
  systems.push_back(make_mt_partitioner());
  systems.push_back(make_hybrid_partitioner());

  for (const auto& sys : systems) {
    PartitionOptions opts;
    opts.k = 8;
    opts.seed = 7;
    opts.threads = 1;
    opts.ranks = 1;
    opts.gpu_host_workers = 1;
    opts.gpu_cpu_threshold = 1024;
    const auto r = sys->run(g, opts);

    // FNV-1a over the raw partition vector, exactly as bench_e2e hashes it.
    std::uint64_t h = 1469598103934665603ULL;
    const auto* p =
        reinterpret_cast<const unsigned char*>(r.partition.where.data());
    for (std::size_t i = 0; i < r.partition.where.size() * sizeof(part_t);
         ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }

    const auto* want =
        std::find_if(std::begin(golden), std::end(golden),
                     [&](const Golden& e) { return sys->name() == e.system; });
    ASSERT_NE(want, std::end(golden)) << sys->name();
    EXPECT_EQ(h, want->fnv) << sys->name()
                            << ": move sequence diverged from the "
                               "pre-cache golden partition";
    EXPECT_EQ(r.cut, want->cut) << sys->name();
  }
}

}  // namespace
}  // namespace gp
