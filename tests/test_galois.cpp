// Tests for src/galois: the speculative-execution runtime and the
// Gmetis-style partitioner built on it.
#include <gtest/gtest.h>

#include <atomic>

#include "core/partitioner.hpp"
#include "galois/gmetis_partitioner.hpp"
#include "galois/speculative.hpp"
#include "gen/generators.hpp"

namespace gp {
namespace {

TEST(Speculative, AllItemsSettleExactlyOnce) {
  ThreadPool pool(8);
  SpeculativeEngine engine(pool, 1);
  std::atomic<int> counter{0};
  const auto st = engine.for_each(10000, [&](SpecTxn&, std::int64_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  EXPECT_EQ(counter.load(), 10000);
  EXPECT_EQ(st.commits, 10000u);
  EXPECT_EQ(st.aborts, 0u);
}

TEST(Speculative, ConflictingTxnsAbortAndRetry) {
  // Every transaction wants lock 0: at most one per round can commit in
  // parallel; the rest must abort and settle in the serial round.
  ThreadPool pool(8);
  SpeculativeEngine engine(pool, 4);
  std::atomic<int> hits{0};
  const auto st = engine.for_each(500, [&](SpecTxn& txn, std::int64_t) {
    if (!txn.acquire(0)) return false;
    hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  EXPECT_EQ(hits.load(), 500);  // everything settles eventually
  EXPECT_EQ(st.commits, 500u);
  EXPECT_EQ(st.retry_round_items, st.aborts);
}

TEST(Speculative, RollbackUndoesWrites) {
  ThreadPool pool(4);
  SpeculativeEngine engine(pool, 2);
  std::atomic<int> value{0};
  // Operator increments, then aborts if it can't grab lock 0 (which a
  // sibling may hold).  The undo must remove the increment so that only
  // committed increments survive.
  std::atomic<int> committed{0};
  (void)engine.for_each(2000, [&](SpecTxn& txn, std::int64_t) {
    value.fetch_add(1, std::memory_order_relaxed);
    txn.log_undo([&] { value.fetch_sub(1, std::memory_order_relaxed); });
    if (!txn.acquire(0)) return false;
    committed.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  EXPECT_EQ(value.load(), committed.load());
}

TEST(Speculative, ReentrantAcquire) {
  ThreadPool pool(1);
  SpeculativeEngine engine(pool, 2);
  const auto st = engine.for_each(10, [&](SpecTxn& txn, std::int64_t) {
    EXPECT_TRUE(txn.acquire(1));
    EXPECT_TRUE(txn.acquire(1));  // our own lock again
    return true;
  });
  EXPECT_EQ(st.aborts, 0u);
}

class GmetisMatchThreads : public ::testing::TestWithParam<int> {};

TEST_P(GmetisMatchThreads, SpeculativeMatchingIsValid) {
  ThreadPool pool(GetParam());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto g = delaunay_graph(3000, seed);
    GmetisMatchStats st;
    const auto m = gmetis_match(g, pool, seed, &st);
    ASSERT_TRUE(validate_match(m.match).empty()) << validate_match(m.match);
    ASSERT_TRUE(validate_cmap(m.match, m.cmap, m.n_coarse).empty());
    EXPECT_LT(m.n_coarse, static_cast<vid_t>(0.75 * 3000));
    EXPECT_GT(st.spec.commits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, GmetisMatchThreads,
                         ::testing::Values(1, 4, 16));

TEST(Gmetis, FullPipelineValid) {
  const auto g = delaunay_graph(8000, 5);
  PartitionOptions opts;
  opts.k = 16;
  const auto r = GmetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_EQ(r.cut, edge_cut(g, r.partition));
  for (const auto w : partition_weights(g, r.partition)) EXPECT_GT(w, 0);
}

TEST(Gmetis, SlowerThanMtMetisAsThePaperObserves) {
  // Background II-C: Gmetis "is found to be not as efficient" — the lock
  // and abort overheads must make it slower than the lock-free mt-metis.
  const auto g = delaunay_graph(30000, 7);
  PartitionOptions opts;
  opts.k = 16;
  const auto mt = make_mt_partitioner()->run(g, opts);
  const auto gm = GmetisPartitioner().run(g, opts);
  EXPECT_GT(gm.modeled_seconds, mt.modeled_seconds);
}

TEST(Gmetis, FactoryName) {
  EXPECT_EQ(make_gmetis_partitioner()->name(), "gmetis");
}

}  // namespace
}  // namespace gp
