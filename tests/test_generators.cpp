// Tests for src/gen: every generator must emit a valid, connected CSR
// graph with the structural signature its paper counterpart has.
#include <gtest/gtest.h>

#include "core/graph_ops.hpp"
#include "gen/generators.hpp"

namespace gp {
namespace {

TEST(Generators, Grid2d) {
  const auto g = grid2d_graph(10, 7);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_EQ(g.num_vertices(), 70);
  EXPECT_EQ(g.num_edges(), 10 * 6 + 9 * 7);  // vertical + horizontal
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Grid3d) {
  const auto g = grid3d_graph(4, 5, 6);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.num_vertices(), 120);
  EXPECT_TRUE(is_connected(g));
  const auto s = degree_stats(g);
  EXPECT_EQ(s.max_degree, 6);
}

TEST(Generators, ErdosRenyi) {
  const auto g = erdos_renyi_graph(500, 2000, 7);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.num_vertices(), 500);
  EXPECT_EQ(g.num_edges(), 2000);
}

TEST(Generators, ErdosRenyiDeterministic) {
  const auto a = erdos_renyi_graph(100, 300, 42);
  const auto b = erdos_renyi_graph(100, 300, 42);
  EXPECT_EQ(a.adjncy(), b.adjncy());
  EXPECT_EQ(a.adjp(), b.adjp());
}

TEST(Generators, Rmat) {
  const auto g = rmat_graph(10, 4000, 3);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.num_vertices(), 1024);
  // Power-law: max degree far above average.
  const auto s = degree_stats(g);
  EXPECT_GT(s.max_degree, static_cast<eid_t>(4 * s.avg_degree));
}

TEST(Generators, FemSlabLooksLikeLdoor) {
  const auto g = fem_slab_graph(20, 30, 6);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_TRUE(is_connected(g));
  const auto s = degree_stats(g);
  // ldoor's average degree is ~48; the slab with boundary lands 30-52.
  EXPECT_GT(s.avg_degree, 30.0);
  EXPECT_LE(s.max_degree, 52);
}

TEST(Generators, DelaunaySmall) {
  const auto g = delaunay_graph(50, 11);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_EQ(g.num_vertices(), 50);
  EXPECT_TRUE(is_connected(g));
  // Planar: |E| <= 3n - 6; triangulation: |E| >= ~2n.
  EXPECT_LE(g.num_edges(), 3 * 50 - 6);
  EXPECT_GE(g.num_edges(), 2 * 50 - 10);
}

TEST(Generators, DelaunayMedium) {
  const auto g = delaunay_graph(5000, 13);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_TRUE(is_connected(g));
  EXPECT_LE(g.num_edges(), 3 * 5000 - 6);
  const auto s = degree_stats(g);
  // Interior Delaunay degree averages 6.
  EXPECT_NEAR(s.avg_degree, 6.0, 0.5);
}

TEST(Generators, DelaunayEulerFormula) {
  // For a Delaunay triangulation of points in general position:
  // E = 3n - 3 - h where h = hull size.  Just check E is in the tight
  // planar band [2n, 3n-6] and the graph is connected & planar-sized.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto g = delaunay_graph(800, seed);
    EXPECT_TRUE(g.validate().empty());
    EXPECT_TRUE(is_connected(g));
    EXPECT_LE(g.num_edges(), 3 * 800 - 6);
    EXPECT_GE(g.num_edges(), 2 * 800);
  }
}

TEST(Generators, BubbleMeshDegreeThree) {
  const auto g = bubble_mesh_graph(10000, 6, 5);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_TRUE(is_connected(g));
  const auto s = degree_stats(g);
  EXPECT_LE(s.max_degree, 3);
  EXPECT_NEAR(s.avg_degree, 3.0, 0.35);  // hugebubbles: exactly 3.0
}

TEST(Generators, RoadNetworkSignature) {
  const auto g = road_network_graph(20000, 9);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_TRUE(is_connected(g));
  const auto s = degree_stats(g);
  // USA roads: avg 2.42, max degree small.
  EXPECT_NEAR(s.avg_degree, 2.4, 0.5);
  EXPECT_LE(s.max_degree, 8);
  // Size lands near the request.
  EXPECT_NEAR(static_cast<double>(g.num_vertices()), 20000.0, 20000.0 * 0.3);
}

TEST(Generators, PaperRegistryHasFourRows) {
  const auto& rows = paper_graphs();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "ldoor");
  EXPECT_EQ(rows[1].name, "delaunay");
  EXPECT_EQ(rows[2].name, "hugebubble");
  EXPECT_EQ(rows[3].name, "usa-roads");
}

TEST(Generators, MakePaperGraphScaled) {
  for (const auto& info : paper_graphs()) {
    const double scale = 1.0 / 256.0;
    const auto g = make_paper_graph(info.name, scale, 1);
    EXPECT_TRUE(g.validate().empty()) << info.name << ": " << g.validate();
    EXPECT_TRUE(is_connected(g)) << info.name;
    const double expected =
        static_cast<double>(info.paper_vertices) * scale;
    EXPECT_NEAR(static_cast<double>(g.num_vertices()), expected,
                expected * 0.5)
        << info.name;
  }
}

TEST(Generators, MakePaperGraphUnknownThrows) {
  EXPECT_THROW(make_paper_graph("nope", 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace gp
