// Tests for src/gpu: device memory accounting, transfers, kernel launch,
// atomics, device scan, clustered hash table, coalescing analyzer.
#include <gtest/gtest.h>

#include <numeric>
#include <utility>

#include "gpu/coalescing.hpp"
#include "gpu/device.hpp"
#include "gpu/device_atomics.hpp"
#include "gpu/device_buffer.hpp"
#include "gpu/hash_table.hpp"
#include "gpu/scan.hpp"
#include "util/rng.hpp"

namespace gp {
namespace {

Device::Config small_device() {
  Device::Config c;
  c.memory_bytes = 1 << 20;  // 1 MiB for OOM tests
  c.host_workers = 4;
  return c;
}

TEST(Device, AllocationAccounting) {
  Device dev(small_device());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  {
    DeviceBuffer<int> a(dev, 100, "a");
    EXPECT_EQ(dev.allocated_bytes(), 400u);
    DeviceBuffer<double> b(dev, 10, "b");
    EXPECT_EQ(dev.allocated_bytes(), 480u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(Device, BufferPoolRecyclesAndRezeroes) {
  Device dev(small_device());
  const auto misses0 = dev.pool_misses();
  {
    DeviceBuffer<int> a(dev, 100, "a");
    for (std::size_t i = 0; i < 100; ++i) a.data()[i] = 0x5aa5;  // garbage
  }
  EXPECT_EQ(dev.pool_misses(), misses0 + 1);
  const auto hits0 = dev.pool_hits();
  // Same size: must come back from the pool, and zero-filled (the
  // cudaMalloc-the-simulated-way contract callers rely on).
  DeviceBuffer<int> b(dev, 100, "b");
  EXPECT_EQ(dev.pool_hits(), hits0 + 1);
  EXPECT_GE(dev.pool_recycled_bytes(), 400u);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(b.data()[i], 0);
  // A different size bucket misses.
  DeviceBuffer<int> c(dev, 4096, "c");
  EXPECT_EQ(dev.pool_hits(), hits0 + 1);
}

TEST(Device, PoolPresizeServesFirstTouchFromPool) {
  Device dev(small_device());
  dev.pool_presize(1 << 18, /*copies=*/2);
  const auto misses0 = dev.pool_misses();
  const auto hits0 = dev.pool_hits();
  {
    // First-touch allocations across assorted buckets, two live at once
    // in the same bucket: all must be pool hits after pre-sizing.
    DeviceBuffer<int> a(dev, 1000, "a");
    DeviceBuffer<int> a2(dev, 1000, "a2");
    DeviceBuffer<double> b(dev, 4000, "b");
    DeviceBuffer<char> c(dev, 100000, "c");
    EXPECT_EQ(dev.pool_misses(), misses0);
    EXPECT_EQ(dev.pool_hits(), hits0 + 4);
    for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(a.data()[i], 0);
  }
  // Beyond the pre-sized ceiling the pool still misses as before.
  DeviceBuffer<char> big(dev, (1 << 18) * 2, "big");
  EXPECT_EQ(dev.pool_misses(), misses0 + 1);
}

TEST(Device, PoolAccountingBalancesAcrossLifetimes) {
  // Every pool_acquire must be matched by exactly one pool_release —
  // across normal destruction, early release(), moves, and constructors
  // that throw.  pool_outstanding_blocks() is the live-block ledger.
  Device dev(small_device());
  EXPECT_EQ(dev.pool_outstanding_blocks(), 0);
  {
    DeviceBuffer<int> a(dev, 100, "a");
    DeviceBuffer<double> b(dev, 50, "b");
    EXPECT_EQ(dev.pool_outstanding_blocks(), 2);
    // A move transfers ownership; it must not double-count the block.
    DeviceBuffer<int> c(std::move(a));
    EXPECT_EQ(dev.pool_outstanding_blocks(), 2);
    c.release();
    EXPECT_EQ(dev.pool_outstanding_blocks(), 1);
  }
  EXPECT_EQ(dev.pool_outstanding_blocks(), 0);

  // A constructor that throws (capacity exceeded) runs no destructor:
  // both the capacity charge and the block count must stay balanced.
  const auto bytes_before = dev.allocated_bytes();
  EXPECT_THROW(DeviceBuffer<int> big(dev, std::size_t{1} << 22, "big"),
               DeviceOutOfMemory);
  EXPECT_EQ(dev.allocated_bytes(), bytes_before);
  EXPECT_EQ(dev.pool_outstanding_blocks(), 0);

  // And the device stays fully usable afterwards.
  DeviceBuffer<int> after(dev, 64, "after");
  EXPECT_EQ(dev.pool_outstanding_blocks(), 1);
}

TEST(Device, OutOfMemoryThrows) {
  Device dev(small_device());
  EXPECT_THROW(DeviceBuffer<char>(dev, (1 << 20) + 1, "big"),
               DeviceOutOfMemory);
  // Partial fill then overflow.
  DeviceBuffer<char> half(dev, 1 << 19, "half");
  EXPECT_THROW(DeviceBuffer<char>(dev, (1 << 19) + 1, "big2"),
               DeviceOutOfMemory);
}

TEST(Device, TransferRoundTripAndMetering) {
  Device dev(small_device());
  CostLedger ledger;
  dev.set_ledger(&ledger);
  std::vector<int> host(1000);
  std::iota(host.begin(), host.end(), 0);
  auto buf = to_device(dev, host, "x");
  EXPECT_EQ(dev.total_h2d_bytes(), 4000u);
  const auto back = buf.d2h_vector();
  EXPECT_EQ(back, host);
  EXPECT_EQ(dev.total_d2h_bytes(), 4000u);
  EXPECT_EQ(ledger.bytes_with_prefix("transfer/"), 8000u);
  EXPECT_GT(ledger.total_seconds(), 0.0);
}

TEST(Device, LaunchCoversIndexSpaceExactlyOnce) {
  Device dev(small_device());
  const std::int64_t n = 100001;
  DeviceBuffer<int> hits(dev, static_cast<std::size_t>(n), "hits");
  hits.fill(0);
  int* h = hits.data();
  dev.launch("cover", n, [&](std::int64_t i) {
    atomic_add(h[i], 1);
    return std::uint64_t{1};
  });
  const auto v = hits.d2h_vector();
  for (const int x : v) ASSERT_EQ(x, 1);
}

TEST(Device, LaunchZeroThreadsIsNoop) {
  Device dev(small_device());
  dev.launch("empty", 0, [&](std::int64_t) { return std::uint64_t{1}; });
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(Device, KernelChargesLedgerWithImbalance) {
  Device dev(small_device());
  CostLedger ledger;
  dev.set_ledger(&ledger);
  // 32 warps; warp 0 does all the work -> imbalance should be > 1.
  dev.launch("skewed", 32 * 32, [&](std::int64_t i) {
    return (i < 32) ? std::uint64_t{1000} : std::uint64_t{1};
  });
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_GT(ledger.entries()[0].imbalance, 2.0);
}

TEST(DeviceAtomics, AtomicAddConcurrent) {
  Device dev(small_device());
  DeviceBuffer<long> counter(dev, 1, "c");
  counter.fill(0);
  long* c = counter.data();
  dev.launch("add", 50000, [&](std::int64_t) {
    atomic_add(*c, 1L);
    return std::uint64_t{1};
  });
  EXPECT_EQ(counter.d2h_vector()[0], 50000);
}

TEST(DeviceAtomics, AtomicSlotReservation) {
  // The refinement-buffer pattern: each logical thread reserves a unique
  // slot via atomic_add on a counter.
  Device dev(small_device());
  const std::int64_t n = 20000;
  DeviceBuffer<int> slots(dev, static_cast<std::size_t>(n), "slots");
  slots.fill(-1);
  DeviceBuffer<int> counter(dev, 1, "ctr");
  counter.fill(0);
  int* s = slots.data();
  int* c = counter.data();
  dev.launch("reserve", n, [&](std::int64_t i) {
    const int slot = atomic_add(*c, 1);
    s[slot] = static_cast<int>(i);
    return std::uint64_t{1};
  });
  auto v = slots.d2h_vector();
  std::sort(v.begin(), v.end());
  for (std::int64_t i = 0; i < n; ++i)
    ASSERT_EQ(v[static_cast<std::size_t>(i)], i);  // every slot unique & used
}

TEST(DeviceAtomics, AtomicMax) {
  Device dev(small_device());
  DeviceBuffer<int> m(dev, 1, "m");
  m.fill(0);
  int* p = m.data();
  dev.launch("max", 10000, [&](std::int64_t i) {
    atomic_max(*p, static_cast<int>(i));
    return std::uint64_t{1};
  });
  EXPECT_EQ(m.d2h_vector()[0], 9999);
}

class DeviceScanSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DeviceScanSizes, InclusiveMatchesSerial) {
  Device dev(small_device());
  const auto n = GetParam();
  Rng r(static_cast<std::uint64_t>(n) + 5);
  std::vector<std::int64_t> host(static_cast<std::size_t>(n));
  for (auto& x : host) x = static_cast<std::int64_t>(r.next_below(10));
  std::vector<std::int64_t> expect = host;
  std::int64_t sum = 0;
  for (auto& x : expect) {
    sum += x;
    x = sum;
  }
  auto buf = to_device(dev, host, "scan");
  const auto total = device_inclusive_scan(dev, buf);
  EXPECT_EQ(buf.d2h_vector(), expect);
  if (n > 0) {
    EXPECT_EQ(total, expect.back());
  }
}

TEST_P(DeviceScanSizes, ExclusiveMatchesSerial) {
  Device dev(small_device());
  const auto n = GetParam();
  Rng r(static_cast<std::uint64_t>(n) + 17);
  std::vector<std::int64_t> host(static_cast<std::size_t>(n));
  for (auto& x : host) x = static_cast<std::int64_t>(r.next_below(10));
  std::vector<std::int64_t> expect = host;
  std::int64_t sum = 0;
  for (auto& x : expect) {
    const auto v = x;
    x = sum;
    sum += v;
  }
  auto buf = to_device(dev, host, "xscan");
  const auto total = device_exclusive_scan(dev, buf);
  EXPECT_EQ(buf.d2h_vector(), expect);
  EXPECT_EQ(total, sum);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeviceScanSizes,
                         ::testing::Values(0, 1, 2, 1023, 1024, 1025, 50000));

TEST(ClusteredHashTable, MergesDuplicates) {
  ClusteredHashTable t(16);
  t.add(5, 10);
  t.add(7, 1);
  t.add(5, 3);
  EXPECT_EQ(t.size(), 2u);
  wgt_t w5 = 0, w7 = 0;
  t.for_each([&](vid_t k, wgt_t w) {
    if (k == 5) w5 = w;
    if (k == 7) w7 = w;
  });
  EXPECT_EQ(w5, 13);
  EXPECT_EQ(w7, 1);
}

TEST(ClusteredHashTable, HandlesCollisionsViaChaining) {
  // 1 bucket: everything chains.
  ClusteredHashTable t(1);
  for (vid_t k = 0; k < 100; ++k) t.add(k, k);
  EXPECT_EQ(t.size(), 100u);
  wgt_t sum = 0;
  t.for_each([&](vid_t, wgt_t w) { sum += w; });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ClusteredHashTable, ClearResetsState) {
  ClusteredHashTable t(8);
  t.add(1, 1);
  t.add(9, 2);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  t.add(1, 5);
  EXPECT_EQ(t.size(), 1u);
  wgt_t w = 0;
  t.for_each([&](vid_t, wgt_t x) { w += x; });
  EXPECT_EQ(w, 5);
}

TEST(Coalescing, PerfectlyCoalescedStride4) {
  // 32 threads reading consecutive ints: one 128-byte transaction.
  std::vector<std::uint64_t> addr(32);
  for (std::size_t i = 0; i < 32; ++i) addr[i] = i * 4;
  const auto s = analyze_coalescing(addr);
  EXPECT_EQ(s.warps, 1u);
  EXPECT_EQ(s.transactions, 1u);
}

TEST(Coalescing, StridedAccessExplodes) {
  // 32 threads reading 128 bytes apart: 32 transactions.
  std::vector<std::uint64_t> addr(32);
  for (std::size_t i = 0; i < 32; ++i) addr[i] = i * 128;
  const auto s = analyze_coalescing(addr);
  EXPECT_EQ(s.transactions, 32u);
  EXPECT_DOUBLE_EQ(s.transactions_per_warp(), 32.0);
}

TEST(Coalescing, PartialWarpAtTail) {
  std::vector<std::uint64_t> addr(40, 0);  // all same block; 2 warps
  const auto s = analyze_coalescing(addr);
  EXPECT_EQ(s.warps, 2u);
  EXPECT_EQ(s.transactions, 2u);
}

}  // namespace
}  // namespace gp
