// Tests for src/hybrid: the GPU matching / cmap / contraction / projection
// / refinement kernels and the full GP-metis driver.
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "hybrid/gp_partitioner.hpp"
#include "hybrid/gpu_contract.hpp"
#include "hybrid/gpu_matching.hpp"
#include "hybrid/gpu_refine.hpp"
#include "serial/rb_partition.hpp"

namespace gp {
namespace {

class GpuMatchThreads : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GpuMatchThreads, InvolutionAndCmapAfterConflictResolution) {
  Device dev;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto g = delaunay_graph(3000, seed);
    auto gg = GpuGraph::upload(dev, g, "t");
    auto m = gpu_match(dev, gg, 0, seed + 1, GetParam());
    const auto match = m.match.d2h_vector();
    const auto cmap = m.cmap.d2h_vector();
    ASSERT_TRUE(validate_match(match).empty()) << validate_match(match);
    ASSERT_TRUE(validate_cmap(match, cmap, m.n_coarse).empty())
        << validate_cmap(match, cmap, m.n_coarse);
    EXPECT_LT(m.n_coarse, static_cast<vid_t>(0.75 * 3000));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, GpuMatchThreads,
                         ::testing::Values(1, 32, 1024, 16384));

TEST(GpuMatch, CmapPipelineMatchesSerialReference) {
  // The 4-kernel prefix-sum cmap must agree exactly with the canonical
  // serial construction for the same match array.
  Device dev;
  const auto g = grid2d_graph(50, 50);
  auto gg = GpuGraph::upload(dev, g, "t");
  auto m = gpu_match(dev, gg, 0, 9, 4096);
  const auto match = m.match.d2h_vector();
  const auto [ref_cmap, ref_nc] = build_cmap_serial(match);
  EXPECT_EQ(m.cmap.d2h_vector(), ref_cmap);
  EXPECT_EQ(m.n_coarse, ref_nc);
}

class GpuContractMode : public ::testing::TestWithParam<bool> {};

TEST_P(GpuContractMode, MatchesSerialReference) {
  // Both merge strategies (hash table and sort-merge) must reproduce the
  // serial contraction bit-for-bit.
  Device dev;
  const auto g = delaunay_graph(2500, 4);
  auto gg = GpuGraph::upload(dev, g, "t");
  auto m = gpu_match(dev, gg, 0, 5, 2048);
  const auto match = m.match.d2h_vector();
  const auto cmap = m.cmap.d2h_vector();
  ASSERT_TRUE(validate_match(match).empty());

  GpuContractStats st;
  const auto coarse = gpu_contract(dev, gg, m.match, m.cmap, m.n_coarse, 0,
                                   2048, GetParam(), GpuScanMode::kBlocked,
                                   &st)
                          .download();
  const auto ref = contract_serial(g, match, cmap, m.n_coarse);
  EXPECT_TRUE(coarse.validate().empty()) << coarse.validate();
  EXPECT_EQ(coarse.adjp(), ref.adjp());
  EXPECT_EQ(coarse.adjncy(), ref.adjncy());
  EXPECT_EQ(coarse.adjwgt(), ref.adjwgt());
  EXPECT_EQ(coarse.vwgt(), ref.vwgt());
  EXPECT_GE(st.temp_entries, st.final_entries);
}

INSTANTIATE_TEST_SUITE_P(Merge, GpuContractMode,
                         ::testing::Values(true, false));

TEST(GpuContract, TempArraysFreedAfterContraction) {
  Device dev;
  const auto g = grid2d_graph(40, 40);
  const auto before = dev.allocated_bytes();
  auto gg = GpuGraph::upload(dev, g, "t");
  auto m = gpu_match(dev, gg, 0, 7, 1024);
  auto coarse = gpu_contract(dev, gg, m.match, m.cmap, m.n_coarse, 0, 1024,
                             true, GpuScanMode::kBlocked, nullptr);
  // Only the fine graph, match/cmap, and the coarse graph remain.
  const auto expected = before + gg.bytes() + coarse.bytes() +
                        2 * static_cast<std::size_t>(g.num_vertices()) *
                            sizeof(vid_t);
  EXPECT_EQ(dev.allocated_bytes(), expected);
}

TEST(GpuProject, ProjectsThroughCmap) {
  Device dev;
  const auto g = grid2d_graph(30, 30);
  auto gg = GpuGraph::upload(dev, g, "t");
  auto m = gpu_match(dev, gg, 0, 3, 512);
  const auto cmap = m.cmap.d2h_vector();
  std::vector<part_t> coarse_where(static_cast<std::size_t>(m.n_coarse));
  for (std::size_t i = 0; i < coarse_where.size(); ++i) {
    coarse_where[i] = static_cast<part_t>(i % 4);
  }
  DeviceBuffer<part_t> dcw(dev, coarse_where.size(), "cw");
  dcw.h2d(coarse_where);
  DeviceBuffer<part_t> dfw(dev, static_cast<std::size_t>(g.num_vertices()),
                           "fw");
  gpu_project(dev, m.cmap, dcw, dfw, 0, 512);
  const auto fw = dfw.d2h_vector();
  const auto expect = project_partition(cmap, coarse_where);
  EXPECT_EQ(fw, expect);
}

TEST(GpuRefine, ImprovesPerturbedPartition) {
  Device dev;
  const auto g = grid2d_graph(32, 32);
  Rng rng(2);
  Partition p = recursive_bisection(g, 8, 0.03, rng);
  for (vid_t v = 200; v < 260; ++v) p.where[static_cast<std::size_t>(v)] = 0;
  const wgt_t perturbed = edge_cut(g, p);

  auto gg = GpuGraph::upload(dev, g, "t");
  DeviceBuffer<part_t> dw(dev, p.where.size(), "w");
  dw.h2d(p.where);
  auto st = gpu_refine(dev, gg, dw, 8, 0.08, 8, 0, 1024);
  Partition q{8, dw.d2h_vector()};
  EXPECT_TRUE(validate_partition(g, q).empty());
  EXPECT_LT(edge_cut(g, q), perturbed);
  EXPECT_GT(st.committed, 0u);
  const wgt_t maxw = max_part_weight(g.total_vertex_weight(), 8, 0.08);
  for (const auto w : partition_weights(g, q)) EXPECT_LE(w, maxw);
}

TEST(GpuRefine, RequestSlotsAreExclusive) {
  // Stress the atomic-counter buffer under heavy concurrency: every
  // committed move must be consistent (validated partition, conserved
  // vertex count per part).
  Device dev;
  const auto g = delaunay_graph(4000, 6);
  Rng rng(3);
  Partition p = recursive_bisection(g, 16, 0.05, rng);
  auto gg = GpuGraph::upload(dev, g, "t");
  DeviceBuffer<part_t> dw(dev, p.where.size(), "w");
  dw.h2d(p.where);
  (void)gpu_refine(dev, gg, dw, 16, 0.05, 6, 0, 1 << 14);
  Partition q{16, dw.d2h_vector()};
  EXPECT_TRUE(validate_partition(g, q).empty());
}

// ---- full driver ----

TEST(GpMetis, FullPipelineValidOnAllPaperGraphShapes) {
  for (const auto& info : paper_graphs()) {
    const auto g = make_paper_graph(info.name, 1.0 / 512.0, 3);
    PartitionOptions opts;
    opts.k = 8;
    opts.gpu_cpu_threshold = 2000;
    GpPhaseLog log;
    const auto r = gp_metis_run(g, opts, &log);
    EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty()) << info.name;
    EXPECT_EQ(r.cut, edge_cut(g, r.partition)) << info.name;
    for (const auto w : partition_weights(g, r.partition))
      EXPECT_GT(w, 0) << info.name;
  }
}

TEST(GpMetis, HybridPhaseStructure) {
  const auto g = delaunay_graph(40000, 5);
  PartitionOptions opts;
  opts.k = 16;
  opts.gpu_cpu_threshold = 4000;
  GpPhaseLog log;
  const auto r = gp_metis_run(g, opts, &log);
  // The Fig. 1 structure: some levels on the GPU, some on the CPU, with
  // transfers in both directions.
  EXPECT_GT(log.gpu_coarsen_levels, 0);
  EXPECT_GT(log.cpu_levels, 0);
  EXPECT_LE(log.handoff_vertices, 4000 + 4000 / 2);
  EXPECT_GT(log.h2d_bytes, 0u);
  EXPECT_GT(log.d2h_bytes, 0u);
  EXPECT_GT(r.phases.transfer, 0.0);
  EXPECT_GT(r.phases.coarsen, 0.0);
  EXPECT_GT(r.phases.initpart, 0.0);
  EXPECT_GT(r.phases.uncoarsen, 0.0);
}

TEST(GpMetis, QualityComparableToSerial) {
  const auto g = grid2d_graph(80, 80);
  PartitionOptions opts;
  opts.k = 8;
  opts.gpu_cpu_threshold = 1000;
  const auto serial = make_serial_partitioner()->run(g, opts);
  const auto gpm = make_hybrid_partitioner()->run(g, opts);
  EXPECT_LT(static_cast<double>(gpm.cut),
            1.7 * static_cast<double>(serial.cut) + 50.0);
  EXPECT_LE(gpm.balance, 1.35);
}

TEST(GpMetis, ModeledFasterThanSerialAndParMetis) {
  // Fig. 5's headline: GP-metis outperforms Metis and ParMetis on all
  // tested inputs.  Use a road network, where the gap is structural
  // (ParMetis drowns in boundary ghost exchanges) and large enough to
  // leave the GPU's low-occupancy regime — the margin on small delaunay
  // instances is within run-to-run noise of the racy refiners.
  const auto g = road_network_graph(150000, 8);
  PartitionOptions opts;
  opts.k = 16;
  opts.gpu_cpu_threshold = 4000;
  const auto serial = make_serial_partitioner()->run(g, opts);
  const auto par = make_par_partitioner()->run(g, opts);
  const auto gpm = make_hybrid_partitioner()->run(g, opts);
  EXPECT_LT(gpm.modeled_seconds, serial.modeled_seconds);
  EXPECT_LT(gpm.modeled_seconds, par.modeled_seconds);
}

TEST(GpMetis, SmallGraphSkipsGpuCoarsening) {
  // Below the threshold everything runs on the CPU; the driver must still
  // produce a valid partition (and no GPU coarsening levels).
  const auto g = grid2d_graph(20, 20);
  PartitionOptions opts;
  opts.k = 4;
  GpPhaseLog log;
  const auto r = gp_metis_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_EQ(log.gpu_coarsen_levels, 0);
}

TEST(GpMetis, FactoryName) {
  EXPECT_EQ(make_hybrid_partitioner()->name(), "gp-metis");
}

TEST(GpuRefine, FullBuffersDropRequestsButStayCorrect) {
  // With k large relative to n/k the per-partition buffer capacity is
  // tiny; overflowing requests must be dropped (counted), never written
  // out of bounds, and the partition must stay valid.
  Device dev;
  const auto g = delaunay_graph(3000, 8);
  Rng rng(4);
  Partition p = recursive_bisection(g, 64, 0.10, rng);
  // Heavy perturbation generates a flood of requests.
  for (vid_t v = 0; v < g.num_vertices(); v += 3) {
    p.where[static_cast<std::size_t>(v)] =
        static_cast<part_t>((p.where[static_cast<std::size_t>(v)] + 1) % 64);
  }
  auto gg = GpuGraph::upload(dev, g, "t");
  DeviceBuffer<part_t> dw(dev, p.where.size(), "w");
  dw.h2d(p.where);
  const auto st = gpu_refine(dev, gg, dw, 64, 0.10, 4, 0, 1 << 13);
  Partition q{64, dw.d2h_vector()};
  EXPECT_TRUE(validate_partition(g, q).empty());
  EXPECT_GT(st.proposed, 0u);
  // dropped may be zero on lucky runs; the invariant under test is
  // bounded-buffer safety, which validate_partition confirms.
}

TEST(GpMetis, DegradesToCpuWhenDeviceMemoryTooSmall) {
  // An absurdly small device capacity makes the very first upload OOM.
  // The driver must not surface the exception: it degrades to the pure
  // mt-metis path and still returns a valid balanced partition, with the
  // health record flagging the run as degraded.
  const auto g = grid2d_graph(50, 50);
  PartitionOptions opts;
  opts.k = 4;
  opts.gpu_memory_bytes = 400;
  const auto r = make_hybrid_partitioner()->run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_GT(r.cut, 0);
  EXPECT_LE(r.balance, 1.0 + opts.eps + 0.05);
  EXPECT_TRUE(r.health.degraded);
  EXPECT_GE(r.health.gpu_retries, 1u);
  EXPECT_EQ(r.health.fallbacks, 1u);
}

TEST(GpMetis, FixedLaunchWidthVariantWorksEndToEnd) {
  // Section III-D ablation path: disabling the per-level launch shrink
  // must not affect correctness (only the modeled time).
  const auto g = delaunay_graph(8000, 6);
  PartitionOptions opts;
  opts.k = 8;
  opts.gpu_cpu_threshold = 1000;
  opts.gpu_shrink_launch = false;
  const auto r = make_hybrid_partitioner()->run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
}

TEST(GpMetis, SortMergeContractionVariantWorksEndToEnd) {
  const auto g = delaunay_graph(8000, 2);
  PartitionOptions opts;
  opts.k = 8;
  opts.gpu_cpu_threshold = 1000;
  opts.gpu_hash_contraction = false;  // quicksort+remove path
  const auto r = make_hybrid_partitioner()->run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
}

}  // namespace
}  // namespace gp
