// Parallel initial-partitioning engine: determinism sweep, winner
// tie-break rules, stream-mode equivalence, and the FM gain-cache /
// parallel-seeding invariants (ISSUE 5).
//
// Naming note: the InitPart* and Bisection* prefixes are matched by the
// CI ThreadSanitizer job's --gtest_filter, so every test here runs under
// TSan as well.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "gen/generators.hpp"
#include "mt/mt_context.hpp"
#include "mt/mt_initpart.hpp"
#include "serial/bisection.hpp"
#include "serial/initpart_engine.hpp"
#include "serial/rb_partition.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gp {
namespace {

std::uint64_t fnv1a(const std::vector<part_t>& where) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(where.data());
  for (std::size_t i = 0; i < where.size() * sizeof(part_t); ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return h;
}

// --- winner selection: minimum (cut, trial-id), i.e. the first trial
// achieving the minimal cut wins (identical to the historical serial
// "first strictly better" scan, whatever order trials finished in) ---

TEST(InitPartWinner, FirstMinimalCutWins) {
  EXPECT_EQ(initpart_select_winner({5, 3, 3, 7}), 1);
  EXPECT_EQ(initpart_select_winner({4, 4}), 0);
  EXPECT_EQ(initpart_select_winner({9}), 0);
  EXPECT_EQ(initpart_select_winner({2, 1, 0, 0, 1}), 2);
}

TEST(InitPartWinner, TieBreaksByTrialIdNotValueOrder) {
  // All equal: trial 0 must win regardless of how many trials raced.
  EXPECT_EQ(initpart_select_winner({6, 6, 6, 6, 6, 6, 6, 6}), 0);
}

// --- determinism sweep: the mt-mode engine must produce byte-identical
// partitions at any thread count, for any trial count ---

class InitPartDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(InitPartDeterminism, FnvInvariantAcrossThreadCountsAndTrials) {
  const CsrGraph g = make_paper_graph(GetParam(), 0.002, 3);
  ASSERT_GT(g.num_vertices(), 100);
  for (int trials = 1; trials <= 8; ++trials) {
    std::uint64_t ref = 0;
    for (const int th : {1, 2, 4, 8}) {
      ThreadPool pool(th);
      MtContext ctx{&pool, nullptr, 7};
      const Partition p = mt_initial_partition(g, 8, 0.03, ctx, trials);
      EXPECT_TRUE(validate_partition(g, p).empty());
      const std::uint64_t h = fnv1a(p.where);
      if (th == 1) {
        ref = h;
      } else {
        EXPECT_EQ(h, ref) << GetParam() << " trials=" << trials
                          << " threads=" << th
                          << ": partition differs from the 1-thread run";
      }
    }
  }
}

// Instantiation name keeps the InitPart prefix so --gtest_filter=InitPart*
// (the CI TSan job) still matches the parameterized names.
INSTANTIATE_TEST_SUITE_P(InitPartGraphs, InitPartDeterminism,
                         ::testing::Values("delaunay", "ldoor"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

TEST(InitPartDeterminism, RepeatedRunsAreBitIdentical) {
  const CsrGraph g = delaunay_graph(1500, 11);
  ThreadPool pool(4);
  MtContext ctx{&pool, nullptr, 5};
  const Partition a = mt_initial_partition(g, 12, 0.03, ctx, 4);
  const Partition b = mt_initial_partition(g, 12, 0.03, ctx, 4);
  EXPECT_EQ(a.where, b.where);
}

TEST(InitPartDeterminism, MoreTrialsNeverHurtTheCut) {
  // Not a byte-equality property: raced trials buy quality.  The winner
  // rule keeps the best cut, so trials=8 <= trials=1 on the same graph.
  const CsrGraph g = delaunay_graph(1200, 3);
  ThreadPool pool(8);
  MtContext ctx{&pool, nullptr, 9};
  const Partition p1 = mt_initial_partition(g, 2, 0.03, ctx, 1);
  const Partition p8 = mt_initial_partition(g, 2, 0.03, ctx, 8);
  EXPECT_LE(edge_cut(g, p8), edge_cut(g, p1));
}

// --- stream mode: the serial drivers' flavour.  The engine must behave
// exactly like the historical depth-first recursion: same partition AND
// the caller's RNG left in the same state, with or without a pool ---

TEST(InitPartStream, PoolDoesNotChangePartitionOrRngState) {
  const CsrGraph g = make_paper_graph("ldoor", 0.002, 5);
  InitPartConfig cfg;
  cfg.k = 8;
  cfg.eps = 0.03;

  Rng rng_serial(42);
  const Partition ps = initpart_engine(g, cfg, &rng_serial);

  ThreadPool pool(4);
  InitPartConfig cfg_pool = cfg;
  cfg_pool.pool = &pool;
  cfg_pool.model_threads = 4;
  Rng rng_pool(42);
  const Partition pp = initpart_engine(g, cfg_pool, &rng_pool);

  EXPECT_EQ(ps.where, pp.where);
  // RNG advanced by the same nominal draw count: subsequent streams agree.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng_serial.next(), rng_pool.next());
  }
}

TEST(InitPartStream, RbPartitionIsTheEngineInStreamMode) {
  const CsrGraph g = delaunay_graph(900, 17);
  Rng rng_a(7);
  RbStats st;
  const Partition a = recursive_bisection(g, 6, 0.03, rng_a, &st, 4, 8);
  EXPECT_GT(st.work_units, 0u);

  InitPartConfig cfg;
  cfg.k = 6;
  cfg.eps = 0.03;
  cfg.trials = 4;
  Rng rng_b(7);
  const Partition b = initpart_engine(g, cfg, &rng_b);
  EXPECT_EQ(a.where, b.where);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng_a.next(), rng_b.next());
  }
}

// --- FM invariants: parallel boundary seeding is byte-identical to the
// serial scan, and the persistent gain cache keeps the tracked cut exact ---

TEST(Bisection, FmPoolSeedingMatchesSerialByteForByte) {
  ThreadPool pool(4);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const CsrGraph g = erdos_renyi_graph(800, 4000, seed);
    Rng rng(seed);
    BisectionResult bis =
        gggp_bisect(g, g.total_vertex_weight() / 2, rng, 1);
    const wgt_t maxw = g.total_vertex_weight();

    std::vector<part_t> side_serial = bis.side;
    const FmStats fs = fm_refine_bisection(g, side_serial, maxw / 2 - maxw / 8,
                                           maxw / 2 + maxw / 8, 8, bis.cut);

    std::vector<part_t> side_pool = bis.side;
    std::vector<std::uint64_t> tw(static_cast<std::size_t>(pool.size()), 0);
    const FmStats fp = fm_refine_bisection(g, side_pool, maxw / 2 - maxw / 8,
                                           maxw / 2 + maxw / 8, 8, bis.cut,
                                           &pool, &tw);

    EXPECT_EQ(side_serial, side_pool) << "seed " << seed;
    EXPECT_EQ(fs.cut_after, fp.cut_after);
    EXPECT_EQ(fs.passes, fp.passes);
    // Same total metered work, just distributed across the pool.
    EXPECT_EQ(fs.work_units, fp.work_units);
    std::uint64_t par = 0;
    for (const auto w : tw) par += w;
    EXPECT_EQ(par, fp.seed_work);
  }
}

TEST(Bisection, FmTrackedCutStaysExact) {
  // cut_after is tracked via the persistent gain cache through every
  // move and rollback; any cache drift would desynchronize it from the
  // true cut of the refined side.
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL, 15ULL}) {
    const CsrGraph g = rmat_graph(9, 2500, seed);
    Rng rng(seed * 31);
    BisectionResult bis =
        gggp_bisect(g, g.total_vertex_weight() / 2, rng, 2);
    ASSERT_EQ(bis.cut, bisection_cut(g, bis.side));
    const wgt_t maxw = g.total_vertex_weight();
    const FmStats fs = fm_refine_bisection(g, bis.side, maxw / 4,
                                           3 * maxw / 4, 8, bis.cut);
    EXPECT_EQ(fs.cut_after, bisection_cut(g, bis.side)) << "seed " << seed;
    EXPECT_LE(fs.cut_after, fs.cut_before);
  }
}

TEST(Bisection, FmStatsSplitIsConsistent) {
  const CsrGraph g = delaunay_graph(700, 23);
  Rng rng(23);
  BisectionResult bis = gggp_bisect(g, g.total_vertex_weight() / 2, rng, 1);
  const wgt_t maxw = g.total_vertex_weight();
  const FmStats fs = fm_refine_bisection(g, bis.side, maxw / 4, 3 * maxw / 4,
                                         8, bis.cut);
  EXPECT_EQ(fs.seed_work + fs.drain_work, fs.work_units);
  EXPECT_GT(fs.seed_work, 0u);
  EXPECT_GE(fs.passes, 1);
}

}  // namespace
}  // namespace gp
